package hybrid

import (
	"testing"

	"hybridstore/internal/core"
	"hybridstore/internal/obs"
	"hybridstore/internal/storage"
)

// TestFaultedRunAccountedEndToEnd is the 1%-error-rate smoke test: a
// two-level system with fault injection on every cache-SSD op class runs a
// query stream without panics or query failures, every injected error is
// visible to the manager, and the loss accounting surfaces through the
// observer registry and the JSON report.
func TestFaultedRunAccountedEndToEnd(t *testing.T) {
	cfg := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	cfg.CacheFaults = storage.FaultSpec{
		Seed:       5,
		Read:       storage.OpFaults{ErrProb: 0.01, SlowProb: 0.01},
		Write:      storage.OpFaults{ErrProb: 0.01},
		Trim:       storage.OpFaults{ErrProb: 0.01},
		StickyProb: 0.25,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.CacheFaults == nil {
		t.Fatal("fault spec set but no injector wired")
	}
	o := obs.New(obs.Options{})
	sys.EnableObservability(o)

	if _, err := sys.Run(1500); err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}
	if err := sys.Manager.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	st := sys.Manager.Stats()
	managerErrs := st.SSDReadErrors + st.SSDWriteErrors + st.SSDTrimErrors
	if managerErrs == 0 {
		t.Fatal("1% injection produced no visible errors — nothing exercised")
	}

	// Every cache-SSD op flows through the injector, so both sides agree.
	fs := sys.CacheFaults.FaultStats()
	if fs.ReadErrors != st.SSDReadErrors || fs.WriteErrors != st.SSDWriteErrors || fs.TrimErrors != st.SSDTrimErrors {
		t.Fatalf("injector/manager error counts diverge: device %d/%d/%d, stats %d/%d/%d",
			fs.ReadErrors, fs.WriteErrors, fs.TrimErrors,
			st.SSDReadErrors, st.SSDWriteErrors, st.SSDTrimErrors)
	}

	// The event stream feeds the registry: the io-error counter matches.
	if got := o.Registry.Counter("ssd_io_errors_total").Value(); got != managerErrs {
		t.Fatalf("registry ssd_io_errors_total = %d, stats %d", got, managerErrs)
	}
	if _, ok := o.Registry.GaugeValue(obs.GaugeDegradedMode); !ok {
		t.Fatal("degraded-mode gauge not registered")
	}
	if v, ok := o.Registry.GaugeValue(obs.GaugeQuarantinedBytes); !ok || v != float64(st.QuarantinedBytes) {
		t.Fatalf("quarantined-bytes gauge %v (ok=%v), want %d", v, ok, st.QuarantinedBytes)
	}

	// The JSON report carries the full fault section.
	r := sys.BuildReport()
	if r.Faults == nil {
		t.Fatal("faulted run report lacks Faults section")
	}
	if r.Faults.InjectedReadErrors != fs.ReadErrors ||
		r.Faults.SSDWriteErrors != st.SSDWriteErrors ||
		r.Faults.QuarantinedBytes != st.QuarantinedBytes {
		t.Fatalf("fault report diverges from sources: %+v", r.Faults)
	}
}

// TestZeroFaultSpecWiresNoInjector: the zero value means "no injection" —
// the manager talks to the raw cache device and reports omit the section.
func TestZeroFaultSpecWiresNoInjector(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheTwoLevel))
	if err != nil {
		t.Fatal(err)
	}
	if sys.CacheFaults != nil {
		t.Fatal("injector wired without a fault spec")
	}
	if r := sys.BuildReport(); r.Faults != nil {
		t.Fatal("report has Faults section without injection")
	}
}
