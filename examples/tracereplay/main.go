// Tracereplay exercises the storage substrates directly: it synthesizes a
// UMass-like web search trace (§III, Fig 1a), characterizes it, and
// replays it against both device models — the simulated HDD and the
// simulated SSD — comparing service times and the SSD's internal state,
// the experiment that motivates the whole paper.
package main

import (
	"fmt"
	"log"

	"hybridstore/internal/disksim"
	"hybridstore/internal/flashsim"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/trace"
)

func main() {
	params := trace.DefaultWebSearchParams()
	params.Reads = 20000
	ops := trace.SyntheticWebSearch(params)

	ch := trace.Analyze(ops)
	fmt.Printf("trace: %d ops, %.1f%% reads, top-10%% share %.3f, sequential %.3f\n\n",
		ch.Ops, 100*ch.ReadFraction, ch.Top10PctShare, ch.SequentialFraction)

	span := params.SpanSectors * trace.SectorSize
	buf := make([]byte, 64<<10)

	// Replay on the mechanical disk.
	hddClock := simclock.New()
	hdd := disksim.New("hdd", hddClock, disksim.DefaultParams(span))
	replay(ops, hdd, buf)
	fmt.Printf("HDD: total %v, avg %v/op (%d sequential hits)\n",
		hddClock.Now(), hdd.Stats().AvgAccessTime(), hdd.SequentialHits())

	// Replay on flash.
	ssdClock := simclock.New()
	ssd := flashsim.New("ssd", ssdClock, flashsim.DefaultParams(span))
	replay(ops, ssd, buf)
	w := ssd.Wear()
	fmt.Printf("SSD: total %v, avg %v/op (erases=%d, WA=%.2f)\n",
		ssdClock.Now(), ssd.Stats().AvgAccessTime(), w.TotalErases, w.WriteAmplification)

	speedup := float64(hddClock.Now()) / float64(ssdClock.Now())
	fmt.Printf("\nSSD is %.1fx faster on this read-dominant random workload —\n", speedup)
	fmt.Println("the gap the paper's hybrid architecture exploits (§I, §III).")
}

// replay pushes every trace op at the device, clamping to its range.
func replay(ops []storage.Op, dev storage.Device, buf []byte) {
	for _, op := range ops {
		n := op.Len
		if n > len(buf) {
			n = len(buf)
		}
		off := op.Offset
		if off+int64(n) > dev.Size() {
			off = dev.Size() - int64(n)
		}
		var err error
		if op.Kind == storage.OpWrite {
			_, err = dev.WriteAt(buf[:n], off)
		} else {
			_, err = dev.ReadAt(buf[:n], off)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
}
