// Policycompare reproduces the paper's headline comparison end to end:
// the same query stream against identical hierarchies managed by LRU,
// CBLRU and CBSLRU, reporting hit ratio, response time, throughput, SSD
// erases and write volume side by side (Figs 14b, 17, 19 in one table).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/workload"
)

func buildSystem(policy core.Policy) (*hybrid.System, error) {
	collection := workload.DefaultCollection(1_000_000)
	collection.VocabSize = 3000
	collection.MaxDFShare = 0.2
	log := workload.DefaultQueryLog(collection.VocabSize)
	log.DistinctQueries = 10000

	cache := core.DefaultConfig(3 << 20 / 2)
	cache.Policy = policy
	cache.TEV = 2
	cache.SSDResultBytes = 2 << 20
	cache.SSDListBytes = 12 << 20

	engCfg := engine.DefaultConfig()
	engCfg.TerminationFrac = 0.35

	return hybrid.New(hybrid.Config{
		Collection: collection,
		QueryLog:   log,
		Cache:      cache,
		Mode:       hybrid.CacheTwoLevel,
		IndexOn:    hybrid.IndexOnHDD,
		Engine:     engCfg,
		UseModelPU: true,
	})
}

func main() {
	const warm, measure = 2000, 3000

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tRC\tIC\tRIC\tresp(ms)\tq/s\terases\tSSD writes(MB)\telided")
	for _, policy := range []core.Policy{core.PolicyLRU, core.PolicyCBLRU, core.PolicyCBSLRU} {
		sys, err := buildSystem(policy)
		if err != nil {
			log.Fatal(err)
		}
		if policy == core.PolicyCBSLRU {
			if _, err := sys.WarmupStatic(2 * warm); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := sys.Run(warm); err != nil {
			log.Fatal(err)
		}
		sys.Manager.ResetStats()
		erasesBefore := sys.CacheSSD.Wear().TotalErases

		rs, err := sys.Run(measure)
		if err != nil {
			log.Fatal(err)
		}
		st := sys.Manager.Stats()
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.2f\t%.1f\t%d\t%.1f\t%d\n",
			policy,
			st.ResultHitRatio(), st.ListHitRatio(), st.CombinedHitRatio(),
			float64(rs.MeanResponseTime().Microseconds())/1000,
			rs.Throughput(),
			sys.CacheSSD.Wear().TotalErases-erasesBefore,
			float64(st.ListBytesToSSD+st.ResultBytesToSSD)/(1<<20),
			st.ListWritesElided+st.ResultWritesElided)
	}
	w.Flush()
	fmt.Println("\npaper's steady-state expectations: CBLRU and CBSLRU beat LRU on every column;")
	fmt.Println("CBSLRU erases least (static partition never rewrites) and hits most.")
}
