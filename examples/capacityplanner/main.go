// Capacityplanner explores the paper's §VII-C cost argument: for a fixed
// hardware budget, is it better to buy memory or a small memory plus a
// large SSD cache? It sweeps mixes at equal cost and reports simulated
// response time per dollar (Fig 18's trade-off as a planning tool).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/workload"
)

// 2012 prices from the paper: memory $14.5/GB, SSD $1.9/GB. Capacities
// here are laptop-scaled; cost units are milli-dollars at the same ratio.
const (
	memPricePerMB = 14.5 * 1000 / 1024
	ssdPricePerMB = 1.9 * 1000 / 1024
)

type mix struct {
	name     string
	memBytes int64
	ssdBytes int64
}

func (m mix) cost() float64 {
	return float64(m.memBytes)/(1<<20)*memPricePerMB + float64(m.ssdBytes)/(1<<20)*ssdPricePerMB
}

func main() {
	collection := workload.DefaultCollection(1_000_000)
	collection.VocabSize = 3000
	collection.MaxDFShare = 0.2
	qlog := workload.DefaultQueryLog(collection.VocabSize)
	qlog.DistinctQueries = 10000
	engCfg := engine.DefaultConfig()
	engCfg.TerminationFrac = 0.35

	// The paper's Fig 18(b) pattern: a big memory-only cache vs small
	// memory plus a large, far cheaper SSD.
	mixes := []mix{
		{"memory-only 3.0MB", 3 << 20, 0},
		{"memory-only 1.5MB", 3 << 19, 0},
		{"0.6MB mem + 12MB SSD", 3 << 19 / 5 * 2, 12 << 20},
		{"1.5MB mem + 12MB SSD", 3 << 19, 12 << 20},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tcost(m$)\tresp(ms)\tq/s\tRIC\tms per m$")
	for _, m := range mixes {
		cache := core.DefaultConfig(m.memBytes)
		cache.TEV = 2
		mode := hybrid.CacheOneLevel
		if m.ssdBytes > 0 {
			// The static partitions only exist on the SSD level, so the
			// memory-only mixes run plain CBLRU (CBSLRU would be rejected).
			cache.Policy = core.PolicyCBSLRU
			mode = hybrid.CacheTwoLevel
			cache.SSDResultBytes = m.ssdBytes / 8
			cache.SSDListBytes = m.ssdBytes - cache.SSDResultBytes
		} else {
			cache.Policy = core.PolicyCBLRU
			cache.SSDResultBytes, cache.SSDListBytes = 0, 0
		}

		sys, err := hybrid.New(hybrid.Config{
			Collection: collection,
			QueryLog:   qlog,
			Cache:      cache,
			Mode:       mode,
			IndexOn:    hybrid.IndexOnHDD,
			Engine:     engCfg,
			UseModelPU: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if mode == hybrid.CacheTwoLevel {
			if _, err := sys.WarmupStatic(4000); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := sys.Run(2000); err != nil { // warm
			log.Fatal(err)
		}
		sys.Manager.ResetStats()
		rs, err := sys.Run(2500)
		if err != nil {
			log.Fatal(err)
		}
		st := sys.Manager.Stats()
		respMS := float64(rs.MeanResponseTime().Microseconds()) / 1000
		fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.1f\t%.3f\t%.3f\n",
			m.name, m.cost(), respMS, rs.Throughput(), st.CombinedHitRatio(), respMS/m.cost())
	}
	w.Flush()
	fmt.Println("\npaper's claim (§VII-C): replacing most of the memory with a much larger,")
	fmt.Println("much cheaper SSD cache preserves or improves performance at lower cost.")
}
