// Andsearch demonstrates the conjunctive (AND) retrieval path and the
// three-level caching extension (§VIII): doc-sorted posting lists with
// skip pointers — the source of the paper's "skipped reads" (§III) — plus
// an intersection cache that short-circuits repeated term pairs.
package main

import (
	"fmt"
	"log"

	hybrid "hybridstore"
	"hybridstore/internal/engine"
	"hybridstore/internal/intersect"
	"hybridstore/internal/workload"
)

func main() {
	cfg := hybrid.DefaultConfig()
	cfg.Collection.NumDocs = 400_000
	cfg.Collection.VocabSize = 2000
	cfg.Collection.MaxDFShare = 0.2
	cfg.QueryLog.VocabSize = cfg.Collection.VocabSize
	cfg.Mode = hybrid.CacheNone // the intersection cache is the star here

	sys, err := hybrid.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	icache := intersect.New(4<<20, nil)
	engCfg := engine.DefaultConfig()
	engCfg.Clock = sys.Clock
	conj := engine.NewConjunctive(sys.Index, engCfg, icache)

	// One query by hand: AND of a popular and a mid-frequency term.
	q := workload.Query{ID: 1, Terms: []workload.TermID{0, 25}}
	res, stats, err := conj.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AND(%v): %d matching docs, top-%d returned\n",
		q.Terms, stats.Matches, len(res.Docs))
	fmt.Printf("skip blocks read=%d skipped=%d (the §III 'skipped reads')\n\n",
		stats.BlocksRead, stats.BlocksSkipped)

	// Drive a Zipf stream and watch the intersection cache take over.
	var totalRead, totalSkipped int64
	hits := 0
	const n = 2000
	start := sys.Clock.Now()
	for i := 0; i < n; i++ {
		q := sys.Log.Next()
		if len(q.Terms) < 2 {
			continue
		}
		_, st, err := conj.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		totalRead += st.BlocksRead
		totalSkipped += st.BlocksSkipped
		if st.IntersectionHit {
			hits++
		}
	}
	elapsed := sys.Clock.Now() - start
	cs := icache.Stats()
	fmt.Printf("%d AND queries in %v simulated time\n", n, elapsed)
	fmt.Printf("intersection cache: %d entries, %.0f KB, hit ratio %.3f\n",
		cs.Entries, float64(cs.UsedBytes)/1024, cs.HitRatio())
	fmt.Printf("skip blocks: read=%d skipped=%d (%.1f%% of probes avoided)\n",
		totalRead, totalSkipped,
		100*float64(totalSkipped)/float64(totalRead+totalSkipped))
}
