// Quickstart: build the paper's two-level hybrid storage architecture with
// defaults, push queries through it, and print the system report.
package main

import (
	"fmt"
	"log"

	hybrid "hybridstore"
)

func main() {
	// DefaultConfig assembles the whole simulated stack: a synthetic
	// enwiki-like collection indexed on a simulated 7200 RPM HDD, an
	// AOL-like query log, a memory L1 (20% results / 80% lists) and an
	// SSD L2 managed by CBLRU.
	cfg := hybrid.DefaultConfig()
	cfg.Collection.NumDocs = 300_000 // keep the quickstart quick
	cfg.Collection.VocabSize = 2000
	cfg.QueryLog.VocabSize = cfg.Collection.VocabSize

	sys, err := hybrid.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Run one query by hand to see the per-query API...
	q := sys.Log.Next()
	res, info, err := sys.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %d (%d terms) -> %d results in %v (cached=%v)\n",
		q.ID, len(q.Terms), len(res.Docs), info.Elapsed, info.Cached)
	fmt.Printf("top hit: doc %d score %.2f\n\n", res.Docs[0].Doc, res.Docs[0].Score)

	// ...then drive a few thousand from the log.
	rs, err := sys.Run(3000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3000 queries: mean response %v, throughput %.1f q/s\n\n",
		rs.MeanResponseTime(), rs.Throughput())

	fmt.Println(sys.Report())
}
