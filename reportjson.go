package hybrid

import (
	"encoding/json"
	"fmt"
	"io"

	"hybridstore/internal/core"
	"hybridstore/internal/obs"
	"hybridstore/internal/storage"
)

// SituationReport is one Table I row of the JSON report. Latency quantiles
// are present only when observability is enabled.
type SituationReport struct {
	ID     string  `json:"id"`   // "S1".."S9"
	Name   string  `json:"name"` // "S1(R:mem)" ...
	Count  int64   `json:"count"`
	P      float64 `json:"p"`
	MeanUS int64   `json:"mean_us"`
	P50US  float64 `json:"p50_us,omitempty"`
	P95US  float64 `json:"p95_us,omitempty"`
	P99US  float64 `json:"p99_us,omitempty"`
	P999US float64 `json:"p999_us,omitempty"`
}

// DeviceReport summarizes one device's counters for the JSON report.
type DeviceReport struct {
	Name        string `json:"name"`
	Reads       int64  `json:"reads"`
	Writes      int64  `json:"writes"`
	BytesRead   int64  `json:"bytes_read"`
	BytesWrit   int64  `json:"bytes_written"`
	AvgAccessUS int64  `json:"avg_access_us"`
}

// WearReport summarizes one SSD's wear for the JSON report.
type WearReport struct {
	Erases             int64   `json:"erases"`
	MaxBlockErases     int64   `json:"max_block_erases"`
	GCPageCopies       int64   `json:"gc_page_copies"`
	WriteAmplification float64 `json:"write_amplification"`
	FreeBlocks         int     `json:"free_blocks"`
}

// FaultReport summarizes injected cache-SSD faults and the manager's
// reaction to them, so a faulted run's data loss is fully auditable from
// the report alone.
type FaultReport struct {
	// Injector side (what the device did).
	InjectedReadErrors  int64 `json:"injected_read_errors"`
	InjectedWriteErrors int64 `json:"injected_write_errors"`
	InjectedTrimErrors  int64 `json:"injected_trim_errors"`
	LatencySpikes       int64 `json:"latency_spikes"`
	BadExtents          int   `json:"bad_extents"`
	BadExtentHits       int64 `json:"bad_extent_hits"`
	// Manager side (how the cache core degraded).
	SSDReadErrors      int64 `json:"ssd_read_errors"`
	SSDWriteErrors     int64 `json:"ssd_write_errors"`
	SSDTrimErrors      int64 `json:"ssd_trim_errors"`
	ResultsRequeued    int64 `json:"results_requeued"`
	ResultsDropped     int64 `json:"results_dropped"`
	ListsDiscarded     int64 `json:"lists_discarded"`
	ExtentsQuarantined int64 `json:"extents_quarantined"`
	QuarantinedBytes   int64 `json:"quarantined_bytes"`
	BreakerTrips       int64 `json:"breaker_trips"`
	DegradedServes     int64 `json:"degraded_serves"`
}

// AttribReport is one row of the per-situation latency-attribution table:
// where the situation's total simulated time went, by component.
type AttribReport struct {
	Situation string `json:"situation"`
	Queries   int64  `json:"queries"`
	// TotalNS is the situation's summed elapsed time; Components partitions
	// it (component sums equal TotalNS exactly).
	TotalNS    int64      `json:"total_ns"`
	Share      float64    `json:"share"` // fraction of all-situations total
	Components obs.Attrib `json:"components"`
}

// HitRatioReport carries the Fig 14 ratios.
type HitRatioReport struct {
	RC  float64 `json:"rc"`
	IC  float64 `json:"ic"`
	RIC float64 `json:"ric"`
}

// JSONReport is the machine-readable counterpart of System.Report: one
// self-contained document per run, stable enough to diff two runs with
// generic JSON tooling. Schema: see README §Observability.
type JSONReport struct {
	SchemaVersion int    `json:"schema_version"`
	Mode          string `json:"mode"`
	IndexOn       string `json:"index_on"`
	Policy        string `json:"policy,omitempty"`
	FTL           string `json:"cache_ftl,omitempty"`

	Queries        int64   `json:"queries"`
	MeanResponseUS int64   `json:"mean_response_us"`
	ThroughputQPS  float64 `json:"throughput_qps"`

	HitRatios  *HitRatioReport       `json:"hit_ratios,omitempty"`
	Situations []SituationReport     `json:"situations,omitempty"`
	Stats      *core.Stats           `json:"stats,omitempty"`
	Faults     *FaultReport          `json:"faults,omitempty"`
	Devices    []DeviceReport        `json:"devices"`
	Wear       map[string]WearReport `json:"wear,omitempty"`
	Registry   *obs.RegistrySnapshot `json:"registry,omitempty"`
	Traces     int64                 `json:"traces,omitempty"`
	// Attribution is the per-situation latency breakdown, present when
	// observability is enabled and at least one query was attributed.
	Attribution []AttribReport `json:"attribution,omitempty"`
}

// jsonReportSchemaVersion bumps when the report layout changes shape.
const jsonReportSchemaVersion = 1

// BuildReport assembles the JSON report from the current system state.
func (s *System) BuildReport() *JSONReport {
	r := &JSONReport{
		SchemaVersion: jsonReportSchemaVersion,
		Mode:          s.cfg.Mode.String(),
		IndexOn:       s.cfg.IndexOn.String(),
	}
	if s.cfg.Mode == CacheTwoLevel {
		r.FTL = s.cfg.CacheFTL.String()
	}

	if s.Manager != nil {
		st := s.Manager.Stats()
		r.Policy = s.Manager.Policy().String()
		r.Queries = st.Queries
		r.MeanResponseUS = st.MeanQueryTime().Microseconds()
		r.ThroughputQPS = st.Throughput()
		r.HitRatios = &HitRatioReport{
			RC:  st.ResultHitRatio(),
			IC:  st.ListHitRatio(),
			RIC: st.CombinedHitRatio(),
		}
		r.Stats = &st
		for _, row := range st.Situations.Table() {
			sr := SituationReport{
				ID:     fmt.Sprintf("S%d", int(row.Sit)+1),
				Name:   row.Sit.String(),
				Count:  row.Count,
				P:      row.P,
				MeanUS: row.MeanTime.Microseconds(),
			}
			if s.obs != nil && row.Count > 0 {
				lat := s.obs.SituationLatency(row.Sit)
				sr.P50US, sr.P95US, sr.P99US, sr.P999US = lat.P50, lat.P95, lat.P99, lat.P999
			}
			r.Situations = append(r.Situations, sr)
		}
	}

	if s.CacheFaults != nil && s.Manager != nil {
		fs := s.CacheFaults.FaultStats()
		st := s.Manager.Stats()
		r.Faults = &FaultReport{
			InjectedReadErrors:  fs.ReadErrors,
			InjectedWriteErrors: fs.WriteErrors,
			InjectedTrimErrors:  fs.TrimErrors,
			LatencySpikes:       fs.LatencySpikes,
			BadExtents:          fs.BadExtents,
			BadExtentHits:       fs.BadExtentHits,
			SSDReadErrors:       st.SSDReadErrors,
			SSDWriteErrors:      st.SSDWriteErrors,
			SSDTrimErrors:       st.SSDTrimErrors,
			ResultsRequeued:     st.ResultsRequeued,
			ResultsDropped:      st.ResultsDropped,
			ListsDiscarded:      st.ListsDiscarded,
			ExtentsQuarantined:  st.ExtentsQuarantined,
			QuarantinedBytes:    st.QuarantinedBytes,
			BreakerTrips:        st.BreakerTrips,
			DegradedServes:      st.DegradedServes,
		}
	}

	device := func(name string, st storage.DeviceStats) {
		r.Devices = append(r.Devices, DeviceReport{
			Name:        name,
			Reads:       st.Reads,
			Writes:      st.Writes,
			BytesRead:   st.BytesRead,
			BytesWrit:   st.BytesWrit,
			AvgAccessUS: st.AvgAccessTime().Microseconds(),
		})
	}
	wear := map[string]WearReport{}
	if s.HDD != nil {
		device("hdd", s.HDD.Stats())
	}
	if s.IndexSSD != nil {
		device("index-ssd", s.IndexSSD.Stats())
		w := s.IndexSSD.Wear()
		wear["index-ssd"] = WearReport{
			Erases: w.TotalErases, MaxBlockErases: w.MaxBlockErases,
			GCPageCopies: w.GCPageCopies, WriteAmplification: w.WriteAmplification,
			FreeBlocks: w.FreeBlocks,
		}
	}
	if s.CacheSSD != nil {
		device("cache-ssd", s.CacheSSD.Stats())
		w := s.CacheSSD.Wear()
		wear["cache-ssd"] = WearReport{
			Erases: w.TotalErases, MaxBlockErases: w.MaxBlockErases,
			GCPageCopies: w.GCPageCopies, WriteAmplification: w.WriteAmplification,
			FreeBlocks: w.FreeBlocks,
		}
	}
	if len(wear) > 0 {
		r.Wear = wear
	}

	if s.obs != nil {
		snap := s.obs.Registry.Snapshot()
		r.Registry = &snap
		r.Traces = s.obs.Tracer.Completed()
		rows := s.obs.Profile().Rows()
		var grand int64
		for _, row := range rows {
			grand += row.ElapsedNS
		}
		for _, row := range rows {
			ar := AttribReport{
				Situation:  row.Situation,
				Queries:    row.Queries,
				TotalNS:    row.ElapsedNS,
				Components: row.Attrib,
			}
			if grand > 0 {
				ar.Share = float64(row.ElapsedNS) / float64(grand)
			}
			r.Attribution = append(r.Attribution, ar)
		}
		if s.Manager == nil {
			r.Queries = s.obs.Queries()
			lat := s.obs.OverallLatency()
			r.MeanResponseUS = int64(lat.Mean)
		}
	}
	return r
}

// WriteJSONReport writes the indented JSON report to w.
func (s *System) WriteJSONReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.BuildReport())
}
