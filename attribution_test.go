package hybrid

import (
	"strings"
	"testing"

	"hybridstore/internal/core"
	"hybridstore/internal/obs"
	"hybridstore/internal/storage"
)

// checkAttributionContract runs n queries on sys with observability on and
// asserts the attribution contract for every completed trace: the
// per-component sums equal the simulated elapsed time exactly, and span
// durations never exceed it.
func checkAttributionContract(t *testing.T, sys *System, n int) {
	t.Helper()
	o := obs.New(obs.Options{TraceRing: n})
	sys.EnableObservability(o)
	if _, err := sys.Run(n); err != nil {
		t.Fatal(err)
	}
	traces := o.Tracer.Recent(0)
	if len(traces) != n {
		t.Fatalf("got %d traces, want %d", len(traces), n)
	}
	var sumElapsed int64
	for _, tr := range traces {
		if tr.Attrib == nil {
			t.Fatalf("seq %d: trace lacks attribution", tr.Seq)
		}
		if got := tr.Attrib.Sum(); got != tr.ElapsedNS {
			t.Fatalf("seq %d: attribution sums to %dns, elapsed %dns (off by %d)",
				tr.Seq, got, tr.ElapsedNS, tr.ElapsedNS-got)
		}
		var spanSum int64
		for _, s := range tr.Spans {
			spanSum += s.DurNS
		}
		if spanSum > tr.ElapsedNS {
			t.Fatalf("seq %d: span durations %d exceed elapsed %d", tr.Seq, spanSum, tr.ElapsedNS)
		}
		sumElapsed += tr.ElapsedNS
	}
	// The folded profile agrees with the traces it was folded from.
	queries, elapsedNS, attrib := o.Profile().Totals()
	if queries != int64(n) || elapsedNS != sumElapsed || attrib.Sum() != sumElapsed {
		t.Fatalf("profile totals queries=%d elapsed=%d attrib=%d, want %d/%d/%d",
			queries, elapsedNS, attrib.Sum(), n, sumElapsed, sumElapsed)
	}
}

// TestAttributionSumsToElapsed is the attribution≡elapsed contract across
// every cache mode and index placement: labels are applied at the clock,
// so no configuration may leak unattributed (or double-counted) time.
func TestAttributionSumsToElapsed(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"twolevel-cbslru", smallConfig(core.PolicyCBSLRU, CacheTwoLevel)},
		{"twolevel-lru", smallConfig(core.PolicyLRU, CacheTwoLevel)},
		{"onelevel", smallConfig(core.PolicyCBLRU, CacheOneLevel)},
		{"nocache", smallConfig(core.PolicyCBLRU, CacheNone)},
	}
	ssd := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	ssd.IndexOn = IndexOnSSD
	cases = append(cases, struct {
		name string
		cfg  Config
	}{"index-on-ssd", ssd})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkAttributionContract(t, sys, 400)
		})
	}
}

// TestAttributionUnderFaultInjection: injected errors, latency spikes and
// degraded-mode serving must not break the contract — every charged
// nanosecond still lands in exactly one component.
func TestAttributionUnderFaultInjection(t *testing.T) {
	cfg := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	cfg.CacheFaults = storage.FaultSpec{
		Seed:       5,
		Read:       storage.OpFaults{ErrProb: 0.02, SlowProb: 0.02},
		Write:      storage.OpFaults{ErrProb: 0.02},
		Trim:       storage.OpFaults{ErrProb: 0.02},
		StickyProb: 0.25,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAttributionContract(t, sys, 800)
	if st := sys.Manager.Stats(); st.SSDReadErrors+st.SSDWriteErrors+st.SSDTrimErrors == 0 {
		t.Fatal("fault sweep injected nothing — contract not exercised under faults")
	}
}

// TestAttributionReportSections: with observability on, both report forms
// carry the per-situation attribution table and its shares sum to ~1.
func TestAttributionReportSections(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheTwoLevel))
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableObservability(obs.New(obs.Options{TraceRing: 64}))
	if _, err := sys.Run(300); err != nil {
		t.Fatal(err)
	}
	r := sys.BuildReport()
	if len(r.Attribution) == 0 {
		t.Fatal("JSON report lacks attribution table")
	}
	var share float64
	for _, row := range r.Attribution {
		if row.Components.Sum() != row.TotalNS {
			t.Fatalf("situation %s: components sum %d != total %d",
				row.Situation, row.Components.Sum(), row.TotalNS)
		}
		share += row.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("attribution shares sum to %v", share)
	}
	text := sys.Report()
	if !strings.Contains(text, "latency attribution:") {
		t.Fatalf("text report lacks attribution section:\n%s", text)
	}
}

// TestGaugesSurviveRestartWarm is the regression test for the observe.go
// gauge closures: after RestartWarm swaps the manager, the gauges must
// read the new manager's counters, not a captured stale one — and clock
// attribution must keep working on the swapped system.
func TestGaugesSurviveRestartWarm(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheTwoLevel))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.Options{TraceRing: 64})
	sys.EnableObservability(o)
	if _, err := sys.Run(400); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveCacheMappings(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RestartWarm(); err != nil {
		t.Fatal(err)
	}
	oldManager := sys.Manager
	if _, err := sys.Run(200); err != nil {
		t.Fatal(err)
	}
	if sys.Manager != oldManager {
		t.Fatal("manager swapped again mid-run?")
	}

	st := sys.Manager.Stats()
	for name, want := range map[string]float64{
		obs.GaugeRCHitRatio:       st.ResultHitRatio(),
		obs.GaugeICHitRatio:       st.ListHitRatio(),
		obs.GaugeRICHitRatio:      st.CombinedHitRatio(),
		obs.GaugeQuarantinedBytes: float64(st.QuarantinedBytes),
	} {
		got, ok := o.Registry.GaugeValue(name)
		if !ok {
			t.Fatalf("gauge %s unregistered after RestartWarm", name)
		}
		if got != want {
			t.Fatalf("gauge %s = %v, new manager says %v (stale closure?)", name, got, want)
		}
	}
	if st.Queries != 200 {
		t.Fatalf("restored manager counted %d queries, want 200", st.Queries)
	}

	// Attribution still exact on the restarted system (the clock hook
	// survives because RestartWarm keeps the clock).
	for _, tr := range o.Tracer.Recent(10) {
		if tr.Attrib == nil || tr.Attrib.Sum() != tr.ElapsedNS {
			t.Fatalf("seq %d: attribution broken after RestartWarm", tr.Seq)
		}
	}
}
