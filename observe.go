package hybrid

import (
	"hybridstore/internal/obs"
)

// EnableObservability wires an Observer into the assembled system: the
// cache manager's event stream feeds the per-query tracer, the devices'
// op hooks attribute seeks and flash traffic, and the registry gains
// gauges for the run's headline quantities (hit ratios, SSD erase count,
// write amplification). Call once, after New; Search then produces one
// trace per query.
func (s *System) EnableObservability(o *obs.Observer) {
	s.obs = o
	// Label every advance of the shared clock onto the in-flight trace;
	// this is what makes per-query latency attribution sum exactly to the
	// elapsed time. RestartWarm keeps the same clock, so the hook survives
	// a warm restart.
	s.Clock.OnAdvance(o.HandleClockAdvance)
	if s.Manager != nil {
		s.Manager.SetEventSink(o.HandleEvent)
	}
	if s.HDD != nil {
		s.HDD.SetOpHook(o.HandleBackingOp)
	}
	if s.IndexSSD != nil {
		s.IndexSSD.SetOpHook(o.HandleBackingOp)
	}
	if s.CacheSSD != nil {
		s.CacheSSD.SetOpHook(o.HandleCacheOp)
	}

	// Gauges read through s so RestartWarm's manager swap stays covered.
	if s.Manager != nil {
		o.Registry.Gauge(obs.GaugeRCHitRatio, func() float64 {
			if s.Manager == nil {
				return 0
			}
			return s.Manager.Stats().ResultHitRatio()
		})
		o.Registry.Gauge(obs.GaugeICHitRatio, func() float64 {
			if s.Manager == nil {
				return 0
			}
			return s.Manager.Stats().ListHitRatio()
		})
		o.Registry.Gauge(obs.GaugeRICHitRatio, func() float64 {
			if s.Manager == nil {
				return 0
			}
			return s.Manager.Stats().CombinedHitRatio()
		})
		o.Registry.Gauge(obs.GaugeDegradedMode, func() float64 {
			if s.Manager == nil || !s.Manager.DegradedMode() {
				return 0
			}
			return 1
		})
		o.Registry.Gauge(obs.GaugeQuarantinedBytes, func() float64 {
			if s.Manager == nil {
				return 0
			}
			return float64(s.Manager.Stats().QuarantinedBytes)
		})
	}
	if s.CacheSSD != nil {
		o.Registry.Gauge(obs.GaugeSSDErases, func() float64 {
			return float64(s.CacheSSD.Wear().TotalErases)
		})
		o.Registry.Gauge(obs.GaugeSSDWriteAmp, func() float64 {
			return s.CacheSSD.Wear().WriteAmplification
		})
	}
	if s.CacheFaults != nil {
		o.Registry.Gauge("cache_injected_errors", func() float64 {
			fs := s.CacheFaults.FaultStats()
			return float64(fs.ReadErrors + fs.WriteErrors + fs.TrimErrors)
		})
	}
	if s.HDD != nil {
		o.Registry.Gauge("hdd_seq_hit_ratio", func() float64 {
			st := s.HDD.Stats()
			total := st.Reads + st.Writes
			if total == 0 {
				return 0
			}
			return float64(s.HDD.SequentialHits()) / float64(total)
		})
	}
}

// Obs returns the attached observer, or nil when observability is off.
func (s *System) Obs() *obs.Observer { return s.obs }

// Progress samples the observer's live progress (zero value when
// observability is off). Interval fields reset on every call.
func (s *System) Progress() obs.Progress {
	if s.obs == nil {
		return obs.Progress{}
	}
	return s.obs.Progress()
}
