// Command hybridlint runs the repository's contract-enforcing static
// analyzers (internal/analysis) over the given package patterns:
//
//	go run ./cmd/hybridlint ./...
//
// Analyzers:
//
//	detclock     simulated time/randomness must flow through internal/simclock
//	mapiter      output paths must not range over maps in randomized order
//	statsevent   paired core.Stats counters must emit their event in the
//	             same function (stats≡trace)
//	ioerr        storage-layer errors and allocator results must be handled
//	attrib       clock advances must carry a declared attribution Component
//	             (Σattrib≡elapsed)
//	bufalias     device-loaned buffers may not outlive the read call
//	             (zero-copy lifetime)
//	confine      concurrent closures in serve/experiments touch only state
//	             bound at creation (shard confinement)
//	allocbudget  hot-path functions stay within the committed escape-analysis
//	             budget in allocbudget.txt (runs `go build -gcflags=-m`)
//
// Flags:
//
//	-json             one JSON object per finding (analyzer, file, line,
//	                  col, message), for CI annotations; text mode is
//	                  byte-stable
//	-timing           per-analyzer wall time to stderr
//	-allocbudget=M    "auto" (default: run when allocbudget.txt exists at
//	                  the module root), "off", or an explicit budget file
//
// Findings can be suppressed with a justified directive on (or alone on
// the line above) the offending line:
//
//	//hybridlint:allow <analyzer> <reason>
//
// hybridlint audits the directives themselves: a missing reason, an
// unknown analyzer name, a directive naming an analyzer that never inspects
// the surrounding package, or a directive that no longer suppresses
// anything is a finding. allocbudget has no directive escape hatch at all —
// its budget file is the reviewable override. Exit status is 1 when any
// finding survives.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"hybridstore/internal/analysis"
	"hybridstore/internal/analysis/goloader"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding instead of text")
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	budgetMode := flag.String("allocbudget", "auto", `escape-analysis budget gate: "auto", "off", or a budget file path`)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hybridlint [-json] [-timing] [-allocbudget=auto|off|FILE] [packages]\n\nRuns the hybridstore contract analyzers (detclock, mapiter, statsevent, ioerr,\nattrib, bufalias, confine, allocbudget) over the given go-list package\npatterns (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := goloader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridlint: %v\n", err)
		os.Exit(2)
	}

	analyzers := analysis.All()
	elapsed := make(map[string]time.Duration, len(analyzers)+1)
	if *timing {
		for _, a := range analyzers {
			inner := a.Run
			name := a.Name
			a.Run = func(p *analysis.Pass) {
				//hybridlint:allow detclock host-side wall time measuring the linter itself, never simulated state
				t0 := time.Now()
				inner(p)
				//hybridlint:allow detclock host-side wall time measuring the linter itself, never simulated state
				elapsed[name] += time.Since(t0)
			}
		}
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.Run(pkg, analyzers)...)
	}

	if *budgetMode != "off" {
		path, ok := budgetFile(*budgetMode)
		if ok {
			//hybridlint:allow detclock host-side wall time measuring the linter itself, never simulated state
			t0 := time.Now()
			budgetDiags, err := analysis.RunAllocBudget(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hybridlint: %s: %v\n", analysis.AllocBudgetName, err)
				os.Exit(2)
			}
			//hybridlint:allow detclock host-side wall time measuring the linter itself, never simulated state
			elapsed[analysis.AllocBudgetName] = time.Since(t0)
			diags = append(diags, budgetDiags...)
		}
	}

	if *timing {
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "hybridlint: timing %-12s %v\n", a.Name, elapsed[a.Name].Round(time.Microsecond))
		}
		if d, ok := elapsed[analysis.AllocBudgetName]; ok {
			fmt.Fprintf(os.Stderr, "hybridlint: timing %-12s %v\n", analysis.AllocBudgetName, d.Round(time.Microsecond))
		}
	}

	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			if err := enc.Encode(jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "hybridlint: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hybridlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// A jsonDiag is the -json wire form of one finding, one object per line.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// budgetFile resolves the -allocbudget flag to a budget file path. In auto
// mode the gate runs exactly when the module root has a committed
// allocbudget.txt; an explicit path must exist.
func budgetFile(mode string) (string, bool) {
	if mode != "auto" {
		return mode, true
	}
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", false
	}
	path := filepath.Join(strings.TrimSpace(string(out)), analysis.BudgetFileName)
	if _, err := os.Stat(path); err != nil {
		return "", false
	}
	return path, true
}
