// Command hybridlint runs the repository's contract-enforcing static
// analyzers (internal/analysis) over the given package patterns:
//
//	go run ./cmd/hybridlint ./...
//
// Analyzers:
//
//	detclock    simulated time/randomness must flow through internal/simclock
//	mapiter     output paths must not range over maps in randomized order
//	statsevent  paired core.Stats counters must emit their event in the
//	            same function (stats≡trace)
//	ioerr       storage-layer errors and allocator results must be handled
//
// Findings can be suppressed with a justified directive on (or alone on
// the line above) the offending line:
//
//	//hybridlint:allow <analyzer> <reason>
//
// hybridlint audits the directives themselves: a missing reason, an
// unknown analyzer name, or a directive that no longer suppresses anything
// is a finding. Exit status is 1 when any finding survives.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridstore/internal/analysis"
	"hybridstore/internal/analysis/goloader"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hybridlint [packages]\n\nRuns the hybridstore contract analyzers (detclock, mapiter, statsevent, ioerr)\nover the given go-list package patterns (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := goloader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridlint: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, analysis.All()) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "hybridlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
