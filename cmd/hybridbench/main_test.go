package main

import (
	"strings"
	"testing"
)

func TestResolveScale(t *testing.T) {
	if _, err := resolveScale("full"); err != nil {
		t.Fatalf("full: %v", err)
	}
	if _, err := resolveScale("small"); err != nil {
		t.Fatalf("small: %v", err)
	}
	if _, err := resolveScale("mega"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestResolveTargets(t *testing.T) {
	all, err := resolveTargets("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 12 {
		t.Fatalf("all resolved to only %d experiments", len(all))
	}

	some, err := resolveTargets("fig17, fig14b")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].ID != "fig17" || some[1].ID != "fig14b" {
		t.Fatalf("comma list resolved to %+v", some)
	}

	for _, bad := range []string{"nonsense", "fig17,,fig14b", ""} {
		if _, err := resolveTargets(bad); err == nil {
			t.Fatalf("bad -exp %q accepted", bad)
		} else if !strings.Contains(err.Error(), "-list") {
			t.Fatalf("error for %q does not point at -list: %v", bad, err)
		} else {
			// The error must enumerate the registry so the user can fix
			// the typo without another round trip.
			for _, id := range []string{"fig17", "serving", "faults"} {
				if !strings.Contains(err.Error(), id) {
					t.Fatalf("error for %q does not list valid ID %q: %v", bad, id, err)
				}
			}
		}
	}
}
