// Command hybridbench regenerates the paper's tables and figures on the
// simulated system.
//
// Usage:
//
//	hybridbench -list
//	hybridbench -exp fig14b
//	hybridbench -exp all -scale full
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hybridstore/internal/experiments"
	"hybridstore/internal/obs"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "experiment ID to run (see -list), or 'all'")
		scaleFlag = flag.String("scale", "full", "workload scale: 'full' or 'small'")
		listFlag  = flag.Bool("list", false, "list experiments and exit")
		traceFlag = flag.String("trace", "", "write NDJSON query traces from every measured run to this file")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc experiments.Scale
	switch *scaleFlag {
	case "full":
		sc = experiments.FullScale()
	case "small":
		sc = experiments.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or small)\n", *scaleFlag)
		os.Exit(2)
	}

	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := bufio.NewWriterSize(f, 1<<20)
		sc.Obs = obs.New(obs.Options{TraceOut: w})
		defer func() {
			if err := w.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			if err := sc.Obs.Tracer.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "trace stream: %v\n", err)
			}
			fmt.Printf("wrote %d trace records to %s\n", sc.Obs.Tracer.Completed(), *traceFlag)
		}()
	}

	var targets []experiments.Experiment
	if *expFlag == "all" {
		targets = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			targets = append(targets, e)
		}
	}

	for _, e := range targets {
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, sc); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
