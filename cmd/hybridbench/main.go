// Command hybridbench regenerates the paper's tables and figures on the
// simulated system.
//
// Usage:
//
//	hybridbench -list
//	hybridbench -exp fig14b
//	hybridbench -exp all -scale full -jobs 8
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record. Sweep points run on a
// bounded worker pool (-jobs, default all CPUs); output is byte-identical
// for every -jobs value, and timing chatter goes to stderr so stdout can
// be diffed across runs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hybridstore/internal/core"
	"hybridstore/internal/experiments"
	"hybridstore/internal/index"
	"hybridstore/internal/obs"
)

// usageExit prints an error plus flag usage to stderr and exits non-zero.
func usageExit(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}

// writeProfilePair writes one experiment's simulated-time latency profile
// as gzipped pprof plus folded flamegraph stacks, rooted at the experiment
// ID. Both artifacts are deterministic: same seed, same bytes, at any
// -jobs count.
func writeProfilePair(base, expID string, p *obs.Profile) error {
	pbPath := base + "." + expID + ".pb.gz"
	f, err := os.Create(pbPath)
	if err != nil {
		return err
	}
	werr := p.WritePprof(f, expID)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("profile %s: %w", pbPath, werr)
	}
	foldedPath := base + "." + expID + ".folded"
	g, err := os.Create(foldedPath)
	if err != nil {
		return err
	}
	werr = p.WriteFolded(g, expID)
	if cerr := g.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("profile %s: %w", foldedPath, werr)
	}
	fmt.Fprintf(os.Stderr, "wrote latency profile %s (+ %s)\n", pbPath, foldedPath)
	return nil
}

// resolveScale maps the -scale flag to a Scale.
func resolveScale(name string) (experiments.Scale, error) {
	switch name {
	case "full":
		return experiments.FullScale(), nil
	case "small":
		return experiments.SmallScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (want full or small)", name)
	}
}

// validIDs renders every registered experiment ID, in paper order, for
// error messages.
func validIDs() string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ", ")
}

// resolveTargets maps the -exp flag to experiments, in paper order for
// "all" and in the given order for a comma-separated list. Every ID is
// validated against the experiment registry up front, so a typo fails
// immediately with the full list of valid names instead of surfacing
// mid-suite.
func resolveTargets(expFlag string) ([]experiments.Experiment, error) {
	if expFlag == "all" {
		return experiments.All(), nil
	}
	var targets []experiments.Experiment
	for _, id := range strings.Split(expFlag, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			return nil, fmt.Errorf("empty experiment ID in -exp %q; use -list for details, or one of: %s", expFlag, validIDs())
		}
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q; use -list for details, or one of: %s", id, validIDs())
		}
		targets = append(targets, e)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no experiments selected by -exp %q; use -list for details, or one of: %s", expFlag, validIDs())
	}
	return targets, nil
}

func main() {
	var (
		expFlag   = flag.String("exp", "all", "experiment ID to run (see -list), comma-separated list, or 'all'")
		scaleFlag = flag.String("scale", "full", "workload scale: 'full' or 'small'")
		codecFlag = flag.String("codec", "raw", "on-device posting codec: 'raw' or 'gvarint'")
		polFlag   = flag.String("policies", "", "restrict the zoo sweep to these comma-separated policies: "+strings.Join(core.RegisteredPolicyNames(), ", ")+" (empty = all)")
		jobsFlag  = flag.Int("jobs", runtime.NumCPU(), "max sweep points run concurrently (must be >= 1)")
		listFlag  = flag.Bool("list", false, "list experiments and exit")
		traceFlag = flag.String("trace", "", "write NDJSON query traces from every measured run to this file (forces -jobs 1)")
		profFlag  = flag.String("profile", "", "write simulated-time latency profiles, one pair per experiment: <base>.<exp>.pb.gz (pprof) and <base>.<exp>.folded (flamegraph stacks)")
		cpuFlag   = flag.String("cpuprofile", "", "write a host CPU profile of the runner to this file")
		memFlag   = flag.String("memprofile", "", "write a host heap profile of the runner to this file at exit")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if args := flag.Args(); len(args) > 0 {
		usageExit("unexpected argument %q", args[0])
	}
	if *jobsFlag < 1 {
		usageExit("-jobs must be >= 1, got %d", *jobsFlag)
	}

	sc, err := resolveScale(*scaleFlag)
	if err != nil {
		usageExit("%v", err)
	}
	sc.Jobs = *jobsFlag
	codec, err := index.ParseCodec(*codecFlag)
	if err != nil {
		usageExit("%v", err)
	}
	sc.Codec = codec
	if *polFlag != "" {
		for _, s := range strings.Split(*polFlag, ",") {
			p, err := core.ParsePolicy(strings.TrimSpace(s))
			if err != nil {
				usageExit("%v", err)
			}
			sc.ZooPolicies = append(sc.ZooPolicies, p)
		}
	}

	targets, err := resolveTargets(*expFlag)
	if err != nil {
		usageExit("%v", err)
	}

	if *traceFlag != "" {
		if *jobsFlag > 1 {
			fmt.Fprintln(os.Stderr, "note: -trace serializes execution (running with -jobs 1)")
		}
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := bufio.NewWriterSize(f, 1<<20)
		sc.Obs = obs.New(obs.Options{TraceOut: w})
		defer func() {
			if err := w.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			if err := sc.Obs.Tracer.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "trace stream: %v\n", err)
			}
			fmt.Printf("wrote %d trace records to %s\n", sc.Obs.Tracer.Completed(), *traceFlag)
		}()
	}

	// Host-side profiling of the runner itself (the simulated-time profiles
	// of -profile are a separate, deterministic artifact).
	stopCPU := func() {}
	if *cpuFlag != "" {
		f, err := os.Create(*cpuFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			fmt.Fprintf(os.Stderr, "wrote host CPU profile to %s\n", *cpuFlag)
		}
		defer stopCPU()
	}

	out := bufio.NewWriterSize(os.Stdout, 1<<16)
	defer out.Flush()
	suiteStart := time.Now() //hybridlint:allow detclock host wall-clock progress timing on stderr; never enters simulated results
	for _, e := range targets {
		fmt.Fprintf(out, "==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now() //hybridlint:allow detclock host wall-clock progress timing on stderr; never enters simulated results
		if *profFlag != "" {
			sc.Profile = obs.NewProfile()
		}
		if err := e.Run(out, sc); err != nil {
			out.Flush()
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			stopCPU()
			os.Exit(1)
		}
		if *profFlag != "" {
			if err := writeProfilePair(*profFlag, e.ID, sc.Profile); err != nil {
				out.Flush()
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", e.ID, err)
				stopCPU()
				os.Exit(1)
			}
		}
		fmt.Fprintln(out)
		out.Flush()
		//hybridlint:allow detclock host wall-clock progress timing on stderr; never enters simulated results
		fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *memFlag != "" {
		f, err := os.Create(*memFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile reflects retained memory
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote host heap profile to %s\n", *memFlag)
	}
	images, builds, bytes := experiments.ArtifactStats()
	//hybridlint:allow detclock host wall-clock progress timing on stderr; never enters simulated results
	fmt.Fprintf(os.Stderr, "suite completed in %v (jobs=%d; artifact cache: %d index builds for %d specs, %.1f MiB retained)\n",
		time.Since(suiteStart).Round(time.Millisecond), sc.Jobs, builds, images, float64(bytes)/(1<<20))
}
