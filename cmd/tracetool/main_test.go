package main

import (
	"testing"

	"hybridstore/internal/simclock"
)

// TestSummaryOrderCoversEveryComponent is the runtime mirror of the attrib
// analyzer's ordering check (and the tracetool half of simclock's
// TestComponentTable): every declared Component has exactly one rendering
// slot in summaryOrder, so a newly added component cannot silently vanish
// from summary, topk, or diff output.
func TestSummaryOrderCoversEveryComponent(t *testing.T) {
	seen := make(map[simclock.Component]bool, len(summaryOrder))
	for _, c := range summaryOrder {
		if c >= simclock.NumComponents {
			t.Errorf("summaryOrder lists %d, which is not a declared Component", c)
			continue
		}
		if seen[c] {
			t.Errorf("summaryOrder lists %s twice", c)
		}
		seen[c] = true
	}
	for c := simclock.Component(0); c < simclock.NumComponents; c++ {
		if !seen[c] {
			t.Errorf("summaryOrder omits %s: the component would vanish from reports", c)
		}
	}
}
