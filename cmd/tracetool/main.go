// Command tracetool analyzes NDJSON query traces written by searchsim or
// hybridbench -trace.
//
// Usage:
//
//	tracetool summary run.ndjson            # per-situation attribution table
//	tracetool topk -n 20 run.ndjson         # slowest queries, component breakdown
//	tracetool diff before.ndjson after.ndjson
//	tracetool flame run.ndjson > run.folded # flamegraph folded stacks
//
// summary also audits the attribution contract — every trace's component
// sums must equal its simulated elapsed time — and exits non-zero when a
// trace violates it or when no trace carries attribution at all, so CI can
// gate on it. All output is deterministic: situations sort
// lexicographically and components render in canonical enum order.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hybridstore/internal/obs"
	"hybridstore/internal/simclock"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "summary":
		err = runSummary(os.Args[2:])
	case "topk":
		err = runTopK(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "flame":
		err = runFlame(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tracetool: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}
}

// summaryOrder is the canonical component rendering order shared by
// summary, topk and diff. hybridlint's attrib analyzer (and the mirror test
// in main_test.go) checks it lists every declared simclock.Component
// exactly once, so a newly added component cannot silently vanish from
// reports.
var summaryOrder = []simclock.Component{
	simclock.CompOther,
	simclock.CompHDDSeek,
	simclock.CompHDDTransfer,
	simclock.CompSSDRead,
	simclock.CompSSDProgram,
	simclock.CompSSDEraseStall,
	simclock.CompCPUIntersect,
	simclock.CompCacheBookkeeping,
	simclock.CompQueueWait,
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: tracetool <command> [flags] <trace.ndjson>...

commands:
  summary   per-situation latency-attribution table; fails when any trace's
            attribution does not sum to its elapsed time, or when no trace
            carries attribution
  topk      slowest queries with per-component breakdown (-n, default 10)
  diff      per-component latency deltas between two trace files
  flame     folded flamegraph stacks (root;situation;component <ns>)
`)
}

// readTraces loads every NDJSON trace record from the named files, in file
// then line order. "-" reads stdin.
func readTraces(paths []string) ([]obs.QueryTrace, error) {
	var out []obs.QueryTrace
	for _, path := range paths {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<26)
		line := 0
		for sc.Scan() {
			line++
			if len(sc.Bytes()) == 0 {
				continue
			}
			var tr obs.QueryTrace
			if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
			out = append(out, tr)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
	}
	return out, nil
}

// fold aggregates traces into a per-situation profile. Traces without
// attribution are counted but contribute no components.
func fold(traces []obs.QueryTrace) (*obs.Profile, int) {
	p := obs.NewProfile()
	attributed := 0
	for _, tr := range traces {
		if tr.Attrib == nil {
			continue
		}
		attributed++
		p.Add(situation(tr), tr.ElapsedNS, *tr.Attrib)
	}
	return p, attributed
}

func situation(tr obs.QueryTrace) string {
	if tr.Situation == "" {
		return "uncached"
	}
	return tr.Situation
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	fs.Parse(args)
	traces, err := readTraces(files(fs))
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("no trace records found")
	}

	// The attribution contract: component sums equal elapsed, per trace.
	bad := 0
	for _, tr := range traces {
		if tr.Attrib == nil {
			continue
		}
		if sum := tr.Attrib.Sum(); sum != tr.ElapsedNS {
			bad++
			if bad <= 10 {
				fmt.Fprintf(os.Stderr, "tracetool: seq=%d qid=%d attribution sums to %dns, elapsed is %dns (off by %d)\n",
					tr.Seq, tr.QID, sum, tr.ElapsedNS, tr.ElapsedNS-sum)
			}
		}
	}
	prof, attributed := fold(traces)
	if attributed == 0 {
		return fmt.Errorf("%d traces, none carry attribution (trace written without clock attribution?)", len(traces))
	}

	rows := prof.Rows()
	var grand int64
	for _, row := range rows {
		grand += row.ElapsedNS
	}
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "traces=%d attributed=%d total_elapsed_ns=%d\n", len(traces), attributed, grand)
	for _, row := range rows {
		fmt.Fprintf(w, "%-18s n=%-7d total_ns=%-14d", row.Situation, row.Queries, row.ElapsedNS)
		for _, c := range summaryOrder {
			v := row.Attrib[c]
			// queue_wait prints even at zero: the serving layer's
			// saturation signal should be visible (as its absence) at a
			// glance, not hidden by the zero-elision the other components
			// get.
			if v == 0 && c != simclock.CompQueueWait {
				continue
			}
			fmt.Fprintf(w, " %s=%d(%.1f%%)", c, v,
				100*float64(v)/float64(row.ElapsedNS))
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d attributed traces violate attribution == elapsed", bad, attributed)
	}
	return nil
}

func runTopK(args []string) error {
	fs := flag.NewFlagSet("topk", flag.ExitOnError)
	n := fs.Int("n", 10, "number of slowest queries to print")
	fs.Parse(args)
	traces, err := readTraces(files(fs))
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("no trace records found")
	}
	sort.SliceStable(traces, func(i, j int) bool {
		if traces[i].ElapsedNS != traces[j].ElapsedNS {
			return traces[i].ElapsedNS > traces[j].ElapsedNS
		}
		return traces[i].Seq < traces[j].Seq
	})
	if *n < len(traces) {
		traces = traces[:*n]
	}
	w := bufio.NewWriter(os.Stdout)
	for _, tr := range traces {
		fmt.Fprintf(w, "seq=%-7d qid=%-10d %-18s elapsed_ns=%-12d", tr.Seq, tr.QID, situation(tr), tr.ElapsedNS)
		if tr.Attrib != nil {
			for _, c := range summaryOrder {
				v := tr.Attrib[c]
				if v == 0 {
					continue
				}
				fmt.Fprintf(w, " %s=%d", c, v)
			}
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	paths := files(fs)
	if len(paths) != 2 {
		return fmt.Errorf("diff wants exactly two trace files, got %d", len(paths))
	}
	var totals [2]obs.Attrib
	var elapsed [2]int64
	var count [2]int
	for i, path := range paths {
		traces, err := readTraces([]string{path})
		if err != nil {
			return err
		}
		count[i] = len(traces)
		for _, tr := range traces {
			elapsed[i] += tr.ElapsedNS
			if tr.Attrib != nil {
				totals[i].Merge(*tr.Attrib)
			}
		}
	}
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "a=%s traces=%d elapsed_ns=%d\n", paths[0], count[0], elapsed[0])
	fmt.Fprintf(w, "b=%s traces=%d elapsed_ns=%d\n", paths[1], count[1], elapsed[1])
	fmt.Fprintf(w, "%-18s %14s %14s %14s\n", "component", "a_ns", "b_ns", "delta_ns")
	for _, c := range summaryOrder {
		a, b := totals[0][c], totals[1][c]
		if a == 0 && b == 0 {
			continue
		}
		fmt.Fprintf(w, "%-18s %14d %14d %+14d\n", c, a, b, b-a)
	}
	fmt.Fprintf(w, "%-18s %14d %14d %+14d\n", "total_elapsed", elapsed[0], elapsed[1], elapsed[1]-elapsed[0])
	return w.Flush()
}

func runFlame(args []string) error {
	fs := flag.NewFlagSet("flame", flag.ExitOnError)
	fs.Parse(args)
	traces, err := readTraces(files(fs))
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("no trace records found")
	}
	prof, attributed := fold(traces)
	if attributed == 0 {
		return fmt.Errorf("%d traces, none carry attribution", len(traces))
	}
	return prof.WriteFolded(os.Stdout, "query")
}

// files returns the flag set's positional arguments, defaulting to stdin.
func files(fs *flag.FlagSet) []string {
	if fs.NArg() == 0 {
		return []string{"-"}
	}
	return fs.Args()
}
