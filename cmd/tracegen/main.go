// Command tracegen generates and characterizes search engine I/O traces
// (the reproduction's counterpart of DiskMon + the UMass trace repository,
// §III and Fig 1).
//
// Usage:
//
//	tracegen -kind websearch -reads 5000        # UMass-like synthetic trace
//	tracegen -kind engine -queries 500          # trace our engine's disk reads
//	tracegen -kind engine -csv > trace.csv      # raw (seq, sector) series
//	tracegen -spc WebSearch1.spc                # characterize a real SPC trace
//	tracegen -kind websearch -out-spc out.spc   # export in SPC format
package main

import (
	"flag"
	"fmt"
	"os"

	hybrid "hybridstore"
	"hybridstore/internal/engine"
	"hybridstore/internal/storage"
	"hybridstore/internal/trace"
	"hybridstore/internal/workload"
)

func main() {
	var (
		kind    = flag.String("kind", "engine", "trace kind: 'websearch' (synthetic) or 'engine' (measured)")
		spcIn   = flag.String("spc", "", "read an SPC-format trace file (e.g. a UMass WebSearch trace) instead of generating")
		spcOut  = flag.String("out-spc", "", "write the trace to this file in SPC format")
		limit   = flag.Int("limit", 0, "spc: max records to read (0 = all)")
		reads   = flag.Int("reads", 5000, "websearch: number of reads to synthesize")
		queries = flag.Int("queries", 500, "engine: number of queries to trace")
		docs    = flag.Int("docs", 1_000_000, "engine: collection size")
		csv     = flag.Bool("csv", false, "emit the full (seq,sector) series as CSV instead of a summary")
		seed    = flag.Uint64("seed", 0x0eb, "websearch: generator seed")
	)
	flag.Parse()

	var ops []storage.Op
	if *spcIn != "" {
		f, err := os.Open(*spcIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		recs, err := trace.ParseSPC(f, *limit)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ops = trace.SPCOps(recs)
		report(ops, *csv, *spcOut)
		return
	}
	switch *kind {
	case "websearch":
		p := trace.DefaultWebSearchParams()
		p.Reads = *reads
		p.Seed = *seed
		ops = trace.SyntheticWebSearch(p)
	case "engine":
		collection := workload.DefaultCollection(*docs)
		collection.VocabSize = 5000
		collection.MaxDFShare = 0.2
		engCfg := engine.DefaultConfig()
		engCfg.TerminationFrac = 0.35
		sys, err := hybrid.New(hybrid.Config{
			Collection: collection,
			QueryLog:   workload.DefaultQueryLog(collection.VocabSize),
			Mode:       hybrid.CacheNone,
			IndexOn:    hybrid.IndexOnHDD,
			Engine:     engCfg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rec := trace.NewRecorder(0)
		sys.HDD.SetOpHook(rec.Record)
		if _, err := sys.Run(*queries); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ops = rec.Ops()
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	report(ops, *csv, *spcOut)
}

// report prints the requested view of the trace and optionally exports it.
func report(ops []storage.Op, csv bool, spcOut string) {
	if spcOut != "" {
		f, err := os.Create(spcOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.WriteSPC(f, ops); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %d ops to %s\n", len(ops), spcOut)
	}
	if csv {
		fmt.Println("read_seq,logical_sector")
		for _, p := range trace.ReadSequence(ops) {
			fmt.Printf("%d,%d\n", p.Seq, p.LSN)
		}
		return
	}
	ch := trace.Analyze(ops)
	fmt.Printf("operations:            %d\n", ch.Ops)
	fmt.Printf("reads:                 %d (%.2f%%)\n", ch.Reads, 100*ch.ReadFraction)
	fmt.Printf("unique sectors:        %d\n", ch.UniqueSectors)
	fmt.Printf("top-10%% sector share:  %.3f\n", ch.Top10PctShare)
	fmt.Printf("sequential fraction:   %.3f\n", ch.SequentialFraction)
	fmt.Printf("forward-skip fraction: %.3f\n", ch.ForwardSkipFraction)
	fmt.Printf("backward fraction:     %.3f\n", ch.BackwardFraction)
}
