// Command searchsim runs an end-to-end search engine simulation with the
// paper's two-level SSD cache and prints a full system report: hit ratios,
// Table I situations, device counters and SSD wear.
//
// Usage:
//
//	searchsim -queries 10000 -policy cbslru
//	searchsim -queries 5000 -policy lru -mode onelevel
//	searchsim -docs 2000000 -mem 3145728 -report-every 2000
//	searchsim -ftl blockmap -queries 3000         # §II-A FTL ablation
//	searchsim -result-ttl 30s -list-ttl 30s       # §IV-B dynamic scenario
//	searchsim -aol user-ct-test.txt               # replay a real AOL log
//	searchsim -trace run.ndjson -metrics-every 1000  # per-query traces + live metrics
//	searchsim -json report.json                   # machine-readable final report
//	searchsim -serve -shards 4 -rate 200          # open-loop concurrent serving
//	searchsim -serve -shards 2 -burst-every 30s   # with periodic flash crowds
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/index"
	"hybridstore/internal/obs"
	"hybridstore/internal/serve"
	"hybridstore/internal/workload"
)

func main() {
	var (
		queries      = flag.Int("queries", 10000, "queries to run")
		docs         = flag.Int("docs", 1_000_000, "collection size")
		vocab        = flag.Int("vocab", 5000, "vocabulary size")
		mem          = flag.Int64("mem", 3<<20, "memory cache bytes")
		ssdRC        = flag.Int64("ssd-rc", 2<<20, "SSD result-cache region bytes")
		ssdIC        = flag.Int64("ssd-ic", 24<<20, "SSD list-cache region bytes")
		policyFlag   = flag.String("policy", "cbslru", "cache policy: "+strings.Join(core.RegisteredPolicyNames(), ", "))
		modeFlag     = flag.String("mode", "twolevel", "cache mode: none, onelevel, twolevel")
		indexFlag    = flag.String("index-on", "hdd", "index placement: hdd or ssd")
		codecFlag    = flag.String("codec", "raw", "on-device posting codec: raw or gvarint")
		ftlFlag      = flag.String("ftl", "pagemap", "cache SSD FTL: pagemap, blockmap, hybridlog")
		hetero       = flag.Bool("hetero", false, "heterogeneous cache tier: fast SSD for results, slower dense SSD for lists")
		heteroFactor = flag.Float64("hetero-factor", 0, "slow-tier latency multiplier for -hetero (0 = default 4)")
		resultTTL    = flag.Duration("result-ttl", 0, "dynamic scenario: TTL for cached results (0 = static)")
		listTTL      = flag.Duration("list-ttl", 0, "dynamic scenario: TTL for cached lists (0 = static)")
		aolFile      = flag.String("aol", "", "replay queries from an AOL-format log file instead of the synthetic stream")
		reportEvery  = flag.Int("report-every", 0, "print a progress line every N queries (0 = off)")
		traceFile    = flag.String("trace", "", "write one NDJSON trace record per query to this file")
		metricsEvery = flag.Int("metrics-every", 0, "print a live metrics line every N queries (0 = off)")
		jsonFile     = flag.String("json", "", "write the machine-readable JSON report to this file ('-' = stdout)")
		profileFile  = flag.String("profile", "", "write the simulated-time latency profile as gzipped pprof to this file (plus folded stacks to <file>.folded)")

		serveMode   = flag.Bool("serve", false, "concurrent serving mode: open-loop arrivals across -shards cache partitions with singleflight coalescing")
		shards      = flag.Int("shards", 2, "serve: number of cache shards (cache budgets are split across them)")
		rate        = flag.Float64("rate", 0, "serve: offered load in queries/simulated-second (0 = 1.5x the calibrated single-shard capacity)")
		serveWarm   = flag.Int("serve-warm", 1000, "serve: closed-loop warm queries before the open-loop run")
		hotWarm     = flag.Int("hot-warm", 32, "serve: per-shard hottest queries re-executed after warm (frequency-ranked warming)")
		burstEvery  = flag.Duration("burst-every", 0, "serve: inject a flash crowd every this much simulated time (0 = off)")
		burstFactor = flag.Float64("burst-factor", 4, "serve: arrival-rate multiplier during a flash crowd")
	)
	flag.Parse()

	policy, err := core.ParsePolicy(*policyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	placement := hybrid.IndexOnHDD
	if strings.EqualFold(*indexFlag, "ssd") {
		placement = hybrid.IndexOnSSD
	}
	codec, err := index.ParseCodec(*codecFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var ftl hybrid.FTLKind
	switch strings.ToLower(*ftlFlag) {
	case "pagemap":
		ftl = hybrid.FTLPageMap
	case "blockmap":
		ftl = hybrid.FTLBlockMap
	case "hybridlog":
		ftl = hybrid.FTLHybridLog
	default:
		fmt.Fprintf(os.Stderr, "unknown ftl %q\n", *ftlFlag)
		os.Exit(2)
	}

	collection := workload.DefaultCollection(*docs)
	collection.VocabSize = *vocab
	collection.MaxDFShare = 0.2
	cacheCfg := core.DefaultConfig(*mem)
	cacheCfg.Policy = policy
	cacheCfg.TEV = 2
	cacheCfg.SSDResultBytes = *ssdRC
	cacheCfg.SSDListBytes = *ssdIC
	cacheCfg.ResultTTL = *resultTTL
	cacheCfg.ListTTL = *listTTL
	engCfg := engine.DefaultConfig()
	engCfg.TerminationFrac = 0.35

	baseCfg := hybrid.Config{
		Collection: collection,
		QueryLog:   workload.DefaultQueryLog(collection.VocabSize),
		Cache:      cacheCfg,
		Mode:       mode,
		IndexOn:    placement,
		Codec:      codec,
		Engine:     engCfg,
		UseModelPU: true,
		CacheFTL:   ftl,

		HeteroCacheTier:  *hetero,
		HeteroSlowFactor: *heteroFactor,
	}

	if *serveMode {
		if *aolFile != "" {
			fmt.Fprintln(os.Stderr, "-serve does not support -aol replay")
			os.Exit(2)
		}
		runServe(baseCfg, serveOptions{
			queries:     *queries,
			shards:      *shards,
			rate:        *rate,
			warm:        *serveWarm,
			hotWarm:     *hotWarm,
			burstEvery:  *burstEvery,
			burstFactor: *burstFactor,
			traceFile:   *traceFile,
			profileFile: *profileFile,
		})
		return
	}

	sys, err := hybrid.New(baseCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	obsOpts := obs.Options{}
	if *metricsEvery > 0 {
		obsOpts.SampleEvery = *metricsEvery
	}
	var traceF *os.File
	var traceW *bufio.Writer
	if *traceFile != "" {
		traceF, err = os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		traceW = bufio.NewWriterSize(traceF, 1<<20)
		obsOpts.TraceOut = traceW
	}
	observer := obs.New(obsOpts)
	sys.EnableObservability(observer)

	var replay *workload.ReplayLog
	if *aolFile != "" {
		f, err := os.Open(*aolFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		qs, err := workload.ParseAOL(f, workload.AOLParseOptions{
			VocabSize: *vocab, SkipHeader: true,
		})
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(qs) == 0 {
			fmt.Fprintln(os.Stderr, "AOL log contained no usable queries")
			os.Exit(1)
		}
		replay = workload.NewReplayLog(qs)
		fmt.Printf("replaying %d queries from %s (cycling to %d)\n", len(qs), *aolFile, *queries)
	}

	if sys.Manager != nil && sys.Manager.UsesStaticPartition() {
		ws, err := sys.WarmupStatic(*queries)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("static warmup: pinned %d results, %d lists (from %d sampled queries)\n",
			ws.PinnedResults, ws.PinnedLists, ws.SampleQueries)
	}

	for done := 1; done <= *queries; done++ {
		var q workload.Query
		if replay != nil {
			q = replay.Next()
		} else {
			q = sys.Log.Next()
		}
		if _, _, err := sys.Search(q); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fireReport := *reportEvery > 0 && done%*reportEvery == 0
		fireMetrics := *metricsEvery > 0 && done%*metricsEvery == 0
		if fireReport || fireMetrics {
			// One Progress sample per boundary: it drains the interval
			// accumulators, so both lines must share it.
			p := sys.Progress()
			if fireReport {
				fmt.Printf("[%6d] mean_resp=%v RC=%.3f IC=%.3f RIC=%.3f\n",
					done, p.IntervalMeanTime, p.RC, p.IC, p.RIC)
			}
			if fireMetrics {
				fmt.Println(p.String())
			}
		}
	}
	fmt.Println()
	fmt.Print(sys.Report())

	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := traceF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := observer.Tracer.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "trace stream: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace records to %s\n", observer.Tracer.Completed(), *traceFile)
	}
	if *profileFile != "" {
		prof := observer.Profile()
		f, err := os.Create(*profileFile)
		if err == nil {
			err = prof.WritePprof(f, "query")
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err == nil {
			var g *os.File
			g, err = os.Create(*profileFile + ".folded")
			if err == nil {
				err = prof.WriteFolded(g, "query")
				if cerr := g.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote latency profile to %s (+ %s.folded)\n", *profileFile, *profileFile)
	}
	if *jsonFile != "" {
		out := os.Stdout
		if *jsonFile != "-" {
			f, err := os.Create(*jsonFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := sys.WriteJSONReport(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonFile != "-" {
			fmt.Printf("wrote JSON report to %s\n", *jsonFile)
		}
	}
}

// serveOptions carries the -serve flag set.
type serveOptions struct {
	queries     int
	shards      int
	rate        float64
	warm        int
	hotWarm     int
	burstEvery  time.Duration
	burstFactor float64
	traceFile   string
	profileFile string
}

// runServe drives the concurrent serving layer: open-loop Poisson arrivals
// (with optional flash crowds) across opt.shards cache partitions, with
// identical in-flight queries coalesced singleflight-style. It prints the
// pool's throughput/tail-latency summary plus a per-shard breakdown.
func runServe(base hybrid.Config, opt serveOptions) {
	rate := opt.rate
	if rate <= 0 {
		mu, err := serve.CalibrateQPS(base, opt.warm, opt.queries)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rate = 1.5 * mu
		fmt.Printf("calibrated single-shard capacity mu=%.1f q/s; offering 1.5x = %.1f q/s\n", mu, rate)
	}
	spec := workload.DefaultArrivals(rate)
	if opt.burstEvery > 0 {
		spec.BurstEvery = opt.burstEvery
		spec.BurstDuration = opt.burstEvery / 5
		spec.BurstFactor = opt.burstFactor
	}

	obsOpts := obs.Options{}
	var traceF *os.File
	var traceW *bufio.Writer
	if opt.traceFile != "" {
		var err error
		traceF, err = os.Create(opt.traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		traceW = bufio.NewWriterSize(traceF, 1<<20)
		obsOpts.TraceOut = traceW
	}
	observer := obs.New(obsOpts)

	pool, err := serve.New(serve.Config{
		Base:        base,
		Shards:      opt.shards,
		Arrivals:    spec,
		WarmQueries: opt.warm,
		HotWarm:     opt.hotWarm,
		Observer:    observer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := pool.Warm(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r, err := pool.Run(opt.queries)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println(r.String())
	fmt.Printf("arrivals=%d executed=%d coalesced=%d horizon=%v makespan=%v backlog_drain=%v\n",
		r.Arrivals, r.Executed, r.Coalesced,
		r.Horizon.Round(time.Millisecond), r.Makespan.Round(time.Millisecond),
		(r.Makespan - r.Horizon).Round(time.Millisecond))
	fmt.Printf("latency: mean=%v p50=%v p99=%v p999=%v total_queue_wait=%v\n",
		r.MeanLatency().Round(time.Microsecond), r.P50().Round(time.Microsecond),
		r.P99().Round(time.Microsecond), r.P999().Round(time.Microsecond),
		r.QueueWait.Round(time.Millisecond))
	for i := 0; i < pool.Shards(); i++ {
		sys := pool.System(i)
		if sys.Manager == nil {
			continue
		}
		st := sys.Manager.Stats()
		fmt.Printf("shard %d: queries=%d RC=%.3f IC=%.3f RIC=%.3f\n",
			i, st.Queries, st.ResultHitRatio(), st.ListHitRatio(), st.CombinedHitRatio())
	}

	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := traceF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := observer.Tracer.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "trace stream: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace records to %s\n", observer.Tracer.Completed(), opt.traceFile)
	}
	if opt.profileFile != "" {
		prof := obs.NewProfile()
		pool.MergeProfile(prof)
		f, err := os.Create(opt.profileFile)
		if err == nil {
			err = prof.WritePprof(f, "query")
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err == nil {
			var g *os.File
			g, err = os.Create(opt.profileFile + ".folded")
			if err == nil {
				err = prof.WriteFolded(g, "query")
				if cerr := g.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote latency profile to %s (+ %s.folded)\n", opt.profileFile, opt.profileFile)
	}
}

func parseMode(s string) (hybrid.CacheMode, error) {
	switch strings.ToLower(s) {
	case "none":
		return hybrid.CacheNone, nil
	case "onelevel":
		return hybrid.CacheOneLevel, nil
	case "twolevel":
		return hybrid.CacheTwoLevel, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want none, onelevel, twolevel)", s)
	}
}
