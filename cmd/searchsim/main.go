// Command searchsim runs an end-to-end search engine simulation with the
// paper's two-level SSD cache and prints a full system report: hit ratios,
// Table I situations, device counters and SSD wear.
//
// Usage:
//
//	searchsim -queries 10000 -policy cbslru
//	searchsim -queries 5000 -policy lru -mode onelevel
//	searchsim -docs 2000000 -mem 3145728 -report-every 2000
//	searchsim -ftl blockmap -queries 3000         # §II-A FTL ablation
//	searchsim -result-ttl 30s -list-ttl 30s       # §IV-B dynamic scenario
//	searchsim -aol user-ct-test.txt               # replay a real AOL log
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/workload"
)

func main() {
	var (
		queries     = flag.Int("queries", 10000, "queries to run")
		docs        = flag.Int("docs", 1_000_000, "collection size")
		vocab       = flag.Int("vocab", 5000, "vocabulary size")
		mem         = flag.Int64("mem", 3<<20, "memory cache bytes")
		ssdRC       = flag.Int64("ssd-rc", 2<<20, "SSD result-cache region bytes")
		ssdIC       = flag.Int64("ssd-ic", 24<<20, "SSD list-cache region bytes")
		policyFlag  = flag.String("policy", "cbslru", "cache policy: lru, cblru, cbslru")
		modeFlag    = flag.String("mode", "twolevel", "cache mode: none, onelevel, twolevel")
		indexFlag   = flag.String("index-on", "hdd", "index placement: hdd or ssd")
		ftlFlag     = flag.String("ftl", "pagemap", "cache SSD FTL: pagemap, blockmap, hybridlog")
		resultTTL   = flag.Duration("result-ttl", 0, "dynamic scenario: TTL for cached results (0 = static)")
		listTTL     = flag.Duration("list-ttl", 0, "dynamic scenario: TTL for cached lists (0 = static)")
		aolFile     = flag.String("aol", "", "replay queries from an AOL-format log file instead of the synthetic stream")
		reportEvery = flag.Int("report-every", 0, "print a progress line every N queries (0 = off)")
	)
	flag.Parse()

	policy, err := parsePolicy(*policyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	placement := hybrid.IndexOnHDD
	if strings.EqualFold(*indexFlag, "ssd") {
		placement = hybrid.IndexOnSSD
	}
	var ftl hybrid.FTLKind
	switch strings.ToLower(*ftlFlag) {
	case "pagemap":
		ftl = hybrid.FTLPageMap
	case "blockmap":
		ftl = hybrid.FTLBlockMap
	case "hybridlog":
		ftl = hybrid.FTLHybridLog
	default:
		fmt.Fprintf(os.Stderr, "unknown ftl %q\n", *ftlFlag)
		os.Exit(2)
	}

	collection := workload.DefaultCollection(*docs)
	collection.VocabSize = *vocab
	collection.MaxDFShare = 0.2
	cacheCfg := core.DefaultConfig(*mem)
	cacheCfg.Policy = policy
	cacheCfg.TEV = 2
	cacheCfg.SSDResultBytes = *ssdRC
	cacheCfg.SSDListBytes = *ssdIC
	cacheCfg.ResultTTL = *resultTTL
	cacheCfg.ListTTL = *listTTL
	engCfg := engine.DefaultConfig()
	engCfg.TerminationFrac = 0.35

	sys, err := hybrid.New(hybrid.Config{
		Collection: collection,
		QueryLog:   workload.DefaultQueryLog(collection.VocabSize),
		Cache:      cacheCfg,
		Mode:       mode,
		IndexOn:    placement,
		Engine:     engCfg,
		UseModelPU: true,
		CacheFTL:   ftl,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var replay *workload.ReplayLog
	if *aolFile != "" {
		f, err := os.Open(*aolFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		qs, err := workload.ParseAOL(f, workload.AOLParseOptions{
			VocabSize: *vocab, SkipHeader: true,
		})
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(qs) == 0 {
			fmt.Fprintln(os.Stderr, "AOL log contained no usable queries")
			os.Exit(1)
		}
		replay = workload.NewReplayLog(qs)
		fmt.Printf("replaying %d queries from %s (cycling to %d)\n", len(qs), *aolFile, *queries)
	}

	if policy == core.PolicyCBSLRU && mode == hybrid.CacheTwoLevel {
		ws, err := sys.WarmupStatic(*queries)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("static warmup: pinned %d results, %d lists (from %d sampled queries)\n",
			ws.PinnedResults, ws.PinnedLists, ws.SampleQueries)
	}

	step := *queries
	if *reportEvery > 0 && *reportEvery < step {
		step = *reportEvery
	}
	done := 0
	for done < *queries {
		n := step
		if *queries-done < n {
			n = *queries - done
		}
		var rs hybrid.RunStats
		var err error
		if replay != nil {
			start := sys.Clock.Now()
			for i := 0; i < n; i++ {
				if _, info, serr := sys.Search(replay.Next()); serr != nil {
					fmt.Fprintln(os.Stderr, serr)
					os.Exit(1)
				} else {
					rs.Queries++
					rs.TotalTime += info.Elapsed
					if info.Cached {
						rs.ResultHits++
					}
				}
			}
			rs.WallTime = sys.Clock.Now() - start
		} else {
			rs, err = sys.Run(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		done += n
		if *reportEvery > 0 {
			fmt.Printf("[%6d] mean_resp=%v throughput=%.1f q/s\n",
				done, rs.MeanResponseTime(), rs.Throughput())
		}
	}
	fmt.Println()
	fmt.Print(sys.Report())
}

func parsePolicy(s string) (core.Policy, error) {
	switch strings.ToLower(s) {
	case "lru":
		return core.PolicyLRU, nil
	case "cblru":
		return core.PolicyCBLRU, nil
	case "cbslru":
		return core.PolicyCBSLRU, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want lru, cblru, cbslru)", s)
	}
}

func parseMode(s string) (hybrid.CacheMode, error) {
	switch strings.ToLower(s) {
	case "none":
		return hybrid.CacheNone, nil
	case "onelevel":
		return hybrid.CacheOneLevel, nil
	case "twolevel":
		return hybrid.CacheTwoLevel, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want none, onelevel, twolevel)", s)
	}
}
