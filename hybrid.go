// Package hybrid is the public facade of the reproduction of "An Efficient
// SSD-based Hybrid Storage Architecture for Large-scale Search Engines"
// (Li et al., ICPP 2012).
//
// It assembles the full simulated system of the paper's Fig 2 — query
// engine, two-level cache manager (memory L1, SSD L2), SSD and HDD device
// models, synthetic collection and query log — behind one Config/System
// pair:
//
//	sys, err := hybrid.New(hybrid.DefaultConfig())
//	...
//	for i := 0; i < 10000; i++ {
//	    res, info, err := sys.SearchNext()
//	    ...
//	}
//	fmt.Println(sys.Report())
//
// Everything is deterministic: the same Config replays the same queries
// over the same index with the same simulated timings.
package hybrid

import (
	"fmt"
	"strings"
	"time"

	"hybridstore/internal/core"
	"hybridstore/internal/disksim"
	"hybridstore/internal/engine"
	"hybridstore/internal/flashsim"
	"hybridstore/internal/index"
	"hybridstore/internal/obs"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// Re-exported policy constants so callers need only this package. The
// full registry (names, summaries, constraints) is core.Policies().
const (
	PolicyLRU     = core.PolicyLRU
	PolicyCBLRU   = core.PolicyCBLRU
	PolicyCBSLRU  = core.PolicyCBSLRU
	PolicyTinyLFU = core.PolicyTinyLFU
	PolicyARC     = core.PolicyARC
	Policy2Q      = core.Policy2Q
	PolicyBidi    = core.PolicyBidi
)

// IndexPlacement says which device stores the index files (Table I's
// "HDD"/"SSD" index storage variants of Figs 15 and 18).
type IndexPlacement int

// Index placement options.
const (
	IndexOnHDD IndexPlacement = iota
	IndexOnSSD
)

// String names the placement.
func (p IndexPlacement) String() string {
	switch p {
	case IndexOnHDD:
		return "hdd"
	case IndexOnSSD:
		return "ssd"
	default:
		return fmt.Sprintf("IndexPlacement(%d)", int(p))
	}
}

// FTLKind selects the flash translation layer of the cache SSD (§II-A).
type FTLKind int

// FTL choices for the cache SSD. The paper baselines on the ideal
// page-mapped FTL; the block-mapped and hybrid log-block alternatives it
// surveys are available for ablation.
const (
	FTLPageMap FTLKind = iota
	FTLBlockMap
	FTLHybridLog
)

// String names the FTL.
func (f FTLKind) String() string {
	switch f {
	case FTLPageMap:
		return "page-map"
	case FTLBlockMap:
		return "block-map"
	case FTLHybridLog:
		return "hybrid-log"
	default:
		return fmt.Sprintf("FTLKind(%d)", int(f))
	}
}

// CacheMode selects the hierarchy depth.
type CacheMode int

// Cache modes: none (Fig 15), one-level = memory only ("1LC"), two-level =
// memory + SSD ("2LC").
const (
	CacheNone CacheMode = iota
	CacheOneLevel
	CacheTwoLevel
)

// String names the cache mode.
func (m CacheMode) String() string {
	switch m {
	case CacheNone:
		return "none"
	case CacheOneLevel:
		return "onelevel"
	case CacheTwoLevel:
		return "twolevel"
	default:
		return fmt.Sprintf("CacheMode(%d)", int(m))
	}
}

// Config assembles a full simulated system.
type Config struct {
	// Collection describes the synthetic document collection.
	Collection workload.CollectionSpec
	// QueryLog describes the synthetic query stream.
	QueryLog workload.QueryLogSpec
	// Cache configures the cache manager (policy, capacities). The SSD
	// regions are ignored unless Mode is CacheTwoLevel.
	Cache core.Config
	// Mode selects no cache, memory-only, or memory+SSD.
	Mode CacheMode
	// IndexOn places the index files on HDD (default) or SSD.
	IndexOn IndexPlacement
	// Codec selects the posting-block encoding of the on-device index
	// (default: index.CodecRaw). index.CodecGVarint stores compressed
	// lists; every cache tier and stat then accounts the compressed bytes.
	Codec index.CodecID
	// Engine tunes query processing (top-K, early termination).
	Engine engine.Config
	// UseModelPU, when true, supplies the analytic utilization model of
	// Fig 3(a) as the PU source (the paper assumes PU "already known by
	// analyzing the query log"). When false PU is measured online.
	UseModelPU bool
	// CacheFTL selects the cache SSD's flash translation layer
	// (default: the paper's ideal page-mapped baseline).
	CacheFTL FTLKind
	// CacheFaults injects deterministic device faults into the cache SSD:
	// per-operation error probabilities, latency spikes and sticky bad
	// extents (see storage.FaultSpec). The zero value injects nothing.
	// Only meaningful with Mode == CacheTwoLevel.
	CacheFaults storage.FaultSpec
	// HeteroCacheTier builds the cache SSD as a heterogeneous two-device
	// tier (ECI-style): a small fast SSD holding the result region backed
	// by a denser, slower SSD holding the list region and metadata. Only
	// meaningful with Mode == CacheTwoLevel and the page-mapped FTL; both
	// SSD regions must be configured. Wear splits per tier are available
	// via System.CacheTiered.
	HeteroCacheTier bool
	// HeteroSlowFactor scales the slow tier's page-read, page-program and
	// block-erase latencies relative to the paper's Table III device
	// (which the fast tier uses unchanged). Zero selects the default (4),
	// roughly a dense QLC drive against a fast SLC cache drive.
	HeteroSlowFactor float64
	// IndexImage, when non-nil, supplies a prebuilt serialized index for
	// Collection: New stamps it onto the index device instead of
	// re-synthesizing postings, which skips the CPU-heavy part of setup
	// when many systems share one collection. The image's spec must equal
	// Collection and its codec must equal Codec. Stamping charges the same
	// simulated device writes a direct build would, so the resulting
	// system is indistinguishable.
	IndexImage *index.Image
}

// DefaultConfig returns a laptop-scale rendition of the paper's evaluation
// setup (Table II): 1M documents standing in for 5M, AOL-like query log,
// CBLRU two-level cache with the 20/80 memory split and 10×/100× SSD
// regions.
func DefaultConfig() Config {
	collection := workload.DefaultCollection(1_000_000)
	return Config{
		Collection: collection,
		QueryLog:   workload.DefaultQueryLog(collection.VocabSize),
		Cache:      core.DefaultConfig(8 << 20),
		Mode:       CacheTwoLevel,
		IndexOn:    IndexOnHDD,
		Engine:     engine.DefaultConfig(),
		UseModelPU: true,
	}
}

// CacheDevice is the surface every cache-SSD FTL variant exposes.
type CacheDevice interface {
	storage.Device
	storage.Trimmer
	Wear() flashsim.WearStats
	Stats() storage.DeviceStats
	PageSize() int
	BlockSize() int64
	SetOpHook(func(storage.Op))
}

// System is an assembled simulation: devices, index, caches, engine, log.
type System struct {
	Clock    *simclock.Clock
	HDD      *disksim.HDD  // nil when the index lives on SSD
	IndexSSD *flashsim.SSD // nil when the index lives on HDD
	CacheSSD CacheDevice   // nil unless Mode == CacheTwoLevel
	// CacheFaults is the fault injector wrapping CacheSSD; nil unless
	// Config.CacheFaults enables injection. The manager performs all cache
	// I/O through it, while CacheSSD stays directly reachable for wear and
	// op-hook wiring.
	CacheFaults *storage.FaultyDevice
	Index       *index.Index
	Manager     *core.Manager // nil when Mode == CacheNone
	Engine      *engine.Engine
	Log         *workload.QueryLog

	cfg       Config
	cacheCfg  core.Config // effective manager config (after mode/PU wiring)
	engCfg    engine.Config
	docBytes  int
	baseline  engine.ListSource // raw index, for uncached execution
	uncachedE *engine.Engine
	obs       *obs.Observer // nil unless EnableObservability was called
}

// Validate reports configuration errors a System cannot be built from:
// unknown enum values, and policy×mode pairings that would silently
// misconfigure (a static-partition or bidirectional policy without an SSD
// level, a heterogeneous tier without a two-level cache). New calls it
// first, so CLIs and library users get identical rejections.
func (c Config) Validate() error {
	switch c.Mode {
	case CacheNone, CacheOneLevel, CacheTwoLevel:
	default:
		return fmt.Errorf("hybrid: unknown cache mode %d", c.Mode)
	}
	switch c.IndexOn {
	case IndexOnHDD, IndexOnSSD:
	default:
		return fmt.Errorf("hybrid: unknown index placement %d", c.IndexOn)
	}
	switch c.CacheFTL {
	case FTLPageMap, FTLBlockMap, FTLHybridLog:
	default:
		return fmt.Errorf("hybrid: unknown cache FTL %d", c.CacheFTL)
	}
	if c.Mode != CacheNone {
		if !c.Cache.Policy.Valid() {
			return fmt.Errorf("hybrid: unknown cache policy %d (want %s)",
				c.Cache.Policy, strings.Join(core.RegisteredPolicyNames(), ", "))
		}
		if c.Cache.Policy.RequiresTwoLevel() && c.Mode != CacheTwoLevel {
			return fmt.Errorf("hybrid: policy %s requires a two-level cache (Mode = CacheTwoLevel)",
				c.Cache.Policy)
		}
	}
	if c.HeteroCacheTier {
		if c.Mode != CacheTwoLevel {
			return fmt.Errorf("hybrid: HeteroCacheTier requires Mode = CacheTwoLevel")
		}
		if c.CacheFTL != FTLPageMap {
			return fmt.Errorf("hybrid: HeteroCacheTier requires the page-mapped cache FTL")
		}
		if c.Cache.SSDResultBytes <= 0 || c.Cache.SSDListBytes <= 0 {
			return fmt.Errorf("hybrid: HeteroCacheTier needs both SSD cache regions configured")
		}
		if c.HeteroSlowFactor < 0 {
			return fmt.Errorf("hybrid: negative HeteroSlowFactor %g", c.HeteroSlowFactor)
		}
	}
	return nil
}

// New builds the system: devices sized to the index, the index bulk-loaded
// onto its device, cache manager and engine wired to the shared clock.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Collection.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.QueryLog.Validate(); err != nil {
		return nil, err
	}
	if cfg.QueryLog.VocabSize > cfg.Collection.VocabSize {
		return nil, fmt.Errorf("hybrid: query log vocabulary (%d) exceeds collection vocabulary (%d)",
			cfg.QueryLog.VocabSize, cfg.Collection.VocabSize)
	}
	clock := simclock.New()
	s := &System{Clock: clock, cfg: cfg}

	// Serialize the index (or adopt the prebuilt image) first: devices are
	// sized to the encoded bytes, so a compressed codec buys a smaller
	// simulated device, not dead space.
	img := cfg.IndexImage
	if img != nil {
		if img.Spec() != cfg.Collection {
			return nil, fmt.Errorf("hybrid: index image built for %+v, config wants %+v",
				img.Spec(), cfg.Collection)
		}
		if img.Codec() != cfg.Codec {
			return nil, fmt.Errorf("hybrid: index image encoded with codec %s, config wants %s",
				img.Codec(), cfg.Codec)
		}
	} else {
		var err error
		img, err = index.BuildImage(cfg.Collection, cfg.Codec)
		if err != nil {
			return nil, err
		}
	}

	ixBytes := img.Bytes()
	var ixDev storage.Device
	switch cfg.IndexOn {
	case IndexOnHDD:
		s.HDD = disksim.New("hdd", clock, disksim.DefaultParams(ixBytes+(1<<20)))
		ixDev = s.HDD
	case IndexOnSSD:
		s.IndexSSD = flashsim.New("index-ssd", clock, flashsim.DefaultParams(ixBytes+(1<<20)))
		ixDev = s.IndexSSD
	default:
		return nil, fmt.Errorf("hybrid: unknown index placement %d", cfg.IndexOn)
	}
	ix, err := img.Stamp(ixDev)
	if err != nil {
		return nil, err
	}
	s.Index = ix
	s.baseline = ix

	engCfg := cfg.Engine
	engCfg.Clock = clock
	s.docBytes = engCfg.DocResultBytes
	if s.docBytes <= 0 {
		s.docBytes = 400
	}
	s.uncachedE = engine.New(ix, engCfg)

	if cfg.Mode != CacheNone {
		cacheCfg := cfg.Cache
		if cfg.Mode == CacheOneLevel {
			cacheCfg.SSDResultBytes, cacheCfg.SSDListBytes = 0, 0
		}
		if cfg.UseModelPU {
			model := workload.NewUtilizationModel(cfg.Collection)
			cacheCfg.PU = model.PU
		}
		var cacheDev storage.Device
		if cfg.Mode == CacheTwoLevel {
			// The cache SSD lives on a private clock: the manager charges
			// foreground read time (including queueing behind background
			// flushes) onto the shared clock itself.
			need := cacheCfg.SSDResultBytes + cacheCfg.SSDListBytes + (2 << 20)
			params := flashsim.DefaultParams(need)
			switch {
			case cfg.HeteroCacheTier:
				dev, err := buildHeteroCache(cacheCfg, cfg.HeteroSlowFactor)
				if err != nil {
					return nil, err
				}
				s.CacheSSD = dev
			case cfg.CacheFTL == FTLPageMap:
				s.CacheSSD = flashsim.New("cache-ssd", simclock.New(), params)
			case cfg.CacheFTL == FTLBlockMap:
				s.CacheSSD = flashsim.NewBlockMapped("cache-ssd", simclock.New(), params)
			case cfg.CacheFTL == FTLHybridLog:
				s.CacheSSD = flashsim.NewHybridLog("cache-ssd", simclock.New(), params)
			default:
				return nil, fmt.Errorf("hybrid: unknown cache FTL %d", cfg.CacheFTL)
			}
			cacheDev = s.CacheSSD
			if cfg.CacheFaults.Enabled() {
				s.CacheFaults = storage.NewFaultyDevice(s.CacheSSD, cfg.CacheFaults, nil)
				cacheDev = s.CacheFaults
			}
		}
		m, err := core.New(clock, ix, cacheDev, cacheCfg)
		if err != nil {
			return nil, err
		}
		s.Manager = m
		s.cacheCfg = cacheCfg
		s.Engine = engine.New(m, engCfg)
	} else {
		s.Engine = s.uncachedE
	}
	s.engCfg = engCfg

	s.Log = workload.NewQueryLog(cfg.QueryLog)
	return s, nil
}

// defaultHeteroSlowFactor is the slow tier's latency multiplier when
// Config.HeteroSlowFactor is zero: roughly a dense QLC drive behind the
// paper's Table III device.
const defaultHeteroSlowFactor = 4.0

// buildHeteroCache assembles the heterogeneous cache device: a fast SSD
// sized to the (block-rounded) result region, backed by a slower dense SSD
// holding the list region and the mapping-table metadata. Both tiers share
// one private clock, mirroring the single-device cache wiring.
func buildHeteroCache(cacheCfg core.Config, slowFactor float64) (*flashsim.Tiered, error) {
	// Replicate the manager's region rounding (core fillDefaults) so the
	// tier boundary lands exactly where the list region starts.
	bb := cacheCfg.BlockBytes
	if bb <= 0 {
		bb = 128 << 10
	}
	resultBytes := (cacheCfg.SSDResultBytes + bb - 1) / bb * bb
	listBytes := (cacheCfg.SSDListBytes + bb - 1) / bb * bb

	fastParams := flashsim.DefaultParams(resultBytes)
	flashBlock := int64(fastParams.PageSize * fastParams.PagesPerBlock)
	boundary := (resultBytes + flashBlock - 1) / flashBlock * flashBlock

	factor := slowFactor
	if factor == 0 {
		factor = defaultHeteroSlowFactor
	}
	slowParams := flashsim.DefaultParams(listBytes + (2 << 20))
	slowParams.PageReadLatency = time.Duration(float64(slowParams.PageReadLatency) * factor)
	slowParams.PageWriteLatency = time.Duration(float64(slowParams.PageWriteLatency) * factor)
	slowParams.BlockEraseLatency = time.Duration(float64(slowParams.BlockEraseLatency) * factor)

	tierClock := simclock.New()
	fast := flashsim.New("cache-ssd-fast", tierClock, fastParams)
	if fast.Size() != boundary {
		return nil, fmt.Errorf("hybrid: hetero tier boundary %d != fast device size %d", boundary, fast.Size())
	}
	slow := flashsim.New("cache-ssd-slow", tierClock, slowParams)
	return flashsim.NewTiered("cache-ssd", fast, slow, boundary), nil
}

// CacheTiered returns the heterogeneous cache device, or nil when the
// system was built without Config.HeteroCacheTier.
func (s *System) CacheTiered() *flashsim.Tiered {
	t, _ := s.CacheSSD.(*flashsim.Tiered)
	return t
}

// SearchInfo describes how one query was served.
type SearchInfo struct {
	// Cached is true when the result came from the result cache.
	Cached bool
	// Source reports the cache level on a hit.
	Source core.ResultSource
	// Elapsed is the simulated response time.
	Elapsed time.Duration
	// BytesRead counts list bytes the execution pulled (0 on result hits).
	BytesRead int64
}

// Search processes one query through the full hierarchy: result-cache
// lookup, query execution on miss, result caching, situation accounting.
// With observability enabled it also brackets the query with a trace.
func (s *System) Search(q workload.Query) (*engine.Result, SearchInfo, error) {
	return s.ServeAfterWait(q, 0)
}

// ServeAfterWait is Search for the serving layer: the query spent wait
// queued behind other work before the hierarchy could start on it. The
// wait is charged to the query on this system's clock under the
// queue_wait attribution component, so Elapsed (and the trace's attrib
// map) covers queueing delay plus service time exactly. Search is
// ServeAfterWait with zero wait.
func (s *System) ServeAfterWait(q workload.Query, wait time.Duration) (*engine.Result, SearchInfo, error) {
	if s.obs == nil {
		return s.search(q, wait)
	}
	s.obs.BeginQuery(q.ID, s.Clock.Now())
	res, info, err := s.search(q, wait)
	s.obs.EndQuery(s.Clock.Now(), info.Elapsed)
	return res, info, err
}

func (s *System) search(q workload.Query, wait time.Duration) (*engine.Result, SearchInfo, error) {
	sw := simclock.StartStopwatch(s.Clock)
	if wait > 0 {
		s.Clock.AdvanceAttr(wait, simclock.CompQueueWait)
		if s.obs != nil {
			s.obs.Tracer.QueueWait()
		}
	}
	if s.Manager == nil {
		res, stats, err := s.Engine.Execute(q)
		return res, SearchInfo{Elapsed: sw.Elapsed(), BytesRead: stats.BytesRead}, err
	}

	m := s.Manager
	m.BeginQuery(q.ID)
	if data, src := m.GetResult(q.ID); src != core.ResultMiss {
		res, err := engine.DecodeResult(data)
		info := SearchInfo{Cached: true, Source: src, Elapsed: sw.Elapsed()}
		m.EndQuery(info.Elapsed)
		return res, info, err
	}

	res, stats, err := s.Engine.Execute(q)
	if err != nil {
		m.EndQuery(sw.Elapsed())
		return nil, SearchInfo{Elapsed: sw.Elapsed()}, err
	}
	for _, ts := range stats.Terms {
		m.RecordUtilization(ts.Term, ts.Utilization)
	}
	if err := m.PutResult(q.ID, m.PadResult(res.Encode(s.docBytes))); err != nil {
		m.EndQuery(sw.Elapsed())
		return nil, SearchInfo{Elapsed: sw.Elapsed()}, err
	}
	info := SearchInfo{Elapsed: sw.Elapsed(), BytesRead: stats.BytesRead}
	m.EndQuery(info.Elapsed)
	return res, info, nil
}

// SaveCacheMappings persists the SSD cache's mapping tables to the cache
// device so a later RestartWarm (or an out-of-process restart against the
// same device) resumes with a warm L2 cache. Two-level systems only.
func (s *System) SaveCacheMappings() error {
	if s.Manager == nil || s.CacheSSD == nil {
		return fmt.Errorf("hybrid: no two-level cache to persist")
	}
	return s.Manager.SaveMappings()
}

// RestartWarm simulates a process restart with a persistent SSD: the
// in-memory L1 caches and mapping tables are discarded, then the manager
// is rebuilt from the mappings SaveCacheMappings stored on the cache
// device. The restored manager serves SSD-resident data without cold
// misses.
func (s *System) RestartWarm() error {
	if s.Manager == nil || s.CacheSSD == nil {
		return fmt.Errorf("hybrid: no two-level cache to restore")
	}
	var cacheDev storage.Device = s.CacheSSD
	if s.CacheFaults != nil {
		cacheDev = s.CacheFaults
	}
	m, err := core.Restore(s.Clock, s.Index, cacheDev, s.cacheCfg)
	if err != nil {
		return err
	}
	s.Manager = m
	s.Engine = engine.New(m, s.engCfg)
	if s.obs != nil {
		m.SetEventSink(s.obs.HandleEvent)
	}
	return nil
}

// SearchNext pulls the next query from the log and Searches it.
func (s *System) SearchNext() (*engine.Result, SearchInfo, error) {
	return s.Search(s.Log.Next())
}

// Run executes n queries from the log and returns aggregate measurements.
func (s *System) Run(n int) (RunStats, error) {
	var rs RunStats
	start := s.Clock.Now()
	for i := 0; i < n; i++ {
		_, info, err := s.SearchNext()
		if err != nil {
			return rs, fmt.Errorf("hybrid: query %d: %w", i, err)
		}
		rs.Queries++
		rs.TotalTime += info.Elapsed
		if info.Cached {
			rs.ResultHits++
		}
	}
	rs.WallTime = s.Clock.Now() - start
	return rs, nil
}

// RunStats aggregates a Run.
type RunStats struct {
	Queries    int
	ResultHits int
	TotalTime  time.Duration
	WallTime   time.Duration
}

// MeanResponseTime returns the average simulated response time.
func (r RunStats) MeanResponseTime() time.Duration {
	if r.Queries == 0 {
		return 0
	}
	return r.TotalTime / time.Duration(r.Queries)
}

// Throughput returns simulated queries per second.
func (r RunStats) Throughput() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.Queries) / r.WallTime.Seconds()
}
