// Package hybrid_test is the benchmark harness: one benchmark per
// table/figure of the paper's evaluation (each regenerates its rows at
// SmallScale, output discarded), plus microbenchmarks of the substrates.
// Run the full-scale printed versions with
// `go run ./cmd/hybridbench -scale full`.
package hybrid_test

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (each regenerates its rows at SmallScale and prints nothing),
// plus microbenchmarks of the substrates. Run the full-scale printed
// versions with `go run ./cmd/hybridbench -scale full`.

import (
	"io"
	"testing"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/disksim"
	"hybridstore/internal/engine"
	"hybridstore/internal/experiments"
	"hybridstore/internal/flashsim"
	"hybridstore/internal/index"
	"hybridstore/internal/intersect"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// benchExperiment runs one experiment regenerator per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	sc := experiments.SmallScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01_IOTrace(b *testing.B)           { benchExperiment(b, "fig1") }
func BenchmarkSec3_IOStats(b *testing.B)            { benchExperiment(b, "iostats") }
func BenchmarkFig03_Distributions(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkTable1_Situations(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkFig14a_HitRatioRCIC(b *testing.B)     { benchExperiment(b, "fig14a") }
func BenchmarkFig14b_HitRatioPolicies(b *testing.B) { benchExperiment(b, "fig14b") }
func BenchmarkFig15_NoCache(b *testing.B)           { benchExperiment(b, "fig15") }
func BenchmarkFig16_OneVsTwoLevel(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkFig17_PolicyPerformance(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig18_CostPerformance(b *testing.B)   { benchExperiment(b, "fig18") }
func BenchmarkFig19_InsideSSD(b *testing.B)         { benchExperiment(b, "fig19") }
func BenchmarkTables23_Environment(b *testing.B)    { benchExperiment(b, "tables23") }
func BenchmarkAblations_DesignChoices(b *testing.B) { benchExperiment(b, "ablate") }
func BenchmarkFTLComparison(b *testing.B)           { benchExperiment(b, "ftl") }
func BenchmarkDynamicScenarioTTL(b *testing.B)      { benchExperiment(b, "dynamic") }
func BenchmarkThreeLevelIntersections(b *testing.B) { benchExperiment(b, "threelevel") }

// --- substrate microbenchmarks ---

func BenchmarkSSDSequentialBlockWrite(b *testing.B) {
	d := flashsim.New("ssd", simclock.New(), flashsim.DefaultParams(64<<20))
	buf := make([]byte, 128<<10)
	size := d.Size()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	var off int64
	for i := 0; i < b.N; i++ {
		if _, err := d.WriteAt(buf, off); err != nil {
			b.Fatal(err)
		}
		off += int64(len(buf))
		if off+int64(len(buf)) > size {
			off = 0
		}
	}
}

func BenchmarkSSDRandomPageWrite(b *testing.B) {
	d := flashsim.New("ssd", simclock.New(), flashsim.DefaultParams(64<<20))
	rng := simclock.NewRNG(1)
	buf := make([]byte, 2<<10)
	pages := int(d.Size() / int64(len(buf)))
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(rng.Intn(pages)) * int64(len(buf))
		if _, err := d.WriteAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSDRandomRead(b *testing.B) {
	d := flashsim.New("ssd", simclock.New(), flashsim.DefaultParams(64<<20))
	buf := make([]byte, 8<<10)
	for off := int64(0); off+int64(len(buf)) <= d.Size(); off += int64(len(buf)) {
		d.WriteAt(buf, off)
	}
	rng := simclock.NewRNG(2)
	chunks := int(d.Size() / int64(len(buf)))
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(rng.Intn(chunks)) * int64(len(buf))
		if _, err := d.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHDDRandomRead(b *testing.B) {
	d := disksim.New("hdd", simclock.New(), disksim.DefaultParams(1<<30))
	rng := simclock.NewRNG(3)
	buf := make([]byte, 8<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(rng.Intn(1<<20)) * 512
		if _, err := d.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	spec := workload.DefaultCollection(100_000)
	spec.VocabSize = 1000
	need := index.RequiredBytes(spec) + 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := storage.NewMemDevice("idx", need, simclock.New(), storage.DefaultMemParams())
		if _, err := index.Build(dev, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineExecute(b *testing.B) {
	spec := workload.DefaultCollection(200_000)
	spec.VocabSize = 1000
	dev := storage.NewMemDevice("idx", index.RequiredBytes(spec)+4096,
		simclock.New(), storage.DefaultMemParams())
	ix, err := index.Build(dev, spec)
	if err != nil {
		b.Fatal(err)
	}
	e := engine.New(ix, engine.DefaultConfig())
	log := workload.NewQueryLog(workload.DefaultQueryLog(spec.VocabSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(log.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheManagerListRead(b *testing.B) {
	clock := simclock.New()
	spec := workload.DefaultCollection(200_000)
	spec.VocabSize = 1000
	hdd := storage.NewMemDevice("hdd", index.RequiredBytes(spec)+4096, clock, storage.DefaultMemParams())
	ix, err := index.Build(hdd, spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(2 << 20)
	cfg.SSDResultBytes = 2 << 20
	cfg.SSDListBytes = 16 << 20
	ssd := storage.NewMemDevice("ssd", 20<<20, simclock.New(), storage.DefaultMemParams())
	m, err := core.New(clock, ix, ssd, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := simclock.NewRNG(4)
	zipf := workload.NewZipf(simclock.NewRNG(5), spec.VocabSize, 0.9)
	buf := make([]byte, 8<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := workload.TermID(zipf.Next())
		n := ix.ListBytes(t)
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if err := m.ReadListRange(t, 0, buf[:n]); err != nil {
			b.Fatal(err)
		}
		_ = rng
	}
}

func BenchmarkConjunctiveExecute(b *testing.B) {
	spec := workload.DefaultCollection(200_000)
	spec.VocabSize = 1000
	dev := storage.NewMemDevice("idx", index.RequiredBytes(spec)+4096,
		simclock.New(), storage.DefaultMemParams())
	ix, err := index.Build(dev, spec)
	if err != nil {
		b.Fatal(err)
	}
	icache := intersect.New(4<<20, nil)
	conj := engine.NewConjunctive(ix, engine.DefaultConfig(), icache)
	log := workload.NewQueryLog(workload.DefaultQueryLog(spec.VocabSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := log.Next()
		if len(q.Terms) < 2 {
			continue
		}
		if _, _, err := conj.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndSearch(b *testing.B) {
	sc := experiments.SmallScale()
	collection := workload.DefaultCollection(sc.BaseDocs)
	collection.VocabSize = sc.Vocab
	collection.MaxDFShare = sc.MaxDFShare
	qlog := workload.DefaultQueryLog(sc.Vocab)
	qlog.DistinctQueries = sc.DistinctQueries
	cacheCfg := core.DefaultConfig(sc.MemBytes)
	cacheCfg.TEV = 2
	cacheCfg.SSDResultBytes = sc.SSDResultBytes
	cacheCfg.SSDListBytes = sc.SSDListBytes
	engCfg := engine.DefaultConfig()
	engCfg.TerminationFrac = 0.35
	sys, err := hybrid.New(hybrid.Config{
		Collection: collection,
		QueryLog:   qlog,
		Cache:      cacheCfg,
		Mode:       hybrid.CacheTwoLevel,
		IndexOn:    hybrid.IndexOnHDD,
		Engine:     engCfg,
		UseModelPU: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.SearchNext(); err != nil {
			b.Fatal(err)
		}
	}
}
