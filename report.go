package hybrid

import (
	"fmt"
	"strings"
	"time"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

// Report renders a human-readable snapshot of the whole system: cache hit
// ratios, Table I situation tally, device counters and SSD wear. With
// observability enabled the situation rows gain p50/p95/p99 latencies from
// the per-situation histograms.
func (s *System) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mode=%s index_on=%s", s.cfg.Mode, s.cfg.IndexOn)
	if s.Manager != nil {
		fmt.Fprintf(&sb, " policy=%s", s.Manager.Policy())
	}
	sb.WriteByte('\n')

	if s.Manager != nil {
		st := s.Manager.Stats()
		fmt.Fprintf(&sb, "queries=%d mean_response=%v throughput=%.1f q/s\n",
			st.Queries, st.MeanQueryTime(), st.Throughput())
		fmt.Fprintf(&sb, "hit ratios: RC=%.3f IC=%.3f RIC=%.3f\n",
			st.ResultHitRatio(), st.ListHitRatio(), st.CombinedHitRatio())
		fmt.Fprintf(&sb, "list bytes: mem=%d ssd=%d hdd=%d to_ssd=%d elided=%d discarded=%d\n",
			st.ListBytesFromMem, st.ListBytesFromSSD, st.ListBytesFromHDD,
			st.ListBytesToSSD, st.ListWritesElided, st.ListsDiscarded)
		fmt.Fprintf(&sb, "results: mem_hits=%d ssd_hits=%d misses=%d rb_flushes=%d elided=%d\n",
			st.ResultHitsMem, st.ResultHitsSSD, st.ResultMisses,
			st.RBFlushes, st.ResultWritesElided)
		sb.WriteString("situations (Table I):\n")
		for _, row := range st.Situations.Table() {
			if row.Count == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %-18s P=%.4f T=%v", row.Sit, row.P, row.MeanTime)
			if s.obs != nil {
				lat := s.obs.SituationLatency(row.Sit)
				fmt.Fprintf(&sb, " p50=%v p95=%v p99=%v",
					usDur(lat.P50), usDur(lat.P95), usDur(lat.P99))
			}
			sb.WriteByte('\n')
		}
	}
	if s.obs != nil {
		lat := s.obs.OverallLatency()
		if lat.Count > 0 {
			fmt.Fprintf(&sb, "latency (all queries): n=%d mean=%v p50=%v p95=%v p99=%v p999=%v\n",
				lat.Count, usDur(lat.Mean), usDur(lat.P50), usDur(lat.P95), usDur(lat.P99), usDur(lat.P999))
		}
		if rows := s.obs.Profile().Rows(); len(rows) > 0 {
			sb.WriteString("latency attribution:\n")
			for _, row := range rows {
				fmt.Fprintf(&sb, "  %-18s n=%d total=%v", row.Situation, row.Queries,
					time.Duration(row.ElapsedNS).Round(time.Microsecond))
				for c, v := range row.Attrib {
					if v == 0 {
						continue
					}
					fmt.Fprintf(&sb, " %s=%.1f%%", simclock.Component(c),
						100*float64(v)/float64(row.ElapsedNS))
				}
				sb.WriteByte('\n')
			}
		}
	}

	device := func(name string, stats storage.DeviceStats) {
		fmt.Fprintf(&sb, "%s: reads=%d writes=%d bytesR=%d bytesW=%d avg_access=%v\n",
			name, stats.Reads, stats.Writes, stats.BytesRead, stats.BytesWrit,
			stats.AvgAccessTime())
	}
	if s.HDD != nil {
		device("hdd", s.HDD.Stats())
	}
	if s.IndexSSD != nil {
		device("index-ssd", s.IndexSSD.Stats())
		w := s.IndexSSD.Wear()
		fmt.Fprintf(&sb, "index-ssd wear: erases=%d WA=%.3f\n", w.TotalErases, w.WriteAmplification)
	}
	if s.CacheSSD != nil {
		device("cache-ssd", s.CacheSSD.Stats())
		w := s.CacheSSD.Wear()
		fmt.Fprintf(&sb, "cache-ssd wear: erases=%d gc_copies=%d WA=%.3f free_blocks=%d\n",
			w.TotalErases, w.GCPageCopies, w.WriteAmplification, w.FreeBlocks)
	}
	return sb.String()
}

// usDur converts a microsecond quantity to a rounded Duration for display.
func usDur(us float64) time.Duration {
	return time.Duration(us * float64(time.Microsecond)).Round(time.Microsecond)
}
