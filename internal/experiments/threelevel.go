package experiments

import (
	"fmt"
	"io"
	"time"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/intersect"
	"hybridstore/internal/metrics"
	"hybridstore/internal/simclock"
)

// ThreeLevel implements the paper's second future-work item (§VIII): a
// third cache level holding term-pair intersections, evaluated on a
// conjunctive (AND) workload over the doc-sorted index with skip pointers.
// Rows compare no intersection cache against growing cache sizes.
func ThreeLevel(w io.Writer, sc Scale) error {
	queries := sc.MeasureQueries
	if queries > 2000 {
		queries = 2000
	}

	run := func(icacheBytes int64) (time.Duration, float64, int64, int64, error) {
		// Fresh uncached system; the conjunctive path reads the index
		// device directly, so the intersection cache is the only cache.
		sys, err := sc.system(core.PolicyLRU, hybrid.CacheNone, hybrid.IndexOnHDD, sc.BaseDocs, core.Config{})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		var icache *intersect.Cache
		if icacheBytes > 0 {
			icache = intersect.New(icacheBytes, func(n int) {
				sys.Clock.AdvanceAttr(100*time.Nanosecond+time.Duration(n)/10, simclock.CompCPUIntersect)
			})
		}
		engCfg := sc.engineConfig()
		engCfg.Clock = sys.Clock
		conj := engine.NewConjunctive(sys.Index, engCfg, icache)

		var blocksRead, blocksSkipped int64
		start := sys.Clock.Now()
		for i := 0; i < queries; i++ {
			q := sys.Log.Next()
			if len(q.Terms) < 2 {
				continue // conjunctions need at least two terms
			}
			_, stats, err := conj.Execute(q)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			blocksRead += stats.BlocksRead
			blocksSkipped += stats.BlocksSkipped
		}
		elapsed := sys.Clock.Now() - start
		hitRatio := 0.0
		if icache != nil {
			hitRatio = icache.Stats().HitRatio()
		}
		return elapsed / time.Duration(queries), hitRatio, blocksRead, blocksSkipped, nil
	}

	// One point per intersection-cache size on the worker pool.
	cases := []struct {
		name  string
		bytes int64
	}{
		{"none (two-level only)", 0},
		{"1x mem", sc.MemBytes},
		{"4x mem", 4 * sc.MemBytes},
	}
	type row struct {
		resp   time.Duration
		hr     float64
		br, bs int64
	}
	rows := make([]row, len(cases))
	err := sc.forPoints(len(cases), func(p int) error {
		resp, hr, br, bs, err := run(cases[p].bytes)
		if err != nil {
			return err
		}
		rows[p] = row{resp: resp, hr: hr, br: br, bs: bs}
		return nil
	})
	if err != nil {
		return err
	}
	tab := metrics.NewTable("intersection_cache", "resp_ms", "pair_hit_ratio", "blocks_read", "blocks_skipped")
	for p, c := range cases {
		tab.AddRow(c.name,
			float64(rows[p].resp.Microseconds())/1000,
			fmt.Sprintf("%.3f", rows[p].hr), rows[p].br, rows[p].bs)
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "(§VIII/[19]: cached intersections spare both posting-list reads for repeated")
	fmt.Fprintln(w, " term pairs; blocks_skipped shows the skip-pointer savings of §III either way)")
	return nil
}
