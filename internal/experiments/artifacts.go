package experiments

// Shared-artifact cache.
//
// Sweep points that agree on a CollectionSpec — every setup of Fig 16 at
// one doc count, every policy of Fig 17, every experiment pinned to
// BaseDocs — used to re-synthesize the identical collection and index per
// point. The cache builds each distinct spec's index image once (guarded
// singleflight-style so concurrent points wanting the same spec block on
// one build) and stamps the shared image onto every system's private
// device. A full-scale suite touches well under ten distinct specs, so the
// cache is deliberately unbounded; ResetArtifacts exists for tests and
// long-lived embedders.

import (
	"sync"

	"hybridstore/internal/index"
	"hybridstore/internal/workload"
)

type imageEntry struct {
	once sync.Once
	img  *index.Image
	err  error
}

// imageKey identifies one cached artifact: images differ per codec as well
// as per collection.
type imageKey struct {
	spec  workload.CollectionSpec
	codec index.CodecID
}

var artifactMu sync.Mutex
var artifactImages = make(map[imageKey]*imageEntry)
var artifactBuilds int64
var artifactBytes int64

// sharedImage returns the index image for (spec, codec), building it at
// most once per process no matter how many points request it concurrently.
func sharedImage(spec workload.CollectionSpec, codec index.CodecID) (*index.Image, error) {
	key := imageKey{spec: spec, codec: codec}
	artifactMu.Lock()
	e, ok := artifactImages[key]
	if !ok {
		e = &imageEntry{}
		artifactImages[key] = e
	}
	artifactMu.Unlock()
	e.once.Do(func() {
		e.img, e.err = index.BuildImage(spec, codec)
		artifactMu.Lock()
		artifactBuilds++
		if e.img != nil {
			artifactBytes += e.img.Bytes()
		}
		artifactMu.Unlock()
	})
	return e.img, e.err
}

// ArtifactStats reports cache contents: distinct specs seen, index builds
// performed, and bytes of serialized index retained.
func ArtifactStats() (images int, builds int64, bytes int64) {
	artifactMu.Lock()
	defer artifactMu.Unlock()
	return len(artifactImages), artifactBuilds, artifactBytes
}

// ResetArtifacts drops every cached image.
func ResetArtifacts() {
	artifactMu.Lock()
	defer artifactMu.Unlock()
	artifactImages = make(map[imageKey]*imageEntry)
	artifactBuilds = 0
	artifactBytes = 0
}
