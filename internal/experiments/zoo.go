package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// zooBudgetFactors scales the reference cache budgets (memory and SSD
// regions together) to show how each policy degrades under pressure.
var zooBudgetFactors = []float64{0.5, 1.0}

// zooWorkloads names the query-stream variants of the sweep: the reference
// log, and a low-locality variant with 4x the distinct queries so reuse
// distances stretch and admission policies have something to reject.
var zooWorkloads = []struct {
	name         string
	distinctMult int
}{
	{"reference", 1},
	{"lowloc", 4},
}

// Zoo sweeps every registered cache policy over budget x workload on the
// full two-level hierarchy and reports hit ratio, response time and flash
// wear per point, then compares a homogeneous cache SSD against the
// heterogeneous two-device tier (fast result SSD + dense slow list SSD).
// Policies come from the registry, so a newly registered policy joins the
// sweep without edits here. Each cell is one independent point on the
// worker pool.
func Zoo(w io.Writer, sc Scale) error {
	policies := core.Policies()
	if len(sc.ZooPolicies) > 0 {
		keep := make(map[core.Policy]bool, len(sc.ZooPolicies))
		for _, p := range sc.ZooPolicies {
			keep[p] = true
		}
		filtered := policies[:0:0]
		for _, info := range policies {
			if keep[info.ID] {
				filtered = append(filtered, info)
			}
		}
		policies = filtered
	}
	type cell struct {
		ric       float64
		respMs    float64
		hostPages int64
		erases    int64
	}
	points := len(policies) * len(zooBudgetFactors) * len(zooWorkloads)
	cells := make([]cell, points)
	err := sc.forPoints(points, func(p int) error {
		info := policies[p%len(policies)]
		factor := zooBudgetFactors[p/len(policies)%len(zooBudgetFactors)]
		wl := zooWorkloads[p/len(policies)/len(zooBudgetFactors)]

		cfg := sc.cacheConfig(info.ID)
		cfg.MemResultBytes = int64(float64(cfg.MemResultBytes) * factor)
		cfg.MemListBytes = int64(float64(cfg.MemListBytes) * factor)
		cfg.SSDResultBytes = int64(float64(cfg.SSDResultBytes) * factor)
		cfg.SSDListBytes = int64(float64(cfg.SSDListBytes) * factor)

		scWL := sc
		scWL.DistinctQueries *= wl.distinctMult
		sys, err := scWL.system(info.ID, hybrid.CacheTwoLevel, hybrid.IndexOnHDD, sc.BaseDocs, cfg)
		if err != nil {
			return err
		}
		rs, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		wear := sys.CacheSSD.Wear()
		cells[p] = cell{
			ric:       ms.CombinedHitRatio(),
			respMs:    float64(rs.MeanResponseTime().Microseconds()) / 1000,
			hostPages: wear.HostPagesWritten,
			erases:    wear.TotalErases,
		}
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "# Policy zoo — hit ratio, latency and flash wear per policy x budget x workload")
	tab := metrics.NewTable("workload", "budget", "policy", "RIC", "resp_ms", "ssd_pages", "erases")
	for wi, wl := range zooWorkloads {
		for fi, factor := range zooBudgetFactors {
			for pi, info := range policies {
				c := cells[(wi*len(zooBudgetFactors)+fi)*len(policies)+pi]
				tab.AddRow(wl.name, fmt.Sprintf("%.1fx", factor), info.Name,
					c.ric, c.respMs, c.hostPages, c.erases)
			}
		}
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "(reference = paper's AOL-like locality; lowloc = 4x distinct queries, stretching reuse distances)")

	return zooHetero(w, sc)
}

// zooHetero compares the homogeneous cache SSD against the heterogeneous
// tier on two representative policies, reporting the per-tier wear split
// that motivates the architecture: result traffic (hot, small, rewritten)
// lands on the fast device while bulk list flushes wear the dense one.
func zooHetero(w io.Writer, sc Scale) error {
	policies := []core.Policy{core.PolicyCBLRU, core.PolicyTinyLFU}
	type cell struct {
		ric                  float64
		respMs               float64
		fastPages, slowPages int64
	}
	points := len(policies) * 2 // homogeneous, heterogeneous
	cells := make([]cell, points)
	err := sc.forPoints(points, func(p int) error {
		policy := policies[p/2]
		hetero := p%2 == 1
		spec := sc.collection(sc.BaseDocs)
		img, err := sharedImage(spec, sc.Codec)
		if err != nil {
			return err
		}
		sys, err := hybrid.New(hybrid.Config{
			Collection:      spec,
			QueryLog:        sc.log(),
			Cache:           sc.cacheConfig(policy),
			Mode:            hybrid.CacheTwoLevel,
			IndexOn:         hybrid.IndexOnHDD,
			Codec:           sc.Codec,
			Engine:          sc.engineConfig(),
			UseModelPU:      true,
			IndexImage:      img,
			HeteroCacheTier: hetero,
		})
		if err != nil {
			return err
		}
		rs, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		c := cell{
			ric:    ms.CombinedHitRatio(),
			respMs: float64(rs.MeanResponseTime().Microseconds()) / 1000,
		}
		if t := sys.CacheTiered(); t != nil {
			c.fastPages = t.Fast().Wear().HostPagesWritten
			c.slowPages = t.Slow().Wear().HostPagesWritten
		} else {
			c.fastPages = sys.CacheSSD.Wear().HostPagesWritten
		}
		cells[p] = c
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "\n# Heterogeneous cache tier — homogeneous SSD vs fast/slow two-device tier")
	tab := metrics.NewTable("policy", "tier", "RIC", "resp_ms", "fast_pages", "slow_pages")
	for p, c := range cells {
		tier := "homogeneous"
		if p%2 == 1 {
			tier = "hetero"
		}
		tab.AddRow(policies[p/2].String(), tier, c.ric, c.respMs, c.fastPages, c.slowPages)
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "(hetero: result region on the fast device, list region + metadata on the 4x-slower dense device)")
	return nil
}
