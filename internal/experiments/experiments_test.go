package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// microScale is an even smaller configuration than SmallScale so every
// experiment completes in test time.
func microScale() Scale {
	return Scale{
		BaseDocs:        150_000,
		Vocab:           1200,
		MaxDFShare:      0.2,
		DistinctQueries: 3000,
		WarmQueries:     250,
		MeasureQueries:  300,
		MemBytes:        1 << 20 / 2,
		SSDResultBytes:  1 << 20 / 2,
		SSDListBytes:    3 << 20,
		DocSteps:        2,
		SizeSteps:       2,
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) < 12 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig17"); !ok {
		t.Fatal("fig17 not found")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("phantom experiment found")
	}
}

// TestEveryExperimentRuns executes each regenerator at micro scale and
// sanity-checks that it produced tabular output.
func TestEveryExperimentRuns(t *testing.T) {
	sc := microScale()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, sc); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("%s produced almost no output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "\n") {
				t.Fatalf("%s produced a single line", e.ID)
			}
		})
	}
}

func TestDocSweepShape(t *testing.T) {
	sc := microScale()
	sweep := sc.docSweep()
	if len(sweep) != sc.DocSteps {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	if sweep[len(sweep)-1] != sc.BaseDocs {
		t.Fatalf("sweep does not end at BaseDocs: %v", sweep)
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] <= sweep[i-1] {
			t.Fatalf("sweep not increasing: %v", sweep)
		}
	}
}

func TestMemSizesShape(t *testing.T) {
	sc := microScale()
	sizes := sc.memSizes()
	if len(sizes) != sc.SizeSteps {
		t.Fatalf("sizes has %d points", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not increasing: %v", sizes)
		}
	}
}

func TestScalesValid(t *testing.T) {
	for name, sc := range map[string]Scale{"full": FullScale(), "small": SmallScale()} {
		if sc.BaseDocs <= 0 || sc.Vocab <= 0 || sc.MemBytes <= 0 ||
			sc.WarmQueries <= 0 || sc.MeasureQueries <= 0 {
			t.Fatalf("%s scale has zero fields: %+v", name, sc)
		}
		if err := sc.collection(sc.BaseDocs).Validate(); err != nil {
			t.Fatalf("%s collection invalid: %v", name, err)
		}
		if err := sc.log().Validate(); err != nil {
			t.Fatalf("%s log invalid: %v", name, err)
		}
	}
}
