package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// fig16Config builds the cache configuration for one of Fig 16's setups.
// "R" setups cache results only (token list cache); "RI" caches both.
// Two-level setups use the paper's 10×/100× SSD region ratios.
func (sc Scale) fig16Config(twoLevel, withLists bool) core.Config {
	cfg := sc.cacheConfig(core.PolicyCBLRU)
	if !withLists {
		cfg.MemResultBytes = sc.MemBytes - cfg.ResultEntryBytes
		cfg.MemListBytes = cfg.ResultEntryBytes
	}
	if !twoLevel {
		cfg.SSDResultBytes, cfg.SSDListBytes = 0, 0
		return cfg
	}
	cfg.SSDResultBytes = 10 * cfg.MemResultBytes
	if withLists {
		cfg.SSDListBytes = sc.SSDListBytes
	} else {
		cfg.SSDListBytes = 0
	}
	return cfg
}

// Fig16OneVsTwoLevel regenerates Fig 16: (a) a one-level result cache with
// the index on HDD vs SSD; (b) one-level vs two-level caches on HDD,
// result-only vs result+list. Response time and throughput per collection
// size. Each (docs, setup) pair is one independent point on the worker
// pool; the four setups at one doc count stamp the same cached index image.
func Fig16OneVsTwoLevel(w io.Writer, sc Scale) error {
	type setup struct {
		name      string
		mode      hybrid.CacheMode
		placement hybrid.IndexPlacement
		twoLevel  bool
		withLists bool
	}
	setups := []setup{
		{"1LC(R)-HDD", hybrid.CacheOneLevel, hybrid.IndexOnHDD, false, false},
		{"1LC(R)-SSD", hybrid.CacheOneLevel, hybrid.IndexOnSSD, false, false},
		{"2LC(R)-HDD", hybrid.CacheTwoLevel, hybrid.IndexOnHDD, true, false},
		{"2LC(RI)-HDD", hybrid.CacheTwoLevel, hybrid.IndexOnHDD, true, true},
	}
	docs := sc.docSweep()
	type cell struct {
		resp float64
		qps  float64
	}
	cells := make([]cell, len(docs)*len(setups))
	err := sc.forPoints(len(cells), func(p int) error {
		st := setups[p%len(setups)]
		cfg := sc.fig16Config(st.twoLevel, st.withLists)
		sys, err := sc.system(core.PolicyCBLRU, st.mode, st.placement, docs[p/len(setups)], cfg)
		if err != nil {
			return err
		}
		rs, _, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		cells[p] = cell{
			resp: float64(rs.MeanResponseTime().Microseconds()) / 1000,
			qps:  rs.Throughput(),
		}
		return nil
	})
	if err != nil {
		return err
	}
	respTab := metrics.NewTable("docs", setups[0].name, setups[1].name, setups[2].name, setups[3].name)
	thrTab := metrics.NewTable("docs", setups[0].name, setups[1].name, setups[2].name, setups[3].name)
	for di, d := range docs {
		resp := make([]any, 0, len(setups)+1)
		thr := make([]any, 0, len(setups)+1)
		resp = append(resp, d)
		thr = append(thr, d)
		for si := range setups {
			c := cells[di*len(setups)+si]
			resp = append(resp, c.resp)
			thr = append(thr, fmtQPS(c.qps))
		}
		respTab.AddRow(resp...)
		thrTab.AddRow(thr...)
	}
	fmt.Fprintln(w, "# Fig 16 — mean response time (ms)")
	io.WriteString(w, respTab.String())
	fmt.Fprintln(w, "\n# Fig 16 — throughput (queries/s)")
	io.WriteString(w, thrTab.String())
	fmt.Fprintln(w, "(paper: SSD index storage alone helps little; the two-level cache, especially RI, wins)")
	return nil
}
