package experiments

import (
	"fmt"
	"io"
	"sort"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
	"hybridstore/internal/workload"
)

// Fig03Distributions regenerates Fig 3: (a) the inverted-list utilization
// rate distribution measured from real query executions, and (b) the term
// access frequency distribution of the query log — both as rank series,
// like the paper's plots over ranked terms.
func Fig03Distributions(w io.Writer, sc Scale) error {
	// (a) measured utilization: execute queries uncached and average the
	// fraction of each touched list the engine actually read.
	sys, err := sc.system(core.PolicyLRU, hybrid.CacheNone, hybrid.IndexOnHDD, sc.BaseDocs/2, core.Config{})
	if err != nil {
		return err
	}
	utilSum := make(map[workload.TermID]float64)
	utilN := make(map[workload.TermID]int)
	const sample = 600
	for i := 0; i < sample; i++ {
		q := sys.Log.Next()
		_, stats, err := sys.Engine.Execute(q)
		if err != nil {
			return err
		}
		for _, ts := range stats.Terms {
			utilSum[ts.Term] += ts.Utilization
			utilN[ts.Term]++
		}
	}
	utils := make([]float64, 0, len(utilSum))
	for _, t := range sortedKeys(utilSum) {
		utils = append(utils, utilSum[t]/float64(utilN[t]))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(utils)))

	fmt.Fprintln(w, "# Fig 3(a) — inverted list utilization rate distribution (ranked terms)")
	tab := metrics.NewTable("rank_pct", "utilization_%")
	for _, pct := range []int{0, 10, 25, 50, 75, 90, 99} {
		idx := pct * (len(utils) - 1) / 100
		tab.AddRow(pct, fmt.Sprintf("%.1f", 100*utils[idx]))
	}
	io.WriteString(w, tab.String())
	var mean float64
	for _, u := range utils {
		mean += u
	}
	mean /= float64(len(utils))
	fmt.Fprintf(w, "terms measured: %d, mean utilization %.1f%% (paper: most lists partially used)\n\n",
		len(utils), 100*mean)

	// (b) term access frequency over the log.
	fmt.Fprintln(w, "# Fig 3(b) — term access frequency distribution (ranked terms)")
	log := workload.NewQueryLog(sc.log())
	counts := log.TermFrequencies(20000)
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	tb := metrics.NewTable("term_rank", "access_count")
	for _, rank := range []int{0, 1, 5, 10, 50, 100, 500, 1000} {
		if rank < len(counts) {
			tb.AddRow(rank, counts[rank])
		}
	}
	io.WriteString(w, tb.String())
	fmt.Fprintln(w, "(Zipf-like: a small fraction of terms receives most accesses)")
	return nil
}
