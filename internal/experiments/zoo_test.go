package experiments

import (
	"bytes"
	"strings"
	"testing"

	"hybridstore/internal/core"
)

// TestZooByteIdenticalAcrossJobs: every zoo point is an independent
// deterministic system and rows are assembled in point order, so the sweep
// must render byte-identical output at any worker count — the per-policy
// form of the suite-wide -jobs guarantee.
func TestZooByteIdenticalAcrossJobs(t *testing.T) {
	run := func(jobs int) string {
		sc := microScale()
		sc.Jobs = jobs
		var buf bytes.Buffer
		if err := Zoo(&buf, sc); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out1 := run(1)
	out4 := run(4)
	if out1 != out4 {
		t.Fatalf("zoo output differs between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", out1, out4)
	}
	// Every registered policy must appear in the sweep.
	for _, info := range core.Policies() {
		if !strings.Contains(out1, info.Name) {
			t.Fatalf("policy %q missing from zoo output:\n%s", info.Name, out1)
		}
	}
	if !strings.Contains(out1, "hetero") {
		t.Fatalf("heterogeneous tier section missing:\n%s", out1)
	}
}
