package experiments

import (
	"fmt"
	"io"
	"time"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// DynamicScenario implements the paper's §IV-B/§VIII future-work study:
// cached data carries a TTL, and expired entries are recomputed from the
// backing store. The sweep shows the freshness/performance trade-off: as
// TTLs shrink, hit ratios fall and response time climbs back toward the
// uncached baseline.
func DynamicScenario(w io.Writer, sc Scale) error {
	ttls := []struct {
		name string
		ttl  time.Duration
	}{
		{"static (no TTL)", 0},
		{"TTL 60s", 60 * time.Second},
		{"TTL 10s", 10 * time.Second},
		{"TTL 2s", 2 * time.Second},
	}
	// One point per TTL scenario on the worker pool.
	type row struct {
		rc, ic, ric        float64
		respMs             float64
		expiredR, expiredI int64
	}
	rows := make([]row, len(ttls))
	err := sc.forPoints(len(ttls), func(p int) error {
		cfg := sc.cacheConfig(core.PolicyCBLRU)
		cfg.ResultTTL = ttls[p].ttl
		cfg.ListTTL = ttls[p].ttl
		sys, err := sc.system(core.PolicyCBLRU, hybrid.CacheTwoLevel, hybrid.IndexOnHDD, sc.BaseDocs, cfg)
		if err != nil {
			return err
		}
		rs, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		rows[p] = row{
			rc:       ms.ResultHitRatio(),
			ic:       ms.ListHitRatio(),
			ric:      ms.CombinedHitRatio(),
			respMs:   float64(rs.MeanResponseTime().Microseconds()) / 1000,
			expiredR: ms.ResultsExpired,
			expiredI: ms.ListsExpired,
		}
		return nil
	})
	if err != nil {
		return err
	}
	tab := metrics.NewTable("scenario", "RC", "IC", "RIC", "resp_ms", "expired(R)", "expired(I)")
	for p, c := range ttls {
		tab.AddRow(c.name, rows[p].rc, rows[p].ic, rows[p].ric, rows[p].respMs,
			rows[p].expiredR, rows[p].expiredI)
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "(§IV-B: expired entries are re-read from HDD; shorter TTLs trade performance for freshness)")
	return nil
}
