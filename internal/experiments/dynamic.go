package experiments

import (
	"fmt"
	"io"
	"time"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// DynamicScenario implements the paper's §IV-B/§VIII future-work study:
// cached data carries a TTL, and expired entries are recomputed from the
// backing store. The sweep shows the freshness/performance trade-off: as
// TTLs shrink, hit ratios fall and response time climbs back toward the
// uncached baseline.
func DynamicScenario(w io.Writer, sc Scale) error {
	ttls := []struct {
		name string
		ttl  time.Duration
	}{
		{"static (no TTL)", 0},
		{"TTL 60s", 60 * time.Second},
		{"TTL 10s", 10 * time.Second},
		{"TTL 2s", 2 * time.Second},
	}
	tab := metrics.NewTable("scenario", "RC", "IC", "RIC", "resp_ms", "expired(R)", "expired(I)")
	for _, c := range ttls {
		cfg := sc.cacheConfig(core.PolicyCBLRU)
		cfg.ResultTTL = c.ttl
		cfg.ListTTL = c.ttl
		sys, err := sc.system(core.PolicyCBLRU, hybrid.CacheTwoLevel, hybrid.IndexOnHDD, sc.BaseDocs, cfg)
		if err != nil {
			return err
		}
		rs, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		tab.AddRow(c.name,
			ms.ResultHitRatio(), ms.ListHitRatio(), ms.CombinedHitRatio(),
			float64(rs.MeanResponseTime().Microseconds())/1000,
			ms.ResultsExpired, ms.ListsExpired)
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "(§IV-B: expired entries are re-read from HDD; shorter TTLs trade performance for freshness)")
	return nil
}
