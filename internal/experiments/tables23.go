package experiments

import (
	"fmt"
	"io"

	"hybridstore/internal/metrics"
)

// Tables23Environment prints the reproduction's counterpart of the paper's
// Tables II (environment) and III (simulated SSD parameters), documenting
// each substitution.
func Tables23Environment(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "# Table II — environment (paper → reproduction)")
	env := metrics.NewTable("item", "paper", "reproduction")
	env.AddRow("IR tool", "Lucene 3.0.0", "internal/index + internal/engine (impact-ordered lists, top-K, early termination)")
	env.AddRow("data set", "enwiki-20090805 (5M docs)", fmt.Sprintf("synthetic Zipf collection (%d docs, %d terms)", sc.BaseDocs, sc.Vocab))
	env.AddRow("query log", "AOL collection", fmt.Sprintf("synthetic Zipf log (%d distinct queries)", sc.DistinctQueries))
	env.AddRow("I/O trace analyzer", "DiskMon 2.0.1", "internal/trace (device op hooks)")
	env.AddRow("SSD simulator", "FlashSim/DiskSim 3.0 (PSU)", "internal/flashsim (page-mapping FTL, greedy GC)")
	env.AddRow("SSD", "Intel SSD 320 40GB", "flashsim with Table III timings")
	env.AddRow("HDD", "WDC WD3200AAJS", "internal/disksim (7200 RPM seek/rotation/transfer model)")
	env.AddRow("OS / timing", "Windows Server 2003 / Ubuntu", "deterministic virtual clock (internal/simclock)")
	if _, err := io.WriteString(w, env.String()); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n# Table III — simulated SSD parameters (identical to the paper)")
	ssd := metrics.NewTable("parameter", "value")
	ssd.AddRow("FTL", "page-mapping")
	ssd.AddRow("page size", "2 KB")
	ssd.AddRow("block size", "128 KB (64 pages)")
	ssd.AddRow("page read", "32.725 µs")
	ssd.AddRow("page write", "101.475 µs")
	ssd.AddRow("block erase", "1.5 ms")
	_, err := io.WriteString(w, ssd.String())
	return err
}
