package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// Fig15NoCache regenerates Fig 15: uncached retrieval with the index on
// HDD vs SSD, response time and throughput over collection size. The
// paper's observation: response time rises sharply with collection size,
// and raw SSD index storage helps only modestly at this scale.
func Fig15NoCache(w io.Writer, sc Scale) error {
	tab := metrics.NewTable("docs", "HDD_resp_ms", "SSD_resp_ms", "HDD_qps", "SSD_qps")
	queries := sc.MeasureQueries / 4
	if queries < 200 {
		queries = 200
	}
	for _, docs := range sc.docSweep() {
		var resp [2]float64
		var qps [2]float64
		for i, placement := range []hybrid.IndexPlacement{hybrid.IndexOnHDD, hybrid.IndexOnSSD} {
			sys, err := sc.system(core.PolicyLRU, hybrid.CacheNone, placement, docs, core.Config{})
			if err != nil {
				return err
			}
			rs, err := sys.Run(queries)
			if err != nil {
				return err
			}
			resp[i] = float64(rs.MeanResponseTime().Microseconds()) / 1000
			qps[i] = rs.Throughput()
		}
		tab.AddRow(docs, resp[0], resp[1], fmtQPS(qps[0]), fmtQPS(qps[1]))
	}
	_, err := io.WriteString(w, tab.String())
	fmt.Fprintln(w, "(paper: both degrade with collection size; SSD helps but not dramatically without cache)")
	return err
}
