package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// Fig15NoCache regenerates Fig 15: uncached retrieval with the index on
// HDD vs SSD, response time and throughput over collection size. The
// paper's observation: response time rises sharply with collection size,
// and raw SSD index storage helps only modestly at this scale. Each
// (docs, placement) pair is one independent point on the worker pool.
func Fig15NoCache(w io.Writer, sc Scale) error {
	queries := sc.MeasureQueries / 4
	if queries < 200 {
		queries = 200
	}
	docs := sc.docSweep()
	placements := []hybrid.IndexPlacement{hybrid.IndexOnHDD, hybrid.IndexOnSSD}
	type cell struct {
		resp float64
		qps  float64
	}
	cells := make([]cell, len(docs)*len(placements))
	err := sc.forPoints(len(cells), func(p int) error {
		sys, err := sc.system(core.PolicyLRU, hybrid.CacheNone, placements[p%len(placements)],
			docs[p/len(placements)], core.Config{})
		if err != nil {
			return err
		}
		rs, err := sys.Run(queries)
		if err != nil {
			return err
		}
		cells[p] = cell{
			resp: float64(rs.MeanResponseTime().Microseconds()) / 1000,
			qps:  rs.Throughput(),
		}
		return nil
	})
	if err != nil {
		return err
	}
	tab := metrics.NewTable("docs", "HDD_resp_ms", "SSD_resp_ms", "HDD_qps", "SSD_qps")
	for di, d := range docs {
		hdd, ssd := cells[di*2], cells[di*2+1]
		tab.AddRow(d, hdd.resp, ssd.resp, fmtQPS(hdd.qps), fmtQPS(ssd.qps))
	}
	_, err = io.WriteString(w, tab.String())
	fmt.Fprintln(w, "(paper: both degrade with collection size; SSD helps but not dramatically without cache)")
	return err
}
