package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// Fig19InsideSSD regenerates Fig 19: cumulative block erasure count (a)
// and flash average access time (b) as the query count grows, for the
// three policies. Each policy runs one system from cold with checkpoints —
// exactly the paper's 10k..100k query-count sweep, scaled.
func Fig19InsideSSD(w io.Writer, sc Scale) error {
	checkpoints := 10
	step := (sc.WarmQueries + sc.MeasureQueries) / checkpoints
	if step < 100 {
		step = 100
	}

	type series struct {
		erases []int64
		avgUs  []float64
	}
	policies := []core.Policy{core.PolicyLRU, core.PolicyCBLRU, core.PolicyCBSLRU}
	// One point per policy: each runs its own system from cold through all
	// checkpoints (the checkpoints are a time series over one system, so
	// they stay sequential inside the point).
	byPolicy := make([]*series, len(policies))
	err := sc.forPoints(len(policies), func(p int) error {
		policy := policies[p]
		sys, err := sc.system(policy, hybrid.CacheTwoLevel, hybrid.IndexOnHDD,
			sc.BaseDocs, sc.cacheConfig(policy))
		if err != nil {
			return err
		}
		if policy == core.PolicyCBSLRU {
			if _, err := sys.WarmupStatic(2 * sc.WarmQueries); err != nil {
				return err
			}
		}
		s := &series{}
		for c := 0; c < checkpoints; c++ {
			if _, err := sys.Run(step); err != nil {
				return err
			}
			s.erases = append(s.erases, sys.CacheSSD.Wear().TotalErases)
			s.avgUs = append(s.avgUs, float64(sys.CacheSSD.Stats().AvgAccessTime().Nanoseconds())/1000)
		}
		byPolicy[p] = s
		return nil
	})
	if err != nil {
		return err
	}
	results := make(map[core.Policy]*series)
	for p, policy := range policies {
		results[policy] = byPolicy[p]
	}

	fmt.Fprintln(w, "# Fig 19(a) — cumulative block erasure count")
	eraseTab := metrics.NewTable("queries", "LRU", "CBLRU", "CBSLRU")
	for c := 0; c < checkpoints; c++ {
		eraseTab.AddRow((c+1)*step,
			results[core.PolicyLRU].erases[c],
			results[core.PolicyCBLRU].erases[c],
			results[core.PolicyCBSLRU].erases[c])
	}
	io.WriteString(w, eraseTab.String())

	last := checkpoints - 1
	lruE := float64(results[core.PolicyLRU].erases[last])
	if lruE > 0 {
		fmt.Fprintf(w, "erase reduction vs LRU: CBLRU %.1f%%, CBSLRU %.1f%% (paper: 59.92%%, 71.52%%)\n",
			100*(lruE-float64(results[core.PolicyCBLRU].erases[last]))/lruE,
			100*(lruE-float64(results[core.PolicyCBSLRU].erases[last]))/lruE)
	}

	fmt.Fprintln(w, "\n# Fig 19(b) — flash average access time (µs, cumulative)")
	avgTab := metrics.NewTable("queries", "LRU", "CBLRU", "CBSLRU")
	for c := 0; c < checkpoints; c++ {
		avgTab.AddRow((c+1)*step,
			results[core.PolicyLRU].avgUs[c],
			results[core.PolicyCBLRU].avgUs[c],
			results[core.PolicyCBSLRU].avgUs[c])
	}
	io.WriteString(w, avgTab.String())
	lruA := results[core.PolicyLRU].avgUs[last]
	if lruA > 0 {
		fmt.Fprintf(w, "access-time reduction vs LRU: CBLRU %.1f%%, CBSLRU %.1f%% (paper: 13.20%%, 43.83%%)\n",
			100*(lruA-results[core.PolicyCBLRU].avgUs[last])/lruA,
			100*(lruA-results[core.PolicyCBSLRU].avgUs[last])/lruA)
	}
	fmt.Fprintln(w, "(paper: writes dominate early, reads later, so the cumulative average falls and settles)")
	return nil
}
