package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"hybridstore/internal/index"
	"hybridstore/internal/obs"
)

// TestParallelOutputIdentical is the determinism contract for the worker
// pool: running a sweep experiment with Jobs=1 and Jobs=8 must produce
// byte-identical output. It covers several sweeps with different point
// shapes (size×component grid, doc×placement grid, policy list) and runs
// under -race in CI, so it also exercises the pool for data races.
func TestParallelOutputIdentical(t *testing.T) {
	ids := []string{"fig14a", "fig16", "fig17", "dynamic"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			serial := microScale()
			serial.Jobs = 1
			var want bytes.Buffer
			if err := e.Run(&want, serial); err != nil {
				t.Fatalf("serial run failed: %v", err)
			}

			parallel := microScale()
			parallel.Jobs = 8
			var got bytes.Buffer
			if err := e.Run(&got, parallel); err != nil {
				t.Fatalf("parallel run failed: %v", err)
			}

			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("Jobs=1 and Jobs=8 output differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
					want.String(), got.String())
			}
		})
	}
}

func TestForPointsRunsEveryPoint(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 16} {
		sc := Scale{Jobs: jobs}
		const n = 23
		var hits [n]atomic.Int32
		if err := sc.forPoints(n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("jobs=%d: point %d ran %d times", jobs, i, got)
			}
		}
	}
}

// TestForPointsErrorDeterministic checks the error contract: every point
// still runs, and the reported error is the lowest-numbered failure no
// matter how the pool schedules the points.
func TestForPointsErrorDeterministic(t *testing.T) {
	sc := Scale{Jobs: 8}
	const n = 12
	wantErr := errors.New("point 3 failed")
	var ran atomic.Int32
	err := sc.forPoints(n, func(i int) error {
		ran.Add(1)
		switch i {
		case 3:
			return wantErr
		case 7, 11:
			return fmt.Errorf("point %d failed", i)
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got error %v, want lowest-index error %v", err, wantErr)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("only %d of %d points ran after failure", got, n)
	}
}

// TestForPointsSerialStopsOnError: the serial fast path keeps the
// pre-refactor behavior of stopping at the first failure.
func TestForPointsSerialStopsOnError(t *testing.T) {
	sc := Scale{Jobs: 1}
	var ran int
	err := sc.forPoints(10, func(i int) error {
		ran++
		if i == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran != 3 {
		t.Fatalf("serial path ran %d points after failure, want 3", ran)
	}
}

// TestObserverForcesSerial: the tracer assumes one query in flight, so an
// attached Observer must drop the effective worker count to 1.
func TestObserverForcesSerial(t *testing.T) {
	sc := microScale()
	sc.Jobs = 8
	if got := sc.jobs(); got != 8 {
		t.Fatalf("jobs() = %d without observer, want 8", got)
	}
	sc.Obs = obs.New(obs.Options{})
	if got := sc.jobs(); got != 1 {
		t.Fatalf("jobs() = %d with observer attached, want 1", got)
	}
}

// TestSharedImageCaching: repeated requests for one spec build once;
// distinct specs build separately; ResetArtifacts clears the cache.
func TestSharedImageCaching(t *testing.T) {
	ResetArtifacts()
	defer ResetArtifacts()

	sc := microScale()
	specA := sc.collection(sc.BaseDocs)
	specB := sc.collection(sc.BaseDocs / 2)

	imgA1, err := sharedImage(specA, index.CodecRaw)
	if err != nil {
		t.Fatal(err)
	}
	imgA2, err := sharedImage(specA, index.CodecRaw)
	if err != nil {
		t.Fatal(err)
	}
	if imgA1 != imgA2 {
		t.Fatal("same spec returned distinct images")
	}
	if _, err := sharedImage(specB, index.CodecRaw); err != nil {
		t.Fatal(err)
	}
	// Same spec under a different codec is a distinct artifact.
	imgAGV, err := sharedImage(specA, index.CodecGVarint)
	if err != nil {
		t.Fatal(err)
	}
	if imgAGV == imgA1 {
		t.Fatal("distinct codecs returned one image")
	}

	images, builds, bytes := ArtifactStats()
	if images != 3 || builds != 3 {
		t.Fatalf("got %d images / %d builds, want 3 / 3", images, builds)
	}
	if bytes < imgA1.Bytes() {
		t.Fatalf("retained bytes %d below single image size %d", bytes, imgA1.Bytes())
	}

	ResetArtifacts()
	if images, builds, bytes := ArtifactStats(); images != 0 || builds != 0 || bytes != 0 {
		t.Fatalf("reset left %d images / %d builds / %d bytes", images, builds, bytes)
	}
}

// TestSharedImageConcurrent hammers one spec from many goroutines; the
// singleflight guard must produce exactly one build.
func TestSharedImageConcurrent(t *testing.T) {
	ResetArtifacts()
	defer ResetArtifacts()

	sc := microScale()
	spec := sc.collection(sc.BaseDocs)
	sc.Jobs = 16
	err := sc.forPoints(32, func(i int) error {
		_, err := sharedImage(spec, index.CodecRaw)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if images, builds, _ := ArtifactStats(); images != 1 || builds != 1 {
		t.Fatalf("got %d images / %d builds, want 1 / 1", images, builds)
	}
}
