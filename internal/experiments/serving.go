package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
	"hybridstore/internal/obs"
	"hybridstore/internal/serve"
	"hybridstore/internal/workload"
)

// servingShards and servingLoads define the serving sweep grid: shard
// counts the reference cache budgets can absorb (the L1 result region must
// still hold one entry per shard) × offered loads as multiples of the
// calibrated single-shard capacity μ. The top load sits well past one
// shard's saturation point, which is where shard scaling shows.
var servingShards = []int{1, 2, 4}
var servingLoads = []float64{0.5, 1.5, 3.0}

// servingBase assembles the full-system configuration the serving pool
// partitions, stamping the shared index image.
func (sc Scale) servingBase() (hybrid.Config, error) {
	spec := sc.collection(sc.BaseDocs)
	img, err := sharedImage(spec, sc.Codec)
	if err != nil {
		return hybrid.Config{}, err
	}
	return hybrid.Config{
		Collection: spec,
		QueryLog:   sc.log(),
		Cache:      sc.cacheConfig(core.PolicyCBLRU),
		Mode:       hybrid.CacheTwoLevel,
		IndexOn:    hybrid.IndexOnHDD,
		Codec:      sc.Codec,
		Engine:     sc.engineConfig(),
		UseModelPU: true,
		IndexImage: img,
	}, nil
}

// Serving measures the concurrent serving layer: shard count × offered
// load under open-loop Poisson arrivals (diurnal-modulated), reporting
// delivered throughput and p99/p999 simulated-time tail latency. Offered
// loads are expressed as multiples of the single-shard closed-loop
// capacity μ, calibrated first, so the grid covers under-load, the knee,
// and deep saturation at any Scale. Each grid cell is one independent
// point on the worker pool; output is byte-identical at any -jobs.
func Serving(w io.Writer, sc Scale) error {
	base, err := sc.servingBase()
	if err != nil {
		return err
	}
	mu, err := serve.CalibrateQPS(base, sc.WarmQueries, sc.MeasureQueries)
	if err != nil {
		return err
	}

	type cell struct {
		r    serve.Result
		line string
	}
	cells := make([]cell, len(servingShards)*len(servingLoads))
	err = sc.forPoints(len(cells), func(p int) error {
		shards := servingShards[p/len(servingLoads)]
		load := servingLoads[p%len(servingLoads)]
		cfg := serve.Config{
			Base:        base,
			Shards:      shards,
			Arrivals:    workload.DefaultArrivals(load * mu),
			WarmQueries: sc.WarmQueries,
			HotWarm:     32,
		}
		var o *obs.Observer
		switch {
		case sc.Obs != nil:
			o = sc.Obs.Fork()
		case sc.Profile != nil:
			o = obs.New(obs.Options{TraceRing: 1, SpanLimit: -1})
		}
		cfg.Observer = o
		pool, err := serve.New(cfg)
		if err != nil {
			return err
		}
		if err := pool.Warm(); err != nil {
			return err
		}
		r, err := pool.Run(sc.MeasureQueries)
		if err != nil {
			return err
		}
		if sc.Profile != nil {
			pool.MergeProfile(sc.Profile)
		}
		cells[p] = cell{
			r: r,
			line: fmt.Sprintf(
				"shards=%d load=%.2fx offered_qps=%.1f tput_qps=%.1f coalesced=%d util=%.3f queue_wait_ms=%.1f p50_us=%.0f p99_us=%.0f p999_us=%.0f maxq=%d",
				shards, load, r.OfferedQPS(), r.ThroughputQPS(), r.Coalesced,
				r.Utilization(), float64(r.QueueWait.Microseconds())/1000,
				r.Latency.Quantile(50), r.Latency.Quantile(99), r.Latency.Quantile(99.9),
				r.MaxQueue),
		}
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "single-shard closed-loop capacity mu=%.1f q/s\n", mu)
	for _, c := range cells {
		fmt.Fprintln(w, c.line)
	}

	header := []string{"load"}
	for _, s := range servingShards {
		header = append(header, fmt.Sprintf("%d-shard", s))
	}
	thrTab := metrics.NewTable(header...)
	p99Tab := metrics.NewTable(header...)
	p999Tab := metrics.NewTable(header...)
	for li, load := range servingLoads {
		thr := []any{fmt.Sprintf("%.2fx", load)}
		p99 := []any{fmt.Sprintf("%.2fx", load)}
		p999 := []any{fmt.Sprintf("%.2fx", load)}
		for si := range servingShards {
			r := cells[si*len(servingLoads)+li].r
			thr = append(thr, fmtQPS(r.ThroughputQPS()))
			p99 = append(p99, fmt.Sprintf("%.0f", r.Latency.Quantile(99)))
			p999 = append(p999, fmt.Sprintf("%.0f", r.Latency.Quantile(99.9)))
		}
		thrTab.AddRow(thr...)
		p99Tab.AddRow(p99...)
		p999Tab.AddRow(p999...)
	}
	fmt.Fprintln(w, "\nthroughput (q/s) by shard count:")
	io.WriteString(w, thrTab.String())
	fmt.Fprintln(w, "\np99 latency (µs) by shard count:")
	io.WriteString(w, p99Tab.String())
	fmt.Fprintln(w, "\np999 latency (µs) by shard count:")
	io.WriteString(w, p999Tab.String())
	return nil
}
