package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// Cost model of §VII-C: dollars per GB at the paper's 2012 prices. Our
// capacities are laptop-scaled; costs are reported in the same ratio
// (per-MiB milli-dollars), which preserves the comparison.
const (
	memDollarsPerGB = 14.5
	ssdDollarsPerGB = 1.9
)

func configCost(memBytes, ssdBytes int64) float64 {
	gib := func(b int64) float64 { return float64(b) / (1 << 30) }
	return gib(memBytes)*memDollarsPerGB*1024 + gib(ssdBytes)*ssdDollarsPerGB*1024
}

// Fig18CostPerformance regenerates Fig 18: (a) mean response time of
// 1LC-HDD, 1LC-SSD and the hybrid 2LC-HDD over collection size; (b) the
// capacity-mix study — big memory vs small memory + SSD — with the cost of
// each configuration. Both parts fan their points out on the worker pool.
func Fig18CostPerformance(w io.Writer, sc Scale) error {
	setups := []struct {
		mode      hybrid.CacheMode
		placement hybrid.IndexPlacement
		policy    core.Policy
	}{
		{hybrid.CacheOneLevel, hybrid.IndexOnHDD, core.PolicyCBLRU},
		{hybrid.CacheOneLevel, hybrid.IndexOnSSD, core.PolicyCBLRU},
		{hybrid.CacheTwoLevel, hybrid.IndexOnHDD, core.PolicyCBSLRU},
	}
	docs := sc.docSweep()
	resps := make([]float64, len(docs)*len(setups))
	err := sc.forPoints(len(resps), func(p int) error {
		st := setups[p%len(setups)]
		sys, err := sc.system(st.policy, st.mode, st.placement, docs[p/len(setups)], sc.cacheConfig(st.policy))
		if err != nil {
			return err
		}
		rs, _, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		resps[p] = float64(rs.MeanResponseTime().Microseconds()) / 1000
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig 18(a) — mean response time (ms), CBSLRU for the two-level setup")
	tab := metrics.NewTable("docs", "1LC-HDD", "1LC-SSD", "2LC-HDD")
	for di, d := range docs {
		row := resps[di*len(setups) : (di+1)*len(setups)]
		tab.AddRow(d, row[0], row[1], row[2])
	}
	io.WriteString(w, tab.String())

	fmt.Fprintln(w, "\n# Fig 18(b) — capacity mixes: response time and configuration cost")
	mixes := []struct {
		name     string
		mem      int64
		ssd      int64 // total SSD cache bytes; 0 = one-level
		twoLevel bool
	}{
		{"1LC:MM(0.5x)", sc.MemBytes / 2, 0, false},
		{"1LC:MM(1x)", sc.MemBytes, 0, false},
		{"2LC:MM(0.2x)+SSD", sc.MemBytes / 5, sc.SSDResultBytes + sc.SSDListBytes, true},
		{"2LC:MM(0.5x)+SSD", sc.MemBytes / 2, sc.SSDResultBytes + sc.SSDListBytes, true},
	}
	mixResps := make([]float64, len(mixes))
	err = sc.forPoints(len(mixes), func(p int) error {
		mix := mixes[p]
		policy := core.PolicyCBLRU
		mode := hybrid.CacheOneLevel
		cfg := sc.cacheConfig(policy)
		cfg.MemResultBytes = mix.mem / 5
		if cfg.MemResultBytes < cfg.ResultEntryBytes {
			cfg.MemResultBytes = cfg.ResultEntryBytes
		}
		cfg.MemListBytes = mix.mem - cfg.MemResultBytes
		if mix.twoLevel {
			policy = core.PolicyCBSLRU
			cfg.Policy = policy
			mode = hybrid.CacheTwoLevel
			cfg.SSDResultBytes = mix.ssd / 13 // keep ~1:12 RC:IC split
			cfg.SSDListBytes = mix.ssd - cfg.SSDResultBytes
		} else {
			cfg.SSDResultBytes, cfg.SSDListBytes = 0, 0
		}
		sys, err := sc.system(policy, mode, hybrid.IndexOnHDD, sc.BaseDocs, cfg)
		if err != nil {
			return err
		}
		rs, _, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		mixResps[p] = float64(rs.MeanResponseTime().Microseconds()) / 1000
		return nil
	})
	if err != nil {
		return err
	}
	mixTab := metrics.NewTable("config", "mem_MB", "ssd_MB", "resp_ms", "cost_m$")
	for mi, mix := range mixes {
		mixTab.AddRow(mix.name,
			fmt.Sprintf("%.1f", float64(mix.mem)/(1<<20)),
			fmt.Sprintf("%.1f", float64(mix.ssd)/(1<<20)),
			mixResps[mi],
			configCost(mix.mem, mix.ssd))
	}
	io.WriteString(w, mixTab.String())
	fmt.Fprintln(w, "(paper: small memory + SSD beats big memory alone at far lower cost — memory $14.5/GB vs SSD $1.9/GB)")
	return nil
}
