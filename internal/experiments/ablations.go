package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// Ablations measures the design choices DESIGN.md calls out, one row per
// variant: combined hit ratio, mean response time, SSD erases and SSD
// write volume at the reference scale.
func Ablations(w io.Writer, sc Scale) error {
	type variant struct {
		name   string
		policy core.Policy
		mutate func(*core.Config)
	}
	variants := []variant{
		{"LRU baseline", core.PolicyLRU, nil},
		{"CBLRU (default)", core.PolicyCBLRU, nil},
		{"CBLRU, TEV=0 (no selection)", core.PolicyCBLRU, func(c *core.Config) { c.TEV = 0 }},
		{"CBLRU, no readahead", core.PolicyCBLRU, func(c *core.Config) { c.PrefetchQuantum = -1 }},
		{"CBLRU, W=1", core.PolicyCBLRU, func(c *core.Config) { c.WindowW = 1 }},
		{"CBLRU, W=20", core.PolicyCBLRU, func(c *core.Config) { c.WindowW = 20 }},
		{"CBSLRU, static 25%", core.PolicyCBSLRU, func(c *core.Config) { c.StaticFraction = 0.25 }},
		{"CBSLRU, static 50%", core.PolicyCBSLRU, func(c *core.Config) { c.StaticFraction = 0.5 }},
		{"CBSLRU, static 75%", core.PolicyCBSLRU, func(c *core.Config) { c.StaticFraction = 0.75 }},
	}

	// One point per variant on the worker pool; all stamp the same index.
	type row struct {
		ric     float64
		respMs  float64
		erases  int64
		writeMB float64
	}
	rows := make([]row, len(variants))
	err := sc.forPoints(len(variants), func(p int) error {
		v := variants[p]
		cfg := sc.cacheConfig(v.policy)
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		sys, err := sc.system(v.policy, hybrid.CacheTwoLevel, hybrid.IndexOnHDD, sc.BaseDocs, cfg)
		if err != nil {
			return err
		}
		rs, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		rows[p] = row{
			ric:     ms.CombinedHitRatio(),
			respMs:  float64(rs.MeanResponseTime().Microseconds()) / 1000,
			erases:  sys.CacheSSD.Wear().TotalErases,
			writeMB: float64(ms.ListBytesToSSD+ms.ResultBytesToSSD) / (1 << 20),
		}
		return nil
	})
	if err != nil {
		return err
	}
	tab := metrics.NewTable("variant", "RIC", "resp_ms", "erases", "ssd_write_MB")
	for p, v := range variants {
		tab.AddRow(v.name, rows[p].ric, rows[p].respMs, rows[p].erases,
			fmt.Sprintf("%.1f", rows[p].writeMB))
	}
	_, err = io.WriteString(w, tab.String())
	fmt.Fprintln(w, "(each row isolates one design choice of §VI; erases are cumulative from cold)")
	return err
}
