package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// memSizes returns the cache-size sweep for Fig 14: SizeSteps points from
// half the reference memory size upward, so the curves show both the
// growth and the flattening the paper observes.
func (sc Scale) memSizes() []int64 {
	steps := sc.SizeSteps
	if steps < 2 {
		steps = 2
	}
	out := make([]int64, steps)
	for i := range out {
		out[i] = sc.MemBytes * int64(i+1) / 2
	}
	return out
}

// Fig14aHitRatioComposition regenerates Fig 14(a): hit ratio of a
// result-only cache (RC), a list-only cache (IC) and the combined cache
// (RIC, 20/80 split) as the memory size grows. One-level (memory) caches,
// CBLRU policy, as the paper's composition study. Each (size, composition)
// pair is one independent point on the worker pool.
func Fig14aHitRatioComposition(w io.Writer, sc Scale) error {
	sizes := sc.memSizes()
	comps := []string{"RC", "IC", "RIC"}
	ratios := make([]float64, len(sizes)*len(comps))
	err := sc.forPoints(len(ratios), func(p int) error {
		size := sizes[p/len(comps)]
		comp := comps[p%len(comps)]
		cfg := sc.cacheConfig(core.PolicyCBLRU)
		cfg.SSDResultBytes, cfg.SSDListBytes = 0, 0
		switch comp {
		case "RC":
			cfg.MemResultBytes = size - cfg.ResultEntryBytes
			cfg.MemListBytes = cfg.ResultEntryBytes // token IC
		case "IC":
			cfg.MemResultBytes = cfg.ResultEntryBytes // one entry
			cfg.MemListBytes = size - cfg.ResultEntryBytes
		case "RIC":
			cfg.MemResultBytes = size / 5
			cfg.MemListBytes = size - size/5
		}
		sys, err := sc.system(core.PolicyCBLRU, hybrid.CacheOneLevel, hybrid.IndexOnHDD, sc.BaseDocs, cfg)
		if err != nil {
			return err
		}
		_, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		switch comp {
		case "RC":
			ratios[p] = ms.ResultHitRatio()
		case "IC":
			ratios[p] = ms.ListHitRatio()
		case "RIC":
			ratios[p] = ms.CombinedHitRatio()
		}
		return nil
	})
	if err != nil {
		return err
	}
	tab := metrics.NewTable("cache_size_MB", "RC", "IC", "RIC")
	for si, size := range sizes {
		row := ratios[si*len(comps) : (si+1)*len(comps)]
		tab.AddRow(fmt.Sprintf("%.1f", float64(size)/(1<<20)), row[0], row[1], row[2])
	}
	_, err = io.WriteString(w, tab.String())
	fmt.Fprintln(w, "(paper: ratios grow with capacity then flatten; RC saturates early, so IC deserves the larger share — the basis of the 20/80 split)")
	return err
}

// Fig14bHitRatioPolicies regenerates Fig 14(b): combined hit ratio of LRU,
// CBLRU and CBSLRU over the cache-size sweep on the full two-level
// hierarchy, plus the paper's headline average improvements. Each
// (size, policy) pair is one independent point on the worker pool.
func Fig14bHitRatioPolicies(w io.Writer, sc Scale) error {
	policies := []core.Policy{core.PolicyLRU, core.PolicyCBLRU, core.PolicyCBSLRU}
	sizes := sc.memSizes()
	ratios := make([]float64, len(sizes)*len(policies))
	err := sc.forPoints(len(ratios), func(p int) error {
		size := sizes[p/len(policies)]
		policy := policies[p%len(policies)]
		cfg := sc.cacheConfig(policy)
		cfg.MemResultBytes = size / 5
		cfg.MemListBytes = size - size/5
		sys, err := sc.system(policy, hybrid.CacheTwoLevel, hybrid.IndexOnHDD, sc.BaseDocs, cfg)
		if err != nil {
			return err
		}
		_, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		ratios[p] = ms.CombinedHitRatio()
		return nil
	})
	if err != nil {
		return err
	}
	tab := metrics.NewTable("cache_size_MB", "LRU", "CBLRU", "CBSLRU")
	var sums [3]float64
	for si, size := range sizes {
		row := ratios[si*len(policies) : (si+1)*len(policies)]
		for i, v := range row {
			sums[i] += v
		}
		tab.AddRow(fmt.Sprintf("%.1f", float64(size)/(1<<20)), row[0], row[1], row[2])
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	n := float64(len(sizes))
	fmt.Fprintf(w, "average hit-ratio gain vs LRU: CBLRU %+.2f pts, CBSLRU %+.2f pts\n",
		100*(sums[1]-sums[0])/n, 100*(sums[2]-sums[0])/n)
	fmt.Fprintln(w, "(paper: CBLRU +9.05, CBSLRU +13.31 percentage points on average)")
	return nil
}
