package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"hybridstore/internal/obs"
)

// runWithProfile runs one experiment at jobs workers with a fresh profile
// attached and returns the folded rendering plus the experiment output.
func runWithProfile(t *testing.T, id string, jobs int) (string, string) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	sc := microScale()
	sc.Jobs = jobs
	sc.Profile = obs.NewProfile()
	var out bytes.Buffer
	if err := e.Run(&out, sc); err != nil {
		t.Fatal(err)
	}
	var folded bytes.Buffer
	if err := sc.Profile.WriteFolded(&folded, id); err != nil {
		t.Fatal(err)
	}
	return folded.String(), out.String()
}

// TestProfileByteIdenticalAcrossJobs: the latency profile is assembled
// from commutative per-point totals, so -jobs 1 and -jobs 4 must render
// byte-identical folded output (and identical experiment rows).
func TestProfileByteIdenticalAcrossJobs(t *testing.T) {
	for _, id := range []string{"fig14b", "fig16"} {
		t.Run(id, func(t *testing.T) {
			folded1, out1 := runWithProfile(t, id, 1)
			folded4, out4 := runWithProfile(t, id, 4)
			if folded1 != folded4 {
				t.Fatalf("folded profile differs between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", folded1, folded4)
			}
			if folded1 == "" {
				t.Fatal("profile is empty — runMeasured did not fold attribution")
			}
			if out1 != out4 {
				t.Fatal("experiment rows differ between -jobs 1 and -jobs 4")
			}
		})
	}
}

// TestTracedExperimentAttribution runs a fig sweep and the fault-injection
// experiment with tracing attached and audits the attribution contract on
// every emitted NDJSON record — the driver-level form of the
// attribution≡elapsed guarantee, including under injected faults.
func TestTracedExperimentAttribution(t *testing.T) {
	for _, id := range []string{"fig14b", "faults"} {
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			sc := microScale()
			sc.Jobs = 1
			var ndjson bytes.Buffer
			sc.Obs = obs.New(obs.Options{TraceOut: &ndjson})
			if err := e.Run(io.Discard, sc); err != nil {
				t.Fatal(err)
			}
			if err := sc.Obs.Tracer.Err(); err != nil {
				t.Fatal(err)
			}

			scan := bufio.NewScanner(&ndjson)
			scan.Buffer(make([]byte, 1<<20), 1<<24)
			records := 0
			for scan.Scan() {
				var tr obs.QueryTrace
				if err := json.Unmarshal(scan.Bytes(), &tr); err != nil {
					t.Fatal(err)
				}
				records++
				if tr.Attrib == nil {
					t.Fatalf("record %d lacks attribution", records)
				}
				if got := tr.Attrib.Sum(); got != tr.ElapsedNS {
					t.Fatalf("record %d: attribution %dns != elapsed %dns", records, got, tr.ElapsedNS)
				}
			}
			if err := scan.Err(); err != nil {
				t.Fatal(err)
			}
			if records == 0 {
				t.Fatal("experiment emitted no trace records")
			}
		})
	}
}
