package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
	"hybridstore/internal/trace"
)

// engineTrace runs the uncached engine on an HDD-resident index and
// records the disk's read stream — the reproduction of the paper's
// DiskMon capture behind Fig 1(b).
func engineTrace(sc Scale, queries int) ([]trace.Point, trace.Characteristics, error) {
	sys, err := sc.system(core.PolicyLRU, hybrid.CacheNone, hybrid.IndexOnHDD, sc.BaseDocs/2, core.Config{})
	if err != nil {
		return nil, trace.Characteristics{}, err
	}
	rec := trace.NewRecorder(0)
	sys.HDD.SetOpHook(rec.Record)
	if _, err := sys.Run(queries); err != nil {
		return nil, trace.Characteristics{}, err
	}
	ops := rec.Ops()
	return trace.ReadSequence(ops), trace.Analyze(ops), nil
}

// Fig01IOTrace regenerates the two I/O traces of Fig 1: (a) a UMass-like
// web search trace, (b) the trace of our Lucene-like engine, both as
// (read sequence, logical sector) series plus summary characteristics.
func Fig01IOTrace(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "# Fig 1(a) — web search trace (UMass-like, synthetic)")
	webOps := trace.SyntheticWebSearch(trace.DefaultWebSearchParams())
	printSeries(w, trace.ReadSequence(webOps), 25)
	printCharacteristics(w, trace.Analyze(webOps))

	fmt.Fprintln(w, "\n# Fig 1(b) — Lucene-like engine trace (measured on the simulated HDD)")
	pts, ch, err := engineTrace(sc, 300)
	if err != nil {
		return err
	}
	printSeries(w, pts, 25)
	printCharacteristics(w, ch)
	return nil
}

// IOStats regenerates the §III characterization: the four access-pattern
// properties measured from the engine's own disk trace.
func IOStats(w io.Writer, sc Scale) error {
	_, ch, err := engineTrace(sc, 500)
	if err != nil {
		return err
	}
	tab := metrics.NewTable("characteristic", "value", "paper claim")
	tab.AddRow("read fraction", fmt.Sprintf("%.4f", ch.ReadFraction), ">0.99 (read-dominant)")
	tab.AddRow("top-10% sector share", fmt.Sprintf("%.3f", ch.Top10PctShare), ">>0.10 (locality)")
	tab.AddRow("sequential fraction", fmt.Sprintf("%.3f", ch.SequentialFraction), "<1 (random reads present)")
	tab.AddRow("forward-skip fraction", fmt.Sprintf("%.3f", ch.ForwardSkipFraction), ">0 (skipped reads)")
	tab.AddRow("backward fraction", fmt.Sprintf("%.3f", ch.BackwardFraction), "(seeks back between lists)")
	tab.AddRow("unique sectors", ch.UniqueSectors, "-")
	tab.AddRow("operations", ch.Ops, "-")
	_, err = io.WriteString(w, tab.String())
	return err
}

// printSeries decimates a point series to at most n rows.
func printSeries(w io.Writer, pts []trace.Point, n int) {
	if len(pts) == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	stride := len(pts) / n
	if stride < 1 {
		stride = 1
	}
	fmt.Fprintln(w, "read_seq  logical_sector")
	for i := 0; i < len(pts); i += stride {
		fmt.Fprintf(w, "%8d  %d\n", pts[i].Seq, pts[i].LSN)
	}
}

func printCharacteristics(w io.Writer, ch trace.Characteristics) {
	fmt.Fprintf(w, "reads=%d/%d (%.2f%%) unique_sectors=%d top10%%share=%.3f seq=%.3f skip=%.3f\n",
		ch.Reads, ch.Ops, 100*ch.ReadFraction, ch.UniqueSectors,
		ch.Top10PctShare, ch.SequentialFraction, ch.ForwardSkipFraction)
}
