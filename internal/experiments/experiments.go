// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the simulated system. Each experiment prints the
// same rows/series the paper reports; EXPERIMENTS.md records the measured
// values against the paper's.
//
// Absolute numbers differ from the paper (the substrate is a simulator and
// the workload a scaled synthetic stand-in); the reproduction target is the
// shape: who wins, by roughly what factor, and where crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"sort"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/index"
	"hybridstore/internal/obs"
	"hybridstore/internal/workload"
)

// Scale sizes an experiment run. The paper's setup (5M documents, 10k–100k
// queries, 20–200 MB caches) is scaled down proportionally so the full
// suite runs on a laptop in minutes; Small is for quick benches.
type Scale struct {
	// BaseDocs is the collection size standing in for the paper's 5M.
	BaseDocs int
	// Vocab is the vocabulary size.
	Vocab int
	// MaxDFShare shapes the largest inverted list.
	MaxDFShare float64
	// DistinctQueries sizes the query population.
	DistinctQueries int
	// WarmQueries precede measurement (steady state), MeasureQueries are
	// measured.
	WarmQueries    int
	MeasureQueries int
	// MemBytes is the reference memory cache size; SSD regions follow the
	// paper's ratios from it unless an experiment overrides them.
	MemBytes int64
	// SSDResultBytes and SSDListBytes are the reference L2 region sizes.
	SSDResultBytes int64
	SSDListBytes   int64
	// DocSteps is the number of x-axis points for document sweeps.
	DocSteps int
	// SizeSteps is the number of x-axis points for cache-size sweeps.
	SizeSteps int
	// Obs, when non-nil, is attached to every measured system so experiment
	// runs emit per-query traces and registry metrics (hybridbench -trace).
	// Attaching an observer forces serial execution (Jobs = 1): the tracer
	// assumes one query in flight at a time.
	Obs *obs.Observer
	// Profile, when non-nil, accumulates per-situation latency attribution
	// from every measured system (hybridbench -profile). Unlike Obs it does
	// not force serial execution: each point folds into a private profile
	// and merges commutative totals, so output is identical at any Jobs.
	// Only the measured window is profiled (warmup is excluded).
	Profile *obs.Profile
	// Jobs bounds how many sweep points run concurrently (hybridbench
	// -jobs). Values < 1 mean serial. Output is byte-identical for every
	// Jobs value: points are independent deterministic systems and rows
	// are assembled in point order.
	Jobs int
	// Codec selects the on-device posting-block encoding (hybridbench
	// -codec). Results are byte-identical across codecs; byte-denominated
	// stats (device bytes, cache occupancy) reflect the encoded size.
	Codec index.CodecID
	// ZooPolicies restricts the zoo sweep to the listed policies
	// (hybridbench -policies), registry order; empty means every
	// registered policy.
	ZooPolicies []core.Policy
}

// FullScale is the reference configuration: the regime of the paper's
// evaluation (capacity pressure on L1, SSD regions holding the hot set)
// scaled to laptop runtimes.
func FullScale() Scale {
	return Scale{
		BaseDocs:        2_000_000,
		Vocab:           5000,
		MaxDFShare:      0.2,
		DistinctQueries: 20000,
		WarmQueries:     4000,
		MeasureQueries:  4000,
		MemBytes:        3 << 20,
		SSDResultBytes:  2 << 20,
		SSDListBytes:    24 << 20,
		DocSteps:        5,
		SizeSteps:       5,
	}
}

// SmallScale is a fast variant for `go test -bench`.
func SmallScale() Scale {
	return Scale{
		BaseDocs:        600_000,
		Vocab:           2500,
		MaxDFShare:      0.2,
		DistinctQueries: 8000,
		WarmQueries:     1000,
		MeasureQueries:  1200,
		MemBytes:        1 << 20,
		SSDResultBytes:  1 << 20,
		SSDListBytes:    8 << 20,
		DocSteps:        3,
		SizeSteps:       3,
	}
}

// collection builds the experiment collection spec for numDocs documents.
func (sc Scale) collection(numDocs int) workload.CollectionSpec {
	spec := workload.DefaultCollection(numDocs)
	spec.VocabSize = sc.Vocab
	spec.MaxDFShare = sc.MaxDFShare
	return spec
}

// log builds the experiment query-log spec.
func (sc Scale) log() workload.QueryLogSpec {
	spec := workload.DefaultQueryLog(sc.Vocab)
	spec.DistinctQueries = sc.DistinctQueries
	return spec
}

// engineConfig returns the engine tuning used throughout the evaluation.
func (sc Scale) engineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.TerminationFrac = 0.35
	return cfg
}

// cacheConfig returns the reference cache configuration for the policy.
func (sc Scale) cacheConfig(policy core.Policy) core.Config {
	cfg := core.DefaultConfig(sc.MemBytes)
	cfg.Policy = policy
	cfg.TEV = 2
	cfg.SSDResultBytes = sc.SSDResultBytes
	cfg.SSDListBytes = sc.SSDListBytes
	return cfg
}

// system assembles a hybrid.System for the given knobs. The index is
// stamped from the shared artifact cache, so sweep points agreeing on
// (docs, vocab, seed, ...) synthesize the collection once.
func (sc Scale) system(policy core.Policy, mode hybrid.CacheMode, indexOn hybrid.IndexPlacement, numDocs int, cache core.Config) (*hybrid.System, error) {
	spec := sc.collection(numDocs)
	img, err := sharedImage(spec, sc.Codec)
	if err != nil {
		return nil, err
	}
	return hybrid.New(hybrid.Config{
		Collection: spec,
		QueryLog:   sc.log(),
		Cache:      cache,
		Mode:       mode,
		IndexOn:    indexOn,
		Codec:      sc.Codec,
		Engine:     sc.engineConfig(),
		UseModelPU: true,
		IndexImage: img,
	})
}

// runMeasured warms the system, resets counters, and measures. CBSLRU
// systems are statically warmed from the query log first (§VI-C2).
func runMeasured(sys *hybrid.System, sc Scale) (hybrid.RunStats, core.Stats, error) {
	var o *obs.Observer
	switch {
	case sc.Obs != nil:
		// Fork per system: every system's clock restarts at zero, so
		// gauges/series must be private while traces share one stream.
		o = sc.Obs.Fork()
		sys.EnableObservability(o)
	case sc.Profile != nil:
		// Profiling without tracing: a private throwaway observer collects
		// attribution (span capture off, minimal ring) and only its
		// commutative profile totals leave the point.
		o = obs.New(obs.Options{TraceRing: 1, SpanLimit: -1})
		sys.EnableObservability(o)
	}
	if sys.Manager != nil && sys.Manager.UsesStaticPartition() {
		if _, err := sys.WarmupStatic(2 * sc.WarmQueries); err != nil {
			return hybrid.RunStats{}, core.Stats{}, err
		}
	}
	if _, err := sys.Run(sc.WarmQueries); err != nil {
		return hybrid.RunStats{}, core.Stats{}, err
	}
	if sys.Manager != nil {
		sys.Manager.ResetStats()
	}
	if o != nil {
		// Profile only the measured window, mirroring ResetStats.
		o.Profile().Reset()
	}
	rs, err := sys.Run(sc.MeasureQueries)
	if err != nil {
		return rs, core.Stats{}, err
	}
	if sc.Profile != nil && o != nil {
		sc.Profile.Merge(o.Profile())
	}
	var ms core.Stats
	if sys.Manager != nil {
		ms = sys.Manager.Stats()
	}
	return rs, ms, nil
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the short handle ("fig14b", "table1", ...).
	ID string
	// Title describes what the paper shows.
	Title string
	// Run executes the experiment at the given scale and writes its
	// rows/series to w.
	Run func(w io.Writer, sc Scale) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Fig 1: I/O trace of search engines (read sequence vs logical sector)", Run: Fig01IOTrace},
		{ID: "iostats", Title: "§III: I/O pattern characteristics (read-dominant, locality, random, skipped)", Run: IOStats},
		{ID: "fig3", Title: "Fig 3: inverted list utilization rate and term access frequency distributions", Run: Fig03Distributions},
		{ID: "table1", Title: "Table I: retrieval situations S1..S9 with probabilities and time costs", Run: Table1Situations},
		{ID: "fig14a", Title: "Fig 14a: hit ratio of RC vs IC vs RIC over cache size", Run: Fig14aHitRatioComposition},
		{ID: "fig14b", Title: "Fig 14b: hit ratio of LRU vs CBLRU vs CBSLRU over cache size", Run: Fig14bHitRatioPolicies},
		{ID: "fig15", Title: "Fig 15: uncached search on HDD vs SSD over collection size", Run: Fig15NoCache},
		{ID: "fig16", Title: "Fig 16: one-level vs two-level cache performance", Run: Fig16OneVsTwoLevel},
		{ID: "fig17", Title: "Fig 17: LRU vs CBLRU vs CBSLRU response time and throughput", Run: Fig17PolicyPerformance},
		{ID: "fig18", Title: "Fig 18: cost-performance of memory/SSD capacity mixes", Run: Fig18CostPerformance},
		{ID: "fig19", Title: "Fig 19: block erasure count and flash average access time", Run: Fig19InsideSSD},
		{ID: "tables23", Title: "Tables II-III: environment and simulated-SSD settings", Run: Tables23Environment},
		{ID: "ablate", Title: "Ablations: block assembly, EV selection, PU prefix, window W, static share", Run: Ablations},
		{ID: "ftl", Title: "§II-A: cache workload across FTL families (page-map vs hybrid-log vs block-map)", Run: FTLComparison},
		{ID: "dynamic", Title: "§IV-B/§VIII: dynamic scenario — TTL on cached data (future work)", Run: DynamicScenario},
		{ID: "threelevel", Title: "§VIII/[19]: three-level caching — intersection cache on a conjunctive workload", Run: ThreeLevel},
		{ID: "faults", Title: "Fault injection: SSD op-error sweep — graceful degradation toward the HDD baseline", Run: Faults},
		{ID: "serving", Title: "Serving layer: shard count × offered load — throughput and p99/p999 under open-loop arrivals", Run: Serving},
		{ID: "zoo", Title: "Policy zoo: every registered policy × budget × workload, plus the heterogeneous cache tier", Run: Zoo},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// docSweep returns the collection sizes for document sweeps: steps evenly
// spaced over [BaseDocs/2, BaseDocs], the paper's 1..5 ×10^6 scaled. The
// sweep starts at half the base size so every point keeps the caches under
// genuine capacity pressure — the regime the paper evaluates; far smaller
// collections fit in memory outright and make any policy look alike.
func (sc Scale) docSweep() []int {
	steps := sc.DocSteps
	if steps < 2 {
		steps = 2
	}
	out := make([]int, steps)
	half := sc.BaseDocs / 2
	for i := range out {
		out[i] = half + half*(i+1)/steps
	}
	return out
}

// fmtQPS renders a throughput value.
func fmtQPS(v float64) string { return fmt.Sprintf("%.1f", v) }

// sortedKeys is a tiny helper for deterministic map iteration.
func sortedKeys[K ~int32 | ~uint64 | ~int, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
