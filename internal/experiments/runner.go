package experiments

// The parallel point runner.
//
// Every sweep experiment decomposes into independent points: one
// (collection, cache config, policy) combination measured on its own
// hybrid.System over its own deterministic virtual clock. Points share
// nothing mutable — each builds a private system, so running them
// concurrently cannot change what any one of them measures. Experiments
// therefore enumerate their points up front, execute them on a bounded
// worker pool via forPoints, and render rows from the collected results in
// point order; `-jobs 1` and `-jobs N` produce byte-identical output.

import "sync"

// jobs returns the effective worker count: at least 1, and forced to 1
// when a shared Observer is attached (the tracer's per-query spans assume
// one query in flight at a time, so tracing serializes execution).
func (sc Scale) jobs() int {
	if sc.Obs != nil || sc.Jobs < 1 {
		return 1
	}
	return sc.Jobs
}

// forPoints runs fn(0), ..., fn(n-1) on up to sc.jobs() workers and blocks
// until all have finished. Each point must confine its writes to its own
// result slot. All points run even if one fails; the error returned is the
// one from the lowest-numbered failing point, so error reporting does not
// depend on scheduling either.
func (sc Scale) forPoints(n int, fn func(i int) error) error {
	workers := sc.jobs()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
