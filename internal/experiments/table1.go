package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// Table1Situations regenerates Table I: the nine retrieval situations with
// their measured probabilities P1..P9 and mean time costs T1..T9, under
// the full two-level architecture (memory + SSD, CBSLRU).
func Table1Situations(w io.Writer, sc Scale) error {
	sys, err := sc.system(core.PolicyCBSLRU, hybrid.CacheTwoLevel, hybrid.IndexOnHDD,
		sc.BaseDocs, sc.cacheConfig(core.PolicyCBSLRU))
	if err != nil {
		return err
	}
	if _, _, err := runMeasured(sys, sc); err != nil {
		return err
	}
	tally := sys.Manager.Stats().Situations

	tab := metrics.NewTable("situation", "sources", "P_i", "T_i")
	var cached float64
	for _, row := range tally.Table() {
		tab.AddRow(fmt.Sprintf("S%d", int(row.Sit)+1), row.Sit.String(),
			fmt.Sprintf("%.4f", row.P), row.MeanTime.String())
		if row.Sit <= core.S5ListsSSD {
			cached += row.P
		}
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	fmt.Fprintf(w, "queries classified: %d\n", tally.Total())
	fmt.Fprintln(w, "(paper's goal: maximize P1..P5 — cache-served situations — and keep their T low)")
	fmt.Fprintf(w, "P(S1..S5) = %.4f\n", cached)
	fmt.Fprintf(w, "index bytes on device: %d (codec=%s)\n",
		sys.Index.SizeBytes(), sys.Index.Codec())
	return nil
}
