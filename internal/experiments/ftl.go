package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// FTLComparison runs the reference CBLRU cache workload against cache SSDs
// built on the three FTL families the paper surveys in §II-A: the ideal
// page-mapped baseline ("we take the ideal page-based FTL as the base
// line"), the block-mapped table of [7], and the hybrid log-block schemes
// of [8][9]. The paper notes "different FTLs may suffer a big difference
// in the same application" — this experiment quantifies that difference
// for the search-engine cache workload.
func FTLComparison(w io.Writer, sc Scale) error {
	ftls := []hybrid.FTLKind{hybrid.FTLPageMap, hybrid.FTLHybridLog, hybrid.FTLBlockMap}
	// One point per FTL on the worker pool; all stamp the same index image.
	type row struct {
		respMs float64
		ric    float64
		erases int64
		wa     float64
		gcRuns int64
	}
	rows := make([]row, len(ftls))
	err := sc.forPoints(len(ftls), func(p int) error {
		spec := sc.collection(sc.BaseDocs)
		img, err := sharedImage(spec, sc.Codec)
		if err != nil {
			return err
		}
		cfg := hybrid.Config{
			Collection: spec,
			QueryLog:   sc.log(),
			Cache:      sc.cacheConfig(core.PolicyCBLRU),
			Mode:       hybrid.CacheTwoLevel,
			IndexOn:    hybrid.IndexOnHDD,
			Codec:      sc.Codec,
			Engine:     sc.engineConfig(),
			UseModelPU: true,
			CacheFTL:   ftls[p],
			IndexImage: img,
		}
		sys, err := hybrid.New(cfg)
		if err != nil {
			return err
		}
		rs, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		wear := sys.CacheSSD.Wear()
		rows[p] = row{
			respMs: float64(rs.MeanResponseTime().Microseconds()) / 1000,
			ric:    ms.CombinedHitRatio(),
			erases: wear.TotalErases,
			wa:     wear.WriteAmplification,
			gcRuns: wear.GCRuns,
		}
		return nil
	})
	if err != nil {
		return err
	}
	tab := metrics.NewTable("FTL", "resp_ms", "RIC", "erases", "WA", "merges/GC")
	for p, ftl := range ftls {
		tab.AddRow(ftl.String(), rows[p].respMs, rows[p].ric, rows[p].erases,
			fmt.Sprintf("%.2f", rows[p].wa), rows[p].gcRuns)
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "(§II-A: page mapping is the ideal baseline; block mapping pays merges on every")
	fmt.Fprintln(w, " overwrite; the hybrid log absorbs overwrites until its log pool fills)")
	return nil
}
