package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// FTLComparison runs the reference CBLRU cache workload against cache SSDs
// built on the three FTL families the paper surveys in §II-A: the ideal
// page-mapped baseline ("we take the ideal page-based FTL as the base
// line"), the block-mapped table of [7], and the hybrid log-block schemes
// of [8][9]. The paper notes "different FTLs may suffer a big difference
// in the same application" — this experiment quantifies that difference
// for the search-engine cache workload.
func FTLComparison(w io.Writer, sc Scale) error {
	tab := metrics.NewTable("FTL", "resp_ms", "RIC", "erases", "WA", "merges/GC")
	for _, ftl := range []hybrid.FTLKind{hybrid.FTLPageMap, hybrid.FTLHybridLog, hybrid.FTLBlockMap} {
		cfg := hybrid.Config{
			Collection: sc.collection(sc.BaseDocs),
			QueryLog:   sc.log(),
			Cache:      sc.cacheConfig(core.PolicyCBLRU),
			Mode:       hybrid.CacheTwoLevel,
			IndexOn:    hybrid.IndexOnHDD,
			Engine:     sc.engineConfig(),
			UseModelPU: true,
			CacheFTL:   ftl,
		}
		sys, err := hybrid.New(cfg)
		if err != nil {
			return err
		}
		rs, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		wear := sys.CacheSSD.Wear()
		tab.AddRow(ftl.String(),
			float64(rs.MeanResponseTime().Microseconds())/1000,
			ms.CombinedHitRatio(),
			wear.TotalErases,
			fmt.Sprintf("%.2f", wear.WriteAmplification),
			wear.GCRuns)
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "(§II-A: page mapping is the ideal baseline; block mapping pays merges on every")
	fmt.Fprintln(w, " overwrite; the hybrid log absorbs overwrites until its log pool fills)")
	return nil
}
