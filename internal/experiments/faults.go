package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
	"hybridstore/internal/storage"
)

// faultRates is the SSD op-error sweep: healthy, rare transients, the 1%
// acceptance point, and on up to a fully failed device. At 100% every L2
// access fails, so the two-level system must converge on the one-level
// (memory + HDD) baseline measured alongside.
var faultRates = []float64{0, 0.001, 0.01, 0.05, 0.2, 1.0}

// faultSpec builds the injector spec for one sweep point: the same error
// probability on reads, writes and trims, with a quarter of injected
// errors leaving a sticky bad extent behind (so sustained fault pressure
// also costs capacity, not just retries).
func faultSpec(rate float64) storage.FaultSpec {
	if rate <= 0 {
		return storage.FaultSpec{}
	}
	op := storage.OpFaults{ErrProb: rate}
	return storage.FaultSpec{
		Seed:       0xfa17 ^ uint64(rate*1e6),
		Read:       op,
		Write:      op,
		Trim:       op,
		StickyProb: 0.25,
	}
}

// faultSystem assembles a two-level CBLRU system with the given fault spec
// (mirrors Scale.system, which has no fault knob).
func (sc Scale) faultSystem(spec storage.FaultSpec, mode hybrid.CacheMode) (*hybrid.System, error) {
	colSpec := sc.collection(sc.BaseDocs)
	img, err := sharedImage(colSpec, sc.Codec)
	if err != nil {
		return nil, err
	}
	return hybrid.New(hybrid.Config{
		Collection:  colSpec,
		QueryLog:    sc.log(),
		Cache:       sc.cacheConfig(core.PolicyCBLRU),
		Mode:        mode,
		IndexOn:     hybrid.IndexOnHDD,
		Codec:       sc.Codec,
		Engine:      sc.engineConfig(),
		UseModelPU:  true,
		IndexImage:  img,
		CacheFaults: spec,
	})
}

// Faults sweeps the injected SSD op-error rate on the two-level CBLRU
// system and reports how hit ratios, latency and the fault counters react,
// against the one-level (memory + HDD, no SSD to fail) baseline. Every
// lost entry is accounted: dropped + discarded + requeued line up with the
// injected error counts, and the quarantine/breaker columns show the
// manager routing around the failing device.
func Faults(w io.Writer, sc Scale) error {
	type cell struct {
		rc, ic, ric float64
		respMS      float64
		qps         float64
		ioErrs      int64
		requeued    int64
		dropped     int64
		discarded   int64
		quarKB      int64
		trips       int64
		degraded    int64
	}
	// Points: one per fault rate, plus the one-level baseline at the end.
	cells := make([]cell, len(faultRates)+1)
	err := sc.forPoints(len(cells), func(p int) error {
		var sys *hybrid.System
		var err error
		if p < len(faultRates) {
			sys, err = sc.faultSystem(faultSpec(faultRates[p]), hybrid.CacheTwoLevel)
		} else {
			sys, err = sc.faultSystem(storage.FaultSpec{}, hybrid.CacheOneLevel)
		}
		if err != nil {
			return err
		}
		rs, ms, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		cells[p] = cell{
			rc:        ms.ResultHitRatio(),
			ic:        ms.ListHitRatio(),
			ric:       ms.CombinedHitRatio(),
			respMS:    float64(rs.MeanResponseTime().Microseconds()) / 1000,
			qps:       rs.Throughput(),
			ioErrs:    ms.SSDReadErrors + ms.SSDWriteErrors + ms.SSDTrimErrors,
			requeued:  ms.ResultsRequeued,
			dropped:   ms.ResultsDropped,
			discarded: ms.ListsDiscarded,
			quarKB:    ms.QuarantinedBytes >> 10,
			trips:     ms.BreakerTrips,
			degraded:  ms.DegradedServes,
		}
		return nil
	})
	if err != nil {
		return err
	}

	tab := metrics.NewTable("err_rate", "RC", "IC", "RIC", "resp_ms", "qps",
		"io_errs", "requeued", "dropped", "discarded", "quar_kb", "trips", "degraded")
	for i, c := range cells {
		label := "1LC(no SSD)"
		if i < len(faultRates) {
			label = fmt.Sprintf("%.3f", faultRates[i])
		}
		tab.AddRow(label,
			fmt.Sprintf("%.3f", c.rc), fmt.Sprintf("%.3f", c.ic), fmt.Sprintf("%.3f", c.ric),
			fmt.Sprintf("%.2f", c.respMS), fmtQPS(c.qps),
			c.ioErrs, c.requeued, c.dropped, c.discarded, c.quarKB, c.trips, c.degraded)
	}
	fmt.Fprintln(w, "# Faults — SSD op-error rate sweep, two-level CBLRU vs one-level baseline")
	io.WriteString(w, tab.String())
	fmt.Fprintln(w, "(expected: hit ratios and throughput degrade toward the 1LC row as the error rate rises; all losses accounted in the drop/requeue/quarantine columns)")
	return nil
}
