package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// Fig17PolicyPerformance regenerates Fig 17: mean response time and
// throughput of LRU, CBLRU and CBSLRU on the two-level hierarchy over
// collection size, with the paper's headline relative improvements. Each
// (docs, policy) pair is one independent point on the worker pool.
func Fig17PolicyPerformance(w io.Writer, sc Scale) error {
	policies := []core.Policy{core.PolicyLRU, core.PolicyCBLRU, core.PolicyCBSLRU}
	docs := sc.docSweep()
	type cell struct {
		resp float64
		qps  float64
	}
	cells := make([]cell, len(docs)*len(policies))
	err := sc.forPoints(len(cells), func(p int) error {
		policy := policies[p%len(policies)]
		sys, err := sc.system(policy, hybrid.CacheTwoLevel, hybrid.IndexOnHDD,
			docs[p/len(policies)], sc.cacheConfig(policy))
		if err != nil {
			return err
		}
		rs, _, err := runMeasured(sys, sc)
		if err != nil {
			return err
		}
		cells[p] = cell{
			resp: float64(rs.MeanResponseTime().Microseconds()) / 1000,
			qps:  rs.Throughput(),
		}
		return nil
	})
	if err != nil {
		return err
	}
	respTab := metrics.NewTable("docs", "LRU_ms", "CBLRU_ms", "CBSLRU_ms")
	thrTab := metrics.NewTable("docs", "LRU_qps", "CBLRU_qps", "CBSLRU_qps")
	var respSum, thrSum [3]float64
	for di, d := range docs {
		row := cells[di*len(policies) : (di+1)*len(policies)]
		for i, c := range row {
			respSum[i] += c.resp
			thrSum[i] += c.qps
		}
		respTab.AddRow(d, row[0].resp, row[1].resp, row[2].resp)
		thrTab.AddRow(d, fmtQPS(row[0].qps), fmtQPS(row[1].qps), fmtQPS(row[2].qps))
	}
	fmt.Fprintln(w, "# Fig 17(a) — mean response time (ms)")
	io.WriteString(w, respTab.String())
	fmt.Fprintln(w, "\n# Fig 17(b) — throughput (queries/s)")
	io.WriteString(w, thrTab.String())

	if len(docs) > 0 && respSum[0] > 0 && thrSum[0] > 0 {
		fmt.Fprintf(w, "response time vs LRU: CBLRU %+.1f%%, CBSLRU %+.1f%% (paper: -35.27%%, -41.05%%)\n",
			100*(respSum[1]-respSum[0])/respSum[0], 100*(respSum[2]-respSum[0])/respSum[0])
		fmt.Fprintf(w, "throughput vs LRU:    CBLRU %+.1f%%, CBSLRU %+.1f%% (paper: +55.29%%, +70.47%%)\n",
			100*(thrSum[1]-thrSum[0])/thrSum[0], 100*(thrSum[2]-thrSum[0])/thrSum[0])
	}
	return nil
}
