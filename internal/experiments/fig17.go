package experiments

import (
	"fmt"
	"io"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
)

// Fig17PolicyPerformance regenerates Fig 17: mean response time and
// throughput of LRU, CBLRU and CBSLRU on the two-level hierarchy over
// collection size, with the paper's headline relative improvements.
func Fig17PolicyPerformance(w io.Writer, sc Scale) error {
	policies := []core.Policy{core.PolicyLRU, core.PolicyCBLRU, core.PolicyCBSLRU}
	respTab := metrics.NewTable("docs", "LRU_ms", "CBLRU_ms", "CBSLRU_ms")
	thrTab := metrics.NewTable("docs", "LRU_qps", "CBLRU_qps", "CBSLRU_qps")
	var respSum, thrSum [3]float64
	var points int
	for _, docs := range sc.docSweep() {
		var resp, thr [3]float64
		for i, policy := range policies {
			sys, err := sc.system(policy, hybrid.CacheTwoLevel, hybrid.IndexOnHDD,
				docs, sc.cacheConfig(policy))
			if err != nil {
				return err
			}
			rs, _, err := runMeasured(sys, sc)
			if err != nil {
				return err
			}
			resp[i] = float64(rs.MeanResponseTime().Microseconds()) / 1000
			thr[i] = rs.Throughput()
			respSum[i] += resp[i]
			thrSum[i] += thr[i]
		}
		points++
		respTab.AddRow(docs, resp[0], resp[1], resp[2])
		thrTab.AddRow(docs, fmtQPS(thr[0]), fmtQPS(thr[1]), fmtQPS(thr[2]))
	}
	fmt.Fprintln(w, "# Fig 17(a) — mean response time (ms)")
	io.WriteString(w, respTab.String())
	fmt.Fprintln(w, "\n# Fig 17(b) — throughput (queries/s)")
	io.WriteString(w, thrTab.String())

	if points > 0 && respSum[0] > 0 && thrSum[0] > 0 {
		fmt.Fprintf(w, "response time vs LRU: CBLRU %+.1f%%, CBSLRU %+.1f%% (paper: -35.27%%, -41.05%%)\n",
			100*(respSum[1]-respSum[0])/respSum[0], 100*(respSum[2]-respSum[0])/respSum[0])
		fmt.Fprintf(w, "throughput vs LRU:    CBLRU %+.1f%%, CBSLRU %+.1f%% (paper: +55.29%%, +70.47%%)\n",
			100*(thrSum[1]-thrSum[0])/thrSum[0], 100*(thrSum[2]-thrSum[0])/thrSum[0])
	}
	return nil
}
