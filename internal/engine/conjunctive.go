package engine

import (
	"fmt"
	"sort"
	"time"

	"hybridstore/internal/index"
	"hybridstore/internal/intersect"
	"hybridstore/internal/simclock"
	"hybridstore/internal/workload"
)

// Conjunctive query processing (AND semantics) over doc-sorted lists with
// skip pointers — the access pattern behind the paper's "skipped reads"
// observation (§III): the driver list is scanned, and the other lists are
// probed by jumping between skip blocks, so large spans of postings are
// never read. An optional intersection cache (the third cache level of
// §VIII's future work) short-circuits the two smallest lists entirely.

// DocSource supplies doc-sorted postings and skip tables. *index.Index
// implements it.
type DocSource interface {
	NumDocs() int64
	ListBytes(t workload.TermID) int64
	DocMeta(t workload.TermID) (index.DocMeta, bool)
	ReadSkipTable(t workload.TermID) ([]index.SkipEntry, error)
	ReadDocBlock(t workload.TermID, byteOff uint32) ([]workload.Posting, error)
}

// ConjStats summarizes one conjunctive execution.
type ConjStats struct {
	// BlocksRead counts skip blocks actually fetched.
	BlocksRead int64
	// BlocksSkipped counts skip blocks jumped over without reading — the
	// §III "skipped read" savings.
	BlocksSkipped int64
	// Matches is the size of the final conjunction.
	Matches int64
	// IntersectionHit is true when the pair cache served the two smallest
	// lists.
	IntersectionHit bool
}

// Conjunctive executes AND queries against a DocSource.
type Conjunctive struct {
	src    DocSource
	cfg    Config
	icache *intersect.Cache // optional third-level cache
}

// NewConjunctive builds a conjunctive engine. icache may be nil.
func NewConjunctive(src DocSource, cfg Config, icache *intersect.Cache) *Conjunctive {
	cfg.fillDefaults()
	return &Conjunctive{src: src, cfg: cfg, icache: icache}
}

// Execute processes q with AND semantics and returns the top-K matches
// ranked by summed tf·idf.
func (e *Conjunctive) Execute(q workload.Query) (*Result, ConjStats, error) {
	var stats ConjStats
	if len(q.Terms) == 0 {
		return &Result{QueryID: q.ID}, stats, nil
	}

	terms := make([]workload.TermID, len(q.Terms))
	copy(terms, q.Terms)
	sort.Slice(terms, func(i, j int) bool {
		return e.src.ListBytes(terms[i]) < e.src.ListBytes(terms[j])
	})

	numDocs := e.src.NumDocs()
	weights := make(map[workload.TermID]float64, len(terms))
	for _, t := range terms {
		weights[t] = idf(numDocs, e.src.ListBytes(t)/index.PostingSize)
	}

	// Candidates: (doc, partial score) from the smallest list — or from
	// the cached/computed intersection of the two smallest lists.
	type candidate struct {
		doc   uint32
		score float64
	}
	var candidates []candidate
	rest := terms[1:]

	if len(terms) >= 2 {
		pair := intersect.MakePair(terms[0], terms[1])
		ipostings, hit, err := e.pairIntersection(pair, terms[0], terms[1], &stats)
		if err != nil {
			return nil, stats, err
		}
		stats.IntersectionHit = hit
		wa, wb := weights[pair.A], weights[pair.B]
		candidates = make([]candidate, len(ipostings))
		for i, p := range ipostings {
			candidates[i] = candidate{
				doc:   p.Doc,
				score: float64(p.TFA)*wa + float64(p.TFB)*wb,
			}
		}
		rest = terms[2:]
	} else {
		postings, err := e.readWholeList(terms[0], &stats)
		if err != nil {
			return nil, stats, err
		}
		w := weights[terms[0]]
		candidates = make([]candidate, len(postings))
		for i, p := range postings {
			candidates[i] = candidate{doc: p.Doc, score: float64(p.TF) * w}
		}
	}

	// Filter the candidates through each remaining list with skip probes.
	for _, t := range rest {
		if len(candidates) == 0 {
			break
		}
		probe, err := newSkipProbe(e.src, t, &stats)
		if err != nil {
			return nil, stats, err
		}
		w := weights[t]
		kept := candidates[:0]
		for _, c := range candidates {
			tf, ok, err := probe.find(c.doc)
			if err != nil {
				return nil, stats, err
			}
			if ok {
				c.score += float64(tf) * w
				kept = append(kept, c)
			}
		}
		candidates = kept
	}

	stats.Matches = int64(len(candidates))
	top := newTopK(e.cfg.TopK)
	for _, c := range candidates {
		top.offer(c.doc, c.score)
	}
	if e.cfg.Clock != nil {
		e.cfg.Clock.AdvanceAttr(time.Duration(len(candidates))*e.cfg.PerPostingCost, simclock.CompCPUIntersect)
	}
	return &Result{QueryID: q.ID, Docs: top.ranked()}, stats, nil
}

// pairIntersection returns the (doc, tfA, tfB) intersection of two terms,
// from the cache when present, computing and caching it otherwise.
func (e *Conjunctive) pairIntersection(pair intersect.Pair, t0, t1 workload.TermID, stats *ConjStats) ([]intersect.Posting, bool, error) {
	if e.icache != nil {
		if ip, ok := e.icache.Get(pair); ok {
			return ip, true, nil
		}
	}
	a, err := e.readWholeList(pair.A, stats)
	if err != nil {
		return nil, false, err
	}
	b, err := e.readWholeList(pair.B, stats)
	if err != nil {
		return nil, false, err
	}
	ip := intersect.Intersect(a, b)
	if e.icache != nil {
		e.icache.Put(pair, ip)
	}
	return ip, false, nil
}

// readWholeList streams every doc block of term t in order.
func (e *Conjunctive) readWholeList(t workload.TermID, stats *ConjStats) ([]workload.Posting, error) {
	skips, err := e.src.ReadSkipTable(t)
	if err != nil {
		return nil, err
	}
	m, _ := e.src.DocMeta(t)
	out := make([]workload.Posting, 0, m.DF)
	for _, sk := range skips {
		block, err := e.src.ReadDocBlock(t, sk.ByteOff)
		if err != nil {
			return nil, err
		}
		stats.BlocksRead++
		out = append(out, block...)
	}
	return out, nil
}

// skipProbe supports ascending membership probes into one doc-sorted list
// using its skip table; blocks between probe targets are skipped, not
// read.
type skipProbe struct {
	src      DocSource
	term     workload.TermID
	skips    []index.SkipEntry
	stats    *ConjStats
	blockIdx int                // current skip block index, -1 none loaded
	block    []workload.Posting // current block contents
}

func newSkipProbe(src DocSource, t workload.TermID, stats *ConjStats) (*skipProbe, error) {
	skips, err := src.ReadSkipTable(t)
	if err != nil {
		return nil, err
	}
	if len(skips) == 0 {
		return nil, fmt.Errorf("engine: term %d has an empty skip table", t)
	}
	return &skipProbe{src: src, term: t, skips: skips, stats: stats, blockIdx: -1}, nil
}

// find reports whether doc appears in the list, returning its tf. Probes
// must come in ascending doc order (candidates are sorted), letting the
// cursor only move forward.
func (p *skipProbe) find(doc uint32) (uint16, bool, error) {
	// Locate the skip block that could contain doc: the last block whose
	// FirstDoc <= doc.
	lo := sort.Search(len(p.skips), func(i int) bool { return p.skips[i].FirstDoc > doc }) - 1
	if lo < 0 {
		return 0, false, nil // doc precedes the whole list
	}
	if p.blockIdx != lo {
		if p.blockIdx >= 0 && lo > p.blockIdx+1 {
			p.stats.BlocksSkipped += int64(lo - p.blockIdx - 1)
		}
		block, err := p.src.ReadDocBlock(p.term, p.skips[lo].ByteOff)
		if err != nil {
			return 0, false, err
		}
		p.stats.BlocksRead++
		p.blockIdx = lo
		p.block = block
	}
	idx := sort.Search(len(p.block), func(i int) bool { return p.block[i].Doc >= doc })
	if idx < len(p.block) && p.block[idx].Doc == doc {
		return p.block[idx].TF, true, nil
	}
	return 0, false, nil
}
