package engine

import (
	"sort"
	"time"

	"hybridstore/internal/index"
	"hybridstore/internal/intersect"
	"hybridstore/internal/simclock"
	"hybridstore/internal/workload"
)

// Conjunctive query processing (AND semantics) over doc-sorted lists with
// skip entries — the access pattern behind the paper's "skipped reads"
// observation (§III): the driver list is scanned, and the other lists are
// probed by jumping between blocks via the in-memory block directory's
// MaxDoc skip entries, so large spans of postings are never read. An
// optional intersection cache (the third cache level of §VIII's future
// work) short-circuits the two smallest lists entirely.

// DocSource supplies doc-sorted encoded postings and their block
// directories. *index.Index implements it.
type DocSource interface {
	NumDocs() int64
	TermDF(t workload.TermID) int64
	Codec() index.CodecID
	// DocBlocks returns term t's doc-sorted block directory (ascending
	// MaxDoc). In-memory metadata — no device cost.
	DocBlocks(t workload.TermID) []index.BlockRef
	// DocBytes returns the encoded size of term t's doc-sorted payload.
	DocBytes(t workload.TermID) int64
	// ReadDocRange fills p with encoded doc-sorted bytes from offset off.
	ReadDocRange(t workload.TermID, off int64, p []byte) error
}

// ConjStats summarizes one conjunctive execution.
type ConjStats struct {
	// BlocksRead counts doc blocks actually fetched and decoded.
	BlocksRead int64
	// BlocksSkipped counts doc blocks jumped over without reading — the
	// §III "skipped read" savings.
	BlocksSkipped int64
	// Matches is the size of the final conjunction.
	Matches int64
	// IntersectionHit is true when the pair cache served the two smallest
	// lists.
	IntersectionHit bool
}

// Conjunctive executes AND queries against a DocSource.
type Conjunctive struct {
	src    DocSource
	cfg    Config
	icache *intersect.Cache // optional third-level cache
}

// NewConjunctive builds a conjunctive engine. icache may be nil.
func NewConjunctive(src DocSource, cfg Config, icache *intersect.Cache) *Conjunctive {
	cfg.fillDefaults()
	return &Conjunctive{src: src, cfg: cfg, icache: icache}
}

// docCursor walks one term's doc-sorted list block by block, decoding each
// fetched block into a fixed scratch so probes can binary-search it.
// Blocks between probe targets are never read — only their directory
// entries (the in-memory skip entries) are consulted.
type docCursor struct {
	src     DocSource
	term    workload.TermID
	codec   index.CodecID
	blocks  []index.BlockRef
	total   int64 // encoded payload bytes
	stats   *ConjStats
	idx     int // current block index, -1 none loaded
	buf     []byte
	decoded []workload.Posting // current block, decoded
	pos     int                // streaming position within decoded
}

func newDocCursor(src DocSource, t workload.TermID, stats *ConjStats) *docCursor {
	return &docCursor{
		src:    src,
		term:   t,
		codec:  src.Codec(),
		blocks: src.DocBlocks(t),
		total:  src.DocBytes(t),
		stats:  stats,
		idx:    -1,
	}
}

// load fetches and decodes block i, accounting skipped blocks when the
// cursor jumps forward past unread ones.
func (c *docCursor) load(i int) error {
	if c.idx >= 0 && i > c.idx+1 {
		c.stats.BlocksSkipped += int64(i - c.idx - 1)
	}
	ref := c.blocks[i]
	end := c.total
	if i+1 < len(c.blocks) {
		end = int64(c.blocks[i+1].Off)
	}
	n := end - int64(ref.Off)
	if int64(cap(c.buf)) < n {
		c.buf = make([]byte, n)
	}
	buf := c.buf[:n]
	if err := c.src.ReadDocRange(c.term, int64(ref.Off), buf); err != nil {
		return err
	}
	var cur index.BlockCursor
	cur.Reset(c.codec, buf, int(ref.Count))
	if c.decoded == nil {
		c.decoded = make([]workload.Posting, 0, index.BlockLen)
	}
	c.decoded = c.decoded[:0]
	for {
		p, ok := cur.Next()
		if !ok {
			break
		}
		c.decoded = append(c.decoded, p)
	}
	if err := cur.Err(); err != nil {
		return err
	}
	c.stats.BlocksRead++
	c.idx = i
	c.pos = 0
	return nil
}

// next streams the list in doc order, returning ok=false at the end.
func (c *docCursor) next() (workload.Posting, bool, error) {
	for c.idx < 0 || c.pos >= len(c.decoded) {
		if c.idx+1 >= len(c.blocks) {
			return workload.Posting{}, false, nil
		}
		if err := c.load(c.idx + 1); err != nil {
			return workload.Posting{}, false, err
		}
	}
	p := c.decoded[c.pos]
	c.pos++
	return p, true, nil
}

// find reports whether doc appears in the list, returning its tf. Probes
// must come in ascending doc order (candidates are sorted), letting the
// cursor only move forward.
func (c *docCursor) find(doc uint32) (uint16, bool, error) {
	// Locate the block that could contain doc: the first whose MaxDoc is
	// >= doc (directory MaxDocs ascend on doc-sorted lists).
	lo := c.idx
	if lo < 0 {
		lo = 0
	}
	i := lo + sort.Search(len(c.blocks)-lo, func(k int) bool { return c.blocks[lo+k].MaxDoc >= doc })
	if i >= len(c.blocks) {
		return 0, false, nil // doc beyond the whole list
	}
	if i != c.idx {
		if err := c.load(i); err != nil {
			return 0, false, err
		}
	}
	d := c.decoded
	j := sort.Search(len(d), func(k int) bool { return d[k].Doc >= doc })
	if j < len(d) && d[j].Doc == doc {
		return d[j].TF, true, nil
	}
	return 0, false, nil
}

// readAll streams the whole list through the cursor.
func (c *docCursor) readAll() ([]workload.Posting, error) {
	out := make([]workload.Posting, 0, c.src.TermDF(c.term))
	for {
		p, ok, err := c.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, p)
	}
}

// Execute processes q with AND semantics and returns the top-K matches
// ranked by summed tf·idf.
func (e *Conjunctive) Execute(q workload.Query) (*Result, ConjStats, error) {
	var stats ConjStats
	if len(q.Terms) == 0 {
		return &Result{QueryID: q.ID}, stats, nil
	}

	terms := make([]workload.TermID, len(q.Terms))
	copy(terms, q.Terms)
	sort.Slice(terms, func(i, j int) bool {
		di, dj := e.src.TermDF(terms[i]), e.src.TermDF(terms[j])
		if di != dj {
			return di < dj
		}
		return terms[i] < terms[j]
	})

	numDocs := e.src.NumDocs()
	weights := make(map[workload.TermID]float64, len(terms))
	for _, t := range terms {
		weights[t] = idf(numDocs, e.src.TermDF(t))
	}

	// Candidates: (doc, partial score) from the smallest list — or from
	// the cached/computed intersection of the two smallest lists.
	type candidate struct {
		doc   uint32
		score float64
	}
	var candidates []candidate
	rest := terms[1:]

	if len(terms) >= 2 {
		pair := intersect.MakePair(terms[0], terms[1])
		ipostings, hit, err := e.pairIntersection(pair, &stats)
		if err != nil {
			return nil, stats, err
		}
		stats.IntersectionHit = hit
		wa, wb := weights[pair.A], weights[pair.B]
		candidates = make([]candidate, len(ipostings))
		for i, p := range ipostings {
			candidates[i] = candidate{
				doc:   p.Doc,
				score: float64(p.TFA)*wa + float64(p.TFB)*wb,
			}
		}
		rest = terms[2:]
	} else {
		postings, err := newDocCursor(e.src, terms[0], &stats).readAll()
		if err != nil {
			return nil, stats, err
		}
		w := weights[terms[0]]
		candidates = make([]candidate, len(postings))
		for i, p := range postings {
			candidates[i] = candidate{doc: p.Doc, score: float64(p.TF) * w}
		}
	}

	// Filter the candidates through each remaining list with skip probes.
	for _, t := range rest {
		if len(candidates) == 0 {
			break
		}
		cur := newDocCursor(e.src, t, &stats)
		w := weights[t]
		kept := candidates[:0]
		for _, c := range candidates {
			tf, ok, err := cur.find(c.doc)
			if err != nil {
				return nil, stats, err
			}
			if ok {
				c.score += float64(tf) * w
				kept = append(kept, c)
			}
		}
		candidates = kept
	}

	stats.Matches = int64(len(candidates))
	top := newTopK(e.cfg.TopK)
	for _, c := range candidates {
		top.offer(c.doc, c.score)
	}
	if e.cfg.Clock != nil {
		e.cfg.Clock.AdvanceAttr(time.Duration(len(candidates))*e.cfg.PerPostingCost, simclock.CompCPUIntersect)
	}
	return &Result{QueryID: q.ID, Docs: top.ranked()}, stats, nil
}

// pairIntersection returns the (doc, tfA, tfB) intersection of two terms,
// from the cache when present, computing and caching it otherwise.
func (e *Conjunctive) pairIntersection(pair intersect.Pair, stats *ConjStats) ([]intersect.Posting, bool, error) {
	if e.icache != nil {
		if ip, ok := e.icache.Get(pair); ok {
			return ip, true, nil
		}
	}
	a, err := newDocCursor(e.src, pair.A, stats).readAll()
	if err != nil {
		return nil, false, err
	}
	b, err := newDocCursor(e.src, pair.B, stats).readAll()
	if err != nil {
		return nil, false, err
	}
	ip := intersect.Intersect(a, b)
	if e.icache != nil {
		e.icache.Put(pair, ip)
	}
	return ip, false, nil
}
