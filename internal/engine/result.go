package engine

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Result serialization. A serialized result entry is what the caches store:
// per ranked document an 8-byte (doc, score) record padded to DocResultBytes
// to model the URL/snippet/date payload real result entries carry. With the
// paper's K = 50 and ~400 B per document an entry is ~20 KB.

// resultHeaderSize is queryID (8) + doc count (4) + docBytes (4).
const resultHeaderSize = 16

// EncodedResultBytes returns the serialized entry size for k docs.
func EncodedResultBytes(k, docBytes int) int {
	return resultHeaderSize + k*docBytes
}

// Encode serializes r with each document padded to docBytes.
func (r *Result) Encode(docBytes int) []byte {
	if docBytes < 8 {
		panic(fmt.Sprintf("engine: docBytes %d below 8-byte record", docBytes))
	}
	buf := make([]byte, EncodedResultBytes(len(r.Docs), docBytes))
	binary.LittleEndian.PutUint64(buf[0:8], r.QueryID)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(r.Docs)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(docBytes))
	for i, d := range r.Docs {
		base := resultHeaderSize + i*docBytes
		binary.LittleEndian.PutUint32(buf[base:base+4], d.Doc)
		binary.LittleEndian.PutUint32(buf[base+4:base+8], math.Float32bits(d.Score))
	}
	return buf
}

// DecodeResult deserializes an entry produced by Encode.
func DecodeResult(buf []byte) (*Result, error) {
	if len(buf) < resultHeaderSize {
		return nil, fmt.Errorf("engine: result entry truncated at %d bytes", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[8:12]))
	docBytes := int(binary.LittleEndian.Uint32(buf[12:16]))
	// Bound n BEFORE any multiplication: a corrupt header must not be able
	// to overflow the size computation or force a huge allocation.
	if docBytes < 8 || n < 0 || n > (len(buf)-resultHeaderSize)/docBytes {
		return nil, fmt.Errorf("engine: corrupt result entry (n=%d docBytes=%d len=%d)",
			n, docBytes, len(buf))
	}
	r := &Result{
		QueryID: binary.LittleEndian.Uint64(buf[0:8]),
		Docs:    make([]ScoredDoc, n),
	}
	for i := 0; i < n; i++ {
		base := resultHeaderSize + i*docBytes
		r.Docs[i] = ScoredDoc{
			Doc:   binary.LittleEndian.Uint32(buf[base : base+4]),
			Score: math.Float32frombits(binary.LittleEndian.Uint32(buf[base+4 : base+8])),
		}
	}
	return r, nil
}
