package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hybridstore/internal/index"
	"hybridstore/internal/intersect"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// codecIndex stamps the engine test collection under the given codec.
func codecIndex(t *testing.T, spec workload.CollectionSpec, codec index.CodecID) *index.Index {
	t.Helper()
	img, err := index.BuildImage(spec, codec)
	if err != nil {
		t.Fatal(err)
	}
	dev := storage.NewMemDevice("idx", img.Bytes(), simclock.New(), storage.DefaultMemParams())
	ix, err := img.Stamp(dev)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestBlockCursorIntersectionMatchesReference is the property test for the
// skip-seeking conjunctive path: across random collections, random term
// pairs, and both codecs, the docCursor-based pair intersection must agree
// exactly with the reference merge over fully decoded lists.
func TestBlockCursorIntersectionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		spec := workload.DefaultCollection(5000 + 7000*trial)
		spec.VocabSize = 40 + 30*trial
		spec.Seed = uint64(100 + trial)
		for _, codec := range []index.CodecID{index.CodecRaw, index.CodecGVarint} {
			ix := codecIndex(t, spec, codec)
			for probe := 0; probe < 8; probe++ {
				a := workload.TermID(rng.Intn(spec.VocabSize))
				b := workload.TermID(rng.Intn(spec.VocabSize))
				if a == b {
					continue
				}
				// Reference: merge-intersect the spec's own postings.
				sortByDoc := func(tid workload.TermID) []workload.Posting {
					ps := spec.Postings(tid)
					sort.Slice(ps, func(i, j int) bool { return ps[i].Doc < ps[j].Doc })
					return ps
				}
				pair := intersect.MakePair(a, b)
				want := intersect.Intersect(sortByDoc(pair.A), sortByDoc(pair.B))

				var stats ConjStats
				e := NewConjunctive(ix, DefaultConfig(), nil)
				got, _, err := e.pairIntersection(pair, &stats)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d codec %v pair %v: %d results, want %d",
						trial, codec, pair, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d codec %v pair %v entry %d: %+v != %+v",
							trial, codec, pair, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestConjunctiveFindMatchesMembership drives the forward-only probe
// cursor over every doc of the collection and checks membership answers
// against the raw postings, under both codecs.
func TestConjunctiveFindMatchesMembership(t *testing.T) {
	spec := workload.DefaultCollection(20000)
	spec.VocabSize = 50
	for _, codec := range []index.CodecID{index.CodecRaw, index.CodecGVarint} {
		ix := codecIndex(t, spec, codec)
		term := workload.TermID(1)
		want := make(map[uint32]uint16)
		for _, p := range spec.Postings(term) {
			want[p.Doc] = p.TF
		}
		var stats ConjStats
		cur := newDocCursor(ix, term, &stats)
		step := 1 + spec.NumDocs/4096 // ascending sample of the doc space
		for doc := 0; doc < spec.NumDocs; doc += step {
			tf, ok, err := cur.find(uint32(doc))
			if err != nil {
				t.Fatal(err)
			}
			wantTF, wantOK := want[uint32(doc)]
			if ok != wantOK || (ok && tf != wantTF) {
				t.Fatalf("codec %v doc %d: (%d,%v) want (%d,%v)", codec, doc, tf, ok, wantTF, wantOK)
			}
		}
	}
}

// TestExecuteIdenticalAcrossCodecs is the tentpole invariant at the engine
// level: disjunctive results — docs, scores, and posting counts — must be
// byte-identical between raw and gvarint indexes, with only the byte
// accounting differing.
func TestExecuteIdenticalAcrossCodecs(t *testing.T) {
	spec := workload.DefaultCollection(20000)
	spec.VocabSize = 200
	raw := New(codecIndex(t, spec, index.CodecRaw), DefaultConfig())
	gv := New(codecIndex(t, spec, index.CodecGVarint), DefaultConfig())
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 50; i++ {
		q := workload.Query{ID: uint64(i), Terms: []workload.TermID{
			workload.TermID(rng.Intn(spec.VocabSize)),
			workload.TermID(rng.Intn(spec.VocabSize)),
			workload.TermID(rng.Intn(spec.VocabSize)),
		}}
		r1, s1, err := raw.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, s2, err := gv.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%v", r1.Docs) != fmt.Sprintf("%v", r2.Docs) {
			t.Fatalf("query %d: results diverge across codecs:\nraw: %v\ngv:  %v", i, r1.Docs, r2.Docs)
		}
		if s1.PostingsScored != s2.PostingsScored {
			t.Fatalf("query %d: postings scored %d vs %d", i, s1.PostingsScored, s2.PostingsScored)
		}
		if s1.BytesRead <= s2.BytesRead {
			t.Fatalf("query %d: gvarint read %d bytes, raw %d — no byte savings", i, s2.BytesRead, s1.BytesRead)
		}
	}
}
