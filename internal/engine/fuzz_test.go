package engine

import "testing"

// FuzzDecodeResult checks the result-entry decoder never panics and never
// over-reads on corrupt or truncated cache payloads — exactly what a
// decoder fed from a simulated (or real) flash device must tolerate.
func FuzzDecodeResult(f *testing.F) {
	good := (&Result{QueryID: 7, Docs: []ScoredDoc{{Doc: 1, Score: 2}, {Doc: 9, Score: 1}}}).Encode(64)
	f.Add(good)
	f.Add(good[:len(good)-10])
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	// Regression: a header whose n×docBytes overflows must be rejected,
	// not allocated (found by fuzzing).
	f.Add([]byte("\xb6\xb6\xb6\xb6\xc5\x1ef\xdb\xcb\xd6\xcb\xcaY\xdbD\xb3"))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(data)
		if err != nil {
			return
		}
		// Accepted payloads must round-trip consistently.
		if res.Docs == nil && len(res.Docs) != 0 {
			t.Fatal("nil docs on success")
		}
		re := res.Encode(64)
		back, err := DecodeResult(re)
		if err != nil {
			t.Fatalf("re-encode of accepted payload rejected: %v", err)
		}
		if back.QueryID != res.QueryID || len(back.Docs) != len(res.Docs) {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}
