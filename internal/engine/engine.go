// Package engine implements the retrieval side of the search engine: top-K
// query processing over impact-ordered posting lists with early
// termination, producing the fixed-size result entries the paper's result
// cache stores (§VI: K = 50 documents of ~400 B each ≈ 20 KB per entry).
//
// The engine is storage-agnostic: it pulls list bytes through a ListSource,
// which is either the raw on-device index (uncached baseline) or the
// two-level cache manager. Because impact-ordered lists let query
// processing stop after a prefix, the engine's reads exhibit exactly the
// partial-list utilization (Fig 3a) and skipped-read patterns (§III) the
// paper's policies exploit.
//
// The read side is zero-copy: chunks of whole encoded blocks come straight
// from the source and an index.BlockCursor decodes them doc-at-a-time — no
// intermediate []workload.Posting is materialized. Chunking is measured in
// blocks (posting counts), not encoded bytes, so scoring, early
// termination, and therefore results are byte-identical across codecs;
// only the byte accounting (BytesRead, Utilization) reflects each codec's
// encoded size.
package engine

import (
	"math"
	"sort"
	"time"

	"hybridstore/internal/index"
	"hybridstore/internal/simclock"
	"hybridstore/internal/workload"
)

// ListSource supplies encoded posting-list bytes and their block metadata.
// index.Index satisfies it, and the cache manager wraps one.
type ListSource interface {
	// ListBytes returns the encoded size of term t's list.
	ListBytes(t workload.TermID) int64
	// TermDF returns term t's document frequency.
	TermDF(t workload.TermID) int64
	// Codec identifies the block encoding of the list payloads.
	Codec() index.CodecID
	// ListBlocks returns term t's block directory (in-memory metadata; no
	// device cost). The engine must not mutate the returned slice.
	ListBlocks(t workload.TermID) []index.BlockRef
	// ReadListRange fills p with encoded list bytes starting at offset off.
	ReadListRange(t workload.TermID, off int64, p []byte) error
	// NumDocs returns the collection size (for IDF weighting).
	NumDocs() int64
}

// Config tunes query processing.
type Config struct {
	// TopK is the number of results per query (paper: 50).
	TopK int
	// ChunkBytes sizes the list read granularity: lists are consumed
	// ChunkBytes/(BlockLen·PostingSize) whole blocks at a time (at least
	// one) until termination. Defaults to 8 KiB.
	ChunkBytes int
	// TerminationFrac controls early termination: a list is abandoned when
	// the best possible remaining contribution falls below this fraction
	// of the current K-th score. Higher = more aggressive truncation.
	// Defaults to 0.15.
	TerminationFrac float64
	// DocResultBytes is the serialized size of one result document (URL,
	// snippet, date...; paper: ~400 B).
	DocResultBytes int
	// Clock, when non-nil, is charged PerPostingCost of simulated CPU time
	// for every posting scored, so compute time contributes to response
	// time alongside device time.
	Clock *simclock.Clock
	// PerPostingCost is the scoring cost per posting (default 20 ns).
	PerPostingCost time.Duration
}

// DefaultConfig returns the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{TopK: 50, ChunkBytes: 8 << 10, TerminationFrac: 0.15, DocResultBytes: 400}
}

func (c *Config) fillDefaults() {
	if c.TopK <= 0 {
		c.TopK = 50
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 8 << 10
	}
	if c.TerminationFrac <= 0 {
		c.TerminationFrac = 0.15
	}
	if c.DocResultBytes <= 0 {
		c.DocResultBytes = 400
	}
	if c.PerPostingCost <= 0 {
		c.PerPostingCost = 20 * time.Nanosecond
	}
}

// chunkBlocks returns how many whole blocks one chunk read covers — a
// posting-count granularity, deliberately independent of the codec so that
// termination points (and results) do not shift with compression.
func (c *Config) chunkBlocks() int {
	n := c.ChunkBytes / (index.BlockLen * index.PostingSize)
	if n < 1 {
		n = 1
	}
	return n
}

// ScoredDoc is one ranked result.
type ScoredDoc struct {
	Doc   uint32
	Score float32
}

// Result is a query's result entry: the cacheable unit of the result cache.
type Result struct {
	QueryID uint64
	Docs    []ScoredDoc
}

// TermStats describes how much of one term's list a query consumed.
type TermStats struct {
	Term      workload.TermID
	ListBytes int64
	BytesRead int64
	// Utilization is BytesRead/ListBytes — the measured PU of Fig 3(a).
	Utilization float64
	Terminated  bool // true when early termination cut the list short
}

// ExecStats summarizes one query execution.
type ExecStats struct {
	Terms          []TermStats
	PostingsScored int64
	BytesRead      int64
}

// Engine executes queries against a ListSource.
//
// An Engine reuses internal scratch state (scan buffer, score accumulator,
// top-K heap, block cursor) across Execute calls to keep the steady-state
// query path allocation-free; it is therefore not safe for concurrent use.
// Give each goroutine its own Engine.
type Engine struct {
	src ListSource
	cfg Config

	codec       index.CodecID
	chunkBlocks int

	// Per-Execute scratch, lazily allocated and reused.
	scanBuf []byte // chunk read buffer, grown to the largest chunk seen
	cur     index.BlockCursor
	scores  map[uint32]float64 // per-doc score accumulator
	top     *topK
	terms   []workload.TermID
}

// New builds an engine over src.
func New(src ListSource, cfg Config) *Engine {
	cfg.fillDefaults()
	return &Engine{src: src, cfg: cfg, codec: src.Codec(), chunkBlocks: cfg.chunkBlocks()}
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// idf returns the inverse-document-frequency weight for a term with
// document frequency df.
func idf(numDocs, df int64) float64 {
	if df <= 0 {
		return 0
	}
	return math.Log2(1 + float64(numDocs)/float64(df))
}

// Execute processes q and returns its top-K result plus execution stats.
// Terms are processed in increasing document-frequency order (ties by term
// ID) so short lists establish the score threshold before long lists are
// touched, maximizing early-termination effect. Ordering by DF rather than
// encoded bytes keeps the processing order codec-invariant.
func (e *Engine) Execute(q workload.Query) (*Result, ExecStats, error) {
	var stats ExecStats
	if e.scores == nil {
		e.scores = make(map[uint32]float64, 1<<12)
	} else {
		clear(e.scores)
	}
	scores := e.scores

	e.terms = append(e.terms[:0], q.Terms...)
	terms := e.terms
	sort.Slice(terms, func(i, j int) bool {
		di, dj := e.src.TermDF(terms[i]), e.src.TermDF(terms[j])
		if di != dj {
			return di < dj
		}
		return terms[i] < terms[j]
	})

	numDocs := e.src.NumDocs()
	if e.top == nil {
		e.top = newTopK(e.cfg.TopK)
	} else {
		e.top.reset()
	}
	top := e.top
	stats.Terms = make([]TermStats, 0, len(terms))
	for _, t := range terms {
		ts, err := e.scanList(t, idf(numDocs, e.src.TermDF(t)), scores, top, &stats)
		if err != nil {
			return nil, stats, err
		}
		stats.Terms = append(stats.Terms, ts)
		stats.BytesRead += ts.BytesRead
	}

	return &Result{QueryID: q.ID, Docs: top.ranked()}, stats, nil
}

// scanList consumes term t's impact-ordered list chunk by chunk (whole
// encoded blocks), decoding doc-at-a-time through the block cursor and
// accumulating scores, until the list ends or early termination fires.
func (e *Engine) scanList(t workload.TermID, w float64, scores map[uint32]float64, top *topK, stats *ExecStats) (TermStats, error) {
	total := e.src.ListBytes(t)
	blocks := e.src.ListBlocks(t)
	ts := TermStats{Term: t, ListBytes: total}
	for bi := 0; bi < len(blocks); bi += e.chunkBlocks {
		bj := bi + e.chunkBlocks
		if bj > len(blocks) {
			bj = len(blocks)
		}
		chunkOff := int64(blocks[bi].Off)
		chunkEnd := total
		if bj < len(blocks) {
			chunkEnd = int64(blocks[bj].Off)
		}
		n := chunkEnd - chunkOff
		if int64(len(e.scanBuf)) < n {
			e.scanBuf = make([]byte, n)
		}
		buf := e.scanBuf[:n]
		if err := e.src.ReadListRange(t, chunkOff, buf); err != nil {
			return ts, err
		}
		ts.BytesRead += n

		scored := 0
		var lastTF uint16
		for k := bi; k < bj; k++ {
			blockOff := int64(blocks[k].Off) - chunkOff
			blockEnd := n
			if k+1 < bj {
				blockEnd = int64(blocks[k+1].Off) - chunkOff
			}
			e.cur.Reset(e.codec, buf[blockOff:blockEnd], int(blocks[k].Count))
			for {
				p, ok := e.cur.Next()
				if !ok {
					break
				}
				s := scores[p.Doc] + float64(p.TF)*w
				scores[p.Doc] = s
				top.offer(p.Doc, s)
				lastTF = p.TF
				scored++
			}
			if err := e.cur.Err(); err != nil {
				return ts, err
			}
		}
		stats.PostingsScored += int64(scored)
		if e.cfg.Clock != nil {
			e.cfg.Clock.AdvanceAttr(time.Duration(scored)*e.cfg.PerPostingCost, simclock.CompCPUIntersect)
		}

		// Early termination: remaining postings have TF no larger than the
		// last one seen (impact order). If even that bound cannot move the
		// top-K meaningfully, abandon the tail.
		if top.full() && scored > 0 {
			bound := float64(lastTF) * w
			if bound < e.cfg.TerminationFrac*top.min() {
				ts.Terminated = true
				break
			}
		}
	}
	if total > 0 {
		ts.Utilization = float64(ts.BytesRead) / float64(total)
	}
	return ts, nil
}

// topK maintains the K best (doc, score) pairs seen so far. Scores for a
// document may be offered repeatedly as later lists add to its total; the
// structure keeps the latest offer per document.
//
// The min-heap is hand-rolled rather than container/heap so offers don't
// box entries through interface{} on every push/fix; the sift order is
// identical to the standard library's, so eviction decisions (and thus
// results) match the previous implementation exactly.
type topK struct {
	k     int
	heap  []scoredRef
	index map[uint32]int // doc -> heap position
}

type scoredRef struct {
	doc   uint32
	score float64
}

func newTopK(k int) *topK {
	return &topK{k: k, index: make(map[uint32]int, k)}
}

// reset empties the structure for reuse, keeping its allocations.
func (t *topK) reset() {
	t.heap = t.heap[:0]
	clear(t.index)
}

func (t *topK) full() bool { return len(t.heap) >= t.k }

// min returns the lowest score in the current top-K (0 if not full).
func (t *topK) min() float64 {
	if len(t.heap) == 0 {
		return 0
	}
	return t.heap[0].score
}

func (t *topK) less(i, j int) bool { return t.heap[i].score < t.heap[j].score }

func (t *topK) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.index[t.heap[i].doc] = i
	t.index[t.heap[j].doc] = j
}

func (t *topK) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !t.less(j, i) {
			break
		}
		t.swap(i, j)
		j = i
	}
}

func (t *topK) down(i0 int) bool {
	n := len(t.heap)
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && t.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !t.less(j, i) {
			break
		}
		t.swap(i, j)
		i = j
	}
	return i > i0
}

func (t *topK) fix(i int) {
	if !t.down(i) {
		t.up(i)
	}
}

// offer updates doc's score (monotone increases only, as scores accumulate).
func (t *topK) offer(doc uint32, score float64) {
	if pos, ok := t.index[doc]; ok {
		t.heap[pos].score = score
		t.fix(pos)
		return
	}
	if len(t.heap) < t.k {
		t.index[doc] = len(t.heap)
		t.heap = append(t.heap, scoredRef{doc: doc, score: score})
		t.up(len(t.heap) - 1)
		return
	}
	if score > t.heap[0].score {
		evicted := t.heap[0].doc
		delete(t.index, evicted)
		t.heap[0] = scoredRef{doc: doc, score: score}
		t.index[doc] = 0
		t.fix(0)
	}
}

// ranked returns the top-K docs in descending score order (ties by doc id).
func (t *topK) ranked() []ScoredDoc {
	out := make([]ScoredDoc, len(t.heap))
	for i, e := range t.heap {
		out[i] = ScoredDoc{Doc: e.doc, Score: float32(e.score)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}
