// Package engine implements the retrieval side of the search engine: top-K
// query processing over impact-ordered posting lists with early
// termination, producing the fixed-size result entries the paper's result
// cache stores (§VI: K = 50 documents of ~400 B each ≈ 20 KB per entry).
//
// The engine is storage-agnostic: it pulls list bytes through a ListSource,
// which is either the raw on-device index (uncached baseline) or the
// two-level cache manager. Because impact-ordered lists let query
// processing stop after a prefix, the engine's reads exhibit exactly the
// partial-list utilization (Fig 3a) and skipped-read patterns (§III) the
// paper's policies exploit.
package engine

import (
	"math"
	"sort"
	"time"

	"hybridstore/internal/index"
	"hybridstore/internal/simclock"
	"hybridstore/internal/workload"
)

// ListSource supplies posting-list bytes. index.Index satisfies it, and the
// cache manager wraps one.
type ListSource interface {
	// ListBytes returns the serialized size of term t's list.
	ListBytes(t workload.TermID) int64
	// ReadListRange fills p with list bytes starting at offset off.
	ReadListRange(t workload.TermID, off int64, p []byte) error
	// NumDocs returns the collection size (for IDF weighting).
	NumDocs() int64
}

// Config tunes query processing.
type Config struct {
	// TopK is the number of results per query (paper: 50).
	TopK int
	// ChunkBytes is the list read granularity; impact-ordered lists are
	// consumed chunk by chunk until termination. Defaults to 8 KiB.
	ChunkBytes int
	// TerminationFrac controls early termination: a list is abandoned when
	// the best possible remaining contribution falls below this fraction
	// of the current K-th score. Higher = more aggressive truncation.
	// Defaults to 0.15.
	TerminationFrac float64
	// DocResultBytes is the serialized size of one result document (URL,
	// snippet, date...; paper: ~400 B).
	DocResultBytes int
	// Clock, when non-nil, is charged PerPostingCost of simulated CPU time
	// for every posting scored, so compute time contributes to response
	// time alongside device time.
	Clock *simclock.Clock
	// PerPostingCost is the scoring cost per posting (default 20 ns).
	PerPostingCost time.Duration
}

// DefaultConfig returns the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{TopK: 50, ChunkBytes: 8 << 10, TerminationFrac: 0.15, DocResultBytes: 400}
}

func (c *Config) fillDefaults() {
	if c.TopK <= 0 {
		c.TopK = 50
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 8 << 10
	}
	if c.ChunkBytes%index.PostingSize != 0 {
		c.ChunkBytes += index.PostingSize - c.ChunkBytes%index.PostingSize
	}
	if c.TerminationFrac <= 0 {
		c.TerminationFrac = 0.15
	}
	if c.DocResultBytes <= 0 {
		c.DocResultBytes = 400
	}
	if c.PerPostingCost <= 0 {
		c.PerPostingCost = 20 * time.Nanosecond
	}
}

// ScoredDoc is one ranked result.
type ScoredDoc struct {
	Doc   uint32
	Score float32
}

// Result is a query's result entry: the cacheable unit of the result cache.
type Result struct {
	QueryID uint64
	Docs    []ScoredDoc
}

// TermStats describes how much of one term's list a query consumed.
type TermStats struct {
	Term      workload.TermID
	ListBytes int64
	BytesRead int64
	// Utilization is BytesRead/ListBytes — the measured PU of Fig 3(a).
	Utilization float64
	Terminated  bool // true when early termination cut the list short
}

// ExecStats summarizes one query execution.
type ExecStats struct {
	Terms          []TermStats
	PostingsScored int64
	BytesRead      int64
}

// Engine executes queries against a ListSource.
//
// An Engine reuses internal scratch state (scan buffer, score accumulator,
// top-K heap) across Execute calls to keep the steady-state query path
// allocation-free; it is therefore not safe for concurrent use. Give each
// goroutine its own Engine.
type Engine struct {
	src ListSource
	cfg Config

	// Per-Execute scratch, lazily allocated and reused.
	scanBuf  []byte             // chunk read buffer (cfg.ChunkBytes)
	postings []workload.Posting // decoded-chunk scratch
	scores   map[uint32]float64 // per-doc score accumulator
	top      *topK
	terms    []workload.TermID
}

// New builds an engine over src.
func New(src ListSource, cfg Config) *Engine {
	cfg.fillDefaults()
	return &Engine{src: src, cfg: cfg}
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// idf returns the inverse-document-frequency weight for a term with
// document frequency df.
func idf(numDocs, df int64) float64 {
	if df <= 0 {
		return 0
	}
	return math.Log2(1 + float64(numDocs)/float64(df))
}

// Execute processes q and returns its top-K result plus execution stats.
// Terms are processed in increasing document-frequency order so short
// lists establish the score threshold before long lists are touched,
// maximizing early-termination effect.
func (e *Engine) Execute(q workload.Query) (*Result, ExecStats, error) {
	var stats ExecStats
	if e.scores == nil {
		e.scores = make(map[uint32]float64, 1<<12)
	} else {
		clear(e.scores)
	}
	scores := e.scores

	e.terms = append(e.terms[:0], q.Terms...)
	terms := e.terms
	sort.Slice(terms, func(i, j int) bool {
		return e.src.ListBytes(terms[i]) < e.src.ListBytes(terms[j])
	})

	numDocs := e.src.NumDocs()
	if e.top == nil {
		e.top = newTopK(e.cfg.TopK)
	} else {
		e.top.reset()
	}
	top := e.top
	stats.Terms = make([]TermStats, 0, len(terms))
	for _, t := range terms {
		ts, err := e.scanList(t, idf(numDocs, e.src.ListBytes(t)/index.PostingSize), scores, top, &stats)
		if err != nil {
			return nil, stats, err
		}
		stats.Terms = append(stats.Terms, ts)
		stats.BytesRead += ts.BytesRead
	}

	return &Result{QueryID: q.ID, Docs: top.ranked()}, stats, nil
}

// scanList consumes term t's impact-ordered list chunk by chunk,
// accumulating scores, until the list ends or early termination fires.
func (e *Engine) scanList(t workload.TermID, w float64, scores map[uint32]float64, top *topK, stats *ExecStats) (TermStats, error) {
	total := e.src.ListBytes(t)
	ts := TermStats{Term: t, ListBytes: total}
	if e.scanBuf == nil {
		e.scanBuf = make([]byte, e.cfg.ChunkBytes)
	}
	buf := e.scanBuf
	var off int64
	for off < total {
		n := int64(len(buf))
		if total-off < n {
			n = total - off
		}
		if err := e.src.ReadListRange(t, off, buf[:n]); err != nil {
			return ts, err
		}
		off += n
		ts.BytesRead += n

		e.postings = index.AppendPostings(e.postings[:0], buf[:n])
		postings := e.postings
		for _, p := range postings {
			s := scores[p.Doc] + float64(p.TF)*w
			scores[p.Doc] = s
			top.offer(p.Doc, s)
		}
		stats.PostingsScored += int64(len(postings))
		if e.cfg.Clock != nil {
			e.cfg.Clock.AdvanceAttr(time.Duration(len(postings))*e.cfg.PerPostingCost, simclock.CompCPUIntersect)
		}

		// Early termination: remaining postings have TF no larger than the
		// last one seen (impact order). If even that bound cannot move the
		// top-K meaningfully, abandon the tail.
		if top.full() && len(postings) > 0 {
			bound := float64(postings[len(postings)-1].TF) * w
			if bound < e.cfg.TerminationFrac*top.min() {
				ts.Terminated = true
				break
			}
		}
	}
	if total > 0 {
		ts.Utilization = float64(ts.BytesRead) / float64(total)
	}
	return ts, nil
}

// topK maintains the K best (doc, score) pairs seen so far. Scores for a
// document may be offered repeatedly as later lists add to its total; the
// structure keeps the latest offer per document.
//
// The min-heap is hand-rolled rather than container/heap so offers don't
// box entries through interface{} on every push/fix; the sift order is
// identical to the standard library's, so eviction decisions (and thus
// results) match the previous implementation exactly.
type topK struct {
	k     int
	heap  []scoredRef
	index map[uint32]int // doc -> heap position
}

type scoredRef struct {
	doc   uint32
	score float64
}

func newTopK(k int) *topK {
	return &topK{k: k, index: make(map[uint32]int, k)}
}

// reset empties the structure for reuse, keeping its allocations.
func (t *topK) reset() {
	t.heap = t.heap[:0]
	clear(t.index)
}

func (t *topK) full() bool { return len(t.heap) >= t.k }

// min returns the lowest score in the current top-K (0 if not full).
func (t *topK) min() float64 {
	if len(t.heap) == 0 {
		return 0
	}
	return t.heap[0].score
}

func (t *topK) less(i, j int) bool { return t.heap[i].score < t.heap[j].score }

func (t *topK) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.index[t.heap[i].doc] = i
	t.index[t.heap[j].doc] = j
}

func (t *topK) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !t.less(j, i) {
			break
		}
		t.swap(i, j)
		j = i
	}
}

func (t *topK) down(i0 int) bool {
	n := len(t.heap)
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && t.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !t.less(j, i) {
			break
		}
		t.swap(i, j)
		i = j
	}
	return i > i0
}

func (t *topK) fix(i int) {
	if !t.down(i) {
		t.up(i)
	}
}

// offer updates doc's score (monotone increases only, as scores accumulate).
func (t *topK) offer(doc uint32, score float64) {
	if pos, ok := t.index[doc]; ok {
		t.heap[pos].score = score
		t.fix(pos)
		return
	}
	if len(t.heap) < t.k {
		t.index[doc] = len(t.heap)
		t.heap = append(t.heap, scoredRef{doc: doc, score: score})
		t.up(len(t.heap) - 1)
		return
	}
	if score > t.heap[0].score {
		evicted := t.heap[0].doc
		delete(t.index, evicted)
		t.heap[0] = scoredRef{doc: doc, score: score}
		t.index[doc] = 0
		t.fix(0)
	}
}

// ranked returns the top-K docs in descending score order (ties by doc id).
func (t *topK) ranked() []ScoredDoc {
	out := make([]ScoredDoc, len(t.heap))
	for i, e := range t.heap {
		out[i] = ScoredDoc{Doc: e.doc, Score: float32(e.score)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}
