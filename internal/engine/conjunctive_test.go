package engine

import (
	"sort"
	"testing"

	"hybridstore/internal/intersect"
	"hybridstore/internal/workload"
)

// bruteConjunction computes the reference AND result set with scores.
func bruteConjunction(spec workload.CollectionSpec, terms []workload.TermID) map[uint32]float64 {
	numDocs := int64(spec.NumDocs)
	scores := make(map[uint32]float64)
	counts := make(map[uint32]int)
	for _, t := range terms {
		w := idf(numDocs, int64(spec.DocFreq(t)))
		for _, p := range spec.Postings(t) {
			scores[p.Doc] += float64(p.TF) * w
			counts[p.Doc]++
		}
	}
	for doc, n := range counts {
		if n != len(terms) {
			delete(scores, doc)
		}
	}
	return scores
}

func TestConjunctiveMatchesBruteForce(t *testing.T) {
	ix, spec := testIndex(t)
	e := NewConjunctive(ix, DefaultConfig(), nil)
	for _, terms := range [][]workload.TermID{
		{0, 1},
		{2, 10},
		{0, 5, 20},
		{3},
	} {
		res, stats, err := e.Execute(workload.Query{ID: 1, Terms: terms})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteConjunction(spec, terms)
		if int64(len(want)) < stats.Matches {
			t.Fatalf("terms %v: %d matches reported, brute force has %d",
				terms, stats.Matches, len(want))
		}
		if len(terms) > 1 && stats.Matches != int64(len(want)) {
			t.Fatalf("terms %v: matches %d != brute %d", terms, stats.Matches, len(want))
		}
		// Every returned doc must be a real conjunction member with the
		// right score.
		for _, d := range res.Docs {
			wantScore, ok := want[d.Doc]
			if !ok {
				t.Fatalf("terms %v: doc %d not in conjunction", terms, d.Doc)
			}
			if diff := float64(d.Score) - wantScore; diff > 0.01 || diff < -0.01 {
				t.Fatalf("terms %v doc %d: score %v, want %v", terms, d.Doc, d.Score, wantScore)
			}
		}
		// Ranking must be descending.
		for i := 1; i < len(res.Docs); i++ {
			if res.Docs[i].Score > res.Docs[i-1].Score {
				t.Fatalf("terms %v: ranking not descending", terms)
			}
		}
	}
}

func TestConjunctiveTopKBound(t *testing.T) {
	ix, spec := testIndex(t)
	cfg := DefaultConfig()
	cfg.TopK = 10
	e := NewConjunctive(ix, cfg, nil)
	res, _, err := e.Execute(workload.Query{ID: 1, Terms: []workload.TermID{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) > 10 {
		t.Fatalf("returned %d docs, want <= 10", len(res.Docs))
	}
	// Verify the returned set is exactly the top 10 of the brute ranking.
	want := bruteConjunction(spec, []workload.TermID{0, 1})
	type ds struct {
		doc   uint32
		score float64
	}
	all := make([]ds, 0, len(want))
	for d, s := range want {
		all = append(all, ds{d, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].doc < all[j].doc
	})
	if len(all) > 10 {
		all = all[:10]
	}
	if len(res.Docs) != len(all) {
		t.Fatalf("got %d docs, want %d", len(res.Docs), len(all))
	}
}

func TestConjunctiveSkipsBlocks(t *testing.T) {
	ix, _ := testIndex(t)
	// Drive the cursor directly with two targets from distant blocks of
	// the biggest list: everything between them must be jumped over via
	// the block directory's MaxDoc entries, not read.
	var stats ConjStats
	cur := newDocCursor(ix, 0, &stats)
	if len(cur.blocks) < 12 {
		t.Skipf("term 0 has only %d blocks", len(cur.blocks))
	}
	if _, ok, err := cur.find(cur.blocks[0].MaxDoc); err != nil || !ok {
		t.Fatalf("probe of a block's max doc missed (ok=%v err=%v)", ok, err)
	}
	if _, ok, err := cur.find(cur.blocks[10].MaxDoc); err != nil || !ok {
		t.Fatalf("probe of a block's max doc missed (ok=%v err=%v)", ok, err)
	}
	if stats.BlocksSkipped != 9 {
		t.Fatalf("BlocksSkipped = %d, want 9 (blocks 1..9 jumped)", stats.BlocksSkipped)
	}
	if stats.BlocksRead != 2 {
		t.Fatalf("BlocksRead = %d, want 2", stats.BlocksRead)
	}
}

func TestConjunctiveEmptyQuery(t *testing.T) {
	ix, _ := testIndex(t)
	e := NewConjunctive(ix, DefaultConfig(), nil)
	res, _, err := e.Execute(workload.Query{ID: 1})
	if err != nil || len(res.Docs) != 0 {
		t.Fatalf("empty query: %v, %d docs", err, len(res.Docs))
	}
}

func TestConjunctiveIntersectionCacheHit(t *testing.T) {
	ix, _ := testIndex(t)
	ic := intersect.New(1<<20, nil)
	e := NewConjunctive(ix, DefaultConfig(), ic)
	q := workload.Query{ID: 1, Terms: []workload.TermID{4, 9}}
	_, s1, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if s1.IntersectionHit {
		t.Fatal("first execution claimed a cache hit")
	}
	_, s2, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.IntersectionHit {
		t.Fatal("second execution missed the intersection cache")
	}
	if s2.BlocksRead != 0 {
		t.Fatalf("cache hit still read %d blocks", s2.BlocksRead)
	}
	if ic.Stats().Hits != 1 {
		t.Fatalf("cache stats: %+v", ic.Stats())
	}
}

func TestConjunctiveCachedResultIdentical(t *testing.T) {
	ix, _ := testIndex(t)
	ic := intersect.New(1<<20, nil)
	e := NewConjunctive(ix, DefaultConfig(), ic)
	q := workload.Query{ID: 1, Terms: []workload.TermID{4, 9}}
	first, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Docs) != len(second.Docs) {
		t.Fatal("cached result size differs")
	}
	for i := range first.Docs {
		if first.Docs[i] != second.Docs[i] {
			t.Fatalf("cached result differs at %d", i)
		}
	}
}

func TestConjunctiveThreeTermsWithCache(t *testing.T) {
	ix, spec := testIndex(t)
	ic := intersect.New(1<<20, nil)
	e := NewConjunctive(ix, DefaultConfig(), ic)
	terms := []workload.TermID{0, 5, 20}
	q := workload.Query{ID: 2, Terms: terms}
	e.Execute(q) // warm the pair cache
	res, stats, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IntersectionHit {
		t.Fatal("pair cache not used on repeat 3-term query")
	}
	want := bruteConjunction(spec, terms)
	for _, d := range res.Docs {
		if _, ok := want[d.Doc]; !ok {
			t.Fatalf("doc %d not in 3-way conjunction", d.Doc)
		}
	}
}
