package engine

import (
	"testing"
	"testing/quick"

	"hybridstore/internal/index"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

func testIndex(t *testing.T) (*index.Index, workload.CollectionSpec) {
	t.Helper()
	spec := workload.DefaultCollection(20000)
	spec.VocabSize = 200
	dev := storage.NewMemDevice("idx", index.RequiredBytes(spec)+4096,
		simclock.New(), storage.DefaultMemParams())
	ix, err := index.Build(dev, spec)
	if err != nil {
		t.Fatal(err)
	}
	return ix, spec
}

func TestExecuteReturnsTopK(t *testing.T) {
	ix, _ := testIndex(t)
	e := New(ix, DefaultConfig())
	res, stats, err := e.Execute(workload.Query{ID: 1, Terms: []workload.TermID{0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 50 {
		t.Fatalf("got %d docs, want 50", len(res.Docs))
	}
	if res.QueryID != 1 {
		t.Fatalf("QueryID = %d", res.QueryID)
	}
	if stats.BytesRead == 0 || stats.PostingsScored == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
}

func TestExecuteRankedDescending(t *testing.T) {
	ix, _ := testIndex(t)
	e := New(ix, DefaultConfig())
	res, _, err := e.Execute(workload.Query{ID: 2, Terms: []workload.TermID{1, 3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Docs); i++ {
		if res.Docs[i].Score > res.Docs[i-1].Score {
			t.Fatalf("results not sorted at %d: %v > %v",
				i, res.Docs[i].Score, res.Docs[i-1].Score)
		}
		if res.Docs[i].Score == res.Docs[i-1].Score && res.Docs[i].Doc < res.Docs[i-1].Doc {
			t.Fatalf("tie not broken by doc id at %d", i)
		}
	}
}

func TestExecuteDeterministic(t *testing.T) {
	ix, _ := testIndex(t)
	e := New(ix, DefaultConfig())
	q := workload.Query{ID: 3, Terms: []workload.TermID{0, 2}}
	a, _, _ := e.Execute(q)
	b, _, _ := e.Execute(q)
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("result sizes differ across runs")
	}
	for i := range a.Docs {
		if a.Docs[i] != b.Docs[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestEarlyTerminationTruncatesPopularLists(t *testing.T) {
	ix, spec := testIndex(t)
	cfg := DefaultConfig()
	cfg.ChunkBytes = 1 << 10 // fine-grained chunks: test lists are small
	e := New(ix, cfg)
	// Term 0 has the longest list; pairing it with a selective term should
	// leave it partially read.
	_, stats, err := e.Execute(workload.Query{ID: 4, Terms: []workload.TermID{0, 150}})
	if err != nil {
		t.Fatal(err)
	}
	var popular, rare TermStats
	for _, ts := range stats.Terms {
		if ts.Term == 0 {
			popular = ts
		} else {
			rare = ts
		}
	}
	if popular.Utilization >= 1.0 {
		t.Fatalf("popular list fully read (util %v); early termination dead", popular.Utilization)
	}
	if !popular.Terminated {
		t.Fatal("popular list not flagged terminated")
	}
	if rare.Utilization < 0.99 {
		t.Fatalf("short list (df=%d) truncated to %v", spec.DocFreq(150), rare.Utilization)
	}
}

func TestUtilizationDecreasesWithPopularity(t *testing.T) {
	ix, _ := testIndex(t)
	cfg := DefaultConfig()
	cfg.ChunkBytes = 1 << 10
	e := New(ix, cfg)
	util := make(map[workload.TermID]float64)
	for _, q := range []workload.Query{
		{ID: 1, Terms: []workload.TermID{0, 100}},
		{ID: 2, Terms: []workload.TermID{1, 120}},
	} {
		_, stats, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, ts := range stats.Terms {
			util[ts.Term] = ts.Utilization
		}
	}
	if util[0] > util[100] || util[1] > util[120] {
		t.Fatalf("popular terms not less utilized: %v", util)
	}
}

func TestSingleTermQueryFullK(t *testing.T) {
	ix, _ := testIndex(t)
	e := New(ix, DefaultConfig())
	res, _, err := e.Execute(workload.Query{ID: 5, Terms: []workload.TermID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 50 {
		t.Fatalf("got %d docs", len(res.Docs))
	}
	seen := make(map[uint32]bool)
	for _, d := range res.Docs {
		if seen[d.Doc] {
			t.Fatalf("doc %d ranked twice", d.Doc)
		}
		seen[d.Doc] = true
	}
}

func TestQueryOnTinyListReturnsFewer(t *testing.T) {
	ix, spec := testIndex(t)
	e := New(ix, DefaultConfig())
	last := workload.TermID(spec.VocabSize - 1)
	df := spec.DocFreq(last)
	if df >= 50 {
		t.Skipf("tail term df=%d not below K", df)
	}
	res, _, err := e.Execute(workload.Query{ID: 6, Terms: []workload.TermID{last}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != df {
		t.Fatalf("got %d docs, want %d", len(res.Docs), df)
	}
}

func TestScoresAccumulateAcrossTerms(t *testing.T) {
	ix, spec := testIndex(t)
	cfg := DefaultConfig()
	cfg.TerminationFrac = 0 // exact scoring
	e := New(ix, cfg)
	// Compute expected top score for a 2-term query by brute force.
	q := workload.Query{ID: 7, Terms: []workload.TermID{10, 20}}
	want := make(map[uint32]float64)
	for _, term := range q.Terms {
		df := int64(spec.DocFreq(term))
		w := idf(int64(spec.NumDocs), df)
		for _, p := range spec.Postings(term) {
			want[p.Doc] += float64(p.TF) * w
		}
	}
	var bestDoc uint32
	bestScore := -1.0
	for doc, s := range want {
		if s > bestScore || (s == bestScore && doc < bestDoc) {
			bestDoc, bestScore = doc, s
		}
	}
	res, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs[0].Doc != bestDoc {
		t.Fatalf("top doc %d (%.3f), brute force says %d (%.3f)",
			res.Docs[0].Doc, res.Docs[0].Score, bestDoc, bestScore)
	}
}

func TestTerminationFracZeroReadsEverything(t *testing.T) {
	ix, _ := testIndex(t)
	cfg := DefaultConfig()
	cfg.TerminationFrac = 1e-12 // effectively never terminate
	e := New(ix, cfg)
	_, stats, err := e.Execute(workload.Query{ID: 8, Terms: []workload.TermID{0, 9}})
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range stats.Terms {
		if ts.Utilization < 0.999 {
			t.Fatalf("term %d utilization %v with termination disabled", ts.Term, ts.Utilization)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.TopK != 50 || c.ChunkBytes <= 0 || c.TerminationFrac <= 0 || c.DocResultBytes != 400 {
		t.Fatalf("defaults: %+v", c)
	}
	if n := c.chunkBlocks(); n != c.ChunkBytes/(index.BlockLen*index.PostingSize) {
		t.Fatalf("chunkBlocks = %d for ChunkBytes %d", n, c.ChunkBytes)
	}
	c2 := Config{ChunkBytes: 1} // below one block
	c2.fillDefaults()
	if n := c2.chunkBlocks(); n != 1 {
		t.Fatalf("chunkBlocks = %d, want floor of 1", n)
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	r := &Result{QueryID: 99, Docs: []ScoredDoc{{Doc: 1, Score: 2.5}, {Doc: 7, Score: 1.25}}}
	buf := r.Encode(400)
	if len(buf) != EncodedResultBytes(2, 400) {
		t.Fatalf("encoded %d bytes", len(buf))
	}
	got, err := DecodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.QueryID != 99 || len(got.Docs) != 2 || got.Docs[0] != r.Docs[0] || got.Docs[1] != r.Docs[1] {
		t.Fatalf("decoded %+v", got)
	}
}

func TestResultEntrySizeMatchesPaper(t *testing.T) {
	// 50 docs × 400 B ≈ 20 KB per result entry (§VI).
	docs := make([]ScoredDoc, 50)
	r := &Result{QueryID: 1, Docs: docs}
	size := len(r.Encode(400))
	if size < 20000 || size > 20100 {
		t.Fatalf("entry size %d, want ≈20 KB", size)
	}
}

func TestDecodeResultRejectsCorrupt(t *testing.T) {
	if _, err := DecodeResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
	r := &Result{QueryID: 1, Docs: make([]ScoredDoc, 3)}
	buf := r.Encode(100)
	if _, err := DecodeResult(buf[:len(buf)-50]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
}

func TestDecodeResultRejectsOverflowHeader(t *testing.T) {
	// n × docBytes chosen to overflow int64 and slip past a naive size
	// check; the decoder must reject it without allocating.
	buf := make([]byte, 16)
	for i := 8; i < 16; i++ {
		buf[i] = 0xCB // n ≈ 3.4e9, docBytes ≈ 3.4e9
	}
	if _, err := DecodeResult(buf); err == nil {
		t.Fatal("overflowing header accepted")
	}
}

func TestEncodePanicsOnTinyDocBytes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("docBytes < 8 did not panic")
		}
	}()
	(&Result{}).Encode(4)
}

func TestResultCodecProperty(t *testing.T) {
	f := func(qid uint64, docsRaw []uint32) bool {
		docs := make([]ScoredDoc, len(docsRaw))
		for i, d := range docsRaw {
			docs[i] = ScoredDoc{Doc: d, Score: float32(d) / 3}
		}
		r := &Result{QueryID: qid, Docs: docs}
		got, err := DecodeResult(r.Encode(32))
		if err != nil || got.QueryID != qid || len(got.Docs) != len(docs) {
			return false
		}
		for i := range docs {
			if got.Docs[i] != docs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKEvictsLowest(t *testing.T) {
	tk := newTopK(3)
	tk.offer(1, 10)
	tk.offer(2, 20)
	tk.offer(3, 30)
	tk.offer(4, 5) // below min, rejected
	if tk.min() != 10 {
		t.Fatalf("min = %v", tk.min())
	}
	tk.offer(5, 40) // evicts doc 1
	ranked := tk.ranked()
	if len(ranked) != 3 || ranked[0].Doc != 5 || ranked[2].Doc != 2 {
		t.Fatalf("ranked = %+v", ranked)
	}
}

func TestTopKUpdatesExisting(t *testing.T) {
	tk := newTopK(2)
	tk.offer(1, 10)
	tk.offer(2, 20)
	tk.offer(1, 50) // doc 1 accumulates past doc 2
	ranked := tk.ranked()
	if ranked[0].Doc != 1 || ranked[0].Score != 50 {
		t.Fatalf("ranked = %+v", ranked)
	}
	if len(ranked) != 2 {
		t.Fatalf("len = %d", len(ranked))
	}
}

func TestIdf(t *testing.T) {
	if idf(1000, 0) != 0 {
		t.Fatal("idf with df=0 not 0")
	}
	if idf(1000, 10) <= idf(1000, 100) {
		t.Fatal("idf not decreasing in df")
	}
}
