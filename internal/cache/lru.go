// Package cache provides the recency-list machinery the paper's policies
// are built from: a byte-accounted LRU list with an inspectable tail
// window.
//
// Plain LRU is the paper's baseline. CBLRU and CBSLRU (§VI-C) divide the
// recency list into a "working region" and a "replace-first region" of
// window W and pick replacement victims from the tail window by cost — the
// TailWindow accessor exposes exactly that region, leaving the scoring to
// the policy layer in internal/core.
package cache

import "fmt"

// Entry is one cached item. Entries are owned by the List that holds them;
// callers keep pointers only while the entry remains resident.
type Entry struct {
	// Key identifies the item (query ID, term ID, or block number).
	Key uint64
	// Size is the item's byte footprint counted against capacity.
	Size int64
	// Value is the policy-specific payload.
	Value any

	prev, next *Entry
	owner      *List
}

// List is a byte-accounted recency list: most recently used at the front,
// least recently used at the back. It is not safe for concurrent use; the
// cache manager serializes access.
type List struct {
	capacity int64
	used     int64
	items    map[uint64]*Entry
	head     Entry // sentinel: head.next is MRU
	tail     Entry // sentinel: tail.prev is LRU
}

// NewList builds a list with the given byte capacity (> 0).
func NewList(capacity int64) *List {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: capacity %d", capacity))
	}
	l := &List{capacity: capacity, items: make(map[uint64]*Entry)}
	l.head.next = &l.tail
	l.tail.prev = &l.head
	return l
}

// Capacity returns the byte capacity.
func (l *List) Capacity() int64 { return l.capacity }

// Used returns the bytes currently accounted.
func (l *List) Used() int64 { return l.used }

// Free returns remaining capacity in bytes.
func (l *List) Free() int64 { return l.capacity - l.used }

// Len returns the number of resident entries.
func (l *List) Len() int { return len(l.items) }

// Get returns the entry for key and promotes it to MRU.
func (l *List) Get(key uint64) (*Entry, bool) {
	e, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.moveToFront(e)
	return e, true
}

// Peek returns the entry for key without promoting it.
func (l *List) Peek(key uint64) (*Entry, bool) {
	e, ok := l.items[key]
	return e, ok
}

// Put inserts a new MRU entry. It panics if the key is already resident
// (update via Get + mutate, or Remove first) or if size exceeds capacity.
// Put does NOT evict; callers make room first so the policy layer controls
// victim selection. It returns the new entry.
func (l *List) Put(key uint64, size int64, value any) *Entry {
	if size < 0 {
		panic(fmt.Sprintf("cache: negative size %d", size))
	}
	if size > l.capacity {
		panic(fmt.Sprintf("cache: item of %d bytes exceeds capacity %d", size, l.capacity))
	}
	if _, ok := l.items[key]; ok {
		panic(fmt.Sprintf("cache: duplicate key %d", key))
	}
	e := &Entry{Key: key, Size: size, Value: value, owner: l}
	l.items[key] = e
	l.pushFront(e)
	l.used += size
	return e
}

// Fits reports whether an item of the given size can be inserted without
// eviction.
func (l *List) Fits(size int64) bool { return l.used+size <= l.capacity }

// Remove detaches the entry for key and returns it.
func (l *List) Remove(key uint64) (*Entry, bool) {
	e, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.RemoveEntry(e)
	return e, true
}

// RemoveEntry detaches a resident entry obtained from Get/Peek/TailWindow.
func (l *List) RemoveEntry(e *Entry) {
	if e.owner != l {
		panic("cache: entry does not belong to this list")
	}
	l.unlink(e)
	delete(l.items, e.Key)
	l.used -= e.Size
	e.owner = nil
}

// Resize changes an entry's accounted size in place (for example when a
// cached list prefix grows).
func (l *List) Resize(e *Entry, size int64) {
	if e.owner != l {
		panic("cache: entry does not belong to this list")
	}
	if size < 0 || l.used-e.Size+size > l.capacity {
		panic(fmt.Sprintf("cache: resize to %d overflows capacity", size))
	}
	l.used += size - e.Size
	e.Size = size
}

// Touch promotes an entry to MRU.
func (l *List) Touch(e *Entry) {
	if e.owner != l {
		panic("cache: entry does not belong to this list")
	}
	l.moveToFront(e)
}

// LRUEntry returns the least recently used entry, or nil when empty.
func (l *List) LRUEntry() *Entry {
	if l.tail.prev == &l.head {
		return nil
	}
	return l.tail.prev
}

// TailWindow returns up to w entries from the LRU end, least recent first:
// the paper's "replace-first region" with window size W. The returned
// slice is a snapshot; entries remain owned by the list.
func (l *List) TailWindow(w int) []*Entry {
	out := make([]*Entry, 0, w)
	for e := l.tail.prev; e != &l.head && len(out) < w; e = e.prev {
		out = append(out, e)
	}
	return out
}

// Ascend calls fn from LRU to MRU until fn returns false.
func (l *List) Ascend(fn func(*Entry) bool) {
	for e := l.tail.prev; e != &l.head; {
		prev := e.prev // fn may remove e
		if !fn(e) {
			return
		}
		e = prev
	}
}

func (l *List) pushFront(e *Entry) {
	e.prev = &l.head
	e.next = l.head.next
	l.head.next.prev = e
	l.head.next = e
}

func (l *List) unlink(e *Entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (l *List) moveToFront(e *Entry) {
	l.unlink(e)
	l.pushFront(e)
}
