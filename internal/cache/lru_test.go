package cache

import (
	"testing"
	"testing/quick"
)

func TestPutGetPeek(t *testing.T) {
	l := NewList(100)
	l.Put(1, 10, "a")
	e, ok := l.Get(1)
	if !ok || e.Value.(string) != "a" || e.Size != 10 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := l.Peek(2); ok {
		t.Fatal("Peek found missing key")
	}
	if l.Used() != 10 || l.Free() != 90 || l.Len() != 1 {
		t.Fatalf("accounting wrong: used=%d free=%d len=%d", l.Used(), l.Free(), l.Len())
	}
}

func TestLRUOrder(t *testing.T) {
	l := NewList(100)
	l.Put(1, 1, nil)
	l.Put(2, 1, nil)
	l.Put(3, 1, nil)
	if got := l.LRUEntry().Key; got != 1 {
		t.Fatalf("LRU = %d, want 1", got)
	}
	l.Get(1) // promote
	if got := l.LRUEntry().Key; got != 2 {
		t.Fatalf("LRU after promote = %d, want 2", got)
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	l := NewList(100)
	l.Put(1, 1, nil)
	l.Put(2, 1, nil)
	l.Peek(1)
	if got := l.LRUEntry().Key; got != 1 {
		t.Fatalf("Peek promoted: LRU = %d", got)
	}
}

func TestTouchPromotes(t *testing.T) {
	l := NewList(100)
	e := l.Put(1, 1, nil)
	l.Put(2, 1, nil)
	l.Touch(e)
	if got := l.LRUEntry().Key; got != 2 {
		t.Fatalf("Touch did not promote: LRU = %d", got)
	}
}

func TestRemove(t *testing.T) {
	l := NewList(100)
	l.Put(1, 30, nil)
	e, ok := l.Remove(1)
	if !ok || e.Key != 1 {
		t.Fatalf("Remove = %+v, %v", e, ok)
	}
	if l.Used() != 0 || l.Len() != 0 {
		t.Fatal("accounting not restored")
	}
	if _, ok := l.Remove(1); ok {
		t.Fatal("double remove succeeded")
	}
}

func TestRemoveEntryForeignPanics(t *testing.T) {
	a := NewList(10)
	b := NewList(10)
	e := a.Put(1, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign RemoveEntry did not panic")
		}
	}()
	b.RemoveEntry(e)
}

func TestPutDuplicatePanics(t *testing.T) {
	l := NewList(10)
	l.Put(1, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Put did not panic")
		}
	}()
	l.Put(1, 1, nil)
}

func TestPutOversizePanics(t *testing.T) {
	l := NewList(10)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize Put did not panic")
		}
	}()
	l.Put(1, 11, nil)
}

func TestFits(t *testing.T) {
	l := NewList(10)
	l.Put(1, 6, nil)
	if !l.Fits(4) {
		t.Fatal("Fits(4) false with 4 free")
	}
	if l.Fits(5) {
		t.Fatal("Fits(5) true with 4 free")
	}
}

func TestResize(t *testing.T) {
	l := NewList(100)
	e := l.Put(1, 10, nil)
	l.Resize(e, 50)
	if l.Used() != 50 || e.Size != 50 {
		t.Fatalf("resize: used=%d size=%d", l.Used(), e.Size)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing resize did not panic")
		}
	}()
	l.Resize(e, 101)
}

func TestTailWindow(t *testing.T) {
	l := NewList(100)
	for k := uint64(1); k <= 5; k++ {
		l.Put(k, 1, nil)
	}
	w := l.TailWindow(3)
	if len(w) != 3 || w[0].Key != 1 || w[1].Key != 2 || w[2].Key != 3 {
		keys := []uint64{}
		for _, e := range w {
			keys = append(keys, e.Key)
		}
		t.Fatalf("TailWindow = %v, want [1 2 3]", keys)
	}
	if got := len(l.TailWindow(10)); got != 5 {
		t.Fatalf("oversized window returned %d", got)
	}
	empty := NewList(10)
	if got := len(empty.TailWindow(3)); got != 0 {
		t.Fatalf("empty list window returned %d", got)
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	l := NewList(100)
	for k := uint64(1); k <= 4; k++ {
		l.Put(k, 1, nil)
	}
	var seen []uint64
	l.Ascend(func(e *Entry) bool {
		seen = append(seen, e.Key)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("Ascend saw %v", seen)
	}
}

func TestAscendSafeRemoval(t *testing.T) {
	l := NewList(100)
	for k := uint64(1); k <= 4; k++ {
		l.Put(k, 1, nil)
	}
	l.Ascend(func(e *Entry) bool {
		if e.Key%2 == 1 {
			l.RemoveEntry(e)
		}
		return true
	})
	if l.Len() != 2 {
		t.Fatalf("Len = %d after removal during Ascend", l.Len())
	}
	if _, ok := l.Peek(1); ok {
		t.Fatal("removed entry still present")
	}
}

func TestEmptyListLRUEntryNil(t *testing.T) {
	if NewList(10).LRUEntry() != nil {
		t.Fatal("empty list LRUEntry not nil")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewList(0)
}

func TestAccountingProperty(t *testing.T) {
	// Property: Used always equals the sum of resident entry sizes, and
	// never exceeds capacity as long as callers respect Fits.
	f := func(ops []uint16) bool {
		l := NewList(1 << 16)
		sizes := make(map[uint64]int64)
		var key uint64
		for _, raw := range ops {
			switch raw % 3 {
			case 0: // put
				size := int64(raw%512) + 1
				if l.Fits(size) {
					key++
					l.Put(key, size, nil)
					sizes[key] = size
				}
			case 1: // remove LRU
				if e := l.LRUEntry(); e != nil {
					l.RemoveEntry(e)
					delete(sizes, e.Key)
				}
			case 2: // touch random-ish
				if e, ok := l.Peek(uint64(raw) % (key + 1)); ok {
					l.Touch(e)
				}
			}
			var want int64
			for _, s := range sizes {
				want += s
			}
			if l.Used() != want || l.Used() > l.Capacity() || l.Len() != len(sizes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
