package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// endTrace completes one minimal trace with the given query ID.
func endTrace(t *Tracer, qid uint64) QueryTrace {
	t.Begin(qid, time.Duration(qid)*time.Millisecond)
	t.ListRead(7, "ssd", 100)
	return t.End(time.Millisecond)
}

func TestTracerRingWraparound(t *testing.T) {
	const capacity = 4
	tr := NewTracer(capacity)
	for qid := uint64(1); qid <= 10; qid++ {
		endTrace(tr, qid)
	}
	if got := tr.Completed(); got != 10 {
		t.Fatalf("Completed=%d want 10", got)
	}
	recent := tr.Recent(0)
	if len(recent) != capacity {
		t.Fatalf("ring holds %d traces, want %d", len(recent), capacity)
	}
	// Oldest first: qids 7..10, with monotonically increasing Seq that keeps
	// counting across the wraparound (Seq = qid-1 here).
	for i, q := range recent {
		wantQID := uint64(7 + i)
		if q.QID != wantQID {
			t.Fatalf("recent[%d].QID=%d want %d", i, q.QID, wantQID)
		}
		if q.Seq != int64(wantQID-1) {
			t.Fatalf("recent[%d].Seq=%d want %d", i, q.Seq, wantQID-1)
		}
	}
	// Recent(n) returns the n newest, still oldest-first.
	last2 := tr.Recent(2)
	if len(last2) != 2 || last2[0].QID != 9 || last2[1].QID != 10 {
		t.Fatalf("Recent(2) = %+v, want qids 9,10", last2)
	}
}

func TestTracerRingPartialFill(t *testing.T) {
	tr := NewTracer(8)
	endTrace(tr, 1)
	endTrace(tr, 2)
	recent := tr.Recent(0)
	if len(recent) != 2 || recent[0].QID != 1 || recent[1].QID != 2 {
		t.Fatalf("Recent(0) = %+v, want qids 1,2", recent)
	}
}

func TestTracerStreamsNDJSONPastRingCapacity(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(2) // tiny ring; the stream must still see everything
	tr.StreamTo(&buf)
	for qid := uint64(1); qid <= 5; qid++ {
		endTrace(tr, qid)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	var seqs []int64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var q QueryTrace
		if err := json.Unmarshal(sc.Bytes(), &q); err != nil {
			t.Fatalf("invalid NDJSON line: %v", err)
		}
		seqs = append(seqs, q.Seq)
		if q.SSDBytes != 100 {
			t.Fatalf("ssd_bytes=%d want 100", q.SSDBytes)
		}
	}
	if len(seqs) != 5 {
		t.Fatalf("streamed %d records, want 5", len(seqs))
	}
	for i, s := range seqs {
		if s != int64(i) {
			t.Fatalf("stream seq[%d]=%d want %d", i, s, i)
		}
	}
}

func TestTracerAttribution(t *testing.T) {
	tr := NewTracer(4)
	tr.Begin(42, 0)
	tr.ResultProbe("miss", 0)
	tr.ListRead(1, "mem", 10)
	tr.ListRead(2, "ssd", 20)
	tr.ListRead(3, "hdd", 30)
	tr.ListRead(1, "mem", 5)
	tr.Flush("flush_list", 2, 4096)
	tr.Evict("evict_list", 9, "ssd")
	tr.HDDOp(true)
	tr.HDDOp(false)
	tr.SetSituation("S9(I:hdd)")
	q := tr.End(3 * time.Millisecond)

	if q.MemBytes != 15 || q.SSDBytes != 20 || q.HDDBytes != 30 {
		t.Fatalf("byte attribution mem=%d ssd=%d hdd=%d", q.MemBytes, q.SSDBytes, q.HDDBytes)
	}
	if q.ResultLevel != "miss" || q.Situation != "S9(I:hdd)" {
		t.Fatalf("result_level=%q situation=%q", q.ResultLevel, q.Situation)
	}
	if q.Flushes != 1 || q.FlushBytes != 4096 || q.Evictions != 1 {
		t.Fatalf("flushes=%d flush_bytes=%d evictions=%d", q.Flushes, q.FlushBytes, q.Evictions)
	}
	if q.HDDReads != 2 || q.HDDSeeks != 1 {
		t.Fatalf("hdd_reads=%d hdd_seeks=%d", q.HDDReads, q.HDDSeeks)
	}
	if q.ElapsedUS != 3000 {
		t.Fatalf("elapsed_us=%d want 3000", q.ElapsedUS)
	}
	// 1 result probe + 4 list reads + 1 flush + 1 evict (HDD ops are
	// aggregate-only, no spans).
	if len(q.Spans) != 7 {
		t.Fatalf("spans=%d want 7", len(q.Spans))
	}
}

func TestTracerSpanLimit(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSpanLimit(3)
	tr.Begin(1, 0)
	for i := 0; i < 10; i++ {
		tr.ListRead(int64(i), "mem", 1)
	}
	q := tr.End(0)
	if len(q.Spans) != 3 || q.SpansDropped != 7 {
		t.Fatalf("spans=%d dropped=%d, want 3/7", len(q.Spans), q.SpansDropped)
	}
	if q.MemBytes != 10 {
		t.Fatalf("aggregate bytes must survive the span cap: mem=%d want 10", q.MemBytes)
	}
}

func TestTracerEventsOutsideQueryDropped(t *testing.T) {
	tr := NewTracer(4)
	tr.ListRead(1, "mem", 100) // no open trace: must not panic or leak
	if tr.Active() {
		t.Fatal("tracer active without Begin")
	}
	if q := tr.End(0); q.QID != 0 || tr.Completed() != 0 {
		t.Fatalf("End without Begin produced a trace: %+v", q)
	}
}

func TestTracerWriteNDJSON(t *testing.T) {
	tr := NewTracer(4)
	endTrace(tr, 1)
	endTrace(tr, 2)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var q QueryTrace
		if err := json.Unmarshal([]byte(line), &q); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
}
