package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"hybridstore/internal/simclock"
)

// Attrib partitions a span of simulated time across the attribution
// components, in nanoseconds. Index by simclock.Component. The per-query
// contract is Sum() == QueryTrace.ElapsedNS: the deltas are collected at
// the clock itself, so every advanced nanosecond lands in exactly one slot.
type Attrib [simclock.NumComponents]int64

// Add accumulates d into component c.
func (a *Attrib) Add(c simclock.Component, d time.Duration) {
	if c >= simclock.NumComponents {
		c = simclock.CompOther
	}
	a[c] += int64(d)
}

// Merge adds every component of b into a.
func (a *Attrib) Merge(b Attrib) {
	for i := range a {
		a[i] += b[i]
	}
}

// Sum returns the total nanoseconds across all components.
func (a Attrib) Sum() int64 {
	var s int64
	for _, v := range a {
		s += v
	}
	return s
}

// MarshalJSON renders the non-zero components as an object keyed by the
// stable component names, in canonical enum order.
func (a Attrib) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	first := true
	for i, v := range a {
		if v == 0 {
			continue
		}
		if !first {
			buf.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&buf, "%q:%d", simclock.Component(i).String(), v)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON parses the object form written by MarshalJSON. Unknown
// component names are folded into "other" so newer traces stay readable.
func (a *Attrib) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*a = Attrib{}
	var names []string
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c, ok := simclock.ComponentByName(name)
		if !ok {
			c = simclock.CompOther
		}
		a[c] += m[name]
	}
	return nil
}
