package obs

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hybridstore/internal/simclock"
)

func sampleAttrib(seek, cpu time.Duration) Attrib {
	var a Attrib
	a.Add(simclock.CompHDDSeek, seek)
	a.Add(simclock.CompCPUIntersect, cpu)
	return a
}

func TestProfileMergeOrderIndependent(t *testing.T) {
	mk := func(order []int) *Profile {
		shards := []*Profile{NewProfile(), NewProfile()}
		shards[0].Add("S9(I:hdd)", 5_000_000, sampleAttrib(4*time.Millisecond, time.Millisecond))
		shards[0].Add("S3(I:mem)", 1000, sampleAttrib(0, 1000))
		shards[1].Add("S9(I:hdd)", 7_000_000, sampleAttrib(6*time.Millisecond, time.Millisecond))
		total := NewProfile()
		for _, i := range order {
			total.Merge(shards[i])
		}
		return total
	}
	var a, b bytes.Buffer
	if err := mk([]int{0, 1}).WriteFolded(&a, "x"); err != nil {
		t.Fatal(err)
	}
	if err := mk([]int{1, 0}).WriteFolded(&b, "x"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merge order changed output:\n%s\nvs\n%s", a.String(), b.String())
	}
	want := "x;S3(I:mem);cpu_intersect 1000\n" +
		"x;S9(I:hdd);hdd_seek 10000000\n" +
		"x;S9(I:hdd);cpu_intersect 2000000\n"
	if a.String() != want {
		t.Fatalf("folded output:\n%s\nwant:\n%s", a.String(), want)
	}
}

func TestProfileTotalsAndReset(t *testing.T) {
	p := NewProfile()
	p.Add("S1(R:mem)", 100, sampleAttrib(0, 100))
	p.Add("S1(R:mem)", 50, sampleAttrib(0, 50))
	q, e, a := p.Totals()
	if q != 2 || e != 150 || a.Sum() != 150 {
		t.Fatalf("totals = %d/%d/%d", q, e, a.Sum())
	}
	p.Reset()
	if rows := p.Rows(); len(rows) != 0 {
		t.Fatalf("rows after reset: %d", len(rows))
	}
}

// TestWritePprofDeterministicAndGzipped: two renders are byte-identical
// and the payload is a gzip stream containing the sample-type strings.
func TestWritePprofDeterministicAndGzipped(t *testing.T) {
	p := NewProfile()
	p.Add("S9(I:hdd)", 5_000_000, sampleAttrib(4*time.Millisecond, time.Millisecond))
	p.Add("uncached", 700, sampleAttrib(0, 700))

	var a, b bytes.Buffer
	if err := p.WritePprof(&a, "query"); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePprof(&b, "query"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("pprof output is not deterministic")
	}

	zr, err := gzip.NewReader(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"simtime", "nanoseconds", "query", "S9(I:hdd)", "hdd_seek", "uncached"} {
		if !bytes.Contains(raw, []byte(s)) {
			t.Fatalf("decoded profile lacks string %q", s)
		}
	}
}

// TestPprofParsesWithGoTool shells out to `go tool pprof -raw`, the same
// validation CI runs; skipped when the go tool is unavailable.
func TestPprofParsesWithGoTool(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	p := NewProfile()
	p.Add("S9(I:hdd)", 5_000_000, sampleAttrib(4*time.Millisecond, time.Millisecond))
	path := filepath.Join(t.TempDir(), "sim.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePprof(f, "query"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(goBin, "tool", "pprof", "-raw", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -raw failed: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"simtime nanoseconds", "hdd_seek", "S9(I:hdd)", "query"} {
		if !strings.Contains(text, want) {
			t.Fatalf("pprof -raw output lacks %q:\n%s", want, text)
		}
	}
}
