package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hybridstore/internal/simclock"
)

func TestAttribJSONRoundTrip(t *testing.T) {
	var a Attrib
	a.Add(simclock.CompHDDSeek, 3*time.Millisecond)
	a.Add(simclock.CompCPUIntersect, 5*time.Microsecond)

	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical enum order, zeros omitted.
	if got, want := string(b), `{"hdd_seek":3000000,"cpu_intersect":5000}`; got != want {
		t.Fatalf("marshal = %s, want %s", got, want)
	}

	var back Attrib
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Fatalf("roundtrip: %v != %v", back, a)
	}

	// Unknown component names fold into "other" instead of erroring.
	if err := json.Unmarshal([]byte(`{"hdd_seek":1,"future_component":9}`), &back); err != nil {
		t.Fatal(err)
	}
	if back[simclock.CompOther] != 9 || back[simclock.CompHDDSeek] != 1 {
		t.Fatalf("unknown name handling: %v", back)
	}

	if a.Sum() != 3005000 {
		t.Fatalf("Sum = %d", a.Sum())
	}
}

func TestAttribZeroMarshalsEmpty(t *testing.T) {
	b, err := json.Marshal(Attrib{})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}" {
		t.Fatalf("zero Attrib marshals as %s", b)
	}
}

// TestTracerAddTimeTilesSpans: simulated time fed through AddTime lands on
// the next recorded span as start/duration, and the per-query attribution
// equals the total time added.
func TestTracerAddTimeTilesSpans(t *testing.T) {
	tr := NewTracer(4)
	tr.Begin(7, 0)
	tr.AddTime(simclock.CompCacheBookkeeping, 10*time.Microsecond)
	tr.ResultProbe("miss", 0)
	tr.AddTime(simclock.CompHDDSeek, 8*time.Millisecond)
	tr.AddTime(simclock.CompHDDTransfer, 1*time.Millisecond)
	tr.ListRead(1, "hdd", 4096)
	tr.AddTime(simclock.CompCPUIntersect, 90*time.Microsecond)
	q := tr.End(9100 * time.Microsecond)

	if q.Attrib == nil {
		t.Fatal("trace lacks attribution")
	}
	if got := q.Attrib.Sum(); got != q.ElapsedNS {
		t.Fatalf("attribution sums to %d, elapsed %d", got, q.ElapsedNS)
	}
	if len(q.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(q.Spans))
	}
	if q.Spans[0].StartNS != 0 || q.Spans[0].DurNS != 10_000 {
		t.Fatalf("span0 start=%d dur=%d", q.Spans[0].StartNS, q.Spans[0].DurNS)
	}
	if q.Spans[1].StartNS != 10_000 || q.Spans[1].DurNS != 9_000_000 {
		t.Fatalf("span1 start=%d dur=%d", q.Spans[1].StartNS, q.Spans[1].DurNS)
	}
	// The trailing 90µs of CPU time is attributed but past the last span.
	if q.Attrib[simclock.CompCPUIntersect] != 90_000 {
		t.Fatalf("cpu_intersect = %d", q.Attrib[simclock.CompCPUIntersect])
	}
}

// TestTracerTruncationKeepsTiming: when the span cap truncates the list, a
// synthetic "truncated" span carries the residual time so span durations
// still sum to the elapsed time.
func TestTracerTruncationKeepsTiming(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSpanLimit(2)
	tr.Begin(1, 0)
	for i := 0; i < 6; i++ {
		tr.AddTime(simclock.CompSSDRead, time.Millisecond)
		tr.ListRead(int64(i), "ssd", 100)
	}
	q := tr.End(6 * time.Millisecond)

	if q.SpansDropped != 4 {
		t.Fatalf("dropped = %d, want 4", q.SpansDropped)
	}
	if len(q.Spans) != 3 {
		t.Fatalf("spans = %d, want 2 recorded + 1 truncated", len(q.Spans))
	}
	last := q.Spans[len(q.Spans)-1]
	if last.Kind != "truncated" {
		t.Fatalf("last span kind = %q", last.Kind)
	}
	if last.StartNS != 2_000_000 || last.DurNS != 4_000_000 {
		t.Fatalf("truncated span start=%d dur=%d", last.StartNS, last.DurNS)
	}
	var spanSum int64
	for _, s := range q.Spans {
		spanSum += s.DurNS
	}
	if spanSum != q.ElapsedNS {
		t.Fatalf("span durations sum to %d, elapsed %d", spanSum, q.ElapsedNS)
	}
	if q.Attrib.Sum() != q.ElapsedNS {
		t.Fatalf("attribution %d != elapsed %d", q.Attrib.Sum(), q.ElapsedNS)
	}
}

// TestTracerSpanCaptureDisabled: a negative span limit keeps attribution
// exact without recording any spans (and without a synthetic one).
func TestTracerSpanCaptureDisabled(t *testing.T) {
	o := New(Options{TraceRing: 2, SpanLimit: -1})
	o.Tracer.Begin(1, 0)
	o.Tracer.AddTime(simclock.CompHDDSeek, 5*time.Millisecond)
	o.Tracer.ListRead(1, "hdd", 10)
	q := o.Tracer.End(5 * time.Millisecond)

	if len(q.Spans) != 0 {
		t.Fatalf("spans captured despite negative limit: %d", len(q.Spans))
	}
	if q.Attrib == nil || q.Attrib.Sum() != q.ElapsedNS {
		t.Fatalf("attribution broken with span capture off: %+v", q.Attrib)
	}
}

func TestObserverFoldsProfile(t *testing.T) {
	o := New(Options{TraceRing: 8})
	for i := 0; i < 3; i++ {
		o.BeginQuery(uint64(i), 0)
		o.Tracer.AddTime(simclock.CompSSDRead, 2*time.Millisecond)
		o.Tracer.SetSituation("S2(R:ssd)")
		o.EndQuery(0, 2*time.Millisecond)
	}
	// A query without attribution must not land in the profile.
	o.BeginQuery(9, 0)
	o.EndQuery(0, time.Millisecond)

	rows := o.Profile().Rows()
	if len(rows) != 1 {
		t.Fatalf("profile rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Situation != "S2(R:ssd)" || r.Queries != 3 || r.ElapsedNS != 6_000_000 {
		t.Fatalf("row = %+v", r)
	}
	if r.Attrib[simclock.CompSSDRead] != 6_000_000 {
		t.Fatalf("attrib = %v", r.Attrib)
	}
}

func TestProgressString(t *testing.T) {
	p := Progress{
		Queries:          1234,
		IntervalMeanTime: 1500 * time.Microsecond,
		P50:              time.Millisecond,
		P95:              10 * time.Millisecond,
		P99:              20 * time.Millisecond,
		RC:               0.25, IC: 0.5, RIC: 0.625,
		SSDErases: 42, SSDWriteAmp: 1.125,
	}
	got := p.String()
	want := "q=1234 mean=1.5ms p50=1ms p95=10ms p99=20ms RC=0.250 IC=0.500 RIC=0.625 erases=42 WA=1.125"
	if got != want {
		t.Fatalf("Progress.String()\n got %q\nwant %q", got, want)
	}
	var zero Progress
	if s := zero.String(); !strings.Contains(s, "q=0") || !strings.Contains(s, "RC=0.000") {
		t.Fatalf("zero Progress renders oddly: %q", s)
	}
}
