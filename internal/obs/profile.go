package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"

	"hybridstore/internal/simclock"
)

// ProfileRow is one situation's cumulative latency attribution.
type ProfileRow struct {
	// Situation is the Table I label ("S1(R:mem)" ...) or "uncached".
	Situation string `json:"situation"`
	// Queries is the number of traces folded into this row.
	Queries int64 `json:"queries"`
	// ElapsedNS is the summed simulated elapsed time of those queries.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Attrib partitions ElapsedNS across the attribution components.
	Attrib Attrib `json:"attrib"`
}

// Profile folds per-query attribution into component/situation-keyed
// cumulative totals: the simulated-time analogue of a CPU profile, where a
// "stack" is root;situation;component and the sample value is simulated
// nanoseconds. All mutation is commutative int64 addition and all renders
// iterate sorted keys, so a profile merged from parallel shards is
// byte-identical to one built serially.
type Profile struct {
	mu    sync.Mutex
	bySit map[string]*ProfileRow
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{bySit: make(map[string]*ProfileRow)}
}

// Add folds one query's attribution into the situation's row.
func (p *Profile) Add(situation string, elapsedNS int64, a Attrib) {
	p.mu.Lock()
	defer p.mu.Unlock()
	row := p.bySit[situation]
	if row == nil {
		row = &ProfileRow{Situation: situation}
		p.bySit[situation] = row
	}
	row.Queries++
	row.ElapsedNS += elapsedNS
	row.Attrib.Merge(a)
}

// Merge adds every row of o into p. Addition is commutative, so merging
// per-worker profiles yields the same totals in any order.
func (p *Profile) Merge(o *Profile) {
	for _, row := range o.Rows() {
		p.mu.Lock()
		dst := p.bySit[row.Situation]
		if dst == nil {
			dst = &ProfileRow{Situation: row.Situation}
			p.bySit[row.Situation] = dst
		}
		dst.Queries += row.Queries
		dst.ElapsedNS += row.ElapsedNS
		dst.Attrib.Merge(row.Attrib)
		p.mu.Unlock()
	}
}

// Reset drops all accumulated rows.
func (p *Profile) Reset() {
	p.mu.Lock()
	p.bySit = make(map[string]*ProfileRow)
	p.mu.Unlock()
}

// Rows returns the accumulated rows sorted by situation label.
func (p *Profile) Rows() []ProfileRow {
	p.mu.Lock()
	defer p.mu.Unlock()
	var keys []string
	for k := range p.bySit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ProfileRow, 0, len(keys))
	for _, k := range keys {
		out = append(out, *p.bySit[k])
	}
	return out
}

// Totals returns the number of queries, total elapsed nanoseconds and the
// combined attribution across all rows.
func (p *Profile) Totals() (queries, elapsedNS int64, a Attrib) {
	for _, row := range p.Rows() {
		queries += row.Queries
		elapsedNS += row.ElapsedNS
		a.Merge(row.Attrib)
	}
	return queries, elapsedNS, a
}

// WriteFolded renders the profile as folded stacks (`root;situation;component
// <nanoseconds>` per line), the input format of flamegraph tooling. Zero
// components are skipped; lines are emitted in sorted-situation then
// component-enum order, so output is deterministic.
func (p *Profile) WriteFolded(w io.Writer, root string) error {
	bw := bufio.NewWriter(w)
	for _, row := range p.Rows() {
		for c, v := range row.Attrib {
			if v == 0 {
				continue
			}
			fmt.Fprintf(bw, "%s;%s;%s %d\n", root, row.Situation, simclock.Component(c), v)
		}
	}
	return bw.Flush()
}

// WritePprof renders the profile as gzipped pprof protobuf with one sample
// type ("simtime" in nanoseconds) and root;situation;component stacks. The
// encoding is fully deterministic: no timestamps, stable string-table
// order.
func (p *Profile) WritePprof(w io.Writer, root string) error {
	return writePprof(w, root, p.Rows())
}
