package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"hybridstore/internal/metrics"
)

// metricKind tags a registry entry for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindSeries
)

// Registry is a unified, named metric store: monotone counters, read-on-
// demand gauges, bucketed histograms and checkpointed time series. One
// registry describes one run; every reporter (text exposition, JSON
// report, live progress) renders from it, replacing ad-hoc snapshotting.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*metrics.Counter
	gauges   map[string]func() float64
	hists    map[string]*metrics.Histogram
	series   map[string]*metrics.TimeSeries
	order    []registryEntry // registration order, for stable exposition
}

type registryEntry struct {
	kind metricKind
	name string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*metrics.Counter),
		gauges:   make(map[string]func() float64),
		hists:    make(map[string]*metrics.Histogram),
		series:   make(map[string]*metrics.TimeSeries),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *metrics.Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &metrics.Counter{}
	r.counters[name] = c
	r.order = append(r.order, registryEntry{kindCounter, name})
	return c
}

// Gauge registers (or replaces) a named gauge read by fn at exposition and
// checkpoint time. Gauges own no state; they sample live system values.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauges[name]; !ok {
		r.order = append(r.order, registryEntry{kindGauge, name})
	}
	r.gauges[name] = fn
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds []int64) *metrics.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := metrics.NewHistogram(bounds)
	r.hists[name] = h
	r.order = append(r.order, registryEntry{kindHistogram, name})
	return h
}

// Series returns the named time series, creating it on first use.
func (r *Registry) Series(name string) *metrics.TimeSeries {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[name]; ok {
		return s
	}
	s := metrics.NewTimeSeries(name)
	r.series[name] = s
	r.order = append(r.order, registryEntry{kindSeries, name})
	return s
}

// GaugeValue samples one gauge by name; ok is false when it is not
// registered.
func (r *Registry) GaugeValue(name string) (v float64, ok bool) {
	r.mu.Lock()
	fn, ok := r.gauges[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return fn(), true
}

// Checkpoint samples every gauge into a time series of the same name at
// simulated time at. Called every N queries, it yields the Fig 19-style
// progress curves (hit ratios, erase counts, write amplification).
func (r *Registry) Checkpoint(at time.Duration) {
	r.mu.Lock()
	names := make([]string, 0, len(r.gauges))
	for _, e := range r.order {
		if e.kind == kindGauge {
			names = append(names, e.name)
		}
	}
	fns := make([]func() float64, len(names))
	for i, n := range names {
		fns[i] = r.gauges[n]
	}
	r.mu.Unlock()

	for i, n := range names {
		r.Series(n).Record(at, fns[i]())
	}
}

// sanitizeMetricName maps a registry name onto the Prometheus exposition
// charset [a-zA-Z0-9_:].
func sanitizeMetricName(name string) string {
	var sb strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WriteTo renders the registry in Prometheus-style text exposition format:
// counters and gauges as single samples, histograms as cumulative _bucket
// series with _sum and _count, time series as their latest sample.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	order := append([]registryEntry(nil), r.order...)
	r.mu.Unlock()

	var n int64
	emit := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	for _, e := range order {
		name := sanitizeMetricName(e.name)
		switch e.kind {
		case kindCounter:
			r.mu.Lock()
			c := r.counters[e.name]
			r.mu.Unlock()
			if err := emit("# TYPE %s counter\n%s %d\n", name, name, c.Value()); err != nil {
				return n, err
			}
		case kindGauge:
			v, _ := r.GaugeValue(e.name)
			if err := emit("# TYPE %s gauge\n%s %g\n", name, name, v); err != nil {
				return n, err
			}
		case kindHistogram:
			r.mu.Lock()
			h := r.hists[e.name]
			r.mu.Unlock()
			if err := emit("# TYPE %s histogram\n", name); err != nil {
				return n, err
			}
			var cum int64
			for _, b := range h.Buckets() {
				cum += b.Count
				le := "+Inf"
				if b.UpperBound >= 0 {
					le = fmt.Sprintf("%d", b.UpperBound)
				}
				if err := emit("%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
					return n, err
				}
			}
			if err := emit("%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Total()); err != nil {
				return n, err
			}
		case kindSeries:
			r.mu.Lock()
			s := r.series[e.name]
			r.mu.Unlock()
			last := s.Last()
			if err := emit("# TYPE %s gauge\n%s %g\n", name, name, last.Value); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// HistogramSnapshot summarizes one histogram for the JSON report.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// SeriesPoint is one checkpointed sample for the JSON report.
type SeriesPoint struct {
	AtUS  int64   `json:"at_us"`
	Value float64 `json:"value"`
}

// RegistrySnapshot is a point-in-time, JSON-serializable view of the whole
// registry.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string][]SeriesPoint     `json:"series,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	order := append([]registryEntry(nil), r.order...)
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Series:     map[string][]SeriesPoint{},
	}
	for _, e := range order {
		switch e.kind {
		case kindCounter:
			r.mu.Lock()
			c := r.counters[e.name]
			r.mu.Unlock()
			snap.Counters[e.name] = c.Value()
		case kindGauge:
			v, _ := r.GaugeValue(e.name)
			snap.Gauges[e.name] = v
		case kindHistogram:
			r.mu.Lock()
			h := r.hists[e.name]
			r.mu.Unlock()
			snap.Histograms[e.name] = HistogramSnapshot{
				Count: h.Total(),
				Mean:  h.Mean(),
				P50:   h.Quantile(50),
				P95:   h.Quantile(95),
				P99:   h.Quantile(99),
				P999:  h.Quantile(99.9),
			}
		case kindSeries:
			r.mu.Lock()
			s := r.series[e.name]
			r.mu.Unlock()
			pts := s.Samples()
			out := make([]SeriesPoint, len(pts))
			for i, p := range pts {
				out[i] = SeriesPoint{AtUS: p.At.Microseconds(), Value: p.Value}
			}
			snap.Series[e.name] = out
		}
	}
	return snap
}

// Names returns every registered metric name, sorted, for inspection.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	for i, e := range r.order {
		out[i] = e.name
	}
	sort.Strings(out)
	return out
}
