package obs

import (
	"compress/gzip"
	"io"

	"hybridstore/internal/simclock"
)

// This file emits pprof's profile.proto with a minimal hand-rolled
// protobuf writer, so `go tool pprof` can consume simulated-time profiles
// without the reproduction taking on a protobuf dependency. Only the
// fields pprof requires are written:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function),
//	          6 string_table, 10 duration_nanos,
//	          11 period_type (ValueType), 12 period
//	ValueType: 1 type (string idx), 2 unit (string idx)
//	Sample:    1 location_id (packed, leaf first), 2 value (packed)
//	Location:  1 id, 4 line (Line)
//	Line:      1 function_id
//	Function:  1 id, 2 name (string idx)
//
// time_nanos is deliberately omitted (and gzip carries a zero mod time):
// the encoder has no access to wall-clock time and two runs of the same
// seed produce byte-identical profiles.

// protoBuf accumulates protobuf wire-format bytes.
type protoBuf struct{ b []byte }

func (p *protoBuf) uvarint(x uint64) {
	for x >= 0x80 {
		p.b = append(p.b, byte(x)|0x80)
		x >>= 7
	}
	p.b = append(p.b, byte(x))
}

// varintField writes field n with wire type 0 (varint).
func (p *protoBuf) varintField(n int, x uint64) {
	p.uvarint(uint64(n)<<3 | 0)
	p.uvarint(x)
}

// bytesField writes field n with wire type 2 (length-delimited).
func (p *protoBuf) bytesField(n int, b []byte) {
	p.uvarint(uint64(n)<<3 | 2)
	p.uvarint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) stringField(n int, s string) { p.bytesField(n, []byte(s)) }

// packedField writes field n as a packed repeated varint.
func (p *protoBuf) packedField(n int, xs []uint64) {
	var inner protoBuf
	for _, x := range xs {
		inner.uvarint(x)
	}
	p.bytesField(n, inner.b)
}

// valueType encodes a ValueType{type, unit} message.
func valueType(typeIdx, unitIdx uint64) []byte {
	var vt protoBuf
	vt.varintField(1, typeIdx)
	vt.varintField(2, unitIdx)
	return vt.b
}

// writePprof encodes rows as a gzipped pprof profile. Stacks are
// root;situation;component with the component as the leaf frame; sample
// values are simulated nanoseconds.
func writePprof(w io.Writer, root string, rows []ProfileRow) error {
	// String table: index 0 must be the empty string. Frame names are
	// interned in first-use order, which is deterministic because rows are
	// sorted and components enumerate in canonical order.
	strings := []string{""}
	strIdx := map[string]uint64{"": 0}
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(strings))
		strings = append(strings, s)
		strIdx[s] = i
		return i
	}

	// One function + one location per unique frame name; ids start at 1.
	var funcs, locs protoBuf
	locIdx := map[string]uint64{}
	location := func(name string) uint64 {
		if id, ok := locIdx[name]; ok {
			return id
		}
		id := uint64(len(locIdx) + 1)
		locIdx[name] = id

		var fn protoBuf
		fn.varintField(1, id)
		fn.varintField(2, intern(name))
		funcs.bytesField(5, fn.b)

		var line protoBuf
		line.varintField(1, id)
		var loc protoBuf
		loc.varintField(1, id)
		loc.bytesField(4, line.b)
		locs.bytesField(4, loc.b)
		return id
	}

	simtime := intern("simtime")
	nanos := intern("nanoseconds")

	var out protoBuf
	out.bytesField(1, valueType(simtime, nanos))

	var totalNS int64
	rootID := location(root)
	for _, row := range rows {
		sitID := location(row.Situation)
		for c, v := range row.Attrib {
			if v == 0 {
				continue
			}
			compID := location(simclock.Component(c).String())
			var sample protoBuf
			sample.packedField(1, []uint64{compID, sitID, rootID})
			sample.packedField(2, []uint64{uint64(v)})
			out.bytesField(2, sample.b)
			totalNS += v
		}
	}

	out.b = append(out.b, locs.b...)
	out.b = append(out.b, funcs.b...)
	for _, s := range strings {
		out.stringField(6, s)
	}
	out.varintField(10, uint64(totalNS))
	out.bytesField(11, valueType(simtime, nanos))
	out.varintField(12, 1)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}
