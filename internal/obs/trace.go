// Package obs is the observability layer of the reproduction: per-query
// tracing with storage-level attribution, and a unified metrics registry
// exposing counters, latency histograms and checkpointed time series.
//
// The simulator's serving path stays synchronous and single-threaded; the
// types here are nevertheless mutex-guarded so exports (NDJSON dumps,
// registry expositions) can run concurrently with a driver.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"hybridstore/internal/simclock"
)

// Span is one attributed step inside a query trace: a list read served by
// one storage level, a result-cache probe, a cache flush or an eviction.
type Span struct {
	// Kind is the step type: "list", "result", "flush_list", "flush_result",
	// "evict_list", "evict_result", "queue_wait".
	Kind string `json:"kind"`
	// Term is the inverted-list term, for list-related spans.
	Term int64 `json:"term,omitempty"`
	// Level is the storage level that served or held the data
	// ("mem", "ssd", "hdd"); empty where it does not apply.
	Level string `json:"level,omitempty"`
	// Bytes is the payload size of the step.
	Bytes int64 `json:"bytes,omitempty"`
	// StartNS is the span's offset from the query start in simulated
	// nanoseconds. Spans tile the query: each one absorbs the simulated
	// time accrued since the previous span was recorded.
	StartNS int64 `json:"start_ns,omitempty"`
	// DurNS is the simulated time attributed to this span in nanoseconds.
	DurNS int64 `json:"dur_ns,omitempty"`
}

// QueryTrace is the record of one query through the hierarchy. All times
// are simulated. Byte fields attribute inverted-list reads per level and,
// summed over all traces of a run, equal the manager's Stats totals.
type QueryTrace struct {
	// Seq numbers completed traces from 0 in completion order.
	Seq int64 `json:"seq"`
	// QID is the query's log ID.
	QID uint64 `json:"qid"`
	// StartUS is the simulated start time in microseconds.
	StartUS int64 `json:"start_us"`
	// ElapsedUS is the simulated response time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Situation is the Table I classification ("S1(R:mem)" ... "S9(I:hdd)"),
	// or empty for uncached executions.
	Situation string `json:"situation,omitempty"`
	// ResultLevel says where the result-cache probe was served ("mem",
	// "ssd") or "miss"; empty when no result cache exists.
	ResultLevel string `json:"result_level,omitempty"`
	// MemBytes, SSDBytes and HDDBytes attribute list bytes per level.
	MemBytes int64 `json:"mem_bytes"`
	SSDBytes int64 `json:"ssd_bytes"`
	HDDBytes int64 `json:"hdd_bytes"`
	// Flushes counts SSD cache flushes (list extents + result blocks)
	// triggered while serving this query; FlushBytes their payload.
	Flushes    int   `json:"flushes,omitempty"`
	FlushBytes int64 `json:"flush_bytes,omitempty"`
	// Evictions counts cache evictions (both levels, both data types)
	// triggered while serving this query.
	Evictions int `json:"evictions,omitempty"`
	// HDDReads and HDDSeeks count backing-store operations and how many of
	// them paid mechanical positioning cost.
	HDDReads int `json:"hdd_reads,omitempty"`
	HDDSeeks int `json:"hdd_seeks,omitempty"`
	// ElapsedNS is the simulated response time in nanoseconds (ElapsedUS
	// is kept for readability; this field carries full precision so the
	// attribution contract below is exact).
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// Attrib partitions ElapsedNS across the attribution components.
	// Present only when the system's clock feeds the tracer (see
	// Tracer.AddTime); when present, Attrib.Sum() == ElapsedNS.
	Attrib *Attrib `json:"attrib,omitempty"`
	// Spans is the ordered step list, capped at the tracer's span limit.
	// When the cap truncates the list, a final synthetic span of kind
	// "truncated" carries the residual time so span durations still sum
	// to ElapsedNS.
	Spans []Span `json:"spans,omitempty"`
	// SpansDropped counts spans discarded past the cap.
	SpansDropped int `json:"spans_dropped,omitempty"`
}

// Tracer records per-query traces into a bounded ring buffer and,
// optionally, streams every completed trace to a writer as NDJSON.
type Tracer struct {
	mu    sync.Mutex
	ring  []QueryTrace
	start int   // index of the oldest element
	count int   // elements in the ring
	seq   int64 // next completion sequence number

	cur       *QueryTrace
	spanLimit int
	// pendNS is simulated time accrued (via AddTime) since the last
	// recorded span; boundNS is the query-relative offset the recorded
	// spans tile up to. Together they give spans start/duration without
	// the event emitters knowing about time at all.
	pendNS  int64
	boundNS int64

	enc     *json.Encoder
	sinkErr error
}

// DefaultSpanLimit caps the per-trace span list so a pathological query
// cannot balloon one record.
const DefaultSpanLimit = 256

// NewTracer returns a tracer whose ring holds the last capacity completed
// traces (minimum 1; 4096 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]QueryTrace, 0, capacity), spanLimit: DefaultSpanLimit}
}

// SetSpanLimit overrides the per-trace span cap (n <= 0 disables span
// capture entirely, keeping only the aggregate fields).
func (t *Tracer) SetSpanLimit(n int) {
	t.mu.Lock()
	t.spanLimit = n
	t.mu.Unlock()
}

// StreamTo makes the tracer write every completed trace to w as one JSON
// object per line (NDJSON), in completion order, in addition to the ring.
func (t *Tracer) StreamTo(w io.Writer) {
	t.mu.Lock()
	t.enc = json.NewEncoder(w)
	t.mu.Unlock()
}

// Err returns the first error the NDJSON sink reported, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Begin opens a trace for a query starting at the given simulated time.
// An unfinished previous trace is discarded.
func (t *Tracer) Begin(qid uint64, at time.Duration) {
	t.mu.Lock()
	t.cur = &QueryTrace{QID: qid, StartUS: at.Microseconds()}
	t.pendNS, t.boundNS = 0, 0
	t.mu.Unlock()
}

// AddTime attributes d of simulated time to component c on the current
// trace. Wired to simclock.Clock.OnAdvance, it sees every clock advance
// between Begin and End, which is what makes the per-query attribution sum
// exactly to the elapsed time. No-op when no trace is open.
func (t *Tracer) AddTime(c simclock.Component, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	if t.cur.Attrib == nil {
		t.cur.Attrib = new(Attrib)
	}
	t.cur.Attrib.Add(c, d)
	t.pendNS += int64(d)
}

// Active reports whether a trace is currently open.
func (t *Tracer) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur != nil
}

// addSpan appends a span to the current trace under the span cap. A
// recorded span absorbs the simulated time accrued since the previous
// span; time accrued while spans are being dropped keeps accumulating and
// is swept into the synthetic "truncated" span at End. The caller holds
// t.mu.
func (t *Tracer) addSpan(s Span) {
	if t.cur == nil {
		return
	}
	if t.spanLimit > 0 && len(t.cur.Spans) < t.spanLimit {
		s.StartNS = t.boundNS
		s.DurNS = t.pendNS
		t.boundNS += t.pendNS
		t.pendNS = 0
		t.cur.Spans = append(t.cur.Spans, s)
	} else {
		t.cur.SpansDropped++
	}
}

// ListRead records a per-term list read served by one level.
func (t *Tracer) ListRead(term int64, level string, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	switch level {
	case "mem":
		t.cur.MemBytes += bytes
	case "ssd":
		t.cur.SSDBytes += bytes
	case "hdd":
		t.cur.HDDBytes += bytes
	}
	t.addSpan(Span{Kind: "list", Term: term, Level: level, Bytes: bytes})
}

// ResultProbe records the outcome of the result-cache lookup.
func (t *Tracer) ResultProbe(level string, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.ResultLevel = level
	t.addSpan(Span{Kind: "result", Level: level, Bytes: bytes})
}

// Flush records an SSD cache flush (list extent or result block) that the
// current query triggered.
func (t *Tracer) Flush(kind string, term int64, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.Flushes++
	t.cur.FlushBytes += bytes
	t.addSpan(Span{Kind: kind, Term: term, Bytes: bytes})
}

// Evict records a cache eviction the current query triggered.
func (t *Tracer) Evict(kind string, term int64, level string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.Evictions++
	t.addSpan(Span{Kind: kind, Term: term, Level: level})
}

// QueueWait records serving-layer queue delay on the current trace: time
// the query spent parked behind other work before (or instead of)
// executing. The span absorbs pending attributed time like any other, so
// the caller must have already routed the wait through AddTime (for
// shard-clock advances that route is the OnAdvance hook; synthetic
// coalesced traces call AddTime directly).
func (t *Tracer) QueueWait() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.addSpan(Span{Kind: "queue_wait"})
}

// HDDOp records one backing-store operation attributed to the current query.
func (t *Tracer) HDDOp(seek bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.HDDReads++
	if seek {
		t.cur.HDDSeeks++
	}
}

// SetSituation records the Table I classification of the current query.
func (t *Tracer) SetSituation(sit string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.Situation = sit
}

// End finalizes the current trace with its simulated elapsed time, pushes
// it into the ring (overwriting the oldest entry when full) and streams it
// to the NDJSON sink when one is attached. It returns the completed trace;
// the zero trace is returned when no trace was open.
func (t *Tracer) End(elapsed time.Duration) QueryTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return QueryTrace{}
	}
	tr := *t.cur
	t.cur = nil
	tr.ElapsedUS = elapsed.Microseconds()
	tr.ElapsedNS = elapsed.Nanoseconds()
	if t.spanLimit > 0 && tr.SpansDropped > 0 && tr.ElapsedNS > t.boundNS {
		// The cap truncated the span list; a synthetic span carries the
		// residual so span durations still tile the whole query.
		tr.Spans = append(tr.Spans, Span{
			Kind: "truncated", StartNS: t.boundNS, DurNS: tr.ElapsedNS - t.boundNS,
		})
	}
	tr.Seq = t.seq
	t.seq++

	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.start] = tr
		t.start = (t.start + 1) % cap(t.ring)
	}
	t.count = len(t.ring)

	if t.enc != nil {
		if err := t.enc.Encode(&tr); err != nil && t.sinkErr == nil {
			t.sinkErr = fmt.Errorf("obs: trace sink: %w", err)
		}
	}
	return tr
}

// Completed returns the total number of traces finished since creation
// (not just those still in the ring).
func (t *Tracer) Completed() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Recent returns up to n of the most recent completed traces, oldest
// first. n <= 0 returns everything the ring holds.
func (t *Tracer) Recent(n int) []QueryTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.count {
		n = t.count
	}
	out := make([]QueryTrace, 0, n)
	for i := t.count - n; i < t.count; i++ {
		out = append(out, t.ring[(t.start+i)%len(t.ring)])
	}
	return out
}

// WriteNDJSON dumps the ring's traces (oldest first) to w as NDJSON.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, tr := range t.Recent(0) {
		if err := enc.Encode(&tr); err != nil {
			return err
		}
	}
	return nil
}
