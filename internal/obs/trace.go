// Package obs is the observability layer of the reproduction: per-query
// tracing with storage-level attribution, and a unified metrics registry
// exposing counters, latency histograms and checkpointed time series.
//
// The simulator's serving path stays synchronous and single-threaded; the
// types here are nevertheless mutex-guarded so exports (NDJSON dumps,
// registry expositions) can run concurrently with a driver.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one attributed step inside a query trace: a list read served by
// one storage level, a result-cache probe, a cache flush or an eviction.
type Span struct {
	// Kind is the step type: "list", "result", "flush_list", "flush_result",
	// "evict_list", "evict_result".
	Kind string `json:"kind"`
	// Term is the inverted-list term, for list-related spans.
	Term int64 `json:"term,omitempty"`
	// Level is the storage level that served or held the data
	// ("mem", "ssd", "hdd"); empty where it does not apply.
	Level string `json:"level,omitempty"`
	// Bytes is the payload size of the step.
	Bytes int64 `json:"bytes,omitempty"`
}

// QueryTrace is the record of one query through the hierarchy. All times
// are simulated. Byte fields attribute inverted-list reads per level and,
// summed over all traces of a run, equal the manager's Stats totals.
type QueryTrace struct {
	// Seq numbers completed traces from 0 in completion order.
	Seq int64 `json:"seq"`
	// QID is the query's log ID.
	QID uint64 `json:"qid"`
	// StartUS is the simulated start time in microseconds.
	StartUS int64 `json:"start_us"`
	// ElapsedUS is the simulated response time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Situation is the Table I classification ("S1(R:mem)" ... "S9(I:hdd)"),
	// or empty for uncached executions.
	Situation string `json:"situation,omitempty"`
	// ResultLevel says where the result-cache probe was served ("mem",
	// "ssd") or "miss"; empty when no result cache exists.
	ResultLevel string `json:"result_level,omitempty"`
	// MemBytes, SSDBytes and HDDBytes attribute list bytes per level.
	MemBytes int64 `json:"mem_bytes"`
	SSDBytes int64 `json:"ssd_bytes"`
	HDDBytes int64 `json:"hdd_bytes"`
	// Flushes counts SSD cache flushes (list extents + result blocks)
	// triggered while serving this query; FlushBytes their payload.
	Flushes    int   `json:"flushes,omitempty"`
	FlushBytes int64 `json:"flush_bytes,omitempty"`
	// Evictions counts cache evictions (both levels, both data types)
	// triggered while serving this query.
	Evictions int `json:"evictions,omitempty"`
	// HDDReads and HDDSeeks count backing-store operations and how many of
	// them paid mechanical positioning cost.
	HDDReads int `json:"hdd_reads,omitempty"`
	HDDSeeks int `json:"hdd_seeks,omitempty"`
	// Spans is the ordered step list, capped at the tracer's span limit.
	Spans []Span `json:"spans,omitempty"`
	// SpansDropped counts spans discarded past the cap.
	SpansDropped int `json:"spans_dropped,omitempty"`
}

// Tracer records per-query traces into a bounded ring buffer and,
// optionally, streams every completed trace to a writer as NDJSON.
type Tracer struct {
	mu    sync.Mutex
	ring  []QueryTrace
	start int   // index of the oldest element
	count int   // elements in the ring
	seq   int64 // next completion sequence number

	cur       *QueryTrace
	spanLimit int

	enc     *json.Encoder
	sinkErr error
}

// DefaultSpanLimit caps the per-trace span list so a pathological query
// cannot balloon one record.
const DefaultSpanLimit = 256

// NewTracer returns a tracer whose ring holds the last capacity completed
// traces (minimum 1; 4096 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]QueryTrace, 0, capacity), spanLimit: DefaultSpanLimit}
}

// SetSpanLimit overrides the per-trace span cap (0 disables span capture
// entirely, keeping only the aggregate fields).
func (t *Tracer) SetSpanLimit(n int) {
	t.mu.Lock()
	t.spanLimit = n
	t.mu.Unlock()
}

// StreamTo makes the tracer write every completed trace to w as one JSON
// object per line (NDJSON), in completion order, in addition to the ring.
func (t *Tracer) StreamTo(w io.Writer) {
	t.mu.Lock()
	t.enc = json.NewEncoder(w)
	t.mu.Unlock()
}

// Err returns the first error the NDJSON sink reported, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Begin opens a trace for a query starting at the given simulated time.
// An unfinished previous trace is discarded.
func (t *Tracer) Begin(qid uint64, at time.Duration) {
	t.mu.Lock()
	t.cur = &QueryTrace{QID: qid, StartUS: at.Microseconds()}
	t.mu.Unlock()
}

// Active reports whether a trace is currently open.
func (t *Tracer) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur != nil
}

// addSpan appends a span to the current trace under the span cap.
// The caller holds t.mu.
func (t *Tracer) addSpan(s Span) {
	if t.cur == nil {
		return
	}
	if t.spanLimit > 0 && len(t.cur.Spans) < t.spanLimit {
		t.cur.Spans = append(t.cur.Spans, s)
	} else {
		t.cur.SpansDropped++
	}
}

// ListRead records a per-term list read served by one level.
func (t *Tracer) ListRead(term int64, level string, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	switch level {
	case "mem":
		t.cur.MemBytes += bytes
	case "ssd":
		t.cur.SSDBytes += bytes
	case "hdd":
		t.cur.HDDBytes += bytes
	}
	t.addSpan(Span{Kind: "list", Term: term, Level: level, Bytes: bytes})
}

// ResultProbe records the outcome of the result-cache lookup.
func (t *Tracer) ResultProbe(level string, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.ResultLevel = level
	t.addSpan(Span{Kind: "result", Level: level, Bytes: bytes})
}

// Flush records an SSD cache flush (list extent or result block) that the
// current query triggered.
func (t *Tracer) Flush(kind string, term int64, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.Flushes++
	t.cur.FlushBytes += bytes
	t.addSpan(Span{Kind: kind, Term: term, Bytes: bytes})
}

// Evict records a cache eviction the current query triggered.
func (t *Tracer) Evict(kind string, term int64, level string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.Evictions++
	t.addSpan(Span{Kind: kind, Term: term, Level: level})
}

// HDDOp records one backing-store operation attributed to the current query.
func (t *Tracer) HDDOp(seek bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.HDDReads++
	if seek {
		t.cur.HDDSeeks++
	}
}

// SetSituation records the Table I classification of the current query.
func (t *Tracer) SetSituation(sit string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return
	}
	t.cur.Situation = sit
}

// End finalizes the current trace with its simulated elapsed time, pushes
// it into the ring (overwriting the oldest entry when full) and streams it
// to the NDJSON sink when one is attached. It returns the completed trace;
// the zero trace is returned when no trace was open.
func (t *Tracer) End(elapsed time.Duration) QueryTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return QueryTrace{}
	}
	tr := *t.cur
	t.cur = nil
	tr.ElapsedUS = elapsed.Microseconds()
	tr.Seq = t.seq
	t.seq++

	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.start] = tr
		t.start = (t.start + 1) % cap(t.ring)
	}
	t.count = len(t.ring)

	if t.enc != nil {
		if err := t.enc.Encode(&tr); err != nil && t.sinkErr == nil {
			t.sinkErr = fmt.Errorf("obs: trace sink: %w", err)
		}
	}
	return tr
}

// Completed returns the total number of traces finished since creation
// (not just those still in the ring).
func (t *Tracer) Completed() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Recent returns up to n of the most recent completed traces, oldest
// first. n <= 0 returns everything the ring holds.
func (t *Tracer) Recent(n int) []QueryTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.count {
		n = t.count
	}
	out := make([]QueryTrace, 0, n)
	for i := t.count - n; i < t.count; i++ {
		out = append(out, t.ring[(t.start+i)%len(t.ring)])
	}
	return out
}

// WriteNDJSON dumps the ring's traces (oldest first) to w as NDJSON.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, tr := range t.Recent(0) {
		if err := enc.Encode(&tr); err != nil {
			return err
		}
	}
	return nil
}
