package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads_total")
	c.Inc()
	c.Add(4)
	if r.Counter("reads_total") != c {
		t.Fatal("Counter must return the same instance per name")
	}
	if c.Value() != 5 {
		t.Fatalf("counter=%d want 5", c.Value())
	}

	v := 0.25
	r.Gauge("ratio", func() float64 { return v })
	got, ok := r.GaugeValue("ratio")
	if !ok || got != 0.25 {
		t.Fatalf("GaugeValue=%v,%v want 0.25,true", got, ok)
	}
	if _, ok := r.GaugeValue("missing"); ok {
		t.Fatal("missing gauge reported ok")
	}
}

func TestRegistryCheckpoint(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.Gauge("hit_ratio", func() float64 { return v })
	r.Checkpoint(1 * time.Second)
	v = 2.0
	r.Checkpoint(2 * time.Second)

	snap := r.Snapshot()
	pts := snap.Series["hit_ratio"]
	if len(pts) != 2 {
		t.Fatalf("series has %d points, want 2", len(pts))
	}
	if pts[0].Value != 1.0 || pts[1].Value != 2.0 {
		t.Fatalf("series values %v,%v want 1,2", pts[0].Value, pts[1].Value)
	}
	if pts[0].AtUS != 1_000_000 || pts[1].AtUS != 2_000_000 {
		t.Fatalf("series times %v,%v", pts[0].AtUS, pts[1].AtUS)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Add(3)
	r.Gauge("rc_hit_ratio", func() float64 { return 0.5 })
	h := r.Histogram("latency_us", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500) // overflow

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE queries_total counter",
		"queries_total 3",
		"# TYPE rc_hit_ratio gauge",
		"rc_hit_ratio 0.5",
		"# TYPE latency_us histogram",
		`latency_us_bucket{le="10"} 1`,
		`latency_us_bucket{le="100"} 2`,
		`latency_us_bucket{le="+Inf"} 3`,
		"latency_us_sum 555",
		"latency_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"plain_name": "plain_name",
		"has-dash":   "has_dash",
		"dots.too":   "dots_too",
		"9leading":   "_9leading",
		"mixed:ok_9": "mixed:ok_9",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Fatalf("sanitize(%q)=%q want %q", in, got, want)
		}
	}
}

func TestObserverSampleEveryCheckpoints(t *testing.T) {
	o := New(Options{SampleEvery: 2})
	v := 0.0
	o.Registry.Gauge("g", func() float64 { return v })
	for i := 1; i <= 6; i++ {
		v = float64(i)
		o.BeginQuery(uint64(i), 0)
		o.EndQuery(time.Duration(i)*time.Second, time.Millisecond)
	}
	snap := o.Registry.Snapshot()
	pts := snap.Series["g"]
	if len(pts) != 3 {
		t.Fatalf("checkpointed %d times, want 3", len(pts))
	}
	if pts[0].Value != 2 || pts[1].Value != 4 || pts[2].Value != 6 {
		t.Fatalf("checkpoint values %v", pts)
	}
	if o.Queries() != 6 {
		t.Fatalf("Queries=%d want 6", o.Queries())
	}
	lat := o.OverallLatency()
	if lat.Count != 6 {
		t.Fatalf("latency count=%d want 6", lat.Count)
	}
}

// TestObserverFork: forks share the tracer (one stream, one completed
// count) but own private registries, so two systems with independently
// restarting virtual clocks can checkpoint without tripping the
// time-series monotonicity guard.
func TestObserverFork(t *testing.T) {
	parent := New(Options{SampleEvery: 1})
	for run := 0; run < 2; run++ {
		f := parent.Fork()
		if f.Tracer != parent.Tracer {
			t.Fatal("fork does not share the parent tracer")
		}
		if f.Registry == parent.Registry {
			t.Fatal("fork shares the parent registry")
		}
		v := 0.0
		f.Registry.Gauge("g", func() float64 { return v })
		// Each run's clock restarts near zero; the second run's sample
		// times are below the first's, which a shared registry rejects.
		for i := 1; i <= 3-run; i++ {
			v = float64(i)
			f.BeginQuery(uint64(i), 0)
			f.EndQuery(time.Duration(i)*time.Second, time.Millisecond)
		}
	}
	if got := parent.Tracer.Completed(); got != 5 {
		t.Fatalf("shared tracer completed %d traces, want 5", got)
	}
}
