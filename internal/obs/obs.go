package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

// Well-known gauge names the system wiring registers and the live-progress
// reporters sample. Checkpoints turn each into a same-named time series.
const (
	GaugeRCHitRatio  = "rc_hit_ratio"
	GaugeICHitRatio  = "ic_hit_ratio"
	GaugeRICHitRatio = "ric_hit_ratio"
	GaugeSSDErases   = "cache_ssd_erases"
	GaugeSSDWriteAmp = "cache_ssd_write_amp"
	// GaugeDegradedMode is 1 while the cache manager's SSD circuit breaker
	// is open (reads routed around the L2 tier), 0 otherwise.
	GaugeDegradedMode = "cache_degraded_mode"
	// GaugeQuarantinedBytes tracks SSD cache capacity retired after device
	// errors.
	GaugeQuarantinedBytes = "cache_quarantined_bytes"
)

// numSituations mirrors core's Table I situation count; slot numSituations
// holds uncached executions (no manager, hence no classification).
const numSituations = 9

// LatencyBounds returns the log-spaced microsecond bucket bounds used for
// every query-latency histogram: 16 µs up to ~33 s, doubling.
func LatencyBounds() []int64 { return metrics.ExpBounds(16, 2, 22) }

// Options configures an Observer.
type Options struct {
	// TraceRing is the trace ring-buffer capacity (0 = 4096).
	TraceRing int
	// TraceOut, when non-nil, receives every completed trace as NDJSON.
	TraceOut io.Writer
	// SpanLimit caps per-trace span lists (0 = DefaultSpanLimit; negative
	// disables span capture, keeping only aggregate fields and attribution).
	SpanLimit int
	// SampleEvery checkpoints every gauge into its time series after this
	// many queries (0 = 1000).
	SampleEvery int
}

// Observer is the per-run observability hub: it owns the Tracer and the
// Registry, consumes the cache manager's event stream and the devices' op
// hooks, and maintains per-situation latency histograms.
type Observer struct {
	Tracer   *Tracer
	Registry *Registry

	latAll  *metrics.Histogram
	latSit  [numSituations + 1]*metrics.Histogram
	profile *Profile

	mu          sync.Mutex
	queries     int64
	sampleEvery int64
	curSit      core.Situation
	curSitSeen  bool
	intQueries  int64
	intTime     time.Duration
}

// New builds an Observer with a fresh Tracer and Registry.
func New(opts Options) *Observer {
	o := &Observer{
		Tracer:      NewTracer(opts.TraceRing),
		Registry:    NewRegistry(),
		profile:     NewProfile(),
		sampleEvery: int64(opts.SampleEvery),
	}
	if o.sampleEvery <= 0 {
		o.sampleEvery = 1000
	}
	if opts.SpanLimit != 0 {
		o.Tracer.SetSpanLimit(opts.SpanLimit)
	}
	if opts.TraceOut != nil {
		o.Tracer.StreamTo(opts.TraceOut)
	}
	o.initHistograms()
	return o
}

// Fork returns an Observer that shares o's Tracer — and therefore its
// ring buffer, NDJSON stream and completed-trace count — but owns a fresh
// Registry. Drivers that measure a sequence of systems need this: each
// system's virtual clock restarts at zero, so gauges and time series must
// be private per system (a shared Registry would interleave samples from
// unrelated clocks, which TimeSeries.Record rejects), while all traces
// still land in one stream.
func (o *Observer) Fork() *Observer {
	f := &Observer{
		Tracer:      o.Tracer,
		Registry:    NewRegistry(),
		profile:     NewProfile(),
		sampleEvery: o.sampleEvery,
	}
	f.initHistograms()
	return f
}

// initHistograms registers the query-latency histograms on o.Registry.
func (o *Observer) initHistograms() {
	bounds := LatencyBounds()
	o.latAll = o.Registry.Histogram("query_latency_us", bounds)
	for i := 0; i < numSituations; i++ {
		o.latSit[i] = o.Registry.Histogram(fmt.Sprintf("query_latency_s%d_us", i+1), bounds)
	}
	o.latSit[numSituations] = o.Registry.Histogram("query_latency_uncached_us", bounds)
}

// BeginQuery opens tracing for one query at simulated time now.
func (o *Observer) BeginQuery(qid uint64, now time.Duration) {
	o.mu.Lock()
	o.curSitSeen = false
	o.mu.Unlock()
	o.Tracer.Begin(qid, now)
}

// HandleEvent consumes one cache-manager event (wired to
// core.Manager.SetEventSink).
func (o *Observer) HandleEvent(e core.Event) {
	switch e.Kind {
	case core.EvListRead:
		level := e.Level.String()
		o.Tracer.ListRead(int64(e.Term), level, e.Bytes)
		o.Registry.Counter("list_bytes_" + level + "_total").Add(e.Bytes)
	case core.EvResultHit:
		level := e.Level.String()
		o.Tracer.ResultProbe(level, e.Bytes)
		o.Registry.Counter("result_hits_" + level + "_total").Inc()
	case core.EvResultMiss:
		o.Tracer.ResultProbe("miss", 0)
		o.Registry.Counter("result_misses_total").Inc()
	case core.EvListFlush:
		o.Tracer.Flush("flush_list", int64(e.Term), e.Bytes)
		o.Registry.Counter("ssd_list_flushes_total").Inc()
		o.Registry.Counter("ssd_flush_bytes_total").Add(e.Bytes)
	case core.EvResultFlush:
		o.Tracer.Flush("flush_result", 0, e.Bytes)
		o.Registry.Counter("ssd_result_flushes_total").Inc()
		o.Registry.Counter("ssd_flush_bytes_total").Add(e.Bytes)
	case core.EvListEvict:
		level := e.Level.String()
		o.Tracer.Evict("evict_list", int64(e.Term), level)
		o.Registry.Counter("list_evictions_" + level + "_total").Inc()
	case core.EvResultEvict:
		level := e.Level.String()
		o.Tracer.Evict("evict_result", 0, level)
		o.Registry.Counter("result_evictions_" + level + "_total").Inc()
	case core.EvQueryEnd:
		o.mu.Lock()
		o.curSit = e.Sit
		o.curSitSeen = true
		o.mu.Unlock()
		o.Tracer.SetSituation(e.Sit.String())
	case core.EvIOError:
		o.Registry.Counter("ssd_io_errors_total").Inc()
		o.Registry.Counter("ssd_io_error_bytes_total").Add(e.Bytes)
	case core.EvDegraded:
		o.Registry.Counter("degraded_serves_total").Inc()
	}
}

// HandleClockAdvance consumes one labeled clock advance (wired to
// simclock.Clock.OnAdvance), attributing the time to the in-flight query.
// Seeing every advance at the clock itself is what makes per-query
// attribution sum exactly to elapsed time.
func (o *Observer) HandleClockAdvance(c simclock.Component, d time.Duration) {
	o.Tracer.AddTime(c, d)
}

// Profile returns the cumulative per-situation latency-attribution profile
// folded from completed traces.
func (o *Observer) Profile() *Profile { return o.profile }

// HandleBackingOp consumes one backing-store (index device) operation,
// attributing seeks to the in-flight query.
func (o *Observer) HandleBackingOp(op storage.Op) {
	if op.Kind == storage.OpRead {
		o.Tracer.HDDOp(op.Seek)
	}
	o.Registry.Counter("backing_ops_total").Inc()
	if op.Seek {
		o.Registry.Counter("backing_seeks_total").Inc()
	}
}

// HandleCacheOp consumes one cache-SSD operation.
func (o *Observer) HandleCacheOp(op storage.Op) {
	switch op.Kind {
	case storage.OpRead:
		o.Registry.Counter("cache_ssd_reads_total").Inc()
	case storage.OpWrite:
		o.Registry.Counter("cache_ssd_writes_total").Inc()
	case storage.OpTrim:
		o.Registry.Counter("cache_ssd_trims_total").Inc()
	}
}

// EndQuery finalizes the in-flight query: the trace is completed, the
// latency lands in the overall and per-situation histograms, and every
// SampleEvery queries the gauges are checkpointed at simulated time now.
func (o *Observer) EndQuery(now, elapsed time.Duration) QueryTrace {
	tr := o.Tracer.End(elapsed)
	if tr.Attrib != nil {
		sit := tr.Situation
		if sit == "" {
			sit = "uncached"
		}
		o.profile.Add(sit, tr.ElapsedNS, *tr.Attrib)
	}

	o.mu.Lock()
	slot := numSituations
	if o.curSitSeen && int(o.curSit) < numSituations {
		slot = int(o.curSit)
	}
	o.queries++
	o.intQueries++
	o.intTime += elapsed
	checkpoint := o.queries%o.sampleEvery == 0
	o.mu.Unlock()

	us := elapsed.Microseconds()
	o.latAll.Observe(us)
	o.latSit[slot].Observe(us)
	o.Registry.Counter("queries_total").Inc()

	if checkpoint {
		o.Registry.Checkpoint(now)
	}
	return tr
}

// CoalescedQuery synthesizes the complete trace of a singleflight
// follower: a query that arrived while an identical query was in flight
// and was served by the leader's result without executing. Its entire
// latency (leader completion minus follower arrival) is queue_wait, so the
// attribution contract Attrib.Sum() == ElapsedNS holds by construction.
// The trace opens and closes in one synchronous step because the Tracer
// holds at most one open trace and the shard's real queries own it between
// their own Begin/End. now is the checkpoint timestamp and must be
// monotone per Observer — serving callers pass the shard clock's Now, not
// the arrival-timeline completion instant.
func (o *Observer) CoalescedQuery(qid uint64, start, wait, now time.Duration) QueryTrace {
	o.BeginQuery(qid, start)
	o.Tracer.AddTime(simclock.CompQueueWait, wait)
	o.Tracer.QueueWait()
	o.Tracer.SetSituation("coalesced")
	return o.EndQuery(now, wait)
}

// Queries returns the number of completed queries observed.
func (o *Observer) Queries() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.queries
}

// OverallLatency summarizes the all-queries latency histogram (µs).
func (o *Observer) OverallLatency() HistogramSnapshot {
	return histSnapshot(o.latAll)
}

// SituationLatency summarizes the latency histogram of one Table I
// situation (µs).
func (o *Observer) SituationLatency(sit core.Situation) HistogramSnapshot {
	if int(sit) < 0 || int(sit) >= numSituations {
		return histSnapshot(o.latSit[numSituations])
	}
	return histSnapshot(o.latSit[sit])
}

// UncachedLatency summarizes queries that ran without a cache manager.
func (o *Observer) UncachedLatency() HistogramSnapshot {
	return histSnapshot(o.latSit[numSituations])
}

func histSnapshot(h *metrics.Histogram) HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Total(),
		Mean:  h.Mean(),
		P50:   h.Quantile(50),
		P95:   h.Quantile(95),
		P99:   h.Quantile(99),
		P999:  h.Quantile(99.9),
	}
}

// Progress is a live snapshot for periodic reporting. Interval fields
// cover the span since the previous Progress call; ratios and quantiles
// are cumulative.
type Progress struct {
	Queries          int64
	IntervalQueries  int64
	IntervalMeanTime time.Duration
	P50, P95, P99    time.Duration
	RC, IC, RIC      float64
	SSDErases        float64
	SSDWriteAmp      float64
}

// Progress samples the registry and drains the interval accumulators.
func (o *Observer) Progress() Progress {
	o.mu.Lock()
	p := Progress{Queries: o.queries, IntervalQueries: o.intQueries}
	if o.intQueries > 0 {
		p.IntervalMeanTime = o.intTime / time.Duration(o.intQueries)
	}
	o.intQueries, o.intTime = 0, 0
	o.mu.Unlock()

	p.P50 = time.Duration(o.latAll.Quantile(50)) * time.Microsecond
	p.P95 = time.Duration(o.latAll.Quantile(95)) * time.Microsecond
	p.P99 = time.Duration(o.latAll.Quantile(99)) * time.Microsecond
	p.RC, _ = o.Registry.GaugeValue(GaugeRCHitRatio)
	p.IC, _ = o.Registry.GaugeValue(GaugeICHitRatio)
	p.RIC, _ = o.Registry.GaugeValue(GaugeRICHitRatio)
	p.SSDErases, _ = o.Registry.GaugeValue(GaugeSSDErases)
	p.SSDWriteAmp, _ = o.Registry.GaugeValue(GaugeSSDWriteAmp)
	return p
}

// String renders a compact single progress line.
func (p Progress) String() string {
	return fmt.Sprintf(
		"q=%d mean=%v p50=%v p95=%v p99=%v RC=%.3f IC=%.3f RIC=%.3f erases=%.0f WA=%.3f",
		p.Queries, p.IntervalMeanTime.Round(time.Microsecond),
		p.P50, p.P95, p.P99, p.RC, p.IC, p.RIC, p.SSDErases, p.SSDWriteAmp)
}
