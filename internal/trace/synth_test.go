package trace

import (
	"testing"

	"hybridstore/internal/storage"
)

func TestSyntheticWebSearchShape(t *testing.T) {
	p := DefaultWebSearchParams()
	p.Reads = 2000
	ops := SyntheticWebSearch(p)
	if len(ops) != 2000 {
		t.Fatalf("got %d ops", len(ops))
	}
	for _, op := range ops {
		if op.Kind != storage.OpRead {
			t.Fatal("synthetic web search emitted a non-read")
		}
		if op.Offset < 0 || op.Offset/SectorSize >= p.SpanSectors {
			t.Fatalf("offset %d outside span", op.Offset)
		}
	}
}

func TestSyntheticWebSearchCharacteristics(t *testing.T) {
	ops := SyntheticWebSearch(DefaultWebSearchParams())
	ch := Analyze(ops)
	if ch.ReadFraction != 1.0 {
		t.Fatalf("read fraction %v, want 1 (read-dominant)", ch.ReadFraction)
	}
	if ch.Top10PctShare < 0.2 {
		t.Fatalf("Top10PctShare %v: no locality in the synthetic trace", ch.Top10PctShare)
	}
	if ch.SequentialFraction > 0.2 {
		t.Fatalf("SequentialFraction %v: trace not random enough", ch.SequentialFraction)
	}
}

func TestSyntheticWebSearchDeterministic(t *testing.T) {
	a := SyntheticWebSearch(DefaultWebSearchParams())
	b := SyntheticWebSearch(DefaultWebSearchParams())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Offset != b[i].Offset {
			t.Fatalf("op %d differs", i)
		}
	}
	p := DefaultWebSearchParams()
	p.Seed++
	c := SyntheticWebSearch(p)
	same := 0
	for i := range a {
		if a[i].Offset == c[i].Offset {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSyntheticWebSearchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params did not panic")
		}
	}()
	SyntheticWebSearch(SyntheticWebSearchParams{})
}
