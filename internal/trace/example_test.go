package trace_test

import (
	"fmt"
	"strings"

	"hybridstore/internal/storage"
	"hybridstore/internal/trace"
)

// ExampleAnalyze characterizes a toy trace along the §III dimensions.
func ExampleAnalyze() {
	ops := []storage.Op{
		{Kind: storage.OpRead, Offset: 0, Len: 512},
		{Kind: storage.OpRead, Offset: 512, Len: 512}, // sequential
		{Kind: storage.OpRead, Offset: 1 << 20, Len: 512},
		{Kind: storage.OpWrite, Offset: 0, Len: 512},
	}
	ch := trace.Analyze(ops)
	fmt.Printf("reads %.0f%%, sequential %.2f\n", 100*ch.ReadFraction, ch.SequentialFraction)
	// Output:
	// reads 75%, sequential 0.33
}

// ExampleParseSPC reads a UMass-style SPC trace snippet.
func ExampleParseSPC() {
	in := "0,303567,8192,R,0.011413\n0,1055948,8192,R,0.012\n"
	recs, err := trace.ParseSPC(strings.NewReader(in), 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d reads, first LBA %d\n", len(recs), recs[0].LBA)
	// Output:
	// 2 reads, first LBA 303567
}
