// Package trace captures and characterizes I/O traces, playing the role
// DiskMon and the UMass trace repository play in the paper (§III, Fig 1).
//
// A Recorder subscribes to device operation hooks and stores the op stream;
// the analyzers then quantify the four access-pattern characteristics the
// paper identifies for search engines: read dominance, locality, random
// reads and skipped reads.
package trace

import (
	"sort"
	"sync"

	"hybridstore/internal/storage"
)

// SectorSize converts byte offsets to the logical sector numbers plotted on
// Fig 1's y-axis.
const SectorSize = 512

// Recorder accumulates device operations. It is safe for concurrent use.
type Recorder struct {
	mu  sync.Mutex
	ops []storage.Op
	cap int // 0 = unbounded
}

// NewRecorder returns a recorder that keeps at most capHint operations
// (0 keeps everything).
func NewRecorder(capHint int) *Recorder {
	return &Recorder{cap: capHint}
}

// Record appends one op; this is the function to install as a device hook.
func (r *Recorder) Record(op storage.Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap > 0 && len(r.ops) >= r.cap {
		return
	}
	r.ops = append(r.ops, op)
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Ops returns a copy of the recorded operations in arrival order.
func (r *Recorder) Ops() []storage.Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]storage.Op, len(r.ops))
	copy(cp, r.ops)
	return cp
}

// Reset discards all recorded operations.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.ops = r.ops[:0]
	r.mu.Unlock()
}

// Point is one sample of Fig 1: the i-th read in the trace touched logical
// sector LSN.
type Point struct {
	Seq int64
	LSN int64
}

// ReadSequence extracts the Fig 1 scatter series: logical sector number per
// read, in read order. Non-read operations are skipped.
func ReadSequence(ops []storage.Op) []Point {
	pts := make([]Point, 0, len(ops))
	var seq int64
	for _, op := range ops {
		if op.Kind != storage.OpRead {
			continue
		}
		pts = append(pts, Point{Seq: seq, LSN: op.Offset / SectorSize})
		seq++
	}
	return pts
}

// Characteristics summarizes a trace along the four dimensions of §III.
type Characteristics struct {
	// Ops is the total operation count, Reads the read count.
	Ops   int64
	Reads int64
	// ReadFraction is Reads/Ops (paper: >99% for web search).
	ReadFraction float64
	// UniqueSectors is the footprint: distinct 512 B sectors touched.
	UniqueSectors int64
	// Top10PctShare is the fraction of accesses landing on the hottest 10%
	// of touched sectors (locality; 0.1 means uniform, →1 means skewed).
	Top10PctShare float64
	// SequentialFraction is the share of ops whose offset continues the
	// previous op's end (random reads = 1 − this, roughly).
	SequentialFraction float64
	// ForwardSkipFraction is the share of reads that jump forward past the
	// previous read's end by at most SkipWindow bytes — the "skipped read"
	// pattern of skip-list index traversal.
	ForwardSkipFraction float64
	// BackwardFraction is the share of ops seeking to a lower offset.
	BackwardFraction float64
}

// SkipWindow bounds how far a forward jump may reach and still count as a
// "skipped read" rather than a random read (1 MiB ≈ one inverted list).
const SkipWindow = 1 << 20

// Analyze computes trace characteristics over ops.
func Analyze(ops []storage.Op) Characteristics {
	var c Characteristics
	sectorHits := make(map[int64]int64)
	var prevEnd int64 = -1
	for _, op := range ops {
		c.Ops++
		if op.Kind == storage.OpRead {
			c.Reads++
		}
		first := op.Offset / SectorSize
		last := (op.Offset + int64(op.Len) - 1) / SectorSize
		if op.Len == 0 {
			last = first
		}
		for s := first; s <= last; s++ {
			sectorHits[s]++
		}
		if prevEnd >= 0 {
			switch {
			case op.Offset == prevEnd:
				c.SequentialFraction++
			case op.Offset < prevEnd:
				c.BackwardFraction++
			case op.Offset > prevEnd && op.Offset-prevEnd <= SkipWindow:
				if op.Kind == storage.OpRead {
					c.ForwardSkipFraction++
				}
			}
		}
		prevEnd = op.Offset + int64(op.Len)
	}
	if c.Ops > 0 {
		c.ReadFraction = float64(c.Reads) / float64(c.Ops)
		denom := float64(c.Ops - 1)
		if denom > 0 {
			c.SequentialFraction /= denom
			c.BackwardFraction /= denom
			c.ForwardSkipFraction /= denom
		}
	}
	c.UniqueSectors = int64(len(sectorHits))
	c.Top10PctShare = topShare(sectorHits, 0.10)
	return c
}

// topShare returns the fraction of total hits captured by the hottest
// `frac` of keys.
func topShare(hits map[int64]int64, frac float64) float64 {
	if len(hits) == 0 {
		return 0
	}
	counts := make([]int64, 0, len(hits))
	var total int64
	for _, n := range hits {
		counts = append(counts, n)
		total += n
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	k := int(float64(len(counts)) * frac)
	if k < 1 {
		k = 1
	}
	var top int64
	for _, n := range counts[:k] {
		top += n
	}
	return float64(top) / float64(total)
}
