package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hybridstore/internal/storage"
)

const sampleSPC = `# UMass WebSearch-like sample
0,303567,8192,R,0.011413
0,1055948,8192,R,0.011413
1,33connector,8192,R,0.0
`

func TestParseSPCBasic(t *testing.T) {
	in := "0,100,8192,R,0.5\n1,200,4096,w,1.25\n\n# comment\n0,300,512,r,2.0\n"
	recs, err := ParseSPC(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records", len(recs))
	}
	if recs[0].ASU != 0 || recs[0].LBA != 100 || recs[0].Size != 8192 || recs[0].Write {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if !recs[1].Write || recs[1].Timestamp != 1250*time.Millisecond {
		t.Fatalf("rec1 = %+v", recs[1])
	}
}

func TestParseSPCLimit(t *testing.T) {
	in := "0,1,512,r,0\n0,2,512,r,0\n0,3,512,r,0\n"
	recs, err := ParseSPC(strings.NewReader(in), 2)
	if err != nil || len(recs) != 2 {
		t.Fatalf("limit: %d records, %v", len(recs), err)
	}
}

func TestParseSPCErrors(t *testing.T) {
	cases := []string{
		"0,100,8192,R",          // too few fields
		"x,100,8192,R,0",        // bad ASU
		"0,-5,8192,R,0",         // negative LBA
		"0,100,abc,R,0",         // bad size
		"0,100,8192,Q,0",        // bad opcode
		"0,100,8192,R,-1",       // negative timestamp
		"0,100,8192,R,nonsense", // bad timestamp
	}
	for _, in := range cases {
		if _, err := ParseSPC(strings.NewReader(in), 0); err == nil {
			t.Errorf("line %q accepted", in)
		}
	}
}

func TestSPCRecordOp(t *testing.T) {
	r := SPCRecord{ASU: 2, LBA: 10, Size: 4096, Write: true}
	op := r.Op()
	if op.Kind != storage.OpWrite || op.Offset != 10*SectorSize || op.Len != 4096 {
		t.Fatalf("op = %+v", op)
	}
	if op.Device != "asu2" {
		t.Fatalf("device = %q", op.Device)
	}
}

func TestSPCRoundTrip(t *testing.T) {
	ops := []storage.Op{
		{Kind: storage.OpRead, Offset: 512 * 100, Len: 8192, Latency: time.Millisecond},
		{Kind: storage.OpWrite, Offset: 512 * 7, Len: 512, Latency: 2 * time.Millisecond},
		{Kind: storage.OpTrim, Offset: 0, Len: 512}, // dropped on write
		{Kind: storage.OpRead, Offset: 512 * 9000, Len: 4096},
	}
	var buf bytes.Buffer
	if err := WriteSPC(&buf, ops); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseSPC(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("round trip kept %d records, want 3", len(recs))
	}
	if recs[0].LBA != 100 || recs[0].Size != 8192 || recs[0].Write {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if !recs[1].Write {
		t.Fatal("write opcode lost")
	}
	// Timestamps accumulate the preceding latencies.
	if recs[1].Timestamp != time.Millisecond || recs[2].Timestamp != 3*time.Millisecond {
		t.Fatalf("timestamps: %v, %v", recs[1].Timestamp, recs[2].Timestamp)
	}
	// Converted ops analyze like the originals.
	ch := Analyze(SPCOps(recs))
	if ch.Ops != 3 || ch.Reads != 2 {
		t.Fatalf("analysis: %+v", ch)
	}
}

func TestParseSPCRejectsGarbageField(t *testing.T) {
	if _, err := ParseSPC(strings.NewReader(sampleSPC), 0); err == nil {
		t.Fatal("garbage LBA line accepted")
	}
}

func TestSyntheticTraceSPCExport(t *testing.T) {
	// The synthetic web-search generator's output survives an SPC round
	// trip with identical offsets.
	p := DefaultWebSearchParams()
	p.Reads = 200
	ops := SyntheticWebSearch(p)
	var buf bytes.Buffer
	if err := WriteSPC(&buf, ops); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseSPC(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ops) {
		t.Fatalf("%d records, want %d", len(recs), len(ops))
	}
	for i := range recs {
		if recs[i].LBA*SectorSize != ops[i].Offset {
			t.Fatalf("offset mismatch at %d", i)
		}
	}
}
