package trace

import (
	"strings"
	"testing"
)

// FuzzParseSPC checks the SPC parser never panics and that whatever it
// accepts converts to well-formed ops.
func FuzzParseSPC(f *testing.F) {
	f.Add("0,100,8192,R,0.5\n1,200,4096,w,1.25\n")
	f.Add("# comment only\n")
	f.Add("0,100,8192,R")
	f.Add("0,-1,8192,R,0")
	f.Add(",,,,,")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ParseSPC(strings.NewReader(input), 1000)
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.LBA < 0 || r.Size < 0 || r.Timestamp < 0 {
				t.Fatalf("parser accepted negative fields: %+v", r)
			}
			op := r.Op()
			if op.Offset != r.LBA*SectorSize || op.Len != r.Size {
				t.Fatalf("Op conversion inconsistent: %+v -> %+v", r, op)
			}
		}
	})
}
