package trace

// SPC-1 trace format support. The UMass Trace Repository's WebSearch
// traces — the paper's Fig 1(a) source — are distributed in SPC format:
//
//	ASU,LBA,size,opcode,timestamp[,extra...]
//
// one request per line, with LBA in 512-byte sectors, size in bytes,
// opcode r/R for reads and w/W for writes, and the timestamp in seconds.
// ParseSPC lets the analyzers and the replayer run on the real traces the
// paper used; WriteSPC exports simulated traces for external tooling.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"hybridstore/internal/storage"
)

// SPCRecord is one parsed SPC trace line.
type SPCRecord struct {
	// ASU is the application-specific unit (logical volume) number.
	ASU int
	// LBA is the logical block address in 512-byte sectors.
	LBA int64
	// Size is the request size in bytes.
	Size int
	// Write is true for w/W opcodes.
	Write bool
	// Timestamp is the request's offset from the trace start.
	Timestamp time.Duration
}

// Op converts the record to a device operation.
func (r SPCRecord) Op() storage.Op {
	kind := storage.OpRead
	if r.Write {
		kind = storage.OpWrite
	}
	return storage.Op{
		Device: fmt.Sprintf("asu%d", r.ASU),
		Kind:   kind,
		Offset: r.LBA * SectorSize,
		Len:    r.Size,
	}
}

// ParseSPC reads an SPC-format trace. Blank lines and lines starting with
// '#' are skipped. Parsing stops at EOF or limit records (0 = unlimited).
func ParseSPC(r io.Reader, limit int) ([]SPCRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	var out []SPCRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseSPCLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: SPC line %d: %w", lineNo, err)
		}
		out = append(out, rec)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading SPC input: %w", err)
	}
	return out, nil
}

func parseSPCLine(line string) (SPCRecord, error) {
	fields := strings.Split(line, ",")
	if len(fields) < 5 {
		return SPCRecord{}, fmt.Errorf("want >=5 comma fields, got %d", len(fields))
	}
	asu, err := strconv.Atoi(strings.TrimSpace(fields[0]))
	if err != nil {
		return SPCRecord{}, fmt.Errorf("ASU %q: %v", fields[0], err)
	}
	lba, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
	if err != nil || lba < 0 {
		return SPCRecord{}, fmt.Errorf("LBA %q invalid", fields[1])
	}
	size, err := strconv.Atoi(strings.TrimSpace(fields[2]))
	if err != nil || size < 0 {
		return SPCRecord{}, fmt.Errorf("size %q invalid", fields[2])
	}
	op := strings.TrimSpace(fields[3])
	var write bool
	switch op {
	case "r", "R":
		write = false
	case "w", "W":
		write = true
	default:
		return SPCRecord{}, fmt.Errorf("opcode %q not r/R/w/W", op)
	}
	ts, err := strconv.ParseFloat(strings.TrimSpace(fields[4]), 64)
	if err != nil || ts < 0 {
		return SPCRecord{}, fmt.Errorf("timestamp %q invalid", fields[4])
	}
	return SPCRecord{
		ASU:       asu,
		LBA:       lba,
		Size:      size,
		Write:     write,
		Timestamp: time.Duration(ts * float64(time.Second)),
	}, nil
}

// WriteSPC serializes ops in SPC format, one per line, synthesizing
// timestamps from the ops' cumulative latencies (0 when absent).
func WriteSPC(w io.Writer, ops []storage.Op) error {
	bw := bufio.NewWriter(w)
	var elapsed time.Duration
	for _, op := range ops {
		code := "r"
		if op.Kind == storage.OpWrite {
			code = "w"
		} else if op.Kind != storage.OpRead {
			continue // trims/erases have no SPC representation
		}
		if _, err := fmt.Fprintf(bw, "0,%d,%d,%s,%.6f\n",
			op.Offset/SectorSize, op.Len, code, elapsed.Seconds()); err != nil {
			return err
		}
		elapsed += op.Latency
	}
	return bw.Flush()
}

// SPCOps converts parsed records to device operations in trace order.
func SPCOps(records []SPCRecord) []storage.Op {
	out := make([]storage.Op, len(records))
	for i, r := range records {
		out[i] = r.Op()
	}
	return out
}
