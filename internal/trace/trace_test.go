package trace

import (
	"sync"
	"testing"

	"hybridstore/internal/storage"
)

func read(off int64, n int) storage.Op {
	return storage.Op{Kind: storage.OpRead, Offset: off, Len: n}
}

func write(off int64, n int) storage.Op {
	return storage.Op{Kind: storage.OpWrite, Offset: off, Len: n}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	r.Record(read(0, 512))
	r.Record(write(512, 512))
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	ops := r.Ops()
	if ops[0].Kind != storage.OpRead || ops[1].Kind != storage.OpWrite {
		t.Fatalf("ops = %+v", ops)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRecorderCap(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(read(int64(i)*512, 512))
	}
	if r.Len() != 3 {
		t.Fatalf("capped recorder kept %d ops", r.Len())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record(read(0, 512))
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestReadSequence(t *testing.T) {
	ops := []storage.Op{read(1024, 512), write(0, 512), read(4096, 512)}
	pts := ReadSequence(ops)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Seq != 0 || pts[0].LSN != 2 {
		t.Fatalf("pts[0] = %+v", pts[0])
	}
	if pts[1].Seq != 1 || pts[1].LSN != 8 {
		t.Fatalf("pts[1] = %+v", pts[1])
	}
}

func TestAnalyzeReadFraction(t *testing.T) {
	var ops []storage.Op
	for i := 0; i < 99; i++ {
		ops = append(ops, read(int64(i)*1024, 512))
	}
	ops = append(ops, write(0, 512))
	c := Analyze(ops)
	if c.Ops != 100 || c.Reads != 99 {
		t.Fatalf("counts: %+v", c)
	}
	if c.ReadFraction != 0.99 {
		t.Fatalf("ReadFraction = %v", c.ReadFraction)
	}
}

func TestAnalyzeSequential(t *testing.T) {
	ops := []storage.Op{read(0, 512), read(512, 512), read(1024, 512), read(1<<30, 512)}
	c := Analyze(ops)
	want := 2.0 / 3.0
	if diff := c.SequentialFraction - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("SequentialFraction = %v, want %v", c.SequentialFraction, want)
	}
}

func TestAnalyzeBackward(t *testing.T) {
	ops := []storage.Op{read(1<<20, 512), read(0, 512)}
	c := Analyze(ops)
	if c.BackwardFraction != 1.0 {
		t.Fatalf("BackwardFraction = %v", c.BackwardFraction)
	}
}

func TestAnalyzeSkippedReads(t *testing.T) {
	// Forward jumps smaller than SkipWindow count as skips.
	ops := []storage.Op{read(0, 512), read(10<<10, 512), read(30<<10, 512)}
	c := Analyze(ops)
	if c.ForwardSkipFraction != 1.0 {
		t.Fatalf("ForwardSkipFraction = %v", c.ForwardSkipFraction)
	}
	// A jump beyond the window is a random read, not a skip.
	ops = []storage.Op{read(0, 512), read(10<<20, 512)}
	c = Analyze(ops)
	if c.ForwardSkipFraction != 0 {
		t.Fatalf("far jump counted as skip: %v", c.ForwardSkipFraction)
	}
}

func TestAnalyzeFootprint(t *testing.T) {
	ops := []storage.Op{read(0, 1024), read(0, 1024), read(2048, 512)}
	c := Analyze(ops)
	if c.UniqueSectors != 3 { // sectors 0,1 and 4
		t.Fatalf("UniqueSectors = %d", c.UniqueSectors)
	}
}

func TestAnalyzeLocalitySkewed(t *testing.T) {
	var ops []storage.Op
	// 90 hits on one sector, 1 hit on each of 9 others: hot 10% (1 of 10
	// sectors) captures 90/99 of accesses.
	for i := 0; i < 90; i++ {
		ops = append(ops, read(0, 512))
	}
	for i := 1; i <= 9; i++ {
		ops = append(ops, read(int64(i)*512, 512))
	}
	c := Analyze(ops)
	if c.Top10PctShare < 0.9 {
		t.Fatalf("Top10PctShare = %v, want >= 0.9", c.Top10PctShare)
	}
}

func TestAnalyzeLocalityUniform(t *testing.T) {
	var ops []storage.Op
	for i := 0; i < 100; i++ {
		ops = append(ops, read(int64(i)*512, 512))
	}
	c := Analyze(ops)
	if c.Top10PctShare > 0.11 {
		t.Fatalf("uniform trace Top10PctShare = %v", c.Top10PctShare)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	c := Analyze(nil)
	if c.Ops != 0 || c.ReadFraction != 0 || c.UniqueSectors != 0 || c.Top10PctShare != 0 {
		t.Fatalf("empty analysis = %+v", c)
	}
}

func TestAnalyzeSingleOp(t *testing.T) {
	c := Analyze([]storage.Op{read(0, 512)})
	if c.SequentialFraction != 0 || c.BackwardFraction != 0 {
		t.Fatalf("single-op fractions: %+v", c)
	}
}

func TestAnalyzeZeroLenOp(t *testing.T) {
	c := Analyze([]storage.Op{{Kind: storage.OpRead, Offset: 512, Len: 0}})
	if c.UniqueSectors != 1 {
		t.Fatalf("zero-len op footprint = %d", c.UniqueSectors)
	}
}
