package trace

import (
	"time"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// SyntheticWebSearchParams shapes SyntheticWebSearch.
type SyntheticWebSearchParams struct {
	// Reads is the number of read operations to generate.
	Reads int
	// SpanSectors is the logical-sector range touched (UMass WebSearch
	// covers roughly 3.5×10^6 sectors in Fig 1a).
	SpanSectors int64
	// HotSpots is the number of distinct frequently-read locations.
	HotSpots int
	// ZipfS sets how skewed access across hot spots is.
	ZipfS float64
	// ReadSectors is the size of each read in sectors.
	ReadSectors int
	// Seed drives the generator.
	Seed uint64
}

// DefaultWebSearchParams mimics the UMass WebSearch trace of Fig 1(a).
func DefaultWebSearchParams() SyntheticWebSearchParams {
	return SyntheticWebSearchParams{
		Reads:       5000,
		SpanSectors: 3_500_000,
		HotSpots:    4000,
		ZipfS:       0.8,
		ReadSectors: 16,
		Seed:        0x0eb,
	}
}

// SyntheticWebSearch generates a UMass-like web search I/O trace: almost
// pure reads, scattered across the whole device span, with Zipf reuse of a
// hot-spot population — the pattern of Fig 1(a). The result is an op list
// ready for Analyze/ReadSequence.
func SyntheticWebSearch(p SyntheticWebSearchParams) []storage.Op {
	if p.Reads <= 0 || p.SpanSectors <= 0 || p.HotSpots <= 0 {
		panic("trace: invalid synthetic trace parameters")
	}
	rng := simclock.NewRNG(p.Seed)
	// Hot spot locations are uniform over the span; access order is Zipf
	// over spots, so a small subset of locations dominates.
	spots := make([]int64, p.HotSpots)
	for i := range spots {
		spots[i] = int64(rng.Uint64() % uint64(p.SpanSectors))
	}
	zipf := workload.NewZipf(rng.Split(1), p.HotSpots, p.ZipfS)
	ops := make([]storage.Op, 0, p.Reads)
	for i := 0; i < p.Reads; i++ {
		sector := spots[zipf.Next()]
		// Occasional short forward skip within a run, like skip-list reads.
		if rng.Float64() < 0.2 {
			sector += int64(rng.Intn(64))
			if sector >= p.SpanSectors {
				sector = p.SpanSectors - 1
			}
		}
		ops = append(ops, storage.Op{
			Device:  "websearch",
			Kind:    storage.OpRead,
			Offset:  sector * SectorSize,
			Len:     p.ReadSectors * SectorSize,
			Latency: time.Duration(0),
		})
	}
	return ops
}
