// Package serve is the concurrent multi-user serving layer: it partitions
// the cache hierarchy into independent shards routed by query-ID hash,
// coalesces identical in-flight queries singleflight-style, and replays an
// open-loop arrival stream on a deterministic discrete-event scheduler so
// simulated time stays exact under concurrency.
//
// Concurrency is modeled, not executed: one goroutine drains a
// (time, priority, sequence)-ordered event queue over the arrival
// timeline, so every run with the same configuration observes the same
// interleaving of arrivals and completions. Each shard is a complete
// hybrid.System whose own clock measures per-query serving latency
// (queue wait + service); queue delay is charged to the query under the
// simclock.CompQueueWait attribution component, which keeps every trace's
// attribution map summing exactly to its elapsed time.
package serve

import (
	"fmt"
	"time"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/metrics"
	"hybridstore/internal/obs"
	"hybridstore/internal/simclock"
	"hybridstore/internal/workload"
)

// Event-queue priorities: completions fire before arrivals at the same
// simulated instant, so a query arriving exactly when its twin completes
// starts a fresh flight instead of coalescing onto a finished one.
const (
	prioCompletion = 0
	prioArrival    = 1
)

// Config assembles a serving Pool.
type Config struct {
	// Base is the full-system configuration. Each shard is built from it
	// with the four cache budgets divided by Shards, so the aggregate
	// cache capacity stays fixed while the state is partitioned.
	Base hybrid.Config
	// Shards is the number of independent cache partitions (>= 1).
	Shards int
	// Arrivals describes the open-loop offered load.
	Arrivals workload.ArrivalSpec
	// WarmQueries runs closed-loop (zero queue delay) through the shards
	// before measurement to reach cache steady state.
	WarmQueries int
	// HotWarm re-executes the top-k most frequent queries of the warm
	// phase (per shard, ranked by the manager's queryFreq sketch) so the
	// hottest results are resident when the open-loop run starts.
	HotWarm int
	// Observer, when non-nil, is forked per shard: every shard's clock and
	// event stream feeds its own registry while all traces land in one
	// shared stream, including synthetic traces for coalesced queries.
	Observer *obs.Observer
}

// flight is one in-flight execution a shard owes: the leader query plus
// every identical query that arrived while it was queued or executing.
type flight struct {
	qid     uint64
	arrived time.Duration   // leader arrival instant
	waiters []time.Duration // follower arrival instants, in arrival order
}

// shard is one cache partition: a full hybrid.System plus the dispatch
// state the event loop drives.
type shard struct {
	sys *hybrid.System
	obs *obs.Observer // nil without Config.Observer

	queue    []*flight          // FIFO of flights waiting to start
	inflight map[uint64]*flight // queued or executing, by qid
	running  *flight            // nil while idle
	busyNS   int64              // total service time (excl. queue wait)
	executed int64              // leader executions
}

// Pool is the serving layer: N shards behind a deterministic dispatcher.
type Pool struct {
	cfg    Config
	shards []*shard
	log    *workload.QueryLog // arrival-side query stream, shared across shards

	events *simclock.EventQueue
	lat    *metrics.Histogram // all-queries serving latency, µs

	obsOn     bool
	arrivals  int64
	coalesced int64
	queueWait time.Duration // total leader queue delay
	maxQueue  int           // peak queued flights on any one shard
	horizon   time.Duration // last arrival instant
	makespan  time.Duration // last completion instant
	err       error
}

// shardCache divides the four cache budgets of base by n. It fails when a
// partition would fall below the manager's structural minima (one result
// entry in L1, one block per enabled SSD region) — that bounds how far a
// given configuration can shard.
func shardCache(base core.Config, n int) (core.Config, error) {
	c := base
	c.MemResultBytes /= int64(n)
	c.MemListBytes /= int64(n)
	c.SSDResultBytes /= int64(n)
	c.SSDListBytes /= int64(n)
	if c.MemResultBytes < c.ResultEntryBytes {
		return c, fmt.Errorf("serve: %d shards leave L1 RC %d below one %d-byte entry",
			n, c.MemResultBytes, c.ResultEntryBytes)
	}
	if c.MemListBytes <= 0 {
		return c, fmt.Errorf("serve: %d shards leave no L1 IC capacity", n)
	}
	if base.SSDResultBytes > 0 && c.SSDResultBytes < c.BlockBytes {
		return c, fmt.Errorf("serve: %d shards leave SSD result region %d below one %d-byte block",
			n, c.SSDResultBytes, c.BlockBytes)
	}
	if base.SSDListBytes > 0 && c.SSDListBytes < c.BlockBytes {
		return c, fmt.Errorf("serve: %d shards leave SSD list region %d below one %d-byte block",
			n, c.SSDListBytes, c.BlockBytes)
	}
	return c, nil
}

// New builds the pool: Shards complete systems with partitioned cache
// budgets, one shared arrival-side query log, and (optionally) per-shard
// observer forks.
func New(cfg Config) (*Pool, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("serve: Shards = %d", cfg.Shards)
	}
	if err := cfg.Arrivals.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:    cfg,
		log:    workload.NewQueryLog(cfg.Base.QueryLog),
		events: simclock.NewEventQueue(),
		lat:    metrics.NewHistogram(obs.LatencyBounds()),
	}
	for i := 0; i < cfg.Shards; i++ {
		scfg := cfg.Base
		var err error
		scfg.Cache, err = shardCache(cfg.Base.Cache, cfg.Shards)
		if err != nil {
			return nil, err
		}
		sys, err := hybrid.New(scfg)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		p.shards = append(p.shards, &shard{sys: sys, inflight: make(map[uint64]*flight)})
	}
	return p, nil
}

// Shards returns the shard count.
func (p *Pool) Shards() int { return p.cfg.Shards }

// System returns shard i's underlying system (tests and reports).
func (p *Pool) System(i int) *hybrid.System { return p.shards[i].sys }

// route maps a query ID to its owning shard with a splitmix64 finalizer —
// qids are small Zipf ranks, so they need mixing before the modulus.
func (p *Pool) route(qid uint64) *shard {
	x := qid + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return p.shards[x%uint64(len(p.shards))]
}

// Warm reaches cache steady state before the open-loop run: WarmQueries
// closed-loop queries routed across the shards, then a frequency-ranked
// warming pass re-executing each shard's HotWarm hottest queries (seeded
// by the queryFreq sketch the warm phase populated), then a stats reset so
// measurement covers only the open-loop window.
func (p *Pool) Warm() error {
	for i, sh := range p.shards {
		if sh.sys.Manager != nil && sh.sys.Manager.UsesStaticPartition() {
			if _, err := sh.sys.WarmupStatic(2 * p.cfg.WarmQueries); err != nil {
				return fmt.Errorf("serve: shard %d static warmup: %w", i, err)
			}
		}
	}
	for i := 0; i < p.cfg.WarmQueries; i++ {
		q := p.log.Next()
		if _, _, err := p.route(q.ID).sys.Search(q); err != nil {
			return fmt.Errorf("serve: warm query %d: %w", i, err)
		}
	}
	for i, sh := range p.shards {
		if sh.sys.Manager == nil || p.cfg.HotWarm <= 0 {
			continue
		}
		for _, qid := range sh.sys.Manager.HotQueries(p.cfg.HotWarm) {
			if _, _, err := sh.sys.Search(p.log.QueryByID(qid)); err != nil {
				return fmt.Errorf("serve: shard %d hot warm qid %d: %w", i, qid, err)
			}
		}
	}
	for _, sh := range p.shards {
		if sh.sys.Manager != nil {
			sh.sys.Manager.ResetStats()
		}
	}
	return nil
}

// Run replays n open-loop arrivals through the pool and reports the
// aggregate serving measurements. The event loop is strictly serial:
// arrivals and completions interleave in (time, priority, sequence) order,
// so the result is a pure function of the configuration.
func (p *Pool) Run(n int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("serve: Run(%d)", n)
	}
	// Observability attaches here, not in New, so traces and registry
	// metrics cover exactly the measured open-loop window — the warm
	// phase stays invisible, like runMeasured's post-warm stats reset.
	if p.cfg.Observer != nil && !p.obsOn {
		p.obsOn = true
		for _, sh := range p.shards {
			sh.obs = p.cfg.Observer.Fork()
			sh.sys.EnableObservability(sh.obs)
		}
	}
	arr := workload.NewArrivals(p.cfg.Arrivals)
	remaining := n

	// Arrivals are scheduled lazily — each one schedules its successor —
	// so the heap holds one pending arrival plus at most one completion
	// per shard.
	var scheduleArrival func()
	scheduleArrival = func() {
		if remaining == 0 || p.err != nil {
			return
		}
		remaining--
		at := arr.Next()
		q := p.log.Next()
		p.events.Schedule(at, prioArrival, func(at time.Duration) {
			scheduleArrival()
			p.arrive(q, at)
		})
	}
	scheduleArrival()

	for p.err == nil && p.events.RunNext() {
	}
	if p.err != nil {
		return Result{}, p.err
	}
	return p.result(), nil
}

// arrive processes one arrival: coalesce onto an identical in-flight
// query, or open a new flight and start it if the shard is idle.
func (p *Pool) arrive(q workload.Query, at time.Duration) {
	p.arrivals++
	p.horizon = at
	sh := p.route(q.ID)
	if fl := sh.inflight[q.ID]; fl != nil {
		fl.waiters = append(fl.waiters, at)
		p.coalesced++
		return
	}
	fl := &flight{qid: q.ID, arrived: at}
	sh.inflight[q.ID] = fl
	sh.queue = append(sh.queue, fl)
	if qn := len(sh.queue); qn > p.maxQueue {
		p.maxQueue = qn
	}
	if sh.running == nil {
		p.startNext(sh, at)
	}
}

// startNext pops the shard's queue head and executes it. The execution
// runs eagerly at the flight's start instant — the shard's own clock
// measures queue wait (charged via CompQueueWait) plus service — and the
// completion is scheduled at start + service on the arrival timeline, so
// queries arriving before that instant still coalesce onto this flight.
func (p *Pool) startNext(sh *shard, now time.Duration) {
	fl := sh.queue[0]
	sh.queue = sh.queue[1:]
	sh.running = fl

	wait := now - fl.arrived
	_, info, err := sh.sys.ServeAfterWait(p.log.QueryByID(fl.qid), wait)
	if err != nil {
		p.err = fmt.Errorf("serve: qid %d: %w", fl.qid, err)
		return
	}
	service := info.Elapsed - wait
	sh.busyNS += int64(service)
	sh.executed++
	p.queueWait += wait
	p.lat.Observe(info.Elapsed.Microseconds())

	p.events.Schedule(now+service, prioCompletion, func(at time.Duration) {
		p.complete(sh, fl, at)
	})
}

// complete retires a flight: every coalesced follower is charged its full
// wait (leader completion minus its own arrival) as queue_wait — with a
// synthetic trace when observability is on — and the next queued flight,
// if any, starts immediately.
func (p *Pool) complete(sh *shard, fl *flight, at time.Duration) {
	for _, w := range fl.waiters {
		d := at - w
		p.lat.Observe(d.Microseconds())
		if sh.obs != nil {
			// The checkpoint timestamp is the shard clock's Now — monotone
			// per observer — not the arrival-timeline instant, which would
			// run backwards relative to eagerly executed queries.
			sh.obs.CoalescedQuery(fl.qid, w, d, sh.sys.Clock.Now())
		}
	}
	delete(sh.inflight, fl.qid)
	sh.running = nil
	p.makespan = at
	if len(sh.queue) > 0 && p.err == nil {
		p.startNext(sh, at)
	}
}

// MergeProfile folds every shard observer's per-situation latency
// attribution into dst (no-op for shards without observability). Profiles
// merge commutatively, so the fold is deterministic regardless of how the
// enclosing sweep schedules points.
func (p *Pool) MergeProfile(dst *obs.Profile) {
	for _, sh := range p.shards {
		if sh.obs != nil {
			dst.Merge(sh.obs.Profile())
		}
	}
}

// result folds the run's measurements.
func (p *Pool) result() Result {
	r := Result{
		Shards:    p.cfg.Shards,
		Arrivals:  p.arrivals,
		Coalesced: p.coalesced,
		Horizon:   p.horizon,
		Makespan:  p.makespan,
		QueueWait: p.queueWait,
		MaxQueue:  p.maxQueue,
		Latency:   p.lat,
	}
	for _, sh := range p.shards {
		r.Executed += sh.executed
		r.BusyTime += time.Duration(sh.busyNS)
	}
	return r
}

// CalibrateQPS measures a configuration's single-shard closed-loop
// capacity: a fresh unsharded system serves n queries back-to-back after
// warm queries of cache warm-up, and the measured throughput is the
// saturation rate μ one shard can sustain. Sweeps express offered load as
// multiples of μ so "below/past saturation" means the same thing at every
// scale.
func CalibrateQPS(base hybrid.Config, warm, n int) (float64, error) {
	sys, err := hybrid.New(base)
	if err != nil {
		return 0, err
	}
	if _, err := sys.Run(warm); err != nil {
		return 0, err
	}
	if sys.Manager != nil {
		sys.Manager.ResetStats()
	}
	rs, err := sys.Run(n)
	if err != nil {
		return 0, err
	}
	return rs.Throughput(), nil
}

// Result aggregates one open-loop serving run.
type Result struct {
	// Shards is the pool's shard count.
	Shards int
	// Arrivals is the number of queries offered; Executed of them ran and
	// Coalesced were served by an identical in-flight leader
	// (Executed + Coalesced == Arrivals).
	Arrivals  int64
	Executed  int64
	Coalesced int64
	// Horizon is the last arrival instant; Makespan the last completion.
	// Makespan − Horizon is the backlog drain: zero-ish when the pool
	// keeps up, growing without bound past saturation.
	Horizon  time.Duration
	Makespan time.Duration
	// QueueWait is total leader queue delay; BusyTime total service time
	// across shards (utilization = BusyTime / (Shards × Makespan)).
	QueueWait time.Duration
	BusyTime  time.Duration
	// MaxQueue is the peak number of queued flights on any one shard.
	MaxQueue int
	// Latency holds every query's serving latency (µs): leaders measure
	// queue wait + service, coalesced followers their whole wait.
	Latency *metrics.Histogram
}

// OfferedQPS is the arrival rate actually generated (arrivals / horizon).
func (r Result) OfferedQPS() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return float64(r.Arrivals) / r.Horizon.Seconds()
}

// ThroughputQPS is completed queries per second of simulated serving time
// (arrivals / makespan): it tracks OfferedQPS while the pool keeps up and
// plateaus at capacity past saturation.
func (r Result) ThroughputQPS() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Arrivals) / r.Makespan.Seconds()
}

// Utilization is the busy fraction of the pool over the run.
func (r Result) Utilization() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.BusyTime.Seconds() / (float64(r.Shards) * r.Makespan.Seconds())
}

// quantile reads one latency quantile (percent) as a duration.
func (r Result) quantile(pct float64) time.Duration {
	return time.Duration(r.Latency.Quantile(pct) * float64(time.Microsecond))
}

// P50 is the median serving latency.
func (r Result) P50() time.Duration { return r.quantile(50) }

// P99 is the 99th-percentile serving latency.
func (r Result) P99() time.Duration { return r.quantile(99) }

// P999 is the 99.9th-percentile serving latency.
func (r Result) P999() time.Duration { return r.quantile(99.9) }

// MeanLatency is the mean serving latency.
func (r Result) MeanLatency() time.Duration {
	return time.Duration(r.Latency.Mean() * float64(time.Microsecond))
}

// String renders the headline measurements on one line.
func (r Result) String() string {
	return fmt.Sprintf(
		"shards=%d queries=%d coalesced=%d offered=%.1fq/s tput=%.1fq/s util=%.2f p50=%v p99=%v p999=%v maxq=%d",
		r.Shards, r.Arrivals, r.Coalesced, r.OfferedQPS(), r.ThroughputQPS(),
		r.Utilization(), r.P50().Round(time.Microsecond), r.P99().Round(time.Microsecond),
		r.P999().Round(time.Microsecond), r.MaxQueue)
}
