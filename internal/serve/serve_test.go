package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/index"
	"hybridstore/internal/obs"
	"hybridstore/internal/simclock"
	"hybridstore/internal/workload"
)

// testBase returns a small two-level configuration every test shares. The
// index image is built once per process and stamped onto each system.
var (
	imgOnce sync.Once
	img     *index.Image
	imgErr  error
)

func testBase(t *testing.T) hybrid.Config {
	t.Helper()
	collection := workload.DefaultCollection(150_000)
	collection.VocabSize = 1200
	collection.MaxDFShare = 0.2
	log := workload.DefaultQueryLog(collection.VocabSize)
	log.DistinctQueries = 3000

	cacheCfg := core.DefaultConfig(1 << 19)
	cacheCfg.TEV = 2
	cacheCfg.SSDResultBytes = 1 << 19
	cacheCfg.SSDListBytes = 3 << 20

	engCfg := engine.DefaultConfig()
	engCfg.TerminationFrac = 0.35

	imgOnce.Do(func() { img, imgErr = index.BuildImage(collection, index.CodecRaw) })
	if imgErr != nil {
		t.Fatalf("BuildImage: %v", imgErr)
	}
	return hybrid.Config{
		Collection: collection,
		QueryLog:   log,
		Cache:      cacheCfg,
		Mode:       hybrid.CacheTwoLevel,
		IndexOn:    hybrid.IndexOnHDD,
		Engine:     engCfg,
		UseModelPU: true,
		IndexImage: img,
	}
}

// calibrated returns the single-shard closed-loop capacity for testBase,
// measured once and cached.
var (
	muOnce sync.Once
	muQPS  float64
	muErr  error
)

func calibratedQPS(t *testing.T) float64 {
	t.Helper()
	base := testBase(t)
	muOnce.Do(func() { muQPS, muErr = CalibrateQPS(base, 200, 300) })
	if muErr != nil {
		t.Fatalf("CalibrateQPS: %v", muErr)
	}
	if muQPS <= 0 {
		t.Fatalf("calibrated capacity %v", muQPS)
	}
	return muQPS
}

func poolConfig(t *testing.T, shards int, rate float64) Config {
	t.Helper()
	return Config{
		Base:        testBase(t),
		Shards:      shards,
		Arrivals:    workload.DefaultArrivals(rate),
		WarmQueries: 300,
		HotWarm:     20,
	}
}

func runPool(t *testing.T, cfg Config, n int) Result {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Warm(); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	r, err := p.Run(n)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

// TestCoalescingAccounting drives the pool well past single-shard
// saturation so identical queries pile up in flight, and checks the
// singleflight ledger: every arrival is either one leader execution or a
// coalesced follower, and followers exist under this load.
func TestCoalescingAccounting(t *testing.T) {
	mu := calibratedQPS(t)
	r := runPool(t, poolConfig(t, 1, 3*mu), 800)
	if r.Executed+r.Coalesced != r.Arrivals {
		t.Fatalf("executed %d + coalesced %d != arrivals %d", r.Executed, r.Coalesced, r.Arrivals)
	}
	if r.Coalesced == 0 {
		t.Fatal("no coalescing at 3x saturation; singleflight never engaged")
	}
	if r.Executed == 0 {
		t.Fatal("nothing executed")
	}
	if got := r.Latency.Total(); got != r.Arrivals {
		t.Fatalf("latency histogram holds %d samples, want %d", got, r.Arrivals)
	}
}

// TestCoalescedTraces verifies the per-query observability of followers:
// each coalesced serve emits exactly one synthetic trace whose situation
// is "coalesced" and whose attribution is entirely queue_wait, summing
// exactly to elapsed_ns — the same contract tracetool audits.
func TestCoalescedTraces(t *testing.T) {
	mu := calibratedQPS(t)
	var buf bytes.Buffer
	cfg := poolConfig(t, 2, 3*mu)
	cfg.Observer = obs.New(obs.Options{TraceRing: 1, SpanLimit: 8, TraceOut: &buf})
	r := runPool(t, cfg, 800)

	type trace struct {
		Situation string           `json:"situation"`
		ElapsedNS int64            `json:"elapsed_ns"`
		Attrib    map[string]int64 `json:"attrib"`
	}
	var coalesced, leaders, queueWaited int64
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var tr trace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		var sum int64
		for _, v := range tr.Attrib {
			sum += v
		}
		if sum != tr.ElapsedNS {
			t.Fatalf("attrib sum %d != elapsed_ns %d (situation %q)", sum, tr.ElapsedNS, tr.Situation)
		}
		if qw := tr.Attrib[simclock.CompQueueWait.String()]; qw > 0 {
			queueWaited++
		}
		if tr.Situation == "coalesced" {
			coalesced++
			if tr.Attrib[simclock.CompQueueWait.String()] != tr.ElapsedNS {
				t.Fatalf("coalesced trace not pure queue_wait: %+v", tr)
			}
		} else {
			leaders++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if coalesced != r.Coalesced {
		t.Fatalf("%d coalesced traces, result says %d", coalesced, r.Coalesced)
	}
	if leaders != r.Executed {
		t.Fatalf("%d leader traces, result says %d executed", leaders, r.Executed)
	}
	if queueWaited == 0 {
		t.Fatal("no trace carries queue_wait despite saturation")
	}
}

// TestRunDeterminism: the event loop is a pure function of the
// configuration — same config, same Result line and same trace stream,
// byte for byte.
func TestRunDeterminism(t *testing.T) {
	mu := calibratedQPS(t)
	run := func() (string, string) {
		var buf bytes.Buffer
		cfg := poolConfig(t, 2, 2*mu)
		cfg.Arrivals.BurstEvery = 200 * time.Millisecond
		cfg.Arrivals.BurstDuration = 50 * time.Millisecond
		cfg.Arrivals.BurstFactor = 3
		cfg.Observer = obs.New(obs.Options{TraceRing: 1, SpanLimit: 8, TraceOut: &buf})
		r := runPool(t, cfg, 500)
		return r.String(), buf.String()
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1 != r2 {
		t.Fatalf("results differ:\n%s\n%s", r1, r2)
	}
	if t1 != t2 {
		t.Fatal("trace streams differ between identical runs")
	}
	if !strings.Contains(r1, "shards=2") {
		t.Fatalf("unexpected result line %q", r1)
	}
}

// TestThroughputScalesWithShards: at a fixed offered load past one
// shard's capacity, adding shards must raise delivered throughput and cut
// tail latency.
func TestThroughputScalesWithShards(t *testing.T) {
	mu := calibratedQPS(t)
	r1 := runPool(t, poolConfig(t, 1, 3*mu), 700)
	r4 := runPool(t, poolConfig(t, 4, 3*mu), 700)
	if r4.ThroughputQPS() <= r1.ThroughputQPS() {
		t.Fatalf("throughput did not scale: 1 shard %.1f q/s, 4 shards %.1f q/s",
			r1.ThroughputQPS(), r4.ThroughputQPS())
	}
	if r4.P99() >= r1.P99() {
		t.Fatalf("p99 did not improve: 1 shard %v, 4 shards %v", r1.P99(), r4.P99())
	}
}

// TestShardCacheBounds: partitioning must refuse shard counts that push a
// cache region below its structural minimum.
func TestShardCacheBounds(t *testing.T) {
	base := testBase(t).Cache
	if _, err := shardCache(base, 4); err != nil {
		t.Fatalf("4 shards should fit: %v", err)
	}
	if _, err := shardCache(base, 64); err == nil {
		t.Fatal("64 shards should overflow the L1 result budget")
	}
	if _, err := New(Config{Base: testBase(t), Shards: 64, Arrivals: workload.DefaultArrivals(100)}); err == nil {
		t.Fatal("New accepted an unshardable configuration")
	}
}

// TestWarmSeedsHotQueries: the warm pass populates the per-shard
// queryFreq sketch; HotWarm re-executes the hottest of them, so the
// hottest query IDs must be result-cache resident when Run starts.
func TestWarmSeedsHotQueries(t *testing.T) {
	cfg := poolConfig(t, 2, 100)
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Warm(); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	for i := 0; i < p.Shards(); i++ {
		sys := p.System(i)
		hot := sys.Manager.HotQueries(5)
		if len(hot) == 0 {
			t.Fatalf("shard %d saw no queries during warm", i)
		}
		for j := 1; j < len(hot); j++ {
			a, b := sys.Manager.QueryFrequency(hot[j-1]), sys.Manager.QueryFrequency(hot[j])
			if a < b {
				t.Fatalf("shard %d hot ranking not descending: freq(%d)=%d < freq(%d)=%d",
					i, hot[j-1], a, hot[j], b)
			}
		}
	}
}
