// Package intersect implements the intersection cache of the paper's
// three-level caching future work (§VIII, citing Long & Suel [19]): cached
// document-ID intersections of term pairs, the intermediate level between
// result caching and inverted-list caching.
//
// Intersections are exact under conjunctive (AND) semantics: a cached pair
// intersection lets the query processor skip reading both full posting
// lists. Entries keep both terms' frequencies so scoring needs no extra
// I/O.
package intersect

import (
	"fmt"

	"hybridstore/internal/cache"
	"hybridstore/internal/workload"
)

// Posting is one intersection entry: a document present in both lists,
// with each list's term frequency.
type Posting struct {
	Doc      uint32
	TFA, TFB uint16
}

// PostingBytes is the accounted size of one intersection posting.
const PostingBytes = 8

// Pair is a canonical (ordered) term pair.
type Pair struct {
	A, B workload.TermID
}

// MakePair canonicalizes two distinct terms into a Pair (A < B). It panics
// when a == b: self-intersection is just the list itself.
func MakePair(a, b workload.TermID) Pair {
	if a == b {
		panic(fmt.Sprintf("intersect: self pair %d", a))
	}
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

func (p Pair) key() uint64 { return uint64(uint32(p.A))<<32 | uint64(uint32(p.B)) }

// Cache is a byte-accounted LRU intersection cache. The Charge callback
// (optional) charges simulated memory-access time for hits and inserts.
//
// Cache is not safe for concurrent use.
type Cache struct {
	list   *cache.List
	charge func(bytes int)
	hits   int64
	misses int64
	puts   int64
}

// New builds a cache with the given byte capacity. charge may be nil.
func New(capacityBytes int64, charge func(bytes int)) *Cache {
	if charge == nil {
		charge = func(int) {}
	}
	return &Cache{list: cache.NewList(capacityBytes), charge: charge}
}

// Get returns the cached intersection for the pair, ordered so TFA belongs
// to the smaller term ID.
func (c *Cache) Get(p Pair) ([]Posting, bool) {
	e, ok := c.list.Get(p.key())
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	data := e.Value.([]Posting)
	c.charge(len(data) * PostingBytes)
	return data, true
}

// Put stores an intersection, evicting least-recently-used pairs to fit.
// Oversized intersections (more than a quarter of the cache) are rejected.
func (c *Cache) Put(p Pair, postings []Posting) bool {
	size := int64(len(postings)) * PostingBytes
	if size == 0 {
		size = 1 // empty intersections are valuable knowledge too
	}
	if size > c.list.Capacity()/4 {
		return false
	}
	if old, ok := c.list.Peek(p.key()); ok {
		c.list.RemoveEntry(old)
	}
	for !c.list.Fits(size) {
		victim := c.list.LRUEntry()
		if victim == nil {
			return false
		}
		c.list.RemoveEntry(victim)
	}
	c.list.Put(p.key(), size, postings)
	c.charge(int(size))
	c.puts++
	return true
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits, Misses, Puts int64
	Entries            int
	UsedBytes          int64
}

// Stats returns a snapshot.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts,
		Entries: c.list.Len(), UsedBytes: c.list.Used(),
	}
}

// HitRatio returns hits/(hits+misses).
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Intersect computes the intersection of two doc-ascending posting lists
// (pure function, used by the engine and by tests as the reference).
func Intersect(a, b []workload.Posting) []Posting {
	out := make([]Posting, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Doc < b[j].Doc:
			i++
		case a[i].Doc > b[j].Doc:
			j++
		default:
			out = append(out, Posting{Doc: a[i].Doc, TFA: a[i].TF, TFB: b[j].TF})
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
