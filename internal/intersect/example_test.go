package intersect_test

import (
	"fmt"

	"hybridstore/internal/intersect"
	"hybridstore/internal/workload"
)

// ExampleIntersect shows the reference intersection of two doc-ascending
// posting lists, keeping both term frequencies for scoring.
func ExampleIntersect() {
	a := []workload.Posting{{Doc: 1, TF: 9}, {Doc: 4, TF: 3}, {Doc: 9, TF: 2}}
	b := []workload.Posting{{Doc: 4, TF: 5}, {Doc: 8, TF: 1}, {Doc: 9, TF: 7}}
	for _, p := range intersect.Intersect(a, b) {
		fmt.Printf("doc=%d tfA=%d tfB=%d\n", p.Doc, p.TFA, p.TFB)
	}
	// Output:
	// doc=4 tfA=3 tfB=5
	// doc=9 tfA=2 tfB=7
}

// ExampleCache shows the pair cache's hit/miss behaviour.
func ExampleCache() {
	c := intersect.New(1<<16, nil)
	pair := intersect.MakePair(7, 3) // canonicalized to (3, 7)
	if _, ok := c.Get(pair); !ok {
		fmt.Println("miss")
	}
	c.Put(pair, []intersect.Posting{{Doc: 12, TFA: 1, TFB: 2}})
	if ip, ok := c.Get(pair); ok {
		fmt.Printf("hit: %d docs\n", len(ip))
	}
	fmt.Printf("hit ratio %.2f\n", c.Stats().HitRatio())
	// Output:
	// miss
	// hit: 1 docs
	// hit ratio 0.50
}
