package intersect

import (
	"sort"
	"testing"
	"testing/quick"

	"hybridstore/internal/workload"
)

func TestMakePairCanonical(t *testing.T) {
	if MakePair(5, 2) != MakePair(2, 5) {
		t.Fatal("pair not canonical")
	}
	p := MakePair(9, 3)
	if p.A != 3 || p.B != 9 {
		t.Fatalf("pair = %+v", p)
	}
}

func TestMakePairSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self pair did not panic")
		}
	}()
	MakePair(4, 4)
}

func TestIntersectReference(t *testing.T) {
	a := []workload.Posting{{Doc: 1, TF: 10}, {Doc: 3, TF: 8}, {Doc: 5, TF: 2}, {Doc: 9, TF: 1}}
	b := []workload.Posting{{Doc: 2, TF: 7}, {Doc: 3, TF: 6}, {Doc: 9, TF: 4}, {Doc: 11, TF: 3}}
	got := Intersect(a, b)
	want := []Posting{{Doc: 3, TFA: 8, TFB: 6}, {Doc: 9, TFA: 1, TFB: 4}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestIntersectEmptyCases(t *testing.T) {
	if len(Intersect(nil, nil)) != 0 {
		t.Fatal("nil intersect not empty")
	}
	a := []workload.Posting{{Doc: 1}}
	if len(Intersect(a, nil)) != 0 || len(Intersect(nil, a)) != 0 {
		t.Fatal("one-sided intersect not empty")
	}
}

func TestIntersectProperty(t *testing.T) {
	// Property: the intersection contains exactly the docs present in
	// both inputs.
	f := func(rawA, rawB []uint16) bool {
		mk := func(raw []uint16) []workload.Posting {
			seen := map[uint32]bool{}
			var out []workload.Posting
			for _, r := range raw {
				d := uint32(r % 512)
				if !seen[d] {
					seen[d] = true
					out = append(out, workload.Posting{Doc: d, TF: uint16(d%7 + 1)})
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
			return out
		}
		a, b := mk(rawA), mk(rawB)
		got := Intersect(a, b)
		inA := map[uint32]bool{}
		for _, p := range a {
			inA[p.Doc] = true
		}
		want := map[uint32]bool{}
		for _, p := range b {
			if inA[p.Doc] {
				want[p.Doc] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, p := range got {
			if !want[p.Doc] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCachePutGet(t *testing.T) {
	var charged int
	c := New(1<<20, func(n int) { charged += n })
	pair := MakePair(1, 2)
	data := []Posting{{Doc: 3, TFA: 1, TFB: 2}}
	if !c.Put(pair, data) {
		t.Fatal("put failed")
	}
	got, ok := c.Get(pair)
	if !ok || len(got) != 1 || got[0] != data[0] {
		t.Fatalf("get = %v, %v", got, ok)
	}
	if charged == 0 {
		t.Fatal("charge callback never invoked")
	}
	if _, ok := c.Get(MakePair(1, 3)); ok {
		t.Fatal("phantom hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %v", s.HitRatio())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := New(64, nil) // fits 8 single-posting entries
	for i := 0; i < 12; i++ {
		c.Put(MakePair(workload.TermID(i), workload.TermID(i+100)),
			[]Posting{{Doc: uint32(i)}})
	}
	if _, ok := c.Get(MakePair(0, 100)); ok {
		t.Fatal("oldest pair survived past capacity")
	}
	if _, ok := c.Get(MakePair(11, 111)); !ok {
		t.Fatal("newest pair evicted")
	}
}

func TestCacheEmptyIntersectionCached(t *testing.T) {
	c := New(1<<10, nil)
	pair := MakePair(7, 9)
	if !c.Put(pair, nil) {
		t.Fatal("empty intersection rejected")
	}
	got, ok := c.Get(pair)
	if !ok || len(got) != 0 {
		t.Fatal("empty intersection not served")
	}
}

func TestCacheRejectsOversized(t *testing.T) {
	c := New(1<<10, nil) // quarter = 256 bytes = 32 postings
	big := make([]Posting, 100)
	if c.Put(MakePair(1, 2), big) {
		t.Fatal("oversized intersection accepted")
	}
}

func TestCacheReplaceSamePair(t *testing.T) {
	c := New(1<<10, nil)
	pair := MakePair(1, 2)
	c.Put(pair, []Posting{{Doc: 1}})
	c.Put(pair, []Posting{{Doc: 2}, {Doc: 3}})
	got, _ := c.Get(pair)
	if len(got) != 2 || got[0].Doc != 2 {
		t.Fatalf("replace failed: %v", got)
	}
	if c.Stats().Entries != 1 {
		t.Fatal("duplicate entries after replace")
	}
}
