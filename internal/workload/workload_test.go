package workload

import (
	"math"
	"testing"
	"testing/quick"

	"hybridstore/internal/simclock"
)

func TestZipfRange(t *testing.T) {
	z := NewZipf(simclock.NewRNG(1), 100, 1.0)
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(simclock.NewRNG(2), 1000, 1.0)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("popularity not decreasing: c0=%d c10=%d c100=%d",
			counts[0], counts[10], counts[100])
	}
	// With s=1 over 1000 ranks, rank 0 gets ~1/H(1000) ≈ 13% of samples.
	share := float64(counts[0]) / n
	if share < 0.10 || share > 0.17 {
		t.Fatalf("rank-0 share = %v, want ~0.13", share)
	}
}

func TestZipfProbabilitySumsToOne(t *testing.T) {
	z := NewZipf(simclock.NewRNG(3), 500, 0.8)
	sum := 0.0
	for i := 0; i < 500; i++ {
		sum += z.Probability(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfProbabilityMatchesEmpirical(t *testing.T) {
	z := NewZipf(simclock.NewRNG(4), 50, 1.0)
	const n = 200000
	counts := make([]int, 50)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for _, rank := range []int{0, 5, 20} {
		want := z.Probability(rank)
		got := float64(counts[rank]) / n
		if math.Abs(got-want) > 0.01+want*0.15 {
			t.Errorf("rank %d: empirical %v vs analytic %v", rank, got, want)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	for _, c := range []struct {
		n int
		s float64
	}{{0, 1}, {-5, 1}, {10, 0}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", c.n, c.s)
				}
			}()
			NewZipf(simclock.NewRNG(1), c.n, c.s)
		}()
	}
}

func TestZipfSampleIndependentOfOwnStream(t *testing.T) {
	z := NewZipf(simclock.NewRNG(5), 100, 1.0)
	ext := simclock.NewRNG(99)
	a := z.Sample(ext)
	z2 := NewZipf(simclock.NewRNG(5), 100, 1.0)
	ext2 := simclock.NewRNG(99)
	z2.Next() // consume own stream
	b := z2.Sample(ext2)
	if a != b {
		t.Fatal("Sample depends on the sampler's own RNG stream")
	}
}

func TestCollectionValidate(t *testing.T) {
	good := DefaultCollection(1000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []CollectionSpec{
		{NumDocs: 0, VocabSize: 10, DFExponent: 1, MaxDFShare: 0.1, MaxTF: 10},
		{NumDocs: 10, VocabSize: 0, DFExponent: 1, MaxDFShare: 0.1, MaxTF: 10},
		{NumDocs: 10, VocabSize: 10, DFExponent: 0, MaxDFShare: 0.1, MaxTF: 10},
		{NumDocs: 10, VocabSize: 10, DFExponent: 1, MaxDFShare: 0, MaxTF: 10},
		{NumDocs: 10, VocabSize: 10, DFExponent: 1, MaxDFShare: 1.5, MaxTF: 10},
		{NumDocs: 10, VocabSize: 10, DFExponent: 1, MaxDFShare: 0.1, MaxTF: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestDocFreqDecreasing(t *testing.T) {
	s := DefaultCollection(100000)
	prev := s.DocFreq(0)
	if prev != 10000 {
		t.Fatalf("df(0) = %d, want 10000 (10%% of 100k)", prev)
	}
	for r := 1; r < s.VocabSize; r *= 4 {
		df := s.DocFreq(TermID(r))
		if df > prev {
			t.Fatalf("df not non-increasing at rank %d: %d > %d", r, df, prev)
		}
		if df < 1 {
			t.Fatalf("df(%d) = %d", r, df)
		}
		prev = df
	}
}

func TestDocFreqPanicsOutOfVocab(t *testing.T) {
	s := DefaultCollection(100)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-vocab term did not panic")
		}
	}()
	s.DocFreq(TermID(s.VocabSize))
}

func TestPostingsDistinctDocs(t *testing.T) {
	s := DefaultCollection(5000)
	for _, term := range []TermID{0, 5, 100, 9999} {
		ps := s.Postings(term)
		if len(ps) != s.DocFreq(term) {
			t.Fatalf("term %d: %d postings, df %d", term, len(ps), s.DocFreq(term))
		}
		seen := make(map[uint32]bool, len(ps))
		for _, p := range ps {
			if p.Doc >= uint32(s.NumDocs) {
				t.Fatalf("term %d: doc %d out of range", term, p.Doc)
			}
			if seen[p.Doc] {
				t.Fatalf("term %d: duplicate doc %d", term, p.Doc)
			}
			seen[p.Doc] = true
		}
	}
}

func TestPostingsImpactOrdered(t *testing.T) {
	s := DefaultCollection(10000)
	ps := s.Postings(3)
	for i := 1; i < len(ps); i++ {
		if ps[i].TF > ps[i-1].TF {
			t.Fatalf("postings not in decreasing TF order at %d: %d > %d",
				i, ps[i].TF, ps[i-1].TF)
		}
	}
	if ps[0].TF == 0 || ps[len(ps)-1].TF == 0 {
		t.Fatal("TF must be at least 1")
	}
}

func TestPostingsDeterministic(t *testing.T) {
	s := DefaultCollection(5000)
	a := s.Postings(7)
	b := s.Postings(7)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("postings differ at %d", i)
		}
	}
}

func TestPostingsDistinctDocsProperty(t *testing.T) {
	f := func(termRaw uint16, docsRaw uint16) bool {
		s := DefaultCollection(int(docsRaw%5000) + 100)
		s.VocabSize = 500
		term := TermID(termRaw % 500)
		ps := s.Postings(term)
		seen := make(map[uint32]bool, len(ps))
		for _, p := range ps {
			if seen[p.Doc] || p.Doc >= uint32(s.NumDocs) {
				return false
			}
			seen[p.Doc] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestListBytes(t *testing.T) {
	s := DefaultCollection(1000)
	if got := s.ListBytes(0, 8); got != int64(s.DocFreq(0))*8 {
		t.Fatalf("ListBytes = %d", got)
	}
}

func TestUtilizationBounds(t *testing.T) {
	s := DefaultCollection(1000000)
	u := NewUtilizationModel(s)
	for r := 0; r < s.VocabSize; r += 97 {
		pu := u.PU(TermID(r))
		if pu <= 0 || pu > 1 {
			t.Fatalf("PU(%d) = %v out of (0,1]", r, pu)
		}
	}
}

func TestUtilizationPopularLower(t *testing.T) {
	s := DefaultCollection(1000000)
	u := NewUtilizationModel(s)
	if u.PU(0) >= u.PU(TermID(s.VocabSize-1)) {
		t.Fatalf("popular term PU %v not below rare term PU %v",
			u.PU(0), u.PU(TermID(s.VocabSize-1)))
	}
	if u.PU(0) > 0.25 {
		t.Fatalf("hottest list PU = %v, want small (early termination)", u.PU(0))
	}
	if u.PU(TermID(s.VocabSize-1)) < 0.9 {
		t.Fatalf("rarest list PU = %v, want ~1 (read fully)", u.PU(TermID(s.VocabSize-1)))
	}
}

func TestQueryLogValidate(t *testing.T) {
	good := DefaultQueryLog(1000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []QueryLogSpec{
		{DistinctQueries: 0, QueryExponent: 1, TermExponent: 1, MaxTermsPerQuery: 2, VocabSize: 10},
		{DistinctQueries: 10, QueryExponent: 0, TermExponent: 1, MaxTermsPerQuery: 2, VocabSize: 10},
		{DistinctQueries: 10, QueryExponent: 1, TermExponent: 1, MaxTermsPerQuery: 0, VocabSize: 10},
		{DistinctQueries: 10, QueryExponent: 1, TermExponent: 1, MaxTermsPerQuery: 2, VocabSize: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestQueryLogDeterministic(t *testing.T) {
	spec := DefaultQueryLog(1000)
	a, b := NewQueryLog(spec), NewQueryLog(spec)
	for i := 0; i < 500; i++ {
		qa, qb := a.Next(), b.Next()
		if qa.ID != qb.ID || len(qa.Terms) != len(qb.Terms) {
			t.Fatalf("step %d: queries diverge", i)
		}
		for j := range qa.Terms {
			if qa.Terms[j] != qb.Terms[j] {
				t.Fatalf("step %d: terms diverge", i)
			}
		}
	}
}

func TestQueryStableTermsByID(t *testing.T) {
	l := NewQueryLog(DefaultQueryLog(1000))
	q1 := l.QueryByID(42)
	q2 := l.QueryByID(42)
	if q1.ID != q2.ID || len(q1.Terms) != len(q2.Terms) {
		t.Fatal("same ID produced different queries")
	}
	for i := range q1.Terms {
		if q1.Terms[i] != q2.Terms[i] {
			t.Fatal("same ID produced different terms")
		}
	}
}

func TestQueryTermsValidAndDistinct(t *testing.T) {
	spec := DefaultQueryLog(100)
	spec.DistinctQueries = 1000
	l := NewQueryLog(spec)
	for i := 0; i < 2000; i++ {
		q := l.Next()
		if len(q.Terms) < 1 || len(q.Terms) > spec.MaxTermsPerQuery {
			t.Fatalf("query %d has %d terms", q.ID, len(q.Terms))
		}
		seen := make(map[TermID]bool)
		for _, term := range q.Terms {
			if int(term) < 0 || int(term) >= spec.VocabSize {
				t.Fatalf("term %d out of vocab", term)
			}
			if seen[term] {
				t.Fatalf("query %d repeats term %d", q.ID, term)
			}
			seen[term] = true
		}
	}
}

func TestQueryRepetition(t *testing.T) {
	spec := DefaultQueryLog(1000)
	spec.DistinctQueries = 10000
	l := NewQueryLog(spec)
	seen := make(map[uint64]bool)
	repeats := 0
	const n = 20000
	for i := 0; i < n; i++ {
		q := l.Next()
		if seen[q.ID] {
			repeats++
		}
		seen[q.ID] = true
	}
	// A Zipf(0.85) stream over 10k identities repeats heavily at 20k draws.
	if float64(repeats)/n < 0.3 {
		t.Fatalf("repetition rate %v too low for result caching to matter", float64(repeats)/n)
	}
	if l.Produced() != n {
		t.Fatalf("Produced = %d", l.Produced())
	}
}

func TestTermFrequenciesZipfShaped(t *testing.T) {
	spec := DefaultQueryLog(1000)
	l := NewQueryLog(spec)
	counts := l.TermFrequencies(20000)
	if len(counts) != 1000 {
		t.Fatalf("len = %d", len(counts))
	}
	var head, tail int64
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	for i := 900; i < 1000; i++ {
		tail += counts[i]
	}
	if head <= tail*5 {
		t.Fatalf("head terms (%d) not dominating tail terms (%d)", head, tail)
	}
	// TermFrequencies must not consume the log's own stream.
	if l.Produced() != 0 {
		t.Fatalf("TermFrequencies consumed the live stream: %d", l.Produced())
	}
}

func TestNewQueryLogPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec did not panic")
		}
	}()
	NewQueryLog(QueryLogSpec{})
}
