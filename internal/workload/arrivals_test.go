package workload

import (
	"testing"
	"time"
)

// TestArrivalsDeterministic: the same spec always yields the same arrival
// instants — the open-loop stream is a pure function of its seed.
func TestArrivalsDeterministic(t *testing.T) {
	spec := DefaultArrivals(500)
	spec.BurstEvery = 2 * time.Second
	spec.BurstDuration = 200 * time.Millisecond
	spec.BurstFactor = 4
	a, b := NewArrivals(spec), NewArrivals(spec)
	for i := 0; i < 2000; i++ {
		ta, tb := a.Next(), b.Next()
		if ta != tb {
			t.Fatalf("arrival %d differs: %v vs %v", i, ta, tb)
		}
	}
	if a.Generated() != 2000 {
		t.Fatalf("Generated = %d, want 2000", a.Generated())
	}
	other := spec
	other.Seed++
	c := NewArrivals(other)
	same := true
	a2 := NewArrivals(spec)
	for i := 0; i < 50; i++ {
		if a2.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical arrival prefix")
	}
}

// TestArrivalsStrictlyIncreasing: arrival times never repeat or go
// backwards, even at rates extreme enough that exponential gaps round to
// zero nanoseconds.
func TestArrivalsStrictlyIncreasing(t *testing.T) {
	for _, rate := range []float64{50, 1e6, 5e9} {
		a := NewArrivals(ArrivalSpec{RatePerSec: rate, Seed: 42})
		prev := time.Duration(-1)
		for i := 0; i < 5000; i++ {
			at := a.Next()
			if at <= prev {
				t.Fatalf("rate %g: arrival %d at %v not after %v", rate, i, at, prev)
			}
			prev = at
		}
	}
}

// TestArrivalsMeanRate: over a long window the empirical rate of a plain
// Poisson stream tracks λ within a few percent.
func TestArrivalsMeanRate(t *testing.T) {
	const lambda = 1000.0
	a := NewArrivals(ArrivalSpec{RatePerSec: lambda, Seed: 7})
	const n = 20000
	var last time.Duration
	for i := 0; i < n; i++ {
		last = a.Next()
	}
	got := float64(n) / last.Seconds()
	if got < 0.95*lambda || got > 1.05*lambda {
		t.Fatalf("empirical rate %.1f/s, want within 5%% of %g", got, lambda)
	}
}

// TestArrivalsDiurnalAndBurst: Rate follows the sinusoid peak/trough and
// multiplies by BurstFactor only inside burst windows, which start at
// BurstEvery rather than time zero.
func TestArrivalsDiurnalAndBurst(t *testing.T) {
	spec := ArrivalSpec{
		RatePerSec:       100,
		DiurnalAmplitude: 0.5,
		DiurnalPeriod:    4 * time.Second,
		BurstEvery:       10 * time.Second,
		BurstDuration:    1 * time.Second,
		BurstFactor:      3,
		Seed:             1,
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	peak := spec.Rate(1 * time.Second)   // sin peak: λ(1+A)
	trough := spec.Rate(3 * time.Second) // sin trough: λ(1−A)
	if peak < 149 || peak > 151 {
		t.Fatalf("peak rate %v, want ≈150", peak)
	}
	if trough < 49 || trough > 51 {
		t.Fatalf("trough rate %v, want ≈50", trough)
	}
	if spec.inBurst(500 * time.Millisecond) {
		t.Fatal("burst active before the first BurstEvery boundary")
	}
	in := spec.Rate(10*time.Second + 500*time.Millisecond)
	out := spec.Rate(11*time.Second + 500*time.Millisecond)
	if in <= out || in/out < 2.5 {
		t.Fatalf("burst rate %v not ≈3x post-burst rate %v", in, out)
	}
	if mr := spec.maxRate(); mr != 100*1.5*3 {
		t.Fatalf("maxRate = %v, want 450", mr)
	}
}

// TestArrivalSpecValidate rejects inconsistent specs.
func TestArrivalSpecValidate(t *testing.T) {
	bad := []ArrivalSpec{
		{RatePerSec: 0},
		{RatePerSec: -1},
		{RatePerSec: 10, DiurnalAmplitude: 1},
		{RatePerSec: 10, DiurnalAmplitude: 0.5}, // amplitude without period
		{RatePerSec: 10, BurstEvery: -time.Second},
		{RatePerSec: 10, BurstEvery: time.Second}, // burst without duration
		{RatePerSec: 10, BurstEvery: time.Second, BurstDuration: 2 * time.Second, BurstFactor: 2},    // duration ≥ every
		{RatePerSec: 10, BurstEvery: time.Second, BurstDuration: time.Millisecond, BurstFactor: 0.5}, // factor < 1
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) passed Validate", i, s)
		}
	}
	ok := DefaultArrivals(100)
	if err := ok.Validate(); err != nil {
		t.Errorf("DefaultArrivals failed Validate: %v", err)
	}
}
