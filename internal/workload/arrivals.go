package workload

import (
	"fmt"
	"math"
	"time"

	"hybridstore/internal/simclock"
)

// ArrivalSpec describes an open-loop query-arrival process on the simulated
// timeline: a Poisson stream whose instantaneous rate is modulated by a
// diurnal curve and punctuated by periodic flash-crowd bursts. Open-loop
// means arrivals do not wait for the system — offered load keeps coming at
// the specified rate whether or not the serving tier keeps up, which is
// what makes queueing (and tail latency under saturation) visible.
//
// Everything is driven by Seed through simclock.RNG: the same spec always
// produces the same arrival instants.
type ArrivalSpec struct {
	// RatePerSec is the base mean arrival rate λ in queries per simulated
	// second. Must be positive.
	RatePerSec float64
	// DiurnalAmplitude in [0, 1) swings the rate sinusoidally between
	// λ(1−A) and λ(1+A) over DiurnalPeriod — the scaled-down analogue of a
	// search engine's day/night traffic curve. Zero disables modulation.
	DiurnalAmplitude float64
	// DiurnalPeriod is the period of the diurnal curve. Required when
	// DiurnalAmplitude > 0.
	DiurnalPeriod time.Duration
	// BurstEvery injects a flash crowd every BurstEvery of simulated time
	// (the first starting at BurstEvery, not at zero). Zero disables
	// bursts.
	BurstEvery time.Duration
	// BurstDuration is how long each flash crowd lasts.
	BurstDuration time.Duration
	// BurstFactor multiplies the instantaneous rate during a burst
	// (must be >= 1 when bursts are enabled).
	BurstFactor float64
	// Seed drives the Poisson draws.
	Seed uint64
}

// DefaultArrivals returns a plain Poisson process at the given rate with a
// gentle diurnal swing (±25% over 10 simulated seconds) and no bursts.
func DefaultArrivals(ratePerSec float64) ArrivalSpec {
	return ArrivalSpec{
		RatePerSec:       ratePerSec,
		DiurnalAmplitude: 0.25,
		DiurnalPeriod:    10 * time.Second,
		Seed:             0xA4471,
	}
}

// Validate reports whether the spec is internally consistent.
func (s ArrivalSpec) Validate() error {
	switch {
	case s.RatePerSec <= 0 || math.IsNaN(s.RatePerSec) || math.IsInf(s.RatePerSec, 0):
		return fmt.Errorf("workload: arrival RatePerSec = %v", s.RatePerSec)
	case s.DiurnalAmplitude < 0 || s.DiurnalAmplitude >= 1:
		return fmt.Errorf("workload: DiurnalAmplitude %v outside [0,1)", s.DiurnalAmplitude)
	case s.DiurnalAmplitude > 0 && s.DiurnalPeriod <= 0:
		return fmt.Errorf("workload: DiurnalAmplitude set but DiurnalPeriod = %v", s.DiurnalPeriod)
	case s.BurstEvery < 0:
		return fmt.Errorf("workload: BurstEvery = %v", s.BurstEvery)
	case s.BurstEvery > 0 && (s.BurstDuration <= 0 || s.BurstDuration >= s.BurstEvery):
		return fmt.Errorf("workload: BurstDuration %v outside (0, BurstEvery)", s.BurstDuration)
	case s.BurstEvery > 0 && s.BurstFactor < 1:
		return fmt.Errorf("workload: BurstFactor %v < 1", s.BurstFactor)
	}
	return nil
}

// Rate returns the instantaneous arrival rate at simulated time t, in
// queries per simulated second.
func (s ArrivalSpec) Rate(t time.Duration) float64 {
	r := s.RatePerSec
	if s.DiurnalAmplitude > 0 {
		phase := 2 * math.Pi * float64(t) / float64(s.DiurnalPeriod)
		r *= 1 + s.DiurnalAmplitude*math.Sin(phase)
	}
	if s.inBurst(t) {
		r *= s.BurstFactor
	}
	return r
}

// inBurst reports whether t falls inside a flash-crowd window.
func (s ArrivalSpec) inBurst(t time.Duration) bool {
	if s.BurstEvery <= 0 || t < s.BurstEvery {
		return false
	}
	return t%s.BurstEvery < s.BurstDuration
}

// maxRate bounds Rate over all t, the majorizing rate for thinning.
func (s ArrivalSpec) maxRate() float64 {
	r := s.RatePerSec * (1 + s.DiurnalAmplitude)
	if s.BurstEvery > 0 {
		r *= s.BurstFactor
	}
	return r
}

// Arrivals generates the arrival instants of an ArrivalSpec, in order.
// The non-homogeneous Poisson process is sampled by thinning (Lewis &
// Shedler): candidate gaps are exponential at the majorizing rate and each
// candidate survives with probability Rate(t)/maxRate. Both draws come from
// the spec's own RNG stream, so the process is deterministic.
type Arrivals struct {
	spec ArrivalSpec
	rng  *simclock.RNG
	t    time.Duration
	n    int64
}

// NewArrivals builds a generator for the spec. It panics on invalid specs;
// call Validate first when the spec comes from user input.
func NewArrivals(spec ArrivalSpec) *Arrivals {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Arrivals{spec: spec, rng: simclock.NewRNG(spec.Seed).Split(7)}
}

// Next returns the next absolute arrival time. Arrival times are strictly
// increasing.
func (a *Arrivals) Next() time.Duration {
	lambdaMax := a.spec.maxRate()
	for {
		// Exponential gap at the majorizing rate. 1−U avoids log(0);
		// the max(1ns) keeps arrivals strictly increasing even when the
		// gap rounds to zero nanoseconds at extreme rates.
		u := a.rng.Float64()
		gap := time.Duration(-math.Log(1-u) / lambdaMax * float64(time.Second))
		if gap < 1 {
			gap = 1
		}
		a.t += gap
		if a.rng.Float64()*lambdaMax <= a.spec.Rate(a.t) {
			a.n++
			return a.t
		}
	}
}

// Generated returns how many arrivals Next has produced.
func (a *Arrivals) Generated() int64 { return a.n }
