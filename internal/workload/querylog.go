package workload

import (
	"fmt"

	"hybridstore/internal/simclock"
)

// Query is one search request: a small bag of terms plus a stable identity.
// Identical QueryIDs always carry identical term lists, which is what makes
// result caching meaningful.
type Query struct {
	ID    uint64
	Terms []TermID
}

// Key returns the canonical result-cache key for the query.
func (q Query) Key() uint64 { return q.ID }

// QueryLogSpec describes a synthetic AOL-like query stream.
//
// Two Zipf distributions govern the stream: query identities repeat
// Zipf-fashion (driving the result cache, §II-D "result caching filters out
// repetitions in the query stream"), and the terms inside queries follow
// the collection's term popularity (driving the inverted-list cache).
type QueryLogSpec struct {
	// DistinctQueries is the size of the query population.
	DistinctQueries int
	// QueryExponent is the Zipf exponent of query repetition (AOL ≈ 0.85).
	QueryExponent float64
	// TermExponent is the Zipf exponent of term popularity inside queries.
	TermExponent float64
	// MaxTermsPerQuery bounds query length; lengths are uniform in
	// [1, MaxTermsPerQuery] per query identity (web average ≈ 2.2 terms).
	MaxTermsPerQuery int
	// VocabSize must match the collection the log runs against.
	VocabSize int
	// Seed drives all randomness in the log.
	Seed uint64
}

// DefaultQueryLog returns an AOL-like spec over the given vocabulary.
func DefaultQueryLog(vocabSize int) QueryLogSpec {
	return QueryLogSpec{
		DistinctQueries:  200000,
		QueryExponent:    0.85,
		TermExponent:     0.9,
		MaxTermsPerQuery: 3,
		VocabSize:        vocabSize,
		Seed:             0xA01,
	}
}

// Validate reports whether the spec is internally consistent.
func (s QueryLogSpec) Validate() error {
	switch {
	case s.DistinctQueries <= 0:
		return fmt.Errorf("workload: DistinctQueries = %d", s.DistinctQueries)
	case s.QueryExponent <= 0 || s.TermExponent <= 0:
		return fmt.Errorf("workload: exponents must be positive")
	case s.MaxTermsPerQuery < 1:
		return fmt.Errorf("workload: MaxTermsPerQuery = %d", s.MaxTermsPerQuery)
	case s.VocabSize <= 0:
		return fmt.Errorf("workload: VocabSize = %d", s.VocabSize)
	}
	return nil
}

// QueryLog generates an endless deterministic query stream.
type QueryLog struct {
	spec      QueryLogSpec
	queryZipf *Zipf
	termZipf  *Zipf
	cache     map[uint64]Query
	produced  int64
}

// NewQueryLog builds a generator for the spec. It panics on invalid specs;
// call Validate first when the spec comes from user input.
func NewQueryLog(spec QueryLogSpec) *QueryLog {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	rng := simclock.NewRNG(spec.Seed)
	return &QueryLog{
		spec:      spec,
		queryZipf: NewZipf(rng.Split(1), spec.DistinctQueries, spec.QueryExponent),
		termZipf:  NewZipf(rng.Split(2), spec.VocabSize, spec.TermExponent),
		cache:     make(map[uint64]Query),
	}
}

// Next returns the next query in the stream.
func (l *QueryLog) Next() Query {
	l.produced++
	qid := uint64(l.queryZipf.Next())
	return l.QueryByID(qid)
}

// QueryByID materializes the fixed term list of query qid. The terms are a
// pure function of (spec, qid): the popularity rank of each term is drawn
// from the term Zipf using a per-query RNG.
func (l *QueryLog) QueryByID(qid uint64) Query {
	if q, ok := l.cache[qid]; ok {
		return q
	}
	qrng := simclock.NewRNG(l.spec.Seed).Split(qid + 101)
	nTerms := 1 + qrng.Intn(l.spec.MaxTermsPerQuery)
	terms := make([]TermID, 0, nTerms)
	seen := make(map[TermID]bool, nTerms)
	for len(terms) < nTerms {
		t := TermID(l.termZipf.Sample(qrng))
		if !seen[t] {
			seen[t] = true
			terms = append(terms, t)
		}
		if len(seen) >= l.spec.VocabSize {
			break
		}
	}
	q := Query{ID: qid, Terms: terms}
	l.cache[qid] = q
	return q
}

// Produced returns how many queries Next has handed out.
func (l *QueryLog) Produced() int64 { return l.produced }

// TermFrequencies runs n queries through a fresh copy of the log and tallies
// how often each term is accessed — the Fig 3(b) distribution.
func (l *QueryLog) TermFrequencies(n int) []int64 {
	fresh := NewQueryLog(l.spec)
	counts := make([]int64, l.spec.VocabSize)
	for i := 0; i < n; i++ {
		for _, t := range fresh.Next().Terms {
			counts[t]++
		}
	}
	return counts
}
