package workload

import (
	"strings"
	"testing"
)

const sampleAOL = `AnonID	Query	QueryTime	ItemRank	ClickURL
142	rentdirect.com	2006-03-01 07:17:12
142	staple.com	2006-03-01 17:29:23
217	lottery	2006-03-03 10:01:03
217	lottery	2006-03-03 10:01:08
993	cheap flights to boston	2006-03-05 11:18:29
993	-	2006-03-05 11:19:00
`

func TestParseAOLBasic(t *testing.T) {
	qs, err := ParseAOL(strings.NewReader(sampleAOL),
		AOLParseOptions{VocabSize: 1000, SkipHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 5 { // "-" line dropped
		t.Fatalf("parsed %d queries", len(qs))
	}
	// Identical query strings must share an ID (result-cache repetitions).
	if qs[2].ID != qs[3].ID {
		t.Fatal("repeated query got different IDs")
	}
	if qs[0].ID == qs[1].ID {
		t.Fatal("distinct queries share an ID")
	}
	// Multi-token query is truncated to MaxTermsPerQuery (default 3).
	if len(qs[4].Terms) != 3 {
		t.Fatalf("'cheap flights to boston' -> %d terms", len(qs[4].Terms))
	}
	for _, q := range qs {
		for _, term := range q.Terms {
			if int(term) < 0 || int(term) >= 1000 {
				t.Fatalf("term %d outside vocab", term)
			}
		}
	}
}

func TestParseAOLTokenStability(t *testing.T) {
	in := "1\tlottery numbers\t-\n2\tlottery results\t-\n"
	qs, err := ParseAOL(strings.NewReader(in), AOLParseOptions{VocabSize: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Terms[0] != qs[1].Terms[0] {
		t.Fatal("shared token 'lottery' mapped to different terms")
	}
}

func TestParseAOLLimit(t *testing.T) {
	in := "1\ta\t-\n2\tb\t-\n3\tc\t-\n"
	qs, err := ParseAOL(strings.NewReader(in), AOLParseOptions{VocabSize: 100, Limit: 2})
	if err != nil || len(qs) != 2 {
		t.Fatalf("limit: %d, %v", len(qs), err)
	}
}

func TestParseAOLCaseFolding(t *testing.T) {
	in := "1\tLottery\t-\n2\tlottery\t-\n"
	qs, err := ParseAOL(strings.NewReader(in), AOLParseOptions{VocabSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].ID != qs[1].ID {
		t.Fatal("case-folded duplicates got different IDs")
	}
}

func TestParseAOLValidation(t *testing.T) {
	if _, err := ParseAOL(strings.NewReader("x"), AOLParseOptions{}); err == nil {
		t.Fatal("zero vocab accepted")
	}
}

func TestParseAOLDuplicateTokens(t *testing.T) {
	in := "1\tnew york new york\t-\n"
	qs, err := ParseAOL(strings.NewReader(in), AOLParseOptions{VocabSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs[0].Terms) != 2 {
		t.Fatalf("duplicate tokens not deduped: %d terms", len(qs[0].Terms))
	}
}

func TestReplayLogCycles(t *testing.T) {
	qs := []Query{{ID: 1}, {ID: 2}, {ID: 3}}
	l := NewReplayLog(qs)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	got := []uint64{}
	for i := 0; i < 7; i++ {
		got = append(got, l.Next().ID)
	}
	want := []uint64{1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
	if l.Produced() != 7 {
		t.Fatalf("Produced = %d", l.Produced())
	}
}

func TestReplayLogEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty replay log accepted")
		}
	}()
	NewReplayLog(nil)
}

func TestFNVStable(t *testing.T) {
	// Guard the hash against accidental changes: query IDs derived from
	// it are persisted by cache-mapping snapshots.
	if fnv64("lottery") != fnv64("lottery") {
		t.Fatal("hash unstable")
	}
	if fnv64("") != 14695981039346656037 {
		t.Fatalf("FNV offset basis wrong: %d", fnv64(""))
	}
}
