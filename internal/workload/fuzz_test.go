package workload

import (
	"strings"
	"testing"
)

// FuzzParseAOL checks the AOL log parser never panics and maps every
// accepted query into the configured term space.
func FuzzParseAOL(f *testing.F) {
	f.Add("1\tlottery\t2006-03-03 10:01:03\n")
	f.Add("AnonID\tQuery\tQueryTime\n1\tcheap flights\t-\n")
	f.Add("no tabs here\n\t\t\t\n")
	f.Add("1\t-\t-\n")
	f.Fuzz(func(t *testing.T, input string) {
		qs, err := ParseAOL(strings.NewReader(input), AOLParseOptions{
			VocabSize: 500, MaxTermsPerQuery: 3, Limit: 200,
		})
		if err != nil {
			return
		}
		for _, q := range qs {
			if len(q.Terms) == 0 || len(q.Terms) > 3 {
				t.Fatalf("query with %d terms accepted", len(q.Terms))
			}
			for _, term := range q.Terms {
				if int(term) < 0 || int(term) >= 500 {
					t.Fatalf("term %d outside vocab", term)
				}
			}
		}
	})
}
