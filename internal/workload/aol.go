package workload

// AOL query-log import. The paper drives its evaluation with the AOL
// query collection (Table II). ParseAOL reads the collection's
// tab-separated format —
//
//	AnonID\tQuery\tQueryTime[\tItemRank\tClickURL]
//
// — and maps each textual query onto the reproduction's term space:
// identical query strings get identical query IDs (result-cache
// repetitions survive), and each distinct token hashes to a stable term
// ID within the vocabulary (so token reuse across queries drives the
// list cache exactly as in the real log).

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// fnv64 is the FNV-1a hash, inlined to keep hashing stable and
// dependency-free.
func fnv64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// AOLParseOptions configures ParseAOL.
type AOLParseOptions struct {
	// VocabSize bounds the term space; tokens hash into [0, VocabSize).
	VocabSize int
	// MaxTermsPerQuery truncates long queries (paper's workload: 1–3).
	MaxTermsPerQuery int
	// Limit stops after this many queries (0 = all).
	Limit int
	// SkipHeader drops the first non-blank line ("AnonID Query ...").
	SkipHeader bool
}

// ParseAOL reads an AOL-format query log and returns the query stream in
// log order. Lines without a query string are skipped.
func ParseAOL(r io.Reader, opts AOLParseOptions) ([]Query, error) {
	if opts.VocabSize <= 0 {
		return nil, fmt.Errorf("workload: ParseAOL needs VocabSize > 0")
	}
	if opts.MaxTermsPerQuery <= 0 {
		opts.MaxTermsPerQuery = 3
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	var out []Query
	header := opts.SkipHeader
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if header {
			header = false
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			continue
		}
		text := strings.TrimSpace(strings.ToLower(fields[1]))
		if text == "" || text == "-" {
			continue
		}
		q := queryFromText(text, opts.VocabSize, opts.MaxTermsPerQuery)
		if len(q.Terms) == 0 {
			continue
		}
		out = append(out, q)
		if opts.Limit > 0 && len(out) >= opts.Limit {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading AOL input: %w", err)
	}
	return out, nil
}

// queryFromText maps a query string onto the synthetic term space.
func queryFromText(text string, vocabSize, maxTerms int) Query {
	qid := fnv64(text)
	tokens := strings.Fields(text)
	terms := make([]TermID, 0, maxTerms)
	seen := make(map[TermID]bool, maxTerms)
	for _, tok := range tokens {
		t := TermID(fnv64(tok) % uint64(vocabSize))
		if seen[t] {
			continue
		}
		seen[t] = true
		terms = append(terms, t)
		if len(terms) >= maxTerms {
			break
		}
	}
	return Query{ID: qid, Terms: terms}
}

// ReplayLog wraps a fixed query slice as a stream with the same interface
// shape as QueryLog: Next cycles through the slice (wrapping around), so
// experiments can run more queries than the trace holds.
type ReplayLog struct {
	queries  []Query
	pos      int
	produced int64
}

// NewReplayLog wraps queries; it panics on an empty slice.
func NewReplayLog(queries []Query) *ReplayLog {
	if len(queries) == 0 {
		panic("workload: empty replay log")
	}
	return &ReplayLog{queries: queries}
}

// Next returns the next query, wrapping at the end of the trace.
func (l *ReplayLog) Next() Query {
	q := l.queries[l.pos]
	l.pos = (l.pos + 1) % len(l.queries)
	l.produced++
	return q
}

// Len returns the trace length.
func (l *ReplayLog) Len() int { return len(l.queries) }

// Produced returns how many queries Next has handed out.
func (l *ReplayLog) Produced() int64 { return l.produced }
