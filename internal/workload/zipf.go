// Package workload synthesizes the inputs the paper takes from real data
// sets: a document collection shaped like enwiki, a query log shaped like
// the AOL log, and the per-term utilization-rate model of Fig 3.
//
// All generation is driven by simclock.RNG seeds, so a workload is fully
// determined by its spec — two runs over the same spec replay identical
// queries against identical indexes.
package workload

import (
	"math"

	"hybridstore/internal/simclock"
)

// Zipf samples ranks 0..N-1 with probability proportional to
// 1/(rank+1)^S, the access-frequency law the paper observes for search
// terms (§III: "the access frequency of terms follows Zipf-like
// distribution").
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i)
	rng *simclock.RNG
}

// NewZipf builds a sampler over n ranks with exponent s (s > 0). Typical
// search workloads use s in [0.6, 1.1].
func NewZipf(rng *simclock.RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf needs n > 0")
	}
	if s <= 0 {
		panic("workload: Zipf needs s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against float round-down
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next samples one rank in [0, N) using the sampler's own RNG.
func (z *Zipf) Next() int { return z.Sample(z.rng) }

// Sample draws one rank using the provided RNG, leaving the sampler's own
// stream untouched. This lets many deterministic sub-streams share one
// precomputed distribution.
func (z *Zipf) Sample(rng *simclock.RNG) int {
	u := rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Probability returns the sampling probability of the given rank.
func (z *Zipf) Probability(rank int) float64 {
	if rank < 0 || rank >= len(z.cdf) {
		panic("workload: rank out of range")
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}
