package workload

import (
	"fmt"
	"math"

	"hybridstore/internal/simclock"
)

// TermID identifies a vocabulary term, assigned in descending collection
// popularity: term 0 has the longest inverted list.
type TermID int32

// CollectionSpec describes a synthetic document collection. The shape
// mirrors what the paper's index over enwiki exhibits: document frequencies
// follow a power law in term rank, so inverted-list sizes span several
// orders of magnitude (Fig 3).
type CollectionSpec struct {
	// NumDocs is the collection size (paper: up to 5,000,000).
	NumDocs int
	// VocabSize is the number of distinct indexed terms.
	VocabSize int
	// DFExponent shapes document frequency: df(rank r) ≈ MaxDF/(r+1)^DFExponent.
	DFExponent float64
	// MaxDFShare is the fraction of documents containing the most popular
	// term (df of rank 0 = MaxDFShare × NumDocs).
	MaxDFShare float64
	// MaxTF is the largest within-document term frequency.
	MaxTF int
	// Seed drives all randomness derived from the collection.
	Seed uint64
}

// DefaultCollection returns an enwiki-like spec over numDocs documents.
func DefaultCollection(numDocs int) CollectionSpec {
	return CollectionSpec{
		NumDocs:    numDocs,
		VocabSize:  10000,
		DFExponent: 0.9,
		MaxDFShare: 0.10,
		MaxTF:      255,
		Seed:       0x5eed,
	}
}

// Validate reports whether the spec is internally consistent.
func (s CollectionSpec) Validate() error {
	switch {
	case s.NumDocs <= 0:
		return fmt.Errorf("workload: NumDocs = %d", s.NumDocs)
	case s.VocabSize <= 0:
		return fmt.Errorf("workload: VocabSize = %d", s.VocabSize)
	case s.DFExponent <= 0:
		return fmt.Errorf("workload: DFExponent = %v", s.DFExponent)
	case s.MaxDFShare <= 0 || s.MaxDFShare > 1:
		return fmt.Errorf("workload: MaxDFShare = %v", s.MaxDFShare)
	case s.MaxTF < 1:
		return fmt.Errorf("workload: MaxTF = %d", s.MaxTF)
	}
	return nil
}

// DocFreq returns the number of documents containing term t. It is a pure
// function of the spec, so index builders and analytical models agree.
func (s CollectionSpec) DocFreq(t TermID) int {
	if int(t) < 0 || int(t) >= s.VocabSize {
		panic(fmt.Sprintf("workload: term %d out of vocab [0,%d)", t, s.VocabSize))
	}
	maxDF := float64(s.NumDocs) * s.MaxDFShare
	df := int(maxDF / math.Pow(float64(t)+1, s.DFExponent))
	if df < 1 {
		df = 1
	}
	if df > s.NumDocs {
		df = s.NumDocs
	}
	return df
}

// Posting is one entry of an inverted list: a document and the term's
// within-document frequency.
type Posting struct {
	Doc uint32
	TF  uint16
}

// Postings generates term t's inverted list, ordered by decreasing TF —
// the "frequency-sorted" impact order the paper's filtered vector model
// relies on (§VI). Documents are distinct and deterministic per spec.
func (s CollectionSpec) Postings(t TermID) []Posting {
	df := s.DocFreq(t)
	rng := simclock.NewRNG(s.Seed).Split(uint64(t) + 1)
	// A full-period affine walk over [0, NumDocs) yields df distinct docs.
	n := uint64(s.NumDocs)
	start := rng.Uint64() % n
	step := rng.Uint64()%n | 1
	for gcd(step, n) != 1 {
		step += 2
		if step >= n {
			step = 1
		}
	}
	out := make([]Posting, df)
	doc := start
	for i := 0; i < df; i++ {
		out[i] = Posting{Doc: uint32(doc), TF: s.tfAtImpactRank(i, df)}
		doc = (doc + step) % n
	}
	return out
}

// tfAtImpactRank returns the term frequency of the i-th posting in impact
// order: a convex decreasing curve from ~MaxTF down to 1.
func (s CollectionSpec) tfAtImpactRank(i, df int) uint16 {
	frac := 0.0
	if df > 1 {
		frac = float64(i) / float64(df-1)
	}
	tf := float64(s.MaxTF) * math.Pow(1-frac, 2)
	if tf < 1 {
		tf = 1
	}
	return uint16(tf)
}

// ListBytes returns the serialized size of term t's inverted list under the
// index encoding (index.PostingSize bytes per posting). Sizes are what the
// cache manager's efficiency-value computation consumes.
func (s CollectionSpec) ListBytes(t TermID, postingSize int) int64 {
	return int64(s.DocFreq(t)) * int64(postingSize)
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// UtilizationModel gives each term's list utilization rate PU: the fraction
// of the inverted list actually traversed during query processing. The
// paper measures this from the query log (Fig 3a) and feeds it to Formula 1.
//
// The model captures the mechanism behind Fig 3a: popular terms have long
// impact-ordered lists of which early termination reads only a small
// prefix, while rare terms' short lists are read fully.
type UtilizationModel struct {
	spec CollectionSpec
}

// NewUtilizationModel derives the model for a collection.
func NewUtilizationModel(spec CollectionSpec) *UtilizationModel {
	return &UtilizationModel{spec: spec}
}

// PU returns the utilization rate of term t in (0, 1].
func (u *UtilizationModel) PU(t TermID) float64 {
	df := float64(u.spec.DocFreq(t))
	// Early termination examines roughly the postings whose tf clears the
	// top-K threshold; with the quadratic impact curve this is a sublinear
	// share of long lists. Floor at 8 postings: tiny lists are read whole.
	needed := 8 + 40*math.Sqrt(df)/4
	pu := needed / df
	if pu > 1 {
		pu = 1
	}
	if pu < 0.01 {
		pu = 0.01
	}
	return pu
}
