// Package disksim models a mechanical hard disk drive.
//
// The model captures the three HDD properties the paper's evaluation rests
// on: random accesses pay a seek whose cost grows with head travel distance,
// every non-sequential access pays rotational latency, and sequential runs
// stream at the media transfer rate. Timing parameters default to a
// 7200 RPM desktop drive comparable to the WDC WD3200AAJS used in the paper
// (Table II).
//
// Like every device in the reproduction, an HDD stores real bytes and
// charges simulated time on a shared clock.
package disksim

import (
	"math"
	"sync"
	"time"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

// Params configures the drive's timing model.
type Params struct {
	// Capacity is the drive size in bytes.
	Capacity int64
	// RPM is the spindle speed; rotational latency is half a revolution.
	RPM int
	// TrackToTrackSeek is the minimum seek (adjacent track).
	TrackToTrackSeek time.Duration
	// FullStrokeSeek is the maximum seek (across the whole platter).
	FullStrokeSeek time.Duration
	// BytesPerSecond is the sustained media transfer rate.
	BytesPerSecond int64
	// CommandOverhead is fixed controller/processing time per request.
	CommandOverhead time.Duration
}

// DefaultParams returns WD3200AAJS-like timing: 7200 RPM, ~0.8 ms
// track-to-track, ~17 ms full stroke (≈8.9 ms average seek), 90 MB/s.
func DefaultParams(capacity int64) Params {
	return Params{
		Capacity:         capacity,
		RPM:              7200,
		TrackToTrackSeek: 800 * time.Microsecond,
		FullStrokeSeek:   17 * time.Millisecond,
		BytesPerSecond:   90 << 20,
		CommandOverhead:  100 * time.Microsecond,
	}
}

// HDD is a simulated hard disk drive implementing storage.Device.
type HDD struct {
	mu    sync.Mutex
	name  string
	clock *simclock.Clock
	buf   *storage.SparseBuffer
	p     Params

	headPos   int64 // byte offset the head is positioned after the last op
	nextSeq   int64 // offset that would continue the current sequential run
	halfRot   time.Duration
	nsPerByte float64

	stats   storage.DeviceStats
	seqHits int64 // requests serviced without a seek
	onOp    func(storage.Op)
}

// New builds a drive with the given parameters on the shared clock.
func New(name string, clock *simclock.Clock, p Params) *HDD {
	if p.Capacity <= 0 {
		panic("disksim: non-positive capacity")
	}
	if p.RPM <= 0 {
		p.RPM = 7200
	}
	if p.BytesPerSecond <= 0 {
		p.BytesPerSecond = 90 << 20
	}
	if p.FullStrokeSeek == 0 {
		p.FullStrokeSeek = 17 * time.Millisecond
	}
	if p.TrackToTrackSeek == 0 {
		p.TrackToTrackSeek = 800 * time.Microsecond
	}
	rotation := time.Duration(float64(time.Minute) / float64(p.RPM))
	return &HDD{
		name:      name,
		clock:     clock,
		buf:       storage.NewSparseBuffer(p.Capacity),
		p:         p,
		nextSeq:   -1,
		halfRot:   rotation / 2,
		nsPerByte: float64(time.Second) / float64(p.BytesPerSecond),
	}
}

// Name implements storage.Device.
func (d *HDD) Name() string { return d.name }

// Size implements storage.Device.
func (d *HDD) Size() int64 { return d.p.Capacity }

// SetOpHook installs a callback invoked after every completed operation.
func (d *HDD) SetOpHook(fn func(storage.Op)) {
	d.mu.Lock()
	d.onOp = fn
	d.mu.Unlock()
}

// seekTime returns the head-travel cost for moving distance bytes,
// using the standard concave (square-root) seek curve.
func (d *HDD) seekTime(distance int64) time.Duration {
	if distance == 0 {
		return 0
	}
	frac := float64(distance) / float64(d.p.Capacity)
	span := float64(d.p.FullStrokeSeek - d.p.TrackToTrackSeek)
	return d.p.TrackToTrackSeek + time.Duration(span*math.Sqrt(frac))
}

// cost computes and accounts the service time for a request at off of n
// bytes, split into mechanical positioning (seek + rotation) and transfer
// (command overhead + media streaming) so the two phases can be attributed
// separately on the clock. The caller holds d.mu.
func (d *HDD) cost(off int64, n int) (seekLat, xferLat time.Duration, seek bool) {
	xferLat = d.p.CommandOverhead
	if off == d.nextSeq {
		// Sequential continuation: the head is already in position and the
		// target sector is passing under it; only transfer time applies.
		d.seqHits++
	} else {
		seek = true
		dist := off - d.headPos
		if dist < 0 {
			dist = -dist
		}
		seekLat = d.seekTime(dist) + d.halfRot
	}
	xferLat += time.Duration(float64(n) * d.nsPerByte)
	d.headPos = off + int64(n)
	d.nextSeq = off + int64(n)
	return seekLat, xferLat, seek
}

// charge advances the clock by the two cost phases under their attribution
// labels and returns the combined service time.
func (d *HDD) charge(seekLat, xferLat time.Duration) time.Duration {
	if seekLat > 0 {
		d.clock.AdvanceAttr(seekLat, simclock.CompHDDSeek)
	}
	d.clock.AdvanceAttr(xferLat, simclock.CompHDDTransfer)
	return seekLat + xferLat
}

// ReadAt implements storage.Device.
func (d *HDD) ReadAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.p.Capacity, off, len(p)); err != nil {
		return 0, err
	}
	d.buf.ReadAt(p, off)
	seekLat, xferLat, seek := d.cost(off, len(p))
	lat := d.charge(seekLat, xferLat)
	d.record(storage.OpRead, off, len(p), lat, seek)
	return lat, nil
}

// WriteAt implements storage.Device.
func (d *HDD) WriteAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.p.Capacity, off, len(p)); err != nil {
		return 0, err
	}
	d.buf.WriteAt(p, off)
	seekLat, xferLat, seek := d.cost(off, len(p))
	lat := d.charge(seekLat, xferLat)
	d.record(storage.OpWrite, off, len(p), lat, seek)
	return lat, nil
}

func (d *HDD) record(kind storage.OpKind, off int64, n int, lat time.Duration, seek bool) {
	d.stats.Record(kind, n, lat)
	if d.onOp != nil {
		d.onOp(storage.Op{Device: d.name, Kind: kind, Offset: off, Len: n, Latency: lat, Seek: seek})
	}
}

// Stats returns a snapshot of the operation counters.
func (d *HDD) Stats() storage.DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SequentialHits returns how many requests continued a sequential run and
// therefore paid no seek or rotational latency.
func (d *HDD) SequentialHits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seqHits
}
