package disksim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

func newTestHDD(t *testing.T) (*HDD, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	return New("hdd", clk, DefaultParams(1<<30)), clk
}

func TestHDDReadBackWrite(t *testing.T) {
	d, _ := newTestHDD(t)
	data := []byte("index bytes")
	if _, err := d.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestHDDRandomSlowerThanSequential(t *testing.T) {
	d, _ := newTestHDD(t)
	// Prime head position.
	d.ReadAt(make([]byte, 4096), 0)
	seq, _ := d.ReadAt(make([]byte, 4096), 4096) // continues the run
	rnd, _ := d.ReadAt(make([]byte, 4096), 512<<20)
	if seq >= rnd {
		t.Fatalf("sequential read (%v) not faster than random (%v)", seq, rnd)
	}
	// Sequential read should be close to pure transfer + overhead (well
	// under a half rotation of 4.17 ms).
	if seq > 2*time.Millisecond {
		t.Fatalf("sequential read suspiciously slow: %v", seq)
	}
}

func TestHDDSeekGrowsWithDistance(t *testing.T) {
	d, _ := newTestHDD(t)
	d.ReadAt(make([]byte, 512), 0)
	near, _ := d.ReadAt(make([]byte, 512), 1<<20)
	d.ReadAt(make([]byte, 512), 0)
	far, _ := d.ReadAt(make([]byte, 512), 900<<20)
	if near >= far {
		t.Fatalf("near seek (%v) not cheaper than far seek (%v)", near, far)
	}
}

func TestHDDSequentialHitTracking(t *testing.T) {
	d, _ := newTestHDD(t)
	d.WriteAt(make([]byte, 1024), 0)
	d.WriteAt(make([]byte, 1024), 1024) // sequential
	d.WriteAt(make([]byte, 1024), 1<<20)
	if got := d.SequentialHits(); got != 1 {
		t.Fatalf("SequentialHits = %d, want 1", got)
	}
}

func TestHDDClockAdvances(t *testing.T) {
	d, clk := newTestHDD(t)
	lat, _ := d.ReadAt(make([]byte, 4096), 12345)
	if clk.Now() != lat {
		t.Fatalf("clock %v != latency %v", clk.Now(), lat)
	}
}

func TestHDDOutOfRange(t *testing.T) {
	d, _ := newTestHDD(t)
	if _, err := d.ReadAt(make([]byte, 10), d.Size()); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.WriteAt(make([]byte, 10), -1); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestHDDStats(t *testing.T) {
	d, _ := newTestHDD(t)
	d.WriteAt(make([]byte, 100), 0)
	d.ReadAt(make([]byte, 50), 0)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BytesRead != 50 || s.BytesWrit != 100 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgAccessTime() <= 0 {
		t.Fatal("avg access time not positive")
	}
}

func TestHDDOpHook(t *testing.T) {
	d, _ := newTestHDD(t)
	var ops []storage.Op
	d.SetOpHook(func(op storage.Op) { ops = append(ops, op) })
	d.ReadAt(make([]byte, 10), 777)
	if len(ops) != 1 || ops[0].Offset != 777 || ops[0].Kind != storage.OpRead {
		t.Fatalf("hook saw %+v", ops)
	}
}

func TestHDDTransferDominatesLargeSequential(t *testing.T) {
	// A 90 MB/s drive should take roughly 1.1-1.2s to stream 100 MiB
	// sequentially; verify the model is bandwidth-limited, not seek-limited.
	clk := simclock.New()
	d := New("hdd", clk, DefaultParams(1<<30))
	const chunk = 1 << 20
	var off int64
	for i := 0; i < 100; i++ {
		d.ReadAt(make([]byte, chunk), off)
		off += chunk
	}
	elapsed := clk.Now()
	if elapsed < time.Second || elapsed > 2*time.Second {
		t.Fatalf("100 MiB sequential stream took %v, want ~1.2s", elapsed)
	}
}

func TestHDDRandomIOPSRealistic(t *testing.T) {
	// Random 4 KiB reads on a 7200 RPM drive run at roughly 70-120 IOPS.
	clk := simclock.New()
	d := New("hdd", clk, DefaultParams(200<<30))
	rng := simclock.NewRNG(1)
	const n = 200
	for i := 0; i < n; i++ {
		off := int64(rng.Intn(1 << 30))
		d.ReadAt(make([]byte, 4096), off)
	}
	iops := float64(n) / clk.Now().Seconds()
	if iops < 50 || iops > 200 {
		t.Fatalf("random-read IOPS = %.0f, want 50-200", iops)
	}
}

func TestHDDDefaultsApplied(t *testing.T) {
	clk := simclock.New()
	d := New("hdd", clk, Params{Capacity: 1 << 20})
	lat, err := d.ReadAt(make([]byte, 512), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("defaulted drive returned zero latency")
	}
}

func TestHDDZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	New("hdd", simclock.New(), Params{})
}
