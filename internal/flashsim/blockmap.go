package flashsim

import (
	"fmt"
	"sync"
	"time"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

// BlockSSD is a solid state drive behind a block-mapped FTL (§II-A, [7]):
// the mapping table holds one entry per erase block instead of per page,
// trading SRAM footprint for write behaviour. A logical page must live at
// its fixed offset inside the mapped physical block, so overwriting any
// page forces a block merge — copy every other valid page into a fresh
// block, then erase the old one. Random small writes are catastrophic,
// which is exactly why the paper baselines on the page-mapped ideal and
// why log-structured cache placement matters.
//
// BlockSSD implements storage.Device and storage.Trimmer.
type BlockSSD struct {
	mu    sync.Mutex
	name  string
	clock *simclock.Clock
	p     Params

	nand       *nandArray
	l2pBlock   []int32 // logical block -> physical block, -1 unmapped
	p2lBlock   []int32 // physical block -> logical block, -1
	freeBlocks []int

	stats     storage.DeviceStats
	merges    int64
	hostPages int64
	onOp      func(storage.Op)
}

// NewBlockMapped builds a block-mapped drive with the same geometry
// semantics as New.
func NewBlockMapped(name string, clock *simclock.Clock, p Params) *BlockSSD {
	if p.PageSize <= 0 || p.PagesPerBlock <= 0 || p.ExportedBlocks <= 0 {
		panic(fmt.Sprintf("flashsim: invalid geometry %+v", p))
	}
	if p.SpareBlocks < 1 {
		panic("flashsim: block-mapped FTL needs at least 1 spare block for merges")
	}
	fillLatencyDefaults(&p)
	totalBlocks := p.ExportedBlocks + p.SpareBlocks
	d := &BlockSSD{
		name:     name,
		clock:    clock,
		p:        p,
		nand:     newNANDArray(p.PageSize, p.PagesPerBlock, totalBlocks),
		l2pBlock: make([]int32, p.ExportedBlocks),
		p2lBlock: make([]int32, totalBlocks),
	}
	for i := range d.l2pBlock {
		d.l2pBlock[i] = -1
	}
	for i := range d.p2lBlock {
		d.p2lBlock[i] = -1
	}
	d.freeBlocks = make([]int, totalBlocks)
	for i := range d.freeBlocks {
		d.freeBlocks[i] = totalBlocks - 1 - i
	}
	return d
}

func fillLatencyDefaults(p *Params) {
	if p.PageReadLatency == 0 {
		p.PageReadLatency = 32725 * time.Nanosecond
	}
	if p.PageWriteLatency == 0 {
		p.PageWriteLatency = 101475 * time.Nanosecond
	}
	if p.BlockEraseLatency == 0 {
		p.BlockEraseLatency = 1500 * time.Microsecond
	}
}

// Name implements storage.Device.
func (d *BlockSSD) Name() string { return d.name }

// Size implements storage.Device.
func (d *BlockSSD) Size() int64 {
	return int64(d.p.ExportedBlocks) * d.nand.blockBytes()
}

// SetOpHook installs a callback invoked after every host operation.
func (d *BlockSSD) SetOpHook(fn func(storage.Op)) {
	d.mu.Lock()
	d.onOp = fn
	d.mu.Unlock()
}

// physPage returns the physical page of logical page lp, or -1.
func (d *BlockSSD) physPage(lp int64) int32 {
	lb := int(lp) / d.p.PagesPerBlock
	pb := d.l2pBlock[lb]
	if pb < 0 {
		return -1
	}
	return pb*int32(d.p.PagesPerBlock) + int32(int(lp)%d.p.PagesPerBlock)
}

// ReadAt implements storage.Device.
func (d *BlockSSD) ReadAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.Size(), off, len(p)); err != nil {
		return 0, err
	}
	var lat time.Duration
	remaining := p
	pos := off
	for len(remaining) > 0 {
		lp := pos / int64(d.p.PageSize)
		po := pos % int64(d.p.PageSize)
		n := int64(d.p.PageSize) - po
		if int64(len(remaining)) < n {
			n = int64(len(remaining))
		}
		if phys := d.physPage(lp); phys >= 0 && d.nand.pageState[phys] == pageValid {
			d.nand.data.ReadAt(remaining[:n], d.nand.physOffset(phys)+po)
			d.nand.reads++
		} else {
			for i := int64(0); i < n; i++ {
				remaining[i] = 0
			}
		}
		lat += d.p.PageReadLatency
		remaining = remaining[n:]
		pos += n
	}
	d.clock.AdvanceAttr(lat, simclock.CompSSDRead)
	d.stats.Record(storage.OpRead, len(p), lat)
	d.emit(storage.Op{Device: d.name, Kind: storage.OpRead, Offset: off, Len: len(p), Latency: lat})
	return lat, nil
}

// WriteAt implements storage.Device.
func (d *BlockSSD) WriteAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.Size(), off, len(p)); err != nil {
		return 0, err
	}
	var lat time.Duration
	remaining := p
	pos := off
	pageBuf := make([]byte, d.p.PageSize)
	for len(remaining) > 0 {
		lp := pos / int64(d.p.PageSize)
		po := pos % int64(d.p.PageSize)
		n := int64(d.p.PageSize) - po
		if int64(len(remaining)) < n {
			n = int64(len(remaining))
		}
		if po != 0 || n != int64(d.p.PageSize) {
			// Partial page: read-modify-write of the whole page.
			if phys := d.physPage(lp); phys >= 0 && d.nand.pageState[phys] == pageValid {
				d.nand.readPage(phys, pageBuf)
				lat += d.p.PageReadLatency
			} else {
				clearBuf(pageBuf)
			}
			copy(pageBuf[po:po+n], remaining[:n])
		} else {
			copy(pageBuf, remaining[:n])
		}
		lat += d.writePage(lp, pageBuf)
		remaining = remaining[n:]
		pos += n
	}
	d.clock.AdvanceAttr(lat, simclock.CompSSDProgram)
	d.stats.Record(storage.OpWrite, len(p), lat)
	d.emit(storage.Op{Device: d.name, Kind: storage.OpWrite, Offset: off, Len: len(p), Latency: lat})
	return lat, nil
}

// writePage stores one whole logical page under block mapping. Caller
// holds d.mu.
func (d *BlockSSD) writePage(lp int64, content []byte) time.Duration {
	lb := int(lp) / d.p.PagesPerBlock
	slot := int(lp) % d.p.PagesPerBlock
	pb := d.l2pBlock[lb]
	d.hostPages++

	if pb < 0 {
		// First write to this logical block: map a free block.
		pb = int32(d.takeFree())
		d.l2pBlock[lb] = pb
		d.p2lBlock[pb] = int32(lb)
	}
	phys := pb*int32(d.p.PagesPerBlock) + int32(slot)
	if d.nand.pageState[phys] == pageFree {
		d.nand.programPage(phys, content)
		return d.p.PageWriteLatency
	}
	// The slot is taken: merge into a fresh block, substituting the new
	// content for the overwritten page.
	return d.merge(lb, slot, content)
}

// merge copies the logical block's valid pages into a fresh physical
// block, replacing slot with content, then erases the old block. Caller
// holds d.mu.
func (d *BlockSSD) merge(lb, slot int, content []byte) time.Duration {
	d.merges++
	oldPB := d.l2pBlock[lb]
	newPB := int32(d.takeFree())
	var lat time.Duration
	pageBuf := make([]byte, d.p.PageSize)
	for i := 0; i < d.p.PagesPerBlock; i++ {
		dst := newPB*int32(d.p.PagesPerBlock) + int32(i)
		if i == slot {
			d.nand.programPage(dst, content)
			lat += d.p.PageWriteLatency
			continue
		}
		src := oldPB*int32(d.p.PagesPerBlock) + int32(i)
		if d.nand.pageState[src] != pageValid {
			continue
		}
		d.nand.readPage(src, pageBuf)
		d.nand.programPage(dst, pageBuf)
		lat += d.p.PageReadLatency + d.p.PageWriteLatency
	}
	d.nand.eraseBlock(int(oldPB))
	lat += d.p.BlockEraseLatency
	d.stats.Record(storage.OpErase, int(d.nand.blockBytes()), d.p.BlockEraseLatency)
	d.p2lBlock[oldPB] = -1
	d.freeBlocks = append(d.freeBlocks, int(oldPB))
	d.l2pBlock[lb] = newPB
	d.p2lBlock[newPB] = int32(lb)
	return lat
}

func (d *BlockSSD) takeFree() int {
	if len(d.freeBlocks) == 0 {
		panic("flashsim: block-mapped FTL out of free blocks")
	}
	b := d.freeBlocks[len(d.freeBlocks)-1]
	d.freeBlocks = d.freeBlocks[:len(d.freeBlocks)-1]
	return b
}

// Trim implements storage.Trimmer: covered pages are invalidated; a fully
// invalid block is unmapped and erased lazily at next merge... block
// mapping cannot reclaim single pages, so whole-block trims erase eagerly.
func (d *BlockSSD) Trim(off, n int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.Size(), off, int(n)); err != nil {
		return 0, err
	}
	var lat time.Duration
	pageSize := int64(d.p.PageSize)
	for pos := off; pos < off+n; {
		lp := pos / pageSize
		po := pos % pageSize
		span := pageSize - po
		if off+n-pos < span {
			span = off + n - pos
		}
		if po == 0 && span == pageSize {
			if phys := d.physPage(lp); phys >= 0 {
				d.nand.invalidatePage(phys)
				lb := int(lp) / d.p.PagesPerBlock
				pb := d.l2pBlock[lb]
				if pb >= 0 && d.nand.blockValid[pb] == 0 {
					d.nand.eraseBlock(int(pb))
					lat += d.p.BlockEraseLatency
					d.stats.Record(storage.OpErase, int(d.nand.blockBytes()), d.p.BlockEraseLatency)
					d.p2lBlock[pb] = -1
					d.l2pBlock[lb] = -1
					d.freeBlocks = append(d.freeBlocks, int(pb))
				}
			}
		}
		pos += span
	}
	lat += 10 * time.Microsecond
	d.clock.AdvanceAttr(lat, simclock.CompSSDProgram)
	d.stats.Record(storage.OpTrim, int(n), lat)
	d.emit(storage.Op{Device: d.name, Kind: storage.OpTrim, Offset: off, Len: int(n), Latency: lat})
	return lat, nil
}

func (d *BlockSSD) emit(op storage.Op) {
	if d.onOp != nil {
		d.onOp(op)
	}
}

// Stats returns host-visible operation counters.
func (d *BlockSSD) Stats() storage.DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Wear returns wear and merge counters (GCRuns reports merges).
func (d *BlockSSD) Wear() WearStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	total, maxE := d.nand.wearSummary()
	wa := 0.0
	if d.hostPages > 0 {
		wa = float64(d.nand.programs) / float64(d.hostPages)
	}
	return WearStats{
		TotalErases:        total,
		MaxBlockErases:     maxE,
		GCRuns:             d.merges,
		GCPageCopies:       d.nand.programs - d.hostPages,
		HostPagesWritten:   d.hostPages,
		WriteAmplification: wa,
		FreeBlocks:         len(d.freeBlocks),
	}
}

// PageSize returns the NAND page size in bytes.
func (d *BlockSSD) PageSize() int { return d.p.PageSize }

// BlockSize returns the erase-block size in bytes.
func (d *BlockSSD) BlockSize() int64 { return d.nand.blockBytes() }

func clearBuf(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
