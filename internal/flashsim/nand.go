package flashsim

import (
	"fmt"

	"hybridstore/internal/storage"
)

// nandArray models the raw NAND medium shared by every FTL in this
// package: physical pages grouped into erase blocks, with program/read/
// erase mechanics, page states, per-block wear counters and real data
// storage. It charges no time itself — FTLs account latency — and it is
// not safe for concurrent use (the owning device serializes).
type nandArray struct {
	pageSize      int
	pagesPerBlock int
	blocks        int

	data       *storage.SparseBuffer // physical byte space
	pageState  []int8                // pageFree / pageValid / pageInvalid
	blockValid []int                 // valid pages per block
	blockFree  []int                 // free (never-programmed-since-erase) pages per block
	erases     []int64

	totalErases int64
	programs    int64
	reads       int64
}

func newNANDArray(pageSize, pagesPerBlock, blocks int) *nandArray {
	if pageSize <= 0 || pagesPerBlock <= 0 || blocks <= 0 {
		panic(fmt.Sprintf("flashsim: invalid NAND geometry %d/%d/%d", pageSize, pagesPerBlock, blocks))
	}
	n := &nandArray{
		pageSize:      pageSize,
		pagesPerBlock: pagesPerBlock,
		blocks:        blocks,
		pageState:     make([]int8, blocks*pagesPerBlock),
		blockValid:    make([]int, blocks),
		blockFree:     make([]int, blocks),
		erases:        make([]int64, blocks),
	}
	n.data = storage.NewSparseBuffer(int64(blocks) * n.blockBytes())
	for b := range n.blockFree {
		n.blockFree[b] = pagesPerBlock
	}
	return n
}

func (n *nandArray) blockBytes() int64 { return int64(n.pageSize * n.pagesPerBlock) }

func (n *nandArray) physOffset(phys int32) int64 { return int64(phys) * int64(n.pageSize) }

func (n *nandArray) blockOf(phys int32) int { return int(phys) / n.pagesPerBlock }

// readPage copies a physical page into buf (len >= pageSize).
func (n *nandArray) readPage(phys int32, buf []byte) {
	n.data.ReadAt(buf[:n.pageSize], n.physOffset(phys))
	n.reads++
}

// programPage writes content into a free physical page and marks it valid.
// Programming a non-free page panics: NAND cannot overwrite in place, and
// an FTL that tries has a bug.
func (n *nandArray) programPage(phys int32, content []byte) {
	if n.pageState[phys] != pageFree {
		panic(fmt.Sprintf("flashsim: program of non-free page %d (state %d)", phys, n.pageState[phys]))
	}
	n.data.WriteAt(content[:n.pageSize], n.physOffset(phys))
	n.pageState[phys] = pageValid
	b := n.blockOf(phys)
	n.blockValid[b]++
	n.blockFree[b]--
	n.programs++
}

// invalidatePage marks a valid page invalid (its logical content moved or
// was trimmed).
func (n *nandArray) invalidatePage(phys int32) {
	if n.pageState[phys] == pageValid {
		n.pageState[phys] = pageInvalid
		n.blockValid[n.blockOf(phys)]--
	}
}

// eraseBlock resets every page of block b to free and bumps wear.
func (n *nandArray) eraseBlock(b int) {
	base := b * n.pagesPerBlock
	for i := 0; i < n.pagesPerBlock; i++ {
		n.pageState[base+i] = pageFree
	}
	n.data.Zero(int64(b)*n.blockBytes(), n.blockBytes())
	n.blockValid[b] = 0
	n.blockFree[b] = n.pagesPerBlock
	n.erases[b]++
	n.totalErases++
}

// wearSummary folds per-block erase counters.
func (n *nandArray) wearSummary() (total, max int64) {
	for _, e := range n.erases {
		total += e
		if e > max {
			max = e
		}
	}
	return total, max
}
