// Package flashsim simulates a NAND-flash solid state drive behind an ideal
// page-mapping flash translation layer, the FTL baseline the paper adopts
// (§II-A, Table III).
//
// The simulator models what the paper's evaluation measures inside the SSD:
//
//   - a page (2 KB) is the read/program unit, a block (64 pages = 128 KB)
//     is the erase unit;
//   - writes are out-of-place: each logical-page write programs a fresh
//     physical page at the log frontier and invalidates the old copy;
//   - when free blocks run low, greedy garbage collection relocates the
//     valid pages of the block with the fewest valid pages and erases it,
//     charging read+program per relocated page and one erase per block;
//   - Trim invalidates pages without erasing, making future GC cheaper;
//   - per-block erase counts provide the wear metric of Fig 19(a).
//
// Data is stored physically: garbage collection really copies bytes between
// physical pages, so data-integrity-across-GC is a testable invariant rather
// than an assumption.
package flashsim

import (
	"fmt"
	"sync"
	"time"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

// Params configures the simulated drive. The zero value is invalid; start
// from DefaultParams.
type Params struct {
	// PageSize is the NAND page size in bytes (paper: 2 KB).
	PageSize int
	// PagesPerBlock is the erase-block size in pages (paper: 64).
	PagesPerBlock int
	// ExportedBlocks is the number of blocks of logical (user) capacity.
	ExportedBlocks int
	// SpareBlocks is over-provisioned space invisible to the host. Must be
	// at least 2 so garbage collection can always make progress.
	SpareBlocks int
	// PageReadLatency is the cost of reading one page (paper: 32.725 µs).
	PageReadLatency time.Duration
	// PageWriteLatency is the cost of programming one page (paper: 101.475 µs).
	PageWriteLatency time.Duration
	// BlockEraseLatency is the cost of erasing one block (paper: 1.5 ms).
	BlockEraseLatency time.Duration
	// GCLowWater triggers garbage collection when the free-block count
	// drops to this value. Defaults to max(2, SpareBlocks/2).
	GCLowWater int
}

// DefaultParams returns the paper's Table III configuration sized to the
// given logical capacity in bytes (rounded up to whole blocks), with 7%
// over-provisioning like the Intel 320.
func DefaultParams(logicalBytes int64) Params {
	const pageSize = 2 << 10
	const pagesPerBlock = 64
	blockBytes := int64(pageSize * pagesPerBlock)
	blocks := int((logicalBytes + blockBytes - 1) / blockBytes)
	if blocks < 1 {
		blocks = 1
	}
	spare := blocks * 7 / 100
	if spare < 4 {
		spare = 4
	}
	return Params{
		PageSize:          pageSize,
		PagesPerBlock:     pagesPerBlock,
		ExportedBlocks:    blocks,
		SpareBlocks:       spare,
		PageReadLatency:   32725 * time.Nanosecond,
		PageWriteLatency:  101475 * time.Nanosecond,
		BlockEraseLatency: 1500 * time.Microsecond,
	}
}

const (
	pageFree int8 = iota
	pageValid
	pageInvalid
)

// SSD is a simulated flash drive implementing storage.Device and
// storage.Trimmer.
type SSD struct {
	mu    sync.Mutex
	name  string
	clock *simclock.Clock
	p     Params

	logicalPages  int
	physicalPages int
	blockBytes    int64

	nand *nandArray
	l2p  []int32 // logical page -> physical page, -1 unmapped
	p2l  []int32 // physical page -> logical page, -1

	freeBlocks  []int // stack of fully-erased block indices
	activeBlock int   // block currently accepting programs, -1 none
	activeNext  int   // next free page index within activeBlock
	gcLowWater  int

	stats        storage.DeviceStats
	gcPageCopies int64
	gcRuns       int64
	hostPages    int64 // pages programmed on behalf of the host
	onOp         func(storage.Op)
}

// New builds an SSD on the shared clock. It panics on invalid geometry so
// misconfiguration fails loudly at setup time.
func New(name string, clock *simclock.Clock, p Params) *SSD {
	if p.PageSize <= 0 || p.PagesPerBlock <= 0 || p.ExportedBlocks <= 0 {
		panic(fmt.Sprintf("flashsim: invalid geometry %+v", p))
	}
	if p.SpareBlocks < 2 {
		panic("flashsim: need at least 2 spare blocks for GC progress")
	}
	if p.GCLowWater == 0 {
		p.GCLowWater = p.SpareBlocks / 2
		if p.GCLowWater < 2 {
			p.GCLowWater = 2
		}
	}
	if p.PageReadLatency == 0 {
		p.PageReadLatency = 32725 * time.Nanosecond
	}
	if p.PageWriteLatency == 0 {
		p.PageWriteLatency = 101475 * time.Nanosecond
	}
	if p.BlockEraseLatency == 0 {
		p.BlockEraseLatency = 1500 * time.Microsecond
	}
	totalBlocks := p.ExportedBlocks + p.SpareBlocks
	d := &SSD{
		name:          name,
		clock:         clock,
		p:             p,
		logicalPages:  p.ExportedBlocks * p.PagesPerBlock,
		physicalPages: totalBlocks * p.PagesPerBlock,
		blockBytes:    int64(p.PageSize * p.PagesPerBlock),
		nand:          newNANDArray(p.PageSize, p.PagesPerBlock, totalBlocks),
		activeBlock:   -1,
		gcLowWater:    p.GCLowWater,
	}
	d.l2p = make([]int32, d.logicalPages)
	d.p2l = make([]int32, d.physicalPages)
	for i := range d.l2p {
		d.l2p[i] = -1
	}
	for i := range d.p2l {
		d.p2l[i] = -1
	}
	d.freeBlocks = make([]int, totalBlocks)
	for i := range d.freeBlocks {
		d.freeBlocks[i] = totalBlocks - 1 - i // pop order: block 0 first
	}
	return d
}

// Name implements storage.Device.
func (d *SSD) Name() string { return d.name }

// Size implements storage.Device: the logical (exported) capacity.
func (d *SSD) Size() int64 { return int64(d.logicalPages) * int64(d.p.PageSize) }

// SetOpHook installs a callback invoked after every host-visible operation.
func (d *SSD) SetOpHook(fn func(storage.Op)) {
	d.mu.Lock()
	d.onOp = fn
	d.mu.Unlock()
}

// ReadAt implements storage.Device. Cost is one page-read per logical page
// touched; unmapped pages return zeros but still pay the page read (the
// controller cannot know the page is unmapped before the lookup completes
// in an ideal page-mapped FTL we charge the array access uniformly).
func (d *SSD) ReadAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.Size(), off, len(p)); err != nil {
		return 0, err
	}
	var lat time.Duration
	remaining := p
	pos := off
	for len(remaining) > 0 {
		lp := pos / int64(d.p.PageSize)
		po := pos % int64(d.p.PageSize)
		n := int64(d.p.PageSize) - po
		if int64(len(remaining)) < n {
			n = int64(len(remaining))
		}
		phys := d.l2p[lp]
		if phys >= 0 {
			d.nand.data.ReadAt(remaining[:n], d.nand.physOffset(phys)+po)
			d.nand.reads++
		} else {
			for i := int64(0); i < n; i++ {
				remaining[i] = 0
			}
		}
		lat += d.p.PageReadLatency
		remaining = remaining[n:]
		pos += n
	}
	d.clock.AdvanceAttr(lat, simclock.CompSSDRead)
	d.stats.Record(storage.OpRead, len(p), lat)
	d.emit(storage.Op{Device: d.name, Kind: storage.OpRead, Offset: off, Len: len(p), Latency: lat})
	return lat, nil
}

// WriteAt implements storage.Device. Every touched logical page is written
// out-of-place to the log frontier; pages only partially covered by the
// write incur a read-modify-write (one extra page read). Garbage-collection
// work triggered by the write is charged to the write's latency, exactly as
// a host would observe it.
func (d *SSD) WriteAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.Size(), off, len(p)); err != nil {
		return 0, err
	}
	var lat time.Duration
	remaining := p
	pos := off
	pageBuf := make([]byte, d.p.PageSize)
	for len(remaining) > 0 {
		lp := pos / int64(d.p.PageSize)
		po := pos % int64(d.p.PageSize)
		n := int64(d.p.PageSize) - po
		if int64(len(remaining)) < n {
			n = int64(len(remaining))
		}
		old := d.l2p[lp]
		if po != 0 || n != int64(d.p.PageSize) {
			// Partial page: read-modify-write.
			if old >= 0 {
				d.nand.readPage(old, pageBuf)
				lat += d.p.PageReadLatency
			} else {
				for i := range pageBuf {
					pageBuf[i] = 0
				}
			}
			copy(pageBuf[po:po+n], remaining[:n])
		} else {
			copy(pageBuf, remaining[:n])
		}
		lat += d.programPage(lp, pageBuf)
		remaining = remaining[n:]
		pos += n
	}
	d.clock.AdvanceAttr(lat, simclock.CompSSDProgram)
	d.stats.Record(storage.OpWrite, len(p), lat)
	d.emit(storage.Op{Device: d.name, Kind: storage.OpWrite, Offset: off, Len: len(p), Latency: lat})
	return lat, nil
}

// programPage writes one full page of content for logical page lp at the
// log frontier and returns the charged latency (program + any GC work).
// Caller holds d.mu.
func (d *SSD) programPage(lp int64, content []byte) time.Duration {
	lat := d.ensureFrontier()
	phys := int32(d.activeBlock*d.p.PagesPerBlock + d.activeNext)
	d.activeNext++
	d.nand.programPage(phys, content)
	if old := d.l2p[lp]; old >= 0 {
		d.invalidatePhys(old)
	}
	d.l2p[lp] = phys
	d.p2l[phys] = int32(lp)
	d.hostPages++
	return lat + d.p.PageWriteLatency
}

// ensureFrontier guarantees the active block has a free page, opening a new
// block (and running GC when free blocks are scarce) as needed. It returns
// any latency incurred by GC. Caller holds d.mu.
func (d *SSD) ensureFrontier() time.Duration {
	var lat time.Duration
	if d.activeBlock >= 0 && d.activeNext < d.p.PagesPerBlock {
		return 0
	}
	if len(d.freeBlocks) <= d.gcLowWater {
		lat += d.collectGarbage()
	}
	if len(d.freeBlocks) == 0 {
		panic("flashsim: out of free blocks; GC failed to reclaim space")
	}
	d.activeBlock = d.freeBlocks[len(d.freeBlocks)-1]
	d.freeBlocks = d.freeBlocks[:len(d.freeBlocks)-1]
	d.activeNext = 0
	return lat
}

// collectGarbage reclaims blocks until the free count exceeds the low-water
// mark. Victims are chosen greedily (fewest valid pages). Caller holds d.mu.
func (d *SSD) collectGarbage() time.Duration {
	var lat time.Duration
	for len(d.freeBlocks) <= d.gcLowWater {
		victim := d.pickVictim()
		if victim < 0 {
			break // nothing reclaimable; drive is genuinely full of valid data
		}
		d.gcRuns++
		lat += d.relocateAndErase(victim)
	}
	return lat
}

// pickVictim returns the non-active block with the fewest valid pages that
// has at least one reclaimable (non-valid) page, or -1 when none exists.
func (d *SSD) pickVictim() int {
	best := -1
	bestValid := d.p.PagesPerBlock + 1
	inFree := make(map[int]bool, len(d.freeBlocks))
	for _, b := range d.freeBlocks {
		inFree[b] = true
	}
	for b := range d.nand.blockValid {
		if b == d.activeBlock || inFree[b] {
			continue
		}
		if d.nand.blockValid[b] < bestValid {
			bestValid = d.nand.blockValid[b]
			best = b
		}
	}
	if best >= 0 && bestValid == d.p.PagesPerBlock {
		return -1 // every candidate is fully valid; erasing gains nothing
	}
	return best
}

// relocateAndErase moves victim's valid pages to the frontier and erases
// it. Caller holds d.mu.
func (d *SSD) relocateAndErase(victim int) time.Duration {
	var lat time.Duration
	pageBuf := make([]byte, d.p.PageSize)
	base := victim * d.p.PagesPerBlock
	for i := 0; i < d.p.PagesPerBlock; i++ {
		phys := int32(base + i)
		if d.nand.pageState[phys] != pageValid {
			continue
		}
		lp := d.p2l[phys]
		d.nand.readPage(phys, pageBuf)
		lat += d.p.PageReadLatency

		// Program to the frontier. The frontier can never be the victim:
		// the victim is not the active block, and if the active block fills
		// mid-relocation we open a fresh free block (freeBlocks is non-empty
		// because GC only starts with at least one free block and erasing
		// the victim at the end adds another).
		if d.activeBlock < 0 || d.activeNext >= d.p.PagesPerBlock {
			if len(d.freeBlocks) == 0 {
				panic("flashsim: GC deadlock, no free block for relocation")
			}
			d.activeBlock = d.freeBlocks[len(d.freeBlocks)-1]
			d.freeBlocks = d.freeBlocks[:len(d.freeBlocks)-1]
			d.activeNext = 0
		}
		dst := int32(d.activeBlock*d.p.PagesPerBlock + d.activeNext)
		d.activeNext++
		d.nand.invalidatePage(phys)
		d.nand.programPage(dst, pageBuf)
		lat += d.p.PageWriteLatency

		d.p2l[dst] = lp
		d.l2p[lp] = dst
		d.gcPageCopies++
	}
	// Erase the victim.
	for i := 0; i < d.p.PagesPerBlock; i++ {
		d.p2l[base+i] = -1
	}
	d.nand.eraseBlock(victim)
	d.freeBlocks = append(d.freeBlocks, victim)
	lat += d.p.BlockEraseLatency
	d.stats.Record(storage.OpErase, int(d.blockBytes), d.p.BlockEraseLatency)
	return lat
}

// Trim implements storage.Trimmer: logical pages fully covered by the range
// are unmapped (their physical copies become invalid, reclaimable for free
// by GC); partially covered edge pages are zero-filled via read-modify-
// write. Trimmed ranges read back as zeros.
func (d *SSD) Trim(off, n int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.Size(), off, int(n)); err != nil {
		return 0, err
	}
	var lat time.Duration
	pageSize := int64(d.p.PageSize)
	pos := off
	end := off + n
	zero := make([]byte, d.p.PageSize)
	for pos < end {
		lp := pos / pageSize
		po := pos % pageSize
		span := pageSize - po
		if end-pos < span {
			span = end - pos
		}
		if po == 0 && span == pageSize {
			if phys := d.l2p[lp]; phys >= 0 {
				d.invalidatePhys(phys)
				d.l2p[lp] = -1
			}
		} else if phys := d.l2p[lp]; phys >= 0 {
			// Partial-page trim: rewrite the page with the range zeroed.
			pageBuf := make([]byte, d.p.PageSize)
			d.nand.readPage(phys, pageBuf)
			lat += d.p.PageReadLatency
			copy(pageBuf[po:po+span], zero[:span])
			lat += d.programPage(lp, pageBuf)
			d.hostPages-- // RMW bookkeeping, not host payload
		}
		pos += span
	}
	// Command processing cost for the trim itself is negligible next to
	// page operations; charge a fixed 10 µs like real NCQ trim commands.
	lat += 10 * time.Microsecond
	d.clock.AdvanceAttr(lat, simclock.CompSSDProgram)
	d.stats.Record(storage.OpTrim, int(n), lat)
	d.emit(storage.Op{Device: d.name, Kind: storage.OpTrim, Offset: off, Len: int(n), Latency: lat})
	return lat, nil
}

func (d *SSD) invalidatePhys(phys int32) {
	d.nand.invalidatePage(phys)
	d.p2l[phys] = -1
}

func (d *SSD) emit(op storage.Op) {
	if d.onOp != nil {
		d.onOp(op)
	}
}

// Stats returns host-visible operation counters (erases included).
func (d *SSD) Stats() storage.DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// WearStats summarizes flash wear and garbage-collection overhead.
type WearStats struct {
	// TotalErases counts block erasures since creation (Fig 19a metric).
	TotalErases int64
	// MaxBlockErases is the most-worn block's erase count.
	MaxBlockErases int64
	// GCRuns counts garbage-collection victim reclamations.
	GCRuns int64
	// GCPageCopies counts valid pages relocated by GC.
	GCPageCopies int64
	// HostPagesWritten counts pages programmed for host writes.
	HostPagesWritten int64
	// WriteAmplification is (host + GC pages programmed) / host pages.
	WriteAmplification float64
	// FreeBlocks is the current count of erased, writable blocks.
	FreeBlocks int
}

// Wear returns a snapshot of wear and GC counters.
func (d *SSD) Wear() WearStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	total, maxE := d.nand.wearSummary()
	wa := 0.0
	if d.hostPages > 0 {
		wa = float64(d.hostPages+d.gcPageCopies) / float64(d.hostPages)
	}
	return WearStats{
		TotalErases:        total,
		MaxBlockErases:     maxE,
		GCRuns:             d.gcRuns,
		GCPageCopies:       d.gcPageCopies,
		HostPagesWritten:   d.hostPages,
		WriteAmplification: wa,
		FreeBlocks:         len(d.freeBlocks),
	}
}

// PageSize returns the NAND page size in bytes.
func (d *SSD) PageSize() int { return d.p.PageSize }

// BlockSize returns the erase-block size in bytes.
func (d *SSD) BlockSize() int64 { return d.blockBytes }
