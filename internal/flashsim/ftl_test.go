package flashsim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

// ftlDevice is the common surface of all three FTL implementations.
type ftlDevice interface {
	storage.Device
	storage.Trimmer
	Wear() WearStats
	Stats() storage.DeviceStats
	PageSize() int
	BlockSize() int64
}

func smallParams(exported, spare int) Params {
	return Params{
		PageSize:       2 << 10,
		PagesPerBlock:  64,
		ExportedBlocks: exported,
		SpareBlocks:    spare,
	}
}

// makeFTLs builds one drive per FTL with identical geometry.
func makeFTLs(exported, spare int) map[string]ftlDevice {
	return map[string]ftlDevice{
		"pagemap":   New("pm", simclock.New(), smallParams(exported, spare)),
		"blockmap":  NewBlockMapped("bm", simclock.New(), smallParams(exported, spare)),
		"hybridlog": NewHybridLog("hl", simclock.New(), smallParams(exported, spare)),
	}
}

func TestAllFTLsReadBackWrite(t *testing.T) {
	for name, d := range makeFTLs(8, 4) {
		t.Run(name, func(t *testing.T) {
			data := []byte("ftl round trip")
			if _, err := d.WriteAt(data, 5000); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := d.ReadAt(got, 5000); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("read %q", got)
			}
		})
	}
}

func TestAllFTLsUnwrittenZero(t *testing.T) {
	for name, d := range makeFTLs(4, 4) {
		t.Run(name, func(t *testing.T) {
			buf := make([]byte, 256)
			d.ReadAt(buf, d.Size()/2)
			for _, b := range buf {
				if b != 0 {
					t.Fatal("unwritten range not zero")
				}
			}
		})
	}
}

func TestAllFTLsOverwriteWins(t *testing.T) {
	for name, d := range makeFTLs(8, 4) {
		t.Run(name, func(t *testing.T) {
			page := make([]byte, d.PageSize())
			for round := byte(1); round <= 5; round++ {
				for i := range page {
					page[i] = round
				}
				d.WriteAt(page, int64(3*d.PageSize()))
			}
			got := make([]byte, d.PageSize())
			d.ReadAt(got, int64(3*d.PageSize()))
			if got[0] != 5 || got[len(got)-1] != 5 {
				t.Fatalf("overwrite lost: byte %d", got[0])
			}
		})
	}
}

func TestAllFTLsSurviveCapacityChurn(t *testing.T) {
	for name, d := range makeFTLs(6, 4) {
		t.Run(name, func(t *testing.T) {
			pageSize := int64(d.PageSize())
			pages := d.Size() / pageSize
			buf := make([]byte, pageSize)
			// Three full sequential passes with distinct fills.
			for round := byte(1); round <= 3; round++ {
				for lp := int64(0); lp < pages; lp++ {
					for i := range buf {
						buf[i] = round + byte(lp%31)
					}
					if _, err := d.WriteAt(buf, lp*pageSize); err != nil {
						t.Fatalf("round %d page %d: %v", round, lp, err)
					}
				}
			}
			// Everything must read back as round 3.
			got := make([]byte, pageSize)
			for lp := int64(0); lp < pages; lp += 7 {
				d.ReadAt(got, lp*pageSize)
				want := byte(3) + byte(lp%31)
				if got[0] != want {
					t.Fatalf("page %d = %d, want %d", lp, got[0], want)
				}
			}
		})
	}
}

func TestAllFTLsTrimZeroes(t *testing.T) {
	for name, d := range makeFTLs(6, 4) {
		t.Run(name, func(t *testing.T) {
			blockBytes := d.BlockSize()
			buf := make([]byte, blockBytes)
			for i := range buf {
				buf[i] = 0xEE
			}
			d.WriteAt(buf, 0)
			if _, err := d.Trim(0, blockBytes); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, blockBytes)
			d.ReadAt(got, 0)
			for i, b := range got {
				if b != 0 {
					t.Fatalf("byte %d not zero after trim", i)
				}
			}
		})
	}
}

func TestFTLRandomWriteCostOrdering(t *testing.T) {
	// The paper's §II-A hierarchy under random single-page overwrites:
	// block mapping amplifies writes catastrophically, the hybrid log
	// sits in between, the ideal page map is cheapest.
	wearOf := func(d ftlDevice) float64 {
		rng := simclock.NewRNG(11)
		pageSize := int64(d.PageSize())
		pages := int(d.Size() / pageSize)
		buf := make([]byte, pageSize)
		for i := 0; i < pages*3; i++ {
			d.WriteAt(buf, int64(rng.Intn(pages))*pageSize)
		}
		return d.Wear().WriteAmplification
	}
	ftls := makeFTLs(8, 4)
	pm := wearOf(ftls["pagemap"])
	hl := wearOf(ftls["hybridlog"])
	bm := wearOf(ftls["blockmap"])
	if !(pm <= hl && hl <= bm) {
		t.Fatalf("WA ordering wrong: pagemap %.2f, hybridlog %.2f, blockmap %.2f", pm, hl, bm)
	}
	if bm < 2 {
		t.Fatalf("blockmap WA %.2f suspiciously low under random overwrites", bm)
	}
}

func TestFTLSequentialFillCheapEverywhere(t *testing.T) {
	// A sequential first fill is the friendly pattern for every FTL:
	// write amplification stays at 1 (no relocation, no merges).
	for name, d := range makeFTLs(8, 4) {
		t.Run(name, func(t *testing.T) {
			buf := make([]byte, d.PageSize())
			for off := int64(0); off < d.Size(); off += int64(len(buf)) {
				d.WriteAt(buf, off)
			}
			if wa := d.Wear().WriteAmplification; wa > 1.01 {
				t.Fatalf("sequential fill WA = %.2f, want 1", wa)
			}
		})
	}
}

func TestFTLSequentialRewrite(t *testing.T) {
	// Rewriting sequentially: free for the page map (victims are fully
	// invalid), tolerable for the hybrid log, and expensive for naive
	// block mapping (every in-place overwrite forces a merge) — the
	// weakness [7] is cited for in §II-A.
	wearAfterRewrites := func(d ftlDevice) float64 {
		buf := make([]byte, d.PageSize())
		for round := 0; round < 3; round++ {
			for off := int64(0); off < d.Size(); off += int64(len(buf)) {
				d.WriteAt(buf, off)
			}
		}
		return d.Wear().WriteAmplification
	}
	ftls := makeFTLs(8, 4)
	pm := wearAfterRewrites(ftls["pagemap"])
	bm := wearAfterRewrites(ftls["blockmap"])
	if pm > 1.6 {
		t.Fatalf("pagemap sequential-rewrite WA = %.2f, want near 1", pm)
	}
	if bm <= pm {
		t.Fatalf("blockmap WA %.2f not above pagemap %.2f on rewrites", bm, pm)
	}
}

func TestBlockMappedMergeCounted(t *testing.T) {
	d := NewBlockMapped("bm", simclock.New(), smallParams(4, 2))
	page := make([]byte, d.PageSize())
	d.WriteAt(page, 0)
	d.WriteAt(page, 0) // overwrite → merge
	w := d.Wear()
	if w.GCRuns == 0 {
		t.Fatal("merge not counted")
	}
	if w.TotalErases == 0 {
		t.Fatal("merge did not erase")
	}
}

func TestBlockMappedOverwriteLatencyIncludesMerge(t *testing.T) {
	d := NewBlockMapped("bm", simclock.New(), smallParams(4, 2))
	page := make([]byte, d.PageSize())
	first, _ := d.WriteAt(page, 0)
	second, _ := d.WriteAt(page, 0)
	if second <= first {
		t.Fatalf("overwrite (%v) not slower than first write (%v)", second, first)
	}
	if second < 1500*time.Microsecond {
		t.Fatalf("overwrite %v cheaper than one erase", second)
	}
}

func TestHybridLogAbsorbsOverwrites(t *testing.T) {
	// A few overwrites should land in the log with no merge at all.
	d := NewHybridLog("hl", simclock.New(), smallParams(8, 6))
	page := make([]byte, d.PageSize())
	for i := 0; i < 10; i++ {
		d.WriteAt(page, 0)
	}
	if d.Wear().GCRuns != 0 {
		t.Fatalf("hybrid log merged after only 10 overwrites (pool should absorb them)")
	}
	if d.Wear().TotalErases != 0 {
		t.Fatal("erases without log exhaustion")
	}
}

func TestHybridLogMergesWhenLogFull(t *testing.T) {
	d := NewHybridLog("hl", simclock.New(), smallParams(6, 4))
	rng := simclock.NewRNG(3)
	page := make([]byte, d.PageSize())
	pages := int(d.Size() / int64(d.PageSize()))
	for i := 0; i < pages*4; i++ {
		d.WriteAt(page, int64(rng.Intn(pages))*int64(d.PageSize()))
	}
	w := d.Wear()
	if w.GCRuns == 0 {
		t.Fatal("log never merged under sustained random overwrites")
	}
	if w.TotalErases == 0 {
		t.Fatal("no erases despite merges")
	}
}

func TestFTLGeometryValidation(t *testing.T) {
	cases := []func(){
		func() { NewBlockMapped("x", simclock.New(), Params{}) },
		func() { NewBlockMapped("x", simclock.New(), smallParams(4, 0)) },
		func() { NewHybridLog("x", simclock.New(), Params{}) },
		func() { NewHybridLog("x", simclock.New(), smallParams(4, 2)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFTLLastWriteWinsProperty(t *testing.T) {
	// Same invariant as the page-map property test, across all FTLs.
	mk := map[string]func() ftlDevice{
		"blockmap":  func() ftlDevice { return NewBlockMapped("bm", simclock.New(), smallParams(4, 2)) },
		"hybridlog": func() ftlDevice { return NewHybridLog("hl", simclock.New(), smallParams(4, 3)) },
	}
	for name, build := range mk {
		t.Run(name, func(t *testing.T) {
			f := func(writes []uint16) bool {
				d := build()
				pageSize := int64(d.PageSize())
				pages := int(d.Size() / pageSize)
				last := make(map[int]byte)
				buf := make([]byte, pageSize)
				for i, w := range writes {
					lp := int(w) % pages
					tag := byte(i + 1)
					for j := range buf {
						buf[j] = tag
					}
					if _, err := d.WriteAt(buf, int64(lp)*pageSize); err != nil {
						return false
					}
					last[lp] = tag
				}
				got := make([]byte, pageSize)
				for lp, tag := range last {
					d.ReadAt(got, int64(lp)*pageSize)
					if got[0] != tag || got[pageSize-1] != tag {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
