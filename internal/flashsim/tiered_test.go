package flashsim

import (
	"bytes"
	"testing"

	"hybridstore/internal/simclock"
)

func newTestTiered(t *testing.T) *Tiered {
	t.Helper()
	clock := simclock.New()
	fastP := DefaultParams(512 << 10)
	slowP := DefaultParams(1 << 20)
	slowP.PageReadLatency *= 4
	slowP.PageWriteLatency *= 4
	slowP.BlockEraseLatency *= 4
	fast := New("fast", clock, fastP)
	slow := New("slow", clock, slowP)
	return NewTiered("tiered", fast, slow, fast.Size())
}

func TestTieredRoutesAndSpans(t *testing.T) {
	d := newTestTiered(t)
	boundary := d.Fast().Size()
	if d.Size() != boundary+d.Slow().Size() {
		t.Fatalf("size %d != fast %d + slow %d", d.Size(), boundary, d.Slow().Size())
	}

	// A write entirely below the boundary lands on the fast device only.
	pat := func(n int, seed byte) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = seed + byte(i)
		}
		return p
	}
	if _, err := d.WriteAt(pat(8<<10, 1), 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Slow().Wear().HostPagesWritten; got != 0 {
		t.Fatalf("fast-only write reached the slow device (%d pages)", got)
	}
	// A write entirely above lands on the slow device only.
	fastPages := d.Fast().Wear().HostPagesWritten
	if _, err := d.WriteAt(pat(8<<10, 2), boundary); err != nil {
		t.Fatal(err)
	}
	if got := d.Fast().Wear().HostPagesWritten; got != fastPages {
		t.Fatalf("slow-only write reached the fast device")
	}

	// A write spanning the boundary splits, and reads stitch it back.
	span := pat(16<<10, 3)
	off := boundary - 8<<10
	if _, err := d.WriteAt(span, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(span))
	if _, err := d.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, span) {
		t.Fatal("spanning read returned wrong bytes")
	}

	// Slow-tier reads cost more than fast-tier reads of the same size.
	buf := make([]byte, 8<<10)
	fastLat, err := d.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	slowLat, err := d.ReadAt(buf, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if slowLat <= fastLat {
		t.Fatalf("slow read %v not slower than fast read %v", slowLat, fastLat)
	}

	// Combined stats are the field-wise sum of the tiers'.
	a, b, sum := d.Fast().Stats(), d.Slow().Stats(), d.Stats()
	if sum.Writes != a.Writes+b.Writes || sum.BytesRead != a.BytesRead+b.BytesRead {
		t.Fatalf("stats do not sum: %+v vs %+v + %+v", sum, a, b)
	}

	// Trim spanning the boundary reaches both tiers.
	trimsBefore := d.Stats().Trims
	if _, err := d.Trim(off, int64(len(span))); err != nil {
		t.Fatal(err)
	}
	if d.Fast().Stats().Trims == 0 || d.Slow().Stats().Trims == 0 {
		t.Fatal("spanning trim did not reach both tiers")
	}
	if d.Stats().Trims != trimsBefore+2 {
		t.Fatalf("expected 2 tier trims, got %d", d.Stats().Trims-trimsBefore)
	}

	// Out-of-range access is rejected against the combined size.
	if _, err := d.ReadAt(buf, d.Size()-4); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestTieredBadBoundaryPanics(t *testing.T) {
	clock := simclock.New()
	fast := New("fast", clock, DefaultParams(512<<10))
	slow := New("slow", clock, DefaultParams(1<<20))
	for _, boundary := range []int64{0, 4096, fast.Size() + int64(fast.BlockSize())} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("boundary %d accepted", boundary)
				}
			}()
			NewTiered("bad", fast, slow, boundary)
		}()
	}
}
