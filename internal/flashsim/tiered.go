package flashsim

// Tiered composes two SSDs into one heterogeneous cache device, after
// ECI-Cache-style architectures (Ahmadian et al., PAPERS.md): a small fast
// cache SSD in front of a dense, slower one. The address space is split at
// a fixed boundary — offsets below it route to the fast device, offsets at
// or above it to the slow device (shifted down by the boundary) — so a
// cache manager that lays its hot result region below the boundary and its
// bulk list region above gets tier-appropriate media without knowing two
// devices exist.
//
// Both sub-devices must share one clock so latencies compose; operations
// spanning the boundary are split and their latencies summed, as a real
// host would serialize the two device commands.

import (
	"fmt"
	"time"

	"hybridstore/internal/storage"
)

// Tiered is a two-SSD composite implementing the same device surface as a
// single SSD (storage.Device, storage.Trimmer, wear/stats accessors).
type Tiered struct {
	name     string
	fast     *SSD
	slow     *SSD
	boundary int64
}

// NewTiered builds the composite. boundary is the size of the fast
// device's window and must equal fast.Size(); it must be aligned to both
// devices' block size so cache extents never straddle media.
func NewTiered(name string, fast, slow *SSD, boundary int64) *Tiered {
	if boundary <= 0 || boundary != fast.Size() {
		panic(fmt.Sprintf("flashsim: tier boundary %d != fast device size %d", boundary, fast.Size()))
	}
	if boundary%fast.BlockSize() != 0 || boundary%slow.BlockSize() != 0 {
		panic(fmt.Sprintf("flashsim: tier boundary %d not block-aligned", boundary))
	}
	return &Tiered{name: name, fast: fast, slow: slow, boundary: boundary}
}

// Name returns the composite's name.
func (t *Tiered) Name() string { return t.name }

// Size returns the combined logical capacity.
func (t *Tiered) Size() int64 { return t.boundary + t.slow.Size() }

// Fast returns the fast (cache) tier for per-device inspection.
func (t *Tiered) Fast() *SSD { return t.fast }

// Slow returns the slow (dense) tier for per-device inspection.
func (t *Tiered) Slow() *SSD { return t.slow }

// split maps [off, off+n) onto the two tiers, returning the fast-tier
// prefix length (0 when the range starts past the boundary).
func (t *Tiered) split(off int64, n int) int {
	if off >= t.boundary {
		return 0
	}
	if off+int64(n) <= t.boundary {
		return n
	}
	return int(t.boundary - off)
}

// ReadAt reads across the tiers, summing the devices' latencies.
func (t *Tiered) ReadAt(p []byte, off int64) (time.Duration, error) {
	if err := storage.CheckRange(t.name, t.Size(), off, len(p)); err != nil {
		return 0, err
	}
	nf := t.split(off, len(p))
	var total time.Duration
	if nf > 0 {
		lat, err := t.fast.ReadAt(p[:nf], off)
		if err != nil {
			return total, err
		}
		total += lat
	}
	if nf < len(p) {
		lat, err := t.slow.ReadAt(p[nf:], off+int64(nf)-t.boundary)
		if err != nil {
			return total, err
		}
		total += lat
	}
	return total, nil
}

// WriteAt writes across the tiers, summing the devices' latencies.
func (t *Tiered) WriteAt(p []byte, off int64) (time.Duration, error) {
	if err := storage.CheckRange(t.name, t.Size(), off, len(p)); err != nil {
		return 0, err
	}
	nf := t.split(off, len(p))
	var total time.Duration
	if nf > 0 {
		lat, err := t.fast.WriteAt(p[:nf], off)
		if err != nil {
			return total, err
		}
		total += lat
	}
	if nf < len(p) {
		lat, err := t.slow.WriteAt(p[nf:], off+int64(nf)-t.boundary)
		if err != nil {
			return total, err
		}
		total += lat
	}
	return total, nil
}

// Trim invalidates across the tiers, summing the devices' latencies.
func (t *Tiered) Trim(off, n int64) (time.Duration, error) {
	if err := storage.CheckRange(t.name, t.Size(), off, int(n)); err != nil {
		return 0, err
	}
	nf := int64(t.split(off, int(n)))
	var total time.Duration
	if nf > 0 {
		lat, err := t.fast.Trim(off, nf)
		if err != nil {
			return total, err
		}
		total += lat
	}
	if nf < n {
		lat, err := t.slow.Trim(off+nf-t.boundary, n-nf)
		if err != nil {
			return total, err
		}
		total += lat
	}
	return total, nil
}

// PageSize returns the fast tier's page size (both tiers share geometry in
// every configuration New builds).
func (t *Tiered) PageSize() int { return t.fast.PageSize() }

// BlockSize returns the fast tier's erase-block size.
func (t *Tiered) BlockSize() int64 { return t.fast.BlockSize() }

// SetOpHook installs the hook on both tiers.
func (t *Tiered) SetOpHook(fn func(storage.Op)) {
	t.fast.SetOpHook(fn)
	t.slow.SetOpHook(fn)
}

// Stats returns the combined device statistics of both tiers.
func (t *Tiered) Stats() storage.DeviceStats {
	a, b := t.fast.Stats(), t.slow.Stats()
	return storage.DeviceStats{
		Reads:      a.Reads + b.Reads,
		Writes:     a.Writes + b.Writes,
		Trims:      a.Trims + b.Trims,
		Erases:     a.Erases + b.Erases,
		BytesRead:  a.BytesRead + b.BytesRead,
		BytesWrit:  a.BytesWrit + b.BytesWrit,
		ReadTime:   a.ReadTime + b.ReadTime,
		WriteTime:  a.WriteTime + b.WriteTime,
		TrimTime:   a.TrimTime + b.TrimTime,
		EraseTime:  a.EraseTime + b.EraseTime,
		TotalTime:  a.TotalTime + b.TotalTime,
		Operations: a.Operations + b.Operations,
	}
}

// Wear returns the combined wear of both tiers. Write amplification is
// recomputed from the combined page counts so it stays (host + GC) / host.
func (t *Tiered) Wear() WearStats {
	a, b := t.fast.Wear(), t.slow.Wear()
	w := WearStats{
		TotalErases:      a.TotalErases + b.TotalErases,
		MaxBlockErases:   a.MaxBlockErases,
		GCRuns:           a.GCRuns + b.GCRuns,
		GCPageCopies:     a.GCPageCopies + b.GCPageCopies,
		HostPagesWritten: a.HostPagesWritten + b.HostPagesWritten,
		FreeBlocks:       a.FreeBlocks + b.FreeBlocks,
	}
	if b.MaxBlockErases > w.MaxBlockErases {
		w.MaxBlockErases = b.MaxBlockErases
	}
	if w.HostPagesWritten > 0 {
		w.WriteAmplification = float64(w.HostPagesWritten+w.GCPageCopies) / float64(w.HostPagesWritten)
	}
	return w
}
