package flashsim

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

// smallSSD builds a tiny drive (exported blocks × 4 KiB pages … actually the
// paper geometry: 2 KiB pages, 64-page blocks) so GC triggers quickly.
func smallSSD(t *testing.T, exported, spare int) (*SSD, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	d := New("ssd", clk, Params{
		PageSize:       2 << 10,
		PagesPerBlock:  64,
		ExportedBlocks: exported,
		SpareBlocks:    spare,
	})
	return d, clk
}

func TestSSDReadBackWrite(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	data := []byte("posting list bytes")
	if _, err := d.WriteAt(data, 1000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestSSDUnwrittenReadsZero(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	got := make([]byte, 100)
	d.ReadAt(got, 50000)
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten SSD range not zero")
		}
	}
}

func TestSSDPageAlignedWriteCost(t *testing.T) {
	d, clk := smallSSD(t, 8, 4)
	clk.Reset()
	lat, _ := d.WriteAt(make([]byte, 2<<10), 0) // exactly one page, aligned
	if lat != 101475*time.Nanosecond {
		t.Fatalf("aligned page write cost %v, want 101.475µs", lat)
	}
}

func TestSSDPartialWritePaysRMW(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	d.WriteAt(make([]byte, 2<<10), 0)
	// Overwrite 100 bytes mid-page: read (32.725) + program (101.475).
	lat, _ := d.WriteAt(make([]byte, 100), 10)
	want := 32725*time.Nanosecond + 101475*time.Nanosecond
	if lat != want {
		t.Fatalf("partial overwrite cost %v, want %v", lat, want)
	}
	// Partial write to an unmapped page needs no read.
	lat2, _ := d.WriteAt(make([]byte, 100), 100<<10)
	if lat2 != 101475*time.Nanosecond {
		t.Fatalf("partial write to unmapped page cost %v", lat2)
	}
}

func TestSSDReadCostPerPage(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	lat, _ := d.ReadAt(make([]byte, 3*(2<<10)), 0) // three pages
	if lat != 3*32725*time.Nanosecond {
		t.Fatalf("3-page read cost %v", lat)
	}
	// A 1-byte read spanning a page boundary costs two page reads.
	lat2, _ := d.ReadAt(make([]byte, 2), (2<<10)-1)
	if lat2 != 2*32725*time.Nanosecond {
		t.Fatalf("boundary read cost %v", lat2)
	}
}

func TestSSDOverwriteInvalidatesOldPage(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	page := make([]byte, 2<<10)
	for i := range page {
		page[i] = 1
	}
	d.WriteAt(page, 0)
	for i := range page {
		page[i] = 2
	}
	d.WriteAt(page, 0)
	got := make([]byte, 2<<10)
	d.ReadAt(got, 0)
	if got[0] != 2 || got[len(got)-1] != 2 {
		t.Fatal("overwrite not visible")
	}
	w := d.Wear()
	if w.HostPagesWritten != 2 {
		t.Fatalf("HostPagesWritten = %d, want 2", w.HostPagesWritten)
	}
}

// fillSSD writes the drive's whole logical space with a recognizable pattern
// several times over to force garbage collection.
func fillSSD(t *testing.T, d *SSD, rounds int) map[int64]byte {
	t.Helper()
	content := make(map[int64]byte)
	pageSize := int64(d.PageSize())
	pages := d.Size() / pageSize
	buf := make([]byte, pageSize)
	for r := 0; r < rounds; r++ {
		for lp := int64(0); lp < pages; lp++ {
			tag := byte(r*31 + int(lp%97) + 1)
			for i := range buf {
				buf[i] = tag
			}
			if _, err := d.WriteAt(buf, lp*pageSize); err != nil {
				t.Fatal(err)
			}
			content[lp] = tag
		}
	}
	return content
}

func TestSSDGCRunsUnderPressure(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	fillSSD(t, d, 3)
	w := d.Wear()
	if w.TotalErases == 0 {
		t.Fatal("no erases after writing 3x the logical capacity")
	}
	if w.GCRuns == 0 {
		t.Fatal("GC never ran")
	}
	if w.FreeBlocks == 0 {
		t.Fatal("GC left no free blocks")
	}
}

func TestSSDDataSurvivesGC(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	content := fillSSD(t, d, 4)
	pageSize := int64(d.PageSize())
	buf := make([]byte, pageSize)
	for lp, tag := range content {
		d.ReadAt(buf, lp*pageSize)
		for i, b := range buf {
			if b != tag {
				t.Fatalf("page %d byte %d = %d, want %d (data lost in GC)", lp, i, b, tag)
			}
		}
	}
}

func TestSSDWriteAmplificationAboveOneUnderGC(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	// Random single-page overwrites create invalid pages everywhere,
	// the worst case for GC.
	rng := simclock.NewRNG(5)
	pageSize := int64(d.PageSize())
	pages := int(d.Size() / pageSize)
	buf := make([]byte, pageSize)
	for i := 0; i < pages*4; i++ {
		lp := int64(rng.Intn(pages))
		d.WriteAt(buf, lp*pageSize)
	}
	w := d.Wear()
	if w.WriteAmplification <= 1.0 {
		t.Fatalf("WA = %v, want > 1 under random overwrites", w.WriteAmplification)
	}
}

func TestSSDSequentialCheaperThanRandomOverwrite(t *testing.T) {
	// Sequential whole-block rewrites leave victims fully invalid (free
	// erases); random page overwrites force GC to relocate valid pages.
	mk := func() *SSD {
		d, _ := smallSSD(t, 16, 4)
		return d
	}
	pageSize := 2 << 10

	seq := mk()
	buf := make([]byte, pageSize)
	for r := 0; r < 6; r++ {
		for off := int64(0); off < seq.Size(); off += int64(pageSize) {
			seq.WriteAt(buf, off)
		}
	}

	rnd := mk()
	rng := simclock.NewRNG(9)
	pages := int(rnd.Size() / int64(pageSize))
	for i := 0; i < pages*6; i++ {
		rnd.WriteAt(buf, int64(rng.Intn(pages))*int64(pageSize))
	}

	seqW, rndW := seq.Wear(), rnd.Wear()
	if seqW.WriteAmplification >= rndW.WriteAmplification {
		t.Fatalf("sequential WA %.3f not below random WA %.3f",
			seqW.WriteAmplification, rndW.WriteAmplification)
	}
}

func TestSSDTrimFullPages(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	data := make([]byte, 4<<10) // two pages
	for i := range data {
		data[i] = 7
	}
	d.WriteAt(data, 0)
	if _, err := d.Trim(0, 4<<10); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4<<10)
	d.ReadAt(got, 0)
	for _, b := range got {
		if b != 0 {
			t.Fatal("trimmed range not zero")
		}
	}
}

func TestSSDTrimPartialPage(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	page := make([]byte, 2<<10)
	for i := range page {
		page[i] = 9
	}
	d.WriteAt(page, 0)
	d.Trim(100, 50)
	got := make([]byte, 2<<10)
	d.ReadAt(got, 0)
	if got[99] != 9 || got[100] != 0 || got[149] != 0 || got[150] != 9 {
		t.Fatalf("partial trim wrong: %d %d %d %d", got[99], got[100], got[149], got[150])
	}
}

func TestSSDTrimReducesGCWork(t *testing.T) {
	// Writing, trimming, then rewriting should GC cheaper than writing and
	// rewriting live data: trimmed pages need no relocation.
	run := func(trim bool) int64 {
		d, _ := smallSSD(t, 8, 4)
		pageSize := int64(d.PageSize())
		buf := make([]byte, pageSize)
		for round := 0; round < 4; round++ {
			for off := int64(0); off < d.Size(); off += pageSize {
				d.WriteAt(buf, off)
			}
			if trim {
				d.Trim(0, d.Size())
			}
		}
		return d.Wear().GCPageCopies
	}
	withTrim := run(true)
	withoutTrim := run(false)
	if withTrim > withoutTrim {
		t.Fatalf("trim increased GC copies: %d > %d", withTrim, withoutTrim)
	}
}

func TestSSDOutOfRange(t *testing.T) {
	d, _ := smallSSD(t, 2, 2)
	if _, err := d.ReadAt(make([]byte, 1), d.Size()); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("read err = %v", err)
	}
	if _, err := d.WriteAt(make([]byte, 1), -1); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := d.Trim(0, d.Size()+1); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("trim err = %v", err)
	}
}

func TestSSDStatsAndHook(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	var kinds []storage.OpKind
	d.SetOpHook(func(op storage.Op) { kinds = append(kinds, op.Kind) })
	d.WriteAt(make([]byte, 100), 0)
	d.ReadAt(make([]byte, 100), 0)
	d.Trim(0, 2<<10)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.Trims != 1 {
		t.Fatalf("stats = %+v", s)
	}
	want := []storage.OpKind{storage.OpWrite, storage.OpRead, storage.OpTrim}
	if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Fatalf("hook saw %v", kinds)
	}
}

func TestSSDEraseCountsInStats(t *testing.T) {
	d, _ := smallSSD(t, 8, 4)
	fillSSD(t, d, 3)
	if d.Stats().Erases == 0 {
		t.Fatal("stats did not record erases")
	}
	if d.Stats().Erases != d.Wear().TotalErases {
		t.Fatalf("stats erases %d != wear erases %d", d.Stats().Erases, d.Wear().TotalErases)
	}
}

func TestSSDClockCharged(t *testing.T) {
	d, clk := smallSSD(t, 8, 4)
	before := clk.Now()
	lat, _ := d.WriteAt(make([]byte, 2<<10), 0)
	if clk.Now()-before != lat {
		t.Fatalf("clock advanced %v, latency %v", clk.Now()-before, lat)
	}
}

func TestSSDGeometryValidation(t *testing.T) {
	for name, p := range map[string]Params{
		"zero":      {},
		"no-spare":  {PageSize: 2 << 10, PagesPerBlock: 64, ExportedBlocks: 4, SpareBlocks: 1},
		"neg-pages": {PageSize: -1, PagesPerBlock: 64, ExportedBlocks: 4, SpareBlocks: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid params did not panic", name)
				}
			}()
			New("x", simclock.New(), p)
		}()
	}
}

func TestDefaultParamsGeometry(t *testing.T) {
	p := DefaultParams(10 << 20) // 10 MiB
	if p.PageSize != 2<<10 || p.PagesPerBlock != 64 {
		t.Fatalf("geometry %+v not Table III", p)
	}
	if p.ExportedBlocks != 80 {
		t.Fatalf("ExportedBlocks = %d, want 80 (10 MiB / 128 KiB)", p.ExportedBlocks)
	}
	if p.SpareBlocks < 4 {
		t.Fatalf("SpareBlocks = %d", p.SpareBlocks)
	}
	d := New("ssd", simclock.New(), p)
	if d.Size() != 10<<20 {
		t.Fatalf("Size = %d", d.Size())
	}
	if d.BlockSize() != 128<<10 {
		t.Fatalf("BlockSize = %d", d.BlockSize())
	}
}

func TestSSDRoundTripProperty(t *testing.T) {
	// Property: after an arbitrary series of page-sized writes the last
	// write to each page wins, even with GC churn in between.
	f := func(writes []uint16, seed uint64) bool {
		d := New("ssd", simclock.New(), Params{
			PageSize: 2 << 10, PagesPerBlock: 64, ExportedBlocks: 4, SpareBlocks: 2,
		})
		pageSize := int64(d.PageSize())
		pages := int(d.Size() / pageSize)
		last := make(map[int]byte)
		buf := make([]byte, pageSize)
		for i, w := range writes {
			lp := int(w) % pages
			tag := byte(i + 1)
			for j := range buf {
				buf[j] = tag
			}
			if _, err := d.WriteAt(buf, int64(lp)*pageSize); err != nil {
				return false
			}
			last[lp] = tag
		}
		got := make([]byte, pageSize)
		for lp, tag := range last {
			d.ReadAt(got, int64(lp)*pageSize)
			if got[0] != tag || got[pageSize-1] != tag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSSDWearLeveling(t *testing.T) {
	// Greedy GC over uniform random writes should spread erases: the most
	// worn block must not exceed a few times the mean.
	d, _ := smallSSD(t, 8, 4)
	rng := simclock.NewRNG(77)
	pageSize := int64(d.PageSize())
	pages := int(d.Size() / pageSize)
	buf := make([]byte, pageSize)
	for i := 0; i < pages*10; i++ {
		d.WriteAt(buf, int64(rng.Intn(pages))*pageSize)
	}
	w := d.Wear()
	if w.TotalErases == 0 {
		t.Fatal("no erases")
	}
	mean := float64(w.TotalErases) / 12.0 // 8 exported + 4 spare blocks
	if float64(w.MaxBlockErases) > 6*mean+1 {
		t.Fatalf("max erases %d far above mean %.1f", w.MaxBlockErases, mean)
	}
}
