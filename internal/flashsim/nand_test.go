package flashsim

import (
	"bytes"
	"testing"
)

func TestNANDProgramReadErase(t *testing.T) {
	n := newNANDArray(2<<10, 64, 4)
	page := make([]byte, 2<<10)
	for i := range page {
		page[i] = 0xAB
	}
	n.programPage(5, page)
	got := make([]byte, 2<<10)
	n.readPage(5, got)
	if !bytes.Equal(got, page) {
		t.Fatal("program/read mismatch")
	}
	if n.blockValid[0] != 1 || n.blockFree[0] != 63 {
		t.Fatalf("block counters: valid=%d free=%d", n.blockValid[0], n.blockFree[0])
	}
	n.eraseBlock(0)
	if n.blockValid[0] != 0 || n.blockFree[0] != 64 || n.erases[0] != 1 {
		t.Fatal("erase did not reset block")
	}
	n.readPage(5, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("erased page not zero")
		}
	}
}

func TestNANDProgramInPlacePanics(t *testing.T) {
	n := newNANDArray(2<<10, 64, 2)
	page := make([]byte, 2<<10)
	n.programPage(0, page)
	defer func() {
		if recover() == nil {
			t.Fatal("in-place program did not panic (NAND cannot overwrite)")
		}
	}()
	n.programPage(0, page)
}

func TestNANDInvalidate(t *testing.T) {
	n := newNANDArray(2<<10, 64, 2)
	page := make([]byte, 2<<10)
	n.programPage(0, page)
	n.invalidatePage(0)
	if n.blockValid[0] != 0 {
		t.Fatal("invalidate did not drop valid count")
	}
	n.invalidatePage(0) // idempotent
	if n.blockValid[0] != 0 {
		t.Fatal("double invalidate corrupted counters")
	}
}

func TestNANDWearSummary(t *testing.T) {
	n := newNANDArray(2<<10, 64, 3)
	n.eraseBlock(0)
	n.eraseBlock(0)
	n.eraseBlock(2)
	total, max := n.wearSummary()
	if total != 3 || max != 2 {
		t.Fatalf("wear: total=%d max=%d", total, max)
	}
	if n.totalErases != 3 {
		t.Fatalf("totalErases=%d", n.totalErases)
	}
}

func TestNANDGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero geometry accepted")
		}
	}()
	newNANDArray(0, 64, 4)
}

func TestNANDCountersTrackOps(t *testing.T) {
	n := newNANDArray(2<<10, 64, 2)
	page := make([]byte, 2<<10)
	n.programPage(0, page)
	n.programPage(1, page)
	n.readPage(0, page)
	if n.programs != 2 || n.reads != 1 {
		t.Fatalf("programs=%d reads=%d", n.programs, n.reads)
	}
}
