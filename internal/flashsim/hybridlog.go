package flashsim

import (
	"fmt"
	"sync"
	"time"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

// HybridSSD is a drive behind a simplified FAST-style hybrid log-block FTL
// (§II-A, [8][9]): data blocks are block-mapped, while a small pool of
// page-mapped log blocks absorbs overwrites. When the log pool fills, the
// oldest log block is reclaimed by *full merges* of every logical block it
// holds pages for. The paper cites this family as the practical middle
// ground between page- and block-mapped tables.
//
// HybridSSD implements storage.Device and storage.Trimmer.
type HybridSSD struct {
	mu    sync.Mutex
	name  string
	clock *simclock.Clock
	p     Params

	nand     *nandArray
	l2pBlock []int32 // logical block -> physical data block, -1
	p2lBlock []int32 // physical data block -> logical block, -1

	logBlocks []int           // physical blocks serving as the log, oldest first
	logNext   int             // next free page slot in the newest log block
	logMap    map[int64]int32 // logical page -> physical page in the log (latest copy)
	logPool   int             // number of log blocks allowed

	freeBlocks []int

	stats     storage.DeviceStats
	merges    int64
	hostPages int64
	onOp      func(storage.Op)
}

// NewHybridLog builds a hybrid log-block drive. The log pool takes half
// the spare blocks (at least one), the rest provide merge headroom.
func NewHybridLog(name string, clock *simclock.Clock, p Params) *HybridSSD {
	if p.PageSize <= 0 || p.PagesPerBlock <= 0 || p.ExportedBlocks <= 0 {
		panic(fmt.Sprintf("flashsim: invalid geometry %+v", p))
	}
	if p.SpareBlocks < 3 {
		panic("flashsim: hybrid log FTL needs at least 3 spare blocks")
	}
	fillLatencyDefaults(&p)
	totalBlocks := p.ExportedBlocks + p.SpareBlocks
	d := &HybridSSD{
		name:     name,
		clock:    clock,
		p:        p,
		nand:     newNANDArray(p.PageSize, p.PagesPerBlock, totalBlocks),
		l2pBlock: make([]int32, p.ExportedBlocks),
		p2lBlock: make([]int32, totalBlocks),
		logMap:   make(map[int64]int32),
		logPool:  p.SpareBlocks / 2,
	}
	if d.logPool < 1 {
		d.logPool = 1
	}
	for i := range d.l2pBlock {
		d.l2pBlock[i] = -1
	}
	for i := range d.p2lBlock {
		d.p2lBlock[i] = -1
	}
	d.freeBlocks = make([]int, totalBlocks)
	for i := range d.freeBlocks {
		d.freeBlocks[i] = totalBlocks - 1 - i
	}
	return d
}

// Name implements storage.Device.
func (d *HybridSSD) Name() string { return d.name }

// Size implements storage.Device.
func (d *HybridSSD) Size() int64 {
	return int64(d.p.ExportedBlocks) * d.nand.blockBytes()
}

// SetOpHook installs a callback invoked after every host operation.
func (d *HybridSSD) SetOpHook(fn func(storage.Op)) {
	d.mu.Lock()
	d.onOp = fn
	d.mu.Unlock()
}

// latestPhys returns the newest valid physical copy of lp (log first,
// then the data block), or -1.
func (d *HybridSSD) latestPhys(lp int64) int32 {
	if phys, ok := d.logMap[lp]; ok {
		return phys
	}
	lb := int(lp) / d.p.PagesPerBlock
	pb := d.l2pBlock[lb]
	if pb < 0 {
		return -1
	}
	phys := pb*int32(d.p.PagesPerBlock) + int32(int(lp)%d.p.PagesPerBlock)
	if d.nand.pageState[phys] != pageValid {
		return -1
	}
	return phys
}

// ReadAt implements storage.Device.
func (d *HybridSSD) ReadAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.Size(), off, len(p)); err != nil {
		return 0, err
	}
	var lat time.Duration
	remaining := p
	pos := off
	for len(remaining) > 0 {
		lp := pos / int64(d.p.PageSize)
		po := pos % int64(d.p.PageSize)
		n := int64(d.p.PageSize) - po
		if int64(len(remaining)) < n {
			n = int64(len(remaining))
		}
		if phys := d.latestPhys(lp); phys >= 0 {
			d.nand.data.ReadAt(remaining[:n], d.nand.physOffset(phys)+po)
			d.nand.reads++
		} else {
			for i := int64(0); i < n; i++ {
				remaining[i] = 0
			}
		}
		lat += d.p.PageReadLatency
		remaining = remaining[n:]
		pos += n
	}
	d.clock.AdvanceAttr(lat, simclock.CompSSDRead)
	d.stats.Record(storage.OpRead, len(p), lat)
	d.emit(storage.Op{Device: d.name, Kind: storage.OpRead, Offset: off, Len: len(p), Latency: lat})
	return lat, nil
}

// WriteAt implements storage.Device.
func (d *HybridSSD) WriteAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.Size(), off, len(p)); err != nil {
		return 0, err
	}
	var lat time.Duration
	remaining := p
	pos := off
	pageBuf := make([]byte, d.p.PageSize)
	for len(remaining) > 0 {
		lp := pos / int64(d.p.PageSize)
		po := pos % int64(d.p.PageSize)
		n := int64(d.p.PageSize) - po
		if int64(len(remaining)) < n {
			n = int64(len(remaining))
		}
		if po != 0 || n != int64(d.p.PageSize) {
			if phys := d.latestPhys(lp); phys >= 0 {
				d.nand.readPage(phys, pageBuf)
				lat += d.p.PageReadLatency
			} else {
				clearBuf(pageBuf)
			}
			copy(pageBuf[po:po+n], remaining[:n])
		} else {
			copy(pageBuf, remaining[:n])
		}
		lat += d.writePage(lp, pageBuf)
		remaining = remaining[n:]
		pos += n
	}
	d.clock.AdvanceAttr(lat, simclock.CompSSDProgram)
	d.stats.Record(storage.OpWrite, len(p), lat)
	d.emit(storage.Op{Device: d.name, Kind: storage.OpWrite, Offset: off, Len: len(p), Latency: lat})
	return lat, nil
}

// writePage stores one whole logical page. Caller holds d.mu.
func (d *HybridSSD) writePage(lp int64, content []byte) time.Duration {
	d.hostPages++
	lb := int(lp) / d.p.PagesPerBlock
	slot := int(lp) % d.p.PagesPerBlock

	// Fast path: the slot in the data block is still free (first write or
	// strictly sequential fill).
	if pb := d.l2pBlock[lb]; pb >= 0 {
		phys := pb*int32(d.p.PagesPerBlock) + int32(slot)
		if d.nand.pageState[phys] == pageFree {
			d.nand.programPage(phys, content)
			return d.p.PageWriteLatency
		}
	} else if d.l2pBlock[lb] < 0 {
		pb := int32(d.takeFree())
		d.l2pBlock[lb] = pb
		d.p2lBlock[pb] = int32(lb)
		phys := pb*int32(d.p.PagesPerBlock) + int32(slot)
		d.nand.programPage(phys, content)
		return d.p.PageWriteLatency
	}

	// Overwrite: append to the log.
	var lat time.Duration
	lat += d.ensureLogSpace()
	logBlock := d.logBlocks[len(d.logBlocks)-1]
	phys := int32(logBlock*d.p.PagesPerBlock + d.logNext)
	d.logNext++
	if old, ok := d.logMap[lp]; ok {
		d.nand.invalidatePage(old)
	} else {
		// The data-block copy is now stale.
		if pb := d.l2pBlock[lb]; pb >= 0 {
			dataPhys := pb*int32(d.p.PagesPerBlock) + int32(slot)
			d.nand.invalidatePage(dataPhys)
		}
	}
	d.nand.programPage(phys, content)
	d.logMap[lp] = phys
	return lat + d.p.PageWriteLatency
}

// ensureLogSpace opens a new log block, merging the oldest when the pool
// is exhausted. Caller holds d.mu.
func (d *HybridSSD) ensureLogSpace() time.Duration {
	if len(d.logBlocks) > 0 && d.logNext < d.p.PagesPerBlock {
		return 0
	}
	var lat time.Duration
	if len(d.logBlocks) >= d.logPool {
		lat += d.mergeOldestLog()
	}
	d.logBlocks = append(d.logBlocks, d.takeFree())
	d.logNext = 0
	return lat
}

// mergeOldestLog reclaims the oldest log block with full merges of every
// logical block that has its latest copy there. Caller holds d.mu.
func (d *HybridSSD) mergeOldestLog() time.Duration {
	victim := d.logBlocks[0]
	d.logBlocks = d.logBlocks[1:]
	var lat time.Duration

	// Collect the logical blocks whose latest copies live in the victim.
	needMerge := make(map[int]bool)
	base := int32(victim * d.p.PagesPerBlock)
	for i := int32(0); i < int32(d.p.PagesPerBlock); i++ {
		phys := base + i
		if d.nand.pageState[phys] != pageValid {
			continue
		}
		// Find which lp maps here (reverse scan of logMap — the log is
		// small, so a map walk per merge is acceptable).
		for lp, mapped := range d.logMap {
			if mapped == phys {
				needMerge[int(lp)/d.p.PagesPerBlock] = true
				break
			}
		}
	}
	for lb := range needMerge {
		lat += d.fullMerge(lb)
	}
	// Every remaining page in the victim is now invalid; erase it.
	d.nand.eraseBlock(victim)
	lat += d.p.BlockEraseLatency
	d.stats.Record(storage.OpErase, int(d.nand.blockBytes()), d.p.BlockEraseLatency)
	d.freeBlocks = append(d.freeBlocks, victim)
	return lat
}

// fullMerge rebuilds logical block lb from its newest copies (log or data
// block) into a fresh physical block. Caller holds d.mu.
func (d *HybridSSD) fullMerge(lb int) time.Duration {
	d.merges++
	var lat time.Duration
	newPB := int32(d.takeFree())
	pageBuf := make([]byte, d.p.PageSize)
	oldPB := d.l2pBlock[lb]
	for slot := 0; slot < d.p.PagesPerBlock; slot++ {
		lp := int64(lb*d.p.PagesPerBlock + slot)
		src := d.latestPhys(lp)
		if src < 0 {
			continue
		}
		d.nand.readPage(src, pageBuf)
		d.nand.invalidatePage(src)
		delete(d.logMap, lp)
		dst := newPB*int32(d.p.PagesPerBlock) + int32(slot)
		d.nand.programPage(dst, pageBuf)
		lat += d.p.PageReadLatency + d.p.PageWriteLatency
	}
	if oldPB >= 0 {
		d.nand.eraseBlock(int(oldPB))
		lat += d.p.BlockEraseLatency
		d.stats.Record(storage.OpErase, int(d.nand.blockBytes()), d.p.BlockEraseLatency)
		d.p2lBlock[oldPB] = -1
		d.freeBlocks = append(d.freeBlocks, int(oldPB))
	}
	d.l2pBlock[lb] = newPB
	d.p2lBlock[newPB] = int32(lb)
	return lat
}

func (d *HybridSSD) takeFree() int {
	if len(d.freeBlocks) == 0 {
		panic("flashsim: hybrid log FTL out of free blocks")
	}
	b := d.freeBlocks[len(d.freeBlocks)-1]
	d.freeBlocks = d.freeBlocks[:len(d.freeBlocks)-1]
	return b
}

// Trim implements storage.Trimmer: whole covered pages are invalidated in
// both the log and the data block.
func (d *HybridSSD) Trim(off, n int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := storage.CheckRange(d.name, d.Size(), off, int(n)); err != nil {
		return 0, err
	}
	pageSize := int64(d.p.PageSize)
	for pos := off; pos < off+n; {
		lp := pos / pageSize
		po := pos % pageSize
		span := pageSize - po
		if off+n-pos < span {
			span = off + n - pos
		}
		if po == 0 && span == pageSize {
			if phys, ok := d.logMap[lp]; ok {
				d.nand.invalidatePage(phys)
				delete(d.logMap, lp)
			}
			lb := int(lp) / d.p.PagesPerBlock
			if pb := d.l2pBlock[lb]; pb >= 0 {
				d.nand.invalidatePage(pb*int32(d.p.PagesPerBlock) + int32(int(lp)%d.p.PagesPerBlock))
			}
		}
		pos += span
	}
	lat := 10 * time.Microsecond
	d.clock.AdvanceAttr(lat, simclock.CompSSDProgram)
	d.stats.Record(storage.OpTrim, int(n), lat)
	d.emit(storage.Op{Device: d.name, Kind: storage.OpTrim, Offset: off, Len: int(n), Latency: lat})
	return lat, nil
}

func (d *HybridSSD) emit(op storage.Op) {
	if d.onOp != nil {
		d.onOp(op)
	}
}

// Stats returns host-visible operation counters.
func (d *HybridSSD) Stats() storage.DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Wear returns wear and merge counters (GCRuns reports full merges).
func (d *HybridSSD) Wear() WearStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	total, maxE := d.nand.wearSummary()
	wa := 0.0
	if d.hostPages > 0 {
		wa = float64(d.nand.programs) / float64(d.hostPages)
	}
	return WearStats{
		TotalErases:        total,
		MaxBlockErases:     maxE,
		GCRuns:             d.merges,
		GCPageCopies:       d.nand.programs - d.hostPages,
		HostPagesWritten:   d.hostPages,
		WriteAmplification: wa,
		FreeBlocks:         len(d.freeBlocks),
	}
}

// PageSize returns the NAND page size in bytes.
func (d *HybridSSD) PageSize() int { return d.p.PageSize }

// BlockSize returns the erase-block size in bytes.
func (d *HybridSSD) BlockSize() int64 { return d.nand.blockBytes() }
