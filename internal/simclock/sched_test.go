package simclock

import (
	"fmt"
	"testing"
	"time"
)

// TestEventQueueOrdering: events fire in (time, priority, insertion)
// order regardless of scheduling order — the contract the serving layer's
// replayed concurrency rests on.
func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var fired []string
	rec := func(tag string) func(time.Duration) {
		return func(at time.Duration) { fired = append(fired, fmt.Sprintf("%s@%d", tag, at)) }
	}

	// Scheduled deliberately out of order.
	q.Schedule(30, 1, rec("late"))
	q.Schedule(10, 1, rec("b")) // same (time, prio) as "a": insertion breaks the tie
	q.Schedule(10, 0, rec("completion"))
	q.Schedule(10, 1, rec("c"))
	q.Schedule(20, 1, rec("mid"))
	if at, ok := q.NextAt(); !ok || at != 10 {
		t.Fatalf("NextAt = %v, %v; want 10, true", at, ok)
	}
	if n := q.Run(); n != 5 {
		t.Fatalf("Run fired %d events, want 5", n)
	}
	want := []string{"completion@10", "b@10", "c@10", "mid@20", "late@30"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %q, want %q (full: %v)", i, fired[i], want[i], fired)
		}
	}
}

// TestEventQueueCascade: callbacks may schedule further events — Run keeps
// draining until nothing is pending, and same-time cascaded events fire
// after already-pending ones of equal priority (insertion order).
func TestEventQueueCascade(t *testing.T) {
	q := NewEventQueue()
	var fired []time.Duration
	var chain func(at time.Duration)
	chain = func(at time.Duration) {
		fired = append(fired, at)
		if at < 5 {
			q.Schedule(at+1, 0, chain)
		}
	}
	q.Schedule(1, 0, chain)
	if n := q.Run(); n != 5 {
		t.Fatalf("Run fired %d events, want 5", n)
	}
	for i, at := range fired {
		if at != time.Duration(i+1) {
			t.Fatalf("fired[%d] = %v, want %v", i, at, time.Duration(i+1))
		}
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("queue not empty after Run")
	}
	if q.RunNext() {
		t.Fatal("RunNext fired on an empty queue")
	}
}

// TestEventQueuePastScheduling: a callback at time t may schedule work at
// or before t; it fires next rather than being lost or reordered ahead of
// later-time events.
func TestEventQueuePastScheduling(t *testing.T) {
	q := NewEventQueue()
	var fired []string
	q.Schedule(10, 1, func(at time.Duration) {
		fired = append(fired, "t10")
		q.Schedule(5, 0, func(time.Duration) { fired = append(fired, "past") })
	})
	q.Schedule(20, 1, func(time.Duration) { fired = append(fired, "t20") })
	q.Run()
	want := []string{"t10", "past", "t20"}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}
