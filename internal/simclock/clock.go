// Package simclock provides the deterministic virtual time base used by
// every simulated device and by the cache hierarchy.
//
// All latencies in the reproduction are charged against a Clock rather than
// measured on the host, which makes every experiment reproducible
// bit-for-bit and independent of host noise. A Clock is a monotonically
// non-decreasing counter of simulated nanoseconds; devices advance it by the
// cost of each operation they service.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock measured in simulated nanoseconds.
//
// The zero value is a valid clock positioned at t=0. A Clock is safe for
// concurrent use; simulated components typically share one clock so that
// device latencies and think time accumulate on a single time line.
type Clock struct {
	mu        sync.Mutex
	now       time.Duration
	onAdvance func(Component, time.Duration)
}

// New returns a clock positioned at t=0.
func New() *Clock { return &Clock{} }

// Now returns the current simulated time since the start of the simulation.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// OnAdvance installs a hook invoked after every advance that actually moved
// time, with the component label and the delta. Because every path that
// moves simulated time funnels through here, an observer summing the deltas
// between two Now() reads reconstructs the elapsed interval exactly. Pass
// nil to remove the hook.
func (c *Clock) OnAdvance(fn func(Component, time.Duration)) {
	c.mu.Lock()
	c.onAdvance = fn
	c.mu.Unlock()
}

// Advance moves simulated time forward by d and returns the new time.
// Advance panics if d is negative: simulated time never runs backwards.
// The time is attributed to CompOther; components that know what the time
// was spent on use AdvanceAttr.
func (c *Clock) Advance(d time.Duration) time.Duration {
	return c.AdvanceAttr(d, CompOther)
}

// AdvanceAttr moves simulated time forward by d, attributing the time to
// component comp, and returns the new time. It panics if d is negative.
func (c *Clock) AdvanceAttr(d time.Duration, comp Component) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.mu.Lock()
	c.now += d
	now := c.now
	hook := c.onAdvance
	c.mu.Unlock()
	if hook != nil && d > 0 {
		hook(comp, d)
	}
	return now
}

// AdvanceTo moves simulated time forward to t if t is later than the current
// time; otherwise it leaves the clock unchanged. It returns the resulting
// time. This is the idiom for components that compute an absolute completion
// time (for example a rotating disk whose platter position is periodic).
// The time is attributed to CompOther.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	return c.AdvanceToAttr(t, CompOther)
}

// AdvanceToAttr moves simulated time forward to t if t is later than the
// current time, attributing the covered interval to component comp, and
// returns the resulting time.
func (c *Clock) AdvanceToAttr(t time.Duration, comp Component) time.Duration {
	c.mu.Lock()
	d := t - c.now
	if d > 0 {
		c.now = t
	}
	now := c.now
	hook := c.onAdvance
	c.mu.Unlock()
	if hook != nil && d > 0 {
		hook(comp, d)
	}
	return now
}

// Reset rewinds the clock to t=0. It is intended for reusing simulation
// fixtures between experiment runs, never for mid-run time travel.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// Stopwatch measures a span of simulated time against a clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch begins measuring simulated time on c.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the simulated time since the stopwatch was started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
