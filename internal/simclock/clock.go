// Package simclock provides the deterministic virtual time base used by
// every simulated device and by the cache hierarchy.
//
// All latencies in the reproduction are charged against a Clock rather than
// measured on the host, which makes every experiment reproducible
// bit-for-bit and independent of host noise. A Clock is a monotonically
// non-decreasing counter of simulated nanoseconds; devices advance it by the
// cost of each operation they service.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock measured in simulated nanoseconds.
//
// The zero value is a valid clock positioned at t=0. A Clock is safe for
// concurrent use; simulated components typically share one clock so that
// device latencies and think time accumulate on a single time line.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// New returns a clock positioned at t=0.
func New() *Clock { return &Clock{} }

// Now returns the current simulated time since the start of the simulation.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves simulated time forward by d and returns the new time.
// Advance panics if d is negative: simulated time never runs backwards.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves simulated time forward to t if t is later than the current
// time; otherwise it leaves the clock unchanged. It returns the resulting
// time. This is the idiom for components that compute an absolute completion
// time (for example a rotating disk whose platter position is periodic).
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to t=0. It is intended for reusing simulation
// fixtures between experiment runs, never for mid-run time travel.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// Stopwatch measures a span of simulated time against a clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch begins measuring simulated time on c.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the simulated time since the stopwatch was started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
