package simclock

import (
	"testing"
	"time"
)

func TestComponentNames(t *testing.T) {
	want := map[Component]string{
		CompOther:                    "other",
		CompHDDSeek:                  "hdd_seek",
		CompHDDTransfer:              "hdd_transfer",
		CompSSDRead:                  "ssd_read",
		CompSSDProgram:               "ssd_program",
		CompSSDEraseStall:            "ssd_erase_stall",
		CompCPUIntersect:             "cpu_intersect",
		CompCacheBookkeeping:         "cache_bookkeeping",
		Component(NumComponents + 3): "other", // out of range folds to other
	}
	for c, name := range want {
		if got := c.String(); got != name {
			t.Errorf("Component(%d).String() = %q, want %q", c, got, name)
		}
	}
	for c := Component(0); c < NumComponents; c++ {
		back, ok := ComponentByName(c.String())
		if !ok || back != c {
			t.Errorf("ComponentByName(%q) = %v,%v, want %v,true", c.String(), back, ok, c)
		}
	}
	if _, ok := ComponentByName("no_such_component"); ok {
		t.Error("ComponentByName accepted an unknown name")
	}
}

// TestComponentTable is the runtime mirror of the attrib analyzer's
// totality check, the way TestStatsEventTables mirrors statsevent: every
// Component constant must carry a componentTable rationale, the table must
// hold nothing else, and the sentinel must not appear. (The tracetool half
// of the ordering contract — every component has a summaryOrder slot — is
// TestSummaryOrderCoversEveryComponent in cmd/tracetool.)
func TestComponentTable(t *testing.T) {
	for c := Component(0); c < NumComponents; c++ {
		reason, ok := componentTable[c]
		switch {
		case !ok:
			t.Errorf("component %s (%d) has no componentTable entry", c, c)
		case reason == "":
			t.Errorf("componentTable[%s] has an empty rationale", c)
		}
	}
	if len(componentTable) != int(NumComponents) {
		for c := range componentTable {
			if c >= NumComponents {
				t.Errorf("componentTable names %d, which is not a declared Component", c)
			}
		}
	}
}

func TestOnAdvanceSeesEveryAdvance(t *testing.T) {
	c := New()
	var total [NumComponents]time.Duration
	c.OnAdvance(func(comp Component, d time.Duration) { total[comp] += d })

	start := c.Now()
	c.AdvanceAttr(3*time.Millisecond, CompHDDSeek)
	c.Advance(1 * time.Millisecond) // unlabeled -> other
	c.AdvanceToAttr(c.Now()+2*time.Millisecond, CompSSDEraseStall)
	c.AdvanceToAttr(0, CompSSDEraseStall) // backwards: no movement, no hook
	c.AdvanceAttr(0, CompSSDRead)         // zero: no hook
	elapsed := c.Now() - start

	var sum time.Duration
	for _, d := range total {
		sum += d
	}
	if sum != elapsed {
		t.Fatalf("hook deltas sum to %v, clock elapsed %v", sum, elapsed)
	}
	if total[CompHDDSeek] != 3*time.Millisecond ||
		total[CompOther] != 1*time.Millisecond ||
		total[CompSSDEraseStall] != 2*time.Millisecond ||
		total[CompSSDRead] != 0 {
		t.Fatalf("per-component totals wrong: %v", total)
	}

	// Removing the hook stops deliveries.
	c.OnAdvance(nil)
	c.AdvanceAttr(time.Second, CompHDDSeek)
	if total[CompHDDSeek] != 3*time.Millisecond {
		t.Fatal("hook fired after removal")
	}
}

func TestAdvanceAttrNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative AdvanceAttr did not panic")
		}
	}()
	New().AdvanceAttr(-time.Nanosecond, CompOther)
}
