package simclock

// Component labels where a slice of simulated time is spent. Every clock
// advance carries one; unlabeled advances fall into CompOther. The taxonomy
// partitions a query's elapsed time for latency attribution: because the
// labels are applied at the clock itself, the per-component sums are equal
// to elapsed time by construction, not by reconciliation.
type Component uint8

// The attribution components, in canonical rendering order.
const (
	// CompOther is time not claimed by any specific component (RAM device
	// transfers, unlabeled fixture advances).
	CompOther Component = iota
	// CompHDDSeek is mechanical positioning: head travel plus rotational
	// latency on the backing drive.
	CompHDDSeek
	// CompHDDTransfer is HDD command overhead plus media transfer.
	CompHDDTransfer
	// CompSSDRead is flash read service time (cache or index SSD).
	CompSSDRead
	// CompSSDProgram is flash program/trim service time.
	CompSSDProgram
	// CompSSDEraseStall is foreground time spent waiting for the cache SSD
	// to drain background program/erase work before a read can start.
	CompSSDEraseStall
	// CompCPUIntersect is engine CPU cost: postings decode and list
	// intersection.
	CompCPUIntersect
	// CompCacheBookkeeping is cache-manager L1 access cost (memory probes
	// and transfers).
	CompCacheBookkeeping
	// CompQueueWait is time a query spent queued behind other work before
	// (or instead of) executing: shard-queue delay in the serving layer,
	// and the whole latency of a coalesced (singleflight-follower) serve.
	CompQueueWait

	// NumComponents bounds arrays indexed by Component.
	NumComponents
)

// componentNames are the stable wire names used in traces, profiles and
// reports. Index by Component.
var componentNames = [NumComponents]string{
	"other",
	"hdd_seek",
	"hdd_transfer",
	"ssd_read",
	"ssd_program",
	"ssd_erase_stall",
	"cpu_intersect",
	"cache_bookkeeping",
	"queue_wait",
}

// componentTable declares, for every attribution component, why it exists
// as a distinct slice of the taxonomy. hybridlint's attrib analyzer checks
// the table is total — adding a Component constant without an entry (or
// leaving a stale entry behind) fails the build, the same way
// statsEventPairs keeps the stats≡trace pairing total. NumComponents is the
// array bound, not a component, and must not appear here.
var componentTable = map[Component]string{
	CompOther:            "the residual bucket: RAM transfers and unlabeled fixture advances, kept explicit so Σattrib≡elapsed never needs a fudge term",
	CompHDDSeek:          "mechanical positioning dominates HDD latency; the paper's core argument prices it separately from transfer",
	CompHDDTransfer:      "command overhead plus media transfer; scales with request size where seek does not",
	CompSSDRead:          "flash read service time on either SSD role (cache or index)",
	CompSSDProgram:       "program/trim cost of cache admission; the write-amplification side of caching on flash",
	CompSSDEraseStall:    "foreground reads stalled behind background program/erase; the GC-interference term",
	CompCPUIntersect:     "postings decode and list intersection; the CPU term that block compression trades against I/O",
	CompCacheBookkeeping: "L1 memory probes and transfers in the cache manager",
	CompQueueWait:        "shard-queue delay and coalesced-serve latency in the serving layer; the only component born outside the device stack",
}

// String returns the component's stable wire name.
func (c Component) String() string {
	if c < NumComponents {
		return componentNames[c]
	}
	return "other"
}

// ComponentByName maps a wire name back to its Component; ok is false for
// unknown names.
func ComponentByName(name string) (Component, bool) {
	for i, n := range componentNames {
		if n == name {
			return Component(i), true
		}
	}
	return CompOther, false
}
