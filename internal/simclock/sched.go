package simclock

import (
	"container/heap"
	"time"
)

// EventQueue is a deterministic discrete-event scheduler over the simulated
// timeline. Events fire in (time, priority, insertion) order: earlier
// simulated time first, then lower priority value, then first-scheduled
// first. Because ties are broken by explicit priority and insertion
// sequence — never by heap internals or map order — two runs that schedule
// the same events observe the same firing order, which is what lets the
// serving layer model concurrency (queued arrivals, overlapping
// completions) while keeping simulated time exact and replayable.
//
// An event callback may schedule further events; Run keeps firing until
// the queue drains. EventQueue is not safe for concurrent use: the whole
// point is that one goroutine replays the concurrent world serially.
type EventQueue struct {
	h eventHeap
}

// An event is one scheduled callback.
type event struct {
	at   time.Duration
	prio int
	seq  uint64
	fn   func(at time.Duration)
}

type eventHeap struct {
	events []event
	seq    uint64
}

func (h eventHeap) Len() int { return len(h.events) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h.events[i], h.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) { h.events[i], h.events[j] = h.events[j], h.events[i] }
func (h *eventHeap) Push(x any)   { h.events = append(h.events, x.(event)) }
func (h *eventHeap) Pop() any {
	old := h.events
	n := len(old)
	e := old[n-1]
	h.events = old[:n-1]
	return e
}

// NewEventQueue returns an empty scheduler.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Schedule enqueues fn to fire at simulated time at with the given
// priority (lower fires first among same-time events). Scheduling in the
// past is legal — the event simply fires next — because a callback
// processing time t may produce work that logically belongs at t.
func (q *EventQueue) Schedule(at time.Duration, prio int, fn func(at time.Duration)) {
	q.h.seq++
	heap.Push(&q.h, event{at: at, prio: prio, seq: q.h.seq, fn: fn})
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// Empty reports whether no events are pending.
func (q *EventQueue) Empty() bool { return q.h.Len() == 0 }

// NextAt returns the firing time of the earliest pending event; ok is
// false when the queue is empty.
func (q *EventQueue) NextAt() (at time.Duration, ok bool) {
	if q.h.Len() == 0 {
		return 0, false
	}
	return q.h.events[0].at, true
}

// RunNext pops and fires the earliest event. It reports whether an event
// fired (false means the queue was empty).
func (q *EventQueue) RunNext() bool {
	if q.h.Len() == 0 {
		return false
	}
	e := heap.Pop(&q.h).(event)
	e.fn(e.at)
	return true
}

// Run fires events until the queue drains, including events scheduled by
// the callbacks themselves. It returns the number of events fired.
func (q *EventQueue) Run() int {
	n := 0
	for q.RunNext() {
		n++
	}
	return n
}
