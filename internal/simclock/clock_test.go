package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock at %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := New()
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("Advance returned %v, want 5ms", got)
	}
	c.Advance(20 * time.Microsecond)
	want := 5*time.Millisecond + 20*time.Microsecond
	if got := c.Now(); got != want {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestClockAdvanceZeroIsNoop(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	c.Advance(0)
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now = %v, want 1s", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	if got := c.AdvanceTo(500 * time.Millisecond); got != time.Second {
		t.Fatalf("AdvanceTo backwards moved clock to %v", got)
	}
	if got := c.AdvanceTo(2 * time.Second); got != 2*time.Second {
		t.Fatalf("AdvanceTo(2s) = %v", got)
	}
}

func TestClockReset(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("after Reset, Now = %v", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != workers*perWorker*time.Nanosecond {
		t.Fatalf("Now = %v, want %v", got, workers*perWorker*time.Nanosecond)
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	sw := StartStopwatch(c)
	c.Advance(3 * time.Millisecond)
	if got := sw.Elapsed(); got != 3*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 3ms", got)
	}
	c.Advance(time.Millisecond)
	if got := sw.Elapsed(); got != 4*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 4ms", got)
	}
}
