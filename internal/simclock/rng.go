package simclock

// Deterministic pseudo-random number generation for the simulation.
//
// The reproduction needs randomness in several independent places (document
// synthesis, query synthesis, device fault injection, property tests). To
// keep experiments reproducible regardless of the order in which components
// consume random numbers, each component receives its own RNG derived from a
// master seed with Split. RNG implements a 64-bit SplitMix64/xoshiro-style
// generator from scratch so the stream is stable across Go releases, unlike
// math/rand's unspecified global behaviour.

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). It is not safe for concurrent use; Split off one RNG per
// goroutine instead.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed-expansion state and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams; the same seed always yields the same stream.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of r's future
// output. The label keeps two Splits at the same point distinct.
func (r *RNG) Split(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simclock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the polar Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
