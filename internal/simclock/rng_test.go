package simclock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("step %d: streams diverge: %d vs %d", i, x, y)
		}
	}
}

func TestRNGDistinctSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	var allZero = true
	for i := 0; i < 16; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("seed 0 produced a degenerate all-zero stream")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child1 := parent.Split(1)
	child2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if child1.Uint64() == child2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children produced %d identical values out of 100", same)
	}
}

func TestRNGSplitDeterministic(t *testing.T) {
	c1 := NewRNG(7).Split(9)
	c2 := NewRNG(7).Split(9)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("same split path diverged at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniform = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(31)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := NewRNG(77)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative value")
		}
	}
}
