// Package index is a fixture owner type: BlockCursor is annotated in
// bufOwnerTypes, so its methods may retain the loaned block across calls.
// This package is clean.
package index

import "bufalias/storage"

// BlockCursor decodes postings from a loaned block.
type BlockCursor struct {
	buf []byte
	i   int
}

// Reset points the cursor at a freshly loaned block.
func (c *BlockCursor) Reset(d *storage.Device, n int) {
	buf := make([]byte, n)
	d.ReadAt(buf, 0)
	c.buf = buf // owner types hold the loan by design
	c.i = 0
}

// Rest returns the undecoded remainder of the loan — legal only because
// BlockCursor is the annotated owner.
func (c *BlockCursor) Rest() []byte {
	return c.buf[c.i:]
}
