// Package storage is a fixture device: its path has the storage segment,
// so buffers passed to ReadAt are loans the bufalias analyzer tracks in
// importing packages. The package itself is not inspected.
package storage

// Device is the fixture block device.
type Device struct {
	data []byte
}

// ReadAt fills p from the device at off.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	return copy(p, d.data[off:]), nil
}

// Store is a fixture read-through store with the hybrid ReadListRange
// shape: the destination buffer is the third argument.
type Store struct {
	dev *Device
}

// ReadListRange fills p with the posting bytes of term t at off.
func (s *Store) ReadListRange(t uint32, off int64, p []byte) error {
	_, err := s.dev.ReadAt(p, off)
	_ = t
	return err
}
