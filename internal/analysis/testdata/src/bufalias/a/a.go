// Package a seeds the bufalias regressions: every way a device-loaned
// buffer can outlive its read, plus the flows that are legal (in-place
// decode, spread append, explicit copy).
package a

import "bufalias/storage"

type holder struct {
	kept []byte
}

var global []byte

func fieldStore(d *storage.Device, h *holder) {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	h.kept = buf // want "storing a device-loaned buffer in struct field kept"
}

func derivedFieldStore(d *storage.Device, h *holder) {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	view := buf[2:8]
	h.kept = view[1:] // want "storing a device-loaned buffer in struct field kept"
}

func globalStore(d *storage.Device) {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	global = buf // want "package-level var global"
}

func mapStore(d *storage.Device, m map[int][]byte) {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	m[1] = buf // want "map or slice element"
}

func returned(d *storage.Device) []byte {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	return buf // want "returning a device-loaned buffer"
}

func appended(d *storage.Device) {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	var batch [][]byte
	batch = append(batch, buf) // want "appending a device-loaned buffer as an element"
	_ = batch
}

func captured(d *storage.Device) {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	f := func() { // want "closure captures device-loaned buffer buf"
		decode(buf)
	}
	f()
}

func sentToGoroutine(d *storage.Device, ch chan []byte) {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	go decode(buf) // want "passing a device-loaned buffer to a goroutine"
	ch <- buf      // want "sending a device-loaned buffer on a channel"
}

func inLiteral(d *storage.Device) {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	h := holder{kept: buf} // want "storing a device-loaned buffer in a composite literal"
	_ = h
}

func listRange(s *storage.Store) []byte {
	buf := make([]byte, 16)
	s.ReadListRange(7, 0, buf)
	return buf[4:] // want "returning a device-loaned buffer"
}

// legal flows: decode in place, copy out, spread append.
func legal(d *storage.Device, h *holder) uint16 {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	v := uint16(buf[0]) | uint16(buf[1])<<8 // reading bytes is the point of the loan
	decode(buf)                             // passing to a call is fine: a callee keeping bytes must copy
	h.kept = append([]byte(nil), buf...)    // spread append copies the bytes
	owned := make([]byte, len(buf))
	copy(owned, buf)
	global = owned // a copy is not a loan
	return v
}

func allowed(d *storage.Device) []byte {
	buf := make([]byte, 16)
	d.ReadAt(buf, 0)
	//hybridlint:allow bufalias fixture: a justified escape is suppressible
	return buf
}

func decode(p []byte) {}
