// Package stale seeds the stale-directive audit: a directive naming an
// analyzer that never inspects this package, and the allocbudget
// pseudo-directive that has no allow escape hatch at all.
package stale

func staleScope() int {
	// want "stale hybridlint:allow directive: analyzer confine does not inspect package allowdir/stale"
	//hybridlint:allow confine this package launches no goroutines
	return 1
}

func budgetMute() int {
	// want "allocbudget findings are gated by the committed budget file"
	//hybridlint:allow allocbudget budgets should not be muted here
	return 2
}
