// Fixture: the allow-directive audit — a directive without a reason is a
// finding and suppresses nothing; unknown analyzer names and stale
// directives are findings too.
package a

import "time"

func missingReason() time.Time {
	// want "directive needs an analyzer name and a reason"
	//hybridlint:allow detclock
	return time.Now() // want "time.Now reads the host clock"
}

func unknownAnalyzer() {
	// want "names unknown analyzer \"frobnicate\""
	//hybridlint:allow frobnicate the analyzer name is misspelled
}

func stale() time.Duration {
	// want "unused hybridlint:allow directive"
	//hybridlint:allow detclock nothing on the next line needs suppressing
	return time.Duration(42)
}
