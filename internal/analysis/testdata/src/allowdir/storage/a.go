// Package storage (the path segment is what matters) seeds the other
// stale-directive case: bufalias never inspects device packages, so a
// bufalias directive here is dead weight.
package storage

func staleScope() int {
	// want "stale hybridlint:allow directive: analyzer bufalias does not inspect package allowdir/storage"
	//hybridlint:allow bufalias devices own their internal buffers
	return 1
}
