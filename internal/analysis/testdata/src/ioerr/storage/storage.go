// Fixture support package: mirrors the real storage package's result
// contracts (device calls return (latency, error); allocator calls return
// a boolean success).
package storage

import "time"

type Device interface {
	Name() string
	ReadAt(p []byte, off int64) (time.Duration, error)
	WriteAt(p []byte, off int64) (time.Duration, error)
}

type Allocator struct{}

func (a *Allocator) Alloc(n int64) (int64, bool) { return 0, n == 0 }

func (a *Allocator) Reserve(off, n int64) bool { return off >= 0 && n > 0 }

func (a *Allocator) Free(off, n int64) {}

func CheckRange(size, off int64, n int) error { return nil }
