// Fixture: ioerr must flag every shape of discarded storage-layer result
// and accept handled ones.
package a

import (
	"time"

	"ioerr/storage"
)

func bad(d storage.Device, al *storage.Allocator) time.Duration {
	lat, _ := d.ReadAt(nil, 0) // want "error result of storage.ReadAt assigned to _"
	d.WriteAt(nil, 0)          // want "result of storage.WriteAt discarded"
	defer d.WriteAt(nil, 0)    // want "defer discards the error of storage.WriteAt"
	off, _ := al.Alloc(8)      // want "success result of storage.Alloc assigned to _"
	al.Free(off, 8)
	return lat
}

// wantCheckRange keeps the blank assignment above honest: the one-to-one
// `_ =` form is flagged too.
func wantCheckRange() {
	_ = storage.CheckRange(8, 0, 4) // want "error result of storage.CheckRange assigned to _"
}

func good(d storage.Device, al *storage.Allocator) error {
	if _, err := d.ReadAt(nil, 0); err != nil {
		return err
	}
	if !al.Reserve(0, 8) {
		return nil
	}
	lat, err := d.WriteAt(nil, 0)
	_ = lat
	return err
}

func allowed(d storage.Device) {
	//hybridlint:allow ioerr best-effort prewarm: a failure only loses cache warmth, nothing is lost from accounting
	d.WriteAt(nil, 0)
}
