package other

import (
	"fmt"
	"io"
)

// renderReport lives in a file named report.go, which is in mapiter's
// scope in any package.
func renderReport(w io.Writer, m map[string]int) {
	for k := range m { // want "ranges over a map in an output path"
		fmt.Fprintln(w, k)
	}
}
