// Fixture: outside the scoped packages, only files named report.go /
// reportjson.go are in mapiter's scope — this file is not, so its map
// range must pass.
package other

func sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
