// Fixture: mapiter must flag direct map iteration in an output-path
// package, accept the collect-then-sort idiom, and honor a justified
// allow directive.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

func renderBad(w io.Writer, m map[string]int) {
	for k, v := range m { // want "ranges over a map in an output path"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func renderSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

func renderAllowed(w io.Writer, m map[string]int) {
	n := 0
	//hybridlint:allow mapiter summing is commutative, so iteration order cannot reach the output
	for _, v := range m {
		n += v
	}
	fmt.Fprintln(w, n)
}
