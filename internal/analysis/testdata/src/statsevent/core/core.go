// Fixture: statsevent must require the pairing tables to partition the
// Stats fields, flag paired counters mutated without their event, and
// accept properly paired mutations.
package core

type EventKind uint8

const (
	EvA EventKind = iota
	EvB
)

type Event struct {
	Kind  EventKind
	Bytes int64
}

type Stats struct {
	A int64
	B int64
	C int64 // want "Stats field C is not in the pairing table"
	D int64
}

var statsEventPairs = map[string]EventKind{
	"A":    EvA,
	"B":    EvB,
	"Gone": EvA, // want "statsEventPairs names Gone, which is not a field of Stats"
}

var statsUnpaired = map[string]string{
	"D": "", // want "statsUnpaired entry for D needs a non-empty rationale"
}

type Manager struct {
	stats  Stats
	events func(Event)
}

func (m *Manager) emit(e Event) {
	if m.events != nil {
		m.events(e)
	}
}

func (m *Manager) good(n int64) {
	m.stats.A++
	m.emit(Event{Kind: EvA, Bytes: n})
}

func (m *Manager) bad() {
	m.stats.A++ // want "Stats.A is mutated without emitting EvA"
}

func (m *Manager) wrongKind(n int64) {
	m.stats.B += n // want "Stats.B is mutated without emitting EvB"
	m.emit(Event{Kind: EvA})
}

// unpairedIsFree mutates an exempt field with no event in sight.
func (m *Manager) unpairedIsFree() {
	m.stats.D++
}

// resetIsFree assigns (not bumps) the struct, which is not a counter
// mutation.
func (m *Manager) resetIsFree() {
	m.stats = Stats{}
}
