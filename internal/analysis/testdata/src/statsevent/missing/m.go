// Fixture: a package with Stats and the event machinery but no declared
// pairing table fails at the Stats declaration.
package missing

type EventKind uint8

type Stats struct { // want "no statsEventPairs table"
	A int64
}
