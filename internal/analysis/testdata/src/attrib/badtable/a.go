// Package badtable seeds the componentTable totality regressions: a
// missing entry, an empty rationale, a stale key, and a sentinel entry.
package badtable

// Component labels where simulated time is spent.
type Component uint8

// The fixture components.
const (
	CompX Component = iota
	CompY           // want "CompY has no componentTable entry"

	// NumComponents bounds arrays indexed by Component.
	NumComponents
)

// NotAComponent is an untyped constant, not a Component.
const NotAComponent = 7

var componentTable = map[Component]string{
	CompX:         "",      // want "entry for CompX needs a non-empty rationale"
	NotAComponent: "stale", // want "NotAComponent, which is not a Component constant"
	NumComponents: "bound", // want "NumComponents is the array-bound sentinel"
}
