// Package order seeds the summaryOrder regressions: a duplicate entry, the
// sentinel, a non-constant element, and an omitted component.
package order

import simclock "attrib/clockpkg"

// summaryOrder omits CompB, which must be reported at the declaration.
// want "summaryOrder omits CompB"
var summaryOrder = []simclock.Component{
	simclock.CompA,
	simclock.CompA,         // want "summaryOrder lists CompA twice"
	simclock.NumComponents, // want "NumComponents is the array-bound sentinel"
	simclock.Component(1),  // want "elements must be named Component constants"
}
