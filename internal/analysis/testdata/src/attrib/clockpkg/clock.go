// Package simclock is a fixture re-declaring the shapes the attrib
// analyzer keys on: the Clock advance methods, the Component enum, and a
// total componentTable. This package itself is clean.
package simclock

// Component labels where simulated time is spent.
type Component uint8

// The fixture components.
const (
	CompA Component = iota
	CompB

	// NumComponents bounds arrays indexed by Component.
	NumComponents
)

// componentTable declares a rationale for every component.
var componentTable = map[Component]string{
	CompA: "first fixture component",
	CompB: "second fixture component",
}

// Clock is the fixture simulated clock.
type Clock struct {
	now int64
}

// AdvanceAttr advances by d, attributed to comp.
func (c *Clock) AdvanceAttr(d int64, comp Component) {
	c.now += d
	_ = comp
}

// AdvanceToAttr advances to t, attributed to comp.
func (c *Clock) AdvanceToAttr(t int64, comp Component) {
	c.now = t
	_ = comp
}

// Advance advances by d, attributed to CompA.
func (c *Clock) Advance(d int64) { c.AdvanceAttr(d, CompA) }

// AdvanceTo advances to t, attributed to CompA.
func (c *Clock) AdvanceTo(t int64) { c.AdvanceToAttr(t, CompA) }
