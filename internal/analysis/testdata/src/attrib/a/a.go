// Package a seeds the attrib call-site regressions: computed components,
// the NumComponents sentinel, and unattributed bare advances.
package a

import simclock "attrib/clockpkg"

func attributed(c *simclock.Clock) {
	c.AdvanceAttr(10, simclock.CompA)
	c.AdvanceToAttr(20, simclock.CompB)
}

func computed(c *simclock.Clock, comp simclock.Component) {
	c.AdvanceAttr(10, comp)                     // want "must be passed a named simclock.Component constant"
	c.AdvanceAttr(10, simclock.Component(1))    // want "must be passed a named simclock.Component constant"
	c.AdvanceToAttr(20, simclock.NumComponents) // want "array-bound sentinel"
}

func bare(c *simclock.Clock) {
	c.Advance(5)    // want "bare Advance silently attributes the advance to CompOther"
	c.AdvanceTo(50) // want "bare AdvanceTo silently attributes the advance to CompOther"
}

func allowed(c *simclock.Clock) {
	//hybridlint:allow attrib fixture: a justified bare advance is suppressible
	c.Advance(5)
}
