// Package allowedpkg proves the attribBareAllowed table suppresses bare
// advance findings: this fixture path is listed there with a rationale, so
// the calls below produce no findings.
package allowedpkg

import simclock "attrib/clockpkg"

func bareButAllowed(c *simclock.Clock) {
	c.Advance(5)
	c.AdvanceTo(50)
}
