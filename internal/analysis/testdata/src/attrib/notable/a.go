// Package notable declares Component constants but no componentTable at
// all, which is itself a finding at the type declaration.
package notable

// Component labels where simulated time is spent.
type Component uint8 // want "no componentTable"

// CompOnly is the sole fixture component.
const CompOnly Component = 0
