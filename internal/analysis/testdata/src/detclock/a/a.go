// Fixture: detclock must flag wall-clock reads and math/rand, and honor a
// justified allow directive.
package a

import (
	"math/rand" // want "import of math/rand: derive randomness from a simclock.RNG"
	"time"
)

func bad() time.Duration {
	t0 := time.Now() // want "time.Now reads the host clock"
	_ = rand.Int()
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
	return time.Since(t0)        // want "time.Since reads the host clock"
}

// conversionsAreFine exercises the time-package surface that carries no
// nondeterminism and must not be flagged.
func conversionsAreFine(us float64) time.Duration {
	d := time.Duration(us * float64(time.Microsecond))
	return d.Round(time.Microsecond)
}

func allowed() int64 {
	return time.Now().UnixNano() //hybridlint:allow detclock host timestamp for a log line, never enters simulated state
}
