// Package experiments seeds the confine regressions for the runner: the
// per-slot slice idiom (legal) against shared-index writes and captured
// counters (findings).
package experiments

// perSlot is the sanctioned worker idiom: every goroutine writes only the
// slots its closure-local index selects, so the slots are disjoint.
func perSlot(idx chan int, errs []error, fn func(int) error) {
	go func() {
		for i := range idx {
			errs[i] = fn(i)
		}
	}()
}

var cursor int

func sharedIndex(errs []error, fn func(int) error) {
	go func() {
		errs[cursor] = fn(cursor) // want "goroutine writes to captured slice errs through a shared index"
		cursor++                  // want "goroutine mutates captured cursor without synchronization"
	}()
}

func mapWrite(hits map[string]int) {
	go func() {
		hits["q"]++ // want "goroutine writes to captured map hits"
	}()
}
