// Package serve seeds the confine regressions for the serving layer:
// cross-shard reach from scheduled callbacks and goroutines, unsynchronized
// captured-state mutation, and the sanctioned bound-at-creation idiom.
package serve

import (
	"sync"

	"confine/hybrid"
	"confine/simclock"
)

type shard struct {
	sys *hybrid.System
}

type pool struct {
	shards []*shard
	mu     sync.Mutex
	total  int
	counts map[string]int
}

// crossShard reaches into the shard container from inside the callback:
// the shard must be picked when the closure is made, not when it runs.
func (p *pool) crossShard(q *simclock.EventQueue, i int) {
	q.Schedule(10, func() {
		p.shards[i].sys.Served++ // want "event-queue callback indexes into the shard container shards"
	})
}

func (p *pool) rangeShards(q *simclock.EventQueue) {
	q.Schedule(10, func() {
		for _, sh := range p.shards { // want "event-queue callback ranges over the shard container shards"
			_ = sh
		}
	})
}

// boundShard is the sanctioned pattern: the shard is selected at creation
// time and the callback mutates only state reachable from it.
func (p *pool) boundShard(q *simclock.EventQueue, i int) {
	sh := p.shards[i]
	q.Schedule(10, func() {
		sh.sys.Served++
	})
}

func (p *pool) counters(q *simclock.EventQueue) {
	q.Schedule(10, func() {
		p.total++            // want "callback mutates captured p without synchronization"
		p.counts["served"]++ // want "callback writes to captured map counts"
	})
}

// locked shows the declared synchronization idiom: mutations under the
// pool mutex are not findings.
func (p *pool) locked(q *simclock.EventQueue) {
	q.Schedule(10, func() {
		p.mu.Lock()
		p.total++
		p.counts["served"]++
		p.mu.Unlock()
	})
}

func (p *pool) goroutine() {
	go func() {
		p.total++ // want "goroutine mutates captured p without synchronization"
	}()
}
