// Package hybrid is a fixture re-declaring the System shape the confine
// analyzer keys on for shard-container detection.
package hybrid

// System is the fixture per-shard simulation instance.
type System struct {
	Served int
}
