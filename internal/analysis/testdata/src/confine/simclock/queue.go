// Package simclock is a fixture re-declaring the EventQueue shape: a
// closure passed to Schedule is a deferred callback the confine analyzer
// inspects like a goroutine body.
package simclock

// EventQueue is the fixture deterministic event queue.
type EventQueue struct {
	fns []func()
}

// Schedule enqueues fn to run at time at.
func (q *EventQueue) Schedule(at int64, fn func()) {
	_ = at
	q.fns = append(q.fns, fn)
}
