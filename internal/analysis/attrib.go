package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// Attrib makes Σattrib≡elapsed total the same way statsevent made
// stats≡trace total: every slice of simulated time must carry a declared
// attribution label.
//
//   - Every call to Clock.AdvanceAttr / Clock.AdvanceToAttr must pass a
//     named simclock.Component constant (not a computed value, not the
//     NumComponents sentinel), so attribution labels are grep-able and the
//     componentTable below can be checked for totality.
//   - Bare Clock.Advance / Clock.AdvanceTo calls silently attribute to
//     CompOther; outside the packages enumerated (with a rationale) in
//     attribBareAllowed they fail the build.
//   - The package declaring the Component type must declare a
//     componentTable mapping every Component constant (except the
//     NumComponents sentinel) to a non-empty rationale for its existence.
//   - Any package declaring a summaryOrder variable (tracetool's rendering
//     order) must list every Component constant exactly once, so a newly
//     added component cannot silently vanish from reports.
var Attrib = &Analyzer{
	Name: "attrib",
	Doc:  "clock advances must carry a declared attribution Component",
	Run:  runAttrib,
}

// Names of the declarations the analyzer keys on.
const (
	componentTypeName  = "Component"
	componentSentinel  = "NumComponents"
	componentTableName = "componentTable"
	summaryOrderName   = "summaryOrder"
	clockTypeName      = "Clock"
	clockPkgName       = "simclock"
)

// attribBareAllowed lists the packages permitted to call the bare
// Advance/AdvanceTo forms (which attribute to CompOther), each with the
// reason the default label is correct there. Everywhere else, an advance
// without an explicit Component is a lint failure.
var attribBareAllowed = map[string]string{
	"hybridstore/internal/storage": "RAM device transfers are unclaimed time by design: the Advance default of CompOther keeps Σattrib≡elapsed without inventing a RAM component nobody reports on",
	"attrib/allowedpkg":            "fixture: proves the bare-call allowlist suppresses findings",
}

func runAttrib(pass *Pass) {
	checkAdvanceCalls(pass)
	checkComponentTable(pass)
	checkSummaryOrder(pass)
}

// checkAdvanceCalls enforces the call-site half of the contract in every
// package: attributed advances pass a Component constant, bare advances
// appear only in allowlisted packages.
func checkAdvanceCalls(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "AdvanceAttr", "AdvanceToAttr":
				if !isClockMethod(pass, call, sel.Sel.Name) || len(call.Args) < 2 {
					return true
				}
				if c, ok := componentConst(pass, call.Args[1]); !ok {
					pass.Reportf(call.Args[1].Pos(), "%s must be passed a named %s.%s constant, not a computed value: attribution labels are part of the declared taxonomy (Σattrib≡elapsed contract)", sel.Sel.Name, clockPkgName, componentTypeName)
				} else if c.Name() == componentSentinel {
					pass.Reportf(call.Args[1].Pos(), "%s is the array-bound sentinel, not an attribution label: pass a real %s constant", componentSentinel, componentTypeName)
				}
			case "Advance", "AdvanceTo":
				if !isClockMethod(pass, call, sel.Sel.Name) {
					return true
				}
				if _, ok := attribBareAllowed[pass.Path]; !ok {
					pass.Reportf(call.Pos(), "bare %s silently attributes the advance to CompOther: use %sAttr with an explicit Component, or add this package to attribBareAllowed with a rationale", sel.Sel.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// isClockMethod reports whether call resolves to the named method on the
// simulated clock (a method of a type named Clock declared in a package
// named simclock — matched by name so the golden fixtures, which re-declare
// the shape under a testdata path, exercise the same code).
func isClockMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := methodNamed(pass, call, name)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return typeIs(sig.Recv().Type(), clockPkgName, clockTypeName)
}

// componentConst resolves e (an identifier or pkg.Name selector, possibly
// parenthesized) to a declared constant of the Component type.
func componentConst(pass *Pass, e ast.Expr) (*types.Const, bool) {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil, false
	}
	c, ok := pass.Info.Uses[id].(*types.Const)
	if !ok || !typeIs(c.Type(), clockPkgName, componentTypeName) {
		return nil, false
	}
	return c, true
}

// componentConsts enumerates the Component constants declared in scope
// (excluding the NumComponents sentinel), sorted by constant value so
// reports follow declaration order.
func componentConsts(scope *types.Scope, pkgName string) []*types.Const {
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Name() == componentSentinel || !typeIs(c.Type(), pkgName, componentTypeName) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		return constUint(out[i]) < constUint(out[j])
	})
	return out
}

func constUint(c *types.Const) uint64 {
	v, _ := constant.Uint64Val(constant.ToInt(c.Val()))
	return v
}

// checkComponentTable enforces totality of the componentTable declared next
// to the Component type: one entry with a non-empty rationale per constant,
// no sentinel entry, no stale keys.
func checkComponentTable(pass *Pass) {
	tn, ok := pass.Types.Scope().Lookup(componentTypeName).(*types.TypeName)
	if !ok || !typeIs(tn.Type(), pass.Types.Name(), componentTypeName) {
		return
	}
	consts := componentConsts(pass.Types.Scope(), pass.Types.Name())
	if len(consts) == 0 {
		return
	}
	table, positions := identKeyEntries(pass, componentTableName)
	if table == nil {
		pass.Reportf(tn.Pos(), "package declares %s constants but no %s: declare the table so attrib can check every component is accounted for", componentTypeName, componentTableName)
		return
	}
	for _, c := range consts {
		reason, ok := table[c.Name()]
		switch {
		case !ok:
			pass.Reportf(c.Pos(), "%s constant %s has no %s entry: every attribution component needs a declared rationale", componentTypeName, c.Name(), componentTableName)
		case reason == "":
			pass.Reportf(positions[c.Name()], "%s entry for %s needs a non-empty rationale", componentTableName, c.Name())
		}
	}
	names := map[string]bool{}
	for _, c := range consts {
		names[c.Name()] = true
	}
	for key := range table {
		if key == componentSentinel {
			pass.Reportf(positions[key], "%s is the array-bound sentinel, not a component: remove its %s entry", componentSentinel, componentTableName)
		} else if !names[key] {
			pass.Reportf(positions[key], "%s names %s, which is not a %s constant of this package", componentTableName, key, componentTypeName)
		}
	}
}

// checkSummaryOrder enforces that a summaryOrder declaration (tracetool's
// rendering order) covers every Component constant exactly once. The
// constants are enumerated from the package that declares the elements, so
// the check works both for tracetool (selector elements) and for fixtures
// declaring everything in one package.
func checkSummaryOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != summaryOrderName || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				auditSummaryOrder(pass, vs.Names[0], lit)
			}
		}
	}
}

func auditSummaryOrder(pass *Pass, name *ast.Ident, lit *ast.CompositeLit) {
	seen := map[string]token.Pos{}
	var declPkg *types.Package
	for _, elt := range lit.Elts {
		c, ok := componentConst(pass, elt)
		if !ok {
			pass.Reportf(elt.Pos(), "%s elements must be named %s constants", summaryOrderName, componentTypeName)
			continue
		}
		declPkg = c.Pkg()
		if c.Name() == componentSentinel {
			pass.Reportf(elt.Pos(), "%s is the array-bound sentinel, not a component: remove it from %s", componentSentinel, summaryOrderName)
			continue
		}
		if _, dup := seen[c.Name()]; dup {
			pass.Reportf(elt.Pos(), "%s lists %s twice", summaryOrderName, c.Name())
			continue
		}
		seen[c.Name()] = elt.Pos()
	}
	if declPkg == nil {
		return
	}
	for _, c := range componentConsts(declPkg.Scope(), declPkg.Name()) {
		if _, ok := seen[c.Name()]; !ok {
			pass.Reportf(name.Pos(), "%s omits %s: every declared component must appear in the rendering order, or a new component silently vanishes from reports", summaryOrderName, c.Name())
		}
	}
}

// identKeyEntries reads a package-level `var name = map[K]string{...}`
// composite literal whose keys are identifiers or pkg.Name selectors,
// returning entry string values keyed by the key's identifier name, plus
// per-entry positions. Returns a nil map when no such declaration exists.
func identKeyEntries(pass *Pass, name string) (map[string]string, map[string]token.Pos) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != name || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				entries := map[string]string{}
				positions := map[string]token.Pos{}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					var key string
					switch k := kv.Key.(type) {
					case *ast.Ident:
						key = k.Name
					case *ast.SelectorExpr:
						key = k.Sel.Name
					default:
						continue
					}
					val, _ := stringLit(kv.Value)
					entries[key] = val
					positions[key] = kv.Pos()
				}
				return entries, positions
			}
		}
	}
	return nil, nil
}
