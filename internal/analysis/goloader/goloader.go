// Package goloader loads type-checked packages for hybridlint using only
// the standard library and the go toolchain on PATH.
//
// It shells out to `go list -deps -export -json`, which (re)builds export
// data for every dependency in the build cache, then parses the target
// packages from source and type-checks them against that export data via
// go/importer. This works fully offline — no module downloads, no
// golang.org/x/tools — which is the constraint that shaped hybridlint's
// in-tree analysis framework.
package goloader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"hybridstore/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Err string
}

// list runs `go list -deps -export -json` over patterns in dir (or the
// current directory when dir is empty) and returns the decoded entries.
func list(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportImporter resolves imports from compiler export data, consulting
// `go list` on demand for paths it has not seen yet (the harness imports
// stdlib packages lazily this way).
type ExportImporter struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
}

// NewExportImporter returns an importer over fset with an initially empty
// export index.
func NewExportImporter(fset *token.FileSet) *ExportImporter {
	e := &ExportImporter{fset: fset, exports: map[string]string{}}
	e.imp = importer.ForCompiler(fset, "gc", e.lookup).(types.ImporterFrom)
	return e
}

// add records the export files of pkgs.
func (e *ExportImporter) add(pkgs []*listedPackage) {
	for _, p := range pkgs {
		if p.Export != "" {
			e.exports[p.ImportPath] = p.Export
		}
	}
}

// lookup opens the export data for path, listing it (with its deps) first
// if it is not in the index yet.
func (e *ExportImporter) lookup(path string) (io.ReadCloser, error) {
	if _, ok := e.exports[path]; !ok {
		pkgs, err := list("", path)
		if err != nil {
			return nil, err
		}
		e.add(pkgs)
	}
	file, ok := e.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// Import implements types.Importer.
func (e *ExportImporter) Import(path string) (*types.Package, error) {
	return e.imp.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (e *ExportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return e.imp.ImportFrom(path, dir, mode)
}

// Load lists patterns, then parses and type-checks every matched (non-dep)
// package, returning them sorted by import path.
func Load(patterns ...string) ([]*analysis.Package, error) {
	listed, err := list("", patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset)
	imp.add(listed)

	var out []*analysis.Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(lp.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		out = append(out, &analysis.Package{
			Path:  lp.ImportPath,
			Fset:  fset,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Check type-checks one package's parsed files with the use/def/type maps
// hybridlint's analyzers need.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	return pkg, info, err
}
