// Package analysistest runs hybridlint analyzers over golden fixture
// packages, in the style of golang.org/x/tools/go/analysis/analysistest
// (which cannot be depended on here — the build must work offline from a
// bare toolchain, so this is a small stdlib-only re-implementation).
//
// Fixtures live under testdata/src/<importpath>/ with GOPATH-style import
// resolution: a fixture may import another fixture package by its
// testdata-relative path, and standard-library imports resolve through the
// toolchain's export data. Expected findings are declared with want
// comments holding one or more double-quoted regular expressions:
//
//	for k := range m { // want "ranges over a map"
//
// A want comment standing alone on its line applies to the next line
// (useful when the finding lands on a directive or declaration line). The
// test fails on any unmatched expectation and on any unexpected finding.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"hybridstore/internal/analysis"
	"hybridstore/internal/analysis/goloader"
)

// TestData returns the absolute path of the calling test's testdata root.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads the fixture package at <testdata>/src/<path>, runs the given
// analyzers (plus the always-on allow-directive audit), and checks the
// resulting findings against the fixture's want comments.
func Run(t *testing.T, testdata, path string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg := load(t, filepath.Join(testdata, "src"), path)
	diags := analysis.Run(pkg, analyzers)
	checkWants(t, pkg, diags)
}

// loader caches fixture packages so cross-fixture imports type-check once.
type loader struct {
	t     *testing.T
	root  string
	fset  *token.FileSet
	std   *goloader.ExportImporter
	cache map[string]*analysis.Package
}

func load(t *testing.T, root, path string) *analysis.Package {
	fset := token.NewFileSet()
	ld := &loader{
		t:     t,
		root:  root,
		fset:  fset,
		std:   goloader.NewExportImporter(fset),
		cache: map[string]*analysis.Package{},
	}
	return ld.load(path)
}

// Import resolves fixture-local packages from the testdata tree and
// everything else from toolchain export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.root, path); dirExists(dir) {
		return ld.load(path).Types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) *analysis.Package {
	ld.t.Helper()
	if pkg, ok := ld.cache[path]; ok {
		return pkg
	}
	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("fixture %s: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		ld.t.Fatalf("fixture %s: no .go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.t.Fatalf("fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	tpkg, info, err := goloader.Check(path, ld.fset, files, ld)
	if err != nil {
		ld.t.Fatalf("type-checking fixture %s: %v", path, err)
	}
	pkg := &analysis.Package{Path: path, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.cache[path] = pkg
	return pkg
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// wantRe extracts the quoted regexps of a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want regexp anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants scans the fixture's comments for want expectations.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		lineHasCode := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.File, *ast.Comment, *ast.CommentGroup:
				return true
			}
			lineHasCode[pkg.Fset.Position(n.Pos()).Line] = true
			lineHasCode[pkg.Fset.Position(n.End()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if !lineHasCode[line] {
					// Stand-alone want comment applies to the next line.
					line++
				}
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					out = append(out, &expectation{file: pos.Filename, line: line, re: re, raw: m[1]})
				}
			}
		}
	}
	return out
}

// checkWants matches findings against expectations one-to-one.
func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	used := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if used[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				used[i] = true
				w.matched = true
				break
			}
		}
		if !w.matched {
			t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}
