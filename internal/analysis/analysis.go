// Package analysis implements hybridlint, a suite of static analyzers that
// machine-check the repository's load-bearing contracts:
//
//   - determinism: simulated time and randomness flow exclusively through
//     internal/simclock (analyzer detclock), and output paths never iterate
//     maps in Go's randomized order (analyzer mapiter), so every run is
//     byte-identical at any -jobs count;
//   - stats≡trace: every paired core.Stats counter mutation is accompanied
//     by the matching manager event in the same function, driven by the
//     pairing table declared next to the counters (analyzer statsevent);
//   - error accounting: no storage-device or allocator result is silently
//     discarded, so injected faults can never vanish (analyzer ioerr);
//   - Σattrib≡elapsed: every clock advance carries a Component constant
//     declared in simclock's componentTable, and tracetool renders every
//     declared component (analyzer attrib);
//   - zero-copy lifetime: a buffer filled by a device read is on loan for
//     decoding only and may not outlive the read (analyzer bufalias);
//   - shard confinement: concurrently launched closures and event-queue
//     callbacks touch only state bound to them at creation (analyzer
//     confine).
//
// The attrib, bufalias and confine analyzers share a small intra-procedural
// dataflow layer (dataflow.go): def/use value tracking over go/ast+go/types
// that follows local aliases of a value through assignments and reslicings
// inside one function body. Analysis never crosses function boundaries —
// which is a feature, not a shortcut: a callee that wants to keep bytes
// must copy them, and the copy is visible in the caller.
//
// An eighth check, allocbudget (allocbudget.go), is not AST-based at all:
// it replays the compiler's escape analysis (`go build -gcflags=-m`)
// against the committed per-function heap-allocation budget in
// allocbudget.txt, turning the hot path's allocation discipline into a
// regression-gated contract.
//
// The framework is a deliberately small, dependency-free re-implementation
// of the golang.org/x/tools/go/analysis surface this repo needs (the real
// module cannot be vendored here; the build must work from a bare Go
// toolchain with no module downloads). Analyzers receive a type-checked
// package and report position-tagged diagnostics; a finding may be
// suppressed with a justified escape hatch:
//
//	//hybridlint:allow <analyzer> <reason...>
//
// placed on the offending line or alone on the line directly above it. The
// linter itself audits the directives: a missing reason, an unknown
// analyzer name, or a directive that suppresses nothing is a finding in its
// own right (reported under the pseudo-analyzer "allow"), so the escape
// hatch cannot rot into a blanket mute.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
	// Inspects, when non-nil, reports whether the analyzer looks at the
	// package with the given import path at all. The allow-directive audit
	// uses it to flag directives that can never fire: an allow naming an
	// analyzer that does not inspect the surrounding package is dead weight
	// left behind by a refactor, not a suppression. Nil means the analyzer
	// inspects every package.
	Inspects func(path string) bool
}

// A Package is one type-checked unit under analysis.
type Package struct {
	// Path is the package's import path (fixture paths in tests).
	Path string
	// Fset maps AST positions back to file/line/column.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the use/def/type maps filled by the type checker.
	Info *types.Info
}

// A Pass connects one Analyzer run to its Package and diagnostic sink.
type Pass struct {
	*Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the vet-like file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// AllowPrefix is the comment prefix of the escape-hatch directive.
const AllowPrefix = "hybridlint:allow"

// A directive is one parsed //hybridlint:allow comment. A trailing
// directive guards its own source line; a directive standing alone on its
// line guards the whole statement (or declaration) that starts on the next
// line, including its continuation lines.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	// [fromLine, toLine] is the guarded line range within pos.Filename.
	fromLine, toLine int
	used             bool
}

// parseDirectives extracts every allow directive from the package's files.
func parseDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				d := &directive{
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      pos,
					fromLine: pos.Line,
					toLine:   pos.Line,
				}
				if onlyCommentOnLine(pkg.Fset, f, c) {
					d.fromLine = pos.Line + 1
					d.toLine = stmtEndLine(pkg.Fset, f, pos.Line+1)
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// stmtEndLine returns the last line of the widest statement, declaration or
// spec starting on the given line of f, or the line itself when nothing
// starts there.
func stmtEndLine(fset *token.FileSet, f *ast.File, line int) int {
	end := line
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl, ast.Spec:
			if fset.Position(n.Pos()).Line == line {
				if e := fset.Position(n.End()).Line; e > end {
					end = e
				}
			}
		}
		return true
	})
	return end
}

// onlyCommentOnLine reports whether comment c shares its line with no other
// syntax in f (i.e. the directive stands alone and guards the next line).
// "Shares" means some non-comment node starts or ends on the same line;
// enclosing multi-line nodes (the surrounding function, block, file) do not
// count.
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.File, *ast.Comment, *ast.CommentGroup:
			return true
		}
		if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
			alone = false
		}
		return alone
	})
	return alone
}

// guards reports whether d suppresses a diagnostic of the given analyzer
// at pos. Directives without a reason never suppress — an unjustified mute
// must not silence the underlying finding.
func (d *directive) guards(an string, pos token.Position) bool {
	return d.reason != "" && d.analyzer == an && d.pos.Filename == pos.Filename &&
		pos.Line >= d.fromLine && pos.Line <= d.toLine
}

// Run executes the analyzers over one package, applies allow directives,
// audits the directives themselves, and returns the surviving findings
// sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]*Analyzer, len(analyzers))
	for _, a := range All() {
		known[a.Name] = a
	}
	for _, a := range analyzers {
		known[a.Name] = a
	}

	dirs := parseDirectives(pkg)
	var raw []Diagnostic
	for _, a := range analyzers {
		if a.Inspects != nil && !a.Inspects(pkg.Path) {
			continue
		}
		a.Run(&Pass{Package: pkg, analyzer: a, diags: &raw})
	}

	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, dir := range dirs {
			if dir.guards(d.Analyzer, d.Pos) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	for _, dir := range dirs {
		a, isKnown := known[dir.analyzer]
		switch {
		case dir.analyzer == "" || dir.reason == "":
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("%s directive needs an analyzer name and a reason: //%s <analyzer> <why this is safe>", AllowPrefix, AllowPrefix)})
		case dir.analyzer == AllocBudgetName:
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("%s findings are gated by the committed budget file, not by directives: adjust the function's entry in allocbudget.txt instead", AllocBudgetName)})
		case !isKnown:
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("%s names unknown analyzer %q", AllowPrefix, dir.analyzer)})
		case a.Inspects != nil && !a.Inspects(pkg.Path):
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("stale %s directive: analyzer %s does not inspect package %s, so this can never suppress anything", AllowPrefix, dir.analyzer, pkg.Path)})
		case !dir.used:
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("unused %s directive: no %s finding here to suppress", AllowPrefix, dir.analyzer)})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// All returns the full AST-based hybridlint suite in reporting order. The
// eighth check, allocbudget, is not package-scoped (it runs the compiler's
// escape analysis over the whole module) and is invoked separately via
// RunAllocBudget; its name is still known to the directive audit through
// AllocBudgetName.
func All() []*Analyzer {
	return []*Analyzer{Detclock, Mapiter, Statsevent, Ioerr, Attrib, Bufalias, Confine}
}

// pathSegment reports whether the import path contains seg as a whole
// path element ("a/experiments/b" matches "experiments").
func pathSegment(path, seg string) bool {
	for _, p := range strings.Split(path, "/") {
		if p == seg {
			return true
		}
	}
	return false
}
