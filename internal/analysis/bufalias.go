package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Bufalias enforces the zero-copy lifetime rule from the block-compressed
// read path: a []byte filled by a storage/flashsim/disksim ReadAt (or a
// ReadListRange that forwards to one), and every value deriving from it by
// assignment or reslicing, is on loan for the duration of the enclosing
// call. It may be decoded in place, but it may not outlive the call: storing
// it into a struct field, package-level variable, map or slice element,
// returning it, appending it as an element (spread copies are fine),
// sending it on a channel, or capturing it in a closure or go statement all
// let the alias survive past the next read that recycles the buffer.
//
// The one sanctioned holder of loaned bytes is an owner type listed in
// bufOwnerTypes (index.BlockCursor): its methods manage the loan as a unit,
// so field stores and returns inside them are exempt. Passing a loaned
// buffer to an ordinary call is deliberately not flagged — analysis is
// intra-procedural, and a callee that wants to keep the bytes must copy
// them, which is visible in the callee's own package.
//
// The device packages themselves (path segments storage, flashsim, disksim)
// are not inspected: they implement the loan, they don't take one out.
var Bufalias = &Analyzer{
	Name:     "bufalias",
	Doc:      "device-loaned buffers may not outlive the read call",
	Run:      runBufalias,
	Inspects: bufaliasInspects,
}

func bufaliasInspects(path string) bool {
	return !pathSegment(path, "storage") && !pathSegment(path, "flashsim") && !pathSegment(path, "disksim")
}

// bufOwnerTypes are the named types annotated as legitimate owners of
// loaned bytes, keyed by {package name, type name}, with the rationale.
var bufOwnerTypes = map[[2]string]string{
	{"index", "BlockCursor"}: "owns decode state over the loaned block by design: Reset takes the loan, Next consumes it before the next read",
}

func runBufalias(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			bufaliasFunc(pass, fn)
		}
	}
}

// deviceReadBuffer returns the buffer argument loaned out by call, or nil
// when call is not a device read. ReadAt methods qualify when declared in a
// package whose path has a device segment; ReadListRange is the hybrid
// store's read-through entry point and loans its destination everywhere.
func deviceReadBuffer(pass *Pass, call *ast.CallExpr) ast.Expr {
	if fn := methodNamed(pass, call, "ReadAt"); fn != nil && fn.Pkg() != nil && len(call.Args) >= 1 {
		if p := fn.Pkg().Path(); pathSegment(p, "storage") || pathSegment(p, "flashsim") || pathSegment(p, "disksim") {
			return call.Args[0]
		}
	}
	if fn := methodNamed(pass, call, "ReadListRange"); fn != nil && len(call.Args) >= 3 {
		return call.Args[2]
	}
	return nil
}

// isOwnerMethod reports whether fn is a method of an annotated owner type.
func isOwnerMethod(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	named := namedType(pass.Info.TypeOf(fn.Recv.List[0].Type))
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	_, ok := bufOwnerTypes[[2]string{named.Obj().Pkg().Name(), named.Obj().Name()}]
	return ok
}

func bufaliasFunc(pass *Pass, fn *ast.FuncDecl) {
	// Seed: every variable a device read fills inside this body.
	t := newTaint(pass)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if buf := deviceReadBuffer(pass, call); buf != nil {
				t.add(buf)
			}
		}
		return true
	})
	if len(t.vars) == 0 {
		return
	}
	t.propagate(fn.Body)
	owner := isOwnerMethod(pass, fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if t.tainted(rhs) {
					bufaliasStore(pass, st.Lhs[i], owner)
				}
			}
		case *ast.ReturnStmt:
			if owner {
				return true
			}
			for _, r := range st.Results {
				if t.tainted(r) {
					pass.Reportf(r.Pos(), "returning a device-loaned buffer lets it outlive the read: copy the bytes, or make the holder an annotated owner type (zero-copy lifetime rule)")
				}
			}
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "append" {
				for i := 1; i < len(st.Args); i++ {
					if st.Ellipsis != token.NoPos && i == len(st.Args)-1 {
						continue // append(dst, loaned...) copies the bytes
					}
					if t.tainted(st.Args[i]) {
						pass.Reportf(st.Args[i].Pos(), "appending a device-loaned buffer as an element stores an alias that outlives the read: append its bytes with ... (which copies) or copy explicitly")
					}
				}
			}
		case *ast.GoStmt:
			for _, a := range st.Call.Args {
				if t.tainted(a) {
					pass.Reportf(a.Pos(), "passing a device-loaned buffer to a goroutine lets it outlive the read: copy the bytes first")
				}
			}
		case *ast.SendStmt:
			if t.tainted(st.Value) {
				pass.Reportf(st.Value.Pos(), "sending a device-loaned buffer on a channel lets it outlive the read: copy the bytes first")
			}
		case *ast.CompositeLit:
			for _, elt := range st.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if t.tainted(v) {
					pass.Reportf(v.Pos(), "storing a device-loaned buffer in a composite literal lets it outlive the read: copy the bytes first")
				}
			}
		case *ast.FuncLit:
			for v := range capturedVars(pass, st) {
				if t.vars[v] {
					pass.Reportf(st.Pos(), "closure captures device-loaned buffer %s, which may outlive the read: copy the bytes or pass them as a call argument", v.Name())
				}
			}
		}
		return true
	})
}

// bufaliasStore reports a tainted right-hand side flowing into an
// lvalue that outlives the call. Plain writes to local variables are the
// propagation step, not a sink.
func bufaliasStore(pass *Pass, lhs ast.Expr, owner bool) {
	for {
		p, ok := lhs.(*ast.ParenExpr)
		if !ok {
			break
		}
		lhs = p.X
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		v, ok := pass.Info.Uses[l].(*types.Var)
		if ok && v.Parent() == pass.Types.Scope() {
			pass.Reportf(l.Pos(), "storing a device-loaned buffer in package-level var %s lets it outlive the read: copy the bytes (zero-copy lifetime rule)", l.Name)
		}
	case *ast.SelectorExpr:
		v, ok := pass.Info.Uses[l.Sel].(*types.Var)
		if !ok {
			return
		}
		switch {
		case v.IsField() && !owner:
			pass.Reportf(l.Pos(), "storing a device-loaned buffer in struct field %s lets it outlive the read: copy the bytes, or annotate the holder in bufOwnerTypes with a rationale", l.Sel.Name)
		case !v.IsField() && v.Parent() != nil && v.Parent().Parent() == types.Universe:
			// pkg.Var selector: a package-level variable of another package.
			pass.Reportf(l.Pos(), "storing a device-loaned buffer in package-level var %s lets it outlive the read: copy the bytes (zero-copy lifetime rule)", l.Sel.Name)
		}
	case *ast.IndexExpr:
		pass.Reportf(l.Pos(), "storing a device-loaned buffer in a map or slice element lets it outlive the read: copy the bytes (zero-copy lifetime rule)")
	}
}
