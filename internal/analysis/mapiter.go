package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// Mapiter protects the byte-identical-output guarantee: in rendering and
// serialization paths, iterating a Go map directly leaks the runtime's
// randomized order into the output. In scope are the report renderers
// (report.go, reportjson.go in any package), the experiment suite
// (internal/experiments) and the telemetry exposition (internal/obs).
//
// The one permitted shape is the collect-then-sort idiom: a range whose
// body only appends the key to a slice (`keys = append(keys, k)`), which
// by construction feeds a sort before anything is rendered. Everything
// else must iterate sorted keys (see experiments.sortedKeys) or justify
// itself with //hybridlint:allow mapiter <reason>.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc:  "output paths must not range over maps in randomized order",
	Run:  runMapiter,
}

// mapiterFiles are the file basenames that are in scope in any package.
var mapiterFiles = map[string]bool{
	"report.go":     true,
	"reportjson.go": true,
}

func runMapiter(pass *Pass) {
	pkgInScope := pathSegment(pass.Path, "experiments") || pathSegment(pass.Path, "obs")
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !pkgInScope && !mapiterFiles[name] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := pass.Info.TypeOf(rs.X)
			if tv == nil {
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollector(rs) {
				return true
			}
			pass.Reportf(rs.For, "ranges over a map in an output path (iteration order is randomized); iterate sorted keys or collect-and-sort")
			return true
		})
	}
}

// isKeyCollector reports whether the range body is exactly the sorted-keys
// collector idiom: one statement of the form `keys = append(keys, k)`
// where k is the range key.
func isKeyCollector(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	arg, ok2 := call.Args[1].(*ast.Ident)
	return ok && ok2 && src.Name == dst.Name && arg.Name == key.Name
}
