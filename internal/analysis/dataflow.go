package analysis

// dataflow.go is the small intra-procedural def/use layer shared by the
// attrib, bufalias and confine analyzers: value tracking over go/ast +
// go/types that follows local aliases of a value through assignments and
// reslicings inside one function body. It is deliberately flow-insensitive
// (a variable that ever aliases a tracked value stays tracked for the whole
// body) and never crosses function boundaries — a callee that wants to keep
// a tracked value must copy it, and the copy is visible in the caller.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// stripDerive unwraps the expression forms through which a slice value
// still aliases its source: parentheses and slicing (v[a:b], v[a:b:c]
// share v's backing array).
func stripDerive(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return e
		}
	}
}

// deriveRoot returns the identifier a derived expression aliases, or nil
// when the expression does not bottom out in a plain identifier.
func deriveRoot(e ast.Expr) *ast.Ident {
	id, _ := stripDerive(e).(*ast.Ident)
	return id
}

// varOf resolves an expression's root identifier to the variable it names
// (use or definition), or nil.
func varOf(pass *Pass, e ast.Expr) *types.Var {
	id := deriveRoot(e)
	if id == nil {
		return nil
	}
	if v, ok := pass.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// taint is a flow-insensitive set of variables known to alias a tracked
// value inside one function body.
type taint struct {
	pass *Pass
	vars map[*types.Var]bool
}

func newTaint(pass *Pass) *taint {
	return &taint{pass: pass, vars: map[*types.Var]bool{}}
}

// add marks the root variable of e as tracked, reporting whether the set
// grew. Expressions that do not root in a variable are ignored.
func (t *taint) add(e ast.Expr) bool {
	v := varOf(t.pass, e)
	if v == nil || t.vars[v] {
		return false
	}
	t.vars[v] = true
	return true
}

// tainted reports whether e (possibly a reslicing of a variable) aliases a
// tracked value. An append with spread (`append(dst, v...)`) copies the
// bytes and therefore does not alias; an append whose base is tracked
// returns a value that may still share the base's backing array.
func (t *taint) tainted(e ast.Expr) bool {
	e = stripDerive(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
			return t.tainted(call.Args[0])
		}
		return false
	}
	v := varOf(t.pass, e)
	return v != nil && t.vars[v]
}

// propagate runs the alias fixpoint over body: every assignment whose
// right-hand side aliases a tracked value marks its left-hand variable
// tracked, until the set stops growing.
func (t *taint) propagate(body ast.Node) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
				return true
			}
			for i, rhs := range as.Rhs {
				if t.tainted(rhs) && t.add(as.Lhs[i]) {
					changed = true
				}
			}
			return true
		})
	}
}

// capturedVars returns the variables referenced inside lit but declared
// outside it — the closure's free variables. Struct fields are excluded
// (capturing `p` and writing `p.f` is a capture of p, not of f).
func capturedVars(pass *Pass, lit *ast.FuncLit) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			out[v] = true
		}
		return true
	})
	return out
}

// namedType returns the named type of t after stripping one level of
// pointer, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typeIs reports whether t (or its pointee) is a named type with the given
// name whose declaring package's name matches pkgName. Matching by package
// name rather than full import path keeps the check meaningful for the
// golden fixtures, which re-declare the shapes under testdata paths.
func typeIs(t types.Type, pkgName, name string) bool {
	named := namedType(t)
	if named == nil || named.Obj() == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// methodNamed resolves call's callee to a method (a *types.Func with a
// receiver) with the given name, or nil.
func methodNamed(pass *Pass, call *ast.CallExpr, name string) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return fn
}
