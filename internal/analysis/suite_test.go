package analysis_test

import (
	"testing"

	"hybridstore/internal/analysis"
	"hybridstore/internal/analysis/analysistest"
	"hybridstore/internal/analysis/goloader"
)

func TestDetclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), "detclock/a", analysis.Detclock)
}

func TestMapiter(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, "mapiter/experiments", analysis.Mapiter)
	analysistest.Run(t, td, "mapiter/other", analysis.Mapiter)
}

func TestStatsevent(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, "statsevent/core", analysis.Statsevent)
	analysistest.Run(t, td, "statsevent/missing", analysis.Statsevent)
}

func TestIoerr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), "ioerr/a", analysis.Ioerr)
}

// TestAttrib covers the Σattrib≡elapsed analyzer: call sites must pass
// declared Component constants (attrib/a), the bare-call allowlist
// suppresses by package path (attrib/allowedpkg), and the componentTable /
// summaryOrder declarations must be total (attrib/badtable, attrib/notable,
// attrib/order; attrib/clockpkg is the clean shape).
func TestAttrib(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, "attrib/clockpkg", analysis.Attrib)
	analysistest.Run(t, td, "attrib/a", analysis.Attrib)
	analysistest.Run(t, td, "attrib/allowedpkg", analysis.Attrib)
	analysistest.Run(t, td, "attrib/badtable", analysis.Attrib)
	analysistest.Run(t, td, "attrib/notable", analysis.Attrib)
	analysistest.Run(t, td, "attrib/order", analysis.Attrib)
}

// TestBufalias covers the zero-copy lifetime analyzer: every escape of a
// device-loaned buffer in bufalias/a is a finding, the in-place decode and
// copy flows are not, and the annotated owner type (bufalias/index) may
// retain the loan.
func TestBufalias(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, "bufalias/a", analysis.Bufalias)
	analysistest.Run(t, td, "bufalias/index", analysis.Bufalias)
}

// TestConfine covers shard confinement: cross-shard reach and
// unsynchronized captured-state writes in concurrent closures are findings;
// the bound-at-creation, per-slot, and mutex idioms are not.
func TestConfine(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, "confine/serve", analysis.Confine)
	analysistest.Run(t, td, "confine/experiments", analysis.Confine)
}

// TestAllowDirectiveAudit proves the escape hatch polices itself: a
// directive without a reason is a finding (and does not suppress), as are
// unknown analyzer names and directives with nothing left to suppress.
func TestAllowDirectiveAudit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), "allowdir/a", analysis.Detclock)
}

// TestAllowStaleScope proves the audit catches directives that can never
// fire because the named analyzer does not inspect the surrounding package,
// and that allocbudget rejects the directive mechanism entirely.
func TestAllowStaleScope(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, "allowdir/stale", analysis.Confine)
	analysistest.Run(t, td, "allowdir/storage", analysis.Bufalias)
}

// TestRepoIsClean runs the full suite over the real module, so `go test`
// enforces the three contracts even when the CI lint job is skipped.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	pkgs, err := goloader.Load("hybridstore/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, analysis.All()) {
			t.Errorf("%s", d)
		}
	}
}
