package analysis_test

import (
	"testing"

	"hybridstore/internal/analysis"
	"hybridstore/internal/analysis/analysistest"
	"hybridstore/internal/analysis/goloader"
)

func TestDetclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), "detclock/a", analysis.Detclock)
}

func TestMapiter(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, "mapiter/experiments", analysis.Mapiter)
	analysistest.Run(t, td, "mapiter/other", analysis.Mapiter)
}

func TestStatsevent(t *testing.T) {
	td := analysistest.TestData(t)
	analysistest.Run(t, td, "statsevent/core", analysis.Statsevent)
	analysistest.Run(t, td, "statsevent/missing", analysis.Statsevent)
}

func TestIoerr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), "ioerr/a", analysis.Ioerr)
}

// TestAllowDirectiveAudit proves the escape hatch polices itself: a
// directive without a reason is a finding (and does not suppress), as are
// unknown analyzer names and directives with nothing left to suppress.
func TestAllowDirectiveAudit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), "allowdir/a", analysis.Detclock)
}

// TestRepoIsClean runs the full suite over the real module, so `go test`
// enforces the three contracts even when the CI lint job is skipped.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	pkgs, err := goloader.Load("hybridstore/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, analysis.All()) {
			t.Errorf("%s", d)
		}
	}
}
