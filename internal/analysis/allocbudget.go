package analysis

// allocbudget is the one hybridlint check that is not AST-based: it replays
// the compiler's escape analysis (`go build -gcflags=<pkg>=-m`) and holds
// the hot path to the per-function heap-allocation budget committed in
// allocbudget.txt at the module root. The 8 allocs/op query path is a
// measured property the benchmarks enforce end to end; this gate catches
// the regression at the function that introduced it, at lint time, with the
// compiler's own escape diagnostics as evidence.
//
// Budget file format, one entry per line:
//
//	<import path> <function> <max escapes>   # rationale
//
// where <function> is the declaration name as the compiler prints it:
// Execute for a plain function, (*Engine).Execute for a pointer-receiver
// method. The count is the number of escape-analysis diagnostics ("escapes
// to heap" / "moved to heap") attributed to source lines inside the
// function, nested closures included. A budgeted function that no longer
// exists is itself a finding, so the file cannot go stale silently.
//
// There is deliberately no //hybridlint:allow escape hatch for this check
// (the directive audit rejects one): the budget file is the escape hatch,
// and raising a budget is a diffable, reviewable act in the same commit as
// the regression that needs it.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// AllocBudgetName names the escape-analysis budget check in diagnostics.
// It is not part of All(): it runs over whole packages via the go tool, not
// over a parsed AST, and is invoked separately through RunAllocBudget.
const AllocBudgetName = "allocbudget"

// BudgetFileName is the committed budget file at the module root.
const BudgetFileName = "allocbudget.txt"

// A BudgetEntry is one parsed budget line.
type BudgetEntry struct {
	Pkg  string // import path, e.g. hybridstore/internal/engine
	Func string // declaration name, e.g. (*Engine).Execute
	Max  int    // maximum escape-analysis diagnostics allowed
	Line int    // line number in the budget file, for stale-entry reports
}

// ParseBudgetFile reads the committed budget file. Blank lines and lines
// starting with # are ignored; everything after a # on an entry line is a
// rationale comment.
func ParseBudgetFile(path string) ([]BudgetEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []BudgetEntry
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want `<import path> <function> <budget>`, got %d fields", path, i+1, len(fields))
		}
		max, err := strconv.Atoi(fields[2])
		if err != nil || max < 0 {
			return nil, fmt.Errorf("%s:%d: budget %q is not a non-negative integer", path, i+1, fields[2])
		}
		out = append(out, BudgetEntry{Pkg: fields[0], Func: fields[1], Max: max, Line: i + 1})
	}
	return out, nil
}

// An escapeSite is one escape-analysis diagnostic position.
type escapeSite struct {
	file string // as printed by the compiler (relative to the build dir)
	line int
}

// parseEscapeOutput extracts the escape sites from `go build -gcflags=-m`
// stderr: lines whose message ends in "escapes to heap" or begins with
// "moved to heap". Inlining and other -m chatter is ignored.
func parseEscapeOutput(out string) []escapeSite {
	var sites []escapeSite
	for _, line := range strings.Split(out, "\n") {
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		msg := strings.TrimSpace(parts[3])
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		sites = append(sites, escapeSite{file: parts[0], line: n})
	}
	return sites
}

// A funcRange is one top-level function declaration's line extent.
type funcRange struct {
	name     string // as the compiler prints it: Name, T.Name, (*T).Name
	from, to int
	start    token.Position // declaration position, for diagnostics
	escapes  int
}

// parseFuncRanges parses one source file and returns its top-level function
// declarations with compiler-style names. Escape sites inside a nested
// closure land in the enclosing declaration's range, matching how the
// budget is meant to read: the whole body, closures included.
func parseFuncRanges(path string) ([]*funcRange, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var out []*funcRange
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := fn.Name.Name
		if fn.Recv != nil && len(fn.Recv.List) == 1 {
			switch rt := fn.Recv.List[0].Type.(type) {
			case *ast.StarExpr:
				if id, ok := baseTypeIdent(rt.X); ok {
					name = "(*" + id + ")." + name
				}
			default:
				if id, ok := baseTypeIdent(rt); ok {
					name = id + "." + name
				}
			}
		}
		out = append(out, &funcRange{
			name:  name,
			from:  fset.Position(fn.Pos()).Line,
			to:    fset.Position(fn.End()).Line,
			start: fset.Position(fn.Pos()),
		})
	}
	return out, nil
}

// baseTypeIdent extracts the receiver base type name (generic receivers
// like T[P] reduce to T, matching the compiler's printing).
func baseTypeIdent(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.IndexExpr:
		return baseTypeIdent(v.X)
	case *ast.IndexListExpr:
		return baseTypeIdent(v.X)
	}
	return "", false
}

// RunAllocBudget replays escape analysis for every package named in the
// budget file (found at budgetPath; the go commands run in its directory,
// which must be inside the module) and returns one diagnostic per
// over-budget function plus one per stale budget entry.
func RunAllocBudget(budgetPath string) ([]Diagnostic, error) {
	entries, err := ParseBudgetFile(budgetPath)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, nil
	}
	dir := filepath.Dir(budgetPath)
	// The compiler prints diagnostic paths relative to the module root, not
	// to the invocation directory, so resolve the root once for joining.
	rootOut, err := goCommand(dir, "list", "-m", "-f", "{{.Dir}}")
	if err != nil {
		return nil, fmt.Errorf("resolving module root: %w", err)
	}
	root := strings.TrimSpace(rootOut)

	pkgSet := map[string]bool{}
	for _, e := range entries {
		pkgSet[e.Pkg] = true
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	// Resolve each budgeted package to its source directory.
	pkgDir := map[string]string{}
	listOut, err := goCommand(dir, append([]string{"list", "-f", "{{.ImportPath}} {{.Dir}}"}, pkgs...)...)
	if err != nil {
		return nil, fmt.Errorf("resolving budgeted packages: %w", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(listOut), "\n") {
		if path, d, ok := strings.Cut(line, " "); ok {
			pkgDir[path] = d
		}
	}

	// One build per package: the compiler replays its diagnostics from the
	// build cache, so repeated runs stay cheap.
	var sites []escapeSite
	for _, p := range pkgs {
		flags := fmt.Sprintf("-gcflags=%s=-m", p)
		out, err := goCommand(dir, "build", flags, p)
		if err != nil {
			return nil, fmt.Errorf("escape analysis of %s: %w", p, err)
		}
		sites = append(sites, parseEscapeOutput(out)...)
	}

	// Attribute sites to top-level declarations, per package directory.
	ranges := map[string][]*funcRange{} // abs file path -> ranges
	fileOf := func(site escapeSite) string {
		f := site.file
		if !filepath.IsAbs(f) {
			f = filepath.Join(root, f)
		}
		return f
	}
	for _, s := range sites {
		f := fileOf(s)
		if _, ok := ranges[f]; ok {
			continue
		}
		r, err := parseFuncRanges(f)
		if err != nil {
			return nil, fmt.Errorf("mapping escape sites: %w", err)
		}
		ranges[f] = r
	}
	for _, s := range sites {
		for _, r := range ranges[fileOf(s)] {
			if s.line >= r.from && s.line <= r.to {
				r.escapes++
			}
		}
	}

	var diags []Diagnostic
	for _, e := range entries {
		d, ok := pkgDir[e.Pkg]
		if !ok {
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: budgetPath, Line: e.Line},
				Analyzer: AllocBudgetName,
				Message:  fmt.Sprintf("%s names package %s, which go list cannot resolve: remove or fix the stale entry", BudgetFileName, e.Pkg),
			})
			continue
		}
		fr := findFunc(ranges, d, e.Func)
		if fr == nil {
			// The function may simply have had no escapes (so its file was
			// never parsed); look it up across the package's sources.
			var err error
			fr, err = findFuncInDir(ranges, d, e.Func)
			if err != nil {
				return nil, err
			}
		}
		if fr == nil {
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: budgetPath, Line: e.Line},
				Analyzer: AllocBudgetName,
				Message:  fmt.Sprintf("%s names %s in %s, but no such function exists: remove or fix the stale entry", BudgetFileName, e.Func, e.Pkg),
			})
			continue
		}
		if fr.escapes > e.Max {
			diags = append(diags, Diagnostic{
				Pos:      fr.start,
				Analyzer: AllocBudgetName,
				Message:  fmt.Sprintf("hot-path function %s has %d heap escapes, over its committed budget of %d (%s): eliminate the new allocations, or raise the budget in the same commit with justification", e.Func, fr.escapes, e.Max, BudgetFileName),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return diags, nil
}

// findFunc looks for a named function among the already-parsed files of
// package directory d.
func findFunc(ranges map[string][]*funcRange, d, name string) *funcRange {
	for f, rs := range ranges {
		if filepath.Dir(f) != d {
			continue
		}
		for _, r := range rs {
			if r.name == name {
				return r
			}
		}
	}
	return nil
}

// findFuncInDir parses any not-yet-parsed .go sources in d looking for the
// named function, adding their ranges to the map.
func findFuncInDir(ranges map[string][]*funcRange, d, name string) (*funcRange, error) {
	files, err := filepath.Glob(filepath.Join(d, "*.go"))
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if _, ok := ranges[f]; ok {
			continue
		}
		rs, err := parseFuncRanges(f)
		if err != nil {
			return nil, err
		}
		ranges[f] = rs
	}
	return findFunc(ranges, d, name), nil
}

// goCommand runs the go tool in dir and returns combined output; a non-zero
// exit is an error carrying that output.
func goCommand(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), nil
}
