package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time functions that read or schedule
// against the host's wall clock. Pure conversions and constants
// (time.Duration, time.Microsecond, time.ParseDuration, ...) are fine —
// they carry no nondeterminism.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

// randPackages are the stdlib generators whose streams are unspecified
// across Go releases (and, for the global functions, shared mutable state).
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Detclock enforces the determinism contract of DESIGN.md §8: simulated
// time and randomness flow exclusively through internal/simclock, so the
// suite is byte-identical at any -jobs count and fault injection replays
// from a seed. Outside internal/simclock it reports every wall-clock
// time.* call and every use of math/rand. Legitimate host-side timing
// (CLI progress lines in cmd/) must carry a //hybridlint:allow detclock
// directive with a reason.
var Detclock = &Analyzer{
	Name: "detclock",
	Doc:  "simulated time/randomness must flow through internal/simclock",
	Run:  runDetclock,
}

func runDetclock(pass *Pass) {
	if pathSegment(pass.Path, "simclock") {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if randPackages[path] {
				pass.Reportf(imp.Pos(), "import of %s: derive randomness from a simclock.RNG (Split per component) so runs replay from one seed", path)
			}
			if imp.Name != nil && imp.Name.Name == "." && (path == "time" || randPackages[path]) {
				pass.Reportf(imp.Pos(), "dot import of %s hides wall-clock/global-rand uses from review", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pn.Imported().Path(); {
			case path == "time" && wallClockFuncs[sel.Sel.Name]:
				pass.Reportf(sel.Pos(), "time.%s reads the host clock: simulated time must come from simclock.Clock", sel.Sel.Name)
			}
			return true
		})
	}
}

// importPath returns the unquoted import path of spec.
func importPath(spec *ast.ImportSpec) string {
	p := spec.Path.Value
	if len(p) >= 2 {
		return p[1 : len(p)-1]
	}
	return p
}
