package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Statsevent enforces the stats≡trace contract: every mutation of a paired
// core.Stats counter must be accompanied, in the same function body, by an
// emit of the event kind the counter is paired with — so a sink that sums
// event payloads reproduces the Stats totals exactly (see
// internal/core/events.go).
//
// The pairing is not hard-coded here: the analyzer reads the
// statsEventPairs / statsUnpaired tables declared in the package that owns
// the Stats struct, and additionally checks the tables are total — every
// Stats field appears in exactly one of them, unpaired fields carry a
// non-empty rationale, and neither table names a field that no longer
// exists. Adding a counter without declaring its pairing therefore fails
// the lint at the new field's declaration.
var Statsevent = &Analyzer{
	Name: "statsevent",
	Doc:  "paired Stats counters must emit their event in the same function",
	Run:  runStatsevent,
}

// Names of the declarations the analyzer keys on, all looked up in the
// package that declares the Stats struct.
const (
	statsTypeName     = "Stats"
	pairsTableName    = "statsEventPairs"
	unpairedTableName = "statsUnpaired"
)

func runStatsevent(pass *Pass) {
	statsObj, ok := pass.Types.Scope().Lookup(statsTypeName).(*types.TypeName)
	if !ok {
		return
	}
	statsStruct, ok := statsObj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	// The contract applies only where the event machinery lives: a package
	// with a Stats struct but no EventKind type (e.g. internal/intersect's
	// execution stats) has nothing to pair against.
	if _, ok := pass.Types.Scope().Lookup("EventKind").(*types.TypeName); !ok {
		return
	}

	pairs, pairsPos := mapLiteralEntries(pass, pairsTableName)
	unpaired, unpairedPos := mapLiteralEntries(pass, unpairedTableName)
	if pairs == nil {
		pass.Reportf(statsObj.Pos(), "package declares %s but no %s table: declare the counter↔event pairing so statsevent can check it", statsTypeName, pairsTableName)
		return
	}

	// The two tables must exactly partition the Stats fields.
	fields := map[string]bool{}
	for i := 0; i < statsStruct.NumFields(); i++ {
		f := statsStruct.Field(i)
		fields[f.Name()] = true
		_, isPaired := pairs[f.Name()]
		reason, isUnpaired := unpaired[f.Name()]
		switch {
		case isPaired && isUnpaired:
			pass.Reportf(f.Pos(), "Stats field %s appears in both %s and %s", f.Name(), pairsTableName, unpairedTableName)
		case !isPaired && !isUnpaired:
			pass.Reportf(f.Pos(), "Stats field %s is not in the pairing table: add it to %s (with its event kind) or to %s (with why it has no event)", f.Name(), pairsTableName, unpairedTableName)
		case isUnpaired && reason == "":
			pass.Reportf(unpairedPos[f.Name()], "%s entry for %s needs a non-empty rationale", unpairedTableName, f.Name())
		}
	}
	for name := range pairs {
		if !fields[name] {
			pass.Reportf(pairsPos[name], "%s names %s, which is not a field of %s", pairsTableName, name, statsTypeName)
		}
	}
	for name := range unpaired {
		if !fields[name] {
			pass.Reportf(unpairedPos[name], "%s names %s, which is not a field of %s", unpairedTableName, name, statsTypeName)
		}
	}

	// Co-location: every mutation of a paired field must share a function
	// body with an emit of the paired event kind.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			emitted := emittedEventKinds(fn.Body)
			for _, mut := range statsMutations(pass, statsObj, fn.Body) {
				kind, ok := pairs[mut.field]
				if !ok || emitted[kind] {
					continue
				}
				pass.Reportf(mut.pos, "%s.%s is mutated without emitting %s in %s: pair the counter bump with its event (stats≡trace contract)", statsTypeName, mut.field, kind, fn.Name.Name)
			}
		}
	}
}

// mapLiteralEntries reads a package-level `var name = map[string]T{...}`
// composite literal, returning entry values rendered as strings (the
// identifier name for ident values, the unquoted text for string values)
// keyed by the unquoted entry key, plus each entry's position. Returns nil
// when no such declaration exists.
func mapLiteralEntries(pass *Pass, name string) (map[string]string, map[string]token.Pos) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != name || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				entries := map[string]string{}
				positions := map[string]token.Pos{}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := stringLit(kv.Key)
					if !ok {
						continue
					}
					entries[key] = exprText(kv.Value)
					positions[key] = kv.Pos()
				}
				return entries, positions
			}
		}
	}
	return nil, nil
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	return s, err == nil
}

// exprText renders a table value: identifier name or unquoted string.
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.BasicLit:
		if s, ok := stringLit(v); ok {
			return s
		}
	}
	return ""
}

// A statsMutation is one counter bump of a Stats field.
type statsMutation struct {
	field string
	pos   token.Pos
}

// statsMutations finds every ++/--/op= mutation in body whose target is a
// field selected from a value of the Stats type (possibly through nested
// selectors and index expressions, e.g. stats.Situations.Counts[i]++,
// which mutates field Situations).
func statsMutations(pass *Pass, statsObj *types.TypeName, body *ast.BlockStmt) []statsMutation {
	var out []statsMutation
	ast.Inspect(body, func(n ast.Node) bool {
		var target ast.Expr
		switch st := n.(type) {
		case *ast.IncDecStmt:
			target = st.X
		case *ast.AssignStmt:
			// Compound assignment only: plain `=` is a reset/copy, not a
			// counter bump.
			if st.Tok == token.ASSIGN || st.Tok == token.DEFINE || len(st.Lhs) != 1 {
				return true
			}
			target = st.Lhs[0]
		default:
			return true
		}
		if field, ok := statsFieldOf(pass, statsObj, target); ok {
			out = append(out, statsMutation{field: field, pos: target.Pos()})
		}
		return true
	})
	return out
}

// statsFieldOf walks a selector/index chain and returns the name of the
// field selected directly from the Stats struct, if any.
func statsFieldOf(pass *Pass, statsObj *types.TypeName, e ast.Expr) (string, bool) {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			if isStatsType(pass.Info.TypeOf(v.X), statsObj) {
				return v.Sel.Name, true
			}
			e = v.X
		default:
			return "", false
		}
	}
}

// isStatsType reports whether t (or its pointee) is the Stats named type.
func isStatsType(t types.Type, statsObj *types.TypeName) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == statsObj
}

// emittedEventKinds collects the event-kind identifiers passed as the Kind
// of an Event literal in any emit(...) call inside body.
func emittedEventKinds(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name != "emit" {
				return true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name != "emit" {
				return true
			}
		default:
			return true
		}
		lit, ok := call.Args[0].(*ast.CompositeLit)
		if !ok {
			return true
		}
		for i, elt := range lit.Elts {
			switch v := elt.(type) {
			case *ast.KeyValueExpr:
				if key, ok := v.Key.(*ast.Ident); ok && key.Name == "Kind" {
					if id, ok := v.Value.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			case *ast.Ident:
				// Positional literal: Kind is the first field.
				if i == 0 {
					out[v.Name] = true
				}
			}
		}
		return true
	})
	return out
}
