package analysis

import (
	"go/ast"
	"go/types"
)

// Ioerr enforces the fault-accounting contract hardened in the fault
// injection work: no error result from the storage layer (storage.Device
// implementations, the simulated HDD/SSD backends, Allocator) may be
// silently discarded — an injected device fault that is dropped on the
// floor would vanish from Stats/FaultReport and the run would lie about
// its own data loss. The allocator's boolean success results (Alloc,
// AllocAligned, Reserve) are covered for the same reason: ignoring a
// failed reservation silently corrupts space accounting.
//
// Flagged shapes: a bare call statement, `_ =` / `_, _ =` assignments of
// the error (or allocator bool) position, and go/defer statements that
// drop the results.
var Ioerr = &Analyzer{
	Name: "ioerr",
	Doc:  "storage-layer errors and allocator success results must be handled",
	Run:  runIoerr,
}

// ioerrPackages are the package names whose API results are protected.
var ioerrPackages = map[string]bool{
	"storage":  true,
	"disksim":  true,
	"flashsim": true,
}

// allocBoolFuncs are the storage functions whose boolean result reports
// allocation success and therefore must be consumed.
var allocBoolFuncs = map[string]bool{
	"Alloc": true, "AllocAligned": true, "Reserve": true,
}

func runIoerr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if fn, idx := guardedResults(pass, call); len(idx) > 0 {
						pass.Reportf(call.Pos(), "result of %s.%s discarded: handle the %s so faults stay accounted", fn.Pkg().Name(), fn.Name(), resultNoun(fn))
					}
				}
				return true
			case *ast.GoStmt:
				if fn, idx := guardedResults(pass, st.Call); len(idx) > 0 {
					pass.Reportf(st.Call.Pos(), "go statement discards the %s of %s.%s", resultNoun(fn), fn.Pkg().Name(), fn.Name())
				}
				return true
			case *ast.DeferStmt:
				if fn, idx := guardedResults(pass, st.Call); len(idx) > 0 {
					pass.Reportf(st.Call.Pos(), "defer discards the %s of %s.%s", resultNoun(fn), fn.Pkg().Name(), fn.Name())
				}
				return true
			case *ast.AssignStmt:
				checkAssign(pass, st)
				return true
			}
			return true
		})
	}
}

// checkAssign flags blank-identifier assignments of guarded results.
func checkAssign(pass *Pass, st *ast.AssignStmt) {
	// Multi-value form: lat, err := d.ReadAt(...) — one call, n results.
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn, idx := guardedResults(pass, call)
		for _, i := range idx {
			if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
				pass.Reportf(st.Lhs[i].Pos(), "%s result of %s.%s assigned to _: handle it so faults stay accounted", resultNoun(fn), fn.Pkg().Name(), fn.Name())
			}
		}
		return
	}
	// One-to-one form: _ = dev.Flush() style single-result calls.
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) || !isBlank(st.Lhs[i]) {
			continue
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn, idx := guardedResults(pass, call); len(idx) > 0 {
			pass.Reportf(st.Lhs[i].Pos(), "%s result of %s.%s assigned to _: handle it so faults stay accounted", resultNoun(fn), fn.Pkg().Name(), fn.Name())
		}
	}
}

// guardedResults resolves call's callee; when it is a function or method of
// a protected storage package, it returns the callee and the indices of the
// result values that must not be discarded (error results always; boolean
// results for the allocator success functions).
func guardedResults(pass *Pass, call *ast.CallExpr) (*types.Func, []int) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	default:
		return nil, nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !ioerrPackages[fn.Pkg().Name()] {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if isErrorType(t) || (allocBoolFuncs[fn.Name()] && isBoolType(t)) {
			idx = append(idx, i)
		}
	}
	return fn, idx
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBoolType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

// resultNoun names what the callee's guarded result is, for messages.
func resultNoun(fn *types.Func) string {
	if allocBoolFuncs[fn.Name()] {
		return "success"
	}
	return "error"
}
