package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Confine enforces shard confinement in the concurrent layers
// (internal/serve and internal/experiments): a closure handed to a go
// statement or scheduled as an EventQueue callback runs outside its
// creator's control flow, so the state it touches must be bound to it at
// creation time.
//
//   - It may not reach into the shard container (anything holding
//     hybrid.System values) by index or range: the shard a closure works on
//     is chosen when the closure is made, not when it runs.
//   - It may not write through captured shared state — maps, slices through
//     a shared index, or plain counters — without a declared
//     synchronization idiom. The two sanctioned idioms are per-slot slice
//     writes through a closure-local index (each goroutine owns disjoint
//     elements) and mutations under a sync.Mutex/RWMutex held inside the
//     closure. Calls on captured values are not flagged: methods of the
//     owning object are where the synchronization discipline lives, and
//     the event-loop closures in serve are calls by construction.
var Confine = &Analyzer{
	Name:     "confine",
	Doc:      "concurrent closures touch only state bound at creation",
	Run:      runConfine,
	Inspects: confineInspects,
}

func confineInspects(path string) bool {
	return pathSegment(path, "serve") || pathSegment(path, "experiments")
}

func runConfine(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
					confineClosure(pass, lit, "goroutine")
				}
			case *ast.CallExpr:
				if isEventQueueSchedule(pass, st) {
					for _, a := range st.Args {
						if lit, ok := a.(*ast.FuncLit); ok {
							confineClosure(pass, lit, "event-queue callback")
						}
					}
				}
			}
			return true
		})
	}
}

// isEventQueueSchedule reports whether call is EventQueue.Schedule (matched
// by method and type name so fixtures re-declaring the shape are covered).
func isEventQueueSchedule(pass *Pass, call *ast.CallExpr) bool {
	fn := methodNamed(pass, call, "Schedule")
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return typeIs(sig.Recv().Type(), clockPkgName, "EventQueue")
}

// confineClosure checks one concurrently-launched closure.
func confineClosure(pass *Pass, lit *ast.FuncLit, kind string) {
	captured := capturedVars(pass, lit)
	lockPositions := mutexLockPositions(pass, lit)
	synced := func(pos token.Pos) bool {
		for _, lp := range lockPositions {
			if lp < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.IndexExpr:
			if isShardContainer(pass, st.X) {
				pass.Reportf(st.Pos(), "%s indexes into the shard container %s: the shard a closure works on must be bound at creation, not selected when it runs (shard confinement)", kind, exprIdentName(st.X))
			}
		case *ast.RangeStmt:
			if isShardContainer(pass, st.X) {
				pass.Reportf(st.X.Pos(), "%s ranges over the shard container %s: shards must be bound at closure creation, not enumerated when it runs (shard confinement)", kind, exprIdentName(st.X))
			}
		case *ast.IncDecStmt:
			confineWrite(pass, st.X, st.Pos(), captured, synced, kind)
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				confineWrite(pass, lhs, st.Pos(), captured, synced, kind)
			}
		}
		return true
	})
}

// confineWrite flags a write through captured shared state that lacks a
// sanctioned synchronization idiom.
func confineWrite(pass *Pass, lhs ast.Expr, pos token.Pos, captured map[*types.Var]bool, synced func(token.Pos) bool, kind string) {
	// Walk the lvalue chain to the root variable, noting any index step.
	var index *ast.IndexExpr
	e := lhs
walk:
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			index = v
			e = v.X
		default:
			break walk
		}
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || !captured[v] {
		return
	}
	if synced(pos) {
		return
	}
	// Mutating state reachable from a captured shard handle (a value that
	// is, or holds, a hybrid.System) is the sanctioned bound-at-creation
	// idiom; the danger confine polices is selecting the shard inside the
	// closure, which the shard-container index check reports.
	if elemHoldsSystem(v.Type()) {
		return
	}
	if index != nil {
		if isShardContainer(pass, index.X) {
			return // already reported by the shard-container index check
		}
		if _, isMap := pass.Info.TypeOf(index.X).Underlying().(*types.Map); isMap {
			pass.Reportf(pos, "%s writes to captured map %s without synchronization: guard it with a mutex or keep it shard-local (shard confinement)", kind, exprIdentName(index.X))
			return
		}
		// Per-slot slice idiom: a closure-local index means each goroutine
		// owns disjoint elements.
		if iv := varOf(pass, index.Index); iv != nil && !captured[iv] {
			return
		}
		pass.Reportf(pos, "%s writes to captured slice %s through a shared index: use a closure-local index (per-slot idiom) or a mutex (shard confinement)", kind, exprIdentName(index.X))
		return
	}
	pass.Reportf(pos, "%s mutates captured %s without synchronization: use a mutex, an atomic, or state bound at closure creation (shard confinement)", kind, id.Name)
}

// mutexLockPositions collects the positions of Lock/RLock calls on
// sync.Mutex/RWMutex values inside lit — the declared synchronization
// idiom confineWrite accepts.
func mutexLockPositions(pass *Pass, lit *ast.FuncLit) []token.Pos {
	var out []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range [2]string{"Lock", "RLock"} {
			fn := methodNamed(pass, call, name)
			if fn == nil {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv().Type()
			if typeIs(recv, "sync", "Mutex") || typeIs(recv, "sync", "RWMutex") {
				out = append(out, call.Pos())
			}
		}
		return true
	})
	return out
}

// isShardContainer reports whether e is a slice, array, or map whose
// element type is (or is a struct holding) a hybrid.System.
func isShardContainer(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return elemHoldsSystem(u.Elem())
	case *types.Array:
		return elemHoldsSystem(u.Elem())
	case *types.Map:
		return elemHoldsSystem(u.Elem())
	}
	return false
}

// elemHoldsSystem reports whether t (or its pointee) is hybrid.System or a
// named struct with a hybrid.System(-pointer) field.
func elemHoldsSystem(t types.Type) bool {
	if typeIs(t, "hybrid", "System") {
		return true
	}
	named := namedType(t)
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if typeIs(st.Field(i).Type(), "hybrid", "System") {
			return true
		}
	}
	return false
}

// exprIdentName renders the container expression for a report: the root
// identifier or selector name.
func exprIdentName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.ParenExpr:
		return exprIdentName(v.X)
	case *ast.IndexExpr:
		return exprIdentName(v.X)
	case *ast.StarExpr:
		return exprIdentName(v.X)
	}
	return "container"
}
