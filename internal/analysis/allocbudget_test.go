package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseEscapeOutput(t *testing.T) {
	out := strings.Join([]string{
		"# hybridstore/internal/engine",
		"internal/engine/engine.go:79:6: can inline (*Config).fillDefaults",
		"internal/engine/engine.go:239:20: make([]byte, n) escapes to heap",
		"internal/engine/conjunctive.go:193:6: moved to heap: stats",
		"internal/engine/engine.go:173:18: inlining call to math.Log2",
		"not a diagnostic line",
		"",
	}, "\n")
	sites := parseEscapeOutput(out)
	if len(sites) != 2 {
		t.Fatalf("got %d escape sites, want 2: %v", len(sites), sites)
	}
	if sites[0].file != "internal/engine/engine.go" || sites[0].line != 239 {
		t.Errorf("site 0 = %+v, want engine.go:239", sites[0])
	}
	if sites[1].file != "internal/engine/conjunctive.go" || sites[1].line != 193 {
		t.Errorf("site 1 = %+v, want conjunctive.go:193", sites[1])
	}
}

func TestParseBudgetFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allocbudget.txt")
	content := "# header comment\n\nhybridstore/internal/engine (*Engine).Execute 6 # rationale\npkg Fn 0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ParseBudgetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2: %v", len(entries), entries)
	}
	want := BudgetEntry{Pkg: "hybridstore/internal/engine", Func: "(*Engine).Execute", Max: 6, Line: 3}
	if entries[0] != want {
		t.Errorf("entry 0 = %+v, want %+v", entries[0], want)
	}
	if entries[1].Line != 4 || entries[1].Max != 0 {
		t.Errorf("entry 1 = %+v, want line 4 budget 0", entries[1])
	}

	for _, bad := range []string{"pkg Fn\n", "pkg Fn -1\n", "pkg Fn many\n"} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseBudgetFile(path); err == nil {
			t.Errorf("budget line %q parsed without error", strings.TrimSpace(bad))
		}
	}
}

// TestAllocBudgetGate drives the real gate end to end against this module:
// a zero budget on a function with known escapes must fire, a stale entry
// must fire at the budget file, and the committed allocbudget.txt at the
// module root must be clean (the allocbudget half of TestRepoIsClean).
func TestAllocBudgetGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go build -gcflags=-m over hot-path packages")
	}

	seeded, err := os.CreateTemp(".", "allocbudget_seed_*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(seeded.Name())
	content := "hybridstore/internal/index (*BlockCursor).Next 0\n" + // has escapes on error paths: must fire
		"hybridstore/internal/index (*BlockCursor).Reset 0\n" + // genuinely zero-escape: must stay clean
		"hybridstore/internal/index NoSuchFunction 0\n" // stale entry: must fire at the budget file
	if _, err := seeded.WriteString(content); err != nil {
		t.Fatal(err)
	}
	if err := seeded.Close(); err != nil {
		t.Fatal(err)
	}

	diags, err := RunAllocBudget(seeded.Name())
	if err != nil {
		t.Fatal(err)
	}
	var overBudget, stale bool
	for _, d := range diags {
		if d.Analyzer != AllocBudgetName {
			t.Errorf("diagnostic under analyzer %q, want %q", d.Analyzer, AllocBudgetName)
		}
		switch {
		case strings.Contains(d.Message, "(*BlockCursor).Next") && strings.Contains(d.Message, "over its committed budget of 0"):
			overBudget = true
		case strings.Contains(d.Message, "(*BlockCursor).Reset"):
			t.Errorf("zero-escape function reported over budget: %s", d)
		case strings.Contains(d.Message, "NoSuchFunction") && strings.Contains(d.Message, "stale"):
			stale = true
			if d.Pos.Filename != seeded.Name() || d.Pos.Line != 3 {
				t.Errorf("stale entry reported at %s:%d, want %s:3", d.Pos.Filename, d.Pos.Line, seeded.Name())
			}
		}
	}
	if !overBudget {
		t.Errorf("zero budget on (*BlockCursor).Next did not fire; diagnostics: %v", diags)
	}
	if !stale {
		t.Errorf("stale budget entry did not fire; diagnostics: %v", diags)
	}

	committed, err := RunAllocBudget(filepath.Join("..", "..", BudgetFileName))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range committed {
		t.Errorf("committed budget not clean: %s", d)
	}
}
