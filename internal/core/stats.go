package core

import (
	"sort"
	"time"

	"hybridstore/internal/workload"
)

// sourceSet is a bit set of storage levels that contributed to a request.
type sourceSet uint8

const (
	srcMem sourceSet = 1 << iota
	srcSSD
	srcHDD
)

// Situation is one of the paper's nine retrieval situations (Table I):
// which level served the result entry, or — when the result had to be
// recomputed — which combination of levels served the inverted lists.
type Situation int

// The nine situations of Table I. S1–S2 are result-cache hits; S3–S9
// classify where the inverted lists of a recomputed query came from.
const (
	S1ResultMem Situation = iota
	S2ResultSSD
	S3ListsMem
	S4ListsMemSSD
	S5ListsSSD
	S6ListsMemHDD
	S7ListsMemSSDHDD
	S8ListsSSDHDD
	S9ListsHDD
	numSituations
)

// String names the situation as in Table I.
func (s Situation) String() string {
	names := [...]string{
		"S1(R:mem)", "S2(R:ssd)", "S3(I:mem)", "S4(I:mem+ssd)", "S5(I:ssd)",
		"S6(I:mem+hdd)", "S7(I:mem+ssd+hdd)", "S8(I:ssd+hdd)", "S9(I:hdd)",
	}
	if int(s) < len(names) {
		return names[s]
	}
	return "S?"
}

func classifyLists(src sourceSet) Situation {
	switch src {
	case srcMem:
		return S3ListsMem
	case srcMem | srcSSD:
		return S4ListsMemSSD
	case srcSSD:
		return S5ListsSSD
	case srcMem | srcHDD:
		return S6ListsMemHDD
	case srcMem | srcSSD | srcHDD:
		return S7ListsMemSSDHDD
	case srcSSD | srcHDD:
		return S8ListsSSDHDD
	default:
		return S9ListsHDD
	}
}

// SituationTally accumulates Table I: per-situation occurrence counts and
// total simulated time, from which probabilities P1..P9 and average time
// costs T1..T9 derive.
type SituationTally struct {
	Counts [numSituations]int64
	Time   [numSituations]time.Duration
}

// Total returns the number of classified queries.
func (s *SituationTally) Total() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Probability returns P_i for situation i.
func (s *SituationTally) Probability(i Situation) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	return float64(s.Counts[i]) / float64(total)
}

// MeanTime returns T_i for situation i.
func (s *SituationTally) MeanTime(i Situation) time.Duration {
	if s.Counts[i] == 0 {
		return 0
	}
	return s.Time[i] / time.Duration(s.Counts[i])
}

// SituationRow is one row of Table I: a situation with its occurrence
// count, probability P_i and mean time cost T_i.
type SituationRow struct {
	Sit      Situation
	Count    int64
	P        float64
	MeanTime time.Duration
}

// Table returns all nine (P_i, T_i) rows of Table I in situation order,
// including zero-count rows, so every reporter renders from one source.
func (s *SituationTally) Table() []SituationRow {
	rows := make([]SituationRow, numSituations)
	for i := Situation(0); i < numSituations; i++ {
		rows[i] = SituationRow{
			Sit:      i,
			Count:    s.Counts[i],
			P:        s.Probability(i),
			MeanTime: s.MeanTime(i),
		}
	}
	return rows
}

// Stats aggregates the manager's counters. All byte counts are payload
// bytes; device-level counters (erases, access times) live on the devices.
type Stats struct {
	// Result cache.
	ResultHitsMem      int64
	ResultHitsSSD      int64
	ResultMisses       int64
	L1ResultEvictions  int64
	L2ResultEvictions  int64
	ResultWritesElided int64
	ResultsDropped     int64
	ResultBytesToSSD   int64
	RBFlushes          int64
	RBRetired          int64

	// Inverted-list cache.
	ListRequests           int64
	ListHits               int64 // requests served with no HDD bytes
	ListBytesRequested     int64 // bytes the engine asked ReadListRange for
	ListReqBytesFromHDD    int64 // requested bytes that fell through to HDD
	ListBytesPrefetched    int64 // readahead bytes beyond the requested tail
	ListBytesFromMem       int64
	ListBytesFromSSD       int64
	ListBytesFromHDD       int64
	ListBytesToSSD         int64
	ListWritesToSSD        int64
	ListWritesElided       int64
	ListsDiscarded         int64
	ListOverwritesInPlace  int64
	ListPlacementWorstCase int64
	ListsTooLargeForL1     int64
	L1ListEvictions        int64
	L2ListEvictions        int64

	// Admission-policy accounting (the zoo's frequency doorkeepers).
	// ListsRejectedByAdmission sub-classifies ListsDiscarded: evicted
	// lists the admission policy's frequency gate kept off the flash.
	// ResultsRejectedByAdmission counts evicted result entries the gate
	// dropped before they reached the write buffer.
	ListsRejectedByAdmission   int64
	ResultsRejectedByAdmission int64

	// Dynamic scenario (TTL) accounting.
	ResultsExpired int64
	ListsExpired   int64

	// Fault accounting. Every SSD device error is counted here and every
	// entry lost to one lands in a drop/discard/requeue counter — injected
	// faults never silently lose accounting.
	SSDReadErrors  int64
	SSDWriteErrors int64
	SSDTrimErrors  int64
	// ResultsRequeued counts buffered result entries put back in the write
	// buffer after their RB flush failed (each entry is requeued at most
	// once; a second failure drops it into ResultsDropped).
	ResultsRequeued int64
	// ExtentsQuarantined / QuarantinedBytes track SSD cache space retired
	// after device errors (never re-allocated).
	ExtentsQuarantined int64
	QuarantinedBytes   int64
	// BreakerTrips counts circuit-breaker openings; DegradedServes counts
	// requests served around the SSD tier while the breaker was open.
	BreakerTrips   int64
	DegradedServes int64

	// Per-query outcome classification.
	Situations SituationTally
	Queries    int64
	QueryTime  time.Duration
}

// ResultLookups returns the number of result-cache probes.
func (s Stats) ResultLookups() int64 {
	return s.ResultHitsMem + s.ResultHitsSSD + s.ResultMisses
}

// ResultHitRatio returns the Fig 14 "RC" ratio: result probes served from
// either cache level.
func (s Stats) ResultHitRatio() float64 {
	total := s.ResultLookups()
	if total == 0 {
		return 0
	}
	return float64(s.ResultHitsMem+s.ResultHitsSSD) / float64(total)
}

// ListHitRatio returns the Fig 14 "IC" ratio, byte-weighted: the fraction
// of engine-requested list bytes served without touching the backing
// store. Byte weighting is the honest measure for variable-length entries:
// a 1 MB list missing its last 8 KB is a 99% hit, not a miss.
func (s Stats) ListHitRatio() float64 {
	if s.ListBytesRequested == 0 {
		return 0
	}
	return 1 - float64(s.ListReqBytesFromHDD)/float64(s.ListBytesRequested)
}

// ListRequestHitRatio is the request-granularity variant: per-query term
// requests that needed no backing-store bytes at all.
func (s Stats) ListRequestHitRatio() float64 {
	if s.ListRequests == 0 {
		return 0
	}
	return float64(s.ListHits) / float64(s.ListRequests)
}

// CombinedHitRatio returns the Fig 14 "RIC" ratio: result lookups and list
// requests combined, with list requests contributing their byte-weighted
// hit fraction.
func (s Stats) CombinedHitRatio() float64 {
	probes := s.ResultLookups() + s.ListRequests
	if probes == 0 {
		return 0
	}
	hits := float64(s.ResultHitsMem+s.ResultHitsSSD) +
		s.ListHitRatio()*float64(s.ListRequests)
	return hits / float64(probes)
}

// MeanQueryTime returns average simulated response time per query.
func (s Stats) MeanQueryTime() time.Duration {
	if s.Queries == 0 {
		return 0
	}
	return s.QueryTime / time.Duration(s.Queries)
}

// Throughput returns simulated queries per second.
func (s Stats) Throughput() float64 {
	if s.QueryTime <= 0 {
		return 0
	}
	return float64(s.Queries) / s.QueryTime.Seconds()
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (cache contents are untouched), so
// experiments can measure steady state after warm-up.
func (m *Manager) ResetStats() { m.stats = Stats{} }

// BeginQuery starts situation tracking for one query. The driver brackets
// each query with BeginQuery/EndQuery; list reads in between are attributed
// to it.
func (m *Manager) BeginQuery(qid uint64) {
	m.curQuery = qid
	m.curQueryActive = true
	m.curResultSrc = 0
	clear(m.curTermSrc)
}

// EndQuery finalizes tracking: classifies the query into its Table I
// situation and folds per-term source sets into the list hit statistics.
// elapsed is the query's simulated wall time.
func (m *Manager) EndQuery(elapsed time.Duration) {
	if !m.curQueryActive {
		return
	}
	m.curQueryActive = false
	m.stats.Queries++
	m.stats.QueryTime += elapsed

	var sit Situation
	switch {
	case m.curResultSrc&srcMem != 0:
		sit = S1ResultMem
	case m.curResultSrc&srcSSD != 0:
		sit = S2ResultSSD
	default:
		var union sourceSet
		for _, src := range m.curTermSrc {
			union |= src
		}
		sit = classifyLists(union)
	}
	m.stats.Situations.Counts[sit]++
	m.stats.Situations.Time[sit] += elapsed
	m.emit(Event{Kind: EvQueryEnd, Sit: sit})

	for _, src := range m.curTermSrc {
		m.stats.ListRequests++
		if src&srcHDD == 0 {
			m.stats.ListHits++
		}
	}
}

// noteTermAccess bumps the term's access frequency, once per query for
// situation purposes but on every request when untracked.
func (m *Manager) noteTermAccess(t workload.TermID) {
	if m.curQueryActive {
		if _, seen := m.curTermSrc[t]; !seen {
			bumpFreq(m.termFreq, t, m.cfg.FreqCap)
			m.curTermSrc[t] = 0
		}
		return
	}
	bumpFreq(m.termFreq, t, m.cfg.FreqCap)
}

// bumpFreq increments one frequency counter, decaying the whole map when it
// outgrows Config.FreqCap: all counts halve and zeros are pruned until the
// map fits. Uniform decay divides every EV = Freq/SC by the same factor, so
// the cost-based replacement ordering is preserved while memory stays
// bounded for arbitrarily many distinct keys.
func bumpFreq[K comparable](m map[K]int64, k K, limit int) {
	m[k]++
	// Each pass halves every count and prunes zeros; counts strictly
	// decrease, so after at most log2(max) passes the map empties — the
	// loop always terminates.
	for limit > 0 && len(m) > limit {
		for key, v := range m {
			v /= 2
			if v == 0 {
				delete(m, key)
			} else {
				m[key] = v
			}
		}
	}
}

func (m *Manager) noteTermSource(t workload.TermID, src sourceSet) {
	if m.curQueryActive {
		m.curTermSrc[t] |= src
	}
}

func (m *Manager) noteResultSource(src sourceSet) {
	if m.curQueryActive {
		m.curResultSrc |= src
	}
}

// TermFrequency returns the recorded access count for t (Formula 2 input).
func (m *Manager) TermFrequency(t workload.TermID) int64 { return m.termFreq[t] }

// QueryFrequency returns the recorded lookup count for query qid.
func (m *Manager) QueryFrequency(qid uint64) int64 { return m.queryFreq[qid] }

// HotQueries returns up to k query IDs ranked by recorded lookup
// frequency, hottest first (ties broken by ascending qid so the ranking
// is deterministic). The serving layer uses it to seed a frequency-ranked
// warming pass from the query-frequency sketch a warm run accumulated.
func (m *Manager) HotQueries(k int) []uint64 {
	if k <= 0 || len(m.queryFreq) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(m.queryFreq))
	for qid := range m.queryFreq {
		ids = append(ids, qid)
	}
	sort.Slice(ids, func(i, j int) bool {
		fi, fj := m.queryFreq[ids[i]], m.queryFreq[ids[j]]
		if fi != fj {
			return fi > fj
		}
		return ids[i] < ids[j]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}
