package core

import (
	"hybridstore/internal/workload"
)

// Level names a storage level of the hierarchy for event attribution.
type Level uint8

// Storage levels, outermost first.
const (
	LevelMem Level = iota
	LevelSSD
	LevelHDD
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelMem:
		return "mem"
	case LevelSSD:
		return "ssd"
	case LevelHDD:
		return "hdd"
	default:
		return "level?"
	}
}

// EventKind classifies one manager event.
type EventKind uint8

// Manager event kinds. Each fires at the moment the corresponding stats
// counter is bumped, so a sink that sums event payloads reproduces the
// Stats totals exactly.
const (
	// EvListRead: Bytes of term Term's list served from Level.
	EvListRead EventKind = iota
	// EvResultHit: a result-cache probe served from Level (Bytes = entry size).
	EvResultHit
	// EvResultMiss: a result-cache probe that found nothing.
	EvResultMiss
	// EvListFlush: Bytes of an inverted-list extent written to the SSD cache.
	EvListFlush
	// EvResultFlush: Bytes of result data written to the SSD cache (an
	// assembled RB under the cost-based policies, a single entry under LRU).
	EvResultFlush
	// EvListEvict: an inverted-list entry evicted from the cache at Level.
	EvListEvict
	// EvResultEvict: a result entry (or RB) evicted from the cache at Level.
	EvResultEvict
	// EvQueryEnd: the current query was classified into situation Sit.
	EvQueryEnd
	// EvIOError: an SSD cache operation failed; Bytes is the size of the
	// failed transfer, Level is always LevelSSD. One event per failed
	// device call, so the event count equals SSDReadErrors +
	// SSDWriteErrors + SSDTrimErrors.
	EvIOError
	// EvDegraded: a request was served around the SSD tier because the
	// circuit breaker is open (count == Stats.DegradedServes).
	EvDegraded
)

// String names the event kind.
func (k EventKind) String() string {
	names := [...]string{
		"list_read", "result_hit", "result_miss", "list_flush",
		"result_flush", "list_evict", "result_evict", "query_end",
		"io_error", "degraded",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "event?"
}

// Event is one fine-grained cache-manager occurrence, emitted synchronously
// on the serving path for tracing and metrics. Fields beyond Kind are
// populated per kind (see the kind constants).
type Event struct {
	Kind  EventKind
	Term  workload.TermID
	Level Level
	Bytes int64
	Sit   Situation
}

// statsEventPairs declares the stats≡trace pairing: every listed Stats
// counter fires the mapped event at the moment it is bumped, so a sink
// that sums event payloads reproduces the Stats totals exactly. The
// statsevent analyzer (internal/analysis, run via cmd/hybridlint) reads
// this table and fails the lint when a paired counter is mutated without
// emitting its event in the same function — and when a new Stats field is
// added without an entry here or in statsUnpaired. TestStatsEventTables
// cross-checks the same totality at run time.
var statsEventPairs = map[string]EventKind{
	"ResultHitsMem":       EvResultHit,
	"ResultHitsSSD":       EvResultHit,
	"ResultMisses":        EvResultMiss,
	"L1ResultEvictions":   EvResultEvict,
	"L2ResultEvictions":   EvResultEvict,
	"RBRetired":           EvResultEvict,
	"RBFlushes":           EvResultFlush,
	"ResultBytesToSSD":    EvResultFlush,
	"ListBytesFromMem":    EvListRead,
	"ListBytesFromSSD":    EvListRead,
	"ListBytesFromHDD":    EvListRead,
	"ListReqBytesFromHDD": EvListRead,
	"ListBytesToSSD":      EvListFlush,
	"ListWritesToSSD":     EvListFlush,
	"L1ListEvictions":     EvListEvict,
	"L2ListEvictions":     EvListEvict,
	"SSDReadErrors":       EvIOError,
	"SSDWriteErrors":      EvIOError,
	"SSDTrimErrors":       EvIOError,
	"DegradedServes":      EvDegraded,
	"Queries":             EvQueryEnd,
	"QueryTime":           EvQueryEnd,
	"Situations":          EvQueryEnd,
}

// statsUnpaired lists the Stats fields that deliberately fire no event,
// each with the reason the omission is sound. The statsevent analyzer
// requires every Stats field to appear in exactly one of the two tables.
var statsUnpaired = map[string]string{
	"ResultWritesElided":         "elision means nothing moved; the probe outcome was already evented",
	"ResultsDropped":             "terminal loss accounting; the failed flush already emitted EvIOError",
	"ResultsRequeued":            "retry bookkeeping; the triggering failure already emitted EvIOError",
	"ResultsExpired":             "TTL bookkeeping folded into the probe outcome (hit/miss) event",
	"ListsExpired":               "TTL bookkeeping folded into the read-path events",
	"ListsDiscarded":             "terminal loss accounting; the failed device call already emitted EvIOError",
	"ListWritesElided":           "elision means nothing moved; no bytes to attribute",
	"ListRequests":               "per-term demand folded at EndQuery; traffic is evented per level as EvListRead",
	"ListHits":                   "per-term demand folded at EndQuery; traffic is evented per level as EvListRead",
	"ListBytesRequested":         "demand-side counter; served bytes are evented per level as EvListRead",
	"ListBytesPrefetched":        "readahead beyond the request; the SSD write is evented as EvListFlush",
	"ListOverwritesInPlace":      "placement detail of a flush that already emitted EvListFlush",
	"ListPlacementWorstCase":     "placement detail of a flush that already emitted EvListFlush",
	"ListsTooLargeForL1":         "admission decision; no cache state changed",
	"ListsRejectedByAdmission":   "admission decision; no bytes moved, sub-classifies ListsDiscarded",
	"ResultsRejectedByAdmission": "admission decision; the entry was dropped before any device traffic",
	"ExtentsQuarantined":         "capacity retirement; the triggering failure already emitted EvIOError",
	"QuarantinedBytes":           "capacity retirement; the triggering failure already emitted EvIOError",
	"BreakerTrips":               "breaker state change; each contributing failure already emitted EvIOError",
}

// SetEventSink installs a callback receiving every manager event, or removes
// it when fn is nil. The sink is invoked synchronously on the serving path
// under the simulation's single-threaded discipline; it must not call back
// into the manager.
func (m *Manager) SetEventSink(fn func(Event)) { m.events = fn }

// emit delivers an event to the sink, if any.
func (m *Manager) emit(e Event) {
	if m.events != nil {
		m.events(e)
	}
}
