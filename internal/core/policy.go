package core

// Pluggable replacement and admission policies.
//
// The Manager's serving paths are policy-independent plumbing (read
// through the hierarchy, account every byte, keep the allocator honest);
// everything that distinguishes LRU from the paper's cost-based schemes —
// caching unit, victim choice, the replaceable-state dance of Fig 9, L2
// admission — is behind the ReplacementPolicy/AdmissionPolicy pair. The
// three policies of the paper (LRU, CBLRU, CBSLRU) are the first three
// registered implementations; the zoo (TinyLFU admission, ARC, 2Q, the
// bidirectional cache filter) builds on the same hooks without touching
// the serving paths.
//
// Every implementation must preserve the Manager's contracts: the
// invariant checker (invariants.go), the stats≡trace pairing
// (events.go, enforced by hybridlint statsevent), deterministic behavior
// under a fixed seed (byte-identical experiment output at any -jobs), and
// exact accounting under injected device faults.

import (
	"fmt"
	"sort"
	"strings"

	"hybridstore/internal/cache"
	"hybridstore/internal/workload"
)

// ReplacementPolicy captures the policy-dependent decision points of the
// cache hierarchy's replacement path. Implementations may keep per-manager
// state (ghost lists, adaptation targets); they are created per Manager by
// the registry factory and are not safe for concurrent use, matching the
// Manager itself.
type ReplacementPolicy interface {
	// WholeListL1 reports whether L1 caches entire inverted lists (the
	// LRU baseline's classic list caching) or Formula-1 used prefixes.
	WholeListL1() bool
	// BlockAlignedL2 reports whether the L2 cache uses the paper's
	// block-aligned machinery (result blocks, write buffer, extent
	// ladder) or the baseline's entry-granularity writes.
	BlockAlignedL2() bool
	// FlipReplaceableOnHit reports whether an SSD hit that copies data
	// back to memory flips the SSD entry to replaceable (Fig 9).
	FlipReplaceableOnHit() bool
	// UsesStaticPartition reports whether part of each SSD region is a
	// static partition populated by query-log analysis (CBSLRU, §VI-C2).
	UsesStaticPartition() bool
	// ChooseL1ListVictim picks the next L1 inverted-list eviction victim,
	// never returning exclude. Nil means nothing evictable.
	ChooseL1ListVictim(exclude *cache.Entry) *cache.Entry
	// PromoteResultToL1 reports whether a result served from the SSD is
	// copied up into the L1 result cache (the hybrid scheme's promotion;
	// the bidirectional filter gates it on repeat hits).
	PromoteResultToL1(qid uint64) bool
	// AdmitNewL1List reports whether a list with no L1 entry yet may be
	// inserted into L1 (extensions of an existing prefix are always
	// allowed). The bidirectional filter gates first-touch inserts.
	AdmitNewL1List(t workload.TermID) bool
	// NoteL1ListInsert/Hit/Evict inform the policy of L1 list-cache
	// lifecycle so segmented schemes (ARC, 2Q) can keep their ghost
	// bookkeeping. No-ops for the paper's policies.
	NoteL1ListInsert(t workload.TermID)
	NoteL1ListHit(t workload.TermID)
	NoteL1ListEvict(t workload.TermID)
}

// AdmissionPolicy decides what enters the L2 (SSD) cache. The paper's
// cost-based policies admit by efficiency value (Formula 2 vs TEV);
// TinyLFU-style policies additionally require sketch frequency, keeping
// one-hit wonders off the flash entirely.
type AdmissionPolicy interface {
	// AdmitList decides whether an L1-evicted list prefix (Formula-1 size
	// sc blocks) is flushed into the L2 list region. Returning false
	// discards the list (it stays readable from the backing store).
	AdmitList(t workload.TermID, sc int64) bool
	// AdmitResult decides whether an L1-evicted result entry enters the
	// write buffer for RB assembly.
	AdmitResult(qid uint64) bool
}

// PolicyInfo describes one registered policy.
type PolicyInfo struct {
	// ID is the Policy constant.
	ID Policy
	// Name is the lowercase parse name (CLI flags, config files).
	Name string
	// Display is the report name (the paper's capitalization).
	Display string
	// Summary is a one-line description for docs and -help output.
	Summary string
	// RequiresTwoLevel marks policies meaningless without an SSD level
	// (hybrid.Config validation rejects them in other cache modes).
	RequiresTwoLevel bool
	// New builds the policy pair for a manager. Called once per Manager
	// from core.New, after the configuration has been validated.
	New func(m *Manager) (ReplacementPolicy, AdmissionPolicy)
}

// policyRegistry holds every known policy, in Policy-constant order. A
// fixed slice (not init-time side effects) keeps registration order — and
// therefore RegisteredPolicyNames and every error message derived from it
// — deterministic.
var policyRegistry = []PolicyInfo{
	{
		ID: PolicyLRU, Name: "lru", Display: "LRU",
		Summary: "recency-only baseline: whole-list caching, entry-granularity SSD writes",
		New: func(m *Manager) (ReplacementPolicy, AdmissionPolicy) {
			return &lruReplacement{m: m}, admitAll{}
		},
	},
	{
		ID: PolicyCBLRU, Name: "cblru", Display: "CBLRU",
		Summary: "cost-based LRU: EV selection, prefix caching, block-aligned log writes (paper §VI)",
		New: func(m *Manager) (ReplacementPolicy, AdmissionPolicy) {
			return &cbReplacement{m: m}, &tevAdmission{m: m}
		},
	},
	{
		ID: PolicyCBSLRU, Name: "cbslru", Display: "CBSLRU",
		Summary:          "CBLRU plus a static partition pinned by query-log analysis (paper §VI-C2)",
		RequiresTwoLevel: true,
		New: func(m *Manager) (ReplacementPolicy, AdmissionPolicy) {
			return &cbReplacement{m: m, static: true}, &tevAdmission{m: m}
		},
	},
	{
		ID: PolicyTinyLFU, Name: "tinylfu", Display: "TinyLFU",
		Summary: "CBLRU replacement with frequency-gated L2 admission from the decaying sketches",
		New: func(m *Manager) (ReplacementPolicy, AdmissionPolicy) {
			return &cbReplacement{m: m}, &freqGatedAdmission{m: m}
		},
	},
	{
		ID: PolicyARC, Name: "arc", Display: "ARC",
		Summary: "adaptive replacement cache at L1 (T1/T2 + ghost B1/B2), cost-based L2",
		New: func(m *Manager) (ReplacementPolicy, AdmissionPolicy) {
			return newARCReplacement(m), &tevAdmission{m: m}
		},
	},
	{
		ID: Policy2Q, Name: "2q", Display: "2Q",
		Summary: "2Q at L1 (A1in/A1out/Am), cost-based L2",
		New: func(m *Manager) (ReplacementPolicy, AdmissionPolicy) {
			return new2QReplacement(m), &tevAdmission{m: m}
		},
	},
	{
		ID: PolicyBidi, Name: "bidi", Display: "BiDi",
		Summary:          "bidirectional cache filter: promote/demote between levels gated on repeat hits",
		RequiresTwoLevel: true,
		New: func(m *Manager) (ReplacementPolicy, AdmissionPolicy) {
			return &bidiReplacement{cbReplacement{m: m}}, &freqGatedAdmission{m: m}
		},
	},
}

// lookupPolicy returns the registry entry for p.
func lookupPolicy(p Policy) (PolicyInfo, bool) {
	for _, info := range policyRegistry {
		if info.ID == p {
			return info, true
		}
	}
	return PolicyInfo{}, false
}

// Policies returns every registered policy, in registration order.
func Policies() []PolicyInfo {
	out := make([]PolicyInfo, len(policyRegistry))
	copy(out, policyRegistry)
	return out
}

// RegisteredPolicyNames returns the parse names of every registered
// policy, in registration order.
func RegisteredPolicyNames() []string {
	names := make([]string, len(policyRegistry))
	for i, info := range policyRegistry {
		names[i] = info.Name
	}
	return names
}

// ParsePolicy maps a policy name (case-insensitive parse name or display
// name) to its Policy constant. The error lists every registered name, so
// it can never go stale as policies are added.
func ParsePolicy(s string) (Policy, error) {
	for _, info := range policyRegistry {
		if strings.EqualFold(s, info.Name) || strings.EqualFold(s, info.Display) {
			return info.ID, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q (want %s)", s, strings.Join(RegisteredPolicyNames(), ", "))
}

// Valid reports whether p is a registered policy. Config validation
// rejects invalid values up front, so the Policy(%d) String fallback is
// unreachable from user input.
func (p Policy) Valid() bool {
	_, ok := lookupPolicy(p)
	return ok
}

// RequiresTwoLevel reports whether p is only meaningful with an SSD cache
// level (hybrid.Config validation enforces the pairing).
func (p Policy) RequiresTwoLevel() bool {
	info, ok := lookupPolicy(p)
	return ok && info.RequiresTwoLevel
}

// ---------------------------------------------------------------------------
// The paper's policies: LRU baseline and the cost-based family.

// lruReplacement is the baseline of §VII: strict recency at both levels,
// whole-list caching, entry-granularity SSD writes, no selection logic.
type lruReplacement struct{ m *Manager }

func (r *lruReplacement) WholeListL1() bool          { return true }
func (r *lruReplacement) BlockAlignedL2() bool       { return false }
func (r *lruReplacement) FlipReplaceableOnHit() bool { return false }
func (r *lruReplacement) UsesStaticPartition() bool  { return false }

// ChooseL1ListVictim picks the least-recently-used entry, skipping exclude.
func (r *lruReplacement) ChooseL1ListVictim(exclude *cache.Entry) *cache.Entry {
	var v *cache.Entry
	r.m.ic.Ascend(func(e *cache.Entry) bool {
		if e != exclude {
			v = e
			return false
		}
		return true
	})
	return v
}

func (r *lruReplacement) PromoteResultToL1(uint64) bool       { return true }
func (r *lruReplacement) AdmitNewL1List(workload.TermID) bool { return true }
func (r *lruReplacement) NoteL1ListInsert(workload.TermID)    {}
func (r *lruReplacement) NoteL1ListHit(workload.TermID)       {}
func (r *lruReplacement) NoteL1ListEvict(workload.TermID)     {}

// cbReplacement is the paper's cost-based replacement (CBLRU; with static
// true, CBSLRU): prefix caching sized by Formula 1, minimum-EV victim
// choice inside the replace-first window (Fig 12), block-aligned log
// writes and the replaceable-state hybrid scheme (Fig 9). It is also the
// base the zoo policies embed for the paper's L2 machinery.
type cbReplacement struct {
	m      *Manager
	static bool
}

func (r *cbReplacement) WholeListL1() bool          { return false }
func (r *cbReplacement) BlockAlignedL2() bool       { return true }
func (r *cbReplacement) FlipReplaceableOnHit() bool { return true }
func (r *cbReplacement) UsesStaticPartition() bool  { return r.static }

// ChooseL1ListVictim picks the minimum-EV entry within the replace-first
// window (Fig 12), skipping exclude.
func (r *cbReplacement) ChooseL1ListVictim(exclude *cache.Entry) *cache.Entry {
	m := r.m
	window := m.cfg.WindowW
	if window < 8 {
		window = 8
	}
	var best *cache.Entry
	bestEV := 0.0
	for _, e := range m.ic.TailWindow(window + 1) { // +1 headroom for exclude
		if e == exclude {
			continue
		}
		ml := e.Value.(*memList)
		v := ev(m.termFreq[ml.term], m.scBlocks(int64(len(ml.prefix)), m.pu(ml.term)))
		if best == nil || v < bestEV {
			best, bestEV = e, v
		}
	}
	return best
}

func (r *cbReplacement) PromoteResultToL1(uint64) bool       { return true }
func (r *cbReplacement) AdmitNewL1List(workload.TermID) bool { return true }
func (r *cbReplacement) NoteL1ListInsert(workload.TermID)    {}
func (r *cbReplacement) NoteL1ListHit(workload.TermID)       {}
func (r *cbReplacement) NoteL1ListEvict(workload.TermID)     {}

// admitAll is the baseline admission: everything evicted from L1 goes to
// the SSD (no selection — the write storm the paper's selection avoids).
type admitAll struct{}

func (admitAll) AdmitList(workload.TermID, int64) bool { return true }
func (admitAll) AdmitResult(uint64) bool               { return true }

// tevAdmission is the paper's selection (§VI-A): an evicted list is
// admitted when its efficiency value EV = Freq/SC (Formula 2) reaches the
// TEV threshold; results are always admitted (the paper buffers every
// evicted result entry for RB assembly).
type tevAdmission struct{ m *Manager }

func (a *tevAdmission) AdmitList(t workload.TermID, sc int64) bool {
	return !(ev(a.m.termFreq[t], sc) < a.m.cfg.TEV)
}

func (a *tevAdmission) AdmitResult(uint64) bool { return true }

// sortedPolicyIDs is a test helper: every registered Policy value,
// ascending.
func sortedPolicyIDs() []Policy {
	ids := make([]Policy, 0, len(policyRegistry))
	for _, info := range policyRegistry {
		ids = append(ids, info.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
