package core

import (
	"testing"
	"time"

	"hybridstore/internal/workload"
)

func TestResultTTLExpiresL1(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.ResultTTL = time.Second
	f := newFixture(t, cfg)
	size := f.m.Config().ResultEntryBytes
	f.m.PutResult(1, entryOf(1, 5, size))
	if _, src := f.m.GetResult(1); src != ResultFromMemory {
		t.Fatal("fresh entry missed")
	}
	f.clock.Advance(2 * time.Second)
	if _, src := f.m.GetResult(1); src != ResultMiss {
		t.Fatalf("expired entry served (src=%v)", src)
	}
	if f.m.Stats().ResultsExpired == 0 {
		t.Fatal("expiry not counted")
	}
}

func TestResultTTLExpiresSSDCopies(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.ResultTTL = 10 * time.Second
	f := newFixture(t, cfg)
	size := f.m.Config().ResultEntryBytes
	for q := uint64(1); q <= 20; q++ {
		f.m.PutResult(q, entryOf(q, byte(q), size))
	}
	// Find one entry on SSD.
	var onSSD uint64
	for q := uint64(1); q <= 6; q++ {
		if _, ok := f.m.resultLoc[q]; ok {
			onSSD = q
			break
		}
	}
	if onSSD == 0 {
		t.Skip("nothing reached SSD")
	}
	f.clock.Advance(time.Minute)
	if _, src := f.m.GetResult(onSSD); src != ResultMiss {
		t.Fatalf("expired SSD entry served (src=%v)", src)
	}
	if _, ok := f.m.resultLoc[onSSD]; ok {
		t.Fatal("expired SSD mapping not removed")
	}
}

func TestResultTTLRefreshOnReput(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.ResultTTL = time.Second
	f := newFixture(t, cfg)
	size := f.m.Config().ResultEntryBytes
	f.m.PutResult(1, entryOf(1, 5, size))
	f.clock.Advance(2 * time.Second)
	f.m.PutResult(1, entryOf(1, 5, size)) // recompute refreshes the stamp
	if _, src := f.m.GetResult(1); src != ResultFromMemory {
		t.Fatal("refreshed entry missed")
	}
}

func TestListTTLExpires(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.ListTTL = time.Second
	f := newFixture(t, cfg)
	term := workload.TermID(10)
	f.readSome(t, term, 8<<10)
	hddBefore := f.m.Stats().ListBytesFromHDD
	f.readSome(t, term, 8<<10) // fresh: memory hit
	if f.m.Stats().ListBytesFromHDD != hddBefore {
		t.Fatal("fresh list re-read from HDD")
	}
	f.clock.Advance(time.Minute)
	f.readSome(t, term, 8<<10) // expired: back to HDD
	s := f.m.Stats()
	if s.ListBytesFromHDD == hddBefore {
		t.Fatal("expired list served from cache")
	}
	if s.ListsExpired == 0 {
		t.Fatal("list expiry not counted")
	}
}

func TestExpiredListNotFlushedToSSD(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.ListTTL = time.Second
	cfg.MemListBytes = 64 << 10
	f := newFixture(t, cfg)
	f.readSome(t, 20, 12<<10)
	f.clock.Advance(time.Minute) // entry is now stale in L1
	writesBefore := f.m.Stats().ListWritesToSSD
	// Evict it by filling L1.
	for i := 0; i < 20; i++ {
		f.readSome(t, workload.TermID(40+i), 12<<10)
	}
	// The stale term-20 prefix must not have been written; other flushes
	// may occur, so check the SSD does not hold term 20.
	if f.m.ssdListFor(20) != nil {
		t.Fatal("expired list flushed to SSD")
	}
	_ = writesBefore
}

func TestZeroTTLMeansStatic(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	size := f.m.Config().ResultEntryBytes
	f.m.PutResult(1, entryOf(1, 5, size))
	f.clock.Advance(24 * 365 * time.Hour)
	if _, src := f.m.GetResult(1); src != ResultFromMemory {
		t.Fatal("static-scenario entry expired")
	}
	if f.m.Stats().ResultsExpired != 0 || f.m.Stats().ListsExpired != 0 {
		t.Fatal("expiry counted in static scenario")
	}
}

func TestStaticPinsExemptFromTTL(t *testing.T) {
	cfg := testConfig(PolicyCBSLRU)
	cfg.ResultTTL = time.Second
	f := newFixture(t, cfg)
	size := f.m.Config().ResultEntryBytes
	if !f.m.PinResult(9, entryOf(9, 3, size)) {
		t.Fatal("pin failed")
	}
	f.clock.Advance(time.Hour)
	if _, src := f.m.GetResult(9); src != ResultFromSSD {
		t.Fatalf("static pin expired (src=%v)", src)
	}
}
