// Package core implements the paper's contribution: the two-level
// (memory + SSD) cache manager for search engines, with its three policy
// pillars — data selection (Formulas 1–2), log-based data placement
// (result blocks, write buffer) and cost-based data replacement (CBLRU and
// CBSLRU) — plus the plain LRU baseline the paper compares against.
//
// The Manager sits between the query engine and the storage devices: it
// implements engine.ListSource for inverted-list reads and a result-cache
// API for whole query results, exactly the two cached data types of §VI.
package core

import (
	"fmt"
	"strings"
	"time"

	"hybridstore/internal/workload"
)

// Policy selects the replacement algorithm family.
type Policy int

const (
	// PolicyLRU is the baseline: strict recency eviction at both levels,
	// entry-granularity SSD writes, whole-list caching, no selection logic.
	PolicyLRU Policy = iota
	// PolicyCBLRU is the paper's cost-based LRU: EV-driven selection,
	// prefix caching sized by Formula 1, block-aligned log writes, and
	// replace-first-region victim choice (Figs 11–13).
	PolicyCBLRU
	// PolicyCBSLRU adds a static partition holding the most efficient
	// entries, populated by query-log analysis and exempt from replacement.
	PolicyCBSLRU
	// PolicyTinyLFU keeps CBLRU replacement but gates L2 admission on the
	// decayed frequency sketches: one-hit wonders never reach the flash.
	PolicyTinyLFU
	// PolicyARC runs the adaptive replacement cache (T1/T2 + ghost B1/B2)
	// over the L1 list cache, with the cost-based L2 machinery below.
	PolicyARC
	// Policy2Q runs the 2Q scheme (A1in/A1out/Am) over the L1 list cache,
	// with the cost-based L2 machinery below.
	Policy2Q
	// PolicyBidi is the bidirectional cache filter: promotion from SSD to
	// memory and demotion from memory to SSD both gated on repeat hits.
	PolicyBidi
)

// String returns the policy's display name from the registry. The
// formatted-integer fallback is unreachable for validated configurations:
// Config.Validate rejects unregistered policy values up front.
func (p Policy) String() string {
	if info, ok := lookupPolicy(p); ok {
		return info.Display
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config sizes and tunes the cache hierarchy.
type Config struct {
	// Policy selects the replacement/admission policy pair; see the
	// registry in policy.go (ParsePolicy, RegisteredPolicyNames).
	Policy Policy

	// MemResultBytes is the L1 result-cache capacity ("L1 RC").
	MemResultBytes int64
	// MemListBytes is the L1 inverted-list-cache capacity.
	MemListBytes int64
	// SSDResultBytes is the L2 result-cache region on the SSD; 0 disables
	// the L2 result cache.
	SSDResultBytes int64
	// SSDListBytes is the L2 inverted-list region on the SSD; 0 disables it.
	SSDListBytes int64

	// BlockBytes is the SSD block size SB of Formula 1 (paper: 128 KB).
	BlockBytes int64
	// ResultEntryBytes is the fixed serialized result-entry size
	// (paper: ~20 KB → 6 entries per 128 KB result block).
	ResultEntryBytes int64
	// WindowW is the replace-first region size in entries (Figs 11–13).
	WindowW int
	// TEV is the efficiency-value threshold of §VI-A: evicted lists with
	// EV = Freq/SC below TEV are discarded instead of flushed to SSD.
	TEV float64
	// StaticFraction is the share of each SSD region CBSLRU pins
	// statically (ignored by other policies).
	StaticFraction float64
	// PrefetchQuantum rounds the cost-based policies' L1 prefix up to this
	// many bytes by streaming ahead on the (already positioned) disk head
	// after a tail miss. Early-termination points vary slightly between
	// queries sharing a term; without readahead every repeat query pays a
	// full random seek for a few-KB tail. Negative disables (ablation).
	// Default 32 KiB.
	PrefetchQuantum int64

	// ResultTTL and ListTTL enable the paper's dynamic scenario (§IV-B,
	// future work): cached entries older than their TTL (in simulated
	// time) are treated as expired and recomputed from the backing store.
	// Zero means the static scenario — entries never expire. Statically
	// pinned CBSLRU entries are exempt (the paper refreshes the static
	// partition offline).
	ResultTTL time.Duration
	ListTTL   time.Duration

	// BreakerThreshold trips the SSD circuit breaker after this many
	// consecutive SSD operation failures: until the cooldown expires the
	// manager serves around the L2 tier entirely (reads go to the backing
	// store, flushes are dropped with accounting) instead of hammering a
	// failing device. Zero selects the default (8); negative disables the
	// breaker.
	BreakerThreshold int
	// BreakerCooldown is how long (simulated time) the breaker stays open
	// after tripping. Zero selects the default (50ms).
	BreakerCooldown time.Duration

	// FreqCap bounds the Freq maps behind Formula 2 (per-term and per-query
	// access counts). When a map exceeds the cap, all counts are halved and
	// zeros pruned until it fits — a decayed frequency sketch with stable
	// memory under unbounded distinct keys, preserving the EV = Freq/SC
	// ordering (uniform decay rescales every EV by the same factor). Zero
	// selects the default (1<<16 entries); negative disables bounding.
	FreqCap int

	// MemAccessLatency and MemBytesPerSecond model L1 access cost.
	MemAccessLatency  time.Duration
	MemBytesPerSecond int64
	// PU supplies the per-term utilization rate of Formula 1. Nil selects
	// the measured-PU tracker fed by recorded executions.
	PU func(t workload.TermID) float64
}

// DefaultConfig returns the paper's evaluation shape: 20% of memory for
// results, 80% for lists (§VII-A), SSD result region 10× and list region
// 100× their memory counterparts (Fig 16), W = 5, 128 KB blocks, 20 KB
// result entries.
func DefaultConfig(memBytes int64) Config {
	memRC := memBytes / 5
	memIC := memBytes - memRC
	return Config{
		Policy:           PolicyCBLRU,
		MemResultBytes:   memRC,
		MemListBytes:     memIC,
		SSDResultBytes:   10 * memRC,
		SSDListBytes:     100 * memIC,
		BlockBytes:       128 << 10,
		ResultEntryBytes: 20 << 10,
		WindowW:          5,
		TEV:              0.5,
		StaticFraction:   0.5,
	}
}

func (c *Config) fillDefaults() {
	if c.BlockBytes <= 0 {
		c.BlockBytes = 128 << 10
	}
	if c.ResultEntryBytes <= 0 {
		c.ResultEntryBytes = 20 << 10
	}
	if c.WindowW <= 0 {
		c.WindowW = 5
	}
	if c.StaticFraction <= 0 || c.StaticFraction >= 1 {
		c.StaticFraction = 0.5
	}
	if c.PrefetchQuantum == 0 {
		c.PrefetchQuantum = 32 << 10
	}
	if c.PrefetchQuantum < 0 { // explicit opt-out
		c.PrefetchQuantum = 0
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 50 * time.Millisecond
	}
	if c.FreqCap == 0 {
		c.FreqCap = 1 << 16
	}
	if c.FreqCap < 0 { // explicit opt-out
		c.FreqCap = 0
	}
	if c.MemAccessLatency <= 0 {
		c.MemAccessLatency = 100 * time.Nanosecond
	}
	if c.MemBytesPerSecond <= 0 {
		c.MemBytesPerSecond = 10 << 30
	}
	// SSD regions operate on whole blocks; round them up so region bases
	// and extents stay block-aligned on the device.
	if c.SSDResultBytes > 0 {
		c.SSDResultBytes = (c.SSDResultBytes + c.BlockBytes - 1) / c.BlockBytes * c.BlockBytes
	}
	if c.SSDListBytes > 0 {
		c.SSDListBytes = (c.SSDListBytes + c.BlockBytes - 1) / c.BlockBytes * c.BlockBytes
	}
}

// Validate reports configuration errors that would make the hierarchy
// unbuildable.
func (c Config) Validate() error {
	switch {
	case c.MemResultBytes <= 0:
		return fmt.Errorf("core: MemResultBytes = %d", c.MemResultBytes)
	case c.MemListBytes <= 0:
		return fmt.Errorf("core: MemListBytes = %d", c.MemListBytes)
	case c.SSDResultBytes < 0 || c.SSDListBytes < 0:
		return fmt.Errorf("core: negative SSD region")
	case !c.Policy.Valid():
		return fmt.Errorf("core: unknown policy %d (want %s)",
			c.Policy, strings.Join(RegisteredPolicyNames(), ", "))
	}
	if c.SSDResultBytes > 0 && c.SSDResultBytes < c.BlockBytes {
		return fmt.Errorf("core: SSD result region %d below one block", c.SSDResultBytes)
	}
	if c.SSDListBytes > 0 && c.SSDListBytes < c.BlockBytes {
		return fmt.Errorf("core: SSD list region %d below one block", c.SSDListBytes)
	}
	if c.MemResultBytes < c.ResultEntryBytes {
		return fmt.Errorf("core: L1 RC %d cannot hold one %d-byte entry",
			c.MemResultBytes, c.ResultEntryBytes)
	}
	return nil
}
