package core

// Tests for the cache core's device-error paths: scripted single-fault
// scenarios through a controllable flaky device, and an end-to-end
// divergence test under probabilistic injection (storage.FaultyDevice)
// asserting the stats≡trace contract survives faults.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hybridstore/internal/index"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

var errFlaky = errors.New("flaky: scripted device failure")

// flakyDevice wraps a Device with script-controlled per-op-kind failures.
// It always implements Trimmer (no-op trims) so trim error paths are
// reachable over a MemDevice inner.
type flakyDevice struct {
	inner      storage.Device
	failReads  bool
	failWrites bool
	failTrims  bool
	trims      int
}

func (d *flakyDevice) Name() string { return d.inner.Name() }
func (d *flakyDevice) Size() int64  { return d.inner.Size() }

func (d *flakyDevice) ReadAt(p []byte, off int64) (time.Duration, error) {
	if d.failReads {
		return 0, errFlaky
	}
	return d.inner.ReadAt(p, off)
}

func (d *flakyDevice) WriteAt(p []byte, off int64) (time.Duration, error) {
	if d.failWrites {
		return 0, errFlaky
	}
	return d.inner.WriteAt(p, off)
}

func (d *flakyDevice) Trim(off, n int64) (time.Duration, error) {
	d.trims++
	if d.failTrims {
		return 0, errFlaky
	}
	return 0, nil
}

// newFaultFixture mirrors newFixture but routes the manager's SSD traffic
// through the given wrapper (built from the raw mem device by wrap).
func newFaultFixture(t *testing.T, cfg Config, wrap func(storage.Device) storage.Device) *fixture {
	t.Helper()
	clock := simclock.New()
	spec := workload.DefaultCollection(200000)
	spec.VocabSize = 200
	hdd := storage.NewMemDevice("hdd", index.RequiredBytes(spec)+4096, clock, storage.DefaultMemParams())
	ix, err := index.Build(hdd, spec)
	if err != nil {
		t.Fatal(err)
	}
	mem := storage.NewMemDevice("ssd", cfg.SSDResultBytes+cfg.SSDListBytes+(1<<20),
		simclock.New(), storage.DefaultMemParams())
	ssd := wrap(mem)
	m, err := New(clock, ix, ssd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{clock: clock, ix: ix, ssd: ssd, m: m, spec: spec}
}

func newFlakyFixture(t *testing.T, cfg Config) (*fixture, *flakyDevice) {
	t.Helper()
	var fd *flakyDevice
	f := newFaultFixture(t, cfg, func(inner storage.Device) storage.Device {
		fd = &flakyDevice{inner: inner}
		return fd
	})
	return f, fd
}

// putEntries caches entries for qids [from,to] through the normal L1 path.
func putEntries(t *testing.T, f *fixture, from, to uint64) {
	t.Helper()
	for qid := from; qid <= to; qid++ {
		if err := f.m.PutResult(qid, entryOf(qid, 0xAB, f.m.cfg.ResultEntryBytes)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFlushWriteErrorRequeuesOnceThenDrops: a failed RB flush must not
// silently lose the batch (the bug this PR fixes) — entries are re-queued
// once with accounting, a second failure drops them, still accounted, and
// the failed extent is quarantined rather than recycled.
func TestFlushWriteErrorRequeuesOnceThenDrops(t *testing.T) {
	f, fd := newFlakyFixture(t, testConfig(PolicyCBLRU))
	fd.failWrites = true
	// 11 puts: L1 holds 5 entries, 6 evictions fill the write buffer and
	// trigger one RB flush, which fails.
	putEntries(t, f, 1, 11)
	s := f.m.Stats()
	if s.SSDWriteErrors != 1 {
		t.Fatalf("SSDWriteErrors = %d, want 1", s.SSDWriteErrors)
	}
	if s.ResultsRequeued != 6 || s.ResultsDropped != 0 {
		t.Fatalf("requeued %d dropped %d, want 6/0", s.ResultsRequeued, s.ResultsDropped)
	}
	if s.ExtentsQuarantined != 1 || s.QuarantinedBytes != f.m.cfg.BlockBytes {
		t.Fatalf("quarantine accounting: %d extents / %d bytes", s.ExtentsQuarantined, s.QuarantinedBytes)
	}
	if got := f.m.WriteBufferLen(); got != 6 {
		t.Fatalf("write buffer %d entries after requeue, want 6", got)
	}
	if len(f.m.resultLoc) != 0 {
		t.Fatalf("failed flush left %d SSD mappings", len(f.m.resultLoc))
	}

	// Second attempt: the re-queued batch is dropped, not re-queued again,
	// and the progress check stops the loop instead of spinning.
	if rem := f.m.FlushWriteBuffer(); rem != 0 {
		t.Fatalf("FlushWriteBuffer left %d entries", rem)
	}
	s = f.m.Stats()
	if s.SSDWriteErrors != 2 || s.ResultsDropped != 6 || s.ResultsRequeued != 6 {
		t.Fatalf("after retry: errors %d dropped %d requeued %d, want 2/6/6",
			s.SSDWriteErrors, s.ResultsDropped, s.ResultsRequeued)
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGetResultReadErrorQuarantinesRB: a dynamic RB whose read fails is
// retired whole — mappings dropped, extent quarantined, no repeat device
// faults from later probes of its entries.
func TestGetResultReadErrorQuarantinesRB(t *testing.T) {
	f, fd := newFlakyFixture(t, testConfig(PolicyCBLRU))
	putEntries(t, f, 1, 11) // RB with qids 1..6 lands on SSD
	if len(f.m.resultLoc) != 6 {
		t.Fatalf("setup: %d SSD mappings, want 6", len(f.m.resultLoc))
	}
	fd.failReads = true
	if _, src := f.m.GetResult(1); src != ResultMiss {
		t.Fatalf("read-error probe returned %v, want miss", src)
	}
	s := f.m.Stats()
	if s.SSDReadErrors != 1 || s.RBRetired != 1 {
		t.Fatalf("SSDReadErrors %d RBRetired %d, want 1/1", s.SSDReadErrors, s.RBRetired)
	}
	if s.ExtentsQuarantined != 1 || s.QuarantinedBytes != f.m.cfg.BlockBytes {
		t.Fatalf("quarantine accounting: %d extents / %d bytes", s.ExtentsQuarantined, s.QuarantinedBytes)
	}
	if len(f.m.resultLoc) != 0 {
		t.Fatalf("quarantined RB left %d mappings", len(f.m.resultLoc))
	}
	// Sibling entries now miss without touching the device again.
	if _, src := f.m.GetResult(2); src != ResultMiss {
		t.Fatal("sibling probe not a miss")
	}
	if got := f.m.Stats().SSDReadErrors; got != 1 {
		t.Fatalf("sibling probe touched the failing device (%d errors)", got)
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGetResultReadErrorLRUQuarantinesEntry: same contract under the LRU
// baseline, at single-entry granularity.
func TestGetResultReadErrorLRUQuarantinesEntry(t *testing.T) {
	f, fd := newFlakyFixture(t, testConfig(PolicyLRU))
	putEntries(t, f, 1, 8) // 3 entries written individually to SSD
	if len(f.m.resultLoc) != 3 {
		t.Fatalf("setup: %d SSD mappings, want 3", len(f.m.resultLoc))
	}
	fd.failReads = true
	if _, src := f.m.GetResult(1); src != ResultMiss {
		t.Fatal("read-error probe not a miss")
	}
	s := f.m.Stats()
	if s.SSDReadErrors != 1 || s.ExtentsQuarantined != 1 {
		t.Fatalf("errors %d quarantined %d, want 1/1", s.SSDReadErrors, s.ExtentsQuarantined)
	}
	if s.QuarantinedBytes != f.m.cfg.ResultEntryBytes {
		t.Fatalf("quarantined %d bytes, want one entry (%d)", s.QuarantinedBytes, f.m.cfg.ResultEntryBytes)
	}
	if _, ok := f.m.resultLoc[1]; ok {
		t.Fatal("failed entry still mapped")
	}
	if len(f.m.resultLoc) != 2 {
		t.Fatalf("siblings lost: %d mappings, want 2", len(f.m.resultLoc))
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerOpensRoutesAroundAndCools: consecutive failures open the
// breaker; while open, SSD-resident entries are served as degraded misses
// with their mappings retained; after the cooldown the tier recovers.
func TestBreakerOpensRoutesAroundAndCools(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.BreakerThreshold = 3
	f, fd := newFlakyFixture(t, cfg)
	putEntries(t, f, 1, 11) // healthy warmup: RB with qids 1..6 on SSD

	fd.failWrites = true
	putEntries(t, f, 12, 23) // three failed flushes → streak hits 3
	s := f.m.Stats()
	if s.SSDWriteErrors != 3 || s.BreakerTrips != 1 {
		t.Fatalf("write errors %d trips %d, want 3/1", s.SSDWriteErrors, s.BreakerTrips)
	}
	if !f.m.DegradedMode() {
		t.Fatal("breaker did not open")
	}

	// Open breaker: SSD-resident entry degrades to a miss, mapping kept.
	if _, src := f.m.GetResult(1); src != ResultMiss {
		t.Fatal("degraded probe not a miss")
	}
	if got := f.m.Stats().DegradedServes; got != 1 {
		t.Fatalf("DegradedServes = %d, want 1", got)
	}
	if _, ok := f.m.resultLoc[1]; !ok {
		t.Fatal("degraded probe dropped the mapping")
	}

	// Device recovers, cooldown elapses: the same entry hits SSD again.
	fd.failWrites = false
	f.clock.Advance(f.m.cfg.BreakerCooldown + time.Millisecond)
	if f.m.DegradedMode() {
		t.Fatal("breaker still open after cooldown")
	}
	data, src := f.m.GetResult(1)
	if src != ResultFromSSD {
		t.Fatalf("post-cooldown probe served from %v, want SSD", src)
	}
	if !bytes.Equal(data, entryOf(1, 0xAB, f.m.cfg.ResultEntryBytes)) {
		t.Fatal("post-cooldown read returned wrong bytes")
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushDropsWhileBreakerOpen: with the breaker open, flushes drop their
// batches with accounting instead of hammering the failing device.
func TestFlushDropsWhileBreakerOpen(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.BreakerThreshold = 1
	f, fd := newFlakyFixture(t, cfg)
	fd.failWrites = true
	putEntries(t, f, 1, 11) // first flush fails, trips, requeues 6
	s := f.m.Stats()
	if s.BreakerTrips != 1 || s.ResultsRequeued != 6 {
		t.Fatalf("trips %d requeued %d, want 1/6", s.BreakerTrips, s.ResultsRequeued)
	}
	if rem := f.m.FlushWriteBuffer(); rem != 0 {
		t.Fatalf("FlushWriteBuffer left %d entries", rem)
	}
	s = f.m.Stats()
	if s.ResultsDropped != 6 {
		t.Fatalf("ResultsDropped = %d, want 6", s.ResultsDropped)
	}
	// The drop must not have touched the device: still exactly one error.
	if s.SSDWriteErrors != 1 {
		t.Fatalf("SSDWriteErrors = %d, want 1 (drops bypass the device)", s.SSDWriteErrors)
	}
}

// TestLRUEvictionDropsWhileBreakerOpen: the baseline per-entry write path
// honors the breaker too.
func TestLRUEvictionDropsWhileBreakerOpen(t *testing.T) {
	cfg := testConfig(PolicyLRU)
	cfg.BreakerThreshold = 1
	f, fd := newFlakyFixture(t, cfg)
	fd.failWrites = true
	putEntries(t, f, 1, 6) // evicts qid 1 → write fails → trip + drop
	putEntries(t, f, 7, 7) // evicts qid 2 → dropped without device access
	s := f.m.Stats()
	if s.SSDWriteErrors != 1 || s.BreakerTrips != 1 {
		t.Fatalf("errors %d trips %d, want 1/1", s.SSDWriteErrors, s.BreakerTrips)
	}
	if s.ResultsDropped != 2 {
		t.Fatalf("ResultsDropped = %d, want 2", s.ResultsDropped)
	}
	if s.ExtentsQuarantined != 1 || s.QuarantinedBytes != f.m.cfg.ResultEntryBytes {
		t.Fatalf("quarantine accounting: %d extents / %d bytes", s.ExtentsQuarantined, s.QuarantinedBytes)
	}
}

// TestTrimErrorCounted: failed trims are accounted (they feed the breaker
// streak) without disturbing the expiry bookkeeping that issued them.
func TestTrimErrorCounted(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.ResultTTL = time.Millisecond
	f, fd := newFlakyFixture(t, cfg)
	putEntries(t, f, 1, 11) // RB with qids 1..6 on SSD
	fd.failTrims = true
	f.clock.Advance(2 * time.Millisecond)
	if _, src := f.m.GetResult(1); src != ResultMiss {
		t.Fatal("expired probe not a miss")
	}
	s := f.m.Stats()
	if s.SSDTrimErrors != 1 {
		t.Fatalf("SSDTrimErrors = %d, want 1", s.SSDTrimErrors)
	}
	if s.ResultsExpired == 0 || s.L2ResultEvictions != 1 {
		t.Fatalf("expiry accounting: expired %d L2 evictions %d", s.ResultsExpired, s.L2ResultEvictions)
	}
	if fd.trims != 1 {
		t.Fatalf("device saw %d trims, want 1", fd.trims)
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestListReadErrorFallsBackToHDD: an SSD list extent that fails a read is
// quarantined and the query completes from the HDD with correct bytes —
// before this PR the whole read errored out.
func TestListReadErrorFallsBackToHDD(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10
	f, fd := newFlakyFixture(t, cfg)
	termA := workload.TermID(20)
	nA := f.readSome(t, termA, 12<<10)
	for i := 0; i < 20; i++ { // force termA's eviction → flush to SSD
		f.readSome(t, workload.TermID(30+i), 12<<10)
	}
	if f.m.Stats().ListWritesToSSD == 0 {
		t.Fatal("setup: no list flushed to SSD")
	}
	if f.m.ssdListFor(termA) == nil {
		t.Skip("termA not resident on SSD under this configuration")
	}

	fd.failReads = true
	evictionsBefore := f.m.Stats().L2ListEvictions
	got := make([]byte, nA)
	if err := f.m.ReadListRange(termA, 0, got); err != nil {
		t.Fatalf("read with failing SSD did not fall back: %v", err)
	}
	if !bytes.Equal(got, f.wantList(t, termA, 0, nA)) {
		t.Fatal("fallback read returned wrong bytes")
	}
	s := f.m.Stats()
	if s.SSDReadErrors == 0 {
		t.Fatal("SSD read error not counted")
	}
	if s.L2ListEvictions == evictionsBefore || s.ExtentsQuarantined == 0 {
		t.Fatal("failing list extent not quarantined")
	}
	if f.m.ssdListFor(termA) != nil {
		t.Fatal("failing list still resident on SSD")
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestListFlushWriteErrorQuarantines: a failed list flush discards the list
// (still on HDD) and retires the extent.
func TestListFlushWriteErrorQuarantines(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10
	f, fd := newFlakyFixture(t, cfg)
	fd.failWrites = true
	for i := 0; i < 20; i++ {
		f.readSome(t, workload.TermID(30+i), 12<<10)
	}
	s := f.m.Stats()
	if s.SSDWriteErrors == 0 || s.ListsDiscarded == 0 {
		t.Fatalf("write errors %d discarded %d, want both > 0", s.SSDWriteErrors, s.ListsDiscarded)
	}
	if s.ExtentsQuarantined == 0 {
		t.Fatal("failed list extents not quarantined")
	}
	if s.ListWritesToSSD != 0 {
		t.Fatalf("%d list writes counted despite failing device", s.ListWritesToSSD)
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerDisabled: a negative threshold turns the breaker off — errors
// are still counted but never open the circuit.
func TestBreakerDisabled(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.BreakerThreshold = -1
	f, fd := newFlakyFixture(t, cfg)
	fd.failWrites = true
	putEntries(t, f, 1, 30)
	f.m.FlushWriteBuffer()
	s := f.m.Stats()
	if s.SSDWriteErrors < 2 {
		t.Fatalf("setup: only %d write errors", s.SSDWriteErrors)
	}
	if s.BreakerTrips != 0 || f.m.DegradedMode() {
		t.Fatal("disabled breaker tripped")
	}
}

// TestPinResultWriteErrorLeavesSlotReusable: a failed static pin returns
// false without consuming the slot; the same entry pins fine on retry.
func TestPinResultWriteErrorLeavesSlotReusable(t *testing.T) {
	f, fd := newFlakyFixture(t, testConfig(PolicyCBSLRU))
	entry := func(qid uint64) []byte { return entryOf(qid, 0xCD, f.m.cfg.ResultEntryBytes) }
	if !f.m.PinResult(1, entry(1)) {
		t.Fatal("first pin failed")
	}
	fd.failWrites = true
	if f.m.PinResult(2, entry(2)) {
		t.Fatal("pin succeeded on a failing device")
	}
	if got := f.m.Stats().SSDWriteErrors; got != 1 {
		t.Fatalf("SSDWriteErrors = %d, want 1", got)
	}
	fd.failWrites = false
	if !f.m.PinResult(2, entry(2)) {
		t.Fatal("retry pin failed: slot not reusable")
	}
	for _, qid := range []uint64{1, 2} {
		if _, src := f.m.GetResult(qid); src != ResultFromSSD {
			t.Fatalf("pinned qid %d not served from SSD", qid)
		}
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPinResultCursorAdvances: pinning to budget exhaustion moves the
// first-free cursor monotonically past full static RBs (O(N) total) and
// stops exactly at the static budget.
func TestPinResultCursorAdvances(t *testing.T) {
	f, _ := newFlakyFixture(t, testConfig(PolicyCBSLRU))
	perRB := f.m.entriesPerRB
	budgetRBs := int(f.m.StaticResultBudget() / f.m.cfg.BlockBytes)
	want := perRB * budgetRBs
	var pinned int
	for qid := uint64(1); ; qid++ {
		if !f.m.PinResult(qid, entryOf(qid, 0xEF, f.m.cfg.ResultEntryBytes)) {
			break
		}
		pinned++
		if pinned > want {
			t.Fatalf("pinned %d entries past the static budget (%d)", pinned, want)
		}
	}
	if pinned != want {
		t.Fatalf("pinned %d entries, want %d", pinned, want)
	}
	if f.m.staticRBScan != len(f.m.staticRBs) {
		t.Fatalf("cursor at %d, want %d (all RBs full)", f.m.staticRBScan, len(f.m.staticRBs))
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFreqCapBoundsTrackingMaps: the per-term and per-query frequency maps
// stay bounded under an unbounded stream of distinct keys.
func TestFreqCapBoundsTrackingMaps(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.FreqCap = 8
	f, _ := newFlakyFixture(t, cfg)
	for i := 0; i < 200; i++ {
		f.m.GetResult(uint64(1000 + i))
		f.readSome(t, workload.TermID(i%f.spec.VocabSize), 1<<10)
	}
	if len(f.m.queryFreq) > 8 {
		t.Fatalf("queryFreq grew to %d entries, cap 8", len(f.m.queryFreq))
	}
	if len(f.m.termFreq) > 8 {
		t.Fatalf("termFreq grew to %d entries, cap 8", len(f.m.termFreq))
	}
}

// TestBumpFreqDecayPreservesOrder: the decay sweep halves uniformly, so
// hot keys stay ranked above cold ones and the map never exceeds its cap.
func TestBumpFreqDecayPreservesOrder(t *testing.T) {
	m := map[int]int64{}
	for i := 0; i < 64; i++ {
		bumpFreq(m, 1, 16) // hot
	}
	for i := 0; i < 8; i++ {
		bumpFreq(m, 2, 16) // warm
	}
	for k := 3; k < 40; k++ {
		bumpFreq(m, k, 16) // cold spray forcing decay sweeps
		if len(m) > 16 {
			t.Fatalf("map grew to %d entries, cap 16", len(m))
		}
	}
	if m[1] <= m[2] {
		t.Fatalf("decay inverted hot/warm order: hot %d <= warm %d", m[1], m[2])
	}
	// Unlimited maps never decay.
	u := map[int]int64{}
	for k := 0; k < 100; k++ {
		bumpFreq(u, k, 0)
	}
	if len(u) != 100 {
		t.Fatalf("uncapped map pruned to %d entries", len(u))
	}
}

// eventSums accumulates an event stream for stats≡trace verification.
type eventSums struct {
	ioErrors, ioErrorBytes int64
	degraded               int64
	listReadBytes          map[Level]int64
	resultHits             map[Level]int64
	resultMisses           int64
	resultEvicts           map[Level]int64
	listEvicts             map[Level]int64
	resultFlushBytes       int64
	listFlushBytes         int64
	listFlushes            int64
}

func newEventSums() *eventSums {
	return &eventSums{
		listReadBytes: map[Level]int64{},
		resultHits:    map[Level]int64{},
		resultEvicts:  map[Level]int64{},
		listEvicts:    map[Level]int64{},
	}
}

func (s *eventSums) handle(e Event) {
	switch e.Kind {
	case EvIOError:
		s.ioErrors++
		s.ioErrorBytes += e.Bytes
	case EvDegraded:
		s.degraded++
	case EvListRead:
		s.listReadBytes[e.Level] += e.Bytes
	case EvResultHit:
		s.resultHits[e.Level]++
	case EvResultMiss:
		s.resultMisses++
	case EvResultEvict:
		s.resultEvicts[e.Level]++
	case EvListEvict:
		s.listEvicts[e.Level]++
	case EvResultFlush:
		s.resultFlushBytes += e.Bytes
	case EvListFlush:
		s.listFlushBytes += e.Bytes
		s.listFlushes++
	}
}

// check asserts every stats≡trace equation against the manager's counters.
func (s *eventSums) check(t *testing.T, st Stats) {
	t.Helper()
	eq := func(name string, got, want int64) {
		t.Helper()
		if got != want {
			t.Errorf("stats≡trace divergence: %s: events %d, stats %d", name, got, want)
		}
	}
	eq("io errors", s.ioErrors, st.SSDReadErrors+st.SSDWriteErrors+st.SSDTrimErrors)
	eq("degraded serves", s.degraded, st.DegradedServes)
	eq("list bytes mem", s.listReadBytes[LevelMem], st.ListBytesFromMem)
	eq("list bytes ssd", s.listReadBytes[LevelSSD], st.ListBytesFromSSD)
	eq("list bytes hdd", s.listReadBytes[LevelHDD], st.ListBytesFromHDD)
	eq("result hits mem", s.resultHits[LevelMem], st.ResultHitsMem)
	eq("result hits ssd", s.resultHits[LevelSSD], st.ResultHitsSSD)
	eq("result misses", s.resultMisses, st.ResultMisses)
	eq("result evicts mem", s.resultEvicts[LevelMem], st.L1ResultEvictions)
	eq("result evicts ssd", s.resultEvicts[LevelSSD], st.L2ResultEvictions+st.RBRetired)
	eq("list evicts mem", s.listEvicts[LevelMem], st.L1ListEvictions)
	eq("list evicts ssd", s.listEvicts[LevelSSD], st.L2ListEvictions)
	eq("result flush bytes", s.resultFlushBytes, st.ResultBytesToSSD)
	eq("list flush bytes", s.listFlushBytes, st.ListBytesToSSD)
	eq("list flushes", s.listFlushes, st.ListWritesToSSD)
}

// TestDivergenceUnderInjectedFaults is the extended divergence test of the
// stats≡trace contract (DESIGN §9): under probabilistic fault injection —
// transient errors on every op class, sticky bad extents, a pre-seeded dead
// range — summing event payloads still reproduces core.Stats exactly, the
// invariants hold throughout, and nothing panics.
func TestDivergenceUnderInjectedFaults(t *testing.T) {
	spec := storage.FaultSpec{
		Seed:       99,
		Read:       storage.OpFaults{ErrProb: 0.05},
		Write:      storage.OpFaults{ErrProb: 0.05},
		Trim:       storage.OpFaults{ErrProb: 0.05},
		StickyProb: 0.5,
		BadExtents: 1,
	}
	for _, policy := range allPolicies() {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := testConfig(policy)
			cfg.BreakerThreshold = 2 // make degraded windows likely
			f := newFaultFixture(t, cfg, func(inner storage.Device) storage.Device {
				return storage.NewFaultyDevice(&flakyDevice{inner: inner}, spec, nil)
			})
			sums := newEventSums()
			f.m.SetEventSink(sums.handle)

			if policy == PolicyCBSLRU {
				for qid := uint64(1); qid <= 10; qid++ {
					f.m.PinResult(qid, entryOf(qid, 0x11, cfg.ResultEntryBytes))
				}
				for term := workload.TermID(0); term < 5; term++ {
					f.m.PinList(term)
				}
			}

			rng := simclock.NewRNG(17)
			for i := 0; i < 4000; i++ {
				qid := rng.Uint64() % 300
				if _, src := f.m.GetResult(qid); src == ResultMiss {
					if err := f.m.PutResult(qid, entryOf(qid, byte(qid), cfg.ResultEntryBytes)); err != nil {
						t.Fatal(err)
					}
				}
				term := workload.TermID(rng.Uint64() % uint64(f.spec.VocabSize))
				n := int64(1<<10) + int64(rng.Uint64()%(16<<10))
				if total := f.ix.ListBytes(term); n > total {
					n = total
				}
				buf := make([]byte, n)
				if err := f.m.ReadListRange(term, 0, buf); err != nil {
					t.Fatalf("iter %d: list read failed despite HDD fallback: %v", i, err)
				}
				if i%500 == 499 {
					if err := f.m.CheckInvariants(); err != nil {
						t.Fatalf("iter %d: %v", i, err)
					}
				}
			}
			f.m.FlushWriteBuffer()

			st := f.m.Stats()
			if st.SSDReadErrors+st.SSDWriteErrors+st.SSDTrimErrors == 0 {
				t.Fatal("fault injection produced no device errors — test exercised nothing")
			}
			sums.check(t, st)
			if err := f.m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
