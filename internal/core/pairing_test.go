package core

import (
	"reflect"
	"testing"
)

// TestStatsEventTables is the runtime mirror of the statsevent analyzer's
// totality check: every Stats field appears in exactly one of
// statsEventPairs / statsUnpaired, neither table names a stale field, and
// every unpaired field carries a rationale.
func TestStatsEventTables(t *testing.T) {
	st := reflect.TypeOf(Stats{})
	fields := map[string]bool{}
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		fields[name] = true
		_, paired := statsEventPairs[name]
		reason, unpaired := statsUnpaired[name]
		switch {
		case paired && unpaired:
			t.Errorf("Stats.%s is in both statsEventPairs and statsUnpaired", name)
		case !paired && !unpaired:
			t.Errorf("Stats.%s is in neither statsEventPairs nor statsUnpaired", name)
		case unpaired && reason == "":
			t.Errorf("statsUnpaired[%s] has an empty rationale", name)
		}
	}
	for name := range statsEventPairs {
		if !fields[name] {
			t.Errorf("statsEventPairs names %s, which is not a Stats field", name)
		}
	}
	for name := range statsUnpaired {
		if !fields[name] {
			t.Errorf("statsUnpaired names %s, which is not a Stats field", name)
		}
	}
}

// TestStatsEventPairsReproduceTotals runs a traced workload-free sanity
// check on the pairing semantics for the counters whose events carry a
// 1:1 count contract (see the EventKind docs): summing events of the
// paired kind must reproduce the counter deltas for the error path, the
// query path and the probe path. The full per-policy divergence tests in
// faults_test.go exercise the same contract under injected faults; this
// test pins the table itself to the emit sites.
func TestStatsEventPairsReproduceTotals(t *testing.T) {
	m := newFixture(t, testConfig(PolicyLRU)).m
	counts := map[EventKind]int64{}
	m.SetEventSink(func(e Event) { counts[e.Kind]++ })

	m.BeginQuery(1)
	m.EndQuery(10)
	m.BeginQuery(2)
	m.EndQuery(20)

	st := m.Stats()
	if got, want := counts[EvQueryEnd], st.Queries; got != want {
		t.Errorf("EvQueryEnd count = %d, Stats.Queries = %d", got, want)
	}
	var sits int64
	for _, c := range st.Situations.Counts {
		sits += c
	}
	if got := counts[EvQueryEnd]; got != sits {
		t.Errorf("EvQueryEnd count = %d, situation tally total = %d", got, sits)
	}
}
