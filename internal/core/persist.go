package core

// Warm-restart persistence for the SSD cache mappings.
//
// The paper's cache manager keeps its SSD mappings (Figs 6–7) in memory; a
// restart would cold-start the L2 cache even though the cached bytes are
// still on flash. SaveMappings serializes the mapping tables — result
// locations, result blocks, list extents, static pins, term frequencies —
// into a metadata region placed right after the cache regions, and Restore
// rebuilds a Manager from them, so a restarted node resumes with a warm
// SSD cache. This mirrors what production flash caches (and the paper's
// "cache file" framing) do.
//
// Layout of the metadata region (little-endian):
//
//	magic "HSCM" | version u32 | policy u32
//	rbCount u32 | rb × { num u64, off i64, static u8, slots u16,
//	                     slots × { present u8, qid u64, state u8, loadedAt i64 } }
//	listCount u32 | list × { term i32, off i64, blockBytes i64,
//	                         validBytes i64, state u8, static u8, loadedAt i64 }
//	freqCount u32 | freq × { term i32, count i64 }
//
// RBs and list entries are serialized in LRU→MRU order so recency
// survives the restart.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"hybridstore/internal/cache"
	"hybridstore/internal/index"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

var mappingMagic = [4]byte{'H', 'S', 'C', 'M'}

const mappingVersion = 1

// metaOffset returns the device offset of the mapping metadata region.
func (m *Manager) metaOffset() int64 {
	return m.cfg.SSDResultBytes + m.cfg.SSDListBytes
}

// SaveMappings flushes complete result blocks, then serializes the SSD
// cache mappings into the metadata region after the cache regions. It
// fails when the manager has no SSD or the device lacks space.
func (m *Manager) SaveMappings() error {
	if m.ssd == nil {
		return fmt.Errorf("core: no SSD to save mappings to")
	}
	m.FlushWriteBuffer()

	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) } //nolint:errcheck
	buf.Write(mappingMagic[:])
	w(uint32(mappingVersion))
	w(uint32(m.cfg.Policy))

	// Result blocks: static first, then dynamic in LRU→MRU order.
	var rbs []*resultBlock
	rbs = append(rbs, m.staticRBs...)
	if m.rbLRU != nil {
		m.rbLRU.Ascend(func(e *cache.Entry) bool {
			rbs = append(rbs, e.Value.(*resultBlock))
			return true
		})
	}
	w(uint32(len(rbs)))
	for _, rb := range rbs {
		w(rb.num)
		w(rb.off)
		w(boolByte(rb.static))
		w(uint16(len(rb.slots)))
		for _, loc := range rb.slots {
			if loc == nil {
				w(uint8(0))
				continue
			}
			w(uint8(1))
			w(loc.qid)
			w(uint8(loc.state))
			w(int64(loc.loadedAt))
		}
	}

	// List entries: static pins first, then dynamic LRU→MRU.
	var lists []*ssdList
	for _, t := range sortedTermKeys(m.icStatic) {
		lists = append(lists, m.icStatic[t])
	}
	if m.icLRU != nil {
		m.icLRU.Ascend(func(e *cache.Entry) bool {
			lists = append(lists, e.Value.(*ssdList))
			return true
		})
	}
	w(uint32(len(lists)))
	for _, sl := range lists {
		w(int32(sl.term))
		w(sl.off)
		w(sl.blockBytes)
		w(sl.validBytes)
		w(uint8(sl.state))
		w(boolByte(sl.static))
		w(int64(sl.loadedAt))
	}

	// Term frequencies (EV continuity).
	w(uint32(len(m.termFreq)))
	for _, t := range sortedTermKeys2(m.termFreq) {
		w(int32(t))
		w(m.termFreq[t])
	}

	off := m.metaOffset()
	if off+8+int64(buf.Len()) > m.ssd.Size() {
		return fmt.Errorf("core: mappings need %d bytes at %d, device holds %d",
			buf.Len()+8, off, m.ssd.Size())
	}
	head := make([]byte, 8)
	binary.LittleEndian.PutUint64(head, uint64(buf.Len()))
	if err := m.ssdWrite(head, off); err != nil {
		return err
	}
	return m.ssdWrite(buf.Bytes(), off+8)
}

// Restore builds a Manager whose SSD cache state (mappings, recency order,
// term frequencies, static pins) is loaded from the metadata a previous
// SaveMappings left on the device. The configuration must match the one
// the mappings were saved under (same regions, block size and policy).
func Restore(clock *simclock.Clock, ix *index.Index, ssd storage.Device, cfg Config) (*Manager, error) {
	m, err := New(clock, ix, ssd, cfg)
	if err != nil {
		return nil, err
	}
	if ssd == nil {
		return nil, fmt.Errorf("core: Restore needs an SSD device")
	}
	off := m.metaOffset()
	head := make([]byte, 8)
	if err := m.ssdRead(head, off); err != nil {
		return nil, fmt.Errorf("core: reading mapping header: %w", err)
	}
	size := int64(binary.LittleEndian.Uint64(head))
	if size <= 0 || off+8+size > ssd.Size() {
		return nil, fmt.Errorf("core: implausible mapping size %d", size)
	}
	raw := make([]byte, size)
	if err := m.ssdRead(raw, off+8); err != nil {
		return nil, fmt.Errorf("core: reading mappings: %w", err)
	}
	if err := m.loadMappings(raw); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Manager) loadMappings(raw []byte) error {
	r := bytes.NewReader(raw)
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }

	var magic [4]byte
	if err := read(&magic); err != nil || magic != mappingMagic {
		return fmt.Errorf("core: bad mapping magic %q", magic[:])
	}
	var version, policy uint32
	if err := read(&version); err != nil || version != mappingVersion {
		return fmt.Errorf("core: unsupported mapping version %d", version)
	}
	if err := read(&policy); err != nil || Policy(policy) != m.cfg.Policy {
		return fmt.Errorf("core: mappings saved under policy %v, manager runs %v",
			Policy(policy), m.cfg.Policy)
	}

	var rbCount uint32
	if err := read(&rbCount); err != nil {
		return err
	}
	for i := uint32(0); i < rbCount; i++ {
		var num uint64
		var rbOff int64
		var staticB uint8
		var slots uint16
		if err := read(&num); err != nil {
			return err
		}
		if err := read(&rbOff); err != nil {
			return err
		}
		if err := read(&staticB); err != nil {
			return err
		}
		if err := read(&slots); err != nil {
			return err
		}
		size := m.cfg.BlockBytes
		if !m.repl.BlockAlignedL2() {
			size = m.cfg.ResultEntryBytes
		}
		if !m.rcAlloc.Reserve(rbOff, size) {
			return fmt.Errorf("core: RB %d extent [%d,+%d) unreservable", num, rbOff, size)
		}
		rb := &resultBlock{num: num, off: rbOff, static: staticB != 0,
			slots: make([]*ssdResult, slots)}
		for s := uint16(0); s < slots; s++ {
			var present uint8
			if err := read(&present); err != nil {
				return err
			}
			if present == 0 {
				continue
			}
			var qid uint64
			var state uint8
			var loadedAt int64
			if err := read(&qid); err != nil {
				return err
			}
			if err := read(&state); err != nil {
				return err
			}
			if err := read(&loadedAt); err != nil {
				return err
			}
			loc := &ssdResult{qid: qid, rb: rb, slot: int(s),
				state: entryState(state), loadedAt: durationFromI64(loadedAt)}
			rb.slots[s] = loc
			m.resultLoc[qid] = loc
		}
		if num >= m.nextRB {
			m.nextRB = num + 1
		}
		if rb.static {
			m.staticRBs = append(m.staticRBs, rb)
		} else if m.rbLRU != nil {
			m.rbLRU.Put(rb.num, size, rb)
		}
	}

	var listCount uint32
	if err := read(&listCount); err != nil {
		return err
	}
	for i := uint32(0); i < listCount; i++ {
		var term int32
		var lOff, blockBytes, validBytes int64
		var state, staticB uint8
		var loadedAt int64
		if err := read(&term); err != nil {
			return err
		}
		if err := read(&lOff); err != nil {
			return err
		}
		if err := read(&blockBytes); err != nil {
			return err
		}
		if err := read(&validBytes); err != nil {
			return err
		}
		if err := read(&state); err != nil {
			return err
		}
		if err := read(&staticB); err != nil {
			return err
		}
		if err := read(&loadedAt); err != nil {
			return err
		}
		if m.icAlloc == nil || !m.icAlloc.Reserve(lOff, blockBytes) {
			return fmt.Errorf("core: list extent [%d,+%d) unreservable", lOff, blockBytes)
		}
		sl := &ssdList{term: workload.TermID(term), off: lOff, blockBytes: blockBytes,
			validBytes: validBytes, state: entryState(state), static: staticB != 0,
			loadedAt: durationFromI64(loadedAt)}
		if sl.static {
			m.icStatic[sl.term] = sl
		} else {
			m.icLRU.Put(uint64(sl.term), blockBytes, sl)
		}
	}

	var freqCount uint32
	if err := read(&freqCount); err != nil {
		return err
	}
	for i := uint32(0); i < freqCount; i++ {
		var term int32
		var count int64
		if err := read(&term); err != nil {
			return err
		}
		if err := read(&count); err != nil {
			return err
		}
		m.termFreq[workload.TermID(term)] = count
	}
	return nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func durationFromI64(v int64) time.Duration { return time.Duration(v) }

// sortedTermKeys returns the map's keys in ascending order so
// serialization is deterministic.
func sortedTermKeys(m map[workload.TermID]*ssdList) []workload.TermID {
	keys := make([]workload.TermID, 0, len(m))
	for t := range m {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedTermKeys2(m map[workload.TermID]int64) []workload.TermID {
	keys := make([]workload.TermID, 0, len(m))
	for t := range m {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
