package core

import (
	"fmt"
)

// ResultSource says where a result-cache hit was served from.
type ResultSource int

// Result lookup outcomes.
const (
	ResultMiss ResultSource = iota
	ResultFromMemory
	ResultFromSSD
)

// GetResult looks a query's cached result entry up: L1, then the write
// buffer (still memory), then the L2 result cache on SSD. A hit is copied
// to the caller and — per the hybrid scheme — an SSD hit is promoted to L1
// while the SSD copy goes replaceable (Fig 9).
func (m *Manager) GetResult(qid uint64) ([]byte, ResultSource) {
	bumpFreq(m.queryFreq, qid, m.cfg.FreqCap)

	if e, ok := m.rc.Get(qid); ok {
		mr := e.Value.(*memResult)
		if m.resultExpired(mr.loadedAt) {
			m.rc.RemoveEntry(e)
			m.stats.ResultsExpired++
		} else {
			m.memCost(len(mr.data))
			m.noteResultSource(srcMem)
			m.stats.ResultHitsMem++
			m.emit(Event{Kind: EvResultHit, Level: LevelMem, Bytes: int64(len(mr.data))})
			return mr.data, ResultFromMemory
		}
	}
	for _, b := range m.writeBuf {
		if b.qid == qid && !m.resultExpired(b.loadedAt) {
			m.memCost(len(b.data))
			m.noteResultSource(srcMem)
			m.stats.ResultHitsMem++
			m.emit(Event{Kind: EvResultHit, Level: LevelMem, Bytes: int64(len(b.data))})
			return b.data, ResultFromMemory
		}
	}
	if loc, ok := m.resultLoc[qid]; ok {
		if !loc.rb.static && m.resultExpired(loc.loadedAt) {
			m.expireSSDResult(loc)
			m.stats.ResultMisses++
			m.emit(Event{Kind: EvResultMiss})
			return nil, ResultMiss
		}
		if !m.ssdHealthy() {
			// Breaker open: route around the SSD tier. The mapping stays —
			// the entry may still be readable once the breaker closes.
			m.noteDegraded()
			m.stats.ResultMisses++
			m.emit(Event{Kind: EvResultMiss})
			return nil, ResultMiss
		}
		data := make([]byte, m.cfg.ResultEntryBytes)
		off := loc.rb.off + int64(loc.slot)*m.cfg.ResultEntryBytes
		if err := m.ssdRead(data, off); err == nil {
			m.noteResultSource(srcSSD)
			m.stats.ResultHitsSSD++
			m.emit(Event{Kind: EvResultHit, Level: LevelSSD, Bytes: int64(len(data))})
			// Promotion is the policy's call (the bidirectional filter
			// serves straight from SSD until repeat demand); the Fig 9
			// replaceable flip only applies when the data actually moved up.
			promote := m.repl.PromoteResultToL1(qid)
			if !loc.rb.static && m.repl.FlipReplaceableOnHit() && promote {
				loc.state = stateReplaceable
			}
			if m.rbLRU != nil && !loc.rb.static {
				if e, ok := m.rbLRU.Peek(loc.rb.num); ok {
					m.rbLRU.Touch(e)
				}
			}
			if promote {
				m.putResultL1(qid, data)
			}
			return data, ResultFromSSD
		}
		// Read failure (error already accounted by ssdRead). A dynamic
		// extent that failed a read is retired and quarantined — on real
		// SSDs a failing range tends to keep failing, so re-reading or
		// re-allocating it would convert one fault into many. Static RBs
		// are left in place (the breaker guards repeated failures; the
		// static partition is rebuilt offline).
		if !loc.rb.static {
			if !m.repl.BlockAlignedL2() {
				m.quarantineLRUResult(loc)
			} else {
				m.quarantineRB(loc.rb)
			}
		}
	}
	m.stats.ResultMisses++
	m.emit(Event{Kind: EvResultMiss})
	return nil, ResultMiss
}

// expireSSDResult removes a TTL-expired dynamic SSD result entry with full
// accounting: the eviction is counted and emitted (stats≡trace, DESIGN §9)
// and the slot's bytes are trimmed. Under the LRU baseline the whole
// pseudo-RB is released; under the cost-based policies only the slot is
// invalidated (the RB lives on for IREN-based replacement).
func (m *Manager) expireSSDResult(loc *ssdResult) {
	m.stats.ResultsExpired++
	if !m.repl.BlockAlignedL2() {
		m.freeLRUResult(loc)
		return
	}
	loc.rb.slots[loc.slot] = nil
	delete(m.resultLoc, loc.qid)
	m.ssdTrim(loc.rb.off+int64(loc.slot)*m.cfg.ResultEntryBytes, m.cfg.ResultEntryBytes)
	m.stats.L2ResultEvictions++
	m.emit(Event{Kind: EvResultEvict, Level: LevelSSD})
}

// quarantineRB retires a dynamic result block whose device range failed:
// mappings are dropped and the extent is quarantined (never re-allocated)
// instead of freed. No trim — the range is being abandoned, not recycled.
func (m *Manager) quarantineRB(rb *resultBlock) {
	for _, loc := range rb.slots {
		if loc != nil {
			delete(m.resultLoc, loc.qid)
		}
	}
	if e, ok := m.rbLRU.Peek(rb.num); ok {
		m.rbLRU.RemoveEntry(e)
	}
	m.quarantine(m.rcAlloc, rb.off, m.cfg.BlockBytes)
	m.stats.RBRetired++
	m.emit(Event{Kind: EvResultEvict, Level: LevelSSD})
}

// quarantineLRUResult is the baseline counterpart of quarantineRB for a
// single-entry pseudo-RB.
func (m *Manager) quarantineLRUResult(loc *ssdResult) {
	delete(m.resultLoc, loc.qid)
	if e, ok := m.rbLRU.Peek(loc.rb.num); ok {
		m.rbLRU.RemoveEntry(e)
	}
	m.quarantine(m.rcAlloc, loc.rb.off, m.cfg.ResultEntryBytes)
	m.stats.L2ResultEvictions++
	m.emit(Event{Kind: EvResultEvict, Level: LevelSSD})
}

// PutResult caches a freshly computed result entry in L1. The entry must
// be exactly ResultEntryBytes long (the paper's fixed-length entries);
// shorter payloads are padded by the caller via PadResult.
//
// Result entries are immutable per query ID: the paper's evaluation is the
// static scenario (§IV-B), where recomputing a query always yields the same
// entry. Re-putting an ID refreshes recency, not content.
func (m *Manager) PutResult(qid uint64, data []byte) error {
	if int64(len(data)) != m.cfg.ResultEntryBytes {
		return fmt.Errorf("core: result entry %d bytes, want %d", len(data), m.cfg.ResultEntryBytes)
	}
	m.putResultL1(qid, data)
	return nil
}

// PadResult pads an encoded result to the fixed entry size.
func (m *Manager) PadResult(data []byte) []byte {
	if int64(len(data)) >= m.cfg.ResultEntryBytes {
		return data[:m.cfg.ResultEntryBytes]
	}
	out := make([]byte, m.cfg.ResultEntryBytes)
	copy(out, data)
	return out
}

// putResultL1 inserts into the L1 result cache, evicting LRU entries into
// the SSD path as needed (§VI-C1: L1 RC victims are chosen by LRU under
// every policy; the policies differ below L1).
func (m *Manager) putResultL1(qid uint64, data []byte) {
	if e, ok := m.rc.Peek(qid); ok {
		if !m.resultExpired(e.Value.(*memResult).loadedAt) {
			m.rc.Touch(e)
			return
		}
		m.rc.RemoveEntry(e) // refresh expired content below
		m.stats.ResultsExpired++
	}
	size := int64(len(data))
	for !m.rc.Fits(size) {
		victim := m.rc.LRUEntry()
		if victim == nil {
			return
		}
		m.rc.RemoveEntry(victim)
		m.stats.L1ResultEvictions++
		m.emit(Event{Kind: EvResultEvict, Level: LevelMem})
		mr := victim.Value.(*memResult)
		m.evictResultToSSD(victim.Key, mr)
	}
	m.rc.Put(qid, size, &memResult{data: data, loadedAt: m.clock.Now()})
	m.memCost(int(size))
}

// evictResultToSSD routes an L1 result eviction to the L2 result cache.
// Expired entries are dropped instead of flushed: stale data is not worth
// SSD writes.
func (m *Manager) evictResultToSSD(qid uint64, mr *memResult) {
	if m.resultExpired(mr.loadedAt) {
		m.stats.ResultsExpired++
		return
	}
	if m.rbLRU == nil {
		m.stats.ResultsDropped++
		return
	}
	if !m.repl.BlockAlignedL2() {
		m.evictResultLRU(qid, mr.data)
		return
	}

	// Write-buffer check (Fig 10): if the SSD already holds a valid copy
	// (left replaceable by an earlier read-back), revalidate it and skip
	// the write entirely.
	if loc, ok := m.resultLoc[qid]; ok {
		loc.state = stateNormal
		m.stats.ResultWritesElided++
		return
	}
	if !m.adm.AdmitResult(qid) {
		m.stats.ResultsRejectedByAdmission++
		return
	}
	m.writeBuf = append(m.writeBuf, bufferedResult{qid: qid, data: mr.data, loadedAt: mr.loadedAt})
	m.memCost(len(mr.data))
	if len(m.writeBuf) >= m.entriesPerRB {
		m.flushResultBlock()
	}
}

// flushResultBlock assembles entriesPerRB buffered entries into one result
// block and writes it to the SSD as a single block-aligned sequential
// write (Fig 10b), choosing the victim RB by IREN within the replace-first
// region when no free block exists (Fig 11).
func (m *Manager) flushResultBlock() {
	n := m.entriesPerRB
	if len(m.writeBuf) < n {
		return
	}
	batch := m.writeBuf[:n]
	m.writeBuf = append([]bufferedResult(nil), m.writeBuf[n:]...)

	if !m.ssdHealthy() {
		// Breaker open: flushing would hammer the failing device. Drop the
		// batch with accounting instead of letting the buffer grow unbounded.
		m.stats.ResultsDropped += int64(n)
		return
	}

	off, ok := m.rcAlloc.AllocAligned(m.cfg.BlockBytes, m.cfg.BlockBytes)
	if !ok {
		rb := m.chooseVictimRB()
		if rb == nil {
			m.stats.ResultsDropped += int64(n)
			return
		}
		m.retireRB(rb)
		off, ok = m.rcAlloc.AllocAligned(m.cfg.BlockBytes, m.cfg.BlockBytes)
		if !ok {
			m.stats.ResultsDropped += int64(n)
			return
		}
	}

	rb := &resultBlock{num: m.nextRB, off: off, slots: make([]*ssdResult, n)}
	m.nextRB++
	buf := make([]byte, m.cfg.BlockBytes)
	for i, b := range batch {
		copy(buf[int64(i)*m.cfg.ResultEntryBytes:], b.data)
		loc := &ssdResult{qid: b.qid, rb: rb, slot: i, loadedAt: b.loadedAt}
		rb.slots[i] = loc
		m.resultLoc[b.qid] = loc
	}
	if err := m.ssdWrite(buf, off); err != nil {
		// The write failed (error accounted by ssdWrite): quarantine the
		// extent so the bad range is not immediately re-allocated, and
		// re-queue each entry once — a second failure drops it, counted.
		m.quarantine(m.rcAlloc, off, m.cfg.BlockBytes)
		for _, b := range batch {
			delete(m.resultLoc, b.qid)
			if b.requeued {
				m.stats.ResultsDropped++
				continue
			}
			b.requeued = true
			m.writeBuf = append(m.writeBuf, b)
			m.stats.ResultsRequeued++
		}
		return
	}
	m.stats.ResultBytesToSSD += m.cfg.BlockBytes
	m.stats.RBFlushes++
	m.emit(Event{Kind: EvResultFlush, Bytes: m.cfg.BlockBytes})
	m.rbLRU.Put(rb.num, m.cfg.BlockBytes, rb)
}

// chooseVictimRB returns the RB with the largest IREN inside the
// replace-first region (Fig 11), or the plain LRU block if the region is
// empty. Returns nil when no dynamic RB exists.
func (m *Manager) chooseVictimRB() *resultBlock {
	window := m.rbLRU.TailWindow(m.cfg.WindowW)
	if len(window) == 0 {
		return nil
	}
	best := window[0].Value.(*resultBlock)
	bestIREN := best.iren()
	for _, e := range window[1:] {
		rb := e.Value.(*resultBlock)
		if ir := rb.iren(); ir > bestIREN {
			best, bestIREN = rb, ir
		}
	}
	return best
}

// retireRB invalidates an RB's remaining entries and frees its extent.
func (m *Manager) retireRB(rb *resultBlock) {
	for _, loc := range rb.slots {
		if loc != nil {
			delete(m.resultLoc, loc.qid)
		}
	}
	if e, ok := m.rbLRU.Peek(rb.num); ok {
		m.rbLRU.RemoveEntry(e)
	}
	m.rcAlloc.Free(rb.off, m.cfg.BlockBytes)
	m.ssdTrim(rb.off, m.cfg.BlockBytes)
	m.stats.RBRetired++
	m.emit(Event{Kind: EvResultEvict, Level: LevelSSD})
}

// evictResultLRU is the baseline path: the 20 KB entry is written
// immediately at whatever unaligned offset the allocator yields — the
// small-random-write storm of §VI-C1 — evicting strictly by recency.
func (m *Manager) evictResultLRU(qid uint64, data []byte) {
	size := int64(len(data))
	if !m.ssdHealthy() {
		m.stats.ResultsDropped++
		return
	}
	if old, ok := m.resultLoc[qid]; ok {
		m.freeLRUResult(old)
	}
	var off int64
	for {
		var ok bool
		if off, ok = m.rcAlloc.Alloc(size); ok {
			break
		}
		e := m.rbLRU.LRUEntry()
		if e == nil {
			m.stats.ResultsDropped++
			return
		}
		m.freeLRUResult(e.Value.(*resultBlock).slots[0])
	}
	// Baseline entries are modelled as single-slot pseudo-RBs so the same
	// bookkeeping serves both layouts.
	rb := &resultBlock{num: m.nextRB, off: off, slots: make([]*ssdResult, 1)}
	m.nextRB++
	loc := &ssdResult{qid: qid, rb: rb, slot: 0, loadedAt: m.clock.Now()}
	rb.slots[0] = loc
	if err := m.ssdWrite(data, off); err != nil {
		// Accounted loss: the entry is gone and the failed range is retired.
		m.quarantine(m.rcAlloc, off, size)
		m.stats.ResultsDropped++
		return
	}
	m.stats.ResultBytesToSSD += size
	m.emit(Event{Kind: EvResultFlush, Bytes: size})
	m.resultLoc[qid] = loc
	m.rbLRU.Put(rb.num, size, rb)
}

// freeLRUResult releases a baseline pseudo-RB.
func (m *Manager) freeLRUResult(loc *ssdResult) {
	delete(m.resultLoc, loc.qid)
	if e, ok := m.rbLRU.Peek(loc.rb.num); ok {
		m.rbLRU.RemoveEntry(e)
	}
	m.rcAlloc.Free(loc.rb.off, m.cfg.ResultEntryBytes)
	m.stats.L2ResultEvictions++
	m.emit(Event{Kind: EvResultEvict, Level: LevelSSD})
}

// PinResult stores an encoded result entry in the static partition of the
// L2 result cache (CBSLRU). Entries are packed into static RBs that are
// never replaced. Returns false when the static budget is exhausted.
func (m *Manager) PinResult(qid uint64, data []byte) bool {
	if !m.repl.UsesStaticPartition() || m.rbLRU == nil {
		return false
	}
	if _, ok := m.resultLoc[qid]; ok {
		return true
	}
	if !m.ssdHealthy() {
		return false
	}
	data = m.PadResult(data)

	// Find (or open) a static RB with a free slot. Static slots are never
	// vacated, so the first-free cursor only moves forward: pinning N
	// entries costs O(N), not O(N²) rescans of already-full RBs.
	var rb *resultBlock
	for m.staticRBScan < len(m.staticRBs) {
		if cand := m.staticRBs[m.staticRBScan]; cand.freeSlot() >= 0 {
			rb = cand
			break
		}
		m.staticRBScan++
	}
	if rb == nil {
		if int64(len(m.staticRBs)+1)*m.cfg.BlockBytes > m.StaticResultBudget() {
			return false
		}
		off, ok := m.rcAlloc.AllocAligned(m.cfg.BlockBytes, m.cfg.BlockBytes)
		if !ok {
			return false
		}
		rb = &resultBlock{num: m.nextRB, off: off, slots: make([]*ssdResult, m.entriesPerRB), static: true}
		m.nextRB++
		m.staticRBs = append(m.staticRBs, rb)
	}
	i := rb.freeSlot()
	if i < 0 {
		return false
	}
	off := rb.off + int64(i)*m.cfg.ResultEntryBytes
	if err := m.ssdWrite(data, off); err != nil {
		// Error accounted by ssdWrite; the slot stays open for a retry and
		// the breaker stops a persistently failing device from being pinned
		// against repeatedly.
		return false
	}
	m.stats.ResultBytesToSSD += int64(len(data))
	m.emit(Event{Kind: EvResultFlush, Bytes: int64(len(data))})
	loc := &ssdResult{qid: qid, rb: rb, slot: i}
	rb.slots[i] = loc
	m.resultLoc[qid] = loc
	return true
}

// StaticResultBudget returns the byte budget of the static result
// partition.
func (m *Manager) StaticResultBudget() int64 {
	if !m.repl.UsesStaticPartition() || m.rbLRU == nil {
		return 0
	}
	return int64(float64(m.cfg.SSDResultBytes) * m.cfg.StaticFraction)
}

// WriteBufferLen returns the number of result entries awaiting RB assembly.
func (m *Manager) WriteBufferLen() int { return len(m.writeBuf) }

// FlushWriteBuffer forces assembly of any full RBs and reports how many
// entries remain buffered (used at experiment end). The loop is progress-
// checked: a flush that re-queues its whole batch after a write failure
// leaves the buffer length unchanged, and retrying immediately would spin.
func (m *Manager) FlushWriteBuffer() int {
	for len(m.writeBuf) >= m.entriesPerRB {
		before := len(m.writeBuf)
		m.flushResultBlock()
		if len(m.writeBuf) >= before {
			break
		}
	}
	return len(m.writeBuf)
}
