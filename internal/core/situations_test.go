package core

import (
	"testing"
	"time"

	"hybridstore/internal/workload"
)

// situationFixture engineers specific cache states so each Table I
// situation can be produced on demand.
type situationFixture struct {
	*fixture
}

func newSituationFixture(t *testing.T) *situationFixture {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10
	cfg.PrefetchQuantum = -1 // exact prefixes make byte math predictable
	return &situationFixture{newFixture(t, cfg)}
}

// classify runs one query touching the given (term, bytes) reads and
// returns its classified situation.
func (f *situationFixture) classify(t *testing.T, qid uint64, reads map[workload.TermID]int64) Situation {
	t.Helper()
	before := f.m.Stats().Situations
	f.m.BeginQuery(qid)
	for term, n := range reads {
		buf := make([]byte, n)
		if err := f.m.ReadListRange(term, 0, buf); err != nil {
			t.Fatal(err)
		}
	}
	f.m.EndQuery(time.Millisecond)
	after := f.m.Stats().Situations
	for s := S1ResultMem; s < numSituations; s++ {
		if after.Counts[s] == before.Counts[s]+1 {
			return s
		}
	}
	t.Fatal("no situation classified")
	return 0
}

// evictToSSD forces term's L1 entry to the SSD by flushing it directly.
func (f *situationFixture) evictToSSD(t *testing.T, term workload.TermID) {
	t.Helper()
	e, ok := f.m.ic.Peek(uint64(term))
	if !ok {
		t.Fatalf("term %d not in L1", term)
	}
	ml := e.Value.(*memList)
	f.m.ic.RemoveEntry(e)
	f.m.flushListToSSD(ml)
	if f.m.ssdListFor(term) == nil {
		t.Fatalf("term %d did not reach SSD", term)
	}
}

func TestSituationS3AllMemory(t *testing.T) {
	f := newSituationFixture(t)
	f.readSome(t, 10, 8<<10) // prime L1
	got := f.classify(t, 1, map[workload.TermID]int64{10: 8 << 10})
	if got != S3ListsMem {
		t.Fatalf("got %v, want S3", got)
	}
}

func TestSituationS5AllSSD(t *testing.T) {
	f := newSituationFixture(t)
	f.readSome(t, 10, 8<<10)
	f.evictToSSD(t, 10)
	got := f.classify(t, 2, map[workload.TermID]int64{10: 8 << 10})
	if got != S5ListsSSD {
		t.Fatalf("got %v, want S5", got)
	}
}

func TestSituationS9AllHDD(t *testing.T) {
	f := newSituationFixture(t)
	got := f.classify(t, 3, map[workload.TermID]int64{10: 8 << 10})
	if got != S9ListsHDD {
		t.Fatalf("got %v, want S9", got)
	}
}

func TestSituationS6MemPlusHDD(t *testing.T) {
	f := newSituationFixture(t)
	f.readSome(t, 10, 8<<10) // 8 KiB prefix in memory
	// Request more than the prefix: memory + HDD tail.
	got := f.classify(t, 4, map[workload.TermID]int64{10: 12 << 10})
	if got != S6ListsMemHDD {
		t.Fatalf("got %v, want S6", got)
	}
}

func TestSituationS8SSDPlusHDD(t *testing.T) {
	f := newSituationFixture(t)
	f.readSome(t, 10, 8<<10)
	f.evictToSSD(t, 10)
	// SSD holds 8 KiB; ask for 12: SSD + HDD with no memory copy.
	got := f.classify(t, 5, map[workload.TermID]int64{10: 12 << 10})
	if got != S8ListsSSDHDD {
		t.Fatalf("got %v, want S8", got)
	}
}

func TestSituationS4MemPlusSSD(t *testing.T) {
	f := newSituationFixture(t)
	// Term A in memory; term B on SSD only.
	f.readSome(t, 10, 8<<10)
	f.readSome(t, 11, 8<<10)
	f.evictToSSD(t, 11)
	got := f.classify(t, 6, map[workload.TermID]int64{10: 8 << 10, 11: 8 << 10})
	if got != S4ListsMemSSD {
		t.Fatalf("got %v, want S4", got)
	}
}

func TestSituationS7AllThree(t *testing.T) {
	f := newSituationFixture(t)
	f.readSome(t, 10, 8<<10) // memory
	f.readSome(t, 11, 8<<10)
	f.evictToSSD(t, 11) // SSD
	// Term 12 untouched: HDD.
	got := f.classify(t, 7, map[workload.TermID]int64{
		10: 8 << 10, 11: 8 << 10, 12: 8 << 10,
	})
	if got != S7ListsMemSSDHDD {
		t.Fatalf("got %v, want S7", got)
	}
}

func TestSituationS1AndS2ResultHits(t *testing.T) {
	f := newSituationFixture(t)
	size := f.m.Config().ResultEntryBytes
	f.m.PutResult(100, entryOf(100, 1, size))

	f.m.BeginQuery(100)
	if _, src := f.m.GetResult(100); src != ResultFromMemory {
		t.Fatal("expected memory hit")
	}
	f.m.EndQuery(time.Microsecond)
	if f.m.Stats().Situations.Counts[S1ResultMem] != 1 {
		t.Fatal("S1 not recorded")
	}

	// Push the entry to SSD, drop it from L1, and hit it there.
	for q := uint64(101); q <= 130; q++ {
		f.m.PutResult(q, entryOf(q, byte(q), size))
	}
	f.m.FlushWriteBuffer()
	if _, ok := f.m.resultLoc[100]; !ok {
		t.Skip("entry 100 did not land on SSD")
	}
	if e, ok := f.m.rc.Peek(100); ok {
		f.m.rc.RemoveEntry(e) // ensure the L1 copy is gone
	}
	f.m.BeginQuery(100)
	if _, src := f.m.GetResult(100); src != ResultFromSSD {
		t.Skip("entry 100 not servable from SSD")
	}
	f.m.EndQuery(time.Microsecond)
	if f.m.Stats().Situations.Counts[S2ResultSSD] != 1 {
		t.Fatal("S2 not recorded")
	}
}

func TestSituationProbabilitiesSumToOne(t *testing.T) {
	f := newSituationFixture(t)
	for q := uint64(1); q <= 50; q++ {
		term := workload.TermID(10 + q%20)
		n := f.ix.ListBytes(term)
		if n > 8<<10 {
			n = 8 << 10
		}
		f.classify(t, q, map[workload.TermID]int64{term: n})
	}
	tally := f.m.Stats().Situations
	var sum float64
	for s := S1ResultMem; s < numSituations; s++ {
		sum += tally.Probability(s)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}
