package core

import (
	"fmt"
	"time"

	"hybridstore/internal/cache"
	"hybridstore/internal/index"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// entryState tracks the paper's SSD entry life cycle (Figs 8–9): a normal
// entry is valid and read-only; a replaceable entry is still readable but
// may be overwritten first (its content has been copied back to memory).
type entryState uint8

const (
	stateNormal entryState = iota
	stateReplaceable
)

// memList is an L1 inverted-list cache entry: the contiguous prefix of a
// term's list that query processing has touched (Fig 6b).
type memList struct {
	term     workload.TermID
	prefix   []byte
	loadedAt time.Duration // simulated insertion time, for ListTTL
}

// ssdList is an L2 inverted-list cache entry: a block-aligned prefix of the
// list stored in the SSD cache file (Fig 7c).
type ssdList struct {
	term       workload.TermID
	off        int64 // device offset, block-aligned
	blockBytes int64 // extent length, whole blocks (SC × SB)
	validBytes int64 // prefix bytes actually present (≤ blockBytes)
	state      entryState
	static     bool
	loadedAt   time.Duration // age of the content, for ListTTL
}

// ssdResult locates one cached result entry inside a result block (Fig 7a).
type ssdResult struct {
	qid      uint64
	rb       *resultBlock
	slot     int
	state    entryState
	loadedAt time.Duration // age of the content, for ResultTTL
}

// resultBlock is one 128 KB "RB": the placement and replacement unit of the
// L2 result cache (Fig 7b). Slots hold fixed-size result entries; nil slots
// are invalid (overwritten or never filled).
type resultBlock struct {
	num    uint64
	off    int64 // device offset, block-aligned
	slots  []*ssdResult
	static bool
}

// iren returns the invalid-result-entry number of Fig 11: empty slots plus
// replaceable entries.
func (rb *resultBlock) iren() int {
	n := 0
	for _, s := range rb.slots {
		if s == nil || s.state == stateReplaceable {
			n++
		}
	}
	return n
}

// validCount returns the number of normal (valid, non-replaceable) entries.
func (rb *resultBlock) validCount() int { return len(rb.slots) - rb.iren() }

// freeSlot returns the index of the first empty slot, or -1 when full.
func (rb *resultBlock) freeSlot() int {
	for i, s := range rb.slots {
		if s == nil {
			return i
		}
	}
	return -1
}

// bufferedResult is one evicted result entry waiting in the write buffer
// for RB assembly (Fig 10b).
type bufferedResult struct {
	qid      uint64
	data     []byte
	loadedAt time.Duration
	// requeued marks an entry whose RB flush already failed once; a second
	// failure drops it (bounded retries keep the buffer from pinning
	// unflushable data forever).
	requeued bool
}

// memResult is an L1 result-cache payload.
type memResult struct {
	data     []byte
	loadedAt time.Duration
}

// Manager is the paper's cache manager (Fig 2): selection management,
// query management and replacement management over a memory L1, an SSD L2
// and the backing index store.
//
// Manager is not safe for concurrent use; the simulation driver serializes
// queries, as the paper's single-node evaluation does.
type Manager struct {
	cfg   Config
	clock *simclock.Clock
	ix    *index.Index
	ssd   storage.Device // nil = one-level cache (memory only)

	// repl and adm are the pluggable policy pair built from the registry
	// for cfg.Policy (see policy.go).
	repl ReplacementPolicy
	adm  AdmissionPolicy

	nsPerByteMem float64

	// L1.
	rc *cache.List // queryID -> []byte (encoded result entry)
	ic *cache.List // termID -> *memList

	// L2 result cache.
	entriesPerRB int
	rbLRU        *cache.List // RB num -> *resultBlock (dynamic RBs only)
	resultLoc    map[uint64]*ssdResult
	rcAlloc      *storage.Allocator
	writeBuf     []bufferedResult
	nextRB       uint64
	staticRBs    []*resultBlock

	// L2 inverted-list cache.
	icLRU    *cache.List // termID -> *ssdList (dynamic entries only)
	icAlloc  *storage.Allocator
	icStatic map[workload.TermID]*ssdList

	// Frequency and utilization tracking for Formulas 1–2.
	termFreq   map[workload.TermID]int64
	queryFreq  map[uint64]int64
	puMeasured map[workload.TermID]float64

	// Per-query situation tracking (Table I).
	curQuery       uint64
	curQueryActive bool
	curResultSrc   sourceSet
	curTermSrc     map[workload.TermID]sourceSet

	// events, when set, receives fine-grained manager events (see events.go).
	events func(Event)

	// ssdBusyUntil is the simulated time at which the SSD finishes its
	// queued background work. Cache flushes are asynchronous (the paper's
	// write buffer decouples them from queries), but they occupy the
	// device: foreground reads arriving before the horizon must wait,
	// which is how background write pressure degrades read latency (§VII-D).
	ssdBusyUntil time.Duration

	// SSD circuit breaker: consecutive device failures trip it, after
	// which the manager serves around the L2 tier until the cooldown
	// (simulated time) passes.
	ssdFailStreak    int
	breakerOpenUntil time.Duration

	// staticRBScan is the first-free cursor into staticRBs for PinResult:
	// static slots are never vacated, so RBs fill monotonically and the
	// cursor only moves forward.
	staticRBScan int

	stats Stats
}

// New builds a cache manager over the backing index ix, with ssd as the L2
// device (nil for a one-level, memory-only cache).
//
// The backing index's device must share clock. The SSD cache device must
// be bound to its OWN private clock: the manager charges foreground SSD
// read time onto the shared clock itself (including queueing behind
// background flushes) and treats SSD writes as background work that only
// pushes the device's busy horizon.
func New(clock *simclock.Clock, ix *index.Index, ssd storage.Device, cfg Config) (*Manager, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ssd == nil && (cfg.SSDResultBytes > 0 || cfg.SSDListBytes > 0) {
		return nil, fmt.Errorf("core: SSD regions configured but no SSD device")
	}
	if ssd != nil && cfg.SSDResultBytes+cfg.SSDListBytes > ssd.Size() {
		return nil, fmt.Errorf("core: SSD regions %d+%d exceed device size %d",
			cfg.SSDResultBytes, cfg.SSDListBytes, ssd.Size())
	}
	m := &Manager{
		cfg:          cfg,
		clock:        clock,
		ix:           ix,
		ssd:          ssd,
		nsPerByteMem: float64(time.Second) / float64(cfg.MemBytesPerSecond),
		rc:           cache.NewList(cfg.MemResultBytes),
		ic:           cache.NewList(cfg.MemListBytes),
		entriesPerRB: int(cfg.BlockBytes / cfg.ResultEntryBytes),
		resultLoc:    make(map[uint64]*ssdResult),
		icStatic:     make(map[workload.TermID]*ssdList),
		termFreq:     make(map[workload.TermID]int64),
		queryFreq:    make(map[uint64]int64),
		puMeasured:   make(map[workload.TermID]float64),
		curTermSrc:   make(map[workload.TermID]sourceSet),
	}
	if m.entriesPerRB < 1 {
		return nil, fmt.Errorf("core: result entry %d larger than block %d",
			cfg.ResultEntryBytes, cfg.BlockBytes)
	}
	if cfg.SSDResultBytes > 0 {
		m.rbLRU = cache.NewList(cfg.SSDResultBytes)
		m.rcAlloc = storage.NewAllocator(cfg.SSDResultBytes)
	}
	if cfg.SSDListBytes > 0 {
		m.icLRU = cache.NewList(cfg.SSDListBytes)
		m.icAlloc = storage.NewAllocator(cfg.SSDListBytes)
	}
	info, ok := lookupPolicy(cfg.Policy)
	if !ok {
		// Unreachable after Validate; kept as a guard for future registry edits.
		return nil, fmt.Errorf("core: policy %d not registered", cfg.Policy)
	}
	m.repl, m.adm = info.New(m)
	return m, nil
}

// Policy returns the manager's replacement policy.
func (m *Manager) Policy() Policy { return m.cfg.Policy }

// UsesStaticPartition reports whether the active policy reserves static
// SSD partitions populated by query-log analysis (CBSLRU). Callers use it
// to decide whether a WarmupStatic pass is meaningful.
func (m *Manager) UsesStaticPartition() bool { return m.repl.UsesStaticPartition() }

// Config returns the effective configuration.
func (m *Manager) Config() Config { return m.cfg }

// memCost charges L1 access time for an n-byte transfer.
func (m *Manager) memCost(n int) {
	m.clock.AdvanceAttr(m.cfg.MemAccessLatency+time.Duration(float64(n)*m.nsPerByteMem),
		simclock.CompCacheBookkeeping)
}

// pu returns the utilization rate for term t. Measured samples (the online
// form of the paper's query-log analysis) take precedence; the configured
// model acts as the prior for terms never yet executed; 1 (cache the whole
// used prefix) is the fallback.
func (m *Manager) pu(t workload.TermID) float64 {
	if v, ok := m.puMeasured[t]; ok {
		return v
	}
	if m.cfg.PU != nil {
		return m.cfg.PU(t)
	}
	return 1
}

// RecordUtilization feeds a measured per-term utilization sample (from
// engine.ExecStats) into the running PU estimate. The paper obtains PU "by
// analyzing the query log"; feeding execution stats is the online variant.
func (m *Manager) RecordUtilization(t workload.TermID, utilization float64) {
	if utilization <= 0 {
		return
	}
	if utilization > 1 {
		utilization = 1
	}
	if old, ok := m.puMeasured[t]; ok {
		m.puMeasured[t] = 0.8*old + 0.2*utilization
	} else {
		m.puMeasured[t] = utilization
	}
}

// scBlocks implements Formula 1: the number of whole SSD blocks to cache
// for a list whose used size in memory is si bytes.
func (m *Manager) scBlocks(si int64, pu float64) int64 {
	if si <= 0 {
		return 0
	}
	sc := (int64(float64(si)*pu) + m.cfg.BlockBytes - 1) / m.cfg.BlockBytes
	if sc < 1 {
		sc = 1
	}
	return sc
}

// ev implements Formula 2: the efficiency value of a list with the given
// access frequency and cached size in blocks.
func ev(freq, scBlocks int64) float64 {
	if scBlocks <= 0 {
		return 0
	}
	return float64(freq) / float64(scBlocks)
}

// ssdRead performs a foreground SSD read: the caller waits for any queued
// background work, then for the read itself. The wait plus service time is
// charged on the shared clock.
func (m *Manager) ssdRead(p []byte, off int64) error {
	lat, err := m.ssd.ReadAt(p, off)
	if err != nil {
		m.noteSSDError(storage.OpRead, int64(len(p)))
		return err
	}
	m.ssdFailStreak = 0
	// Waiting for queued background program/erase work is an erase stall;
	// the read's own service time is flash read cost. Splitting the two
	// advances keeps the attribution honest while landing at the same
	// completion instant as a single AdvanceTo.
	m.clock.AdvanceToAttr(m.ssdBusyUntil, simclock.CompSSDEraseStall)
	finish := m.clock.AdvanceAttr(lat, simclock.CompSSDRead)
	m.ssdBusyUntil = finish
	return nil
}

// ssdWrite performs a background SSD write: it costs no foreground time
// but extends the device's busy horizon by its service time (including any
// garbage collection it triggered).
func (m *Manager) ssdWrite(p []byte, off int64) error {
	lat, err := m.ssd.WriteAt(p, off)
	if err != nil {
		m.noteSSDError(storage.OpWrite, int64(len(p)))
		return err
	}
	m.ssdFailStreak = 0
	m.pushBusy(lat)
	return nil
}

// ssdTrim issues a background trim when the device supports it.
func (m *Manager) ssdTrim(off, n int64) {
	t, ok := m.ssd.(storage.Trimmer)
	if !ok {
		return
	}
	lat, err := t.Trim(off, n)
	if err != nil {
		m.noteSSDError(storage.OpTrim, n)
		return
	}
	m.ssdFailStreak = 0
	m.pushBusy(lat)
}

// noteSSDError accounts one failed SSD operation: per-kind counter, an
// EvIOError event (so trace sinks see every device failure), and the
// circuit-breaker streak. BreakerThreshold consecutive failures open the
// breaker for BreakerCooldown simulated time.
func (m *Manager) noteSSDError(kind storage.OpKind, n int64) {
	switch kind {
	case storage.OpRead:
		m.stats.SSDReadErrors++
	case storage.OpWrite:
		m.stats.SSDWriteErrors++
	default:
		m.stats.SSDTrimErrors++
	}
	m.emit(Event{Kind: EvIOError, Level: LevelSSD, Bytes: n})
	if m.cfg.BreakerThreshold <= 0 {
		return
	}
	m.ssdFailStreak++
	if m.ssdFailStreak >= m.cfg.BreakerThreshold {
		m.ssdFailStreak = 0
		m.breakerOpenUntil = m.clock.Now() + m.cfg.BreakerCooldown
		m.stats.BreakerTrips++
	}
}

// ssdHealthy reports whether the L2 tier should be used right now: there is
// a device and the circuit breaker is closed.
func (m *Manager) ssdHealthy() bool {
	return m.ssd != nil && m.clock.Now() >= m.breakerOpenUntil
}

// DegradedMode reports whether the circuit breaker is currently open
// (reads and flushes are routed around the SSD tier).
func (m *Manager) DegradedMode() bool {
	return m.ssd != nil && m.clock.Now() < m.breakerOpenUntil
}

// noteDegraded accounts one request served around the open breaker.
func (m *Manager) noteDegraded() {
	m.stats.DegradedServes++
	m.emit(Event{Kind: EvDegraded, Level: LevelSSD})
}

// quarantine retires an allocator extent whose device range failed and
// accounts the lost capacity.
func (m *Manager) quarantine(a *storage.Allocator, off, n int64) {
	a.Quarantine(off, n)
	m.stats.ExtentsQuarantined++
	m.stats.QuarantinedBytes += n
}

func (m *Manager) pushBusy(lat time.Duration) {
	start := m.clock.Now()
	if m.ssdBusyUntil > start {
		start = m.ssdBusyUntil
	}
	m.ssdBusyUntil = start + lat
}

// resultExpired reports whether a result entry loaded at the given
// simulated time has outlived Config.ResultTTL (dynamic scenario, §IV-B).
func (m *Manager) resultExpired(loadedAt time.Duration) bool {
	return m.cfg.ResultTTL > 0 && m.clock.Now()-loadedAt > m.cfg.ResultTTL
}

// listExpired is the inverted-list counterpart of resultExpired.
func (m *Manager) listExpired(loadedAt time.Duration) bool {
	return m.cfg.ListTTL > 0 && m.clock.Now()-loadedAt > m.cfg.ListTTL
}

// NumDocs implements engine.ListSource.
func (m *Manager) NumDocs() int64 { return m.ix.NumDocs() }

// ListBytes implements engine.ListSource.
func (m *Manager) ListBytes(t workload.TermID) int64 { return m.ix.ListBytes(t) }

// TermDF implements engine.ListSource.
func (m *Manager) TermDF(t workload.TermID) int64 { return m.ix.TermDF(t) }

// Codec implements engine.ListSource.
func (m *Manager) Codec() index.CodecID { return m.ix.Codec() }

// ListBlocks implements engine.ListSource. Block directories are in-memory
// metadata: reading them costs no device time and goes straight to the
// index.
func (m *Manager) ListBlocks(t workload.TermID) []index.BlockRef { return m.ix.ListBlocks(t) }
