package core

import (
	"bytes"
	"testing"
	"time"

	"hybridstore/internal/workload"
)

// fillSSDResultCache pushes enough distinct results through L1 that the
// SSD result region fills completely, returning the set of stored IDs.
func fillSSDResultCache(t *testing.T, f *fixture, from, to uint64) {
	t.Helper()
	size := f.m.Config().ResultEntryBytes
	for q := from; q <= to; q++ {
		if err := f.m.PutResult(q, entryOf(q, byte(q%250+1), size)); err != nil {
			t.Fatal(err)
		}
	}
	f.m.FlushWriteBuffer()
}

func TestVictimRBPrefersHighIREN(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	// SSD RC = 1 MiB = 8 RBs of 6 entries. Fill it completely: 5 in L1 +
	// 48 on SSD + buffer remainder needs ~60 entries.
	fillSSDResultCache(t, f, 1, 60)
	// Read back a few entries from ONE RB to raise its IREN (replaceable).
	var markedRB *resultBlock
	marked := 0
	for q := uint64(1); q <= 60 && marked < 3; q++ {
		loc, ok := f.m.resultLoc[q]
		if !ok {
			continue
		}
		if markedRB == nil {
			markedRB = loc.rb
		}
		if loc.rb != markedRB {
			continue
		}
		if _, src := f.m.GetResult(q); src == ResultFromSSD {
			marked++
		}
	}
	if marked < 2 {
		t.Skipf("could not mark enough entries replaceable (marked=%d)", marked)
	}
	// The marked RB must now be the preferred victim within the window if
	// it is there; force replacements and verify it eventually gets
	// retired while fully-valid MRU blocks survive.
	retiredBefore := f.m.Stats().RBRetired
	fillSSDResultCache(t, f, 100, 130)
	if f.m.Stats().RBRetired == retiredBefore {
		t.Fatal("no RB retired under pressure")
	}
	if loc, ok := f.m.resultLoc[1]; ok && loc.rb == markedRB {
		// Entry 1's block survived only if it wasn't the marked block.
		found := false
		for _, slot := range markedRB.slots {
			if slot != nil && slot.state == stateReplaceable {
				found = true
			}
		}
		if found {
			t.Log("marked RB still resident; IREN choice is window-scoped (acceptable)")
		}
	}
}

func TestIRENCounting(t *testing.T) {
	rb := &resultBlock{slots: make([]*ssdResult, 6)}
	if rb.iren() != 6 {
		t.Fatalf("empty RB iren = %d, want 6", rb.iren())
	}
	for i := 0; i < 6; i++ {
		rb.slots[i] = &ssdResult{slot: i}
	}
	if rb.iren() != 0 || rb.validCount() != 6 {
		t.Fatalf("full RB iren=%d valid=%d", rb.iren(), rb.validCount())
	}
	rb.slots[0].state = stateReplaceable
	rb.slots[3] = nil
	if rb.iren() != 2 || rb.validCount() != 4 {
		t.Fatalf("iren=%d valid=%d, want 2/4", rb.iren(), rb.validCount())
	}
}

func TestSSDListSameSizeOverwrite(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10
	cfg.SSDListBytes = 4 * cfg.BlockBytes // room for only 4 one-block entries
	f := newFixture(t, cfg)
	// Stream enough single-block lists through that the region overflows
	// and the same-size in-place overwrite path triggers.
	for i := 0; i < 40; i++ {
		f.readSome(t, workload.TermID(30+i), 12<<10)
	}
	s := f.m.Stats()
	if s.ListWritesToSSD == 0 {
		t.Fatal("no list writes")
	}
	if s.ListOverwritesInPlace == 0 {
		t.Fatal("same-size in-place overwrite never used despite full region")
	}
	// Integrity spot check after heavy replacement churn.
	n := f.readSome(t, 35, 12<<10)
	got := make([]byte, n)
	f.m.ReadListRange(35, 0, got)
	if !bytes.Equal(got, f.wantList(t, 35, 0, n)) {
		t.Fatal("list corrupted after in-place overwrites")
	}
}

func TestLRUBaselineListEvictionLoop(t *testing.T) {
	cfg := testConfig(PolicyLRU)
	cfg.MemListBytes = 64 << 10
	cfg.SSDListBytes = 128 << 10 // tiny region: constant eviction
	f := newFixture(t, cfg)
	for i := 0; i < 80; i++ {
		f.readSome(t, workload.TermID(30+i), 12<<10)
	}
	s := f.m.Stats()
	if s.L2ListEvictions == 0 {
		t.Fatal("baseline never evicted from the SSD list region")
	}
	if s.ListWritesToSSD == 0 {
		t.Fatal("baseline never wrote lists")
	}
}

func TestEndQueryWithoutBeginIsNoop(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	f.m.EndQuery(time.Second)
	if f.m.Stats().Queries != 0 {
		t.Fatal("EndQuery without BeginQuery counted a query")
	}
}

func TestStaticResultNotMarkedReplaceable(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBSLRU))
	size := f.m.Config().ResultEntryBytes
	if !f.m.PinResult(7, entryOf(7, 9, size)) {
		t.Fatal("pin failed")
	}
	f.m.GetResult(7)
	loc := f.m.resultLoc[7]
	if loc.state == stateReplaceable {
		t.Fatal("static result flipped replaceable on read")
	}
	if !loc.rb.static {
		t.Fatal("pinned result not in a static RB")
	}
}

func TestPrefetchRoundsPrefix(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.PrefetchQuantum = 32 << 10
	f := newFixture(t, cfg)
	term := workload.TermID(2) // large list
	f.readSome(t, term, 10<<10)
	e, ok := f.m.ic.Peek(uint64(term))
	if !ok {
		t.Fatal("list not cached")
	}
	if got := int64(len(e.Value.(*memList).prefix)); got != 32<<10 {
		t.Fatalf("prefix = %d, want 32 KiB (rounded up)", got)
	}
	if f.m.Stats().ListBytesPrefetched == 0 {
		t.Fatal("prefetch not counted")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.PrefetchQuantum = -1
	f := newFixture(t, cfg)
	term := workload.TermID(2)
	f.readSome(t, term, 10<<10)
	e, ok := f.m.ic.Peek(uint64(term))
	if !ok {
		t.Fatal("list not cached")
	}
	if got := int64(len(e.Value.(*memList).prefix)); got != 10<<10 {
		t.Fatalf("prefix = %d, want exactly 10 KiB with prefetch off", got)
	}
	if f.m.Stats().ListBytesPrefetched != 0 {
		t.Fatal("prefetch counted while disabled")
	}
}

func TestOversizedListNotCached(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10 // cap = 32 KiB per entry
	f := newFixture(t, cfg)
	term := workload.TermID(0) // 1.6 MB list
	f.readSome(t, term, 48<<10)
	if _, ok := f.m.ic.Peek(uint64(term)); ok {
		t.Fatal("oversized read cached despite cap")
	}
	if f.m.Stats().ListsTooLargeForL1 == 0 {
		t.Fatal("too-large counter not bumped")
	}
}

func TestTermFrequencyPerQueryNotPerChunk(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	f.m.BeginQuery(1)
	buf := make([]byte, 4<<10)
	f.m.ReadListRange(5, 0, buf)
	f.m.ReadListRange(5, 4<<10, buf) // second chunk, same query
	f.m.EndQuery(time.Millisecond)
	if got := f.m.TermFrequency(5); got != 1 {
		t.Fatalf("freq = %d after one query with two chunks, want 1", got)
	}
	f.m.BeginQuery(2)
	f.m.ReadListRange(5, 0, buf)
	f.m.EndQuery(time.Millisecond)
	if got := f.m.TermFrequency(5); got != 2 {
		t.Fatalf("freq = %d after two queries, want 2", got)
	}
}

func TestQueryFrequencyTracked(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	f.m.GetResult(42)
	f.m.GetResult(42)
	if got := f.m.QueryFrequency(42); got != 2 {
		t.Fatalf("query freq = %d", got)
	}
}

func TestLRUWholeListCachingReadsThrough(t *testing.T) {
	// Under the baseline, a partial read triggers a whole-list fetch; the
	// cached copy must be byte-identical to the index.
	f := newFixture(t, testConfig(PolicyLRU))
	term := workload.TermID(40)
	total := f.ix.ListBytes(term)
	f.readSome(t, term, 4<<10) // partial read; baseline caches everything
	e, ok := f.m.ic.Peek(uint64(term))
	if !ok {
		t.Skip("list exceeded the baseline cap; pick a smaller term")
	}
	got := e.Value.(*memList).prefix
	if int64(len(got)) != total {
		t.Fatalf("baseline cached %d bytes, want whole list %d", len(got), total)
	}
	if !bytes.Equal(got, f.wantList(t, term, 0, total)) {
		t.Fatal("whole-list fetch corrupted data")
	}
}

func TestSSDBusyHorizonDelaysForegroundReads(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	size := f.m.Config().ResultEntryBytes
	// Generate a flush burst (background writes)...
	for q := uint64(1); q <= 11; q++ {
		f.m.PutResult(q, entryOf(q, byte(q), size))
	}
	if f.m.Stats().RBFlushes == 0 {
		t.Skip("no flush burst")
	}
	// ...then a foreground SSD read immediately after must wait for the
	// backlog: elapsed >> raw device time for one entry.
	before := f.clock.Now()
	_, src := f.m.GetResult(1)
	if src != ResultFromSSD {
		t.Skipf("entry 1 not on SSD (src=%v)", src)
	}
	elapsed := f.clock.Now() - before
	if elapsed <= 0 {
		t.Fatal("foreground SSD read cost nothing")
	}
}
