package core

import (
	"testing"
	"testing/quick"
	"time"

	"hybridstore/internal/workload"
)

func TestInvariantsHoldOnFreshManager(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsHoldUnderChurn(t *testing.T) {
	for _, policy := range allPolicies() {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := testConfig(policy)
			cfg.MemListBytes = 64 << 10
			cfg.SSDListBytes = 1 << 20 // small region: heavy replacement
			f := newFixture(t, cfg)
			size := f.m.Config().ResultEntryBytes
			rng := newDetRNG(7)
			for i := 0; i < 600; i++ {
				switch i % 3 {
				case 0:
					q := uint64(rng.next()%64 + 1)
					f.m.PutResult(q, entryOf(q, byte(q), size))
				case 1:
					f.m.GetResult(uint64(rng.next()%64 + 1))
				case 2:
					term := workload.TermID(rng.next() % 200)
					n := f.ix.ListBytes(term)
					if n > 12<<10 {
						n = 12 << 10
					}
					buf := make([]byte, n)
					f.m.ReadListRange(term, 0, buf)
				}
				if i%100 == 99 {
					if err := f.m.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
				}
			}
			if err := f.m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInvariantsHoldAfterRestore(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10
	f := newFixture(t, cfg)
	populate(t, f)
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatalf("pre-save: %v", err)
	}
	if err := f.m.SaveMappings(); err != nil {
		t.Fatal(err)
	}
	m2 := f.restore(t, cfg)
	if err := m2.CheckInvariants(); err != nil {
		t.Fatalf("post-restore: %v", err)
	}
}

func TestInvariantsHoldWithTTLChurn(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10
	cfg.ResultTTL = 50 * time.Millisecond
	cfg.ListTTL = 50 * time.Millisecond
	f := newFixture(t, cfg)
	size := f.m.Config().ResultEntryBytes
	for i := 0; i < 300; i++ {
		q := uint64(i%40 + 1)
		f.m.PutResult(q, entryOf(q, byte(q), size))
		f.m.GetResult(uint64(i%60 + 1))
		if i%10 == 0 {
			f.clock.Advance(20 * time.Millisecond)
		}
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsProperty(t *testing.T) {
	// Property: no operation sequence can break the bookkeeping.
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 96 << 10
	cfg.SSDListBytes = 1 << 20
	f := newFixture(t, cfg)
	size := f.m.Config().ResultEntryBytes
	check := func(ops []uint16) bool {
		for _, raw := range ops {
			switch raw % 4 {
			case 0:
				q := uint64(raw%97 + 1)
				f.m.PutResult(q, entryOf(q, byte(raw), size))
			case 1:
				f.m.GetResult(uint64(raw%97 + 1))
			case 2:
				term := workload.TermID(raw % 200)
				n := f.ix.ListBytes(term)
				if lim := int64(raw%16+1) << 10; n > lim {
					n = lim
				}
				buf := make([]byte, n)
				f.m.ReadListRange(term, 0, buf)
			case 3:
				f.m.FlushWriteBuffer()
			}
		}
		return f.m.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// detRNG is a tiny deterministic generator for test churn.
type detRNG struct{ state uint64 }

func newDetRNG(seed uint64) *detRNG { return &detRNG{state: seed*2862933555777941757 + 3037000493} }

func (r *detRNG) next() int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int(r.state >> 33)
}
