package core

// The cache-policy zoo: post-paper policies implemented on the same
// ReplacementPolicy/AdmissionPolicy hooks as the paper's three.
//
//   - TinyLFU: cost-based replacement plus a frequency "doorkeeper" on L2
//     admission — one-hit wonders never reach the flash (Einziger &
//     Friedman's TinyLFU, seeded from the manager's existing decaying
//     termFreq/queryFreq sketches instead of a separate sketch).
//   - ARC: adaptive replacement cache at L1 (T1/T2 segments plus ghost
//     lists B1/B2 steering a byte target), keeping the paper's cost-based
//     L2 machinery below.
//   - 2Q: the A1in/A1out/Am scheme at L1, cost-based L2 below.
//   - BiDi: a bidirectional cache filter between the levels — promotion
//     from SSD to memory and demotion from memory to SSD both gated on
//     repeat hits, so singletons neither pollute L1 nor burn program
//     cycles on L2 (after the multilevel bidirectional filter of Eytan &
//     Friedman; see PAPERS.md).
//
// All zoo policies keep the Manager's contracts: deterministic victim
// choice (linked-list order plus point map lookups only — no map
// iteration), exact accounting under injected faults, and the stats≡trace
// tables of events.go.

import (
	"hybridstore/internal/cache"
	"hybridstore/internal/workload"
)

// ghostCap bounds each ghost list. Ghosts are recency metadata, not data;
// a small bound keeps memory stable under unbounded distinct terms while
// retaining enough history to steer adaptation.
const ghostCap = 256

// ghostList is a bounded FIFO of recently evicted term IDs with O(1)
// membership. Eviction order is insertion order (oldest forgotten first).
type ghostList struct {
	order []workload.TermID
	set   map[workload.TermID]struct{}
}

func newGhostList() *ghostList {
	return &ghostList{set: make(map[workload.TermID]struct{})}
}

func (g *ghostList) has(t workload.TermID) bool {
	_, ok := g.set[t]
	return ok
}

// push records t as most recently evicted, dropping the oldest entry when
// full. A re-pushed member is moved to the back.
func (g *ghostList) push(t workload.TermID) {
	if g.has(t) {
		g.remove(t)
	}
	for len(g.order) >= ghostCap {
		old := g.order[0]
		g.order = g.order[1:]
		delete(g.set, old)
	}
	g.order = append(g.order, t)
	g.set[t] = struct{}{}
}

// remove forgets t (after a ghost hit promoted it).
func (g *ghostList) remove(t workload.TermID) {
	if !g.has(t) {
		return
	}
	delete(g.set, t)
	for i, v := range g.order {
		if v == t {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

// L1 segment tags for the segmented policies.
const (
	segProbation uint8 = 1 // ARC T1 / 2Q A1in: seen once since insertion
	segProtected uint8 = 2 // ARC T2 / 2Q Am: re-referenced
)

// ---------------------------------------------------------------------------
// ARC

// arcReplacement runs ARC over the L1 list cache: resident entries are
// tagged T1 (seen once) or T2 (re-referenced); ghosts B1/B2 remember
// recent evictions from each segment, and a hit in either ghost moves the
// byte target p toward the segment that would have kept the entry. The L2
// side is the paper's cost-based machinery unchanged (cbReplacement).
type arcReplacement struct {
	cbReplacement
	seg    map[workload.TermID]uint8
	b1, b2 *ghostList
	// p is the adaptive byte target for T1 (classic ARC's p, in bytes
	// since entries are variable-length). Starts at 0: favor T2 until B1
	// hits argue for more recency room.
	p int64
}

func newARCReplacement(m *Manager) *arcReplacement {
	return &arcReplacement{
		cbReplacement: cbReplacement{m: m},
		seg:           make(map[workload.TermID]uint8),
		b1:            newGhostList(),
		b2:            newGhostList(),
	}
}

// step is the adaptation increment: 1/16 of L1 list capacity per ghost
// hit. Classic ARC adapts by one page; byte-valued caches need a coarser
// quantum to move the target in useful time.
func (r *arcReplacement) step() int64 {
	s := r.m.ic.Capacity() / 16
	if s < 1 {
		s = 1
	}
	return s
}

func (r *arcReplacement) NoteL1ListInsert(t workload.TermID) {
	switch {
	case r.b1.has(t):
		// B1 hit: recency was right — grow T1's target.
		r.p += r.step()
		if max := r.m.ic.Capacity(); r.p > max {
			r.p = max
		}
		r.b1.remove(t)
		r.seg[t] = segProtected
	case r.b2.has(t):
		// B2 hit: frequency was right — shrink T1's target.
		r.p -= r.step()
		if r.p < 0 {
			r.p = 0
		}
		r.b2.remove(t)
		r.seg[t] = segProtected
	default:
		r.seg[t] = segProbation
	}
}

func (r *arcReplacement) NoteL1ListHit(t workload.TermID) {
	r.seg[t] = segProtected
}

func (r *arcReplacement) NoteL1ListEvict(t workload.TermID) {
	if r.seg[t] == segProtected {
		r.b2.push(t)
	} else {
		r.b1.push(t)
	}
	delete(r.seg, t)
}

// ChooseL1ListVictim evicts from T1 when it exceeds its byte target p,
// else from T2 — each segment strictly by recency (LRU-most first),
// falling back to the other segment when the preferred one is empty.
func (r *arcReplacement) ChooseL1ListVictim(exclude *cache.Entry) *cache.Entry {
	var t1Bytes int64
	r.m.ic.Ascend(func(e *cache.Entry) bool {
		if r.segOf(e) == segProbation {
			t1Bytes += e.Size
		}
		return true
	})
	want := segProtected
	if t1Bytes > r.p {
		want = segProbation
	}
	var fallback, victim *cache.Entry
	r.m.ic.Ascend(func(e *cache.Entry) bool {
		if e == exclude {
			return true
		}
		if fallback == nil {
			fallback = e
		}
		if r.segOf(e) == want {
			victim = e
			return false
		}
		return true
	})
	if victim != nil {
		return victim
	}
	return fallback
}

// segOf returns the entry's segment tag, defaulting untagged entries to
// probation (they have demonstrably not been re-referenced).
func (r *arcReplacement) segOf(e *cache.Entry) uint8 {
	ml := e.Value.(*memList)
	if s, ok := r.seg[ml.term]; ok {
		return s
	}
	return segProbation
}

// ---------------------------------------------------------------------------
// 2Q

// twoQReplacement runs simplified 2Q over the L1 list cache: new entries
// enter the probationary A1in queue; entries evicted from A1in are
// remembered in the A1out ghost, and a re-insert that hits A1out goes
// straight to the protected Am queue. A1in is budgeted at 1/4 of L1 (the
// classic Kin); when over budget the victim comes from A1in, otherwise
// from Am. Cost-based L2 below, unchanged.
type twoQReplacement struct {
	cbReplacement
	seg   map[workload.TermID]uint8
	a1out *ghostList
}

func new2QReplacement(m *Manager) *twoQReplacement {
	return &twoQReplacement{
		cbReplacement: cbReplacement{m: m},
		seg:           make(map[workload.TermID]uint8),
		a1out:         newGhostList(),
	}
}

func (r *twoQReplacement) NoteL1ListInsert(t workload.TermID) {
	if r.a1out.has(t) {
		r.a1out.remove(t)
		r.seg[t] = segProtected
		return
	}
	r.seg[t] = segProbation
}

// NoteL1ListHit is deliberately a no-op: in 2Q a hit inside A1in does not
// promote (that is the point — promotion requires surviving A1out), and
// Am membership is already protected.
func (r *twoQReplacement) NoteL1ListHit(workload.TermID) {}

func (r *twoQReplacement) NoteL1ListEvict(t workload.TermID) {
	if r.seg[t] != segProtected {
		r.a1out.push(t)
	}
	delete(r.seg, t)
}

// ChooseL1ListVictim evicts the LRU-most A1in entry while A1in exceeds its
// Kin budget, else the LRU-most Am entry, with cross-segment fallback.
func (r *twoQReplacement) ChooseL1ListVictim(exclude *cache.Entry) *cache.Entry {
	var a1inBytes int64
	r.m.ic.Ascend(func(e *cache.Entry) bool {
		if r.segOf(e) == segProbation {
			a1inBytes += e.Size
		}
		return true
	})
	want := segProtected
	if a1inBytes > r.m.ic.Capacity()/4 {
		want = segProbation
	}
	var fallback, victim *cache.Entry
	r.m.ic.Ascend(func(e *cache.Entry) bool {
		if e == exclude {
			return true
		}
		if fallback == nil {
			fallback = e
		}
		if r.segOf(e) == want {
			victim = e
			return false
		}
		return true
	})
	if victim != nil {
		return victim
	}
	return fallback
}

func (r *twoQReplacement) segOf(e *cache.Entry) uint8 {
	ml := e.Value.(*memList)
	if s, ok := r.seg[ml.term]; ok {
		return s
	}
	return segProbation
}

// ---------------------------------------------------------------------------
// BiDi: the bidirectional cache filter.

// bidiReplacement gates the upward (SSD→memory) flow: an SSD result hit is
// served without L1 promotion until the query has shown repeat demand, and
// a list with no L1 entry yet is only admitted once its term has. The
// downward (memory→SSD) flow is gated by the paired freqGatedAdmission.
// Everything else is the paper's cost-based scheme.
type bidiReplacement struct {
	cbReplacement
}

// PromoteResultToL1 promotes on the query's second SSD hit: queryFreq is
// bumped at the top of every GetResult, so a query being looked up for the
// third time (freq ≥ 3) has hit the SSD copy at least once before.
func (r *bidiReplacement) PromoteResultToL1(qid uint64) bool {
	return r.m.queryFreq[qid] >= 3
}

// AdmitNewL1List admits first-touch L1 inserts only for terms seen at
// least twice; prefix extensions of already-resident lists are always
// allowed (fillL1List never consults this for them).
func (r *bidiReplacement) AdmitNewL1List(t workload.TermID) bool {
	return r.m.termFreq[t] >= 2
}

// freqGatedAdmission is the doorkeeper both TinyLFU and BiDi use on the
// downward path: an item may enter the SSD only once its decayed sketch
// frequency reaches the minimum (2 — i.e. one-hit wonders are rejected).
// Lists additionally pass the paper's TEV check, so the gate tightens
// selection rather than replacing it.
type freqGatedAdmission struct {
	m *Manager
}

func (a *freqGatedAdmission) AdmitList(t workload.TermID, sc int64) bool {
	if a.m.termFreq[t] < 2 {
		a.m.stats.ListsRejectedByAdmission++
		return false
	}
	return !(ev(a.m.termFreq[t], sc) < a.m.cfg.TEV)
}

func (a *freqGatedAdmission) AdmitResult(qid uint64) bool {
	return a.m.queryFreq[qid] >= 2
}
