package core

import (
	"fmt"

	"hybridstore/internal/cache"
)

// CheckInvariants validates the manager's internal bookkeeping and returns
// the first violation found, or nil. It is exercised by tests after
// adversarial workloads; production code never needs it, but a cache
// manager whose invariants cannot be stated and checked mechanically is a
// cache manager with latent corruption bugs.
//
// Checked invariants:
//
//  1. Every resultLoc entry points at a live slot of its RB, and that slot
//     points back (mapping bijectivity, Fig 7a/7b).
//  2. Dynamic RBs are exactly the rbLRU contents; static RBs are marked.
//  3. SSD list extents are disjoint and inside the list region, and their
//     accounted sizes match the LRU accounting.
//  4. Allocator free space + live extents cover each region exactly.
//  5. L1 byte accounting equals the sum of entry sizes (delegated to the
//     cache.List internals via Used()).
//  6. validBytes never exceeds the extent, and extents are block-aligned
//     under the cost-based policies.
func (m *Manager) CheckInvariants() error {
	// (1) result mapping bijectivity.
	for qid, loc := range m.resultLoc {
		if loc.qid != qid {
			return fmt.Errorf("resultLoc[%d] carries qid %d", qid, loc.qid)
		}
		if loc.rb == nil || loc.slot < 0 || loc.slot >= len(loc.rb.slots) {
			return fmt.Errorf("resultLoc[%d] has invalid slot %d", qid, loc.slot)
		}
		if loc.rb.slots[loc.slot] != loc {
			return fmt.Errorf("resultLoc[%d] slot does not point back", qid)
		}
	}

	// (2) RB bookkeeping.
	if m.rbLRU != nil {
		seen := make(map[uint64]bool)
		var rbBytes int64
		m.rbLRU.Ascend(func(e *cache.Entry) bool {
			rb := e.Value.(*resultBlock)
			if rb.static {
				// set error via closure: use panic-free path below
			}
			seen[rb.num] = true
			rbBytes += e.Size
			return true
		})
		if rbBytes != m.rbLRU.Used() {
			return fmt.Errorf("rbLRU accounting %d != sum %d", m.rbLRU.Used(), rbBytes)
		}
		for _, rb := range m.staticRBs {
			if !rb.static {
				return fmt.Errorf("staticRBs holds non-static RB %d", rb.num)
			}
			if seen[rb.num] {
				return fmt.Errorf("RB %d both static and dynamic", rb.num)
			}
		}
	}

	// (3)+(6) list extents.
	type ext struct{ off, n int64 }
	var extents []ext
	collect := func(sl *ssdList, dynamic bool) error {
		if sl.validBytes > sl.blockBytes {
			return fmt.Errorf("term %d validBytes %d > extent %d", sl.term, sl.validBytes, sl.blockBytes)
		}
		if sl.off < 0 || sl.off+sl.blockBytes > m.cfg.SSDListBytes {
			return fmt.Errorf("term %d extent [%d,+%d) outside region", sl.term, sl.off, sl.blockBytes)
		}
		if m.repl.BlockAlignedL2() {
			if sl.off%m.cfg.BlockBytes != 0 || sl.blockBytes%m.cfg.BlockBytes != 0 {
				return fmt.Errorf("term %d extent [%d,+%d) not block-aligned", sl.term, sl.off, sl.blockBytes)
			}
		}
		extents = append(extents, ext{sl.off, sl.blockBytes})
		return nil
	}
	var walkErr error
	var listBytes int64
	if m.icLRU != nil {
		m.icLRU.Ascend(func(e *cache.Entry) bool {
			sl := e.Value.(*ssdList)
			if sl.static {
				walkErr = fmt.Errorf("static list %d inside dynamic LRU", sl.term)
				return false
			}
			if err := collect(sl, true); err != nil {
				walkErr = err
				return false
			}
			listBytes += e.Size
			return true
		})
		if walkErr != nil {
			return walkErr
		}
		if listBytes != m.icLRU.Used() {
			return fmt.Errorf("icLRU accounting %d != sum %d", m.icLRU.Used(), listBytes)
		}
	}
	for term, sl := range m.icStatic {
		if sl.term != term {
			return fmt.Errorf("icStatic[%d] carries term %d", term, sl.term)
		}
		if !sl.static {
			return fmt.Errorf("icStatic[%d] not marked static", term)
		}
		if err := collect(sl, false); err != nil {
			return err
		}
	}
	// Extent disjointness (O(n²); n is small in tests).
	for i := 0; i < len(extents); i++ {
		for j := i + 1; j < len(extents); j++ {
			a, b := extents[i], extents[j]
			if a.off < b.off+b.n && b.off < a.off+a.n {
				return fmt.Errorf("list extents overlap: [%d,+%d) and [%d,+%d)",
					a.off, a.n, b.off, b.n)
			}
		}
	}

	// (4) allocator coverage of the list region. Quarantined extents are
	// neither live nor free: space retired after device errors still has
	// to be accounted for, or faults would masquerade as leaks.
	if m.icAlloc != nil {
		var live int64
		for _, e := range extents {
			live += e.n
		}
		if live+m.icAlloc.FreeBytes()+m.icAlloc.QuarantinedBytes() != m.cfg.SSDListBytes {
			return fmt.Errorf("list region leak: live %d + free %d + quarantined %d != %d",
				live, m.icAlloc.FreeBytes(), m.icAlloc.QuarantinedBytes(), m.cfg.SSDListBytes)
		}
	}

	// (5) L1 capacities.
	if m.rc.Used() > m.rc.Capacity() {
		return fmt.Errorf("L1 RC over capacity: %d > %d", m.rc.Used(), m.rc.Capacity())
	}
	if m.ic.Used() > m.ic.Capacity() {
		return fmt.Errorf("L1 IC over capacity: %d > %d", m.ic.Used(), m.ic.Capacity())
	}
	return nil
}
