package core

import (
	"strings"
	"testing"

	"hybridstore/internal/workload"
)

// allPolicies returns every registered policy ID, registry order, so the
// behavioral test matrices cover new policies automatically.
func allPolicies() []Policy {
	ps := make([]Policy, 0, len(policyRegistry))
	for _, info := range policyRegistry {
		ps = append(ps, info.ID)
	}
	return ps
}

func TestParsePolicyRoundTrips(t *testing.T) {
	for _, info := range Policies() {
		for _, s := range []string{info.Name, info.Display, strings.ToUpper(info.Name)} {
			got, err := ParsePolicy(s)
			if err != nil {
				t.Fatalf("ParsePolicy(%q): %v", s, err)
			}
			if got != info.ID {
				t.Fatalf("ParsePolicy(%q) = %v, want %v", s, got, info.ID)
			}
		}
	}
}

func TestParsePolicyUnknownListsAllNames(t *testing.T) {
	_, err := ParsePolicy("clockpro")
	if err == nil {
		t.Fatal("accepted unknown policy")
	}
	for _, name := range RegisteredPolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention registered policy %q", err, name)
		}
	}
}

func TestPolicyStringNeverFallsBack(t *testing.T) {
	// Every policy reachable from user input (i.e. every registered one)
	// must render a real name, not the Policy(%d) debug fallback.
	for _, p := range allPolicies() {
		if strings.HasPrefix(p.String(), "Policy(") {
			t.Fatalf("registered policy %d renders as %q", p, p.String())
		}
		if !p.Valid() {
			t.Fatalf("registered policy %v not Valid()", p)
		}
	}
	if Policy(99).String() != "Policy(99)" {
		t.Fatalf("unregistered policy renders %q", Policy(99).String())
	}
	if Policy(99).Valid() {
		t.Fatal("unregistered policy reports Valid()")
	}
}

func TestPolicyTraits(t *testing.T) {
	// The legacy trio's traits are load-bearing: they encode the exact
	// pre-refactor behavior the byte-identity acceptance check pins.
	cases := []struct {
		policy                              Policy
		wholeL1, blockL2, flipHit, static   bool
		requiresTwoLevel, rejectsSingletons bool
	}{
		{PolicyLRU, true, false, false, false, false, false},
		{PolicyCBLRU, false, true, true, false, false, false},
		{PolicyCBSLRU, false, true, true, true, true, false},
		{PolicyTinyLFU, false, true, true, false, false, true},
		{PolicyARC, false, true, true, false, false, false},
		{Policy2Q, false, true, true, false, false, false},
		{PolicyBidi, false, true, true, false, true, true},
	}
	for _, c := range cases {
		t.Run(c.policy.String(), func(t *testing.T) {
			cfg := testConfig(c.policy)
			f := newFixture(t, cfg)
			r := f.m.repl
			if r.WholeListL1() != c.wholeL1 {
				t.Errorf("WholeListL1 = %v", r.WholeListL1())
			}
			if r.BlockAlignedL2() != c.blockL2 {
				t.Errorf("BlockAlignedL2 = %v", r.BlockAlignedL2())
			}
			if r.FlipReplaceableOnHit() != c.flipHit {
				t.Errorf("FlipReplaceableOnHit = %v", r.FlipReplaceableOnHit())
			}
			if r.UsesStaticPartition() != c.static {
				t.Errorf("UsesStaticPartition = %v", r.UsesStaticPartition())
			}
			if f.m.UsesStaticPartition() != c.static {
				t.Errorf("Manager.UsesStaticPartition = %v", f.m.UsesStaticPartition())
			}
			if c.policy.RequiresTwoLevel() != c.requiresTwoLevel {
				t.Errorf("RequiresTwoLevel = %v", c.policy.RequiresTwoLevel())
			}
			// A term never seen before: frequency-gated admission rejects it,
			// the TEV-style admissions accept it (TEV=0 in testConfig).
			if got := f.m.adm.AdmitList(workload.TermID(150), 1); got == c.rejectsSingletons {
				t.Errorf("AdmitList(cold term) = %v", got)
			}
		})
	}
}

func TestFreqGatedAdmissionWarmsUp(t *testing.T) {
	f := newFixture(t, testConfig(PolicyTinyLFU))
	term := workload.TermID(42)
	if f.m.adm.AdmitList(term, 1) {
		t.Fatal("admitted a never-seen term")
	}
	f.m.stats.ListsRejectedByAdmission = 0 // only count the probe above
	f.m.termFreq[term] = 2
	if !f.m.adm.AdmitList(term, 1) {
		t.Fatal("rejected a term at the frequency threshold")
	}
	if f.m.adm.AdmitResult(7) {
		t.Fatal("admitted a never-seen query result")
	}
	f.m.queryFreq[7] = 2
	if !f.m.adm.AdmitResult(7) {
		t.Fatal("rejected a query at the frequency threshold")
	}
}

func TestBidiPromotionThresholds(t *testing.T) {
	f := newFixture(t, testConfig(PolicyBidi))
	r := f.m.repl
	if r.PromoteResultToL1(5) {
		t.Fatal("promoted a cold query's result")
	}
	f.m.queryFreq[5] = 3
	if !r.PromoteResultToL1(5) {
		t.Fatal("did not promote a hot query's result")
	}
	if r.AdmitNewL1List(9) {
		t.Fatal("admitted a cold term's list into L1")
	}
	f.m.termFreq[9] = 2
	if !r.AdmitNewL1List(9) {
		t.Fatal("rejected a warm term's list from L1")
	}
}

func TestARCGhostsSteerVictims(t *testing.T) {
	f := newFixture(t, testConfig(PolicyARC))
	arc, ok := f.m.repl.(*arcReplacement)
	if !ok {
		t.Fatalf("ARC manager runs %T", f.m.repl)
	}
	// A b1 ghost hit grows the recency target and re-inserts as protected.
	arc.b1.push(workload.TermID(3))
	arc.NoteL1ListInsert(workload.TermID(3))
	if arc.p == 0 {
		t.Fatal("b1 ghost hit did not grow the recency target")
	}
	if arc.seg[workload.TermID(3)] != segProtected {
		t.Fatal("b1 ghost hit not re-inserted as protected")
	}
	if arc.b1.has(workload.TermID(3)) {
		t.Fatal("ghost entry survived its hit")
	}
	// A b2 ghost hit shrinks the target back.
	p := arc.p
	arc.b2.push(workload.TermID(4))
	arc.NoteL1ListInsert(workload.TermID(4))
	if arc.p >= p {
		t.Fatal("b2 ghost hit did not shrink the recency target")
	}
	// Evictions land in the ghost list matching their segment.
	arc.NoteL1ListEvict(workload.TermID(3))
	if !arc.b2.has(workload.TermID(3)) {
		t.Fatal("protected eviction missing from b2")
	}
	arc.NoteL1ListInsert(workload.TermID(5)) // cold insert: probation
	arc.NoteL1ListEvict(workload.TermID(5))
	if !arc.b1.has(workload.TermID(5)) {
		t.Fatal("probation eviction missing from b1")
	}
}

func TestGhostListBounded(t *testing.T) {
	g := newGhostList()
	for i := 0; i < 3*ghostCap; i++ {
		g.push(workload.TermID(i))
	}
	if len(g.order) != ghostCap || len(g.set) != ghostCap {
		t.Fatalf("ghost list grew to %d/%d entries (cap %d)", len(g.order), len(g.set), ghostCap)
	}
	if g.has(workload.TermID(0)) {
		t.Fatal("oldest ghost not displaced")
	}
	if !g.has(workload.TermID(3*ghostCap - 1)) {
		t.Fatal("newest ghost missing")
	}
}

func Test2QReclaimsFromA1out(t *testing.T) {
	f := newFixture(t, testConfig(Policy2Q))
	q, ok := f.m.repl.(*twoQReplacement)
	if !ok {
		t.Fatalf("2Q manager runs %T", f.m.repl)
	}
	q.NoteL1ListInsert(workload.TermID(1))
	if q.seg[workload.TermID(1)] != segProbation {
		t.Fatal("first insert not probationary")
	}
	q.NoteL1ListEvict(workload.TermID(1))
	if !q.a1out.has(workload.TermID(1)) {
		t.Fatal("probation eviction missing from a1out")
	}
	q.NoteL1ListInsert(workload.TermID(1))
	if q.seg[workload.TermID(1)] != segProtected {
		t.Fatal("a1out re-reference not promoted to protected")
	}
	q.NoteL1ListEvict(workload.TermID(1))
	if q.a1out.has(workload.TermID(1)) {
		t.Fatal("protected eviction re-entered a1out")
	}
}
