package core

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"hybridstore/internal/index"
	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// fixture bundles a small end-to-end hierarchy for unit tests.
type fixture struct {
	clock *simclock.Clock
	ix    *index.Index
	ssd   storage.Device
	m     *Manager
	spec  workload.CollectionSpec
}

func testConfig(policy Policy) Config {
	return Config{
		Policy:           policy,
		MemResultBytes:   100 << 10, // 5 result entries
		MemListBytes:     256 << 10,
		SSDResultBytes:   1 << 20,
		SSDListBytes:     4 << 20,
		BlockBytes:       128 << 10,
		ResultEntryBytes: 20 << 10,
		WindowW:          5,
		TEV:              0, // selection disabled unless a test opts in
	}
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	clock := simclock.New()
	spec := workload.DefaultCollection(200000)
	spec.VocabSize = 200
	hdd := storage.NewMemDevice("hdd", index.RequiredBytes(spec)+4096, clock, storage.DefaultMemParams())
	ix, err := index.Build(hdd, spec)
	if err != nil {
		t.Fatal(err)
	}
	var ssd storage.Device
	if cfg.SSDResultBytes+cfg.SSDListBytes > 0 {
		// The SSD cache device runs on its own clock; the manager charges
		// foreground read time onto the shared clock itself.
		ssd = storage.NewMemDevice("ssd", cfg.SSDResultBytes+cfg.SSDListBytes+(1<<20),
			simclock.New(), storage.DefaultMemParams())
	}
	m, err := New(clock, ix, ssd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{clock: clock, ix: ix, ssd: ssd, m: m, spec: spec}
}

func (f *fixture) wantList(t *testing.T, term workload.TermID, off, n int64) []byte {
	t.Helper()
	want := make([]byte, n)
	if err := f.ix.ReadListRange(term, off, want); err != nil {
		t.Fatal(err)
	}
	return want
}

// readSome reads up to n bytes of term's list through the manager, clamped
// to the list length, failing the test on error. It returns the bytes read.
func (f *fixture) readSome(t *testing.T, term workload.TermID, n int64) int64 {
	t.Helper()
	if total := f.ix.ListBytes(term); n > total {
		n = total
	}
	buf := make([]byte, n)
	if err := f.m.ReadListRange(term, 0, buf); err != nil {
		t.Fatalf("readSome(term %d, %d): %v", term, n, err)
	}
	return n
}

func entryOf(qid uint64, fill byte, size int64) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = fill
	}
	b[0] = byte(qid)
	return b
}

func TestNewValidation(t *testing.T) {
	clock := simclock.New()
	spec := workload.DefaultCollection(1000)
	spec.VocabSize = 10
	hdd := storage.NewMemDevice("hdd", index.RequiredBytes(spec)+4096, clock, storage.DefaultMemParams())
	ix, err := index.Build(hdd, spec)
	if err != nil {
		t.Fatal(err)
	}
	// SSD regions configured without a device.
	cfg := testConfig(PolicyCBLRU)
	if _, err := New(clock, ix, nil, cfg); err == nil {
		t.Fatal("accepted SSD regions with nil device")
	}
	// Regions exceeding device size.
	tiny := storage.NewMemDevice("ssd", 1<<20, clock, storage.DefaultMemParams())
	if _, err := New(clock, ix, tiny, cfg); err == nil {
		t.Fatal("accepted oversized regions")
	}
	// One-level config is fine without a device.
	cfg.SSDResultBytes, cfg.SSDListBytes = 0, 0
	if _, err := New(clock, ix, nil, cfg); err != nil {
		t.Fatalf("one-level config rejected: %v", err)
	}
	// Zero memory is rejected.
	bad := testConfig(PolicyCBLRU)
	bad.MemResultBytes = 0
	if _, err := New(clock, ix, nil, bad); err == nil {
		t.Fatal("accepted zero MemResultBytes")
	}
}

func TestReadListRangeCorrectAllPolicies(t *testing.T) {
	for _, policy := range allPolicies() {
		t.Run(policy.String(), func(t *testing.T) {
			f := newFixture(t, testConfig(policy))
			for _, term := range []workload.TermID{0, 3, 50, 199} {
				n := f.ix.ListBytes(term)
				if n > 32<<10 {
					n = 32 << 10
				}
				got := make([]byte, n)
				if err := f.m.ReadListRange(term, 0, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, f.wantList(t, term, 0, n)) {
					t.Fatalf("policy %v term %d: wrong bytes", policy, term)
				}
				// Read again (should come from cache) and re-verify.
				got2 := make([]byte, n)
				if err := f.m.ReadListRange(term, 0, got2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got2, got) {
					t.Fatalf("policy %v term %d: cached bytes differ", policy, term)
				}
			}
		})
	}
}

func TestReadListRangeBounds(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	buf := make([]byte, 8)
	if err := f.m.ReadListRange(5, f.ix.ListBytes(5), buf); err == nil {
		t.Fatal("read past list end accepted")
	}
	if err := f.m.ReadListRange(5, -1, buf); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestL1ListCachingServesFromMemory(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	term := workload.TermID(10)
	f.readSome(t, term, 8<<10)
	hddBefore := f.m.Stats().ListBytesFromHDD
	f.readSome(t, term, 8<<10)
	s := f.m.Stats()
	if s.ListBytesFromHDD != hddBefore {
		t.Fatal("repeat read went to HDD")
	}
	if s.ListBytesFromMem == 0 {
		t.Fatal("repeat read not counted as memory")
	}
}

func TestL1PrefixExtension(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	term := workload.TermID(0)
	chunk := make([]byte, 8<<10)
	f.m.ReadListRange(term, 0, chunk)
	f.m.ReadListRange(term, 8<<10, chunk) // contiguous extension
	memBefore := f.m.Stats().ListBytesFromMem
	both := make([]byte, 16<<10)
	if err := f.m.ReadListRange(term, 0, both); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(both, f.wantList(t, term, 0, 16<<10)) {
		t.Fatal("extended prefix corrupt")
	}
	if f.m.Stats().ListBytesFromMem-memBefore < 16<<10 {
		t.Fatal("extended range not fully served from memory")
	}
}

func TestEvictionFlowsToSSDAndBack(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10 // tiny L1: force eviction
	f := newFixture(t, cfg)
	termA, termB := workload.TermID(20), workload.TermID(21)
	nA := f.readSome(t, termA, 12<<10)
	// Fill L1 with other lists until termA is evicted (flushed to SSD).
	for i := 0; i < 20; i++ {
		f.readSome(t, workload.TermID(30+i), 12<<10)
	}
	f.readSome(t, termB, 12<<10)
	if f.m.Stats().ListWritesToSSD == 0 {
		t.Fatal("no list flushed to SSD under L1 pressure")
	}
	// termA should now hit SSD, not HDD.
	hddBefore := f.m.Stats().ListBytesFromHDD
	got := make([]byte, nA)
	if err := f.m.ReadListRange(termA, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f.wantList(t, termA, 0, nA)) {
		t.Fatal("SSD round-trip corrupted list bytes")
	}
	s := f.m.Stats()
	if s.ListBytesFromSSD == 0 {
		t.Fatal("re-read not served from SSD")
	}
	if s.ListBytesFromHDD != hddBefore {
		t.Fatalf("re-read touched HDD (%d extra bytes)", s.ListBytesFromHDD-hddBefore)
	}
}

func TestTEVDiscardsColdLargeLists(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10
	cfg.TEV = 10 // everything with freq < 10×SC blocks is discarded
	f := newFixture(t, cfg)
	for i := 0; i < 20; i++ {
		f.readSome(t, workload.TermID(30+i), 12<<10)
	}
	s := f.m.Stats()
	if s.ListWritesToSSD != 0 {
		t.Fatalf("cold lists flushed despite TEV: %d writes", s.ListWritesToSSD)
	}
	if s.ListsDiscarded == 0 {
		t.Fatal("nothing discarded")
	}
}

func TestWriteElisionOnReplaceableCopy(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10
	f := newFixture(t, cfg)
	term := workload.TermID(20)
	f.readSome(t, term, 12<<10)
	// Evict term to SSD.
	for i := 0; i < 20; i++ {
		f.readSome(t, workload.TermID(40+i), 12<<10)
	}
	writes := f.m.Stats().ListWritesToSSD
	if writes == 0 {
		t.Skip("term never reached SSD; adjust fixture")
	}
	// Read back: the SSD copy flips to replaceable and the list re-enters
	// L1.
	f.readSome(t, term, 12<<10)
	sl := f.m.ssdListFor(term)
	if sl == nil || sl.state != stateReplaceable {
		t.Fatalf("SSD copy not replaceable after read-back: %+v", sl)
	}
	// Evict it again (directly, to keep the scenario deterministic): the
	// SSD already holds the bytes, so the write must be elided and the
	// copy revalidated.
	e, ok := f.m.ic.Peek(uint64(term))
	if !ok {
		t.Fatal("term not back in L1 after read-back")
	}
	ml := e.Value.(*memList)
	f.m.ic.RemoveEntry(e)
	f.m.flushListToSSD(ml)
	if f.m.Stats().ListWritesElided == 0 {
		t.Fatal("re-eviction rewrote data the SSD already held")
	}
	if got := f.m.ssdListFor(term); got == nil || got.state != stateNormal {
		t.Fatal("elided entry not revalidated to normal state")
	}
}

func TestResultCacheMemoryHit(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	entry := entryOf(1, 0xAA, f.m.Config().ResultEntryBytes)
	if err := f.m.PutResult(1, entry); err != nil {
		t.Fatal(err)
	}
	got, src := f.m.GetResult(1)
	if src != ResultFromMemory || !bytes.Equal(got, entry) {
		t.Fatalf("src=%v", src)
	}
	if _, src := f.m.GetResult(999); src != ResultMiss {
		t.Fatal("phantom hit")
	}
	s := f.m.Stats()
	if s.ResultHitsMem != 1 || s.ResultMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPutResultWrongSizeRejected(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	if err := f.m.PutResult(1, make([]byte, 100)); err == nil {
		t.Fatal("accepted short entry")
	}
}

func TestPadResult(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	out := f.m.PadResult([]byte{1, 2, 3})
	if int64(len(out)) != f.m.Config().ResultEntryBytes || out[0] != 1 || out[3] != 0 {
		t.Fatalf("pad wrong: len=%d", len(out))
	}
}

func TestResultEvictionAssemblesRBsAndReadsBack(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	size := f.m.Config().ResultEntryBytes
	// L1 holds 5 entries; entriesPerRB = 6. Insert enough to evict >6.
	const total = 20
	for q := uint64(1); q <= total; q++ {
		f.m.PutResult(q, entryOf(q, byte(q), size))
	}
	s := f.m.Stats()
	if s.L1ResultEvictions == 0 {
		t.Fatal("no L1 evictions")
	}
	if s.RBFlushes == 0 {
		t.Fatalf("no RB assembled (buffer=%d)", f.m.WriteBufferLen())
	}
	// Early queries should now be on SSD.
	var ssdHit bool
	for q := uint64(1); q <= 6; q++ {
		got, src := f.m.GetResult(q)
		if src == ResultFromSSD {
			ssdHit = true
			if got[0] != byte(q) {
				t.Fatalf("query %d: wrong entry content", q)
			}
		}
	}
	if !ssdHit {
		t.Fatal("no result served from SSD")
	}
}

func TestResultSSDHitPromotesToL1(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	size := f.m.Config().ResultEntryBytes
	for q := uint64(1); q <= 20; q++ {
		f.m.PutResult(q, entryOf(q, byte(q), size))
	}
	var promoted uint64
	for q := uint64(1); q <= 6; q++ {
		if _, src := f.m.GetResult(q); src == ResultFromSSD {
			promoted = q
			break
		}
	}
	if promoted == 0 {
		t.Skip("no SSD hit in fixture")
	}
	if _, src := f.m.GetResult(promoted); src != ResultFromMemory {
		t.Fatalf("second lookup src=%v, want memory", src)
	}
}

func TestLRUBaselineWritesResultsImmediately(t *testing.T) {
	f := newFixture(t, testConfig(PolicyLRU))
	size := f.m.Config().ResultEntryBytes
	for q := uint64(1); q <= 8; q++ {
		f.m.PutResult(q, entryOf(q, byte(q), size))
	}
	s := f.m.Stats()
	if s.ResultBytesToSSD == 0 {
		t.Fatal("baseline did not write evicted results to SSD")
	}
	if s.RBFlushes != 0 {
		t.Fatal("baseline should not assemble RBs")
	}
	if f.m.WriteBufferLen() != 0 {
		t.Fatal("baseline buffered results")
	}
	// Evicted entries are readable from SSD.
	got, src := f.m.GetResult(1)
	if src != ResultFromSSD || got[0] != 1 {
		t.Fatalf("src=%v", src)
	}
}

func TestFlushWriteBuffer(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	size := f.m.Config().ResultEntryBytes
	for q := uint64(1); q <= 9; q++ { // 5 stay in L1, 4 buffered
		f.m.PutResult(q, entryOf(q, byte(q), size))
	}
	left := f.m.FlushWriteBuffer()
	if left != f.m.WriteBufferLen() {
		t.Fatal("FlushWriteBuffer return inconsistent")
	}
	if left >= 6 {
		t.Fatalf("%d entries still buffered after flush", left)
	}
}

func TestWriteBufferServesLookups(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	size := f.m.Config().ResultEntryBytes
	for q := uint64(1); q <= 7; q++ {
		f.m.PutResult(q, entryOf(q, byte(q), size))
	}
	if f.m.WriteBufferLen() == 0 {
		t.Skip("nothing buffered")
	}
	// Query 1 or 2 should be in the buffer; find one and look it up.
	for q := uint64(1); q <= 2; q++ {
		if got, src := f.m.GetResult(q); src == ResultFromMemory && got[0] == byte(q) {
			return
		}
	}
	t.Fatal("buffered entries not served as memory hits")
}

func TestStaticPinningCBSLRU(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBSLRU))
	size := f.m.Config().ResultEntryBytes
	if !f.m.PinResult(500, entryOf(500, 0x55, size)) {
		t.Fatal("PinResult failed with empty static region")
	}
	if _, src := f.m.GetResult(500); src != ResultFromSSD {
		t.Fatal("pinned result not served from SSD")
	}
	if !f.m.PinList(5) {
		t.Fatal("PinList failed")
	}
	got := make([]byte, 4<<10)
	hddBefore := f.m.Stats().ListBytesFromHDD
	if err := f.m.ReadListRange(5, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f.wantList(t, 5, 0, 4<<10)) {
		t.Fatal("pinned list bytes wrong")
	}
	if f.m.Stats().ListBytesFromHDD != hddBefore {
		t.Fatal("pinned list read touched HDD")
	}
	if len(f.m.StaticPinnedLists()) != 1 {
		t.Fatal("pinned list not tracked")
	}
}

func TestStaticPinningRejectedOutsideCBSLRU(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	if f.m.PinResult(1, entryOf(1, 1, f.m.Config().ResultEntryBytes)) {
		t.Fatal("PinResult allowed under CBLRU")
	}
	if f.m.PinList(1) {
		t.Fatal("PinList allowed under CBLRU")
	}
	if f.m.StaticResultBudget() != 0 || f.m.StaticListBudget() != 0 {
		t.Fatal("non-CBSLRU policies report static budget")
	}
}

func TestStaticBudgetEnforced(t *testing.T) {
	cfg := testConfig(PolicyCBSLRU)
	cfg.StaticFraction = 0.25
	f := newFixture(t, cfg)
	size := f.m.Config().ResultEntryBytes
	budgetRBs := f.m.StaticResultBudget() / f.m.Config().BlockBytes
	maxEntries := budgetRBs * int64(f.m.Config().BlockBytes/size)
	var pinned int64
	for q := uint64(1); q <= uint64(maxEntries)+10; q++ {
		if f.m.PinResult(q, entryOf(q, 1, size)) {
			pinned++
		}
	}
	if pinned > maxEntries {
		t.Fatalf("pinned %d entries, budget %d", pinned, maxEntries)
	}
	if pinned == 0 {
		t.Fatal("nothing pinned")
	}
}

func TestSituationClassification(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	buf := make([]byte, 8<<10)

	// Query 1: all lists from HDD → S9.
	f.m.BeginQuery(1)
	f.m.ReadListRange(10, 0, buf)
	f.m.EndQuery(time.Millisecond)

	// Query 2: same list now in memory → S3.
	f.m.BeginQuery(2)
	f.m.ReadListRange(10, 0, buf)
	f.m.EndQuery(time.Millisecond)

	// Query 3: result hit in memory → S1.
	f.m.PutResult(3, entryOf(3, 3, f.m.Config().ResultEntryBytes))
	f.m.BeginQuery(3)
	f.m.GetResult(3)
	f.m.EndQuery(time.Microsecond)

	tally := f.m.Stats().Situations
	if tally.Counts[S9ListsHDD] != 1 || tally.Counts[S3ListsMem] != 1 || tally.Counts[S1ResultMem] != 1 {
		t.Fatalf("tally = %+v", tally.Counts)
	}
	if tally.Total() != 3 {
		t.Fatalf("total = %d", tally.Total())
	}
	if tally.Probability(S9ListsHDD) < 0.3 || tally.MeanTime(S9ListsHDD) != time.Millisecond {
		t.Fatalf("P/T wrong: %v %v", tally.Probability(S9ListsHDD), tally.MeanTime(S9ListsHDD))
	}
}

func TestHitRatioAccounting(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	buf := make([]byte, 8<<10)
	f.m.BeginQuery(1)
	f.m.ReadListRange(10, 0, buf) // miss (HDD)
	f.m.EndQuery(time.Millisecond)
	f.m.BeginQuery(2)
	f.m.ReadListRange(10, 0, buf) // hit (mem)
	f.m.EndQuery(time.Millisecond)
	s := f.m.Stats()
	if s.ListRequests != 2 || s.ListHits != 1 {
		t.Fatalf("list accounting: %d/%d", s.ListHits, s.ListRequests)
	}
	if s.ListHitRatio() != 0.5 {
		t.Fatalf("ListHitRatio = %v", s.ListHitRatio())
	}
}

func TestStatsResetPreservesCache(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	buf := make([]byte, 8<<10)
	f.m.ReadListRange(10, 0, buf)
	f.m.ResetStats()
	if f.m.Stats().ListBytesFromHDD != 0 {
		t.Fatal("stats not reset")
	}
	f.m.ReadListRange(10, 0, buf)
	if f.m.Stats().ListBytesFromHDD != 0 {
		t.Fatal("cache contents lost on stats reset")
	}
}

func TestMeasuredPUFallback(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.PU = nil
	f := newFixture(t, cfg)
	if got := f.m.pu(5); got != 1 {
		t.Fatalf("unmeasured PU = %v, want 1", got)
	}
	f.m.RecordUtilization(5, 0.5)
	if got := f.m.pu(5); got != 0.5 {
		t.Fatalf("PU after sample = %v", got)
	}
	f.m.RecordUtilization(5, 1.0)
	got := f.m.pu(5)
	if got <= 0.5 || got >= 1.0 {
		t.Fatalf("EWMA PU = %v", got)
	}
	f.m.RecordUtilization(6, 5.0) // clamped
	if f.m.pu(6) != 1 {
		t.Fatalf("overlarge sample not clamped: %v", f.m.pu(6))
	}
	f.m.RecordUtilization(7, -1) // ignored
	if f.m.pu(7) != 1 {
		t.Fatal("negative sample recorded")
	}
}

func TestFormula1SCBlocks(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	// Paper's example: SI = 1000 KB, PU = 50% → SC = 4 blocks (512 KB).
	if got := f.m.scBlocks(1000<<10, 0.5); got != 4 {
		t.Fatalf("SC = %d, want 4", got)
	}
	if got := f.m.scBlocks(1, 0.01); got != 1 {
		t.Fatalf("tiny list SC = %d, want 1", got)
	}
	if got := f.m.scBlocks(0, 0.5); got != 0 {
		t.Fatalf("empty list SC = %d", got)
	}
}

func TestFormula2EV(t *testing.T) {
	if ev(100, 4) != 25 {
		t.Fatalf("EV = %v", ev(100, 4))
	}
	if ev(100, 0) != 0 {
		t.Fatal("EV with zero SC not 0")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyLRU.String() != "LRU" || PolicyCBLRU.String() != "CBLRU" || PolicyCBSLRU.String() != "CBSLRU" {
		t.Fatal("policy names wrong")
	}
	if Policy(42).String() == "" {
		t.Fatal("unknown policy empty string")
	}
}

func TestSituationString(t *testing.T) {
	for s := S1ResultMem; s < numSituations; s++ {
		if s.String() == "S?" {
			t.Fatalf("situation %d unnamed", s)
		}
	}
}

func TestListIntegrityProperty(t *testing.T) {
	// Property: whatever the policy and access history, ReadListRange
	// returns exactly the index's bytes.
	for _, policy := range allPolicies() {
		cfg := testConfig(policy)
		cfg.MemListBytes = 64 << 10 // heavy eviction churn
		f := newFixture(t, cfg)
		check := func(ops []uint16) bool {
			for _, raw := range ops {
				term := workload.TermID(raw % 200)
				total := f.ix.ListBytes(term)
				n := int64(raw%8+1) << 10
				if n > total {
					n = total
				}
				got := make([]byte, n)
				if err := f.m.ReadListRange(term, 0, got); err != nil {
					return false
				}
				want := make([]byte, n)
				f.ix.ReadListRange(term, 0, want)
				if !bytes.Equal(got, want) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
	}
}

func TestResultIntegrityProperty(t *testing.T) {
	// Property: a Get after Put returns the stored entry (from some level)
	// or a clean miss — never wrong bytes. Entries are immutable per query
	// ID (the paper's static scenario), so content derives from the ID.
	for _, policy := range []Policy{PolicyLRU, PolicyCBLRU} {
		f := newFixture(t, testConfig(policy))
		size := f.m.Config().ResultEntryBytes
		stored := make(map[uint64]bool)
		fillOf := func(qid uint64) byte { return byte(qid*7 + 13) }
		check := func(ops []uint16) bool {
			for i, raw := range ops {
				qid := uint64(raw%64 + 1)
				if i%2 == 0 {
					f.m.PutResult(qid, entryOf(qid, fillOf(qid), size))
					stored[qid] = true
				} else if stored[qid] {
					got, src := f.m.GetResult(qid)
					if src != ResultMiss {
						if got[0] != byte(qid) || got[1] != fillOf(qid) {
							return false
						}
					}
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
	}
}

func TestOneLevelCacheWorks(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.SSDResultBytes, cfg.SSDListBytes = 0, 0
	clock := simclock.New()
	spec := workload.DefaultCollection(20000)
	spec.VocabSize = 200
	hdd := storage.NewMemDevice("hdd", index.RequiredBytes(spec)+4096, clock, storage.DefaultMemParams())
	ix, err := index.Build(hdd, spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(clock, ix, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := ix.ListBytes(3)
	if n > 8<<10 {
		n = 8 << 10
	}
	buf := make([]byte, n)
	if err := m.ReadListRange(3, 0, buf); err != nil {
		t.Fatal(err)
	}
	m.PutResult(1, entryOf(1, 9, cfg.ResultEntryBytes))
	if _, src := m.GetResult(1); src != ResultFromMemory {
		t.Fatal("one-level result miss")
	}
	// Evictions in a one-level cache drop data instead of flushing.
	for q := uint64(2); q <= 10; q++ {
		m.PutResult(q, entryOf(q, byte(q), cfg.ResultEntryBytes))
	}
	if m.Stats().ResultsDropped == 0 {
		t.Fatal("one-level evictions not dropped")
	}
}
