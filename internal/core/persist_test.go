package core

import (
	"bytes"
	"testing"

	"hybridstore/internal/workload"
)

// populate pushes results and lists through the manager so both SSD
// regions hold data.
func populate(t *testing.T, f *fixture) {
	t.Helper()
	size := f.m.Config().ResultEntryBytes
	for q := uint64(1); q <= 25; q++ {
		f.m.PutResult(q, entryOf(q, byte(q), size))
	}
	f.m.FlushWriteBuffer()
	for i := 0; i < 25; i++ {
		f.readSome(t, workload.TermID(30+i), 12<<10)
	}
}

// restoreFixture builds a second manager over the SAME devices via
// Restore.
func (f *fixture) restore(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m2, err := Restore(f.clock, f.ix, f.ssd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m2
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10 // force list flushes to SSD
	f := newFixture(t, cfg)
	populate(t, f)
	if err := f.m.SaveMappings(); err != nil {
		t.Fatal(err)
	}

	m2 := f.restore(t, cfg)

	// Every result the old manager had on SSD must be servable by the new
	// one, with identical bytes — without touching L1 (which is empty).
	restored := 0
	for q := uint64(1); q <= 25; q++ {
		if _, ok := f.m.resultLoc[q]; !ok {
			continue
		}
		data, src := m2.GetResult(q)
		if src != ResultFromSSD {
			t.Fatalf("query %d: src=%v after restore", q, src)
		}
		if data[0] != byte(q) {
			t.Fatalf("query %d: wrong content after restore", q)
		}
		restored++
	}
	if restored == 0 {
		t.Fatal("no results were on SSD; fixture too small")
	}

	// SSD-cached lists serve without HDD bytes.
	served := 0
	for i := 0; i < 25; i++ {
		term := workload.TermID(30 + i)
		sl := m2.ssdListFor(term)
		if sl == nil {
			continue
		}
		buf := make([]byte, sl.validBytes)
		hddBefore := m2.Stats().ListBytesFromHDD
		if err := m2.ReadListRange(term, 0, buf); err != nil {
			t.Fatal(err)
		}
		if m2.Stats().ListBytesFromHDD != hddBefore {
			t.Fatalf("term %d read HDD after restore", term)
		}
		want := make([]byte, sl.validBytes)
		f.ix.ReadListRange(term, 0, want)
		if !bytes.Equal(buf, want) {
			t.Fatalf("term %d bytes wrong after restore", term)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no lists restored")
	}
}

func TestRestorePreservesTermFrequencies(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	f := newFixture(t, cfg)
	f.readSome(t, 7, 4<<10)
	f.readSome(t, 7, 4<<10)
	f.readSome(t, 9, 4<<10)
	if err := f.m.SaveMappings(); err != nil {
		t.Fatal(err)
	}
	m2 := f.restore(t, cfg)
	if m2.TermFrequency(7) != 2 || m2.TermFrequency(9) != 1 {
		t.Fatalf("frequencies lost: %d/%d", m2.TermFrequency(7), m2.TermFrequency(9))
	}
}

func TestRestorePreservesStaticPins(t *testing.T) {
	cfg := testConfig(PolicyCBSLRU)
	f := newFixture(t, cfg)
	size := f.m.Config().ResultEntryBytes
	if !f.m.PinResult(500, entryOf(500, 0x77, size)) || !f.m.PinList(5) {
		t.Fatal("pinning failed")
	}
	if err := f.m.SaveMappings(); err != nil {
		t.Fatal(err)
	}
	m2 := f.restore(t, cfg)
	if _, src := m2.GetResult(500); src != ResultFromSSD {
		t.Fatal("pinned result lost")
	}
	if len(m2.StaticPinnedLists()) != 1 {
		t.Fatal("pinned list lost")
	}
	if sl := m2.ssdListFor(5); sl == nil || !sl.static {
		t.Fatal("restored pin not static")
	}
}

func TestRestoreRejectsPolicyMismatch(t *testing.T) {
	cfgA := testConfig(PolicyCBLRU)
	f := newFixture(t, cfgA)
	populate(t, f)
	if err := f.m.SaveMappings(); err != nil {
		t.Fatal(err)
	}
	cfgB := testConfig(PolicyLRU)
	if _, err := Restore(f.clock, f.ix, f.ssd, cfgB); err == nil {
		t.Fatal("policy mismatch accepted")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	f := newFixture(t, cfg)
	// No SaveMappings ever ran: the metadata region is zeros.
	if _, err := Restore(f.clock, f.ix, f.ssd, cfg); err == nil {
		t.Fatal("restore from a blank device succeeded")
	}
}

func TestSaveWithoutSSDFails(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	cfg.SSDResultBytes, cfg.SSDListBytes = 0, 0
	f := newFixture(t, cfg)
	if err := f.m.SaveMappings(); err == nil {
		t.Fatal("SaveMappings without SSD succeeded")
	}
}

func TestRestoredRecencySurvives(t *testing.T) {
	// Entries restored in LRU order must evict in the same order as the
	// original would: the oldest dynamic list entry goes first.
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 64 << 10
	f := newFixture(t, cfg)
	populate(t, f)
	if err := f.m.SaveMappings(); err != nil {
		t.Fatal(err)
	}
	m2 := f.restore(t, cfg)
	origLRU := f.m.icLRU.LRUEntry()
	newLRU := m2.icLRU.LRUEntry()
	if origLRU == nil || newLRU == nil {
		t.Skip("no dynamic list entries to compare")
	}
	if origLRU.Key != newLRU.Key {
		t.Fatalf("LRU order lost: %d vs %d", origLRU.Key, newLRU.Key)
	}
}
