package core

import (
	"testing"
	"time"

	"hybridstore/internal/workload"
)

func TestStatsAccessors(t *testing.T) {
	s := Stats{
		ResultHitsMem: 3, ResultHitsSSD: 1, ResultMisses: 4,
		ListRequests: 10, ListHits: 6,
		ListBytesRequested: 1000, ListReqBytesFromHDD: 250,
		Queries: 4, QueryTime: 2 * time.Second,
	}
	if s.ResultLookups() != 8 {
		t.Fatalf("ResultLookups = %d", s.ResultLookups())
	}
	if s.ResultHitRatio() != 0.5 {
		t.Fatalf("ResultHitRatio = %v", s.ResultHitRatio())
	}
	if s.ListRequestHitRatio() != 0.6 {
		t.Fatalf("ListRequestHitRatio = %v", s.ListRequestHitRatio())
	}
	if s.ListHitRatio() != 0.75 {
		t.Fatalf("ListHitRatio = %v", s.ListHitRatio())
	}
	wantRIC := (4.0 + 0.75*10) / 18
	if got := s.CombinedHitRatio(); got < wantRIC-1e-9 || got > wantRIC+1e-9 {
		t.Fatalf("CombinedHitRatio = %v, want %v", got, wantRIC)
	}
	if s.MeanQueryTime() != 500*time.Millisecond {
		t.Fatalf("MeanQueryTime = %v", s.MeanQueryTime())
	}
	if s.Throughput() != 2 {
		t.Fatalf("Throughput = %v", s.Throughput())
	}
	var empty Stats
	if empty.ResultHitRatio() != 0 || empty.ListHitRatio() != 0 ||
		empty.ListRequestHitRatio() != 0 || empty.CombinedHitRatio() != 0 ||
		empty.MeanQueryTime() != 0 || empty.Throughput() != 0 {
		t.Fatal("empty stats ratios not zero")
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := DefaultConfig(10 << 20)
	if cfg.MemResultBytes != 2<<20 || cfg.MemListBytes != 8<<20 {
		t.Fatalf("20/80 split wrong: %d/%d", cfg.MemResultBytes, cfg.MemListBytes)
	}
	if cfg.SSDResultBytes != 10*cfg.MemResultBytes || cfg.SSDListBytes != 100*cfg.MemListBytes {
		t.Fatal("SSD region ratios wrong")
	}
	if cfg.BlockBytes != 128<<10 || cfg.ResultEntryBytes != 20<<10 || cfg.WindowW != 5 {
		t.Fatalf("paper constants wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateBranches(t *testing.T) {
	base := testConfig(PolicyCBLRU)
	cases := []func(*Config){
		func(c *Config) { c.MemListBytes = 0 },
		func(c *Config) { c.SSDResultBytes = -1 },
		func(c *Config) { c.Policy = Policy(9) },
		func(c *Config) { c.SSDResultBytes = 1 },                      // below one block
		func(c *Config) { c.SSDListBytes = 1 },                        // below one block
		func(c *Config) { c.MemResultBytes = c.ResultEntryBytes - 1 }, // can't hold one entry
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestManagerAccessors(t *testing.T) {
	f := newFixture(t, testConfig(PolicyCBLRU))
	if f.m.Policy() != PolicyCBLRU {
		t.Fatal("Policy accessor wrong")
	}
	if f.m.NumDocs() != f.ix.NumDocs() {
		t.Fatal("NumDocs mismatch")
	}
	if f.m.ListBytes(3) != f.ix.ListBytes(3) {
		t.Fatal("ListBytes mismatch")
	}
}

func TestPlaceListExtentEvictionAndWorstCase(t *testing.T) {
	// Force the region into fragmentation so placement runs through the
	// eviction (step 4) and whole-list-sweep (step 5) paths.
	cfg := testConfig(PolicyCBLRU)
	cfg.MemListBytes = 512 << 10 // big L1 entries possible
	cfg.SSDListBytes = 6 * cfg.BlockBytes
	f := newFixture(t, cfg)

	// Fill the region with six 1-block entries via direct flushes.
	for i := 0; i < 6; i++ {
		ml := &memList{term: workload.TermID(100 + i), prefix: make([]byte, 8<<10),
			loadedAt: f.clock.Now()}
		f.m.termFreq[ml.term] = 5
		f.m.flushListToSSD(ml)
	}
	if f.m.icAlloc.FreeBytes() != 0 {
		t.Fatalf("region not full: %d free", f.m.icAlloc.FreeBytes())
	}
	// A 2-block entry cannot overwrite in place (no same-size candidate),
	// so placement must evict window entries (step 4).
	big := &memList{term: 50, prefix: make([]byte, 130<<10), loadedAt: f.clock.Now()}
	f.m.termFreq[big.term] = 50
	f.m.flushListToSSD(big)
	if f.m.ssdListFor(50) == nil {
		t.Fatal("2-block entry not placed")
	}
	if f.m.Stats().L2ListEvictions == 0 {
		t.Fatal("placement evicted nothing")
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A 4-block entry exceeds what the W=5 window can free next to the
	// 2-block resident: it must widen to the whole-list sweep (step 5).
	huge := &memList{term: 51, prefix: make([]byte, 450<<10), loadedAt: f.clock.Now()}
	f.m.termFreq[huge.term] = 80
	f.m.flushListToSSD(huge)
	if f.m.ssdListFor(51) == nil {
		t.Fatal("4-block entry not placed")
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropSSDListRewritesLargerPrefix(t *testing.T) {
	cfg := testConfig(PolicyCBLRU)
	f := newFixture(t, cfg)
	small := &memList{term: 60, prefix: make([]byte, 8<<10), loadedAt: f.clock.Now()}
	f.m.termFreq[60] = 10
	f.m.flushListToSSD(small)
	first := f.m.ssdListFor(60)
	if first == nil || first.validBytes != 8<<10 {
		t.Fatalf("first flush: %+v", first)
	}
	// A larger prefix replaces the old extent (dropSSDList path).
	bigger := &memList{term: 60, prefix: make([]byte, 200<<10), loadedAt: f.clock.Now()}
	f.m.flushListToSSD(bigger)
	second := f.m.ssdListFor(60)
	if second == nil || second.validBytes != 200<<10 {
		t.Fatalf("second flush: %+v", second)
	}
	if f.m.Stats().L2ListEvictions == 0 {
		t.Fatal("old extent not evicted")
	}
	if err := f.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
