package core

import (
	"fmt"

	"hybridstore/internal/cache"
	"hybridstore/internal/workload"
)

// maxL1EntryShare caps a single L1 list entry at this fraction of the list
// cache, so one giant inverted list cannot monopolize (or overflow) L1.
const maxL1EntryShare = 2

// ReadListRange implements engine.ListSource: it serves list bytes from the
// memory cache, then the SSD cache, then the backing index, charging each
// level's simulated cost, and caches what it read according to the active
// policy. This is the paper's Query Management path for inverted lists.
func (m *Manager) ReadListRange(t workload.TermID, off int64, p []byte) error {
	total := m.ix.ListBytes(t)
	if off < 0 || off+int64(len(p)) > total {
		return fmt.Errorf("core: term %d range [%d,+%d) outside %d-byte list",
			t, off, len(p), total)
	}
	m.noteTermAccess(t)
	m.stats.ListBytesRequested += int64(len(p))

	pos := off
	end := off + int64(len(p))

	// Level 1: memory prefix.
	var l1 *memList
	if e, ok := m.ic.Get(uint64(t)); ok {
		l1 = e.Value.(*memList)
		if m.listExpired(l1.loadedAt) {
			m.ic.RemoveEntry(e)
			m.repl.NoteL1ListEvict(t)
			m.stats.ListsExpired++
			l1 = nil
		} else {
			m.repl.NoteL1ListHit(t)
		}
	}
	if l1 != nil {
		if pos < int64(len(l1.prefix)) {
			n := int64(len(l1.prefix)) - pos
			if end-pos < n {
				n = end - pos
			}
			copy(p[:n], l1.prefix[pos:pos+n])
			m.memCost(int(n))
			m.noteTermSource(t, srcMem)
			m.stats.ListBytesFromMem += n
			m.emit(Event{Kind: EvListRead, Term: t, Level: LevelMem, Bytes: n})
			pos += n
		}
	}

	// Level 2: SSD-cached prefix. A device failure here must not fail the
	// query — the same bytes exist in the backing index, so a failed (or
	// breaker-gated) SSD read simply leaves pos where it is and the next
	// stage serves the remainder from the HDD.
	if pos < end {
		if sl := m.ssdListFor(t); sl != nil && pos < sl.validBytes {
			switch {
			case !m.ssdHealthy():
				m.noteDegraded()
			default:
				n := sl.validBytes - pos
				if end-pos < n {
					n = end - pos
				}
				if err := m.ssdRead(p[pos-off:pos-off+n], m.icBase()+sl.off+pos); err != nil {
					// Error accounted by ssdRead; retire the failing extent
					// so it is neither re-read nor re-allocated.
					m.quarantineSSDList(sl)
				} else {
					m.noteTermSource(t, srcSSD)
					m.stats.ListBytesFromSSD += n
					m.emit(Event{Kind: EvListRead, Term: t, Level: LevelSSD, Bytes: n})
					pos += n
					m.onSSDListHit(t, sl)
				}
			}
		}
	}

	// Backing store: the on-disk index.
	hddTail := false
	if pos < end {
		if err := m.ix.ReadListRange(t, pos, p[pos-off:]); err != nil {
			return fmt.Errorf("core: index read: %w", err)
		}
		m.noteTermSource(t, srcHDD)
		m.stats.ListBytesFromHDD += end - pos
		m.stats.ListReqBytesFromHDD += end - pos
		m.emit(Event{Kind: EvListRead, Term: t, Level: LevelHDD, Bytes: end - pos})
		pos = end
		hddTail = true
	}

	m.fillL1List(t, l1, off, p, total, hddTail)
	return nil
}

// ssdListFor returns the L2 entry for t: the static pin or the dynamic
// entry, whichever covers more of the list (a dynamic overlay may exceed a
// conservatively sized pin). Looking a dynamic entry up promotes it.
func (m *Manager) ssdListFor(t workload.TermID) *ssdList {
	var static *ssdList
	if sl, ok := m.icStatic[t]; ok {
		static = sl
	}
	if m.icLRU == nil {
		return static
	}
	if e, ok := m.icLRU.Get(uint64(t)); ok {
		dyn := e.Value.(*ssdList)
		if m.listExpired(dyn.loadedAt) {
			m.evictSSDList(e)
			m.stats.ListsExpired++
		} else if static == nil || dyn.validBytes > static.validBytes {
			return dyn
		}
	}
	return static
}

// onSSDListHit applies the hybrid-scheme state change of Fig 9: data read
// back from SSD to memory flips the entry to replaceable (the SSD copy may
// now be overwritten first) under the cost-based policies. Static entries
// never change state.
func (m *Manager) onSSDListHit(t workload.TermID, sl *ssdList) {
	if sl.static || !m.repl.FlipReplaceableOnHit() {
		return
	}
	sl.state = stateReplaceable
}

// fillL1List caches the bytes just served into the L1 prefix for t,
// respecting the policy's caching unit: the cost-based policies cache the
// contiguous used prefix (rounded up by the readahead quantum when the
// disk head is already positioned past the tail); plain LRU caches the
// whole list (classic list caching, the baseline's capacity handicap the
// paper calls out in §VII-A).
func (m *Manager) fillL1List(t workload.TermID, l1 *memList, off int64, p []byte, total int64, hddTail bool) {
	capBytes := m.ic.Capacity() / maxL1EntryShare

	// First-touch admission gate (the bidirectional filter's upward
	// direction); extensions of a resident prefix are always allowed.
	if l1 == nil && !m.repl.AdmitNewL1List(t) {
		return
	}

	if m.repl.WholeListL1() {
		if l1 != nil {
			return // whole list already resident
		}
		if total > capBytes {
			m.stats.ListsTooLargeForL1++
			return
		}
		whole := make([]byte, total)
		// Reuse the bytes already in hand; fetch the rest from the
		// hierarchy below L1 (SSD prefix if cached, index otherwise).
		copy(whole[off:], p)
		if off > 0 {
			m.readThrough(t, 0, whole[:off])
		}
		if rest := total - (off + int64(len(p))); rest > 0 {
			m.readThrough(t, off+int64(len(p)), whole[off+int64(len(p)):])
		}
		m.insertL1List(t, whole)
		return
	}

	// Cost-based policies: grow the contiguous prefix. Extension is only
	// possible when the served range connects to the existing prefix.
	have := int64(0)
	if l1 != nil {
		have = int64(len(l1.prefix))
	}
	endPos := off + int64(len(p))
	if off > have || endPos <= have {
		return // gap, or nothing new
	}
	if endPos > capBytes {
		m.stats.ListsTooLargeForL1++
		return
	}

	// Readahead: the head just streamed to endPos, so extending the
	// prefix to the next quantum boundary costs transfer time only and
	// absorbs the small termination-point variance between queries.
	target := endPos
	if hddTail && m.cfg.PrefetchQuantum > 0 {
		q := m.cfg.PrefetchQuantum
		target = (endPos + q - 1) / q * q
		if target > total {
			target = total
		}
		if target > capBytes {
			target = endPos
		}
	}

	grown := make([]byte, target)
	if l1 != nil {
		copy(grown, l1.prefix)
	}
	copy(grown[off:], p)
	if target > endPos {
		m.readThrough(t, endPos, grown[endPos:])
		m.stats.ListBytesPrefetched += target - endPos
	}

	if l1 == nil {
		m.insertL1List(t, grown)
		return
	}
	e, _ := m.ic.Peek(uint64(t))
	need := int64(len(grown)) - e.Size
	m.makeRoomIC(need, e)
	if !m.ic.Fits(need) {
		return // could not free enough without touching this entry
	}
	l1.prefix = grown
	m.ic.Resize(e, int64(len(grown)))
	m.memCost(int(need))
}

// readThrough reads list bytes from below L1 (SSD prefix then index),
// without touching L1 state. Used by whole-list fetches. An SSD failure
// falls through to the index, and stats/events are only recorded for bytes
// actually delivered — a failed read must not count as served traffic.
func (m *Manager) readThrough(t workload.TermID, off int64, p []byte) {
	pos := off
	end := off + int64(len(p))
	if sl := m.ssdListFor(t); sl != nil && pos < sl.validBytes {
		switch {
		case !m.ssdHealthy():
			m.noteDegraded()
		default:
			n := sl.validBytes - pos
			if end-pos < n {
				n = end - pos
			}
			if err := m.ssdRead(p[:n], m.icBase()+sl.off+pos); err != nil {
				m.quarantineSSDList(sl)
			} else {
				m.stats.ListBytesFromSSD += n
				m.noteTermSource(t, srcSSD)
				m.emit(Event{Kind: EvListRead, Term: t, Level: LevelSSD, Bytes: n})
				pos += n
			}
		}
	}
	if pos < end {
		if err := m.ix.ReadListRange(t, pos, p[pos-off:]); err == nil {
			m.stats.ListBytesFromHDD += end - pos
			m.noteTermSource(t, srcHDD)
			m.emit(Event{Kind: EvListRead, Term: t, Level: LevelHDD, Bytes: end - pos})
		}
	}
}

// insertL1List makes room and inserts a fresh L1 entry for t.
func (m *Manager) insertL1List(t workload.TermID, data []byte) {
	size := int64(len(data))
	if size == 0 || size > m.ic.Capacity()/maxL1EntryShare {
		return
	}
	m.makeRoomIC(size, nil)
	if !m.ic.Fits(size) {
		return
	}
	m.ic.Put(uint64(t), size, &memList{term: t, prefix: data, loadedAt: m.clock.Now()})
	m.repl.NoteL1ListInsert(t)
	m.memCost(int(size))
}

// makeRoomIC evicts L1 list entries until need bytes fit, never evicting
// exclude. Victim choice is the policy's: strict LRU for the baseline, or
// minimum efficiency value within the replace-first window for the
// cost-based policies (Fig 12).
func (m *Manager) makeRoomIC(need int64, exclude *cache.Entry) {
	for !m.ic.Fits(need) {
		victim := m.chooseL1ListVictim(exclude)
		if victim == nil {
			return
		}
		ml := victim.Value.(*memList)
		m.ic.RemoveEntry(victim)
		m.repl.NoteL1ListEvict(ml.term)
		m.stats.L1ListEvictions++
		m.emit(Event{Kind: EvListEvict, Term: ml.term, Level: LevelMem})
		m.flushListToSSD(ml)
	}
}

// chooseL1ListVictim picks the next L1 list eviction victim by delegating
// to the active replacement policy.
func (m *Manager) chooseL1ListVictim(exclude *cache.Entry) *cache.Entry {
	return m.repl.ChooseL1ListVictim(exclude)
}
