package core

import (
	"hybridstore/internal/cache"
	"hybridstore/internal/workload"
)

// icBase returns the device offset of the inverted-list region of the SSD
// cache file (it follows the result region).
func (m *Manager) icBase() int64 { return m.cfg.SSDResultBytes }

// flushListToSSD handles an inverted list evicted from L1 (Fig 5): data
// selection (Formulas 1–2, TEV), then placement and replacement in the L2
// list region (Fig 13). Under the LRU baseline the whole list is written
// wherever it fits, at entry granularity.
func (m *Manager) flushListToSSD(ml *memList) {
	if m.listExpired(ml.loadedAt) {
		m.stats.ListsExpired++
		return
	}
	if m.icLRU == nil {
		m.stats.ListsDiscarded++
		return
	}
	if !m.ssdHealthy() {
		// Breaker open: discard instead of writing into a failing device.
		// The list is still fully readable from the backing index.
		m.stats.ListsDiscarded++
		return
	}
	if !m.repl.BlockAlignedL2() {
		m.flushListLRU(ml)
		return
	}

	// Formula 1: SC = ceil(SI × PU / SB). SI is the list's full size and
	// PU its utilization rate, so SI × PU is the used prefix — which is
	// exactly the byte length this entry holds in memory. Rounding that up
	// to whole blocks keeps every SSD extent block-aligned (§VI-A).
	si := int64(len(ml.prefix))
	sc := m.scBlocks(si, 1)
	scBytes := sc * m.cfg.BlockBytes

	// Selection: the admission policy decides what is worth flash writes
	// (the paper's EV-vs-TEV check under the cost-based policies; the
	// frequency doorkeeper additionally rejects one-hit wonders).
	if !m.adm.AdmitList(ml.term, sc) {
		m.stats.ListsDiscarded++
		return
	}
	if scBytes > m.icLRU.Capacity() {
		m.stats.ListsDiscarded++
		return
	}

	validBytes := si
	if validBytes > scBytes {
		validBytes = scBytes
	}

	// Unnecessary-write elimination: if the SSD already holds at least as
	// much of this list — a static pin, or a replaceable copy left by an
	// earlier read-back — revalidate instead of rewriting (§VI-C1,
	// write-buffer check). A dynamic overlay larger than a conservative
	// static pin is allowed: it fills the pin's coverage gap.
	if existing := m.ssdListFor(ml.term); existing != nil {
		if existing.validBytes >= validBytes {
			existing.state = stateNormal
			m.stats.ListWritesElided++
			return
		}
		m.dropSSDList(existing)
	}
	if e, ok := m.icLRU.Peek(uint64(ml.term)); ok {
		// A smaller dynamic duplicate may survive behind a static pin that
		// ssdListFor preferred; replace it rather than double-insert.
		m.evictSSDList(e)
	}

	off, ok := m.placeListExtent(scBytes)
	if !ok {
		m.stats.ListsDiscarded++
		return
	}

	// One large sequential block-aligned write (the data placement win of
	// §VI-B): the prefix padded to whole blocks.
	buf := make([]byte, scBytes)
	copy(buf, ml.prefix[:validBytes])
	if err := m.ssdWrite(buf, m.icBase()+off); err != nil {
		// Error accounted by ssdWrite; the list is lost from the cache
		// (still on the HDD) and the failed extent is retired.
		m.quarantine(m.icAlloc, off, scBytes)
		m.stats.ListsDiscarded++
		return
	}
	m.stats.ListBytesToSSD += scBytes
	m.stats.ListWritesToSSD++
	m.emit(Event{Kind: EvListFlush, Term: ml.term, Bytes: scBytes})

	sl := &ssdList{term: ml.term, off: off, blockBytes: scBytes, validBytes: validBytes, loadedAt: ml.loadedAt}
	m.icLRU.Put(uint64(ml.term), scBytes, sl)
}

// placeListExtent finds a block-aligned extent of scBytes in the list
// region, applying the CBLRU placement ladder of Fig 13:
//
//  1. free space;
//  2. a replaceable same-size entry in the replace-first region;
//  3. any same-size entry in the replace-first region;
//  4. assemble room by evicting replace-first-region entries;
//  5. widen the search to the whole LRU list (the paper's rare worst case).
func (m *Manager) placeListExtent(scBytes int64) (int64, bool) {
	if off, ok := m.icAlloc.AllocAligned(scBytes, m.cfg.BlockBytes); ok {
		return off, true
	}
	window := m.icLRU.TailWindow(m.cfg.WindowW)

	// Steps 2 and 3: in-place overwrite of a same-size entry, replaceable
	// entries first.
	for _, wantReplaceable := range []bool{true, false} {
		for _, e := range window {
			sl := e.Value.(*ssdList)
			if sl.blockBytes != scBytes {
				continue
			}
			if wantReplaceable != (sl.state == stateReplaceable) {
				continue
			}
			off := sl.off
			m.icLRU.RemoveEntry(e)
			m.stats.L2ListEvictions++
			m.stats.ListOverwritesInPlace++
			m.emit(Event{Kind: EvListEvict, Term: sl.term, Level: LevelSSD})
			return off, true
		}
	}

	// Step 4: evict window entries (lowest EV first among the window's
	// LRU-ordered snapshot) until an aligned allocation succeeds.
	for _, e := range window {
		if _, stillThere := m.icLRU.Peek(e.Key); !stillThere {
			continue
		}
		m.evictSSDList(e)
		if off, ok := m.icAlloc.AllocAligned(scBytes, m.cfg.BlockBytes); ok {
			return off, true
		}
	}

	// Step 5: whole-list sweep, LRU to MRU.
	var off int64
	ok := false
	m.icLRU.Ascend(func(e *cache.Entry) bool {
		m.evictSSDList(e)
		off, ok = m.icAlloc.AllocAligned(scBytes, m.cfg.BlockBytes)
		return !ok
	})
	if ok {
		m.stats.ListPlacementWorstCase++
	}
	return off, ok
}

// evictSSDList removes a dynamic L2 list entry, returns its extent to the
// allocator and trims it on the device.
func (m *Manager) evictSSDList(e *cache.Entry) {
	sl := e.Value.(*ssdList)
	m.icLRU.RemoveEntry(e)
	m.icAlloc.Free(sl.off, sl.blockBytes)
	m.ssdTrim(m.icBase()+sl.off, sl.blockBytes)
	m.stats.L2ListEvictions++
	m.emit(Event{Kind: EvListEvict, Term: sl.term, Level: LevelSSD})
}

// quarantineSSDList retires an L2 list entry whose device range failed:
// the entry is unmapped and its extent quarantined instead of freed (and
// not trimmed — the range is abandoned, not recycled). Works for both
// dynamic entries and static pins; a pin that cannot be read is worthless.
func (m *Manager) quarantineSSDList(sl *ssdList) {
	if sl.static {
		delete(m.icStatic, sl.term)
	} else if e, ok := m.icLRU.Peek(uint64(sl.term)); ok && e.Value.(*ssdList) == sl {
		m.icLRU.RemoveEntry(e)
	}
	m.quarantine(m.icAlloc, sl.off, sl.blockBytes)
	m.stats.L2ListEvictions++
	m.emit(Event{Kind: EvListEvict, Term: sl.term, Level: LevelSSD})
}

// dropSSDList removes a specific term's dynamic entry (used before
// rewriting a larger prefix for the same term).
func (m *Manager) dropSSDList(sl *ssdList) {
	if sl.static {
		return
	}
	if e, ok := m.icLRU.Peek(uint64(sl.term)); ok {
		m.evictSSDList(e)
	}
}

// flushListLRU is the baseline path: the entire list is written to the SSD
// at byte granularity wherever the allocator finds room, evicting strictly
// by recency. No alignment, no selection, no trim — the write pattern the
// paper blames for block erasures.
func (m *Manager) flushListLRU(ml *memList) {
	size := int64(len(ml.prefix))
	if size == 0 || size > m.icLRU.Capacity() {
		m.stats.ListsDiscarded++
		return
	}
	if old, ok := m.icLRU.Peek(uint64(ml.term)); ok {
		// Baseline rewrites unconditionally; free the stale copy first.
		sl := old.Value.(*ssdList)
		m.icLRU.RemoveEntry(old)
		m.icAlloc.Free(sl.off, sl.blockBytes)
		m.stats.L2ListEvictions++
		m.emit(Event{Kind: EvListEvict, Term: sl.term, Level: LevelSSD})
	}
	var off int64
	for {
		var ok bool
		if off, ok = m.icAlloc.Alloc(size); ok {
			break
		}
		lru := m.icLRU.LRUEntry()
		if lru == nil {
			m.stats.ListsDiscarded++
			return
		}
		sl := lru.Value.(*ssdList)
		m.icLRU.RemoveEntry(lru)
		m.icAlloc.Free(sl.off, sl.blockBytes)
		m.stats.L2ListEvictions++
		m.emit(Event{Kind: EvListEvict, Term: sl.term, Level: LevelSSD})
	}
	if err := m.ssdWrite(ml.prefix, m.icBase()+off); err != nil {
		m.quarantine(m.icAlloc, off, size)
		m.stats.ListsDiscarded++
		return
	}
	m.stats.ListBytesToSSD += size
	m.stats.ListWritesToSSD++
	m.emit(Event{Kind: EvListFlush, Term: ml.term, Bytes: size})
	m.icLRU.Put(uint64(ml.term), size, &ssdList{
		term: ml.term, off: off, blockBytes: size, validBytes: size, loadedAt: ml.loadedAt,
	})
}

// PinList loads the first scBlocks-sized prefix of term t (per Formulas
// 1–2 with the current PU estimate) into the static partition of the L2
// list region. It returns false when the static budget cannot hold the
// entry. Only meaningful under CBSLRU; see Manager.StaticListBudget.
func (m *Manager) PinList(t workload.TermID) bool {
	if !m.repl.UsesStaticPartition() || m.icLRU == nil {
		return false
	}
	if _, ok := m.icStatic[t]; ok {
		return true
	}
	if !m.ssdHealthy() {
		return false
	}
	total := m.ix.ListBytes(t)
	si := int64(float64(total) * m.pu(t))
	if si < 1 {
		si = 1
	}
	sc := m.scBlocks(si, 1) // si is already the used size; PU applied once
	scBytes := sc * m.cfg.BlockBytes
	if m.staticListBytes()+scBytes > m.StaticListBudget() {
		return false
	}
	off, ok := m.icAlloc.AllocAligned(scBytes, m.cfg.BlockBytes)
	if !ok {
		return false
	}
	validBytes := si
	if validBytes > scBytes {
		validBytes = scBytes
	}
	if validBytes > total {
		validBytes = total
	}
	buf := make([]byte, scBytes)
	if err := m.ix.ReadListRange(t, 0, buf[:validBytes]); err != nil {
		m.icAlloc.Free(off, scBytes)
		return false
	}
	if err := m.ssdWrite(buf, m.icBase()+off); err != nil {
		m.quarantine(m.icAlloc, off, scBytes)
		return false
	}
	m.stats.ListBytesToSSD += scBytes
	m.stats.ListWritesToSSD++
	m.emit(Event{Kind: EvListFlush, Term: t, Bytes: scBytes})
	m.icStatic[t] = &ssdList{
		term: t, off: off, blockBytes: scBytes, validBytes: validBytes, static: true,
	}
	return true
}

// StaticListBudget returns the byte budget of the static list partition.
func (m *Manager) StaticListBudget() int64 {
	if !m.repl.UsesStaticPartition() || m.icLRU == nil {
		return 0
	}
	return int64(float64(m.cfg.SSDListBytes) * m.cfg.StaticFraction)
}

func (m *Manager) staticListBytes() int64 {
	var n int64
	for _, sl := range m.icStatic {
		n += sl.blockBytes
	}
	return n
}

// StaticPinnedLists returns the pinned term set (for inspection).
func (m *Manager) StaticPinnedLists() []workload.TermID {
	out := make([]workload.TermID, 0, len(m.icStatic))
	for t := range m.icStatic {
		out = append(out, t)
	}
	return out
}
