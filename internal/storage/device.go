// Package storage defines the block-device abstraction shared by the HDD
// and SSD simulators and by the cache hierarchy built on top of them.
//
// A Device stores real bytes — reads return what writes stored — and
// charges every operation's cost against a shared simulated clock
// (internal/simclock). Returning the charged latency from each call lets
// callers attribute device time to higher-level operations (a query, a
// cache flush) without re-deriving it.
package storage

import (
	"errors"
	"fmt"
	"time"
)

// OpKind identifies one class of device operation for tracing and stats.
type OpKind uint8

// The operation kinds recorded by devices.
const (
	OpRead OpKind = iota
	OpWrite
	OpTrim
	OpErase // internal to SSDs; surfaced for wear accounting
)

// String returns the lowercase name of the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTrim:
		return "trim"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op describes one completed device operation. Offset and Len are in bytes.
type Op struct {
	Device  string
	Kind    OpKind
	Offset  int64
	Len     int
	Latency time.Duration
	// Seek is true when the operation paid mechanical positioning cost
	// (HDD head movement + rotation). Always false on solid-state devices.
	Seek bool
}

// Device is a byte-addressed simulated block device.
//
// Implementations advance their simulated clock by the cost of each
// operation and return that cost. Offsets and lengths are validated against
// the device size; partial I/O never occurs — an operation either fully
// succeeds or fails without side effects.
type Device interface {
	// Name identifies the device in traces and error messages.
	Name() string
	// Size returns the device capacity in bytes.
	Size() int64
	// ReadAt fills p with the bytes at off and returns the simulated cost.
	ReadAt(p []byte, off int64) (time.Duration, error)
	// WriteAt stores p at off and returns the simulated cost.
	WriteAt(p []byte, off int64) (time.Duration, error)
}

// Trimmer is implemented by devices that support discarding a byte range
// (SSD Trim). Trimmed ranges read back as zeros.
type Trimmer interface {
	Trim(off int64, n int64) (time.Duration, error)
}

// ErrOutOfRange reports an access beyond the device capacity.
var ErrOutOfRange = errors.New("storage: access out of device range")

// CheckRange validates an access of n bytes at off against a device of the
// given size, returning ErrOutOfRange (wrapped with context) on violation.
func CheckRange(name string, size, off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > size {
		return fmt.Errorf("%s: [%d,+%d) outside [0,%d): %w", name, off, n, size, ErrOutOfRange)
	}
	return nil
}
