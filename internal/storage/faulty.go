package storage

// Fault injection for simulated devices.
//
// The cache hierarchy's error paths are unreachable while the simulated
// devices always succeed, which makes them untested dead code. FaultyDevice
// wraps any Device and injects the failure modes production SSDs exhibit —
// transient per-operation errors, latency spikes, and sticky bad extents
// that fail every subsequent access — deterministically, from a
// simclock.RNG, so a faulted run replays bit-for-bit.
//
// Read, write and trim are configured independently (OpFaults per class);
// a run with only write faults exercises flush paths without disturbing
// read-backs, and vice versa.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hybridstore/internal/simclock"
)

// ErrInjected marks a device error produced by fault injection, so callers
// and tests can distinguish injected faults from genuine range violations.
var ErrInjected = errors.New("storage: injected device fault")

// OpFaults configures fault injection for one operation class.
type OpFaults struct {
	// ErrProb is the per-operation probability of failing with ErrInjected.
	ErrProb float64
	// SlowProb is the per-operation probability of a latency spike.
	SlowProb float64
	// SlowFactor multiplies the operation's latency on a spike (default 10).
	SlowFactor float64
}

func (f OpFaults) enabled() bool { return f.ErrProb > 0 || f.SlowProb > 0 }

// FaultSpec configures a FaultyDevice. The zero value injects nothing.
type FaultSpec struct {
	// Seed derives the injector's private RNG stream when no RNG is passed
	// to NewFaultyDevice, keeping faulted runs reproducible.
	Seed uint64
	// Read, Write and Trim configure each operation class independently.
	Read, Write, Trim OpFaults
	// StickyProb is the probability that an injected error additionally
	// marks the touched byte range as a sticky bad extent: every later
	// read or write overlapping it fails (trims still succeed — discarding
	// a dead block is always possible).
	StickyProb float64
	// BadExtents pre-seeds this many sticky bad extents of BadExtentBytes
	// each at deterministic offsets, modelling a device that shipped with
	// (or developed) dead regions before the run began.
	BadExtents int
	// BadExtentBytes sizes pre-seeded bad extents (default 128 KiB).
	BadExtentBytes int64
}

// Enabled reports whether the spec injects any fault at all.
func (s FaultSpec) Enabled() bool {
	return s.Read.enabled() || s.Write.enabled() || s.Trim.enabled() || s.BadExtents > 0
}

// FaultStats counts what the injector has done so far.
type FaultStats struct {
	ReadErrors    int64
	WriteErrors   int64
	TrimErrors    int64
	LatencySpikes int64
	// BadExtentHits counts operations failed because they overlapped a
	// sticky bad extent (also included in the per-class error counts).
	BadExtentHits int64
	// BadExtents and BadExtentBytes describe the current sticky set.
	BadExtents     int
	BadExtentBytes int64
}

// FaultyDevice wraps a Device, injecting deterministic faults per FaultSpec.
// It implements Trimmer whenever the wrapped device does; trims on a
// non-Trimmer inner device fail cleanly instead of panicking.
type FaultyDevice struct {
	mu    sync.Mutex
	inner Device
	spec  FaultSpec
	rng   *simclock.RNG
	bad   []extent // sticky bad ranges, unordered (small)
	stats FaultStats
}

// NewFaultyDevice wraps inner with the given fault spec. rng may be nil, in
// which case a private stream is derived from spec.Seed. Pre-seeded bad
// extents are placed immediately, so their layout depends only on the seed.
func NewFaultyDevice(inner Device, spec FaultSpec, rng *simclock.RNG) *FaultyDevice {
	if rng == nil {
		rng = simclock.NewRNG(spec.Seed ^ 0xfa017dead)
	}
	if spec.Read.SlowFactor <= 1 {
		spec.Read.SlowFactor = 10
	}
	if spec.Write.SlowFactor <= 1 {
		spec.Write.SlowFactor = 10
	}
	if spec.Trim.SlowFactor <= 1 {
		spec.Trim.SlowFactor = 10
	}
	if spec.BadExtentBytes <= 0 {
		spec.BadExtentBytes = 128 << 10
	}
	d := &FaultyDevice{inner: inner, spec: spec, rng: rng}
	for i := 0; i < spec.BadExtents && inner.Size() > 0; i++ {
		n := spec.BadExtentBytes
		if n > inner.Size() {
			n = inner.Size()
		}
		off := int64(rng.Uint64() % uint64(inner.Size()-n+1))
		d.bad = append(d.bad, extent{off, n})
	}
	d.stats.BadExtents = len(d.bad)
	d.stats.BadExtentBytes = int64(len(d.bad)) * spec.BadExtentBytes
	return d
}

// Name implements Device.
func (d *FaultyDevice) Name() string { return d.inner.Name() }

// Size implements Device.
func (d *FaultyDevice) Size() int64 { return d.inner.Size() }

// Inner returns the wrapped device.
func (d *FaultyDevice) Inner() Device { return d.inner }

// Stats returns a snapshot of the injector's counters.
func (d *FaultyDevice) FaultStats() FaultStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// overlapsBadLocked reports whether [off,+n) touches a sticky bad extent.
// Caller holds d.mu.
func (d *FaultyDevice) overlapsBadLocked(off int64, n int) bool {
	end := off + int64(n)
	for _, e := range d.bad {
		if off < e.off+e.len && e.off < end {
			return true
		}
	}
	return false
}

// injectLocked decides the fate of one operation: returns an error to
// inject, or a latency multiplier (1 = none). Caller holds d.mu; counters
// are updated here.
func (d *FaultyDevice) injectLocked(kind OpKind, f OpFaults, off int64, n int, errCount *int64) (error, float64) {
	if kind != OpTrim && d.overlapsBadLocked(off, n) {
		*errCount++
		d.stats.BadExtentHits++
		return fmt.Errorf("%s: bad extent, %s [%d,+%d): %w", d.inner.Name(), kind, off, n, ErrInjected), 1
	}
	if f.ErrProb > 0 && d.rng.Float64() < f.ErrProb {
		*errCount++
		if d.spec.StickyProb > 0 && d.rng.Float64() < d.spec.StickyProb {
			d.bad = append(d.bad, extent{off, int64(n)})
			d.stats.BadExtents = len(d.bad)
			d.stats.BadExtentBytes += int64(n)
		}
		return fmt.Errorf("%s: injected %s error at [%d,+%d): %w", d.inner.Name(), kind, off, n, ErrInjected), 1
	}
	if f.SlowProb > 0 && d.rng.Float64() < f.SlowProb {
		d.stats.LatencySpikes++
		return nil, f.SlowFactor
	}
	return nil, 1
}

// ReadAt implements Device. Injected failures happen before the inner read
// and have no side effects; latency spikes inflate the returned cost (the
// caller charges it, matching how the cache manager accounts device time).
func (d *FaultyDevice) ReadAt(p []byte, off int64) (time.Duration, error) {
	if err := CheckRange(d.inner.Name(), d.inner.Size(), off, len(p)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	err, factor := d.injectLocked(OpRead, d.spec.Read, off, len(p), &d.stats.ReadErrors)
	d.mu.Unlock()
	if err != nil {
		return 0, err
	}
	lat, err := d.inner.ReadAt(p, off)
	return time.Duration(float64(lat) * factor), err
}

// WriteAt implements Device.
func (d *FaultyDevice) WriteAt(p []byte, off int64) (time.Duration, error) {
	if err := CheckRange(d.inner.Name(), d.inner.Size(), off, len(p)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	err, factor := d.injectLocked(OpWrite, d.spec.Write, off, len(p), &d.stats.WriteErrors)
	d.mu.Unlock()
	if err != nil {
		return 0, err
	}
	lat, err := d.inner.WriteAt(p, off)
	return time.Duration(float64(lat) * factor), err
}

// Trim implements Trimmer on top of a trim-capable inner device.
func (d *FaultyDevice) Trim(off, n int64) (time.Duration, error) {
	t, ok := d.inner.(Trimmer)
	if !ok {
		return 0, fmt.Errorf("%s: device does not support trim", d.inner.Name())
	}
	d.mu.Lock()
	err, factor := d.injectLocked(OpTrim, d.spec.Trim, off, int(n), &d.stats.TrimErrors)
	d.mu.Unlock()
	if err != nil {
		return 0, err
	}
	lat, err := t.Trim(off, n)
	return time.Duration(float64(lat) * factor), err
}
