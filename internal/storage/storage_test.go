package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hybridstore/internal/simclock"
)

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{OpRead: "read", OpWrite: "write", OpTrim: "trim", OpErase: "erase"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := OpKind(99).String(); got != "opkind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestCheckRange(t *testing.T) {
	if err := CheckRange("d", 100, 0, 100); err != nil {
		t.Errorf("full-range access rejected: %v", err)
	}
	for _, c := range []struct{ off, n int64 }{{-1, 1}, {0, 101}, {100, 1}, {50, -1}} {
		err := CheckRange("d", 100, c.off, int(c.n))
		if !errors.Is(err, ErrOutOfRange) {
			t.Errorf("CheckRange(%d,%d) = %v, want ErrOutOfRange", c.off, c.n, err)
		}
	}
}

func TestSparseBufferReadBack(t *testing.T) {
	b := NewSparseBuffer(1 << 20)
	data := []byte("hello, sparse world")
	b.WriteAt(data, 12345)
	got := make([]byte, len(data))
	b.ReadAt(got, 12345)
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestSparseBufferZeroFill(t *testing.T) {
	b := NewSparseBuffer(1 << 20)
	got := make([]byte, 64)
	b.ReadAt(got, 500000)
	for _, v := range got {
		if v != 0 {
			t.Fatal("unwritten region not zero")
		}
	}
}

func TestSparseBufferCrossChunk(t *testing.T) {
	b := NewSparseBuffer(1 << 20)
	data := make([]byte, 300<<10) // spans three 128 KiB chunks
	for i := range data {
		data[i] = byte(i * 7)
	}
	off := int64(sparseChunkSize - 100)
	b.WriteAt(data, off)
	got := make([]byte, len(data))
	b.ReadAt(got, off)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk read mismatch")
	}
}

func TestSparseBufferZeroReleasesChunks(t *testing.T) {
	b := NewSparseBuffer(1 << 20)
	data := make([]byte, sparseChunkSize)
	b.WriteAt(data, 0)
	if b.AllocatedBytes() == 0 {
		t.Fatal("write did not allocate")
	}
	b.Zero(0, sparseChunkSize)
	if b.AllocatedBytes() != 0 {
		t.Fatal("Zero of whole chunk did not release it")
	}
}

func TestSparseBufferPartialZero(t *testing.T) {
	b := NewSparseBuffer(1 << 20)
	b.WriteAt([]byte{1, 2, 3, 4}, 10)
	b.Zero(11, 2)
	got := make([]byte, 4)
	b.ReadAt(got, 10)
	if !bytes.Equal(got, []byte{1, 0, 0, 4}) {
		t.Fatalf("partial zero wrong: %v", got)
	}
}

func TestSparseBufferRoundTripProperty(t *testing.T) {
	f := func(data []byte, offRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		b := NewSparseBuffer(1 << 20)
		off := int64(offRaw)
		b.WriteAt(data, off)
		got := make([]byte, len(data))
		b.ReadAt(got, off)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemDeviceReadWrite(t *testing.T) {
	clk := simclock.New()
	d := NewMemDevice("mem", 1<<20, clk, DefaultMemParams())
	data := []byte("abcdef")
	wlat, err := d.WriteAt(data, 100)
	if err != nil {
		t.Fatal(err)
	}
	if wlat <= 0 {
		t.Fatal("write latency not positive")
	}
	got := make([]byte, len(data))
	rlat, err := d.ReadAt(got, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q", got)
	}
	if clk.Now() != wlat+rlat {
		t.Fatalf("clock %v != %v", clk.Now(), wlat+rlat)
	}
}

func TestMemDeviceOutOfRange(t *testing.T) {
	d := NewMemDevice("mem", 100, simclock.New(), DefaultMemParams())
	if _, err := d.ReadAt(make([]byte, 10), 95); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.WriteAt(make([]byte, 10), 95); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemDeviceStatsAndHook(t *testing.T) {
	d := NewMemDevice("mem", 1<<20, simclock.New(), DefaultMemParams())
	var ops []Op
	d.SetOpHook(func(op Op) { ops = append(ops, op) })
	d.WriteAt(make([]byte, 10), 0)
	d.ReadAt(make([]byte, 5), 0)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BytesRead != 5 || s.BytesWrit != 10 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.Operations != 2 || s.TotalTime <= 0 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if len(ops) != 2 || ops[0].Kind != OpWrite || ops[1].Kind != OpRead {
		t.Fatalf("hook saw %+v", ops)
	}
	if s.AvgAccessTime() <= 0 {
		t.Fatal("AvgAccessTime not positive")
	}
}

func TestMemDeviceLatencyScalesWithSize(t *testing.T) {
	clk := simclock.New()
	d := NewMemDevice("mem", 1<<24, clk, DefaultMemParams())
	small, _ := d.ReadAt(make([]byte, 1), 0)
	large, _ := d.ReadAt(make([]byte, 1<<20), 0)
	if large <= small {
		t.Fatalf("1 MiB read (%v) not slower than 1 B read (%v)", large, small)
	}
}

func TestDeviceStatsAvgEmptyZero(t *testing.T) {
	var s DeviceStats
	if s.AvgAccessTime() != 0 {
		t.Fatal("empty stats avg != 0")
	}
}

func TestAllocatorFirstFit(t *testing.T) {
	a := NewAllocator(1000)
	off1, ok := a.Alloc(100)
	if !ok || off1 != 0 {
		t.Fatalf("first alloc at %d ok=%v", off1, ok)
	}
	off2, ok := a.Alloc(200)
	if !ok || off2 != 100 {
		t.Fatalf("second alloc at %d ok=%v", off2, ok)
	}
	if a.FreeBytes() != 700 {
		t.Fatalf("FreeBytes = %d", a.FreeBytes())
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(100)
	if _, ok := a.Alloc(101); ok {
		t.Fatal("oversized alloc succeeded")
	}
	a.Alloc(100)
	if _, ok := a.Alloc(1); ok {
		t.Fatal("alloc from empty pool succeeded")
	}
}

func TestAllocatorFreeCoalesces(t *testing.T) {
	a := NewAllocator(300)
	o1, _ := a.Alloc(100)
	o2, _ := a.Alloc(100)
	o3, _ := a.Alloc(100)
	a.Free(o1, 100)
	a.Free(o3, 100)
	if a.FragmentCount() != 2 {
		t.Fatalf("fragments = %d, want 2", a.FragmentCount())
	}
	a.Free(o2, 100)
	if a.FragmentCount() != 1 {
		t.Fatalf("fragments after middle free = %d, want 1", a.FragmentCount())
	}
	if a.LargestFree() != 300 {
		t.Fatalf("LargestFree = %d", a.LargestFree())
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	a := NewAllocator(100)
	off, _ := a.Alloc(50)
	a.Free(off, 50)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(off, 50)
}

func TestAllocatorAligned(t *testing.T) {
	a := NewAllocator(10000)
	a.Alloc(100) // misalign the free pool
	off, ok := a.AllocAligned(256, 512)
	if !ok {
		t.Fatal("aligned alloc failed")
	}
	if off%512 != 0 {
		t.Fatalf("offset %d not 512-aligned", off)
	}
	// The padding before the aligned extent stays allocatable.
	padOff, ok := a.Alloc(10)
	if !ok || padOff != 100 {
		t.Fatalf("padding alloc at %d ok=%v, want 100", padOff, ok)
	}
}

func TestAllocatorFragmentationBlocksLargeAlloc(t *testing.T) {
	a := NewAllocator(300)
	o1, _ := a.Alloc(100)
	_, _ = a.Alloc(100)
	o3, _ := a.Alloc(100)
	a.Free(o1, 100)
	a.Free(o3, 100)
	if a.FreeBytes() != 200 {
		t.Fatalf("FreeBytes = %d", a.FreeBytes())
	}
	if _, ok := a.Alloc(150); ok {
		t.Fatal("allocation across fragments should fail")
	}
}

func TestAllocatorReserve(t *testing.T) {
	a := NewAllocator(1000)
	if !a.Reserve(100, 200) {
		t.Fatal("reserve of free range failed")
	}
	if a.FreeBytes() != 800 {
		t.Fatalf("FreeBytes = %d", a.FreeBytes())
	}
	if a.Reserve(150, 50) {
		t.Fatal("overlapping reserve succeeded")
	}
	if a.Reserve(900, 200) {
		t.Fatal("out-of-range reserve succeeded")
	}
	// The split remainders are still allocatable and coalesce on free.
	if off, ok := a.Alloc(100); !ok || off != 0 {
		t.Fatalf("pre-gap alloc at %d ok=%v", off, ok)
	}
	a.Free(100, 200)
	a.Free(0, 100)
	if a.FragmentCount() != 1 || a.FreeBytes() != 1000 {
		t.Fatalf("after frees: frags=%d free=%d", a.FragmentCount(), a.FreeBytes())
	}
}

func TestAllocatorReserveExactExtent(t *testing.T) {
	a := NewAllocator(100)
	if !a.Reserve(0, 100) {
		t.Fatal("whole-space reserve failed")
	}
	if _, ok := a.Alloc(1); ok {
		t.Fatal("alloc succeeded after full reserve")
	}
}

func TestAllocatorProperty(t *testing.T) {
	// Property: after any sequence of allocs and frees, FreeBytes plus the
	// sum of live extents equals the managed size.
	f := func(ops []uint16) bool {
		const size = 1 << 16
		a := NewAllocator(size)
		type ext struct{ off, n int64 }
		var live []ext
		var liveBytes int64
		for _, raw := range ops {
			if raw%2 == 0 || len(live) == 0 {
				n := int64(raw%1024) + 1
				if off, ok := a.Alloc(n); ok {
					live = append(live, ext{off, n})
					liveBytes += n
				}
			} else {
				i := int(raw) % len(live)
				a.Free(live[i].off, live[i].n)
				liveBytes -= live[i].n
				live = append(live[:i], live[i+1:]...)
			}
		}
		return a.FreeBytes()+liveBytes == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMemParamsDefaults(t *testing.T) {
	clk := simclock.New()
	d := NewMemDevice("m", 1024, clk, MemParams{})
	lat, err := d.ReadAt(make([]byte, 1), 0)
	if err != nil || lat < 100*time.Nanosecond {
		t.Fatalf("defaulted device lat=%v err=%v", lat, err)
	}
}
