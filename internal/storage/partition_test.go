package storage

import (
	"bytes"
	"errors"
	"testing"

	"hybridstore/internal/simclock"
)

func TestPartitionReadWriteOffsets(t *testing.T) {
	clk := simclock.New()
	parent := NewMemDevice("disk", 1<<20, clk, DefaultMemParams())
	part := NewPartition("p1", parent, 4096, 8192)

	data := []byte("partitioned")
	if _, err := part.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	// Visible through the parent at base+offset.
	got := make([]byte, len(data))
	parent.ReadAt(got, 4096+100)
	if !bytes.Equal(got, data) {
		t.Fatalf("parent sees %q", got)
	}
	// And through the partition at its own offset.
	got2 := make([]byte, len(data))
	if _, err := part.ReadAt(got2, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatalf("partition reads %q", got2)
	}
}

func TestPartitionBounds(t *testing.T) {
	parent := NewMemDevice("disk", 1<<20, simclock.New(), DefaultMemParams())
	part := NewPartition("p1", parent, 0, 1024)
	if _, err := part.ReadAt(make([]byte, 10), 1020); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read past partition end: %v", err)
	}
	if _, err := part.WriteAt(make([]byte, 1), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative write: %v", err)
	}
	if part.Size() != 1024 || part.Name() != "p1" || part.Parent() != parent {
		t.Fatal("accessors wrong")
	}
}

func TestPartitionLayoutValidation(t *testing.T) {
	parent := NewMemDevice("disk", 1024, simclock.New(), DefaultMemParams())
	for _, c := range []struct{ base, size int64 }{
		{-1, 10}, {0, 0}, {1000, 100}, {0, 1025},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("partition (%d,%d) accepted", c.base, c.size)
				}
			}()
			NewPartition("bad", parent, c.base, c.size)
		}()
	}
}

func TestPartitionTrimNoopWithoutSupport(t *testing.T) {
	parent := NewMemDevice("disk", 1024, simclock.New(), DefaultMemParams())
	part := NewPartition("p", parent, 0, 512)
	lat, err := part.Trim(0, 256)
	if err != nil || lat != 0 {
		t.Fatalf("trim on non-trimmer: %v, %v", lat, err)
	}
	if _, err := part.Trim(0, 1024); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("oversize trim: %v", err)
	}
}

func TestPartitionChargesParentClock(t *testing.T) {
	clk := simclock.New()
	parent := NewMemDevice("disk", 1<<20, clk, DefaultMemParams())
	part := NewPartition("p", parent, 1000, 1000)
	before := clk.Now()
	part.ReadAt(make([]byte, 100), 0)
	if clk.Now() == before {
		t.Fatal("partition read charged no time")
	}
}
