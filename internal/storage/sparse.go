package storage

// SparseBuffer is a chunked, lazily allocated byte store used as the backing
// medium of simulated devices. Unwritten regions read back as zeros, so a
// multi-gigabyte simulated device only consumes host memory proportional to
// the bytes actually written.
//
// SparseBuffer is not safe for concurrent use; devices serialize access
// under their own locks.

const sparseChunkSize = 128 << 10 // 128 KiB, matches the SSD block size

// SparseBuffer holds size logical bytes in sparse chunks.
type SparseBuffer struct {
	size   int64
	chunks map[int64][]byte // chunk index -> chunk contents
}

// NewSparseBuffer returns an all-zero buffer of the given size in bytes.
func NewSparseBuffer(size int64) *SparseBuffer {
	if size < 0 {
		panic("storage: negative sparse buffer size")
	}
	return &SparseBuffer{size: size, chunks: make(map[int64][]byte)}
}

// Size returns the logical size in bytes.
func (b *SparseBuffer) Size() int64 { return b.size }

// AllocatedBytes reports host memory consumed by written chunks.
func (b *SparseBuffer) AllocatedBytes() int64 {
	return int64(len(b.chunks)) * sparseChunkSize
}

// ReadAt copies len(p) bytes at off into p. The range must be in bounds.
func (b *SparseBuffer) ReadAt(p []byte, off int64) {
	if err := CheckRange("sparse", b.size, off, len(p)); err != nil {
		panic(err)
	}
	for len(p) > 0 {
		ci := off / sparseChunkSize
		co := off % sparseChunkSize
		n := sparseChunkSize - co
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		if chunk, ok := b.chunks[ci]; ok {
			copy(p[:n], chunk[co:co+n])
		} else {
			for i := int64(0); i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		off += n
	}
}

// WriteAt stores p at off. The range must be in bounds.
func (b *SparseBuffer) WriteAt(p []byte, off int64) {
	if err := CheckRange("sparse", b.size, off, len(p)); err != nil {
		panic(err)
	}
	for len(p) > 0 {
		ci := off / sparseChunkSize
		co := off % sparseChunkSize
		n := sparseChunkSize - co
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		chunk, ok := b.chunks[ci]
		if !ok {
			chunk = make([]byte, sparseChunkSize)
			b.chunks[ci] = chunk
		}
		copy(chunk[co:co+n], p[:n])
		p = p[n:]
		off += n
	}
}

// Zero clears n bytes at off, releasing whole chunks back to the allocator
// when the cleared range covers them fully.
func (b *SparseBuffer) Zero(off, n int64) {
	if err := CheckRange("sparse", b.size, off, int(n)); err != nil {
		panic(err)
	}
	for n > 0 {
		ci := off / sparseChunkSize
		co := off % sparseChunkSize
		span := sparseChunkSize - co
		if n < span {
			span = n
		}
		if co == 0 && span == sparseChunkSize {
			delete(b.chunks, ci)
		} else if chunk, ok := b.chunks[ci]; ok {
			for i := co; i < co+span; i++ {
				chunk[i] = 0
			}
		}
		off += span
		n -= span
	}
}
