package storage

import (
	"sync"
	"time"

	"hybridstore/internal/simclock"
)

// MemDevice models main memory as a storage device: uniform access latency
// plus bandwidth-proportional transfer time. It anchors the fast end of the
// hierarchy so that every level of the two-level cache charges simulated
// time through the same interface.
type MemDevice struct {
	mu    sync.Mutex
	name  string
	clock *simclock.Clock
	buf   *SparseBuffer

	accessLatency time.Duration // fixed per-operation cost
	nsPerByte     float64       // transfer cost per byte in nanoseconds

	stats DeviceStats
	onOp  func(Op)
}

// MemParams configures a MemDevice.
type MemParams struct {
	// AccessLatency is the fixed cost per operation. Defaults to 100 ns.
	AccessLatency time.Duration
	// BytesPerSecond is the transfer bandwidth. Defaults to 10 GiB/s.
	BytesPerSecond int64
}

// DefaultMemParams returns DRAM-like timing.
func DefaultMemParams() MemParams {
	return MemParams{AccessLatency: 100 * time.Nanosecond, BytesPerSecond: 10 << 30}
}

// NewMemDevice builds a memory device of the given size sharing clock.
func NewMemDevice(name string, size int64, clock *simclock.Clock, p MemParams) *MemDevice {
	if p.AccessLatency == 0 {
		p.AccessLatency = 100 * time.Nanosecond
	}
	if p.BytesPerSecond == 0 {
		p.BytesPerSecond = 10 << 30
	}
	return &MemDevice{
		name:          name,
		clock:         clock,
		buf:           NewSparseBuffer(size),
		accessLatency: p.AccessLatency,
		nsPerByte:     float64(time.Second) / float64(p.BytesPerSecond),
	}
}

// Name implements Device.
func (d *MemDevice) Name() string { return d.name }

// Size implements Device.
func (d *MemDevice) Size() int64 { return d.buf.Size() }

// SetOpHook installs a callback invoked after every completed operation.
func (d *MemDevice) SetOpHook(fn func(Op)) {
	d.mu.Lock()
	d.onOp = fn
	d.mu.Unlock()
}

func (d *MemDevice) cost(n int) time.Duration {
	return d.accessLatency + time.Duration(float64(n)*d.nsPerByte)
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := CheckRange(d.name, d.buf.Size(), off, len(p)); err != nil {
		return 0, err
	}
	d.buf.ReadAt(p, off)
	lat := d.cost(len(p))
	d.clock.Advance(lat)
	d.stats.Record(OpRead, len(p), lat)
	d.emit(Op{Device: d.name, Kind: OpRead, Offset: off, Len: len(p), Latency: lat})
	return lat, nil
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := CheckRange(d.name, d.buf.Size(), off, len(p)); err != nil {
		return 0, err
	}
	d.buf.WriteAt(p, off)
	lat := d.cost(len(p))
	d.clock.Advance(lat)
	d.stats.Record(OpWrite, len(p), lat)
	d.emit(Op{Device: d.name, Kind: OpWrite, Offset: off, Len: len(p), Latency: lat})
	return lat, nil
}

func (d *MemDevice) emit(op Op) {
	if d.onOp != nil {
		d.onOp(op)
	}
}

// Stats returns a snapshot of the device's operation counters.
func (d *MemDevice) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// DeviceStats aggregates per-device operation counts, bytes and time.
type DeviceStats struct {
	Reads      int64
	Writes     int64
	Trims      int64
	Erases     int64
	BytesRead  int64
	BytesWrit  int64
	ReadTime   time.Duration
	WriteTime  time.Duration
	TrimTime   time.Duration
	EraseTime  time.Duration
	TotalTime  time.Duration
	Operations int64
}

// Record accounts one completed operation of the given kind, payload size
// and latency. Device implementations call it under their own lock.
func (s *DeviceStats) Record(kind OpKind, n int, lat time.Duration) {
	s.Operations++
	s.TotalTime += lat
	switch kind {
	case OpRead:
		s.Reads++
		s.BytesRead += int64(n)
		s.ReadTime += lat
	case OpWrite:
		s.Writes++
		s.BytesWrit += int64(n)
		s.WriteTime += lat
	case OpTrim:
		s.Trims++
		s.TrimTime += lat
	case OpErase:
		s.Erases++
		s.EraseTime += lat
	}
}

// AvgAccessTime returns mean time per operation, or 0 with no operations.
func (s DeviceStats) AvgAccessTime() time.Duration {
	if s.Operations == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(s.Operations)
}
