package storage

import (
	"fmt"
	"sort"
)

// Allocator manages byte extents inside a device's address space with
// first-fit allocation and free-extent coalescing. The index layout uses it
// to place posting lists on the backing store, and the SSD cache file uses
// it to place result blocks and cached list prefixes.
//
// Allocator is not safe for concurrent use.
type Allocator struct {
	size        int64
	free        []extent // sorted by offset, non-adjacent (always coalesced)
	quarantined []extent // retired extents, never returned to the free pool
}

type extent struct {
	off int64
	len int64
}

// NewAllocator manages [0, size).
func NewAllocator(size int64) *Allocator {
	if size < 0 {
		panic("storage: negative allocator size")
	}
	a := &Allocator{size: size}
	if size > 0 {
		a.free = []extent{{0, size}}
	}
	return a
}

// Size returns the managed address-space size.
func (a *Allocator) Size() int64 { return a.size }

// FreeBytes returns the total unallocated space.
func (a *Allocator) FreeBytes() int64 {
	var n int64
	for _, e := range a.free {
		n += e.len
	}
	return n
}

// LargestFree returns the size of the largest free extent.
func (a *Allocator) LargestFree() int64 {
	var n int64
	for _, e := range a.free {
		if e.len > n {
			n = e.len
		}
	}
	return n
}

// Alloc reserves n bytes and returns the extent offset. The second result
// is false when no single free extent can hold n bytes (external
// fragmentation counts: the allocator never splits an allocation).
func (a *Allocator) Alloc(n int64) (int64, bool) {
	if n <= 0 {
		panic(fmt.Sprintf("storage: Alloc(%d)", n))
	}
	for i := range a.free {
		if a.free[i].len >= n {
			off := a.free[i].off
			a.free[i].off += n
			a.free[i].len -= n
			if a.free[i].len == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return off, true
		}
	}
	return 0, false
}

// AllocAligned reserves n bytes at an offset that is a multiple of align.
func (a *Allocator) AllocAligned(n, align int64) (int64, bool) {
	if n <= 0 || align <= 0 {
		panic(fmt.Sprintf("storage: AllocAligned(%d,%d)", n, align))
	}
	for i := range a.free {
		e := a.free[i]
		aligned := (e.off + align - 1) / align * align
		pad := aligned - e.off
		if e.len >= pad+n {
			// Carve [aligned, aligned+n) out of e.
			a.free = append(a.free[:i], a.free[i+1:]...)
			if pad > 0 {
				a.insertFree(extent{e.off, pad})
			}
			if rest := e.len - pad - n; rest > 0 {
				a.insertFree(extent{aligned + n, rest})
			}
			return aligned, true
		}
	}
	return 0, false
}

// Reserve claims the exact extent [off, off+n) from the free pool,
// returning false when any part of it is already allocated. Cache-mapping
// restoration uses it to re-establish a saved layout.
func (a *Allocator) Reserve(off, n int64) bool {
	if n <= 0 || off < 0 || off+n > a.size {
		return false
	}
	for i := range a.free {
		e := a.free[i]
		if off < e.off || off+n > e.off+e.len {
			continue
		}
		// Split e into up-to-two remainders around the reservation.
		a.free = append(a.free[:i], a.free[i+1:]...)
		if pre := off - e.off; pre > 0 {
			a.insertFree(extent{e.off, pre})
		}
		if post := (e.off + e.len) - (off + n); post > 0 {
			a.insertFree(extent{off + n, post})
		}
		return true
	}
	return false
}

// Free returns the extent [off, off+n) to the free pool, coalescing with
// neighbours. Freeing an unallocated or overlapping range panics: that is
// always a bookkeeping bug in the caller.
func (a *Allocator) Free(off, n int64) {
	if n <= 0 || off < 0 || off+n > a.size {
		panic(fmt.Sprintf("storage: Free(%d,%d) out of range", off, n))
	}
	for _, e := range a.free {
		if off < e.off+e.len && e.off < off+n {
			panic(fmt.Sprintf("storage: double free of [%d,+%d)", off, n))
		}
	}
	a.insertFree(extent{off, n})
}

func (a *Allocator) insertFree(e extent) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= e.off })
	a.free = append(a.free, extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = e
	// Coalesce with successor then predecessor.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].len == a.free[i+1].off {
		a.free[i].len += a.free[i+1].len
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].len == a.free[i].off {
		a.free[i-1].len += a.free[i].len
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// Quarantine retires the currently-allocated extent [off, off+n): instead
// of returning to the free pool it is withheld from all future allocations.
// The cache manager quarantines extents whose device range failed, so a bad
// region is not immediately handed back out. Quarantining a range that
// overlaps the free pool panics, like a double Free would.
func (a *Allocator) Quarantine(off, n int64) {
	if n <= 0 || off < 0 || off+n > a.size {
		panic(fmt.Sprintf("storage: Quarantine(%d,%d) out of range", off, n))
	}
	for _, e := range a.free {
		if off < e.off+e.len && e.off < off+n {
			panic(fmt.Sprintf("storage: quarantine of free range [%d,+%d)", off, n))
		}
	}
	for _, e := range a.quarantined {
		if off < e.off+e.len && e.off < off+n {
			panic(fmt.Sprintf("storage: double quarantine of [%d,+%d)", off, n))
		}
	}
	a.quarantined = append(a.quarantined, extent{off, n})
}

// QuarantinedBytes returns the total space retired by Quarantine.
func (a *Allocator) QuarantinedBytes() int64 {
	var n int64
	for _, e := range a.quarantined {
		n += e.len
	}
	return n
}

// FragmentCount returns the number of disjoint free extents; 1 means the
// free space is fully contiguous.
func (a *Allocator) FragmentCount() int { return len(a.free) }
