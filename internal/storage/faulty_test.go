package storage

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hybridstore/internal/simclock"
)

// newFaultyMem builds a FaultyDevice over a fresh 1 MiB MemDevice.
func newFaultyMem(t *testing.T, spec FaultSpec) (*FaultyDevice, *MemDevice) {
	t.Helper()
	mem := NewMemDevice("ssd", 1<<20, simclock.New(), DefaultMemParams())
	return NewFaultyDevice(mem, spec, nil), mem
}

// trimMem adds a no-op Trim to MemDevice so trim injection is testable.
type trimMem struct {
	*MemDevice
	trims int
}

func (d *trimMem) Trim(off, n int64) (time.Duration, error) {
	d.trims++
	return 0, nil
}

func TestFaultSpecEnabled(t *testing.T) {
	if (FaultSpec{}).Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	cases := []FaultSpec{
		{Read: OpFaults{ErrProb: 0.1}},
		{Write: OpFaults{SlowProb: 0.1}},
		{Trim: OpFaults{ErrProb: 1}},
		{BadExtents: 1},
	}
	for i, s := range cases {
		if !s.Enabled() {
			t.Errorf("case %d: spec %+v reports disabled", i, s)
		}
	}
}

func TestFaultyZeroSpecTransparent(t *testing.T) {
	d, mem := newFaultyMem(t, FaultSpec{})
	want := []byte("pass-through payload")
	if _, err := d.WriteAt(want, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if _, err := d.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back wrong bytes")
	}
	if fs := d.FaultStats(); fs != (FaultStats{}) {
		t.Fatalf("zero spec produced fault stats %+v", fs)
	}
	if d.Inner() != Device(mem) {
		t.Fatal("Inner() does not return the wrapped device")
	}
	if d.Name() != mem.Name() || d.Size() != mem.Size() {
		t.Fatal("Name/Size not forwarded")
	}
}

func TestFaultyDeterministicReplay(t *testing.T) {
	spec := FaultSpec{
		Seed:       42,
		Read:       OpFaults{ErrProb: 0.3, SlowProb: 0.2, SlowFactor: 4},
		Write:      OpFaults{ErrProb: 0.3},
		StickyProb: 0.5,
	}
	run := func() ([]bool, FaultStats) {
		d, _ := newFaultyMem(t, spec)
		var outcomes []bool
		buf := make([]byte, 512)
		for i := 0; i < 500; i++ {
			off := int64(i%1000) * 512
			var err error
			if i%3 == 0 {
				_, err = d.WriteAt(buf, off)
			} else {
				_, err = d.ReadAt(buf, off)
			}
			outcomes = append(outcomes, err != nil)
		}
		return outcomes, d.FaultStats()
	}
	o1, s1 := run()
	o2, s2 := run()
	if s1 != s2 {
		t.Fatalf("fault stats diverge across identical runs: %+v vs %+v", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("op %d outcome diverges across identical runs", i)
		}
	}
	if s1.ReadErrors == 0 || s1.WriteErrors == 0 {
		t.Fatalf("expected injected errors at 30%%, got %+v", s1)
	}
}

func TestFaultyErrorRateRoughlyMatchesProbability(t *testing.T) {
	spec := FaultSpec{Seed: 7, Read: OpFaults{ErrProb: 0.25}}
	d, _ := newFaultyMem(t, spec)
	buf := make([]byte, 64)
	const ops = 4000
	var fails int
	for i := 0; i < ops; i++ {
		if _, err := d.ReadAt(buf, int64(i%1000)*64); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: error %v is not ErrInjected", i, err)
			}
			fails++
		}
	}
	rate := float64(fails) / ops
	if rate < 0.15 || rate > 0.35 {
		t.Fatalf("observed error rate %.3f, want ~0.25", rate)
	}
	if got := d.FaultStats().ReadErrors; got != int64(fails) {
		t.Fatalf("ReadErrors %d != observed failures %d", got, fails)
	}
}

func TestFaultyWriteFailureHasNoSideEffects(t *testing.T) {
	d, mem := newFaultyMem(t, FaultSpec{Write: OpFaults{ErrProb: 1}})
	if _, err := mem.WriteAt([]byte("baseline"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("overwrite"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write did not fail: %v", err)
	}
	got := make([]byte, 8)
	if _, err := mem.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("baseline")) {
		t.Fatalf("failed write mutated device: %q", got)
	}
}

func TestFaultyLatencySpikes(t *testing.T) {
	d, mem := newFaultyMem(t, FaultSpec{Read: OpFaults{SlowProb: 1, SlowFactor: 4}})
	buf := make([]byte, 4096)
	base, err := mem.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	spiked, err := d.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spiked < 3*base {
		t.Fatalf("spiked latency %v not inflated over base %v", spiked, base)
	}
	if d.FaultStats().LatencySpikes != 1 {
		t.Fatalf("LatencySpikes = %d, want 1", d.FaultStats().LatencySpikes)
	}
}

func TestFaultyStickyBadExtent(t *testing.T) {
	mem := NewMemDevice("ssd", 1<<20, simclock.New(), DefaultMemParams())
	inner := &trimMem{MemDevice: mem}
	d := NewFaultyDevice(inner, FaultSpec{
		Write:      OpFaults{ErrProb: 1},
		StickyProb: 1,
	}, nil)

	// The first write fails and marks [0,+4096) sticky.
	if _, err := d.WriteAt(make([]byte, 4096), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write did not fail: %v", err)
	}
	// Reads have no ErrProb of their own, so a failing read proves the
	// sticky extent (any overlap counts).
	buf := make([]byte, 64)
	if _, err := d.ReadAt(buf, 4000); !errors.Is(err, ErrInjected) {
		t.Fatalf("read overlapping bad extent did not fail: %v", err)
	}
	// Outside the extent, reads pass.
	if _, err := d.ReadAt(buf, 8192); err != nil {
		t.Fatalf("read outside bad extent failed: %v", err)
	}
	// Trim of the bad range still succeeds: discarding dead blocks is
	// always possible.
	if _, err := d.Trim(0, 4096); err != nil {
		t.Fatalf("trim over bad extent failed: %v", err)
	}
	if inner.trims != 1 {
		t.Fatalf("trim not forwarded: %d", inner.trims)
	}
	fs := d.FaultStats()
	if fs.BadExtents != 1 || fs.BadExtentHits != 1 || fs.BadExtentBytes != 4096 {
		t.Fatalf("sticky accounting wrong: %+v", fs)
	}
}

func TestFaultyPreseededBadExtents(t *testing.T) {
	spec := FaultSpec{Seed: 3, BadExtents: 3, BadExtentBytes: 4096}
	d, _ := newFaultyMem(t, spec)
	fs := d.FaultStats()
	if fs.BadExtents != 3 || fs.BadExtentBytes != 3*4096 {
		t.Fatalf("pre-seed accounting wrong: %+v", fs)
	}
	// A full scan in extent-sized steps must hit every bad range.
	buf := make([]byte, 4096)
	var fails int
	for off := int64(0); off+4096 <= d.Size(); off += 4096 {
		if _, err := d.ReadAt(buf, off); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("off %d: %v", off, err)
			}
			fails++
		}
	}
	// Extents may straddle scan steps (they land at arbitrary offsets), so
	// each of the 3 hits 1–2 scan reads; overlap between extents can only
	// lower the count.
	if fails < 1 || fails > 6 {
		t.Fatalf("scan hit %d failing reads, want 1..6 for 3 extents", fails)
	}
}

func TestFaultyTrimWithoutTrimmer(t *testing.T) {
	d, _ := newFaultyMem(t, FaultSpec{})
	if _, err := d.Trim(0, 4096); err == nil {
		t.Fatal("trim on a non-Trimmer inner device succeeded")
	}
	if d.FaultStats().TrimErrors != 0 {
		t.Fatal("unsupported trim counted as injected error")
	}
}

func TestFaultyRangeCheckPrecedesInjection(t *testing.T) {
	d, _ := newFaultyMem(t, FaultSpec{Read: OpFaults{ErrProb: 1}})
	buf := make([]byte, 64)
	if _, err := d.ReadAt(buf, d.Size()); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range read: got %v, want ErrOutOfRange", err)
	}
	if d.FaultStats().ReadErrors != 0 {
		t.Fatal("range violation counted as injected error")
	}
}
