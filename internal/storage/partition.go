package storage

import (
	"fmt"
	"time"
)

// Partition exposes a contiguous byte range of a parent device as a
// Device of its own. The cache manager's result and list regions, and any
// experiment that wants several logical volumes on one simulated drive,
// can address [0, Size) without repeating base-offset arithmetic. All
// timing and wear remain the parent's.
type Partition struct {
	parent Device
	name   string
	base   int64
	size   int64
}

// NewPartition carves [base, base+size) out of parent. It panics when the
// range does not fit — partitioning is setup code, and a bad layout should
// fail immediately.
func NewPartition(name string, parent Device, base, size int64) *Partition {
	if base < 0 || size <= 0 || base+size > parent.Size() {
		panic(fmt.Sprintf("storage: partition %q [%d,+%d) outside parent %q of %d bytes",
			name, base, size, parent.Name(), parent.Size()))
	}
	return &Partition{parent: parent, name: name, base: base, size: size}
}

// Name implements Device.
func (p *Partition) Name() string { return p.name }

// Size implements Device.
func (p *Partition) Size() int64 { return p.size }

// Parent returns the underlying device.
func (p *Partition) Parent() Device { return p.parent }

// ReadAt implements Device.
func (p *Partition) ReadAt(buf []byte, off int64) (time.Duration, error) {
	if err := CheckRange(p.name, p.size, off, len(buf)); err != nil {
		return 0, err
	}
	return p.parent.ReadAt(buf, p.base+off)
}

// WriteAt implements Device.
func (p *Partition) WriteAt(buf []byte, off int64) (time.Duration, error) {
	if err := CheckRange(p.name, p.size, off, len(buf)); err != nil {
		return 0, err
	}
	return p.parent.WriteAt(buf, p.base+off)
}

// Trim implements Trimmer when the parent supports it; otherwise it is a
// zero-cost no-op.
func (p *Partition) Trim(off, n int64) (time.Duration, error) {
	if err := CheckRange(p.name, p.size, off, int(n)); err != nil {
		return 0, err
	}
	if t, ok := p.parent.(Trimmer); ok {
		return t.Trim(p.base+off, n)
	}
	return 0, nil
}
