package metrics

import (
	"math"
	"testing"
)

func TestExpBounds(t *testing.T) {
	b := ExpBounds(16, 2, 5)
	want := []int64{16, 32, 64, 128, 256}
	if len(b) != len(want) {
		t.Fatalf("len=%d want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bound[%d]=%d want %d", i, b[i], want[i])
		}
	}
	// A small factor must still produce strictly ascending bounds.
	b = ExpBounds(1, 1.01, 10)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %v", i, b)
		}
	}
}

func TestExpBoundsPanics(t *testing.T) {
	for _, c := range []struct {
		name   string
		start  int64
		factor float64
		n      int
	}{
		{"zero start", 0, 2, 3},
		{"factor one", 10, 1, 3},
		{"zero n", 10, 2, 0},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			ExpBounds(c.start, c.factor, c.n)
		})
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	for _, p := range []float64{50, 95, 99, 100} {
		if got := h.Quantile(p); got != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %v, want 0", p, got)
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All mass in one bucket: quantiles interpolate across that bucket's
	// range and never escape it.
	h := NewHistogram([]int64{10, 100, 1000})
	for i := 0; i < 8; i++ {
		h.Observe(50) // bucket (10, 100]
	}
	for _, p := range []float64{1, 50, 99, 100} {
		q := h.Quantile(p)
		if q <= 10 || q > 100 {
			t.Fatalf("Quantile(%v)=%v escaped the (10,100] bucket", p, q)
		}
	}
	if got := h.Quantile(100); got != 100 {
		t.Fatalf("Quantile(100)=%v, want upper bound 100", got)
	}
}

func TestQuantileOverflowClampsToLastBound(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	h.Observe(5000) // above the last bound
	h.Observe(7000)
	for _, p := range []float64{50, 99} {
		if got := h.Quantile(p); got != 100 {
			t.Fatalf("Quantile(%v)=%v, want clamp to last bound 100", p, got)
		}
	}
	// Sum and Mean still see the exact values.
	if h.Sum() != 12000 {
		t.Fatalf("Sum=%d want 12000", h.Sum())
	}
	if h.Mean() != 6000 {
		t.Fatalf("Mean=%v want 6000", h.Mean())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// 100 observations uniform over four buckets: p50 must land at the
	// upper edge of the second bucket, p25 at the first.
	h := NewHistogram([]int64{25, 50, 75, 100})
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(50); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Quantile(50)=%v want 50", got)
	}
	if got := h.Quantile(25); math.Abs(got-25) > 1e-9 {
		t.Fatalf("Quantile(25)=%v want 25", got)
	}
	if got := h.Quantile(100); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Quantile(100)=%v want 100", got)
	}
	// Monotone in p.
	prev := 0.0
	for p := 1.0; p <= 100; p++ {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone: p=%v q=%v prev=%v", p, q, prev)
		}
		prev = q
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	h := NewHistogram([]int64{10})
	for _, p := range []float64{0, -1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Quantile(%v) should panic", p)
				}
			}()
			h.Quantile(p)
		}()
	}
}
