// Package metrics provides the counters, ratio trackers and latency
// histograms used to report every experiment in the reproduction.
//
// The types here count simulated quantities (simulated nanoseconds, cache
// probes, device operations); nothing in this package touches wall-clock
// time. All types are safe for concurrent use unless stated otherwise.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
}

// Ratio tracks hit/miss style outcomes and reports the hit fraction.
type Ratio struct {
	mu     sync.Mutex
	hits   int64
	misses int64
}

// Hit records a positive outcome.
func (r *Ratio) Hit() {
	r.mu.Lock()
	r.hits++
	r.mu.Unlock()
}

// Miss records a negative outcome.
func (r *Ratio) Miss() {
	r.mu.Lock()
	r.misses++
	r.mu.Unlock()
}

// Record registers hit if ok is true and a miss otherwise.
func (r *Ratio) Record(ok bool) {
	if ok {
		r.Hit()
	} else {
		r.Miss()
	}
}

// Hits returns the number of positive outcomes recorded.
func (r *Ratio) Hits() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits
}

// Misses returns the number of negative outcomes recorded.
func (r *Ratio) Misses() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.misses
}

// Total returns the number of outcomes recorded.
func (r *Ratio) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits + r.misses
}

// Value returns hits/(hits+misses), or 0 when nothing has been recorded.
func (r *Ratio) Value() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := r.hits + r.misses
	if total == 0 {
		return 0
	}
	return float64(r.hits) / float64(total)
}

// Reset zeroes both tallies.
func (r *Ratio) Reset() {
	r.mu.Lock()
	r.hits, r.misses = 0, 0
	r.mu.Unlock()
}

// LatencyRecorder accumulates a stream of simulated latencies and reports
// count, mean, min, max and percentiles. Percentile queries sort a private
// copy of the samples, so they are cheap to record and O(n log n) to query.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{min: math.MaxInt64}
}

// Record adds one latency sample. Negative samples are rejected with a
// panic: simulated operations never complete before they start.
func (l *LatencyRecorder) Record(d time.Duration) {
	if d < 0 {
		panic("metrics: negative latency sample")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = append(l.samples, d)
	l.sum += d
	if d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
}

// Count returns the number of samples recorded.
func (l *LatencyRecorder) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Sum returns the total of all samples.
func (l *LatencyRecorder) Sum() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sum
}

// Mean returns the arithmetic mean of the samples, or 0 with no samples.
func (l *LatencyRecorder) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	return l.sum / time.Duration(len(l.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (l *LatencyRecorder) Min() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	return l.min
}

// Max returns the largest sample, or 0 with no samples.
func (l *LatencyRecorder) Max() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank, or 0 with no samples.
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,100]", p))
	}
	l.mu.Lock()
	cp := make([]time.Duration, len(l.samples))
	copy(cp, l.samples)
	l.mu.Unlock()
	if len(cp) == 0 {
		return 0
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}

// Reset discards all samples.
func (l *LatencyRecorder) Reset() {
	l.mu.Lock()
	l.samples = l.samples[:0]
	l.sum = 0
	l.min = math.MaxInt64
	l.max = 0
	l.mu.Unlock()
}

// Snapshot is a point-in-time summary of a LatencyRecorder.
type Snapshot struct {
	Count int
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Snapshot summarizes the recorder.
func (l *LatencyRecorder) Snapshot() Snapshot {
	return Snapshot{
		Count: l.Count(),
		Mean:  l.Mean(),
		Min:   l.Min(),
		Max:   l.Max(),
		P50:   l.Percentile(50),
		P95:   l.Percentile(95),
		P99:   l.Percentile(99),
	}
}

// String renders the snapshot in a compact human-readable form.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.Min, s.P50, s.P95, s.P99, s.Max)
}
