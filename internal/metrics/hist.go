package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// ExpBounds returns n strictly ascending bucket bounds starting at start
// and multiplying by factor, for log-spaced histograms (latencies, sizes).
// It panics on a non-positive start, a factor <= 1 or n < 1.
func ExpBounds(start int64, factor float64, n int) []int64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBounds needs start > 0, factor > 1, n >= 1")
	}
	out := make([]int64, n)
	v := float64(start)
	for i := range out {
		b := int64(math.Round(v))
		if i > 0 && b <= out[i-1] {
			b = out[i-1] + 1
		}
		out[i] = b
		v *= factor
	}
	return out
}

// Histogram buckets integer-valued observations (sizes, counts, ranks) into
// caller-defined boundaries. Bucket i covers values v with
// bounds[i-1] < v <= bounds[i]; an implicit final bucket catches everything
// above the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64
	counts []int64
	total  int64
	sum    int64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. It panics if bounds is empty or not strictly ascending.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	cp := make([]int64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[idx]++
	h.total++
	h.sum += v
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Sum returns the running sum of all observed values.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the p-th percentile (0 < p <= 100) from the bucket
// counts by linear interpolation inside the bucket holding the rank.
// Returns 0 for an empty histogram. Observations that landed in the
// overflow bucket (above the last bound) are clamped to the last bound —
// the histogram does not retain their exact values.
func (h *Histogram) Quantile(p float64) float64 {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: quantile %v out of (0,100]", p))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: exact values are gone; the last bound is
			// the tightest lower bound the histogram can certify.
			return float64(h.bounds[len(h.bounds)-1])
		}
		lo := int64(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		// Position of the rank inside this bucket, in (0, 1].
		frac := float64(rank-(cum-c)) / float64(c)
		return float64(lo) + frac*float64(hi-lo)
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Buckets returns a copy of (upper bound, count) pairs; the final pair has
// bound -1 meaning "overflow" (values above the last bound).
type Bucket struct {
	UpperBound int64 // -1 for the overflow bucket
	Count      int64
}

// Buckets returns the current bucket contents.
func (h *Histogram) Buckets() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Bucket, 0, len(h.counts))
	for i, c := range h.counts {
		b := int64(-1)
		if i < len(h.bounds) {
			b = h.bounds[i]
		}
		out = append(out, Bucket{UpperBound: b, Count: c})
	}
	return out
}

// String renders the histogram one bucket per line.
func (h *Histogram) String() string {
	var sb strings.Builder
	for _, b := range h.Buckets() {
		if b.UpperBound < 0 {
			fmt.Fprintf(&sb, "  >last: %d\n", b.Count)
		} else {
			fmt.Fprintf(&sb, "  <=%d: %d\n", b.UpperBound, b.Count)
		}
	}
	return sb.String()
}

// Table formats experiment output rows with aligned columns. It is the one
// formatter shared by every benchmark harness so the printed tables look
// identical across experiments.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hkr := range t.header {
		widths[i] = len(hkr)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				for p := len(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
