package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero counter not zero")
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero counter")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 10000 {
		t.Fatalf("Value = %d, want 10000", got)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	r.Hit()
	r.Hit()
	r.Hit()
	r.Miss()
	if got := r.Value(); got != 0.75 {
		t.Fatalf("Value = %v, want 0.75", got)
	}
	if r.Hits() != 3 || r.Misses() != 1 || r.Total() != 4 {
		t.Fatalf("tallies wrong: %d/%d/%d", r.Hits(), r.Misses(), r.Total())
	}
	r.Record(true)
	r.Record(false)
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
	r.Reset()
	if r.Total() != 0 {
		t.Fatal("Reset did not clear ratio")
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	l := NewLatencyRecorder()
	if l.Count() != 0 || l.Mean() != 0 || l.Min() != 0 || l.Max() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
	if l.Percentile(50) != 0 {
		t.Fatal("empty recorder percentile should be 0")
	}
}

func TestLatencyRecorderStats(t *testing.T) {
	l := NewLatencyRecorder()
	for _, d := range []time.Duration{10, 20, 30, 40} {
		l.Record(d * time.Microsecond)
	}
	if got := l.Count(); got != 4 {
		t.Fatalf("Count = %d", got)
	}
	if got := l.Mean(); got != 25*time.Microsecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := l.Min(); got != 10*time.Microsecond {
		t.Fatalf("Min = %v", got)
	}
	if got := l.Max(); got != 40*time.Microsecond {
		t.Fatalf("Max = %v", got)
	}
	if got := l.Sum(); got != 100*time.Microsecond {
		t.Fatalf("Sum = %v", got)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	l := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i))
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{{50, 50}, {95, 95}, {99, 99}, {100, 100}, {1, 1}}
	for _, c := range cases {
		if got := l.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLatencyPercentileBounds(t *testing.T) {
	l := NewLatencyRecorder()
	l.Record(1)
	for _, p := range []float64{0, -1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			l.Percentile(p)
		}()
	}
}

func TestLatencyNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative latency did not panic")
		}
	}()
	NewLatencyRecorder().Record(-1)
}

func TestLatencyReset(t *testing.T) {
	l := NewLatencyRecorder()
	l.Record(5)
	l.Reset()
	if l.Count() != 0 || l.Mean() != 0 || l.Min() != 0 {
		t.Fatal("Reset did not clear recorder")
	}
	l.Record(7)
	if l.Min() != 7 || l.Max() != 7 {
		t.Fatal("recorder unusable after Reset")
	}
}

func TestSnapshotString(t *testing.T) {
	l := NewLatencyRecorder()
	l.Record(time.Millisecond)
	s := l.Snapshot()
	if s.Count != 1 || s.Mean != time.Millisecond {
		t.Fatalf("snapshot wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestLatencyMeanMonotoneProperty(t *testing.T) {
	// Property: mean always lies between min and max.
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		l := NewLatencyRecorder()
		for _, v := range raw {
			l.Record(time.Duration(v))
		}
		return l.Min() <= l.Mean() && l.Mean() <= l.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	b := h.Buckets()
	if len(b) != 4 {
		t.Fatalf("bucket count = %d, want 4", len(b))
	}
	wantCounts := []int64{2, 2, 2, 2}
	for i, w := range wantCounts {
		if b[i].Count != w {
			t.Errorf("bucket %d count = %d, want %d", i, b[i].Count, w)
		}
	}
	if b[3].UpperBound != -1 {
		t.Errorf("overflow bucket bound = %d", b[3].UpperBound)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram([]int64{100})
	h.Observe(10)
	h.Observe(20)
	if got := h.Mean(); got != 15 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]int64{{}, {5, 5}, {10, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]int64{1})
	h.Observe(0)
	h.Observe(2)
	s := h.String()
	if !strings.Contains(s, "<=1: 1") || !strings.Contains(s, ">last: 1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", 1)
	tab.AddRow("b", 2.5)
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("missing separator line:\n%s", out)
	}
}
