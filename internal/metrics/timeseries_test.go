package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTimeSeriesRecordAndAccess(t *testing.T) {
	s := NewTimeSeries("erases")
	if s.Name() != "erases" || s.Len() != 0 {
		t.Fatal("fresh series wrong")
	}
	s.Record(time.Second, 10)
	s.Record(2*time.Second, 30)
	s.Record(2*time.Second, 35) // equal timestamps allowed
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if last := s.Last(); last.Value != 35 || last.At != 2*time.Second {
		t.Fatalf("Last = %+v", last)
	}
	if d := s.Delta(); d != 25 {
		t.Fatalf("Delta = %v", d)
	}
}

func TestTimeSeriesRate(t *testing.T) {
	s := NewTimeSeries("bytes")
	s.Record(0, 0)
	s.Record(2*time.Second, 100)
	if r := s.Rate(); r != 50 {
		t.Fatalf("Rate = %v", r)
	}
	empty := NewTimeSeries("x")
	if empty.Rate() != 0 || empty.Delta() != 0 {
		t.Fatal("empty series rate/delta not 0")
	}
	one := NewTimeSeries("y")
	one.Record(time.Second, 5)
	if one.Rate() != 0 {
		t.Fatal("single-sample rate not 0")
	}
}

func TestTimeSeriesMonotonePanics(t *testing.T) {
	s := NewTimeSeries("x")
	s.Record(2*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order sample accepted")
		}
	}()
	s.Record(time.Second, 2)
}

func TestTimeSeriesSamplesCopy(t *testing.T) {
	s := NewTimeSeries("x")
	s.Record(time.Second, 1)
	cp := s.Samples()
	cp[0].Value = 99
	if s.Last().Value != 1 {
		t.Fatal("Samples returned a live reference")
	}
}

func TestTimeSeriesString(t *testing.T) {
	s := NewTimeSeries("wear")
	s.Record(1500*time.Millisecond, 42)
	out := s.String()
	if !strings.Contains(out, "# wear") || !strings.Contains(out, "1.500 42.000") {
		t.Fatalf("String = %q", out)
	}
}
