package metrics

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// TimeSeries collects (simulated time, value) samples and renders them as
// experiment output — the machinery behind Fig 19-style curves, where a
// quantity is checkpointed as the run progresses.
type TimeSeries struct {
	mu      sync.Mutex
	name    string
	samples []TimePoint
}

// TimePoint is one sample.
type TimePoint struct {
	At    time.Duration
	Value float64
}

// NewTimeSeries creates a named, empty series.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{name: name}
}

// Name returns the series name.
func (s *TimeSeries) Name() string { return s.name }

// Record appends one sample. Samples should arrive in non-decreasing time
// order; out-of-order samples are rejected with a panic, since simulated
// time is monotone and disorder means a driver bug.
func (s *TimeSeries) Record(at time.Duration, value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.samples); n > 0 && at < s.samples[n-1].At {
		panic(fmt.Sprintf("metrics: time series %q sample at %v after %v",
			s.name, at, s.samples[n-1].At))
	}
	s.samples = append(s.samples, TimePoint{At: at, Value: value})
}

// Len returns the sample count.
func (s *TimeSeries) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Samples returns a copy of the series.
func (s *TimeSeries) Samples() []TimePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]TimePoint, len(s.samples))
	copy(cp, s.samples)
	return cp
}

// Last returns the most recent sample, or a zero point when empty.
func (s *TimeSeries) Last() TimePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return TimePoint{}
	}
	return s.samples[len(s.samples)-1]
}

// Delta returns the value change between the first and last samples.
func (s *TimeSeries) Delta() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) < 2 {
		return 0
	}
	return s.samples[len(s.samples)-1].Value - s.samples[0].Value
}

// Rate returns the mean value change per second of simulated time across
// the series, or 0 when undefined.
func (s *TimeSeries) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) < 2 {
		return 0
	}
	first, last := s.samples[0], s.samples[len(s.samples)-1]
	span := (last.At - first.At).Seconds()
	if span <= 0 {
		return 0
	}
	return (last.Value - first.Value) / span
}

// String renders the series one "time value" row per line.
func (s *TimeSeries) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", s.name)
	for _, p := range s.Samples() {
		fmt.Fprintf(&sb, "%.3f %.3f\n", p.At.Seconds(), p.Value)
	}
	return sb.String()
}
