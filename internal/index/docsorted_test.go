package index

import (
	"errors"
	"sort"
	"testing"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

func TestDocMetaPresent(t *testing.T) {
	ix, spec := buildTestIndex(t)
	for term := 0; term < spec.VocabSize; term += 37 {
		m := ix.DocMeta(workload.TermID(term))
		if m.DF != int64(spec.DocFreq(workload.TermID(term))) {
			t.Fatalf("term %d: doc df %d", term, m.DF)
		}
		if m.Size <= 0 {
			t.Fatalf("term %d: doc payload %d bytes", term, m.Size)
		}
	}
}

func TestDocBlockDirectoryShape(t *testing.T) {
	ix, spec := buildTestIndex(t)
	term := workload.TermID(0)
	blocks := ix.DocBlocks(term)
	df := int64(spec.DocFreq(term))
	wantBlocks := int((df + BlockLen - 1) / BlockLen)
	if len(blocks) != wantBlocks {
		t.Fatalf("block refs = %d, want %d", len(blocks), wantBlocks)
	}
	var count int64
	for i, b := range blocks {
		count += int64(b.Count)
		if i == 0 {
			if b.Off != 0 {
				t.Fatalf("first block starts at %d", b.Off)
			}
			continue
		}
		if b.MaxDoc <= blocks[i-1].MaxDoc {
			t.Fatalf("block max docs not ascending at %d", i)
		}
		if b.Off <= blocks[i-1].Off {
			t.Fatalf("block offsets not ascending at %d", i)
		}
	}
	if count != df {
		t.Fatalf("block counts sum to %d, want %d", count, df)
	}
	// Raw codec: offsets are exactly the decoded posting counts.
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Off != blocks[i-1].Off+blocks[i-1].Count*PostingSize {
			t.Fatalf("raw block offsets not contiguous at %d", i)
		}
	}
}

// decodeDocList streams every block of term's doc-sorted payload through a
// BlockCursor, as the conjunctive engine does.
func decodeDocList(t *testing.T, ix *Index, term workload.TermID) []workload.Posting {
	t.Helper()
	blocks := ix.DocBlocks(term)
	total := ix.DocBytes(term)
	var out []workload.Posting
	var cur BlockCursor
	for i, ref := range blocks {
		end := total
		if i+1 < len(blocks) {
			end = int64(blocks[i+1].Off)
		}
		buf := make([]byte, end-int64(ref.Off))
		if err := ix.ReadDocRange(term, int64(ref.Off), buf); err != nil {
			t.Fatal(err)
		}
		cur.Reset(ix.Codec(), buf, int(ref.Count))
		for {
			p, ok := cur.Next()
			if !ok {
				break
			}
			out = append(out, p)
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestDocBlocksSortedAndComplete(t *testing.T) {
	ix, spec := buildTestIndex(t)
	term := workload.TermID(3)
	want := spec.Postings(term)
	sort.Slice(want, func(i, j int) bool { return want[i].Doc < want[j].Doc })

	got := decodeDocList(t, ix, term)
	if len(got) != len(want) {
		t.Fatalf("reassembled %d postings, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("posting %d: %+v != %+v", i, got[i], want[i])
		}
	}
	blocks := ix.DocBlocks(term)
	for i, b := range blocks {
		last := got[0]
		for _, p := range got {
			if p.Doc <= b.MaxDoc {
				last = p
			}
		}
		if b.MaxDoc != last.Doc {
			t.Fatalf("block %d MaxDoc %d is not a list doc", i, b.MaxDoc)
		}
	}
}

func TestReadDocRangeBounds(t *testing.T) {
	ix, _ := buildTestIndex(t)
	buf := make([]byte, 1)
	if err := ix.ReadDocRange(0, ix.DocBytes(0), buf); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("read past doc payload end: %v", err)
	}
	if err := ix.ReadDocRange(0, -1, buf); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestDocSectionSurvivesOpen(t *testing.T) {
	spec := testSpec()
	dev := storage.NewMemDevice("idx", RequiredBytes(spec)+4096, simclock.New(), storage.DefaultMemParams())
	built, err := Build(dev, spec)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	term := workload.TermID(5)
	wantBlocks := built.DocBlocks(term)
	gotBlocks := opened.DocBlocks(term)
	if len(gotBlocks) != len(wantBlocks) {
		t.Fatalf("block dir %d entries after Open, want %d", len(gotBlocks), len(wantBlocks))
	}
	for i := range gotBlocks {
		if gotBlocks[i] != wantBlocks[i] {
			t.Fatalf("block ref %d mismatch after Open: %+v != %+v", i, gotBlocks[i], wantBlocks[i])
		}
	}
	block := decodeDocList(t, opened, term)
	for i := 1; i < len(block); i++ {
		if block[i].Doc <= block[i-1].Doc {
			t.Fatal("doc list not sorted after Open")
		}
	}
}

// TestGVarintDocSectionMatchesRaw builds the same collection under both
// codecs and checks the doc-sorted payloads decode identically while the
// compressed ones are strictly smaller in aggregate.
func TestGVarintDocSectionMatchesRaw(t *testing.T) {
	spec := testSpec()
	open := func(codec CodecID) *Index {
		img, err := BuildImage(spec, codec)
		if err != nil {
			t.Fatal(err)
		}
		dev := storage.NewMemDevice("idx", img.Bytes(), simclock.New(), storage.DefaultMemParams())
		ix, err := img.Stamp(dev)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	raw := open(CodecRaw)
	gv := open(CodecGVarint)

	var rawBytes, gvBytes int64
	for term := 0; term < spec.VocabSize; term++ {
		tid := workload.TermID(term)
		rawBytes += raw.DocBytes(tid)
		gvBytes += gv.DocBytes(tid)
		a := decodeDocList(t, raw, tid)
		b := decodeDocList(t, gv, tid)
		if len(a) != len(b) {
			t.Fatalf("term %d: %d vs %d postings", term, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("term %d posting %d: %+v != %+v", term, i, a[i], b[i])
			}
		}
	}
	if gvBytes >= rawBytes {
		t.Fatalf("gvarint doc sections %d bytes, raw %d: no compression", gvBytes, rawBytes)
	}
	if gv.SizeBytes() >= raw.SizeBytes() {
		t.Fatalf("gvarint index %d bytes, raw %d: no compression", gv.SizeBytes(), raw.SizeBytes())
	}
}
