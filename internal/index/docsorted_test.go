package index

import (
	"sort"
	"testing"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

func TestDocMetaPresent(t *testing.T) {
	ix, spec := buildTestIndex(t)
	for term := 0; term < spec.VocabSize; term += 37 {
		m, ok := ix.DocMeta(workload.TermID(term))
		if !ok {
			t.Fatalf("term %d: no doc meta", term)
		}
		if m.DF != int64(spec.DocFreq(workload.TermID(term))) {
			t.Fatalf("term %d: doc df %d", term, m.DF)
		}
	}
}

func TestSkipTableShape(t *testing.T) {
	ix, spec := buildTestIndex(t)
	term := workload.TermID(0)
	skips, err := ix.ReadSkipTable(term)
	if err != nil {
		t.Fatal(err)
	}
	df := int64(spec.DocFreq(term))
	wantBlocks := int((df + SkipInterval - 1) / SkipInterval)
	if len(skips) != wantBlocks {
		t.Fatalf("skip entries = %d, want %d", len(skips), wantBlocks)
	}
	for i := 1; i < len(skips); i++ {
		if skips[i].FirstDoc <= skips[i-1].FirstDoc {
			t.Fatalf("skip docs not ascending at %d", i)
		}
		if skips[i].ByteOff != skips[i-1].ByteOff+SkipInterval*PostingSize {
			t.Fatalf("skip offsets not contiguous at %d", i)
		}
	}
}

func TestDocBlocksSortedAndComplete(t *testing.T) {
	ix, spec := buildTestIndex(t)
	term := workload.TermID(3)
	want := spec.Postings(term)
	sort.Slice(want, func(i, j int) bool { return want[i].Doc < want[j].Doc })

	skips, err := ix.ReadSkipTable(term)
	if err != nil {
		t.Fatal(err)
	}
	var got []workload.Posting
	for _, sk := range skips {
		block, err := ix.ReadDocBlock(term, sk.ByteOff)
		if err != nil {
			t.Fatal(err)
		}
		if block[0].Doc != sk.FirstDoc {
			t.Fatalf("block first doc %d != skip entry %d", block[0].Doc, sk.FirstDoc)
		}
		got = append(got, block...)
	}
	if len(got) != len(want) {
		t.Fatalf("reassembled %d postings, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("posting %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadDocBlockBounds(t *testing.T) {
	ix, _ := buildTestIndex(t)
	m, _ := ix.DocMeta(0)
	if _, err := ix.ReadDocBlock(0, uint32(m.DF*PostingSize)); err == nil {
		t.Fatal("out-of-range doc block accepted")
	}
}

func TestDocSectionSurvivesOpen(t *testing.T) {
	spec := testSpec()
	dev := storage.NewMemDevice("idx", RequiredBytes(spec)+4096, simclock.New(), storage.DefaultMemParams())
	if _, err := Build(dev, spec); err != nil {
		t.Fatal(err)
	}
	opened, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	skips, err := opened.ReadSkipTable(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(skips) == 0 {
		t.Fatal("no skip entries after Open")
	}
	block, err := opened.ReadDocBlock(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(block); i++ {
		if block[i].Doc <= block[i-1].Doc {
			t.Fatal("doc block not sorted after Open")
		}
	}
}

func TestSkipTableBytes(t *testing.T) {
	if got := SkipTableBytes(1); got != 4+8 {
		t.Fatalf("SkipTableBytes(1) = %d", got)
	}
	if got := SkipTableBytes(SkipInterval); got != 4+8 {
		t.Fatalf("SkipTableBytes(%d) = %d", SkipInterval, got)
	}
	if got := SkipTableBytes(SkipInterval + 1); got != 4+16 {
		t.Fatalf("SkipTableBytes(%d) = %d", SkipInterval+1, got)
	}
}
