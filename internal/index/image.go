package index

// Prebuilt index images.
//
// Synthesizing a collection's postings and doc-sorted sections is pure CPU
// work that depends only on the CollectionSpec, yet every experiment point
// used to redo it from scratch. An Image is that work done once: the fully
// serialized index (header, directory, impact-ordered lists, doc-sorted
// sections) held in memory, ready to be stamped onto any number of devices.
// Stamping replays the exact write sequence Build has always issued —
// header first, lists in flush-sized sequential chunks, then one write per
// doc-sorted section — so a stamped system is indistinguishable, byte for
// byte and simulated-op for simulated-op, from one that built its index
// directly.
//
// An Image is immutable after BuildImage returns and safe for concurrent
// Stamp calls from multiple goroutines.

import (
	"encoding/binary"
	"fmt"

	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// buildFlushSize is the sequential-write granularity of the list region
// during bulk load (Build's historical flush size).
const buildFlushSize = 1 << 20

// Image is a fully serialized index for one CollectionSpec, reusable
// across devices.
type Image struct {
	spec     workload.CollectionSpec
	data     []byte // header + directory + lists + doc-sorted sections
	headLen  int64
	listsEnd int64 // end of the impact-ordered list region
	numDocs  int64
	terms    []TermMeta
	docTerms []DocMeta
}

// Spec returns the collection the image serializes.
func (im *Image) Spec() workload.CollectionSpec { return im.spec }

// Bytes returns the serialized size of the image.
func (im *Image) Bytes() int64 { return int64(len(im.data)) }

// BuildImage synthesizes the collection described by spec and serializes
// its inverted index into memory.
func BuildImage(spec workload.CollectionSpec) (*Image, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	terms := make([]TermMeta, spec.VocabSize)
	docTerms := make([]DocMeta, spec.VocabSize)
	off := int64(headerSize + dirEntrySize*spec.VocabSize)
	headLen := off
	for t := 0; t < spec.VocabSize; t++ {
		df := int64(spec.DocFreq(workload.TermID(t)))
		terms[t] = TermMeta{Offset: off, DF: df}
		off += df * PostingSize
	}
	listsEnd := off
	// Doc-sorted sections follow all impact-ordered lists.
	for t := 0; t < spec.VocabSize; t++ {
		docTerms[t] = DocMeta{Offset: off, DF: terms[t].DF}
		off += DocSectionBytes(terms[t].DF)
	}

	data := make([]byte, off)
	copy(data[0:4], magic[:])
	binary.LittleEndian.PutUint32(data[4:8], 2)
	binary.LittleEndian.PutUint64(data[8:16], uint64(spec.VocabSize))
	binary.LittleEndian.PutUint64(data[16:24], uint64(spec.NumDocs))
	for t, m := range terms {
		base := headerSize + t*dirEntrySize
		binary.LittleEndian.PutUint64(data[base:base+8], uint64(m.Offset))
		binary.LittleEndian.PutUint64(data[base+8:base+16], uint64(m.DF))
		binary.LittleEndian.PutUint64(data[base+16:base+24], uint64(docTerms[t].Offset))
	}
	for t := 0; t < spec.VocabSize; t++ {
		postings := spec.Postings(workload.TermID(t))
		buf := data[terms[t].Offset:]
		for i, p := range postings {
			EncodePosting(buf[i*PostingSize:], p)
		}
		end := docTerms[t].Offset + DocSectionBytes(terms[t].DF)
		encodeDocSection(data[docTerms[t].Offset:end], postings)
	}
	return &Image{
		spec:     spec,
		data:     data,
		headLen:  headLen,
		listsEnd: listsEnd,
		numDocs:  int64(spec.NumDocs),
		terms:    terms,
		docTerms: docTerms,
	}, nil
}

// Stamp writes the image onto dev and returns the opened index, charging
// the same simulated write operations a direct Build would: the header and
// directory first, the list region in flush-sized sequential chunks, then
// each doc-sorted section in one write.
func (im *Image) Stamp(dev storage.Device) (*Index, error) {
	if im.Bytes() > dev.Size() {
		return nil, fmt.Errorf("index: needs %d bytes, device %q holds %d",
			im.Bytes(), dev.Name(), dev.Size())
	}
	if _, err := dev.WriteAt(im.data[:im.headLen], 0); err != nil {
		return nil, fmt.Errorf("index: writing directory: %w", err)
	}
	for off := im.headLen; off < im.listsEnd; {
		n := int64(buildFlushSize)
		if im.listsEnd-off < n {
			n = im.listsEnd - off
		}
		if _, err := dev.WriteAt(im.data[off:off+n], off); err != nil {
			return nil, fmt.Errorf("index: writing lists: %w", err)
		}
		off += n
	}
	for t := range im.docTerms {
		off := im.docTerms[t].Offset
		end := off + DocSectionBytes(im.terms[t].DF)
		if _, err := dev.WriteAt(im.data[off:end], off); err != nil {
			return nil, fmt.Errorf("index: writing doc-sorted section: %w", err)
		}
	}
	return &Index{dev: dev, numDocs: im.numDocs, terms: im.terms, docTerms: im.docTerms}, nil
}
