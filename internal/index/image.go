package index

// Prebuilt index images.
//
// Synthesizing a collection's postings and encoding both payload regions is
// pure CPU work that depends only on the (CollectionSpec, CodecID) pair,
// yet every experiment point used to redo it from scratch. An Image is that
// work done once: the fully serialized index (header, term directory,
// block directory, impact-ordered payloads, doc-sorted payloads) held in
// memory, ready to be stamped onto any number of devices. Stamping replays
// the exact write sequence Build has always issued — header and
// directories first, lists in flush-sized sequential chunks, then one
// write per doc-sorted payload — so a stamped system is indistinguishable,
// byte for byte and simulated-op for simulated-op, from one that built its
// index directly.
//
// An Image is immutable after BuildImage returns and safe for concurrent
// Stamp calls from multiple goroutines.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// buildFlushSize is the sequential-write granularity of the list region
// during bulk load (Build's historical flush size).
const buildFlushSize = 1 << 20

// Image is a fully serialized index for one (CollectionSpec, CodecID)
// pair, reusable across devices.
type Image struct {
	spec       workload.CollectionSpec
	codec      CodecID
	data       []byte // header + directories + payloads
	headLen    int64  // end of header + term dir + block dir
	listsEnd   int64  // end of the impact-ordered payload region
	numDocs    int64
	terms      []TermMeta
	docTerms   []TermMeta
	listBlocks [][]BlockRef
	docBlocks  [][]BlockRef
}

// Spec returns the collection the image serializes.
func (im *Image) Spec() workload.CollectionSpec { return im.spec }

// Codec returns the block encoding the image was built with.
func (im *Image) Codec() CodecID { return im.codec }

// Bytes returns the serialized size of the image.
func (im *Image) Bytes() int64 { return int64(len(im.data)) }

// BuildImage synthesizes the collection described by spec and serializes
// its inverted index into memory under the given codec.
func BuildImage(spec workload.CollectionSpec, codec CodecID) (*Image, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !codec.Valid() {
		return nil, fmt.Errorf("index: unknown codec %d", codec)
	}
	v := spec.VocabSize
	terms := make([]TermMeta, v)
	docTerms := make([]TermMeta, v)
	listBlocks := make([][]BlockRef, v)
	docBlocks := make([][]BlockRef, v)

	// Encode both payload regions; offsets are rebased once the directory
	// sizes are known.
	var listBuf, docBuf []byte
	var sorted []workload.Posting
	var totalRefs int64
	for t := 0; t < v; t++ {
		ps := spec.Postings(workload.TermID(t))
		lOff := int64(len(listBuf))
		listBuf, listBlocks[t] = EncodeList(listBuf, nil, codec, ps)
		terms[t] = TermMeta{Offset: lOff, DF: int64(len(ps)), Size: int64(len(listBuf)) - lOff}

		sorted = append(sorted[:0], ps...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Doc < sorted[j].Doc })
		dOff := int64(len(docBuf))
		docBuf, docBlocks[t] = EncodeList(docBuf, nil, codec, sorted)
		docTerms[t] = TermMeta{Offset: dOff, DF: terms[t].DF, Size: int64(len(docBuf)) - dOff}
		totalRefs += int64(len(listBlocks[t]) + len(docBlocks[t]))
	}

	headLen := int64(headerSize+dirEntrySize*v) + totalRefs*blockRefSize
	listsEnd := headLen + int64(len(listBuf))
	for t := 0; t < v; t++ {
		terms[t].Offset += headLen
		docTerms[t].Offset += listsEnd
	}

	data := make([]byte, 0, listsEnd+int64(len(docBuf)))
	data = data[:headerSize+dirEntrySize*v]
	copy(data[0:4], magic[:])
	binary.LittleEndian.PutUint32(data[4:8], indexVersion)
	binary.LittleEndian.PutUint64(data[8:16], uint64(v))
	binary.LittleEndian.PutUint64(data[16:24], uint64(spec.NumDocs))
	binary.LittleEndian.PutUint32(data[24:28], uint32(codec))
	for t := 0; t < v; t++ {
		base := headerSize + t*dirEntrySize
		binary.LittleEndian.PutUint64(data[base:base+8], uint64(terms[t].Offset))
		binary.LittleEndian.PutUint64(data[base+8:base+16], uint64(terms[t].DF))
		binary.LittleEndian.PutUint64(data[base+16:base+24], uint64(terms[t].Size))
		binary.LittleEndian.PutUint64(data[base+24:base+32], uint64(docTerms[t].Offset))
		binary.LittleEndian.PutUint64(data[base+32:base+40], uint64(docTerms[t].Size))
	}
	var refB [blockRefSize]byte
	appendRefs := func(refs []BlockRef) {
		for _, r := range refs {
			binary.LittleEndian.PutUint32(refB[0:4], r.MaxDoc)
			binary.LittleEndian.PutUint32(refB[4:8], r.Off)
			binary.LittleEndian.PutUint32(refB[8:12], r.Count)
			data = append(data, refB[:]...)
		}
	}
	for t := 0; t < v; t++ {
		appendRefs(listBlocks[t])
		appendRefs(docBlocks[t])
	}
	data = append(data, listBuf...)
	data = append(data, docBuf...)

	return &Image{
		spec:       spec,
		codec:      codec,
		data:       data,
		headLen:    headLen,
		listsEnd:   listsEnd,
		numDocs:    int64(spec.NumDocs),
		terms:      terms,
		docTerms:   docTerms,
		listBlocks: listBlocks,
		docBlocks:  docBlocks,
	}, nil
}

// Stamp writes the image onto dev and returns the opened index, charging
// the same simulated write operations a direct Build would: the header and
// directories first, the list region in flush-sized sequential chunks,
// then each doc-sorted payload in one write.
func (im *Image) Stamp(dev storage.Device) (*Index, error) {
	if im.Bytes() > dev.Size() {
		return nil, fmt.Errorf("index: needs %d bytes, device %q holds %d",
			im.Bytes(), dev.Name(), dev.Size())
	}
	if _, err := dev.WriteAt(im.data[:im.headLen], 0); err != nil {
		return nil, fmt.Errorf("index: writing directory: %w", err)
	}
	for off := im.headLen; off < im.listsEnd; {
		n := int64(buildFlushSize)
		if im.listsEnd-off < n {
			n = im.listsEnd - off
		}
		if _, err := dev.WriteAt(im.data[off:off+n], off); err != nil {
			return nil, fmt.Errorf("index: writing lists: %w", err)
		}
		off += n
	}
	for t := range im.docTerms {
		if im.docTerms[t].Size == 0 {
			continue
		}
		off := im.docTerms[t].Offset
		end := off + im.docTerms[t].Size
		if _, err := dev.WriteAt(im.data[off:end], off); err != nil {
			return nil, fmt.Errorf("index: writing doc-sorted payload: %w", err)
		}
	}
	return &Index{
		dev: dev, codec: im.codec, numDocs: im.numDocs, size: im.Bytes(),
		terms: im.terms, docTerms: im.docTerms,
		listBlocks: im.listBlocks, docBlocks: im.docBlocks,
	}, nil
}
