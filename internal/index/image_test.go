package index

import (
	"bytes"
	"strings"
	"testing"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
)

// TestStampMatchesBuild is the contract the artifact cache rests on: a
// device stamped from an image must be indistinguishable from one Build
// wrote directly — identical bytes AND an identical simulated operation
// history (write count, byte count, accumulated latency), so cached and
// uncached experiment points replay the exact same timeline.
func TestStampMatchesBuild(t *testing.T) {
	spec := testSpec()
	size := RequiredBytes(spec) + 4096

	devBuild := storage.NewMemDevice("idx", size, simclock.New(), storage.DefaultMemParams())
	ixBuild, err := Build(devBuild, spec)
	if err != nil {
		t.Fatal(err)
	}

	img, err := BuildImage(spec, CodecRaw)
	if err != nil {
		t.Fatal(err)
	}
	devStamp := storage.NewMemDevice("idx", size, simclock.New(), storage.DefaultMemParams())
	ixStamp, err := img.Stamp(devStamp)
	if err != nil {
		t.Fatal(err)
	}

	sb, ss := devBuild.Stats(), devStamp.Stats()
	if sb.Writes != ss.Writes || sb.BytesWrit != ss.BytesWrit || sb.WriteTime != ss.WriteTime {
		t.Fatalf("write history differs: Build {ops %d, bytes %d, time %v}, Stamp {ops %d, bytes %d, time %v}",
			sb.Writes, sb.BytesWrit, sb.WriteTime, ss.Writes, ss.BytesWrit, ss.WriteTime)
	}

	want := make([]byte, img.Bytes())
	got := make([]byte, img.Bytes())
	if _, err := devBuild.ReadAt(want, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := devStamp.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("stamped device content differs from built device content")
	}

	if ixBuild.NumDocs() != ixStamp.NumDocs() || ixBuild.NumTerms() != ixStamp.NumTerms() {
		t.Fatalf("index metadata differs: build (%d docs, %d terms), stamp (%d docs, %d terms)",
			ixBuild.NumDocs(), ixBuild.NumTerms(), ixStamp.NumDocs(), ixStamp.NumTerms())
	}
}

func TestImageBytesMatchesRequired(t *testing.T) {
	spec := testSpec()
	img, err := BuildImage(spec, CodecRaw)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bytes() != RequiredBytes(spec) {
		t.Fatalf("image is %d bytes, RequiredBytes says %d", img.Bytes(), RequiredBytes(spec))
	}
	if img.Spec() != spec {
		t.Fatalf("Spec() = %+v, want %+v", img.Spec(), spec)
	}
}

func TestStampDeviceTooSmall(t *testing.T) {
	spec := testSpec()
	img, err := BuildImage(spec, CodecRaw)
	if err != nil {
		t.Fatal(err)
	}
	dev := storage.NewMemDevice("tiny", img.Bytes()/2, simclock.New(), storage.DefaultMemParams())
	if _, err := img.Stamp(dev); err == nil || !strings.Contains(err.Error(), "needs") {
		t.Fatalf("expected capacity error, got %v", err)
	}
}

func TestBuildImageRejectsInvalidSpec(t *testing.T) {
	spec := testSpec()
	spec.NumDocs = 0
	if _, err := BuildImage(spec, CodecRaw); err == nil {
		t.Fatal("expected validation error for zero-doc spec")
	}
}
