// Package index implements the on-disk inverted index the search engine
// retrieves from: impact-ordered (frequency-sorted) posting lists laid out
// contiguously on a simulated block device, with an in-memory term
// directory, mirroring the index organization the paper assumes from
// Lucene with filtered-vector-model list ordering (§VI).
//
// The index is the paper's *backing store*: the two-level cache sits in
// front of a Reader, and every byte a query needs that is not cached is
// read from here at device cost.
package index

import (
	"encoding/binary"
	"fmt"

	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// PostingSize is the serialized size of one posting: doc uint32, tf uint16,
// padding uint16 (alignment).
const PostingSize = 8

// headerSize is the serialized index header: magic, version, numTerms,
// numDocs.
const headerSize = 4 + 4 + 8 + 8

// dirEntrySize is one serialized directory entry: impact offset int64,
// df int64, doc-sorted offset int64.
const dirEntrySize = 24

// magic identifies a serialized index.
var magic = [4]byte{'H', 'S', 'I', 'X'}

// TermMeta locates one term's posting list on the device.
type TermMeta struct {
	// Offset is the byte position of the list on the device.
	Offset int64
	// DF is the number of postings (document frequency).
	DF int64
}

// Bytes returns the serialized list length.
func (m TermMeta) Bytes() int64 { return m.DF * PostingSize }

// Index is an immutable inverted index bound to a device.
type Index struct {
	dev      storage.Device
	numDocs  int64
	terms    []TermMeta // indexed by TermID
	docTerms []DocMeta  // doc-sorted sections, indexed by TermID
}

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// NumDocs returns the collection size the index was built over.
func (ix *Index) NumDocs() int64 { return ix.numDocs }

// Meta returns the directory entry for term t.
func (ix *Index) Meta(t workload.TermID) TermMeta {
	if int(t) < 0 || int(t) >= len(ix.terms) {
		panic(fmt.Sprintf("index: term %d out of range [0,%d)", t, len(ix.terms)))
	}
	return ix.terms[t]
}

// ListBytes returns the serialized size of term t's list.
func (ix *Index) ListBytes(t workload.TermID) int64 { return ix.Meta(t).Bytes() }

// Device returns the backing device (for trace instrumentation).
func (ix *Index) Device() storage.Device { return ix.dev }

// EncodePosting serializes p into buf (len >= PostingSize).
func EncodePosting(buf []byte, p workload.Posting) {
	binary.LittleEndian.PutUint32(buf[0:4], p.Doc)
	binary.LittleEndian.PutUint16(buf[4:6], p.TF)
	binary.LittleEndian.PutUint16(buf[6:8], 0)
}

// DecodePosting deserializes one posting from buf.
func DecodePosting(buf []byte) workload.Posting {
	return workload.Posting{
		Doc: binary.LittleEndian.Uint32(buf[0:4]),
		TF:  binary.LittleEndian.Uint16(buf[4:6]),
	}
}

// DecodePostings deserializes as many whole postings as buf holds.
func DecodePostings(buf []byte) []workload.Posting {
	return AppendPostings(make([]workload.Posting, 0, len(buf)/PostingSize), buf)
}

// AppendPostings decodes as many whole postings as buf holds, appending
// them to dst. Callers on hot paths pass a reused scratch slice to avoid
// allocating per decode.
func AppendPostings(dst []workload.Posting, buf []byte) []workload.Posting {
	n := len(buf) / PostingSize
	for i := 0; i < n; i++ {
		dst = append(dst, DecodePosting(buf[i*PostingSize:]))
	}
	return dst
}

// Build synthesizes the collection described by spec and serializes its
// inverted index onto dev, returning the opened index. Lists are laid out
// back-to-back after the header and directory, in term order, so building
// is one long sequential write — the cheap bulk-load case on both device
// types. Build is BuildImage + Stamp; callers constructing many systems
// over the same spec should build the Image once and Stamp it repeatedly.
//
// Building charges device time on the shared clock like any other I/O; use
// a dedicated clock when setup time should not pollute an experiment.
func Build(dev storage.Device, spec workload.CollectionSpec) (*Index, error) {
	img, err := BuildImage(spec)
	if err != nil {
		return nil, err
	}
	return img.Stamp(dev)
}

// Open loads an index previously built on dev by reading its header and
// directory.
func Open(dev storage.Device) (*Index, error) {
	head := make([]byte, headerSize)
	if _, err := dev.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	if [4]byte(head[0:4]) != magic {
		return nil, fmt.Errorf("index: bad magic %q on %q", head[0:4], dev.Name())
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != 2 {
		return nil, fmt.Errorf("index: unsupported version %d", v)
	}
	numTerms := int(binary.LittleEndian.Uint64(head[8:16]))
	numDocs := int64(binary.LittleEndian.Uint64(head[16:24]))
	dir := make([]byte, dirEntrySize*numTerms)
	if _, err := dev.ReadAt(dir, headerSize); err != nil {
		return nil, fmt.Errorf("index: reading directory: %w", err)
	}
	terms := make([]TermMeta, numTerms)
	docTerms := make([]DocMeta, numTerms)
	for t := range terms {
		base := t * dirEntrySize
		terms[t] = TermMeta{
			Offset: int64(binary.LittleEndian.Uint64(dir[base : base+8])),
			DF:     int64(binary.LittleEndian.Uint64(dir[base+8 : base+16])),
		}
		docTerms[t] = DocMeta{
			Offset: int64(binary.LittleEndian.Uint64(dir[base+16 : base+24])),
			DF:     terms[t].DF,
		}
	}
	return &Index{dev: dev, numDocs: numDocs, terms: terms, docTerms: docTerms}, nil
}

// RequiredBytes returns the device capacity needed to hold spec's index
// (impact-ordered lists plus doc-sorted sections with skip tables).
func RequiredBytes(spec workload.CollectionSpec) int64 {
	total := int64(headerSize + dirEntrySize*spec.VocabSize)
	for t := 0; t < spec.VocabSize; t++ {
		df := int64(spec.DocFreq(workload.TermID(t)))
		total += df*PostingSize + DocSectionBytes(df)
	}
	return total
}

// ReadListRange reads n bytes of term t's list starting at byte offset off
// within the list, directly from the device. It is the uncached list-read
// path; the cache hierarchy wraps it.
func (ix *Index) ReadListRange(t workload.TermID, off int64, p []byte) error {
	m := ix.Meta(t)
	if off < 0 || off+int64(len(p)) > m.Bytes() {
		return fmt.Errorf("index: term %d range [%d,+%d) outside list of %d bytes: %w",
			t, off, len(p), m.Bytes(), storage.ErrOutOfRange)
	}
	_, err := ix.dev.ReadAt(p, m.Offset+off)
	return err
}
