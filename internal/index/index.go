// Package index implements the on-disk inverted index the search engine
// retrieves from: impact-ordered (frequency-sorted) posting lists laid out
// contiguously on a simulated block device, with an in-memory term
// directory, mirroring the index organization the paper assumes from
// Lucene with filtered-vector-model list ordering (§VI).
//
// The index is the paper's *backing store*: the two-level cache sits in
// front of a Reader, and every byte a query needs that is not cached is
// read from here at device cost.
//
// On-device layout (version 3):
//
//	header     magic, version, numTerms, numDocs, codec
//	directory  numTerms × {impactOff, df, impactBytes, docOff, docBytes}
//	block dir  per term: impact BlockRefs then doc-sorted BlockRefs
//	payloads   impact-ordered lists back-to-back, then doc-sorted lists
//
// Payloads are block-encoded under the index's CodecID (codec.go); all
// sizes and offsets are encoded bytes, so every cache tier and stat in
// front of the index accounts compressed bytes exactly.
package index

import (
	"encoding/binary"
	"fmt"

	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// PostingSize is the serialized size of one raw-codec posting: doc uint32,
// tf uint16. (Earlier versions carried 2 bytes of alignment padding;
// version 3 dropped them so the uncompressed baseline stops charging dead
// bytes to every tier.)
const PostingSize = 6

// headerSize is the serialized index header: magic, version, numTerms,
// numDocs, codec.
const headerSize = 4 + 4 + 8 + 8 + 4

// indexVersion is the on-device layout version.
const indexVersion = 3

// dirEntrySize is one serialized directory entry: impact offset, df,
// impact bytes, doc-sorted offset, doc-sorted bytes (all uint64).
const dirEntrySize = 40

// blockRefSize is one serialized BlockRef: maxDoc, off, count (uint32s).
const blockRefSize = 12

// magic identifies a serialized index.
var magic = [4]byte{'H', 'S', 'I', 'X'}

// TermMeta locates one term's encoded posting list on the device.
type TermMeta struct {
	// Offset is the byte position of the list payload on the device.
	Offset int64
	// DF is the number of postings (document frequency).
	DF int64
	// Size is the encoded payload length in bytes.
	Size int64
}

// Bytes returns the encoded list length.
func (m TermMeta) Bytes() int64 { return m.Size }

// Index is an immutable inverted index bound to a device.
type Index struct {
	dev     storage.Device
	codec   CodecID
	numDocs int64
	size    int64      // total serialized bytes on the device
	terms   []TermMeta // impact-ordered payloads, indexed by TermID
	// docTerms mirrors terms for the doc-sorted payloads.
	docTerms   []TermMeta
	listBlocks [][]BlockRef // impact block directory, indexed by TermID
	docBlocks  [][]BlockRef // doc-sorted block directory, indexed by TermID
}

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// NumDocs returns the collection size the index was built over.
func (ix *Index) NumDocs() int64 { return ix.numDocs }

// Codec returns the block encoding the index was built with.
func (ix *Index) Codec() CodecID { return ix.codec }

// SizeBytes returns the total serialized index size on the device.
func (ix *Index) SizeBytes() int64 { return ix.size }

// Meta returns the directory entry for term t.
func (ix *Index) Meta(t workload.TermID) TermMeta {
	if int(t) < 0 || int(t) >= len(ix.terms) {
		panic(fmt.Sprintf("index: term %d out of range [0,%d)", t, len(ix.terms)))
	}
	return ix.terms[t]
}

// ListBytes returns the encoded size of term t's impact-ordered list.
func (ix *Index) ListBytes(t workload.TermID) int64 { return ix.Meta(t).Bytes() }

// TermDF returns term t's document frequency.
func (ix *Index) TermDF(t workload.TermID) int64 { return ix.Meta(t).DF }

// ListBlocks returns term t's impact-list block directory. The directory
// is in-memory metadata: reading it costs no device time. Callers must not
// mutate the returned slice.
func (ix *Index) ListBlocks(t workload.TermID) []BlockRef {
	ix.Meta(t) // range check
	return ix.listBlocks[t]
}

// Device returns the backing device (for trace instrumentation).
func (ix *Index) Device() storage.Device { return ix.dev }

// EncodePosting serializes p into buf (len >= PostingSize).
func EncodePosting(buf []byte, p workload.Posting) {
	binary.LittleEndian.PutUint32(buf[0:4], p.Doc)
	binary.LittleEndian.PutUint16(buf[4:6], p.TF)
}

// DecodePosting deserializes one raw posting from buf.
func DecodePosting(buf []byte) workload.Posting {
	return workload.Posting{
		Doc: binary.LittleEndian.Uint32(buf[0:4]),
		TF:  binary.LittleEndian.Uint16(buf[4:6]),
	}
}

// DecodePostings deserializes as many whole raw postings as buf holds.
func DecodePostings(buf []byte) []workload.Posting {
	return AppendPostings(make([]workload.Posting, 0, len(buf)/PostingSize), buf)
}

// AppendPostings decodes as many whole raw postings as buf holds, appending
// them to dst.
func AppendPostings(dst []workload.Posting, buf []byte) []workload.Posting {
	n := len(buf) / PostingSize
	for i := 0; i < n; i++ {
		dst = append(dst, DecodePosting(buf[i*PostingSize:]))
	}
	return dst
}

// Build synthesizes the collection described by spec and serializes its
// inverted index onto dev under the raw codec, returning the opened index.
// Lists are laid out back-to-back after the header and directories, in
// term order, so building is one long sequential write — the cheap
// bulk-load case on both device types. Build is BuildImage + Stamp;
// callers constructing many systems over the same spec (or wanting a
// compressed codec) should build the Image once and Stamp it repeatedly.
//
// Building charges device time on the shared clock like any other I/O; use
// a dedicated clock when setup time should not pollute an experiment.
func Build(dev storage.Device, spec workload.CollectionSpec) (*Index, error) {
	img, err := BuildImage(spec, CodecRaw)
	if err != nil {
		return nil, err
	}
	return img.Stamp(dev)
}

// Open loads an index previously built on dev by reading its header, term
// directory, and block directory.
func Open(dev storage.Device) (*Index, error) {
	head := make([]byte, headerSize)
	if _, err := dev.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	if [4]byte(head[0:4]) != magic {
		return nil, fmt.Errorf("index: bad magic %q on %q", head[0:4], dev.Name())
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != indexVersion {
		return nil, fmt.Errorf("index: unsupported version %d", v)
	}
	numTerms := int(binary.LittleEndian.Uint64(head[8:16]))
	numDocs := int64(binary.LittleEndian.Uint64(head[16:24]))
	codec := CodecID(binary.LittleEndian.Uint32(head[24:28]))
	if !codec.Valid() {
		return nil, fmt.Errorf("index: unknown codec %d in header", codec)
	}
	dir := make([]byte, dirEntrySize*numTerms)
	if _, err := dev.ReadAt(dir, headerSize); err != nil {
		return nil, fmt.Errorf("index: reading directory: %w", err)
	}
	terms := make([]TermMeta, numTerms)
	docTerms := make([]TermMeta, numTerms)
	var totalRefs int64
	for t := range terms {
		base := t * dirEntrySize
		terms[t] = TermMeta{
			Offset: int64(binary.LittleEndian.Uint64(dir[base : base+8])),
			DF:     int64(binary.LittleEndian.Uint64(dir[base+8 : base+16])),
			Size:   int64(binary.LittleEndian.Uint64(dir[base+16 : base+24])),
		}
		docTerms[t] = TermMeta{
			Offset: int64(binary.LittleEndian.Uint64(dir[base+24 : base+32])),
			DF:     terms[t].DF,
			Size:   int64(binary.LittleEndian.Uint64(dir[base+32 : base+40])),
		}
		totalRefs += 2 * blockCount(terms[t].DF)
	}
	refBuf := make([]byte, totalRefs*blockRefSize)
	if _, err := dev.ReadAt(refBuf, int64(headerSize+dirEntrySize*numTerms)); err != nil {
		return nil, fmt.Errorf("index: reading block directory: %w", err)
	}
	listBlocks := make([][]BlockRef, numTerms)
	docBlocks := make([][]BlockRef, numTerms)
	pos := 0
	//hybridlint:allow bufalias readRefs decodes refBuf into freshly allocated BlockRef slices and is called only inside Open, so no alias to the buffer survives the call
	readRefs := func(n int64) []BlockRef {
		out := make([]BlockRef, n)
		for i := range out {
			out[i] = BlockRef{
				MaxDoc: binary.LittleEndian.Uint32(refBuf[pos:]),
				Off:    binary.LittleEndian.Uint32(refBuf[pos+4:]),
				Count:  binary.LittleEndian.Uint32(refBuf[pos+8:]),
			}
			pos += blockRefSize
		}
		return out
	}
	for t := range terms {
		n := blockCount(terms[t].DF)
		listBlocks[t] = readRefs(n)
		docBlocks[t] = readRefs(n)
	}
	size := int64(headerSize + dirEntrySize*numTerms)
	size += totalRefs * blockRefSize
	for t := range terms {
		size += terms[t].Size + docTerms[t].Size
	}
	return &Index{
		dev: dev, codec: codec, numDocs: numDocs, size: size,
		terms: terms, docTerms: docTerms,
		listBlocks: listBlocks, docBlocks: docBlocks,
	}, nil
}

// blockCount returns the number of blocks a df-posting list occupies.
func blockCount(df int64) int64 { return (df + BlockLen - 1) / BlockLen }

// RequiredBytes returns the device capacity needed to hold spec's index
// under the raw codec (header, directories, impact and doc-sorted
// payloads). Compressed images are strictly smaller on real workloads;
// callers sizing a device for an arbitrary codec should use Image.Bytes.
func RequiredBytes(spec workload.CollectionSpec) int64 {
	total := int64(headerSize + dirEntrySize*spec.VocabSize)
	for t := 0; t < spec.VocabSize; t++ {
		df := int64(spec.DocFreq(workload.TermID(t)))
		total += 2 * (blockCount(df)*blockRefSize + df*PostingSize)
	}
	return total
}

// ReadListRange reads n bytes of term t's encoded list starting at byte
// offset off within the list, directly from the device. It is the uncached
// list-read path; the cache hierarchy wraps it.
func (ix *Index) ReadListRange(t workload.TermID, off int64, p []byte) error {
	m := ix.Meta(t)
	if off < 0 || off+int64(len(p)) > m.Bytes() {
		return fmt.Errorf("index: term %d range [%d,+%d) outside list of %d bytes: %w",
			t, off, len(p), m.Bytes(), storage.ErrOutOfRange)
	}
	_, err := ix.dev.ReadAt(p, m.Offset+off)
	return err
}
