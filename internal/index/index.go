// Package index implements the on-disk inverted index the search engine
// retrieves from: impact-ordered (frequency-sorted) posting lists laid out
// contiguously on a simulated block device, with an in-memory term
// directory, mirroring the index organization the paper assumes from
// Lucene with filtered-vector-model list ordering (§VI).
//
// The index is the paper's *backing store*: the two-level cache sits in
// front of a Reader, and every byte a query needs that is not cached is
// read from here at device cost.
package index

import (
	"encoding/binary"
	"fmt"

	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// PostingSize is the serialized size of one posting: doc uint32, tf uint16,
// padding uint16 (alignment).
const PostingSize = 8

// headerSize is the serialized index header: magic, version, numTerms,
// numDocs.
const headerSize = 4 + 4 + 8 + 8

// dirEntrySize is one serialized directory entry: impact offset int64,
// df int64, doc-sorted offset int64.
const dirEntrySize = 24

// magic identifies a serialized index.
var magic = [4]byte{'H', 'S', 'I', 'X'}

// TermMeta locates one term's posting list on the device.
type TermMeta struct {
	// Offset is the byte position of the list on the device.
	Offset int64
	// DF is the number of postings (document frequency).
	DF int64
}

// Bytes returns the serialized list length.
func (m TermMeta) Bytes() int64 { return m.DF * PostingSize }

// Index is an immutable inverted index bound to a device.
type Index struct {
	dev      storage.Device
	numDocs  int64
	terms    []TermMeta // indexed by TermID
	docTerms []DocMeta  // doc-sorted sections, indexed by TermID
}

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// NumDocs returns the collection size the index was built over.
func (ix *Index) NumDocs() int64 { return ix.numDocs }

// Meta returns the directory entry for term t.
func (ix *Index) Meta(t workload.TermID) TermMeta {
	if int(t) < 0 || int(t) >= len(ix.terms) {
		panic(fmt.Sprintf("index: term %d out of range [0,%d)", t, len(ix.terms)))
	}
	return ix.terms[t]
}

// ListBytes returns the serialized size of term t's list.
func (ix *Index) ListBytes(t workload.TermID) int64 { return ix.Meta(t).Bytes() }

// Device returns the backing device (for trace instrumentation).
func (ix *Index) Device() storage.Device { return ix.dev }

// EncodePosting serializes p into buf (len >= PostingSize).
func EncodePosting(buf []byte, p workload.Posting) {
	binary.LittleEndian.PutUint32(buf[0:4], p.Doc)
	binary.LittleEndian.PutUint16(buf[4:6], p.TF)
	binary.LittleEndian.PutUint16(buf[6:8], 0)
}

// DecodePosting deserializes one posting from buf.
func DecodePosting(buf []byte) workload.Posting {
	return workload.Posting{
		Doc: binary.LittleEndian.Uint32(buf[0:4]),
		TF:  binary.LittleEndian.Uint16(buf[4:6]),
	}
}

// DecodePostings deserializes as many whole postings as buf holds.
func DecodePostings(buf []byte) []workload.Posting {
	n := len(buf) / PostingSize
	out := make([]workload.Posting, n)
	for i := 0; i < n; i++ {
		out[i] = DecodePosting(buf[i*PostingSize:])
	}
	return out
}

// Build synthesizes the collection described by spec and serializes its
// inverted index onto dev, returning the opened index. Lists are laid out
// back-to-back after the header and directory, in term order, so building
// is one long sequential write — the cheap bulk-load case on both device
// types.
//
// Building charges device time on the shared clock like any other I/O; use
// a dedicated clock when setup time should not pollute an experiment.
func Build(dev storage.Device, spec workload.CollectionSpec) (*Index, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	terms := make([]TermMeta, spec.VocabSize)
	docTerms := make([]DocMeta, spec.VocabSize)
	off := int64(headerSize + dirEntrySize*spec.VocabSize)
	for t := 0; t < spec.VocabSize; t++ {
		df := int64(spec.DocFreq(workload.TermID(t)))
		terms[t] = TermMeta{Offset: off, DF: df}
		off += df * PostingSize
	}
	// Doc-sorted sections follow all impact-ordered lists.
	for t := 0; t < spec.VocabSize; t++ {
		docTerms[t] = DocMeta{Offset: off, DF: terms[t].DF}
		off += DocSectionBytes(terms[t].DF)
	}
	if off > dev.Size() {
		return nil, fmt.Errorf("index: needs %d bytes, device %q holds %d",
			off, dev.Name(), dev.Size())
	}

	// Header + directory.
	head := make([]byte, headerSize+dirEntrySize*spec.VocabSize)
	copy(head[0:4], magic[:])
	binary.LittleEndian.PutUint32(head[4:8], 2)
	binary.LittleEndian.PutUint64(head[8:16], uint64(spec.VocabSize))
	binary.LittleEndian.PutUint64(head[16:24], uint64(spec.NumDocs))
	for t, m := range terms {
		base := headerSize + t*dirEntrySize
		binary.LittleEndian.PutUint64(head[base:base+8], uint64(m.Offset))
		binary.LittleEndian.PutUint64(head[base+8:base+16], uint64(m.DF))
		binary.LittleEndian.PutUint64(head[base+16:base+24], uint64(docTerms[t].Offset))
	}
	if _, err := dev.WriteAt(head, 0); err != nil {
		return nil, fmt.Errorf("index: writing directory: %w", err)
	}

	// Posting lists, buffered into large sequential writes.
	const flushSize = 1 << 20
	buf := make([]byte, 0, flushSize+PostingSize)
	writeOff := int64(len(head))
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := dev.WriteAt(buf, writeOff); err != nil {
			return fmt.Errorf("index: writing lists: %w", err)
		}
		writeOff += int64(len(buf))
		buf = buf[:0]
		return nil
	}
	var tmp [PostingSize]byte
	for t := 0; t < spec.VocabSize; t++ {
		for _, p := range spec.Postings(workload.TermID(t)) {
			EncodePosting(tmp[:], p)
			buf = append(buf, tmp[:]...)
			if len(buf) >= flushSize {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	// Doc-sorted sections with skip tables.
	for t := 0; t < spec.VocabSize; t++ {
		if _, err := buildDocSection(dev, docTerms[t].Offset, spec.Postings(workload.TermID(t))); err != nil {
			return nil, fmt.Errorf("index: writing doc-sorted section: %w", err)
		}
	}
	return &Index{dev: dev, numDocs: int64(spec.NumDocs), terms: terms, docTerms: docTerms}, nil
}

// Open loads an index previously built on dev by reading its header and
// directory.
func Open(dev storage.Device) (*Index, error) {
	head := make([]byte, headerSize)
	if _, err := dev.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	if [4]byte(head[0:4]) != magic {
		return nil, fmt.Errorf("index: bad magic %q on %q", head[0:4], dev.Name())
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != 2 {
		return nil, fmt.Errorf("index: unsupported version %d", v)
	}
	numTerms := int(binary.LittleEndian.Uint64(head[8:16]))
	numDocs := int64(binary.LittleEndian.Uint64(head[16:24]))
	dir := make([]byte, dirEntrySize*numTerms)
	if _, err := dev.ReadAt(dir, headerSize); err != nil {
		return nil, fmt.Errorf("index: reading directory: %w", err)
	}
	terms := make([]TermMeta, numTerms)
	docTerms := make([]DocMeta, numTerms)
	for t := range terms {
		base := t * dirEntrySize
		terms[t] = TermMeta{
			Offset: int64(binary.LittleEndian.Uint64(dir[base : base+8])),
			DF:     int64(binary.LittleEndian.Uint64(dir[base+8 : base+16])),
		}
		docTerms[t] = DocMeta{
			Offset: int64(binary.LittleEndian.Uint64(dir[base+16 : base+24])),
			DF:     terms[t].DF,
		}
	}
	return &Index{dev: dev, numDocs: numDocs, terms: terms, docTerms: docTerms}, nil
}

// RequiredBytes returns the device capacity needed to hold spec's index
// (impact-ordered lists plus doc-sorted sections with skip tables).
func RequiredBytes(spec workload.CollectionSpec) int64 {
	total := int64(headerSize + dirEntrySize*spec.VocabSize)
	for t := 0; t < spec.VocabSize; t++ {
		df := int64(spec.DocFreq(workload.TermID(t)))
		total += df*PostingSize + DocSectionBytes(df)
	}
	return total
}

// ReadListRange reads n bytes of term t's list starting at byte offset off
// within the list, directly from the device. It is the uncached list-read
// path; the cache hierarchy wraps it.
func (ix *Index) ReadListRange(t workload.TermID, off int64, p []byte) error {
	m := ix.Meta(t)
	if off < 0 || off+int64(len(p)) > m.Bytes() {
		return fmt.Errorf("index: term %d range [%d,+%d) outside list of %d bytes: %w",
			t, off, len(p), m.Bytes(), storage.ErrOutOfRange)
	}
	_, err := ix.dev.ReadAt(p, m.Offset+off)
	return err
}
