package index

// Doc-sorted posting sections with skip tables.
//
// The impact-ordered lists serve the paper's disjunctive (filtered vector
// model) processing. Conjunctive (AND) processing — the workload behind
// the paper's "skipped reads" observation (§III) and its three-level-
// caching future work (§VIII, [19]) — needs postings sorted by document
// with skip pointers, like Lucene's skip lists. Build writes both
// representations: the doc-sorted section of each term follows all
// impact-ordered lists and starts with a skip table so a reader can jump
// into the middle of a list without scanning it.
//
// Doc-sorted section layout per term:
//
//	skipCount uint32
//	skipCount × { firstDoc uint32, byteOff uint32 }   // off relative to postings start
//	postings  × { doc uint32, tf uint16, pad uint16 } // ascending doc
//
// Every skip entry covers SkipInterval postings; byteOff points at the
// entry's first posting.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// SkipInterval is the number of postings covered by one skip entry.
const SkipInterval = 128

// skipEntrySize is firstDoc uint32 + byteOff uint32.
const skipEntrySize = 8

// SkipEntry locates one skip block inside a doc-sorted list.
type SkipEntry struct {
	// FirstDoc is the lowest document ID in the block.
	FirstDoc uint32
	// ByteOff is the block's offset relative to the postings start.
	ByteOff uint32
}

// DocMeta locates a term's doc-sorted section.
type DocMeta struct {
	// Offset is the device position of the section (the skip table).
	Offset int64
	// DF is the posting count.
	DF int64
}

// SkipTableBytes returns the serialized skip-table size for df postings.
func SkipTableBytes(df int64) int64 {
	blocks := (df + SkipInterval - 1) / SkipInterval
	return 4 + blocks*skipEntrySize
}

// DocSectionBytes returns the whole doc-sorted section size for df
// postings.
func DocSectionBytes(df int64) int64 {
	return SkipTableBytes(df) + df*PostingSize
}

// DocMeta returns the doc-sorted section descriptor for term t, or ok =
// false when the index was built without doc-sorted sections.
func (ix *Index) DocMeta(t workload.TermID) (DocMeta, bool) {
	if len(ix.docTerms) == 0 {
		return DocMeta{}, false
	}
	if int(t) < 0 || int(t) >= len(ix.docTerms) {
		panic(fmt.Sprintf("index: term %d out of range [0,%d)", t, len(ix.docTerms)))
	}
	return ix.docTerms[t], true
}

// ReadSkipTable reads term t's skip table.
func (ix *Index) ReadSkipTable(t workload.TermID) ([]SkipEntry, error) {
	m, ok := ix.DocMeta(t)
	if !ok {
		return nil, fmt.Errorf("index: no doc-sorted section (version 1 index)")
	}
	head := make([]byte, 4)
	if _, err := ix.dev.ReadAt(head, m.Offset); err != nil {
		return nil, err
	}
	count := int(binary.LittleEndian.Uint32(head))
	buf := make([]byte, count*skipEntrySize)
	if _, err := ix.dev.ReadAt(buf, m.Offset+4); err != nil {
		return nil, err
	}
	out := make([]SkipEntry, count)
	for i := range out {
		out[i] = SkipEntry{
			FirstDoc: binary.LittleEndian.Uint32(buf[i*skipEntrySize:]),
			ByteOff:  binary.LittleEndian.Uint32(buf[i*skipEntrySize+4:]),
		}
	}
	return out, nil
}

// ReadDocBlock reads the skip block starting at byteOff (relative to the
// postings start) holding up to SkipInterval postings. It returns the
// decoded postings, fewer at the list tail.
func (ix *Index) ReadDocBlock(t workload.TermID, byteOff uint32) ([]workload.Posting, error) {
	m, ok := ix.DocMeta(t)
	if !ok {
		return nil, fmt.Errorf("index: no doc-sorted section (version 1 index)")
	}
	total := m.DF * PostingSize
	if int64(byteOff) >= total {
		return nil, fmt.Errorf("index: doc block offset %d outside %d-byte list: %w",
			byteOff, total, storage.ErrOutOfRange)
	}
	n := int64(SkipInterval * PostingSize)
	if total-int64(byteOff) < n {
		n = total - int64(byteOff)
	}
	buf := make([]byte, n)
	base := m.Offset + SkipTableBytes(m.DF)
	if _, err := ix.dev.ReadAt(buf, base+int64(byteOff)); err != nil {
		return nil, err
	}
	return DecodePostings(buf), nil
}

// encodeDocSection serializes a term's doc-sorted section into buf, which
// must be exactly DocSectionBytes(len(postings)) long.
func encodeDocSection(buf []byte, postings []workload.Posting) {
	sorted := make([]workload.Posting, len(postings))
	copy(sorted, postings)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Doc < sorted[j].Doc })

	df := int64(len(sorted))
	blocks := int((df + SkipInterval - 1) / SkipInterval)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(blocks))
	postingsBase := SkipTableBytes(df)
	for b := 0; b < blocks; b++ {
		first := sorted[b*SkipInterval].Doc
		byteOff := uint32(b * SkipInterval * PostingSize)
		binary.LittleEndian.PutUint32(buf[4+b*skipEntrySize:], first)
		binary.LittleEndian.PutUint32(buf[4+b*skipEntrySize+4:], byteOff)
	}
	for i, p := range sorted {
		EncodePosting(buf[postingsBase+int64(i)*PostingSize:], p)
	}
}
