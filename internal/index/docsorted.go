package index

// Doc-sorted posting sections.
//
// The impact-ordered lists serve the paper's disjunctive (filtered vector
// model) processing. Conjunctive (AND) processing — the workload behind
// the paper's "skipped reads" observation (§III) and its three-level-
// caching future work (§VIII, [19]) — needs postings sorted by document
// with skip pointers, like Lucene's skip lists. Build writes both
// representations: each term's doc-sorted payload follows all
// impact-ordered lists, block-encoded under the same codec, and its skip
// entries (BlockRef.MaxDoc per block) live in the in-memory block
// directory, so a reader can jump into the middle of a list without
// scanning it and without spending device reads on skip tables.

import (
	"fmt"

	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

// DocMeta returns the directory entry for term t's doc-sorted payload.
func (ix *Index) DocMeta(t workload.TermID) TermMeta {
	if int(t) < 0 || int(t) >= len(ix.docTerms) {
		panic(fmt.Sprintf("index: term %d out of range [0,%d)", t, len(ix.docTerms)))
	}
	return ix.docTerms[t]
}

// DocBytes returns the encoded size of term t's doc-sorted payload.
func (ix *Index) DocBytes(t workload.TermID) int64 { return ix.DocMeta(t).Bytes() }

// DocBlocks returns term t's doc-sorted block directory: ascending-MaxDoc
// skip entries, one per block. In-memory metadata — no device cost.
// Callers must not mutate the returned slice.
func (ix *Index) DocBlocks(t workload.TermID) []BlockRef {
	ix.DocMeta(t) // range check
	return ix.docBlocks[t]
}

// ReadDocRange reads n bytes of term t's encoded doc-sorted payload
// starting at byte offset off within the payload, directly from the
// device.
func (ix *Index) ReadDocRange(t workload.TermID, off int64, p []byte) error {
	m := ix.DocMeta(t)
	if off < 0 || off+int64(len(p)) > m.Bytes() {
		return fmt.Errorf("index: term %d doc range [%d,+%d) outside payload of %d bytes: %w",
			t, off, len(p), m.Bytes(), storage.ErrOutOfRange)
	}
	_, err := ix.dev.ReadAt(p, m.Offset+off)
	return err
}
