package index

import (
	"encoding/binary"
	"testing"

	"hybridstore/internal/workload"
)

// FuzzCodecRoundTrip feeds arbitrary bytes in as a posting list and checks
// the codec invariants: both codecs round-trip the list exactly, block
// refs agree on counts and max docs, and gvarint block payloads decode
// without error. Doc IDs are taken raw (unordered lists are legal for
// impact ordering), TFs are 16-bit.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add(func() []byte {
		b := make([]byte, 6*300)
		for i := range b {
			b[i] = byte(i * 7)
		}
		return b
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 6
		if n == 0 {
			return
		}
		if n > 4*BlockLen {
			n = 4 * BlockLen
		}
		ps := make([]workload.Posting, n)
		for i := range ps {
			ps[i] = workload.Posting{
				Doc: binary.LittleEndian.Uint32(data[i*6:]),
				TF:  binary.LittleEndian.Uint16(data[i*6+4:]),
			}
		}

		rawBuf, rawRefs := EncodeList(nil, nil, CodecRaw, ps)
		gvBuf, gvRefs := EncodeList(nil, nil, CodecGVarint, ps)
		if len(rawRefs) != len(gvRefs) {
			t.Fatalf("ref counts differ: raw %d, gvarint %d", len(rawRefs), len(gvRefs))
		}
		for i := range rawRefs {
			if rawRefs[i].Count != gvRefs[i].Count || rawRefs[i].MaxDoc != gvRefs[i].MaxDoc {
				t.Fatalf("block %d refs diverge: %+v vs %+v", i, rawRefs[i], gvRefs[i])
			}
		}

		decode := func(codec CodecID, buf []byte, refs []BlockRef) []workload.Posting {
			var out []workload.Posting
			var cur BlockCursor
			for i, ref := range refs {
				end := len(buf)
				if i+1 < len(refs) {
					end = int(refs[i+1].Off)
				}
				cur.Reset(codec, buf[ref.Off:end], int(ref.Count))
				for {
					p, ok := cur.Next()
					if !ok {
						break
					}
					out = append(out, p)
				}
				if err := cur.Err(); err != nil {
					t.Fatalf("%v block %d: %v", codec, i, err)
				}
			}
			return out
		}
		for _, c := range []struct {
			codec CodecID
			buf   []byte
			refs  []BlockRef
		}{{CodecRaw, rawBuf, rawRefs}, {CodecGVarint, gvBuf, gvRefs}} {
			got := decode(c.codec, c.buf, c.refs)
			if len(got) != n {
				t.Fatalf("%v: decoded %d postings, want %d", c.codec, len(got), n)
			}
			for i := range got {
				if got[i] != ps[i] {
					t.Fatalf("%v posting %d: %+v != %+v", c.codec, i, got[i], ps[i])
				}
			}
		}
	})
}
