package index

import (
	"math/rand"
	"strings"
	"testing"

	"hybridstore/internal/workload"
)

// decodeEncoded runs every block of an EncodeList result through a
// BlockCursor and returns the postings.
func decodeEncoded(t *testing.T, codec CodecID, buf []byte, refs []BlockRef) []workload.Posting {
	t.Helper()
	var out []workload.Posting
	var cur BlockCursor
	for i, ref := range refs {
		end := len(buf)
		if i+1 < len(refs) {
			end = int(refs[i+1].Off)
		}
		cur.Reset(codec, buf[ref.Off:end], int(ref.Count))
		for {
			p, ok := cur.Next()
			if !ok {
				break
			}
			out = append(out, p)
		}
		if err := cur.Err(); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	return out
}

func randomPostings(rng *rand.Rand, n int, sorted bool) []workload.Posting {
	ps := make([]workload.Posting, n)
	var doc uint32
	for i := range ps {
		if sorted {
			doc += 1 + uint32(rng.Intn(1<<16))
		} else {
			doc = rng.Uint32()
		}
		ps[i] = workload.Posting{Doc: doc, TF: uint16(rng.Intn(1 << 16))}
	}
	return ps
}

func TestEncodeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, codec := range []CodecID{CodecRaw, CodecGVarint} {
		for _, sorted := range []bool{true, false} {
			for _, n := range []int{1, 3, 4, 5, BlockLen - 1, BlockLen, BlockLen + 1, 3*BlockLen + 17} {
				ps := randomPostings(rng, n, sorted)
				buf, refs := EncodeList(nil, nil, codec, ps)
				wantBlocks := (n + BlockLen - 1) / BlockLen
				if len(refs) != wantBlocks {
					t.Fatalf("%v n=%d: %d refs, want %d", codec, n, len(refs), wantBlocks)
				}
				got := decodeEncoded(t, codec, buf, refs)
				if len(got) != n {
					t.Fatalf("%v n=%d sorted=%v: decoded %d postings", codec, n, sorted, len(got))
				}
				for i := range got {
					if got[i] != ps[i] {
						t.Fatalf("%v n=%d sorted=%v: posting %d = %+v, want %+v",
							codec, n, sorted, i, got[i], ps[i])
					}
				}
				for bi, ref := range refs {
					maxDoc := uint32(0)
					for _, p := range ps[bi*BlockLen : min(n, (bi+1)*BlockLen)] {
						if p.Doc > maxDoc {
							maxDoc = p.Doc
						}
					}
					if ref.MaxDoc != maxDoc {
						t.Fatalf("%v block %d: MaxDoc %d, want %d", codec, bi, ref.MaxDoc, maxDoc)
					}
				}
			}
		}
	}
}

func TestGVarintSmallerOnDocSortedLists(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := randomPostings(rng, 4096, true)
	for i := range ps {
		ps[i].TF = uint16(1 + rng.Intn(100)) // realistic small tfs
	}
	raw, _ := EncodeList(nil, nil, CodecRaw, ps)
	gv, _ := EncodeList(nil, nil, CodecGVarint, ps)
	if len(gv) >= len(raw) {
		t.Fatalf("gvarint %d bytes >= raw %d on sorted small-tf postings", len(gv), len(raw))
	}
}

func TestEncodeListAppendsRelativeOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := randomPostings(rng, BlockLen+9, true)
	prefix := []byte{0xde, 0xad, 0xbe, 0xef}
	buf, refs := EncodeList(append([]byte(nil), prefix...), nil, CodecGVarint, ps)
	if string(buf[:4]) != string(prefix) {
		t.Fatal("EncodeList clobbered existing bytes")
	}
	if refs[0].Off != 0 {
		t.Fatalf("first block Off = %d, want payload-relative 0", refs[0].Off)
	}
	got := decodeEncoded(t, CodecGVarint, buf[len(prefix):], refs)
	if len(got) != len(ps) || got[len(got)-1] != ps[len(ps)-1] {
		t.Fatal("decode after prefixed encode failed")
	}
}

func TestParseCodec(t *testing.T) {
	if c, err := ParseCodec("raw"); err != nil || c != CodecRaw {
		t.Fatalf("raw: %v %v", c, err)
	}
	if c, err := ParseCodec("gvarint"); err != nil || c != CodecGVarint {
		t.Fatalf("gvarint: %v %v", c, err)
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Fatal("accepted unknown codec name")
	}
	if CodecRaw.String() != "raw" || CodecGVarint.String() != "gvarint" {
		t.Fatal("codec names changed")
	}
	if CodecID(9).Valid() {
		t.Fatal("CodecID(9) claims validity")
	}
}

func TestBlockCursorTruncationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := randomPostings(rng, 32, true)
	for _, codec := range []CodecID{CodecRaw, CodecGVarint} {
		buf, refs := EncodeList(nil, nil, codec, ps)
		var cur BlockCursor
		cur.Reset(codec, buf[:len(buf)/2], int(refs[0].Count))
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
		}
		if err := cur.Err(); err == nil {
			t.Fatalf("%v: truncated block decoded cleanly", codec)
		} else if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("%v: unexpected error %v", codec, err)
		}
	}
	var cur BlockCursor
	cur.Reset(CodecID(7), []byte{1, 2, 3}, 1)
	if _, ok := cur.Next(); ok || cur.Err() == nil {
		t.Fatal("unknown codec decoded")
	}
}

func TestBuildImageRejectsUnknownCodec(t *testing.T) {
	if _, err := BuildImage(testSpec(), CodecID(9)); err == nil {
		t.Fatal("BuildImage accepted unknown codec")
	}
}
